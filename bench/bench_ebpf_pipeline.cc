// Experiment E6 — eBPF as the IR, interpreted vs compiled to a spatial
// pipeline (§2.2, the hXDP/eHDL lineage).
//
// Three representative programs (a packet filter, a map-updating flow
// counter, and a header parser with wide independent field extraction) run
// against the same packet stream two ways:
//   interpreter   one instruction per ~2.5 ns (a tuned software eBPF VM on
//                 a 3 GHz core, ubpf-class);
//   fpga_pipeline the list-scheduled pipeline at 250 MHz, cycles from the
//                 hdl_codegen cost model and the instrumented profile.
// Reported: sim_ns_per_packet (latency), sim_mpps (throughput), mean_ilp.
//
// Expected shape (the hXDP/eHDL result): the 3 GHz core wins single-packet
// *latency*, but the spatial pipeline accepts a new packet every initiation
// interval, so on *throughput* the filter/parser programs beat the
// interpreter severalfold; the map-helper-serialized program only reaches
// rough parity (the shared helper engine bounds its II).

#include <benchmark/benchmark.h>

#include "src/ebpf/assembler.h"
#include "src/ebpf/hdl_codegen.h"
#include "src/ebpf/verifier.h"
#include "src/ebpf/vm.h"

namespace {

using namespace hyperion;  // NOLINT

// ~2.5 ns per interpreted instruction: a software VM dispatch loop.
constexpr double kInterpreterNsPerInsn = 2.5;

struct Workload {
  const char* name;
  const char* source;
  bool needs_map;
};

const Workload kWorkloads[] = {
    {"filter",
     R"(
        ldxb r3, [r1+23]        ; ip proto
        mov r0, 0
        jne r3, 6, done         ; keep TCP only
        ldxh r4, [r1+36]        ; dst port
        jne r4, 443, done
        mov r0, 1
     done:
        exit
     )",
     false},
    {"flow_counter",
     R"(
        ldxw r6, [r1+26]        ; src ip as the flow key
        stxw [r10-4], r6
        ld_map_fd r1, 0
        mov r2, r10
        add r2, -4
        call map_lookup
        jne r0, 0, hit
        stdw [r10-16], 1
        ld_map_fd r1, 0
        mov r2, r10
        add r2, -4
        mov r3, r10
        add r3, -16
        mov r4, 0
        call map_update
        mov r0, 0
        exit
     hit:
        ldxdw r7, [r0+0]
        add r7, 1
        stxdw [r0+0], r7
        mov r0, 1
        exit
     )",
     true},
    {"parser",
     R"(
        ldxh r2, [r1+12]        ; ethertype
        ldxb r3, [r1+14]        ; version/ihl
        ldxb r4, [r1+23]        ; proto
        ldxw r5, [r1+26]        ; src
        ldxw r6, [r1+30]        ; dst
        mov r7, r5
        xor r7, r6
        mov r8, r2
        and r8, 0xff
        add r7, r8
        mov r0, r7
        and r0, 0xffff
        exit
     )",
     false},
};

void BM_EbpfExecution(benchmark::State& state) {
  const Workload& workload = kWorkloads[state.range(0)];
  const bool pipelined = state.range(1) != 0;

  ebpf::MapRegistry maps;
  if (workload.needs_map) {
    maps.Create({ebpf::MapType::kHash, 4, 8, 4096, "flows"});
  }
  auto prog = ebpf::Assemble(workload.source, workload.name, 64);
  CHECK_OK(prog.status());
  CHECK_OK(ebpf::Verify(*prog, maps).status());
  // eHDL-flavoured fabric: 8 lanes, dual-ported packet/stack memory, a
  // 4-cycle CAM-based map engine.
  auto plan = ebpf::CompileToPipeline(*prog, {.lanes = 8, .mem_ports = 2, .helper_cycles = 4});
  CHECK_OK(plan.status());

  ebpf::Vm vm(&maps);
  std::vector<uint64_t> counts(prog->insns.size(), 0);
  vm.set_exec_counts(&counts);
  Rng rng(3);

  uint64_t packets = 0;
  uint64_t interp_insns = 0;
  for (auto _ : state) {
    Bytes packet(64, 0);
    packet[23] = rng.Bernoulli(0.5) ? 6 : 17;
    packet[36] = 0x01;
    packet[37] = 0xbb;  // 443 big-endian... stored LE by the program's ldxh
    PutU32(packet, static_cast<uint32_t>(rng.Uniform(256)));  // perturb
    auto run = vm.Run(*prog, MutableByteSpan(packet));
    if (!run.ok()) {
      state.SkipWithError("vm trap");
      return;
    }
    interp_insns += run->insns_executed;
    ++packets;
  }
  const uint64_t pipeline_cycles = ebpf::EstimateCycles(*plan, counts);
  const double pipeline_ns =
      static_cast<double>(sim::CyclesToTime(pipeline_cycles, plan->options.fmax_mhz));
  const double interp_ns = static_cast<double>(interp_insns) * kInterpreterNsPerInsn;
  const double latency_ns =
      (pipelined ? pipeline_ns : interp_ns) / static_cast<double>(packets);
  // Throughput: the interpreter is run-to-completion on one core; the
  // pipeline overlaps packets at its initiation interval.
  const double ns_per_cycle = 1000.0 / plan->options.fmax_mhz;
  const double throughput_ns_per_packet =
      pipelined ? static_cast<double>(plan->InitiationInterval()) * ns_per_cycle : latency_ns;
  state.counters["sim_ns_per_packet"] = latency_ns;
  state.counters["sim_mpps"] = 1000.0 / throughput_ns_per_packet;
  state.counters["initiation_interval"] = static_cast<double>(plan->InitiationInterval());
  state.counters["mean_ilp"] = plan->MeanIlp();
  state.SetLabel(std::string(workload.name) + (pipelined ? "/fpga_pipeline" : "/interpreter"));
}

void RegisterAll() {
  for (int w = 0; w < 3; ++w) {
    for (int pipelined : {0, 1}) {
      benchmark::RegisterBenchmark((std::string("E6/Ebpf/") + kWorkloads[w].name +
              (pipelined != 0 ? "/fpga_pipeline" : "/interpreter")).c_str(),
          BM_EbpfExecution)
          ->Args({w, pipelined})
          ->Iterations(5000);
    }
  }
}

const int kRegistered = (RegisterAll(), 0);

}  // namespace
