// Experiments E11 + E17 — sharded parallel simulation scaling (PR 3/PR 9).
//
// Measures the ParallelEngine on the cluster workloads:
//
//   NetKvWeakScaling    one KV DPU node per shard, fixed per-node load,
//                       out to 64 shards (PR 9 extends the curve past 8).
//                       sim_events_per_s / sim_ops_per_s grow with the
//                       cluster because nodes serve in parallel *virtual*
//                       time; wall_events_per_s shows what the host pays
//                       per simulated event as shards are added.
//   NetKvStrongScaling  fixed 8-node cluster spread over 1..8 shards —
//                       the event trace is bit-identical by construction,
//                       so only wall_events_per_s moves.
//   NetKvSpeedup        4 shards vs 1 shard in one iteration; the headline
//                       speedup counters land in BENCH_PR3.json.
//   GraphBsp            partitioned BSP rank propagation where each
//                       superstep's cross-partition contributions travel
//                       as one batched Channel<T> message per edge-cut.
//   RepKvWeakScaling    E17: the PR 9 replicated cluster (Corfu chain
//                       replication, R=3 groups) at fixed per-node load,
//                       from 3 nodes out to the 64-node / 64-shard point.
//                       Every row CHECKs failed_ops == 0 and a clean
//                       acked-write audit before reporting.
//   RepKvKillMidBench   E17 headline: a replica (the head — leader and
//                       sequencer of its group) is killed mid-bench; the
//                       row CHECKs that exactly one node died, failover
//                       ran, and the post-run audit finds every
//                       acknowledged write on every surviving replica.
//
// On a single-core host wall_events_per_s cannot rise with thread count;
// see EXPERIMENTS.md for how to read the two axes. Generate the JSON with
//   bench_cluster_scaling --benchmark_format=json > BENCH_PR9.json

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/dpu/cluster.h"
#include "src/dpu/replication.h"
#include "src/sim/parallel.h"
#include "src/sim/time.h"

// Global allocation counter so the ChannelSend rows can report heap
// allocations per message: the PR-7 fast path relocates small payload
// closures through EventFn inline storage into pooled event entries, so
// steady-state sends must show allocs_per_msg == 0.
std::atomic<uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace hyperion;  // NOLINT

dpu::ClusterOptions NetKvOptions(uint32_t nodes, uint32_t shards) {
  dpu::ClusterOptions options;
  options.num_nodes = nodes;
  options.num_shards = shards;
  options.workload.clients_per_node = 4;
  options.workload.ops_per_client = 16;
  options.workload.value_bytes = 256;
  options.workload.key_space = 512;
  options.workload.write_pct = 50;  // YCSB-A
  return options;
}

struct NetKvRates {
  double sim_events_per_s = 0;
  double sim_ops_per_s = 0;
  double wall_seconds = 0;
  uint64_t events = 0;
};

NetKvRates RunNetKv(const dpu::ClusterOptions& options) {
  dpu::KvCluster cluster(options);  // boot + preload excluded from wall time
  const auto wall_start = std::chrono::steady_clock::now();
  const dpu::ClusterResult result = cluster.Run();
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_start;
  CHECK_EQ(result.failed_ops, 0u);
  const double sim_seconds = sim::ToSeconds(result.makespan_ns);
  NetKvRates rates;
  rates.sim_events_per_s = static_cast<double>(result.events_run) / sim_seconds;
  rates.sim_ops_per_s = static_cast<double>(result.ok_ops) / sim_seconds;
  rates.wall_seconds = wall.count();
  rates.events = result.events_run;
  return rates;
}

void ReportNetKv(benchmark::State& state, const std::vector<NetKvRates>& runs) {
  double sim_events = 0;
  double sim_ops = 0;
  double wall_seconds = 0;
  uint64_t events = 0;
  for (const NetKvRates& run : runs) {
    sim_events += run.sim_events_per_s;
    sim_ops += run.sim_ops_per_s;
    wall_seconds += run.wall_seconds;
    events += run.events;
  }
  const auto n = static_cast<double>(runs.size());
  state.counters["sim_events_per_s"] = sim_events / n;
  state.counters["sim_ops_per_s"] = sim_ops / n;
  state.counters["wall_events_per_s"] = static_cast<double>(events) / wall_seconds;
}

// Weak scaling: the cluster grows with the shard count (one node per
// shard) while per-node offered load stays fixed.
void BM_NetKvWeakScaling(benchmark::State& state) {
  const auto shards = static_cast<uint32_t>(state.range(0));
  std::vector<NetKvRates> runs;
  for (auto _ : state) {
    runs.push_back(RunNetKv(NetKvOptions(shards, shards)));
  }
  ReportNetKv(state, runs);
  state.SetLabel("netkv/nodes:" + std::to_string(shards) +
                 "/shards:" + std::to_string(shards));
}

// Strong scaling: a fixed 8-node cluster over 1..8 shards. Determinism
// makes the virtual-time numbers identical across rows; the wall rate
// isolates the engine's parallel overhead (barriers, outbox exchange).
void BM_NetKvStrongScaling(benchmark::State& state) {
  const auto shards = static_cast<uint32_t>(state.range(0));
  std::vector<NetKvRates> runs;
  for (auto _ : state) {
    runs.push_back(RunNetKv(NetKvOptions(8, shards)));
  }
  ReportNetKv(state, runs);
  state.SetLabel("netkv/nodes:8/shards:" + std::to_string(shards));
}

// Headline acceptance row: 4-shard vs 1-shard netkv in one iteration.
// speedup_sim_events_per_s is the modelled-throughput gain of the 4-node
// sharded cluster over the single node (>= 2x expected); speedup_wall is
// the host-side gain, bounded by the physical core count.
void BM_NetKvSpeedup(benchmark::State& state) {
  double base_sim = 0;
  double wide_sim = 0;
  double base_wall = 0;
  double wide_wall = 0;
  for (auto _ : state) {
    const NetKvRates base = RunNetKv(NetKvOptions(1, 1));
    const NetKvRates wide = RunNetKv(NetKvOptions(4, 4));
    base_sim += base.sim_events_per_s;
    wide_sim += wide.sim_events_per_s;
    base_wall += static_cast<double>(base.events) / base.wall_seconds;
    wide_wall += static_cast<double>(wide.events) / wide.wall_seconds;
  }
  state.counters["speedup_sim_events_per_s"] = wide_sim / base_sim;
  state.counters["speedup_wall_events_per_s"] = wide_wall / base_wall;
  state.SetLabel("netkv 4 shards vs 1");
}

// -- E17: replicated cluster scaling + kill-mid-bench (PR 9) ----------------

// Fixed per-node load; the cluster grows by adding replica groups. Values
// carry the 8-byte audit tag, so value_bytes stays >= 8.
dpu::RepClusterOptions RepKvOptions(uint32_t groups, uint32_t replicas, uint32_t shards) {
  dpu::RepClusterOptions options;
  options.groups = groups;
  options.replicas_per_group = replicas;
  options.num_shards = shards;
  options.workload.clients_per_node = 2;
  options.workload.ops_per_client = 8;
  options.workload.value_bytes = 32;
  options.workload.key_space = 64 * groups;  // keys spread across all groups
  options.workload.write_pct = 50;  // YCSB-A
  return options;
}

struct RepKvRates {
  double sim_events_per_s = 0;
  double sim_ops_per_s = 0;
  double wall_seconds = 0;
  uint64_t events = 0;
  uint64_t failovers = 0;
  uint64_t seals = 0;
  uint64_t killed = 0;
  uint64_t acked_audited = 0;
};

RepKvRates RunRepKv(const dpu::RepClusterOptions& options) {
  dpu::ReplicatedKvCluster cluster(options);  // boot + preload off the clock
  const auto wall_start = std::chrono::steady_clock::now();
  const dpu::RepClusterResult result = cluster.Run();
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_start;
  CHECK_EQ(result.failed_ops, 0u);
  const dpu::RepAudit audit = cluster.AuditAckedWrites();
  CHECK(audit.ok());  // zero acked-write loss is part of the row's contract
  const double sim_seconds = sim::ToSeconds(result.makespan_ns);
  RepKvRates rates;
  rates.sim_events_per_s = static_cast<double>(result.events_run) / sim_seconds;
  rates.sim_ops_per_s = static_cast<double>(result.ok_puts + result.ok_gets) / sim_seconds;
  rates.wall_seconds = wall.count();
  rates.events = result.events_run;
  rates.failovers = result.failovers;
  rates.seals = result.seals;
  rates.killed = result.killed_nodes;
  rates.acked_audited = audit.acked;
  return rates;
}

void ReportRepKv(benchmark::State& state, const std::vector<RepKvRates>& runs) {
  double sim_events = 0;
  double sim_ops = 0;
  double wall_seconds = 0;
  uint64_t events = 0;
  uint64_t acked = 0;
  for (const RepKvRates& run : runs) {
    sim_events += run.sim_events_per_s;
    sim_ops += run.sim_ops_per_s;
    wall_seconds += run.wall_seconds;
    events += run.events;
    acked += run.acked_audited;
  }
  const auto n = static_cast<double>(runs.size());
  state.counters["sim_events_per_s"] = sim_events / n;
  state.counters["sim_ops_per_s"] = sim_ops / n;
  state.counters["wall_events_per_s"] = static_cast<double>(events) / wall_seconds;
  state.counters["acked_writes_audited"] = static_cast<double>(acked) / n;
}

// Weak scaling over replica groups at R=3 (nodes = 3 * groups), plus the
// 64-node / 64-shard point registered as groups=32 x R=2.
void BM_RepKvWeakScaling(benchmark::State& state) {
  const auto groups = static_cast<uint32_t>(state.range(0));
  const auto replicas = static_cast<uint32_t>(state.range(1));
  const uint32_t nodes = groups * replicas;
  std::vector<RepKvRates> runs;
  for (auto _ : state) {
    runs.push_back(RunRepKv(RepKvOptions(groups, replicas, nodes)));
  }
  ReportRepKv(state, runs);
  state.SetLabel("repkv/groups:" + std::to_string(groups) + "/R:" +
                 std::to_string(replicas) + "/nodes:" + std::to_string(nodes) +
                 "/shards:" + std::to_string(nodes));
}

// The PR 9 headline: node 0 (head of group 0 — its leader and sequencer)
// dies mid-bench; clients seal the epoch, repair the tail, adopt it at the
// new head, and finish the workload. RunRepKv CHECKs the audit, so a lost
// acknowledged write aborts the bench rather than skewing a counter.
void BM_RepKvKillMidBench(benchmark::State& state) {
  std::vector<RepKvRates> runs;
  for (auto _ : state) {
    dpu::RepClusterOptions options = RepKvOptions(2, 3, 6);
    options.kill_node = 0;
    options.kill_after_ns = 60 * sim::kMicrosecond;
    RepKvRates rates = RunRepKv(options);
    CHECK_EQ(rates.killed, 1u);
    CHECK_GT(rates.failovers, 0u);
    runs.push_back(rates);
  }
  ReportRepKv(state, runs);
  state.counters["failovers"] = static_cast<double>(runs.back().failovers);
  state.counters["seals"] = static_cast<double>(runs.back().seals);
  state.SetLabel("repkv/groups:2/R:3/kill:head@60us");
}

// -- Graph analytics: BSP rank propagation over Channel<T> ------------------

constexpr uint32_t kPartitions = 4;
constexpr uint32_t kVertices = 256;
constexpr uint32_t kOutDegree = 4;
constexpr uint32_t kSupersteps = 16;

struct SyntheticGraph {
  // adjacency[v] = out-neighbours; vertex v lives on partition v % kPartitions.
  std::vector<std::vector<uint32_t>> adjacency;
  uint64_t edges = 0;
};

SyntheticGraph BuildGraph() {
  SyntheticGraph graph;
  graph.adjacency.resize(kVertices);
  Rng rng(7);
  for (uint32_t v = 0; v < kVertices; ++v) {
    graph.adjacency[v].push_back((v + 1) % kVertices);  // ring keeps it connected
    for (uint32_t e = 1; e < kOutDegree; ++e) {
      graph.adjacency[v].push_back(static_cast<uint32_t>(rng.Uniform(kVertices)));
    }
    graph.edges += kOutDegree;
  }
  return graph;
}

double RunGraphBsp(const SyntheticGraph& graph, uint32_t shards, uint64_t* messages) {
  using Contributions = std::vector<std::pair<uint32_t, double>>;
  sim::ParallelEngineOptions options;
  options.num_shards = shards;
  options.lookahead_floor = 100;
  sim::ParallelEngine engine(options);
  const sim::Duration step = 10 * engine.lookahead();

  struct Partition {
    std::vector<uint32_t> vertices;
    std::vector<double> rank;    // parallel to `vertices`
    std::vector<double> inbox;   // accumulated contributions for this step
    uint32_t source = 0;
    uint32_t shard = 0;
  };
  std::vector<Partition> parts(kPartitions);
  std::vector<uint32_t> local_index(kVertices);
  for (uint32_t v = 0; v < kVertices; ++v) {
    Partition& part = parts[v % kPartitions];
    local_index[v] = static_cast<uint32_t>(part.vertices.size());
    part.vertices.push_back(v);
  }
  for (uint32_t p = 0; p < kPartitions; ++p) {
    parts[p].shard = p * shards / kPartitions;
    parts[p].source = engine.AddSource(parts[p].shard);
    parts[p].rank.assign(parts[p].vertices.size(), 1.0 / kVertices);
    parts[p].inbox.assign(parts[p].vertices.size(), 0.0);
  }
  // channels[p][q]: partition p's contributions destined for q's vertices,
  // one batched message per superstep per cut.
  std::vector<std::vector<std::unique_ptr<sim::Channel<Contributions>>>> channels(kPartitions);
  for (uint32_t p = 0; p < kPartitions; ++p) {
    channels[p].resize(kPartitions);
    for (uint32_t q = 0; q < kPartitions; ++q) {
      Partition* dst = &parts[q];
      channels[p][q] = std::make_unique<sim::Channel<Contributions>>(
          &engine, parts[p].source, parts[q].shard,
          [dst, &local_index](Contributions batch, sim::SimTime) {
            for (const auto& [vertex, value] : batch) {
              dst->inbox[local_index[vertex]] += value;
            }
          });
    }
  }
  // Superstep s on partition p: fold the inbox into ranks, then ship this
  // step's contributions; lookahead delays land them before step s + 1.
  for (uint32_t s = 0; s < kSupersteps; ++s) {
    const sim::SimTime at = 1000 + uint64_t{s} * step;
    for (uint32_t p = 0; p < kPartitions; ++p) {
      Partition* part = &parts[p];
      engine.shard(part->shard).ScheduleAt(at, [part, &graph, &channels, &engine, p, s, at] {
        if (s > 0) {
          for (size_t i = 0; i < part->rank.size(); ++i) {
            part->rank[i] = 0.15 / kVertices + 0.85 * part->inbox[i];
            part->inbox[i] = 0.0;
          }
        }
        std::vector<Contributions> out(kPartitions);
        for (size_t i = 0; i < part->vertices.size(); ++i) {
          const uint32_t v = part->vertices[i];
          const double share = part->rank[i] / static_cast<double>(graph.adjacency[v].size());
          for (const uint32_t dst : graph.adjacency[v]) {
            out[dst % kPartitions].push_back({dst, share});
          }
        }
        for (uint32_t q = 0; q < kPartitions; ++q) {
          channels[p][q]->Send(at + engine.lookahead(), std::move(out[q]));
        }
      });
    }
  }
  engine.Run();
  *messages = engine.stats().messages;
  double rank_sum = 0;
  for (const Partition& part : parts) {
    for (const double rank : part.rank) {
      rank_sum += rank;
    }
  }
  return rank_sum;
}

void BM_GraphBsp(benchmark::State& state) {
  const auto shards = static_cast<uint32_t>(state.range(0));
  const SyntheticGraph graph = BuildGraph();
  uint64_t edges = 0;
  uint64_t messages = 0;
  double rank_sum = 0;
  for (auto _ : state) {
    rank_sum = RunGraphBsp(graph, shards, &messages);
    edges += graph.edges * kSupersteps;
  }
  state.counters["wall_edges_per_s"] =
      benchmark::Counter(static_cast<double>(edges), benchmark::Counter::kIsRate);
  state.counters["messages"] = static_cast<double>(messages);
  // Layout-invariant check value: identical for every shard count.
  state.counters["rank_sum_ppm"] = rank_sum * 1e6;
  state.SetLabel("graph/partitions:4/shards:" + std::to_string(shards));
}

// -- Channel send allocation accounting (PR 7) ------------------------------
//
// One registered channel, shard 0 -> shard 1, driven in batches. The
// `inline` row is the shipped fast path: a 16-byte payload's send closure
// fits EventFn inline storage and relocates into the destination engine's
// pooled entry — zero heap allocations per message in steady state. The
// `boxed` row forces the pre-PR-7 behaviour with a payload too large for
// inline storage, so every send boxes its closure: the before/after of
// satellite (a).

struct InlinePayload {
  uint64_t a = 0;
  uint64_t b = 0;
};
struct BoxedPayload {
  std::array<uint64_t, 32> words{};  // 256 B > EventFn::kInlineBytes
};

template <typename Payload>
void ChannelSendLoop(benchmark::State& state) {
  sim::ParallelEngineOptions options;
  options.num_shards = 2;
  options.use_threads = false;  // alloc accounting, not parallelism
  sim::ParallelEngine engine(options);
  const uint32_t src = engine.AddSource(0);
  uint64_t delivered = 0;
  sim::Channel<Payload> channel(
      &engine, src, 1, [&delivered](Payload, sim::SimTime) { ++delivered; });

  constexpr uint64_t kBatch = 4096;
  const sim::Duration la = engine.lookahead(0, 1);
  sim::SimTime cursor = 1000;
  auto run_batch = [&] {
    engine.shard(0).ScheduleAt(cursor, [&engine, &channel, la] {
      const sim::SimTime at = engine.shard(0).Now() + la;
      for (uint64_t i = 0; i < kBatch; ++i) {
        channel.Send(at + i, Payload{});
      }
    });
    engine.Run();
    // At quiescence the receiver shard has run ahead of the idle sender;
    // restart past both clocks so the next batch's sends are in every
    // shard's future.
    cursor = std::max(engine.shard(0).Now(), engine.shard(1).Now()) + 10 * la;
  };
  run_batch();  // warm up outbox/inbox capacity and the event pools

  const uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  uint64_t batches = 0;
  for (auto _ : state) {
    run_batch();
    ++batches;
  }
  const uint64_t allocs = g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  const uint64_t messages = batches * kBatch;
  CHECK_EQ(delivered, (batches + 1) * kBatch);
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["allocs_per_msg"] =
      messages == 0 ? 0 : static_cast<double>(allocs) / static_cast<double>(messages);
}

void BM_ChannelSendInline(benchmark::State& state) { ChannelSendLoop<InlinePayload>(state); }
void BM_ChannelSendBoxed(benchmark::State& state) { ChannelSendLoop<BoxedPayload>(state); }

void RegisterAll() {
  // Weak scaling out to 64 shards (PR 9); the big rows run once — on a
  // one-core host a 64-node iteration is construction-heavy and the
  // virtual-time counters are deterministic anyway.
  for (int64_t shards : {1, 2, 4, 8, 16, 64}) {
    benchmark::RegisterBenchmark(
        ("E11/NetKvWeakScaling/shards:" + std::to_string(shards)).c_str(), BM_NetKvWeakScaling)
        ->Args({shards})
        ->Iterations(shards > 8 ? 1 : 3)
        ->Unit(benchmark::kMillisecond);
  }
  for (int64_t shards : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark(
        ("E11/NetKvStrongScaling/shards:" + std::to_string(shards)).c_str(),
        BM_NetKvStrongScaling)
        ->Args({shards})
        ->Iterations(3)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("E11/NetKvSpeedup/4v1", BM_NetKvSpeedup)
      ->Iterations(3)
      ->Unit(benchmark::kMillisecond);
  // E17 weak-scaling curve: R=3 groups from 3 to 24 nodes, then the
  // 64-node / 64-shard point as 32 groups x R=2.
  for (int64_t groups : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark(
        ("E17/RepKvWeakScaling/nodes:" + std::to_string(3 * groups)).c_str(),
        BM_RepKvWeakScaling)
        ->Args({groups, 3})
        ->Iterations(groups > 4 ? 1 : 2)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("E17/RepKvWeakScaling/nodes:64", BM_RepKvWeakScaling)
      ->Args({32, 2})
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("E17/RepKvKillMidBench/nodes:6", BM_RepKvKillMidBench)
      ->Iterations(2)
      ->Unit(benchmark::kMillisecond);
  for (int64_t shards : {1, 2, 4}) {
    benchmark::RegisterBenchmark(("E11/GraphBsp/shards:" + std::to_string(shards)).c_str(),
                                 BM_GraphBsp)
        ->Args({shards})
        ->Iterations(20)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("E11/ChannelSend/inline", BM_ChannelSendInline)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("E11/ChannelSend/boxed", BM_ChannelSendBoxed)
      ->Unit(benchmark::kMillisecond);
}

const int kRegistered = (RegisterAll(), 0);

}  // namespace
