// Experiment E7 — coarse-grained spatial sharing: reconfiguration
// timescales and performance predictability (§2).
//
// Two claims measured:
//  (a) partial reconfiguration sits in the 10-100 ms band (spatial
//      multiplexing is coarse *by design*): reconfig_p50_ms / p99;
//  (b) once configured, a slot "runs at a certain clock frequency without
//      any outside interference": we run a victim tenant's request stream
//      on a dedicated slot while aggressor tenants churn other slots, and
//      on a time-shared CPU competing with the same aggressors. Reported
//      tail blowup p99.9/p50 for both. Expected: ~1.0 for the slot (perfect
//      determinism), >> 1 for the time-shared core.

#include <benchmark/benchmark.h>

#include "src/baseline/server.h"
#include "src/common/rng.h"
#include "src/fpga/fabric.h"
#include "src/fpga/scheduler.h"

namespace {

using namespace hyperion;  // NOLINT

void BM_ReconfigLatency(benchmark::State& state) {
  sim::Engine engine;
  fpga::Fabric fabric(&engine, {.regions = 4});
  Rng rng(9);
  uint64_t n = 0;
  for (auto _ : state) {
    fpga::Bitstream bs;
    bs.name = "tenant" + std::to_string(n);
    // Partial bitstream sizes 2..16 MiB.
    bs.size_bytes = (2ull + rng.Uniform(15)) << 20;
    CHECK_OK(fabric.Reconfigure(static_cast<fpga::RegionId>(n % 4), bs).status());
    ++n;
  }
  state.counters["reconfig_p50_ms"] = sim::ToMillis(fabric.reconfig_latencies().P50());
  state.counters["reconfig_p99_ms"] = sim::ToMillis(fabric.reconfig_latencies().P99());
  state.counters["reconfig_min_ms"] = sim::ToMillis(fabric.reconfig_latencies().min());
  state.counters["reconfig_max_ms"] = sim::ToMillis(fabric.reconfig_latencies().max());
  state.SetLabel("paper_band: 10-100 ms");
}

// Victim work: 5k cycles per request (=20 us at 250 MHz).
constexpr uint64_t kVictimCycles = 5000;
constexpr sim::Duration kVictimCpuService = 20 * sim::kMicrosecond;

void BM_SlotPredictability(benchmark::State& state) {
  sim::Engine engine;
  fpga::Fabric fabric(&engine, {.regions = 4});
  Rng rng(10);
  fpga::Bitstream victim;
  victim.name = "victim";
  CHECK_OK(fabric.Reconfigure(0, victim).status());
  sim::Histogram latencies;
  uint64_t n = 0;
  for (auto _ : state) {
    // Aggressors churn the other slots between victim requests.
    if (n % 3 == 0) {
      fpga::Bitstream aggressor;
      aggressor.name = "agg" + std::to_string(n);
      CHECK_OK(fabric.Reconfigure(1 + static_cast<fpga::RegionId>(n % 3), aggressor).status());
    }
    const sim::SimTime t0 = engine.Now();
    CHECK_OK(fabric.Execute(0, kVictimCycles).status());
    latencies.Record(engine.Now() - t0);
    ++n;
  }
  state.counters["sim_p50_us"] = sim::ToMicros(latencies.P50());
  state.counters["sim_p999_us"] = sim::ToMicros(latencies.P999());
  state.counters["tail_blowup"] =
      static_cast<double>(latencies.P999()) / static_cast<double>(latencies.P50());
  state.SetLabel("fpga_slot (spatial isolation)");
}

void BM_TimeSharedPredictability(benchmark::State& state) {
  const auto load_pct = static_cast<double>(state.range(0));
  baseline::TimeSharedScheduler sched(/*cores=*/4, 2 * sim::kMicrosecond);
  Rng rng(10);
  // Open-loop arrivals at the requested utilization; aggressors share the
  // cores with the victim.
  const double victim_gap_us = 100.0;
  const double aggressor_service_us = 200.0;
  // Aggressor arrival rate to hit the target utilization of 4 cores.
  const double aggressor_gap_us =
      aggressor_service_us / (4.0 * load_pct / 100.0);
  sim::SimTime now = 0;
  sim::SimTime next_aggressor = 0;
  sim::Histogram victim_latencies;
  for (auto _ : state) {
    now += static_cast<sim::SimTime>(rng.Exponential(victim_gap_us) * 1000.0);
    while (next_aggressor < now) {
      sched.Submit(next_aggressor,
                   static_cast<sim::Duration>(aggressor_service_us * 1000.0));
      next_aggressor += static_cast<sim::SimTime>(rng.Exponential(aggressor_gap_us) * 1000.0);
    }
    victim_latencies.Record(sched.Submit(now, kVictimCpuService));
  }
  state.counters["sim_p50_us"] = sim::ToMicros(victim_latencies.P50());
  state.counters["sim_p999_us"] = sim::ToMicros(victim_latencies.P999());
  state.counters["tail_blowup"] = static_cast<double>(victim_latencies.P999()) /
                                  static_cast<double>(victim_latencies.P50());
  state.SetLabel("time_shared_cpu");
}

BENCHMARK(BM_ReconfigLatency)->Iterations(500)->Name("E7/Reconfig/latency_band");
BENCHMARK(BM_SlotPredictability)->Iterations(3000)->Name("E7/Predictability/fpga_slot");
BENCHMARK(BM_TimeSharedPredictability)
    ->Arg(50)
    ->Arg(80)
    ->Arg(95)
    ->Iterations(3000)
    ->Name("E7/Predictability/time_shared_cpu/load_pct");

}  // namespace
