// Experiment E1 — Table 1 reproduction.
//
// The paper's Table 1 catalogs pairwise accelerator integrations and the
// CPU's residual role in each. This bench prices a network-to-durable-
// storage transfer under every integration style and reports, per row:
//   sim_latency_us  end-to-end modelled latency
//   cpu_touches     syscalls/interrupts/stack traversals/copies
//   cpu_busy_us     host CPU time burned per transfer
//   pcie_hops       link traversals
//
// Expected shape (paper claim): every prior class keeps the CPU on the
// path; Hyperion's row is the only one with cpu_touches == 0 and the
// fewest hops, and it has the lowest latency at every size.

#include <benchmark/benchmark.h>

#include "src/baseline/integration.h"

namespace {

using hyperion::baseline::IntegrationKind;
using hyperion::baseline::PathReport;
using hyperion::baseline::PriceNetToStorage;

constexpr IntegrationKind kKinds[] = {
    IntegrationKind::kGpuWithNetwork,    IntegrationKind::kGpuWithStorage,
    IntegrationKind::kFpgaWithNetwork,   IntegrationKind::kStorageWithNetwork,
    IntegrationKind::kStorageWithAccel,  IntegrationKind::kCommercialDpu,
    IntegrationKind::kHyperion,
};

void BM_Table1(benchmark::State& state) {
  const IntegrationKind kind = kKinds[state.range(0)];
  const uint64_t bytes = static_cast<uint64_t>(state.range(1));
  PathReport report;
  for (auto _ : state) {
    auto priced = PriceNetToStorage(kind, bytes);
    if (!priced.ok()) {
      state.SkipWithError("pricing failed");
      return;
    }
    report = *priced;
    benchmark::DoNotOptimize(report);
  }
  state.counters["sim_latency_us"] = hyperion::sim::ToMicros(report.latency);
  state.counters["cpu_touches"] = static_cast<double>(report.cpu_touches);
  state.counters["cpu_busy_us"] = hyperion::sim::ToMicros(report.cpu_busy);
  state.counters["pcie_hops"] = static_cast<double>(report.pcie_hops);
  state.counters["dma_legs"] = static_cast<double>(report.dma_legs);
  state.SetLabel(std::string(IntegrationName(kind)));
}

void RegisterAll() {
  for (int k = 0; k < 7; ++k) {
    for (int64_t bytes : {4 << 10, 64 << 10, 1 << 20}) {
      benchmark::RegisterBenchmark((std::string("E1/Table1/") +
              std::string(IntegrationName(kKinds[k])) + "/bytes:" + std::to_string(bytes)).c_str(),
          BM_Table1)
          ->Args({k, bytes})
          ->Iterations(200);
    }
  }
}

const int kRegistered = (RegisterAll(), 0);

}  // namespace
