// Experiment E13 — overload and flow control (PR 5).
//
// Two experiment families:
//
//   HockeyStick/<ia_us>/<ac>   the sharded OverloadCluster: 3 open-loop
//       client nodes sweep offered load (per-client inter-arrival time ia)
//       against one Hyperion block server, with the server's admission
//       control OFF (ac=0) or ON (ac=1). Counters per run:
//         goodput_ops_s      in-deadline successes per simulated second
//         admitted_p99_us    p99 latency of in-deadline successes
//         shed_pct           requests fast-rejected by admission
//         miss_pct           requests completed past their deadline
//       OFF: past the knee, queues grow without bound — p99 explodes and
//       goodput collapses as every completion lands after its deadline.
//       ON: doomed work is shed at the NIC for reject_cost, admitted p99
//       stays bounded, and goodput holds the service-capacity plateau.
//
//   DoorbellBatch/<k>   the single-engine OverloadPipeline sweeping NVMe
//       doorbell coalescing K: one MMIO ring publishes up to K SQEs, so
//       doorbells-per-op falls as 1/K while the max-delay timer bounds the
//       added latency. Counters: p99_us, doorbells_per_op, mean_batch.
//
// Regenerate the PR 5 numbers with
//   bench_overload --benchmark_format=json > BENCH_PR5.json

#include <cstdint>
#include <memory>

#include <benchmark/benchmark.h>

#include "src/common/check.h"
#include "src/load/harness.h"
#include "src/load/loadgen.h"
#include "src/load/pipeline.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace {

using namespace hyperion;  // NOLINT

load::OverloadClusterOptions HockeyOptions(sim::Duration interarrival, bool admission) {
  load::OverloadClusterOptions options;
  options.num_clients = 3;
  options.requests_per_client = 200;
  options.open_loop = true;
  options.interarrival = interarrival;
  options.deadline = 1 * sim::kMillisecond;
  options.policy.enabled = admission;
  options.policy.admission.max_pending = 32;
  options.policy.admission.max_backlog = 600 * sim::kMicrosecond;
  return options;
}

void HockeyStick(benchmark::State& state) {
  const auto interarrival = static_cast<sim::Duration>(state.range(0)) * sim::kMicrosecond;
  const bool admission = state.range(1) != 0;
  uint64_t ok = 0;
  uint64_t issued = 0;
  uint64_t rejected = 0;
  uint64_t missed = 0;
  uint64_t p99 = 0;
  double sim_seconds = 0;
  for (auto _ : state) {
    load::OverloadCluster cluster(HockeyOptions(interarrival, admission));
    const load::OverloadResult result = cluster.Run();
    CHECK_EQ(result.failed, 0u);
    ok += result.ok;
    issued += result.issued;
    rejected += result.rejected;
    missed += result.deadline_missed;
    p99 = result.latency_p99_ns;
    sim_seconds += sim::ToSeconds(result.makespan_ns);
  }
  state.counters["offered_ops_s"] =
      3.0 * static_cast<double>(sim::kSecond) / static_cast<double>(interarrival);
  state.counters["goodput_ops_s"] = sim_seconds > 0 ? static_cast<double>(ok) / sim_seconds : 0;
  state.counters["admitted_p99_us"] = static_cast<double>(p99) / 1000.0;
  state.counters["shed_pct"] = 100.0 * static_cast<double>(rejected) / static_cast<double>(issued);
  state.counters["miss_pct"] = 100.0 * static_cast<double>(missed) / static_cast<double>(issued);
}

// Per-client inter-arrival sweep (us) x admission {off, on}. The server's
// single-pipeline block-read service time is ~80 us, so per-client arrivals
// of 800..25 us sweep from well under the knee to 10x overload.
BENCHMARK(HockeyStick)
    ->ArgNames({"ia_us", "ac"})
    ->Args({800, 0})
    ->Args({800, 1})
    ->Args({200, 0})
    ->Args({200, 1})
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({25, 0})
    ->Args({25, 1})
    ->Unit(benchmark::kMillisecond);

void DoorbellBatch(benchmark::State& state) {
  const auto batch = static_cast<uint16_t>(state.range(0));
  uint64_t doorbells = 0;
  uint64_t sqes = 0;
  uint64_t ok = 0;
  uint64_t p99 = 0;
  double sim_seconds = 0;
  for (auto _ : state) {
    sim::Engine engine;
    load::OverloadPipelineOptions options;
    options.doorbell_batch = batch;
    options.doorbell_max_delay = 5 * sim::kMicrosecond;
    options.rx_batch = 1;       // isolate the doorbell axis
    options.admission_enabled = false;  // closed loop self-limits
    load::OverloadPipeline pipeline(&engine, options);
    load::LoadGenOptions gopts;
    // 32 outstanding requests: completions of one coalesced interrupt
    // reissue together, so arrivals cluster and batches actually form.
    gopts.open_loop = false;
    gopts.clients = 32;
    gopts.think_time = 0;
    gopts.total_requests = 2000;
    load::LoadGen gen(&engine, gopts,
                      [&pipeline](uint64_t seq, sim::SimTime deadline, load::LoadGen::DoneFn done) {
                        pipeline.Offer(seq, deadline, std::move(done));
                      });
    gen.Start();
    engine.Run();
    CHECK(gen.Finished());
    CHECK_EQ(gen.stats().failed, 0u);
    doorbells += pipeline.controller().counters().Get("nvme_doorbells");
    sqes += pipeline.controller().counters().Get("nvme_doorbell_sqes");
    ok += gen.stats().ok;
    p99 = gen.latency().P99();
    sim_seconds +=
        sim::ToSeconds(gen.stats().last_completion - gen.stats().first_issue);
  }
  state.counters["p99_us"] = static_cast<double>(p99) / 1000.0;
  state.counters["ops_s"] = sim_seconds > 0 ? static_cast<double>(ok) / sim_seconds : 0;
  state.counters["doorbells_per_op"] =
      ok > 0 ? static_cast<double>(doorbells) / static_cast<double>(ok) : 0;
  state.counters["mean_batch"] =
      doorbells > 0 ? static_cast<double>(sqes) / static_cast<double>(doorbells) : 0;
}

BENCHMARK(DoorbellBatch)
    ->ArgName("k")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
