// Experiment E2 — Figure 2 datapath.
//
// Drives the end-to-end hardware path of the blueprint: a client sends a
// KV request over an application-chosen transport (TCP/UDP/RDMA/Homa), the
// DPU shell dispatches it, the single-level store routes it to DRAM or
// flash, and the response returns. Reported per (transport, value size):
//   sim_put_us / sim_get_us  modelled end-to-end request latency
//
// Expected shape: RDMA < Homa < UDP < TCP for small requests (software and
// protocol overhead ordering); serialization dominates and the transports
// converge as values grow.
//
// E12 (PR 4) rides on the same datapath with tracing enabled: the traced
// variant attributes each request's latency to net / rpc / nvme / pcie via
// the critical-path report and dumps a Chrome trace_event JSON
// (fig2_trace.json, loadable in chrome://tracing or Perfetto) plus the
// layer-breakdown table (fig2_critical_path.txt).

#include <benchmark/benchmark.h>

#include <fstream>

#include "src/dpu/hyperion.h"
#include "src/dpu/services.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"

namespace {

using namespace hyperion;  // NOLINT

constexpr net::TransportKind kKinds[] = {
    net::TransportKind::kUdp, net::TransportKind::kTcp, net::TransportKind::kRdma,
    net::TransportKind::kHoma};

struct Setup {
  sim::Engine engine;
  net::Fabric fabric{&engine};
  dpu::Hyperion dpu{&engine, &fabric};
  net::HostId client;
  Rng rng{11};
  std::unique_ptr<dpu::HyperionServices> services;

  explicit Setup(net::TransportKind kind) {
    client = fabric.AddHost("client");
    CHECK_OK(dpu.Boot());
    auto installed = dpu::HyperionServices::Install(&dpu);
    CHECK_OK(installed.status());
    services = std::move(*installed);
    // The DPU terminates its transport in fabric (zero software cost); the
    // *client* is an ordinary host: kernel stack for TCP/UDP, kernel-bypass
    // verbs for RDMA, a user-level runtime for Homa.
    net::TransportParams params;
    switch (kind) {
      case net::TransportKind::kTcp:
        params.sender_sw_overhead = 2500;
        params.receiver_sw_overhead = 2500;
        break;
      case net::TransportKind::kUdp:
        params.sender_sw_overhead = 1500;
        params.receiver_sw_overhead = 1500;
        break;
      case net::TransportKind::kHoma:
        params.sender_sw_overhead = 600;
        params.receiver_sw_overhead = 600;
        break;
      case net::TransportKind::kRdma:
        break;  // hardware verbs
    }
    transport = net::MakeTransport(kind, &fabric, &rng, params);
    rpc = std::make_unique<dpu::RpcClient>(transport.get(), client, dpu.host_id(), &dpu.rpc());
  }

  std::unique_ptr<net::Transport> transport;
  std::unique_ptr<dpu::RpcClient> rpc;
};

void BM_Fig2Datapath(benchmark::State& state) {
  const net::TransportKind kind = kKinds[state.range(0)];
  const uint64_t value_bytes = static_cast<uint64_t>(state.range(1));
  Setup setup(kind);

  Bytes value(value_bytes, 0x5a);
  uint64_t key = 0;
  sim::Duration put_total = 0;
  sim::Duration get_total = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    Bytes put;
    PutU64(put, key);
    PutU32(put, static_cast<uint32_t>(value.size()));
    PutBytes(put, ByteSpan(value.data(), value.size()));
    const sim::SimTime t0 = setup.engine.Now();
    auto put_resp = setup.rpc->Call({dpu::ServiceId::kKv, dpu::KvOp::kPut, std::move(put)});
    const sim::SimTime t1 = setup.engine.Now();
    Bytes get;
    PutU64(get, key);
    auto get_resp = setup.rpc->Call({dpu::ServiceId::kKv, dpu::KvOp::kGet, std::move(get)});
    const sim::SimTime t2 = setup.engine.Now();
    if (!put_resp.ok() || !put_resp->status.ok() || !get_resp.ok() ||
        !get_resp->status.ok()) {
      state.SkipWithError("request failed");
      return;
    }
    put_total += t1 - t0;
    get_total += t2 - t1;
    ++ops;
    key = (key + 1) % 64;
  }
  state.counters["sim_put_us"] = sim::ToMicros(put_total) / static_cast<double>(ops);
  state.counters["sim_get_us"] = sim::ToMicros(get_total) / static_cast<double>(ops);
  // Bytes memcpy'd through the Buffer layer per request (serialize + store
  // + parse); the zero-copy datapath's figure of merit.
  state.counters["copy_bytes_per_req"] =
      static_cast<double>(setup.rpc->counters().Get("copy_bytes")) /
      static_cast<double>(2 * ops);
  state.SetLabel(std::string(net::TransportKindName(kind)));
}

// Same datapath, block-level (NVMe-oF) storage API instead of KV.
void BM_Fig2Block(benchmark::State& state) {
  const net::TransportKind kind = kKinds[state.range(0)];
  const uint64_t bytes = static_cast<uint64_t>(state.range(1));
  Setup setup(kind);

  Bytes data(bytes, 0x33);
  uint64_t lba = 0;
  sim::Duration write_total = 0;
  sim::Duration read_total = 0;
  uint64_t ops = 0;
  const uint32_t blocks = static_cast<uint32_t>(bytes / nvme::kLbaSize);
  for (auto _ : state) {
    Bytes write;
    PutU32(write, 2);  // namespace 2: raw block space
    PutU64(write, lba);
    PutBytes(write, ByteSpan(data.data(), data.size()));
    const sim::SimTime t0 = setup.engine.Now();
    auto wrote = setup.rpc->Call({dpu::ServiceId::kBlock, dpu::BlockOp::kWrite,
                                  std::move(write)});
    const sim::SimTime t1 = setup.engine.Now();
    Bytes read;
    PutU32(read, 2);
    PutU64(read, lba);
    PutU32(read, blocks);
    auto got = setup.rpc->Call({dpu::ServiceId::kBlock, dpu::BlockOp::kRead, std::move(read)});
    const sim::SimTime t2 = setup.engine.Now();
    if (!wrote.ok() || !wrote->status.ok() || !got.ok() || !got->status.ok()) {
      state.SkipWithError("block op failed");
      return;
    }
    write_total += t1 - t0;
    read_total += t2 - t1;
    ++ops;
    lba = (lba + blocks) % 4096;
  }
  state.counters["sim_write_us"] = sim::ToMicros(write_total) / static_cast<double>(ops);
  state.counters["sim_read_us"] = sim::ToMicros(read_total) / static_cast<double>(ops);
  state.counters["copy_bytes_per_req"] =
      static_cast<double>(setup.rpc->counters().Get("copy_bytes")) /
      static_cast<double>(2 * ops);
  state.SetLabel(std::string(net::TransportKindName(kind)) + "/nvmeof_block");
}

// E12 — traced Fig. 2 datapath. Runs the KV put/get loop with the tracer
// wired through every layer, then answers "where did each request's
// nanoseconds go?" via the critical-path report and dumps the full span
// tree as Chrome trace_event JSON. Counters report per-layer self time
// averaged over requests; artifacts land in the working directory.
void BM_Fig2CriticalPath(benchmark::State& state) {
  const net::TransportKind kind = kKinds[state.range(0)];
  const uint64_t value_bytes = static_cast<uint64_t>(state.range(1));
  Setup setup(kind);

  obs::Tracer tracer(/*origin=*/0);
  setup.dpu.InstallTracer(&tracer);
  setup.transport->SetTracer(&tracer);
  setup.rpc->SetTracer(&tracer);

  Bytes value(value_bytes, 0x5a);
  uint64_t key = 0;
  sim::Duration total = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    Bytes put;
    PutU64(put, key);
    PutU32(put, static_cast<uint32_t>(value.size()));
    PutBytes(put, ByteSpan(value.data(), value.size()));
    const sim::SimTime t0 = setup.engine.Now();
    auto put_resp = setup.rpc->Call({dpu::ServiceId::kKv, dpu::KvOp::kPut, std::move(put)});
    Bytes get;
    PutU64(get, key);
    auto get_resp = setup.rpc->Call({dpu::ServiceId::kKv, dpu::KvOp::kGet, std::move(get)});
    const sim::SimTime t1 = setup.engine.Now();
    if (!put_resp.ok() || !put_resp->status.ok() || !get_resp.ok() ||
        !get_resp->status.ok()) {
      state.SkipWithError("request failed");
      return;
    }
    total += t1 - t0;
    ops += 2;
    key = (key + 1) % 64;
  }

  const std::vector<obs::SpanRecord> spans = obs::Tracer::Merged({&tracer});
  const obs::CriticalPathReport report = obs::BuildCriticalPathReport(spans);
  // Per-request layer breakdown: self time attributed to each subsystem on
  // the critical path, averaged over the requests the report covers.
  sim::Duration by_subsystem[obs::kSubsystemCount] = {};
  uint64_t requests = 0;
  for (const obs::CriticalPathRow& row : report.rows) {
    for (size_t s = 0; s < obs::kSubsystemCount; ++s) {
      by_subsystem[s] += row.by_subsystem[s];
    }
    ++requests;
  }
  if (requests > 0) {
    for (size_t s = 0; s < obs::kSubsystemCount; ++s) {
      if (by_subsystem[s] == 0) {
        continue;
      }
      state.counters[std::string("path_") +
                     std::string(obs::SubsystemName(static_cast<obs::Subsystem>(s))) +
                     "_us"] =
          sim::ToMicros(by_subsystem[s]) / static_cast<double>(requests);
    }
  }
  state.counters["sim_rt_us"] = sim::ToMicros(total) / static_cast<double>(ops / 2);
  state.counters["spans_per_req"] =
      static_cast<double>(spans.size()) / static_cast<double>(ops);

  // Artifacts: the Chrome trace (chrome://tracing, Perfetto) and the
  // human-readable breakdown. Written once, from the last run config.
  {
    std::ofstream trace_out("fig2_trace.json", std::ios::trunc);
    trace_out << obs::ToChromeTraceJson(spans);
  }
  {
    std::ofstream path_out("fig2_critical_path.txt", std::ios::trunc);
    path_out << report.Summary();
  }
  state.SetLabel(std::string(net::TransportKindName(kind)) + "/traced");
}

void RegisterAll() {
  for (int k = 0; k < 4; ++k) {
    for (int64_t bytes : {64, 4096, 65536}) {
      benchmark::RegisterBenchmark((std::string("E2/Fig2Datapath/kv/") +
                                       std::string(net::TransportKindName(kKinds[k])) +
                                       "/value:" + std::to_string(bytes)).c_str(),
                                   BM_Fig2Datapath)
          ->Args({k, bytes})
          ->Iterations(50);
    }
    for (int64_t bytes : {4096, 65536}) {
      benchmark::RegisterBenchmark((std::string("E2/Fig2Datapath/block/") +
                                       std::string(net::TransportKindName(kKinds[k])) +
                                       "/bytes:" + std::to_string(bytes)).c_str(),
                                   BM_Fig2Block)
          ->Args({k, bytes})
          ->Iterations(50);
    }
  }
  // E12: one traced config per transport, mid-size value. Tracing is on for
  // these only — E2 numbers above stay untraced.
  for (int k = 0; k < 4; ++k) {
    benchmark::RegisterBenchmark((std::string("E12/Fig2CriticalPath/kv/") +
                                     std::string(net::TransportKindName(kKinds[k])) +
                                     "/value:4096").c_str(),
                                 BM_Fig2CriticalPath)
        ->Args({k, 4096})
        ->Iterations(50);
  }
}

const int kRegistered = (RegisterAll(), 0);

}  // namespace
