// Experiment E3 — energy and packaging efficiency.
//
// The paper claims Hyperion is "4-8x more energy efficient with the maximum
// TDP energy specifications (approx. 230 Watts vs 1,600 Watts)" and "5-10x
// more compact in volume" than a 1U server. This bench runs an identical
// KV-serving mix (half writes, half reads, 4 KiB values) on both systems
// and reports:
//   peak_watts        TDP envelope of the platform model
//   sim_joules_per_kop  energy per 1000 operations at that envelope
//   ops_per_joule     efficiency
//   volume_ratio      1U server volume / Hyperion volume (static geometry)
//
// Expected shape: DPU/server peak ratio in [4,8]; ops/joule advantage at or
// above that ratio (the DPU also finishes each op faster).

#include <benchmark/benchmark.h>

#include "src/baseline/server.h"
#include "src/dpu/hyperion.h"
#include "src/dpu/services.h"

namespace {

using namespace hyperion;  // NOLINT

constexpr uint64_t kValueBytes = 4096;

void BM_EnergyDpu(benchmark::State& state) {
  sim::Engine engine;
  net::Fabric fabric(&engine);
  dpu::Hyperion dpu(&engine, &fabric);
  CHECK_OK(dpu.Boot());
  auto services = dpu::HyperionServices::Install(&dpu);
  CHECK_OK(services.status());

  Bytes value(kValueBytes, 1);
  uint64_t ops = 0;
  const sim::SimTime start = engine.Now();
  for (auto _ : state) {
    const uint64_t key = ops % 512;
    if (ops % 2 == 0) {
      CHECK_OK((*services)->kv().Put(key, ByteSpan(value.data(), value.size())));
    } else {
      benchmark::DoNotOptimize((*services)->kv().Get(key));
    }
    // Charge the shell pipeline work to the fabric energy account.
    dpu.energy().Busy(sim::DpuPowerIds::kFabric, 1200);
    dpu.energy().Busy(sim::DpuPowerIds::kNvme, 20 * sim::kMicrosecond);
    ++ops;
  }
  const sim::Duration elapsed = engine.Now() - start;
  const double joules = dpu.energy().TotalJoules(elapsed);
  state.counters["peak_watts"] = dpu.energy().PeakWatts();
  state.counters["sim_joules_per_kop"] = joules / static_cast<double>(ops) * 1000.0;
  state.counters["ops_per_joule"] = static_cast<double>(ops) / joules;
  state.SetLabel("hyperion_dpu");
}

void BM_EnergyServer(benchmark::State& state) {
  sim::Engine engine;
  baseline::CpuServer server(&engine);
  sim::EnergyModel energy = sim::MakeServerEnergyModel();

  uint64_t ops = 0;
  const sim::SimTime start = engine.Now();
  for (auto _ : state) {
    const sim::SimTime op_start = engine.Now();
    CHECK_OK(server.KvOperation(ops % 2 == 0, kValueBytes).status());
    const sim::Duration op_time = engine.Now() - op_start;
    energy.Busy(sim::ServerPowerIds::kCpu, op_time);
    energy.Busy(sim::ServerPowerIds::kNvme, 20 * sim::kMicrosecond);
    energy.Busy(sim::ServerPowerIds::kDram, op_time / 2);
    ++ops;
  }
  const sim::Duration elapsed = engine.Now() - start;
  const double joules = energy.TotalJoules(elapsed);
  state.counters["peak_watts"] = energy.PeakWatts();
  state.counters["sim_joules_per_kop"] = joules / static_cast<double>(ops) * 1000.0;
  state.counters["ops_per_joule"] = static_cast<double>(ops) / joules;
  state.SetLabel("x86_1u_server");
}

void BM_PackagingRatios(benchmark::State& state) {
  // Static geometry from the paper: Hyperion is a PCIe-card-sized sled
  // (~20.7 cm x 29.7 cm x ~4 cm) vs a 1U rack server (43.9 x 4.4 x 70 cm).
  const double hyperion_volume_l = 20.7 * 29.7 * 4.0 / 1000.0;
  const double server_volume_l = 43.9 * 4.4 * 70.0 / 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hyperion_volume_l);
  }
  state.counters["volume_ratio"] = server_volume_l / hyperion_volume_l;
  state.counters["tdp_ratio"] =
      sim::MakeServerEnergyModel().PeakWatts() / sim::MakeDpuEnergyModel().PeakWatts();
  state.SetLabel("paper_claims: volume 5-10x, energy 4-8x");
}

BENCHMARK(BM_EnergyDpu)->Iterations(2000)->Name("E3/Energy/hyperion");
BENCHMARK(BM_EnergyServer)->Iterations(2000)->Name("E3/Energy/server");
BENCHMARK(BM_PackagingRatios)->Iterations(1)->Name("E3/Packaging/ratios");

}  // namespace
