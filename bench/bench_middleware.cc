// Experiment E10 — standalone network middleware with flow-proportional
// state (§2.4): the L4 load balancer with flash spill (Tiara-style
// state overflow handled by Hyperion's own SSDs) and the fail2ban logger
// with a durable audit trail.
//
// Reported for the LB at each concurrent-flow count: sim_kpps, spill rate,
// and the share of packets served from the flash tier. For fail2ban:
// sustained auth-event rate with every failure durably logged.
//
// Expected shape: throughput degrades gracefully (not a cliff) as the flow
// count exceeds DRAM residency — cold flows pay a flash lookup instead of
// being dropped or shipped to an external server.

#include <benchmark/benchmark.h>

#include "src/apps/fail2ban.h"
#include "src/apps/load_balancer.h"

namespace {

using namespace hyperion;  // NOLINT

void BM_LoadBalancer(benchmark::State& state) {
  const auto flows = static_cast<uint32_t>(state.range(0));
  const auto resident = static_cast<uint32_t>(state.range(1));
  sim::Engine engine;
  net::Fabric fabric(&engine);
  dpu::Hyperion dpu(&engine, &fabric);
  CHECK_OK(dpu.Boot());
  auto lb = apps::LoadBalancer::Create(
      &dpu, {{0xc0a80001, 80}, {0xc0a80002, 80}, {0xc0a80003, 80}, {0xc0a80004, 80}}, resident);
  CHECK_OK(lb.status());

  // Establish the flow population.
  Rng rng(31);
  std::vector<apps::Packet> packets;
  packets.reserve(flows);
  for (uint32_t f = 0; f < flows; ++f) {
    apps::Packet p;
    p.flow = apps::FlowKey{0x0a000000 + f, 0x08080808, static_cast<uint16_t>(f % 60000), 443, 6};
    p.tcp_flags = apps::kTcpSyn;
    CHECK_OK((*lb)->Route(p).status());
  }

  const sim::SimTime start = engine.Now();
  uint64_t routed = 0;
  for (auto _ : state) {
    apps::Packet p = packets.empty() ? apps::Packet{} : packets[0];
    const uint32_t f = static_cast<uint32_t>(rng.Zipf(flows, 0.9));
    p.flow = apps::FlowKey{0x0a000000 + f, 0x08080808, static_cast<uint16_t>(f % 60000), 443, 6};
    p.tcp_flags = apps::kTcpAck;
    // Per-packet shell pipeline cost.
    engine.Advance(300);
    CHECK_OK((*lb)->Route(p).status());
    ++routed;
  }
  const double seconds = sim::ToSeconds(engine.Now() - start);
  const auto& stats = (*lb)->stats();
  state.counters["sim_kpps"] = static_cast<double>(routed) / seconds / 1000.0;
  state.counters["spilled_flows"] = static_cast<double>(stats.spills);
  state.counters["flash_hit_share_pct"] =
      100.0 * static_cast<double>(stats.spill_hits) / static_cast<double>(routed);
  state.SetLabel("flows:" + std::to_string(flows) + "/resident:" + std::to_string(resident));
}

void BM_Fail2Ban(benchmark::State& state) {
  sim::Engine engine;
  net::Fabric fabric(&engine);
  dpu::Hyperion dpu(&engine, &fabric);
  CHECK_OK(dpu.Boot());
  auto f2b = apps::Fail2Ban::Create(&dpu, {.max_failures = 5});
  CHECK_OK(f2b.status());

  Rng rng(33);
  const sim::SimTime start = engine.Now();
  uint64_t events = 0;
  for (auto _ : state) {
    const auto src = static_cast<uint32_t>(0x0a000000 + rng.Zipf(5000, 0.99));  // hot attackers
    const bool failed = rng.Bernoulli(0.3);
    engine.Advance(300);  // shell pipeline
    CHECK_OK((*f2b)->OnAuthAttempt(src, failed).status());
    ++events;
  }
  const double seconds = sim::ToSeconds(engine.Now() - start);
  state.counters["sim_kevents_per_s"] = static_cast<double>(events) / seconds / 1000.0;
  state.counters["durable_log_entries"] = static_cast<double>((*f2b)->events_logged());
  state.counters["bans"] = static_cast<double>((*f2b)->bans_issued());
  state.SetLabel("every failure durably logged");
}

void RegisterAll() {
  // Flow counts against a 4096-entry resident table.
  for (int64_t flows : {1000, 10000, 100000}) {
    benchmark::RegisterBenchmark(("E10/LoadBalancer/flows:" + std::to_string(flows)).c_str(),
                                 BM_LoadBalancer)
        ->Args({flows, 4096})
        ->Iterations(2000);
  }
  benchmark::RegisterBenchmark("E10/Fail2Ban/auth_events", BM_Fail2Ban)->Iterations(2000);
}

const int kRegistered = (RegisterAll(), 0);

}  // namespace
