// Engine fast-path microbenchmarks (PR 2).
//
// Measures raw schedule+run throughput of sim::Engine against a faithful
// replica of the pre-PR-2 engine (binary heap of by-value events with
// std::function callbacks), and isolates the two fast-path knobs:
//
//   E0/Engine/legacy            pre-PR-2 baseline (heap + std::function)
//   E0/Engine/wheel_pool        the shipped defaults
//   E0/Engine/heap_pool         wheel off  (isolates the timing wheel)
//   E0/Engine/wheel_nopool      pool off   (isolates the event slab pool)
//   E0/Engine/heap_nopool      both off   (EventFn inlining alone)
//
// Callbacks capture 32 bytes — beyond std::function's small-object buffer
// (16 bytes on libstdc++), inside EventFn's 48-byte inline storage — which
// is the capture profile of the transport/RPC completions on the hot path.
//
// Reproduce the committed numbers (see EXPERIMENTS.md):
//   ./bench/bench_engine --benchmark_format=json > BENCH_PR2.json

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "src/sim/engine.h"

namespace {

using namespace hyperion;  // NOLINT

// Faithful replica of the pre-PR-2 engine so the speedup is measured
// against the real baseline, not a strawman.
class LegacyEngine {
 public:
  using Callback = std::function<void()>;

  sim::SimTime Now() const { return now_; }

  void ScheduleAfter(sim::Duration delay, Callback fn) {
    queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
  }

  uint64_t Run() {
    uint64_t executed = 0;
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.when;
      ev.fn();
      ++executed;
    }
    return executed;
  }

 private:
  struct Event {
    sim::SimTime when;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  sim::SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// 32-byte capture: past std::function's SBO, within EventFn's 48 bytes.
struct Capture {
  uint64_t a, b, c, d;
};

// Deterministic delay sequence; bulk of events inside the default wheel
// horizon (~4.2 ms), a tail beyond it to exercise heap overflow+migration.
class DelaySequence {
 public:
  sim::Duration Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t r = state_ >> 33;
    if ((r & 0xf) == 0) {
      return 4'000'000 + r % 16'000'000;  // ~6%: 4-20 ms, beyond the horizon
    }
    return r % 4'000'000;  // within the horizon
  }

 private:
  uint64_t state_ = 0x9e3779b97f4a7c15ull;
};

// Schedules `batch` events with mixed delays, drains, repeats. Reported
// rate = events scheduled+executed per second of wall time.
template <typename EngineT>
void ScheduleRunLoop(benchmark::State& state, EngineT& engine) {
  const int64_t batch = state.range(0);
  DelaySequence delays;
  uint64_t sink = 0;
  for (auto _ : state) {
    for (int64_t i = 0; i < batch; ++i) {
      Capture cap{static_cast<uint64_t>(i), sink, 3, 4};
      engine.ScheduleAfter(delays.Next(),
                           [cap, &sink] { sink += cap.a + cap.b + cap.c + cap.d; });
    }
    engine.Run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_LegacyEngine(benchmark::State& state) {
  LegacyEngine engine;
  ScheduleRunLoop(state, engine);
}

void BM_Engine(benchmark::State& state) {
  sim::EngineOptions options;
  options.use_timing_wheel = state.range(1) != 0;
  options.pool_events = state.range(2) != 0;
  sim::Engine engine(options);
  ScheduleRunLoop(state, engine);
  state.counters["wheel_frac"] =
      engine.stats().scheduled == 0
          ? 0.0
          : static_cast<double>(engine.stats().wheel_scheduled) /
                static_cast<double>(engine.stats().scheduled);
  state.counters["inline_frac"] =
      engine.stats().scheduled == 0
          ? 0.0
          : static_cast<double>(engine.stats().inline_callbacks) /
                static_cast<double>(engine.stats().scheduled);
}

// Self-rescheduling timer chain: the steady-state shape of transport RTO /
// polling loops — one live event, pool and wheel fully warm.
template <typename EngineT>
void TimerChainLoop(benchmark::State& state, EngineT& engine) {
  uint64_t sink = 0;
  for (auto _ : state) {
    int64_t remaining = state.range(0);
    std::function<void()> step;  // legacy engine needs a copyable callback
    step = [&engine, &remaining, &sink, &step] {
      ++sink;
      if (--remaining > 0) {
        engine.ScheduleAfter(1'000, step);
      }
    };
    engine.ScheduleAfter(1'000, step);
    engine.Run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_LegacyTimerChain(benchmark::State& state) {
  LegacyEngine engine;
  TimerChainLoop(state, engine);
}

void BM_TimerChain(benchmark::State& state) {
  sim::EngineOptions options;
  options.use_timing_wheel = state.range(1) != 0;
  options.pool_events = state.range(2) != 0;
  sim::Engine engine(options);
  TimerChainLoop(state, engine);
}

void RegisterAll() {
  constexpr int64_t kBatch = 4096;
  benchmark::RegisterBenchmark("E0/Engine/legacy", BM_LegacyEngine)->Args({kBatch});
  const std::pair<const char*, std::pair<int64_t, int64_t>> kVariants[] = {
      {"E0/Engine/wheel_pool", {1, 1}},
      {"E0/Engine/heap_pool", {0, 1}},
      {"E0/Engine/wheel_nopool", {1, 0}},
      {"E0/Engine/heap_nopool", {0, 0}},
  };
  for (const auto& [name, knobs] : kVariants) {
    benchmark::RegisterBenchmark(name, BM_Engine)->Args({kBatch, knobs.first, knobs.second});
  }
  constexpr int64_t kChain = 16384;
  benchmark::RegisterBenchmark("E0/TimerChain/legacy", BM_LegacyTimerChain)->Args({kChain});
  benchmark::RegisterBenchmark("E0/TimerChain/wheel_pool", BM_TimerChain)->Args({kChain, 1, 1});
  benchmark::RegisterBenchmark("E0/TimerChain/heap_nopool", BM_TimerChain)->Args({kChain, 0, 0});
}

const int kRegistered = (RegisterAll(), 0);

}  // namespace
