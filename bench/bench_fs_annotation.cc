// Experiment E8 — file-system annotation + end-to-end Parquet access (§2.3).
//
// A Parquet table lives in a file on an ExtFs volume on the DPU's NVMe.
// Two ways to scan one column with a selective filter:
//   host_stack  a server CPU mounts the FS and reads through the kernel
//               (syscalls, block stack, copies), then parses Parquet;
//   annotated   the DPU resolves the path and reads extents with *only*
//               the layout annotation — no FS code, no host, projection
//               and zone maps pushed down to chunk-granular fetches.
// Reported: sim_scan_ms, host_cpu_us (CPU time consumed), blocks_read.
//
// Expected shape: the annotated path wins on latency and reads fewer
// blocks (pushdown), and its host_cpu_us is exactly zero — the paper's
// "without any host-side, or client-side CPU involvement".

#include <benchmark/benchmark.h>

#include "src/baseline/host.h"
#include "src/common/rng.h"
#include "src/format/parquet.h"
#include "src/fs/annotation.h"
#include "src/fs/extfs.h"
#include "src/nvme/controller.h"

namespace {

using namespace hyperion;  // NOLINT

struct Volume {
  sim::Engine engine;
  nvme::Controller ctrl{&engine};
  uint32_t nsid = 0;
  std::unique_ptr<fs::ExtFs> extfs;
  uint64_t file_size = 0;
  uint32_t inode = 0;

  explicit Volume(int64_t row_groups) {
    nsid = ctrl.AddNamespace(65536);  // 256 MiB
    auto formatted = fs::ExtFs::Format(&ctrl, nsid);
    CHECK_OK(formatted.status());
    extfs = std::make_unique<fs::ExtFs>(std::move(*formatted));
    // Build the Parquet table: `rows_per_group` rows per group.
    constexpr uint64_t kRowsPerGroup = 4096;
    const uint64_t rows = static_cast<uint64_t>(row_groups) * kRowsPerGroup;
    std::vector<int64_t> ids;
    std::vector<int64_t> amounts;
    Rng rng(77);
    for (uint64_t r = 0; r < rows; ++r) {
      ids.push_back(static_cast<int64_t>(r));  // sorted: zone maps are tight
      amounts.push_back(static_cast<int64_t>(rng.Uniform(1000)));
    }
    format::RecordBatch batch(
        format::Schema{{"id", format::ColumnType::kInt64},
                       {"amount", format::ColumnType::kInt64}},
        {std::move(ids), std::move(amounts)});
    auto file = format::WriteParquet(batch, {.rows_per_group = kRowsPerGroup});
    CHECK_OK(file.status());
    file_size = file->size();
    CHECK_OK(extfs->Mkdir("/tables").status());
    auto created = extfs->CreateFile("/tables/orders.parquet");
    CHECK_OK(created.status());
    inode = *created;
    CHECK_OK(extfs->WriteFile(inode, 0, ByteSpan(file->data(), file->size())));
  }
};

void BM_HostStackScan(benchmark::State& state) {
  Volume volume(state.range(0));
  baseline::HostCpu cpu(&volume.engine);

  sim::Duration total = 0;
  uint64_t scans = 0;
  uint64_t rows_matched = 0;
  for (auto _ : state) {
    const sim::SimTime t0 = volume.engine.Now();
    // open() + path resolution through the kernel.
    cpu.Syscall();
    cpu.PageCacheLookup();
    // The host reads the *whole file* through the FS stack (the usual
    // read()-then-parse pattern), copying kernel->user.
    cpu.Syscall();
    cpu.BlockStackIo();
    auto blob = volume.extfs->ReadFile(volume.inode, 0, volume.file_size);
    CHECK_OK(blob.status());
    cpu.Copy(volume.file_size);
    auto reader = format::ParquetReader::OpenBuffer(std::move(*blob));
    CHECK_OK(reader.status());
    auto rows = reader->ScanInt64Filter("id", 1000, 1200, {"amount"});
    CHECK_OK(rows.status());
    rows_matched = rows->rows();
    total += volume.engine.Now() - t0;
    ++scans;
  }
  state.counters["sim_scan_ms"] = sim::ToMillis(total) / static_cast<double>(scans);
  state.counters["host_cpu_us"] =
      sim::ToMicros(cpu.BusyTime()) / static_cast<double>(scans);
  state.counters["rows_matched"] = static_cast<double>(rows_matched);
  state.SetLabel("host_fs_stack");
}

void BM_AnnotatedScan(benchmark::State& state) {
  Volume volume(state.range(0));
  fs::AnnotatedReader annotated(&volume.ctrl, volume.nsid,
                                fs::GenerateAnnotation(*volume.extfs));

  sim::Duration total = 0;
  uint64_t scans = 0;
  uint64_t rows_matched = 0;
  uint64_t blocks = 0;
  for (auto _ : state) {
    const sim::SimTime t0 = volume.engine.Now();
    auto inode = annotated.ResolvePath("/tables/orders.parquet");
    CHECK_OK(inode.status());
    const uint64_t before_blocks = annotated.BlockReads();
    // Chunk-granular fetches straight off the annotated extent map.
    auto reader = format::ParquetReader::Open(
        volume.file_size, [&](uint64_t offset, uint64_t length) {
          return annotated.ReadByInode(*inode, offset, length);
        });
    CHECK_OK(reader.status());
    auto rows = reader->ScanInt64Filter("id", 1000, 1200, {"amount"});
    CHECK_OK(rows.status());
    rows_matched = rows->rows();
    blocks = annotated.BlockReads() - before_blocks;
    total += volume.engine.Now() - t0;
    ++scans;
  }
  state.counters["sim_scan_ms"] = sim::ToMillis(total) / static_cast<double>(scans);
  state.counters["host_cpu_us"] = 0.0;  // no host CPU exists on this path
  state.counters["rows_matched"] = static_cast<double>(rows_matched);
  state.counters["blocks_read"] = static_cast<double>(blocks);
  state.SetLabel("annotated_cpu_free");
}

void RegisterAll() {
  for (int64_t groups : {1, 4, 16}) {
    benchmark::RegisterBenchmark(("E8/ParquetScan/host_stack/row_groups:" + std::to_string(groups)).c_str(), BM_HostStackScan)
        ->Args({groups})
        ->Iterations(10);
    benchmark::RegisterBenchmark(("E8/ParquetScan/annotated/row_groups:" + std::to_string(groups)).c_str(), BM_AnnotatedScan)
        ->Args({groups})
        ->Iterations(10);
  }
}

const int kRegistered = (RegisterAll(), 0);

}  // namespace
