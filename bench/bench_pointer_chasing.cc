// Experiment E5 — network pointer chasing (§2.4).
//
// "In a disaggregated storage, pointer chasing over B+ trees ... results in
// multiple network RTTs with significant performance degradation. These
// latency-sensitive applications can now be deployed in the FPGA."
//
// A client on the fabric looks up keys in a B+ tree stored on the DPU:
//   client_driven  fetches every node over the network (height RTTs);
//   offloaded      one RPC, the DPU walks the tree next to the data.
// Swept over tree size (height 2..4+ here) and network propagation delay.
// Reported: sim_lookup_us, rpcs (round trips per lookup).
//
// Expected shape: client-driven latency grows linearly with height while
// offloaded stays ~1 RTT + local walk; the gap widens with propagation
// delay (the RTT-multiplier is the whole story).

#include <benchmark/benchmark.h>

#include "src/dpu/hyperion.h"
#include "src/dpu/remote_tree.h"
#include "src/dpu/services.h"

namespace {

using namespace hyperion;  // NOLINT

struct Setup {
  sim::Engine engine;
  net::Fabric fabric;
  dpu::Hyperion dpu;
  net::HostId client;
  Rng rng{13};
  std::unique_ptr<dpu::HyperionServices> services;
  std::unique_ptr<net::Transport> transport;
  std::unique_ptr<dpu::RpcClient> rpc;
  std::unique_ptr<dpu::RemoteTreeClient> tree_client;
  uint64_t keys = 0;

  Setup(uint64_t key_count, sim::Duration propagation)
      : fabric(&engine, net::FabricParams{.propagation = propagation}),
        dpu(&engine, &fabric),
        keys(key_count) {
    client = fabric.AddHost("client");
    CHECK_OK(dpu.Boot());
    auto installed = dpu::HyperionServices::Install(&dpu);
    CHECK_OK(installed.status());
    services = std::move(*installed);
    for (uint64_t k = 0; k < key_count; ++k) {
      Bytes v;
      PutU64(v, k ^ 0xabcdef);
      CHECK_OK(services->tree().Insert(k, ByteSpan(v.data(), v.size())));
    }
    transport = net::MakeTransport(net::TransportKind::kRdma, &fabric, &rng);
    rpc = std::make_unique<dpu::RpcClient>(transport.get(), client, dpu.host_id(), &dpu.rpc());
    tree_client = std::make_unique<dpu::RemoteTreeClient>(rpc.get());
  }
};

void Run(benchmark::State& state, bool offloaded) {
  const auto keys = static_cast<uint64_t>(state.range(0));
  const auto propagation = static_cast<sim::Duration>(state.range(1));
  Setup setup(keys, propagation);

  sim::Duration total = 0;
  uint64_t lookups = 0;
  setup.tree_client->ResetStats();
  for (auto _ : state) {
    const uint64_t key = setup.rng.Uniform(keys);
    const sim::SimTime t0 = setup.engine.Now();
    auto result = offloaded ? setup.tree_client->OffloadedGet(key)
                            : setup.tree_client->ClientDrivenGet(key);
    if (!result.ok()) {
      state.SkipWithError("lookup failed");
      return;
    }
    total += setup.engine.Now() - t0;
    ++lookups;
  }
  state.counters["sim_lookup_us"] = sim::ToMicros(total) / static_cast<double>(lookups);
  state.counters["rpcs_per_lookup"] =
      static_cast<double>(setup.tree_client->rpcs_issued()) / static_cast<double>(lookups);
  state.counters["tree_height"] = setup.services->tree().Height();
  state.SetLabel(offloaded ? "offloaded" : "client_driven");
}

void BM_ClientDriven(benchmark::State& state) { Run(state, /*offloaded=*/false); }
void BM_Offloaded(benchmark::State& state) { Run(state, /*offloaded=*/true); }

void RegisterAll() {
  // Key counts chosen to step the tree height; propagation in ns (intra-
  // rack 250 ns, cross-rack ~2 us, cross-pod ~10 us one way).
  for (int64_t keys : {100, 2000, 40000}) {
    for (int64_t prop : {250, 2000, 10000}) {
      benchmark::RegisterBenchmark(("E5/PointerChase/client_driven/keys:" +
                                       std::to_string(keys) + "/prop_ns:" +
                                       std::to_string(prop)).c_str(),
                                   BM_ClientDriven)
          ->Args({keys, prop})
          ->Iterations(30);
      benchmark::RegisterBenchmark(("E5/PointerChase/offloaded/keys:" + std::to_string(keys) +
                                       "/prop_ns:" + std::to_string(prop)).c_str(),
                                   BM_Offloaded)
          ->Args({keys, prop})
          ->Iterations(30);
    }
  }
}

const int kRegistered = (RegisterAll(), 0);

}  // namespace
