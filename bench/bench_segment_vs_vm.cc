// Experiment E4 — segment translation vs page-based virtual memory (§2.1).
//
// The paper: segmentation-based location translation "is coarser
// (object-based) than virtual memory (page-based), thus reducing overheads
// associated with the virtual memory translation". We measure the modelled
// per-access translation cost of:
//   - Hyperion's segment table (one hashed lookup, object-granular);
//   - a 4 KiB-page MMU (L1/L2 TLB + page-walk cache + 4-level walk);
//   - the same MMU with 2 MiB huge pages (the VM camp's mitigation);
// across working sets from TLB-resident to far beyond TLB reach, with a
// uniform random access pattern. Reported: sim_ns_per_translation.
//
// Expected shape: all three are comparable while the TLB covers the working
// set; past TLB reach the 4K MMU cost climbs toward the walk cost while the
// segment table stays flat at kLookupCost. Huge pages delay but do not
// remove the cliff. (Crossover: segments win from ~the L2 TLB reach on.)

#include <algorithm>

#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/mem/segment_table.h"
#include "src/mem/vm_baseline.h"

namespace {

using namespace hyperion;  // NOLINT

void BM_SegmentTable(benchmark::State& state) {
  const uint64_t working_set = static_cast<uint64_t>(state.range(0)) << 20;
  // One segment per 64 KiB object.
  const uint64_t objects = working_set >> 16;
  mem::SegmentTable table;
  for (uint64_t i = 0; i < objects; ++i) {
    mem::Segment seg;
    seg.id = mem::SegmentId(1, i);
    seg.size = 64 << 10;
    seg.base = i * (64 << 10);
    CHECK_OK(table.Insert(seg));
  }
  Rng rng(42);
  uint64_t cost_total = 0;
  uint64_t accesses = 0;
  for (auto _ : state) {
    const mem::SegmentId id(1, rng.Uniform(objects));
    auto seg = table.Lookup(id);
    benchmark::DoNotOptimize(seg);
    cost_total += mem::SegmentTable::kLookupCost;
    ++accesses;
  }
  state.counters["sim_ns_per_translation"] =
      static_cast<double>(cost_total) / static_cast<double>(accesses);
  state.SetLabel("segment_table");
}

void BM_VirtualMemory(benchmark::State& state) {
  const uint64_t working_set = static_cast<uint64_t>(state.range(0)) << 20;
  const bool huge = state.range(1) != 0;
  mem::VirtualMemory vm;
  const uint64_t page = mem::PageBytes(huge ? mem::PageSize::k2M : mem::PageSize::k4K);
  const uint64_t mapped = std::max(working_set, page);  // round up tiny sets
  CHECK_OK(vm.MapRange(0, 0, mapped, huge ? mem::PageSize::k2M : mem::PageSize::k4K));
  Rng rng(42);
  uint64_t cost_total = 0;
  uint64_t accesses = 0;
  for (auto _ : state) {
    auto t = vm.Translate(rng.Uniform(working_set));
    if (!t.ok()) {
      state.SkipWithError("fault");
      return;
    }
    cost_total += t->cost;
    ++accesses;
  }
  state.counters["sim_ns_per_translation"] =
      static_cast<double>(cost_total) / static_cast<double>(accesses);
  state.SetLabel(huge ? "mmu_2m_pages" : "mmu_4k_pages");
}

void RegisterAll() {
  // Working sets in MiB: inside L1 TLB reach (64*4K=256K), inside L2 reach
  // (1536*4K=6M), then far past it.
  for (int64_t ws_mib : {1, 4, 64, 1024, 4096}) {
    benchmark::RegisterBenchmark(("E4/Translate/segment/ws_mib:" + std::to_string(ws_mib)).c_str(), BM_SegmentTable)
        ->Args({ws_mib})
        ->Iterations(20000);
    benchmark::RegisterBenchmark(("E4/Translate/mmu4k/ws_mib:" + std::to_string(ws_mib)).c_str(), BM_VirtualMemory)
        ->Args({ws_mib, 0})
        ->Iterations(20000);
    benchmark::RegisterBenchmark(("E4/Translate/mmu2m/ws_mib:" + std::to_string(ws_mib)).c_str(), BM_VirtualMemory)
        ->Args({ws_mib, 1})
        ->Iterations(20000);
  }
}

const int kRegistered = (RegisterAll(), 0);

}  // namespace
