// Experiment E18 — analytics scan pushdown (PR 10).
//
// Four experiment families:
//
//   E18/ScanPushdown/<kind>   one query shape (filter / filter_aggregate /
//       grouped_sum) over a 256k-row Parquet table stored on NVMe, executed
//       twice: as a streaming FPGA scan kernel reading row groups directly
//       from the device (zone-map skipping, chunk-granular fetches, no host
//       bounce), and on the src/baseline host path (whole-file block I/O
//       through the kernel stack, then decode on the CPU). The outputs are
//       CHECK-verified bit-identical; counters report both substrates:
//         fabric_scan_gbs      table bytes per simulated second, fabric path
//         host_scan_gbs        same, host path
//         fabric_moved_mb      device bytes moved by the fabric path
//         host_moved_mb        device bytes moved by the host path
//         bytes_ratio          host moved / fabric moved  (pushdown win)
//         groups_skipped_pct   row groups pruned by zone maps
//
//   E18/ReconfigSwap   alternating filter / grouped_sum queries on a
//       1-region fabric: every query pays an ICAP partial-reconfiguration
//       swap. Counters: reconfig_p50_ms / reconfig_max_ms (the paper's
//       10-100 ms band), swap rate, and scan throughput with swaps on the
//       critical path.
//
//   E18/MixedTenant/<arm>   the PR 5 OverloadCluster running KV traffic
//       and analytics scans concurrently on the same fabric. Arms:
//         kv_only    no analytics clients (baseline KV goodput/p99)
//         spatial    scans on their own endpoint + region set (spatial
//                    multiplexing) — KV goodput intact
//         shared     scans share the KV service pipeline — head-of-line
//                    blocking behind multi-ms scans collapses KV goodput
//       Counters: kv_goodput_pct, kv_p99_us, kv_miss_pct, scan_ok,
//       reconfig_p50_ms.
//
//   E18/ScanIdentity   determinism oracle: the mixed cluster re-run across
//       shard layouts {1,2,4} x threads on/off must produce bit-identical
//       OverloadResults (CHECK-aborts on divergence). Counter: layouts_ok.
//
// Regenerate the PR 10 numbers with
//   bench_scan --benchmark_filter='^E18' --benchmark_format=json > BENCH_PR10.json

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/baseline/scan.h"
#include "src/common/check.h"
#include "src/format/parquet.h"
#include "src/format/scan_kernel.h"
#include "src/fpga/fabric.h"
#include "src/fpga/scheduler.h"
#include "src/load/harness.h"
#include "src/nvme/controller.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace {

using namespace hyperion;  // NOLINT

// The E18 table: 256k rows, 4k-row groups. order_id is sequential, so its
// per-group zone maps are tight and range predicates prune most groups.
format::RecordBatch ScanTable(uint64_t rows) {
  std::vector<int64_t> order_id(rows);
  std::vector<int64_t> amount(rows);
  std::vector<std::string> region(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    order_id[i] = static_cast<int64_t>(i);
    amount[i] = static_cast<int64_t>((i * 0x9e3779b9ull + 12345) % 100000) - 50000;
    region[i] = std::string("r") + static_cast<char>('0' + (i * 2654435761ull >> 7) % 7);
  }
  std::vector<format::ColumnData> columns;
  columns.emplace_back(std::move(order_id));
  columns.emplace_back(std::move(amount));
  columns.emplace_back(std::move(region));
  auto batch = format::RecordBatch::Make({{"order_id", format::ColumnType::kInt64},
                                          {"amount", format::ColumnType::kInt64},
                                          {"region", format::ColumnType::kString}},
                                         std::move(columns));
  CHECK_OK(batch.status());
  return std::move(*batch);
}

struct ScanRig {
  explicit ScanRig(uint64_t rows = 256 * 1024, uint32_t regions = 2)
      : nvme(&engine) {
    fpga::FabricConfig config;
    config.regions = regions;
    fabric = std::make_unique<fpga::Fabric>(&engine, config);
    scheduler = std::make_unique<fpga::SlotScheduler>(&engine, fabric.get());
    format::ParquetWriteOptions write_options;
    write_options.rows_per_group = 4096;
    auto file = format::WriteParquet(ScanTable(rows), write_options);
    CHECK_OK(file.status());
    file_size = file->size();
    const uint32_t nsid = nvme.AddNamespace(file_size / nvme::kLbaSize + 8);
    auto stored = format::NvmeParquetFile::Store(&nvme, nsid, 0, *file);
    CHECK_OK(stored.status());
    table = std::make_unique<format::NvmeParquetFile>(std::move(*stored));
    kernel = std::make_unique<format::FpgaScanKernel>(&engine, fabric.get(),
                                                      scheduler.get());
  }

  sim::Engine engine;
  nvme::Controller nvme;
  std::unique_ptr<fpga::Fabric> fabric;
  std::unique_ptr<fpga::SlotScheduler> scheduler;
  uint64_t file_size = 0;
  std::unique_ptr<format::NvmeParquetFile> table;
  std::unique_ptr<format::FpgaScanKernel> kernel;
};

format::ScanQuery QueryOf(format::ScanKernelKind kind, uint64_t rows, uint64_t seq) {
  format::ScanQuery query;
  query.kind = kind;
  query.filter_column = "order_id";
  const uint64_t span = rows / 16;  // 1/16 selectivity: zone maps prune hard
  const uint64_t lo = (seq * 0x9e3779b97f4a7c15ull >> 8) % (rows - span + 1);
  query.lo = static_cast<int64_t>(lo);
  query.hi = static_cast<int64_t>(lo + span - 1);
  query.value_column = "amount";
  query.group_column = "region";
  return query;
}

// -- E18/ScanPushdown ---------------------------------------------------------

void BM_ScanPushdown(benchmark::State& state) {
  const auto kind = static_cast<format::ScanKernelKind>(state.range(0));
  constexpr uint64_t kRows = 256 * 1024;
  constexpr int kQueries = 8;
  uint64_t fabric_moved = 0;
  uint64_t host_moved = 0;
  uint64_t table_bytes = 0;
  uint64_t groups_total = 0;
  uint64_t groups_skipped = 0;
  double fabric_seconds = 0;
  double host_seconds = 0;
  for (auto _ : state) {
    ScanRig rig(kRows);
    table_bytes = rig.file_size;
    baseline::HostScanPath host(&rig.engine);
    for (int q = 0; q < kQueries; ++q) {
      const format::ScanQuery query = QueryOf(kind, kRows, static_cast<uint64_t>(q));
      auto fpga = rig.kernel->Execute(*rig.table, query);
      CHECK_OK(fpga.status());
      auto cpu = host.Execute(*rig.table, query);
      CHECK_OK(cpu.status());
      // The pushdown oracle: identical answers from both substrates.
      CHECK(fpga->output == cpu->output) << "fabric/host scan divergence";
      fabric_moved += fpga->stats.device_bytes_moved;
      host_moved += cpu->stats.device_bytes_moved;
      groups_total += fpga->stats.groups_total;
      groups_skipped += fpga->stats.groups_skipped;
      fabric_seconds += sim::ToSeconds(fpga->stats.exec_ns);
      host_seconds += sim::ToSeconds(cpu->stats.exec_ns);
    }
  }
  const double scans = static_cast<double>(kQueries) * static_cast<double>(state.iterations());
  const double scanned_gb = scans * static_cast<double>(table_bytes) / 1e9;
  state.SetItemsProcessed(static_cast<int64_t>(2 * kQueries * kRows) *
                          state.iterations());  // rows scanned, both substrates
  state.counters["fabric_scan_gbs"] = fabric_seconds > 0 ? scanned_gb / fabric_seconds : 0;
  state.counters["host_scan_gbs"] = host_seconds > 0 ? scanned_gb / host_seconds : 0;
  state.counters["fabric_moved_mb"] = static_cast<double>(fabric_moved) / 1e6;
  state.counters["host_moved_mb"] = static_cast<double>(host_moved) / 1e6;
  state.counters["bytes_ratio"] =
      fabric_moved > 0 ? static_cast<double>(host_moved) / static_cast<double>(fabric_moved) : 0;
  state.counters["groups_skipped_pct"] =
      groups_total > 0
          ? 100.0 * static_cast<double>(groups_skipped) / static_cast<double>(groups_total)
          : 0;
}

// -- E18/ReconfigSwap ---------------------------------------------------------

void BM_ReconfigSwap(benchmark::State& state) {
  constexpr uint64_t kRows = 64 * 1024;
  constexpr int kQueries = 16;
  uint64_t p50 = 0;
  uint64_t max = 0;
  uint64_t swaps = 0;
  uint64_t scanned = 0;
  double sim_seconds = 0;
  for (auto _ : state) {
    // One region: filter and grouped_sum can never be resident together, so
    // the alternation forces an ICAP swap per query.
    ScanRig rig(kRows, /*regions=*/1);
    sim::Histogram reconfig;
    const sim::SimTime start = rig.engine.Now();
    for (int q = 0; q < kQueries; ++q) {
      const auto kind = (q % 2 == 0) ? format::ScanKernelKind::kFilter
                                     : format::ScanKernelKind::kGroupedSum;
      auto result = rig.kernel->Execute(*rig.table, QueryOf(kind, kRows, static_cast<uint64_t>(q)));
      CHECK_OK(result.status());
      if (result->stats.reconfigured) {
        ++swaps;
        reconfig.Record(result->stats.reconfig_ns);
      }
      scanned += rig.file_size;
    }
    sim_seconds += sim::ToSeconds(rig.engine.Now() - start);
    p50 = reconfig.P50();
    max = reconfig.max();
    // The paper's partial-reconfiguration band: every swap in 10-100 ms.
    CHECK_GE(p50, 10 * sim::kMillisecond);
    CHECK_LE(max, 100 * sim::kMillisecond);
  }
  state.SetItemsProcessed(static_cast<int64_t>(kQueries * kRows) * state.iterations());
  state.counters["reconfig_p50_ms"] = static_cast<double>(p50) / 1e6;
  state.counters["reconfig_max_ms"] = static_cast<double>(max) / 1e6;
  state.counters["swaps_per_query"] =
      static_cast<double>(swaps) / (static_cast<double>(kQueries) * state.iterations());
  state.counters["scan_gbs_with_swaps"] =
      sim_seconds > 0 ? static_cast<double>(scanned) / 1e9 / sim_seconds : 0;
}

// -- E18/MixedTenant ----------------------------------------------------------

load::OverloadClusterOptions MixedOptions(uint32_t analytics_clients, bool spatial) {
  load::OverloadClusterOptions options;
  options.workload = load::OverloadWorkload::kLsmKv;
  options.num_clients = 3;
  options.requests_per_client = 64;
  options.interarrival = 25 * sim::kMicrosecond;
  options.kv_key_space = 128;
  options.analytics_clients = analytics_clients;
  options.scan_requests_per_client = 6;
  options.scan_interarrival = 250 * sim::kMicrosecond;
  options.scan_table_rows = 8192;
  options.scan_rows_per_group = 512;
  options.analytics_spatial = spatial;
  return options;
}

void BM_MixedTenant(benchmark::State& state) {
  const auto analytics_clients = static_cast<uint32_t>(state.range(0));
  const bool spatial = state.range(1) != 0;
  uint64_t issued = 0;
  uint64_t ok = 0;
  uint64_t missed = 0;
  uint64_t p99 = 0;
  uint64_t scan_ok = 0;
  uint64_t reconfig_p50 = 0;
  for (auto _ : state) {
    load::OverloadCluster cluster(MixedOptions(analytics_clients, spatial));
    const load::OverloadResult result = cluster.Run();
    CHECK_EQ(result.failed, 0u);
    CHECK_EQ(result.scan_failed, 0u);
    CHECK_EQ(result.scan_ok, result.scan_issued);
    issued += result.issued;
    ok += result.ok;
    missed += result.deadline_missed;
    p99 = result.latency_p99_ns;
    scan_ok += result.scan_ok;
    reconfig_p50 = result.scan_reconfig_p50_ns;
  }
  state.SetItemsProcessed(static_cast<int64_t>(issued + scan_ok));
  state.counters["kv_goodput_pct"] =
      issued > 0 ? 100.0 * static_cast<double>(ok) / static_cast<double>(issued) : 0;
  state.counters["kv_p99_us"] = static_cast<double>(p99) / 1000.0;
  state.counters["kv_miss_pct"] =
      issued > 0 ? 100.0 * static_cast<double>(missed) / static_cast<double>(issued) : 0;
  state.counters["scan_ok"] = static_cast<double>(scan_ok) / state.iterations();
  state.counters["reconfig_p50_ms"] = static_cast<double>(reconfig_p50) / 1e6;
}

// -- E18/ScanIdentity ---------------------------------------------------------

void BM_ScanIdentity(benchmark::State& state) {
  uint64_t layouts = 0;
  uint64_t processed = 0;
  for (auto _ : state) {
    load::OverloadClusterOptions base = MixedOptions(2, /*spatial=*/true);
    base.num_shards = 1;
    base.use_threads = false;
    load::OverloadCluster golden_cluster(base);
    const load::OverloadResult golden = golden_cluster.Run();
    CHECK_NE(golden.scan_fingerprint, 0u);
    layouts = 0;
    for (uint32_t shards : {1u, 2u, 4u}) {
      for (bool threads : {false, true}) {
        load::OverloadClusterOptions options = MixedOptions(2, /*spatial=*/true);
        options.num_shards = shards;
        options.use_threads = threads;
        load::OverloadCluster cluster(options);
        const load::OverloadResult result = cluster.Run();
        CHECK(result == golden) << "scan determinism violation: shards=" << shards
                                << " threads=" << threads;
        ++layouts;
        processed += result.issued + result.scan_issued;
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(processed));
  state.counters["layouts_ok"] = static_cast<double>(layouts);
}

void RegisterAll() {
  for (int64_t kind = 0; kind < static_cast<int64_t>(format::kScanKernelKindCount); ++kind) {
    benchmark::RegisterBenchmark(
        (std::string("E18/ScanPushdown/") +
         std::string(format::ScanKernelName(static_cast<format::ScanKernelKind>(kind))))
            .c_str(),
        BM_ScanPushdown)
        ->Args({kind})
        ->Iterations(2)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("E18/ReconfigSwap", BM_ReconfigSwap)
      ->Iterations(2)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("E18/MixedTenant/kv_only", BM_MixedTenant)
      ->Args({0, 1})
      ->Iterations(2)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("E18/MixedTenant/spatial", BM_MixedTenant)
      ->Args({2, 1})
      ->Iterations(2)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("E18/MixedTenant/shared", BM_MixedTenant)
      ->Args({2, 0})
      ->Iterations(2)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("E18/ScanIdentity", BM_ScanIdentity)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

const int kRegistered = (RegisterAll(), 0);

}  // namespace
