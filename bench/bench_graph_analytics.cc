// Workload exploration W1 (paper §4): graph analytics as a "killer
// workload" candidate — "LDBC Graphalytics with graph database ...
// data-intensive and ... shown to benefit from FPGA acceleration".
//
// A synthetic scale-free graph lives in the DPU's fast tier as CSR
// segments. BFS and PageRank run two ways:
//   near_data     the traversal executes on the DPU beside the segments
//                 (segment-translation + HBM/DRAM costs only);
//   client_driven the same traversal from a remote client that must fetch
//                 every offset/adjacency slice over the fabric (one RTT
//                 per segment read on top of the same media costs).
// Reported: sim_ms per run and the segment-read count.
//
// Expected shape: the remote penalty is segment_reads x RTT, so it grows
// linearly with graph size while the near-data run grows only with media
// time — the E5 pointer-chasing argument at graph scale.

#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/mem/object_store.h"
#include "src/net/fabric.h"
#include "src/nvme/controller.h"
#include "src/storage/graph.h"

namespace {

using namespace hyperion;  // NOLINT

struct GraphSetup {
  sim::Engine engine;
  nvme::Controller ctrl{&engine};
  std::unique_ptr<mem::ObjectStore> store;
  std::unique_ptr<storage::CsrGraph> graph;
  net::Fabric fabric{&engine};
  net::HostId client;
  net::HostId dpu;

  explicit GraphSetup(uint32_t nodes) {
    mem::ObjectStoreConfig config;
    config.dram_bytes = 128u << 20;
    config.hbm_bytes = 64u << 20;
    config.nvme_nsid = ctrl.AddNamespace(65536);
    store = std::make_unique<mem::ObjectStore>(&engine, &ctrl, config);
    client = fabric.AddHost("client");
    dpu = fabric.AddHost("hyperion");
    // Preferential-attachment-flavoured scale-free graph: new vertices link
    // to a few earlier ones, biased toward low ids (hubs).
    Rng rng(4242);
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    for (uint32_t v = 1; v < nodes; ++v) {
      const uint32_t out = 1 + static_cast<uint32_t>(rng.Uniform(4));
      for (uint32_t e = 0; e < out; ++e) {
        const auto target = static_cast<uint32_t>(rng.Uniform(v) * rng.Uniform(v) / std::max<uint32_t>(v, 1));
        edges.emplace_back(v, std::min(target, v - 1));
        edges.emplace_back(std::min(target, v - 1), v);  // make it reachable
      }
    }
    auto built = storage::CsrGraph::Build(store.get(), 1, nodes, edges);
    CHECK_OK(built.status());
    graph = std::make_unique<storage::CsrGraph>(std::move(*built));
  }
};

void BM_Bfs(benchmark::State& state) {
  const auto nodes = static_cast<uint32_t>(state.range(0));
  const bool remote = state.range(1) != 0;
  GraphSetup setup(nodes);
  const sim::Duration rtt = *setup.fabric.Rtt(setup.client, setup.dpu);

  sim::Duration total = 0;
  uint64_t runs = 0;
  uint64_t reads = 0;
  for (auto _ : state) {
    setup.graph->ResetStats();
    const sim::SimTime t0 = setup.engine.Now();
    CHECK_OK(setup.graph->Bfs(0).status());
    sim::Duration elapsed = setup.engine.Now() - t0;
    reads = setup.graph->segment_reads();
    if (remote) {
      // Each segment read becomes a dependent network round trip.
      const sim::Duration penalty = reads * rtt;
      setup.engine.Advance(penalty);
      elapsed += penalty;
    }
    total += elapsed;
    ++runs;
  }
  state.counters["sim_ms"] = sim::ToMillis(total) / static_cast<double>(runs);
  state.counters["segment_reads"] = static_cast<double>(reads);
  state.SetLabel(remote ? "client_driven" : "near_data");
}

void BM_PageRank(benchmark::State& state) {
  const auto nodes = static_cast<uint32_t>(state.range(0));
  const bool remote = state.range(1) != 0;
  GraphSetup setup(nodes);
  const sim::Duration rtt = *setup.fabric.Rtt(setup.client, setup.dpu);

  sim::Duration total = 0;
  uint64_t runs = 0;
  for (auto _ : state) {
    setup.graph->ResetStats();
    const sim::SimTime t0 = setup.engine.Now();
    CHECK_OK(setup.graph->PageRank(5).status());
    sim::Duration elapsed = setup.engine.Now() - t0;
    if (remote) {
      const sim::Duration penalty = setup.graph->segment_reads() * rtt;
      setup.engine.Advance(penalty);
      elapsed += penalty;
    }
    total += elapsed;
    ++runs;
  }
  state.counters["sim_ms"] = sim::ToMillis(total) / static_cast<double>(runs);
  state.SetLabel(remote ? "client_driven" : "near_data");
}

void RegisterAll() {
  for (int64_t nodes : {1000, 10000}) {
    for (int remote : {0, 1}) {
      benchmark::RegisterBenchmark(
          ("W1/GraphBfs/" + std::string(remote != 0 ? "client_driven" : "near_data") +
           "/nodes:" + std::to_string(nodes))
              .c_str(),
          BM_Bfs)
          ->Args({nodes, remote})
          ->Iterations(3);
      benchmark::RegisterBenchmark(
          ("W1/GraphPageRank/" + std::string(remote != 0 ? "client_driven" : "near_data") +
           "/nodes:" + std::to_string(nodes))
              .c_str(),
          BM_PageRank)
          ->Args({nodes, remote})
          ->Iterations(2);
    }
  }
}

const int kRegistered = (RegisterAll(), 0);

}  // namespace
