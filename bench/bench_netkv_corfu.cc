// Experiment E9 — network-attached data structures (§2.4): KV-SSD under
// YCSB-style mixes on three index backends, and Corfu-style shared-log
// appends with a growing client population.
//
// Reported: sim_kops (modelled throughput), and for the log the append
// latency split between the sequencer step and the storage write.
//
// Expected shape: YCSB-C (read-only) favours btree/hash; YCSB-A (50%
// writes) favours the LSM; log append throughput scales with clients until
// the flash tier's channel parallelism saturates.

#include <algorithm>

#include <benchmark/benchmark.h>

#include "src/dpu/hyperion.h"
#include "src/nvme/flash.h"
#include "src/dpu/services.h"

namespace {

using namespace hyperion;  // NOLINT

struct Setup {
  sim::Engine engine;
  net::Fabric fabric{&engine};
  dpu::Hyperion dpu{&engine, &fabric};
  Rng rng{21};
  std::unique_ptr<dpu::HyperionServices> services;
  std::vector<std::unique_ptr<dpu::RpcClient>> clients;
  std::unique_ptr<net::Transport> transport;

  Setup(storage::KvBackend backend, int client_count) {
    CHECK_OK(dpu.Boot());
    auto installed = dpu::HyperionServices::Install(&dpu, backend);
    CHECK_OK(installed.status());
    services = std::move(*installed);
    transport = net::MakeTransport(net::TransportKind::kRdma, &fabric, &rng);
    for (int c = 0; c < client_count; ++c) {
      const net::HostId host = fabric.AddHost("client" + std::to_string(c));
      clients.push_back(std::make_unique<dpu::RpcClient>(transport.get(), host, dpu.host_id(),
                                                         &dpu.rpc()));
    }
  }
};

constexpr uint64_t kKeySpace = 2000;
constexpr uint64_t kValueBytes = 256;

// write_pct: 50 = YCSB-A, 5 = YCSB-B, 0 = YCSB-C.
void BM_Ycsb(benchmark::State& state) {
  const auto backend = static_cast<storage::KvBackend>(state.range(0));
  const auto write_pct = static_cast<uint64_t>(state.range(1));
  Setup setup(backend, 1);

  // Preload the key space.
  Bytes value(kValueBytes, 0x11);
  for (uint64_t k = 0; k < kKeySpace; ++k) {
    CHECK_OK(setup.services->kv().Put(k, ByteSpan(value.data(), value.size())));
  }

  uint64_t ops = 0;
  const sim::SimTime start = setup.engine.Now();
  for (auto _ : state) {
    const uint64_t key = setup.rng.Zipf(kKeySpace, 0.99);
    if (setup.rng.Uniform(100) < write_pct) {
      Bytes put;
      PutU64(put, key);
      PutU32(put, static_cast<uint32_t>(value.size()));
      PutBytes(put, ByteSpan(value.data(), value.size()));
      auto r = setup.clients[0]->Call({dpu::ServiceId::kKv, dpu::KvOp::kPut, std::move(put)});
      CHECK_OK(r.status());
    } else {
      Bytes get;
      PutU64(get, key);
      auto r = setup.clients[0]->Call({dpu::ServiceId::kKv, dpu::KvOp::kGet, std::move(get)});
      CHECK_OK(r.status());
    }
    ++ops;
  }
  const double seconds = sim::ToSeconds(setup.engine.Now() - start);
  state.counters["sim_kops"] = static_cast<double>(ops) / seconds / 1000.0;
  state.SetLabel(std::string(storage::KvBackendName(backend)) + "/write_pct:" +
                 std::to_string(write_pct));
}

// Client-driven Corfu fast path (the CORFU paper's protocol): each client
// grabs a position from the sequencer (a counter increment, ~100 ns of
// shell logic serialized at the DPU) and then writes *directly* to the
// stripe unit owning that position. Writes from concurrent clients land on
// different flash channels and overlap; the round completes when the last
// one does. Throughput therefore scales with clients until the channel
// parallelism (8 here) saturates — the expected shape.
void BM_CorfuAppendScaling(benchmark::State& state) {
  const auto clients = static_cast<uint64_t>(state.range(0));
  sim::Engine engine;
  net::Fabric fabric(&engine);
  const net::HostId dpu_host = fabric.AddHost("hyperion");
  std::vector<net::HostId> client_hosts;
  for (uint64_t c = 0; c < clients; ++c) {
    client_hosts.push_back(fabric.AddHost("client" + std::to_string(c)));
  }
  nvme::FlashDevice flash(1u << 20);  // stripe units = flash channels (8)
  constexpr sim::Duration kSequencerStep = 100;
  constexpr uint64_t kEntryBlocks = 1;  // 512 B entries round to one LBA

  uint64_t tail = 0;
  uint64_t appends = 0;
  const sim::SimTime start = engine.Now();
  for (auto _ : state) {
    // One round: every client appends once, concurrently.
    const sim::SimTime round_start = engine.Now();
    sim::SimTime round_end = round_start;
    for (uint64_t c = 0; c < clients; ++c) {
      const sim::Duration to_dpu = *fabric.OneWayLatency(client_hosts[c], dpu_host, 64);
      // Sequencer grants serialize (tiny); data writes stripe channels.
      const sim::SimTime seq_done =
          round_start + to_dpu + kSequencerStep * (c + 1);
      const uint64_t position = tail++;
      const sim::Duration write =
          flash.ServiceTime(position, kEntryBlocks, /*is_write=*/true, seq_done);
      const sim::Duration back = *fabric.OneWayLatency(dpu_host, client_hosts[c], 64);
      round_end = std::max(round_end, seq_done + write + back);
      ++appends;
    }
    engine.AdvanceTo(round_end);
  }
  const double seconds = sim::ToSeconds(engine.Now() - start);
  state.counters["sim_kappends_per_s"] = static_cast<double>(appends) / seconds / 1000.0;
  state.counters["log_tail"] = static_cast<double>(tail);
  state.SetLabel("clients:" + std::to_string(clients));
}

void RegisterAll() {
  for (int backend = 0; backend < 3; ++backend) {
    for (int64_t write_pct : {50, 5, 0}) {
      const char* mix = write_pct == 50 ? "A" : write_pct == 5 ? "B" : "C";
      benchmark::RegisterBenchmark((std::string("E9/YCSB-") + mix + "/" +
              std::string(storage::KvBackendName(static_cast<storage::KvBackend>(backend)))).c_str(),
          BM_Ycsb)
          ->Args({backend, write_pct})
          ->Iterations(300);
    }
  }
  for (int64_t clients : {1, 2, 4, 8, 16, 32}) {
    benchmark::RegisterBenchmark(("E9/CorfuAppend/clients:" + std::to_string(clients)).c_str(), BM_CorfuAppendScaling)
        ->Args({clients})
        ->Iterations(300);
  }
}

const int kRegistered = (RegisterAll(), 0);

}  // namespace
