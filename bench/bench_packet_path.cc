// Experiment E16 — line-rate XDP ingress (PR 8).
//
// The headline: three verified eBPF programs compiled into an FPGA
// match/action chain (fpga::MatchActionPipeline) against the same programs
// interpreted serially behind the kernel network stack (baseline::HostCpu),
// both fed the identical deterministic 2x100 GbE trace with over a million
// concurrent flows tracked in a storage::HashIndex on the HBM tier.
//
//   PacketPath/fpga:{0,1}/flows_log2:N
//       Full trace (ramp opens every flow, then a back-to-back steady
//       window at the aggregate line rate). Counters per run:
//         sim_mpps        steady-phase delivered Mpps on the virtual clock
//         line_mpps       the attachment's packet budget at this frame size
//         flow_entries    concurrent flows resident in the hash index
//         fast_hit_pct    steady traffic absorbed in-fabric (front map)
//         shed_pct        packets shed by ring overflow or admission
//       At flows_log2:20 (1,048,576 flows, 1024-byte frames) the fabric
//       arm's bottleneck stage admits a frame every 32 ns against a 40.9 ns
//       wire time, so sim_mpps == line_mpps; the host arm pays the kernel
//       stack per packet on one core and saturates at a small fraction.
//
//   PacketPathSmoke/fpga:{0,1}   the same shape at CI scale.
//
//   Attribution   one traced run; per-batch critical-path self-time split
//       by subsystem (wire vs fabric chain vs flow table vs apps) from the
//       PR 4 span tracer, as counters.
//
//   ClusterIdentity   the E16 oracle: XdpCluster runs over shard layouts
//       {1,2,4} x threads {off,on} must produce bit-identical results
//       (including the per-packet verdict hash). Aborts on divergence.
//
// Regenerate the PR 8 numbers with
//   bench_packet_path --benchmark_format=json > BENCH_PR8.json

#include <algorithm>
#include <cstdint>
#include <memory>

#include <benchmark/benchmark.h>

#include "src/common/check.h"
#include "src/dpu/hyperion.h"
#include "src/load/packet_trace.h"
#include "src/load/xdp.h"
#include "src/net/fabric.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace {

using namespace hyperion;  // NOLINT

struct Rig {
  sim::Engine engine;
  net::Fabric fabric{&engine, {}};
  dpu::Hyperion dpu;

  explicit Rig(uint64_t hbm_bytes)
      : dpu(&engine, &fabric, [&] {
          dpu::HyperionConfig config;
          config.nvme_devices = 1;
          config.lbas_per_device = 65536;
          config.hbm_bytes = hbm_bytes;
          config.dram_bytes = 128ull << 20;
          return config;
        }()) {
    CHECK(dpu.Boot().ok());
  }
};

// One option set for both arms, scaled by flow count. The headline keeps
// the whole flow population DRAM-resident in the load balancer (the flash
// spill tier is exercised by the fault tests, not the line-rate claim) and
// paces the ramp so connection setup — flow-table insert plus placement —
// fits the interarrival gap on both arms.
load::XdpOptions PathOptions(uint32_t flows, uint64_t steady, bool fpga) {
  load::XdpOptions options;
  options.trace.benign_flows = flows;
  options.trace.hot_flows = flows / 16;
  options.trace.attacker_ips = 64;
  options.trace.attack_packets_per_ip = 8;
  options.trace.steady_packets = steady;
  options.trace.hot_per_myriad = 9800;
  options.trace.frame_bytes = 1024;  // 40.9 ns wire > 32 ns fabric admission
  options.trace.ramp_interarrival = 4 * sim::kMicrosecond;
  options.front_entries = options.trace.hot_flows;
  options.flow_buckets = std::max(64u, flows / 64);
  options.lb_resident = flows;
  options.lb_spill_buckets = 256;
  options.backends = 4;
  // Match tables live in on-fabric BRAM: dual-ported, 4-cycle lookups.
  options.codegen.mem_ports = 2;
  options.codegen.helper_cycles = 4;
  options.use_fpga = fpga;
  return options;
}

uint64_t HbmFor(const load::XdpOptions& options) {
  // Root directory plus overflow-chain headroom, floor of 64 MiB.
  const uint64_t directory = uint64_t{options.flow_buckets} * 4096;
  return std::max<uint64_t>(64ull << 20, directory * 4);
}

void RunPacketPath(benchmark::State& state, uint32_t flows, uint64_t steady) {
  const bool fpga = state.range(0) != 0;
  const load::XdpOptions options = PathOptions(flows, steady, fpga);
  load::XdpStats stats;
  uint64_t total_packets = 0;
  for (auto _ : state) {
    Rig rig(HbmFor(options));
    auto built = load::XdpPipeline::Create(&rig.dpu, options);
    CHECK(built.ok());
    CHECK((*built)->Run().ok());
    stats = (*built)->Snapshot();
    total_packets += (*built)->trace().total_packets();
  }
  const load::PacketTrace trace(options.trace);
  state.SetItemsProcessed(static_cast<int64_t>(total_packets));
  state.counters["sim_mpps"] = stats.SteadyMpps();
  state.counters["line_mpps"] =
      1e3 / static_cast<double>(trace.FrameWireTime());
  state.counters["flow_entries"] = static_cast<double>(stats.flow_entries);
  state.counters["fast_hit_pct"] =
      100.0 * static_cast<double>(stats.fast_hits) /
      static_cast<double>(stats.steady_offered ? stats.steady_offered : 1);
  state.counters["shed_pct"] =
      100.0 *
      static_cast<double>(stats.rx_overflow + stats.slow_shed + stats.auth_shed) /
      static_cast<double>(stats.rx_frames ? stats.rx_frames : 1);
  state.counters["flow_max_chain"] = static_cast<double>(stats.flow_max_chain);
}

void PacketPath(benchmark::State& state) {
  RunPacketPath(state, 1u << 20, 1 << 18);
}

void PacketPathSmoke(benchmark::State& state) {
  RunPacketPath(state, 1u << 14, 1 << 15);
}

BENCHMARK(PacketPath)
    ->Name("E16/PacketPath")
    ->ArgNames({"fpga"})
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(PacketPathSmoke)
    ->Name("E16/PacketPathSmoke")
    ->ArgNames({"fpga"})
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Per-stage critical-path attribution (PR 4 tracer): where a batch's time
// actually goes — the wire (kNet), the match/action chain (kFpga), the
// flow table (kStore) and the apps behind REDIRECT (kApp).
void Attribution(benchmark::State& state) {
  const load::XdpOptions options = PathOptions(1u << 14, 1 << 15, /*fpga=*/true);
  obs::CriticalPathReport report;
  uint64_t batches = 1;
  for (auto _ : state) {
    Rig rig(HbmFor(options));
    obs::Tracer tracer(0);
    auto built = load::XdpPipeline::Create(&rig.dpu, options);
    CHECK(built.ok());
    (*built)->set_tracer(&tracer);
    CHECK((*built)->Run().ok());
    report = obs::BuildCriticalPathReport(tracer.spans());
    batches = (*built)->counters().Get("xdp_rx_batches");
    state.SetItemsProcessed(
        static_cast<int64_t>((*built)->trace().total_packets()));
  }
  const auto per_batch = [&](obs::Subsystem s) {
    return static_cast<double>(report.totals[static_cast<size_t>(s)]) /
           static_cast<double>(batches);
  };
  state.counters["wire_ns_per_batch"] = per_batch(obs::Subsystem::kNet);
  state.counters["fabric_ns_per_batch"] = per_batch(obs::Subsystem::kFpga);
  state.counters["table_ns_per_batch"] = per_batch(obs::Subsystem::kStore);
  state.counters["app_ns_per_batch"] = per_batch(obs::Subsystem::kApp);
}

BENCHMARK(Attribution)
    ->Name("E16/Attribution")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The determinism oracle as a benchmark: all six shard/thread layouts must
// produce bit-identical XdpClusterResult snapshots (verdict hash included).
void ClusterIdentity(benchmark::State& state) {
  uint64_t messages = 0;
  uint64_t packets = 0;
  for (auto _ : state) {
    load::XdpClusterResult baseline;
    bool first = true;
    for (uint32_t shards : {1u, 2u, 4u}) {
      for (bool threads : {false, true}) {
        load::XdpClusterOptions options;
        options.xdp = PathOptions(1u << 12, 1 << 13, /*fpga=*/true);
        options.xdp.flow_buckets = 256;
        options.num_backends = 3;
        options.num_shards = shards;
        options.use_threads = threads;
        options.policy.enabled = true;
        options.spray_sample = 4;
        load::XdpCluster cluster(options);
        const load::XdpClusterResult result = cluster.Run();
        CHECK_GT(result.xdp.verdict_hash, 0u);
        if (first) {
          baseline = result;
          first = false;
        } else {
          CHECK(result == baseline);  // E16 acceptance: bit-identical
        }
        messages += result.messages;
        packets += result.xdp.rx_frames;
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(packets));
  state.counters["layouts"] = 6;
  state.counters["identical"] = 1;
  state.counters["messages"] = static_cast<double>(messages);
}

BENCHMARK(ClusterIdentity)
    ->Name("E16/ClusterIdentity")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
