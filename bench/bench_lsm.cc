// Experiment E14 — LSM engine on ZNS flash under YCSB mixes (PR 6).
//
// Families (all simulated time; Iterations(1) since each run is a full
// deterministic workload, not a microbenchmark):
//
//   Ycsb{A,B,C}/<offload>/<credits>   load 2^20 distinct keys (permuted
//       order, 64-byte values, group commit of 64), then run 200k ops of the
//       mix: A = 50/50 read/update, B = 95/5, C = read-only. Reads are
//       Zipf(0.99); updates hit uniform keys. Background compaction is
//       pumped between ops and competes with the foreground for NVMe
//       credits when a gate is configured (credits > 0). Counters:
//         load_kops_s, mix_kops_s      throughput in simulated time
//         read_p99_us, write_p99_us    foreground latency tails in the mix
//         write_amp                    device bytes appended / user bytes
//         read_amp_blocks              SSTable blocks read per Get
//         bloom_skip_pct               table probes suppressed by blooms
//         fg_stall_pct                 foreground ops that hit credit stalls
//         fpga_merges / host_merges    where compaction merges executed
//   KillMidCompaction   loads the same 2^20 keys, reopens cleanly
//       (timing the WAL-truncating recovery), then arms a deterministic
//       power cut, builds fresh compaction debt, and dies mid-CompactAll.
//       The final reopen is timed and audited: every key whose last
//       acknowledged write precedes the cut must read back exactly.
//         clean_recovery_us, kill_recovery_us, acked_loss (must be 0),
//         orphan_zones_reset, wal_replayed
//   Smoke/*   the same pipelines at 2^14 keys for CI.
//
// Regenerate the PR 6 numbers with
//   bench_lsm --benchmark_filter='^(Ycsb|Kill)' --benchmark_format=json > BENCH_PR6.json

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/fpga/fabric.h"
#include "src/fpga/scheduler.h"
#include "src/nvme/controller.h"
#include "src/nvme/zns.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/sim/flow.h"
#include "src/sim/time.h"
#include "src/storage/lsm_engine.h"

namespace {

using namespace hyperion;  // NOLINT

constexpr uint64_t kZoneLbas = 1024;  // 4 MiB zones
constexpr uint32_t kZones = 128;      // 512 MiB namespace
constexpr size_t kValueLen = 64;

// The full rig an engine instance runs on. The FPGA fabric is present even
// for offload=0 runs; the engine simply never uses it.
struct Rig {
  explicit Rig(uint32_t credits) {
    nsid = controller.AddNamespace(kZones * kZoneLbas);
    auto created = nvme::ZonedNamespace::Create(&controller, nsid, kZoneLbas);
    CHECK_OK(created.status());
    zns.emplace(std::move(created).value());
    fabric.emplace(&engine);
    scheduler.emplace(&engine, &*fabric);
    if (credits > 0) {
      gate.emplace(credits);
    }
  }

  storage::LsmDeps Deps() {
    return storage::LsmDeps{.engine = &engine,
                            .zns = &*zns,
                            .fpga_sched = &*scheduler,
                            .fabric = &*fabric,
                            .nvme_credits = gate ? &*gate : nullptr,
                            .injector = injector ? &*injector : nullptr};
  }

  sim::Engine engine;
  nvme::Controller controller{&engine};
  uint32_t nsid = 0;
  std::optional<nvme::ZonedNamespace> zns;
  std::optional<fpga::Fabric> fabric;
  std::optional<fpga::SlotScheduler> scheduler;
  std::optional<sim::CreditGate> gate;
  std::optional<sim::FaultInjector> injector;
};

storage::LsmEngineOptions BenchOptions(bool offload) {
  storage::LsmEngineOptions options;
  options.wal_group_ops = 64;
  options.level1_bytes = 6 * 1024 * 1024;
  options.level_fanout = 4;
  options.fpga_offload = offload;
  return options;
}

// Deterministic 64-byte value: an 8-byte write tag followed by key-derived
// filler, so recovery audits can verify content, not just presence.
Bytes MakeValue(uint64_t key, uint64_t tag) {
  Bytes value(kValueLen);
  for (size_t i = 0; i < 8; ++i) {
    value[i] = static_cast<uint8_t>(tag >> (8 * i));
  }
  for (size_t i = 8; i < kValueLen; ++i) {
    value[i] = static_cast<uint8_t>(key * 31 + i);
  }
  return value;
}

// Odd multiplier modulo a power of two is a bijection: loads every key
// exactly once in a scattered order.
uint64_t Permute(uint64_t i, uint64_t key_bits) {
  return (i * 2654435761ULL) & ((1ULL << key_bits) - 1);
}

void LoadKeys(storage::LsmEngine& lsm, uint64_t key_bits) {
  const uint64_t n = 1ULL << key_bits;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t key = Permute(i, key_bits);
    Bytes value = MakeValue(key, /*tag=*/i + 1);
    CHECK_OK(lsm.Put(key, ByteSpan(value.data(), value.size())).status());
    if (i % 8 == 0) {
      CHECK_OK(lsm.CompactStep().status());
    }
  }
  CHECK_OK(lsm.Sync());
}

uint64_t P99(std::vector<uint64_t>& ns) {
  if (ns.empty()) {
    return 0;
  }
  const size_t idx = ns.size() * 99 / 100;
  std::nth_element(ns.begin(), ns.begin() + idx, ns.end());
  return ns[idx];
}

void RunYcsb(benchmark::State& state, uint64_t key_bits, int read_pct, bool offload,
             uint32_t credits, int mix_ops) {
  for (auto _ : state) {
    Rig rig(credits);
    auto lsm = storage::LsmEngine::Format(rig.Deps(), BenchOptions(offload)).value();

    const sim::SimTime load_t0 = rig.engine.Now();
    LoadKeys(*lsm, key_bits);
    const double load_seconds = sim::ToSeconds(rig.engine.Now() - load_t0);
    const uint64_t user_bytes =
        (1ULL << key_bits) * (kValueLen + 13);  // encoded entry footprint

    Rng rng(0x9C5B + key_bits);
    std::vector<uint64_t> read_ns;
    std::vector<uint64_t> write_ns;
    read_ns.reserve(mix_ops);
    write_ns.reserve(mix_ops);
    const storage::LsmEngineStats before = lsm->stats();
    const sim::SimTime mix_t0 = rig.engine.Now();
    uint64_t tag = (1ULL << key_bits) + 1;
    for (int i = 0; i < mix_ops; ++i) {
      const bool is_read = rng.Uniform(100) < static_cast<uint64_t>(read_pct);
      const sim::SimTime t0 = rig.engine.Now();
      if (is_read) {
        const uint64_t key = rng.Zipf(1ULL << key_bits, 0.99);
        auto got = lsm->Get(key);
        CHECK_OK(got.status());
        read_ns.push_back(rig.engine.Now() - t0);
      } else {
        const uint64_t key = rng.Uniform(1ULL << key_bits);
        Bytes value = MakeValue(key, tag++);
        CHECK_OK(lsm->Put(key, ByteSpan(value.data(), value.size())).status());
        write_ns.push_back(rig.engine.Now() - t0);
      }
      if (i % 4 == 0) {
        CHECK_OK(lsm->CompactStep().status());
      }
    }
    const double mix_seconds = sim::ToSeconds(rig.engine.Now() - mix_t0);
    const storage::LsmEngineStats& stats = lsm->stats();

    state.counters["load_kops_s"] =
        static_cast<double>(1ULL << key_bits) / load_seconds / 1000.0;
    state.counters["mix_kops_s"] =
        mix_seconds > 0 ? static_cast<double>(mix_ops) / mix_seconds / 1000.0 : 0;
    state.counters["read_p99_us"] = static_cast<double>(P99(read_ns)) / 1000.0;
    state.counters["write_p99_us"] = static_cast<double>(P99(write_ns)) / 1000.0;
    state.counters["write_amp"] =
        static_cast<double>(lsm->media()->stats().appended_bytes) /
        static_cast<double>(user_bytes);
    const uint64_t gets = stats.gets - before.gets;
    state.counters["read_amp_blocks"] =
        gets > 0 ? static_cast<double>(stats.get_blocks_read - before.get_blocks_read) /
                       static_cast<double>(gets)
                 : 0;
    const uint64_t probes_considered = stats.bloom_skips + stats.table_probes;
    state.counters["bloom_skip_pct"] =
        probes_considered > 0
            ? 100.0 * static_cast<double>(stats.bloom_skips) /
                  static_cast<double>(probes_considered)
            : 0;
    state.counters["fg_stall_pct"] =
        100.0 * static_cast<double>(stats.fg_credit_stalls) /
        static_cast<double>(stats.puts + stats.deletes + stats.gets);
    state.counters["compaction_deferred"] = static_cast<double>(stats.compaction_deferred);
    state.counters["flush_stalls"] = static_cast<double>(stats.flush_stalls);
    state.counters["fpga_merges"] = static_cast<double>(stats.fpga_merges);
    state.counters["host_merges"] = static_cast<double>(stats.host_merges);
    state.counters["flushes"] = static_cast<double>(stats.flushes);
    state.counters["compactions"] = static_cast<double>(stats.compactions);
  }
}

void RunKillMidCompaction(benchmark::State& state, uint64_t key_bits) {
  for (auto _ : state) {
    Rig rig(/*credits=*/64);
    const storage::LsmEngineOptions options = BenchOptions(/*offload=*/true);
    std::unordered_map<uint64_t, uint64_t> expected_tag;
    std::unordered_map<uint64_t, uint64_t> last_write_seq;

    {
      auto lsm = storage::LsmEngine::Format(rig.Deps(), options).value();
      LoadKeys(*lsm, key_bits);
      const uint64_t n = 1ULL << key_bits;
      for (uint64_t i = 0; i < n; ++i) {
        const uint64_t key = Permute(i, key_bits);
        expected_tag[key] = i + 1;
        last_write_seq[key] = i + 1;
      }
      CHECK_EQ(lsm->last_acked_seq(), n);
    }

    // Clean reopen: recovery truncates the WAL and reloads the manifest.
    auto clean = storage::LsmEngine::Open(rig.Deps(), options).value();
    const double clean_recovery_us =
        static_cast<double>(clean->recovery().recovery_ns) / 1000.0;

    // Arm the cut a fixed number of appends out, then write fresh compaction
    // debt so CompactAll is guaranteed to be the code that trips it.
    constexpr uint64_t kCutAfterAppends = 400;
    rig.injector.emplace(
        &rig.engine,
        sim::FaultPlan().AtQuery(sim::FaultSite::kStoragePowerCut, kCutAfterAppends),
        0x5eed);
    clean.reset();
    auto lsm = storage::LsmEngine::Open(rig.Deps(), options).value();

    Rng rng(0xD1E);
    uint64_t tag = (1ULL << key_bits) * 2;
    // Stop the burst 24 appends shy of the cut: a put can add at most ~10
    // appends (flush + group sync), so the cut cannot fire here — only the
    // CompactAll below can reach it.
    while (rig.injector->InjectedCount(sim::FaultSite::kStoragePowerCut) == 0 &&
           lsm->media()->stats().appends + 24 < kCutAfterAppends) {
      const uint64_t key = rng.Uniform(1ULL << key_bits);
      Bytes value = MakeValue(key, tag);
      auto seq = lsm->Put(key, ByteSpan(value.data(), value.size()));
      CHECK_OK(seq.status());
      expected_tag[key] = tag++;
      last_write_seq[key] = *seq;
    }
    CHECK_OK(lsm->Sync());
    const uint64_t acked = lsm->last_acked_seq();
    CHECK(lsm->CompactionPending()) << "kill bench needs compaction debt";
    const Status compacted = lsm->CompactAll();
    CHECK(!compacted.ok() && lsm->dead()) << "the cut must land mid-compaction";

    lsm.reset();
    auto reopened = storage::LsmEngine::Open(rig.Deps(), options);
    CHECK_OK(reopened.status());
    lsm = std::move(reopened).value();
    const storage::RecoveryInfo& rec = lsm->recovery();
    CHECK_GE(rec.recovered_seq, acked);

    // Audit: every key whose last acknowledged write happened before the cut
    // must read back with exactly the bytes that were acknowledged.
    uint64_t audited = 0;
    uint64_t lost = 0;
    for (const auto& [key, seq] : last_write_seq) {
      if (seq > acked) {
        continue;  // never acknowledged; either outcome is legal
      }
      ++audited;
      auto got = lsm->Get(key);
      CHECK_OK(got.status());
      const Bytes want = MakeValue(key, expected_tag[key]);
      if (!got->has_value() || **got != want) {
        ++lost;
      }
    }

    state.counters["clean_recovery_us"] = clean_recovery_us;
    state.counters["kill_recovery_us"] = static_cast<double>(rec.recovery_ns) / 1000.0;
    state.counters["acked_loss"] = static_cast<double>(lost);
    state.counters["audited_keys"] = static_cast<double>(audited);
    state.counters["orphan_zones_reset"] = static_cast<double>(rec.orphan_zones_reset);
    state.counters["wal_replayed"] = static_cast<double>(rec.wal_records_replayed);
    state.counters["manifest_version"] = static_cast<double>(rec.manifest_version);
    CHECK_EQ(lost, 0u) << "acknowledged writes lost across the kill";
  }
}

constexpr uint64_t kFullKeyBits = 20;  // 2^20 = 1,048,576 keys
constexpr int kFullMixOps = 200000;
constexpr uint64_t kSmokeKeyBits = 14;
constexpr int kSmokeMixOps = 10000;

void YcsbA(benchmark::State& state) {
  RunYcsb(state, kFullKeyBits, 50, state.range(0) != 0, static_cast<uint32_t>(state.range(1)),
          kFullMixOps);
}
void YcsbB(benchmark::State& state) {
  RunYcsb(state, kFullKeyBits, 95, true, 64, kFullMixOps);
}
void YcsbC(benchmark::State& state) {
  RunYcsb(state, kFullKeyBits, 100, true, 64, kFullMixOps);
}
void KillMidCompaction(benchmark::State& state) {
  RunKillMidCompaction(state, kFullKeyBits);
}
void SmokeYcsbA(benchmark::State& state) {
  RunYcsb(state, kSmokeKeyBits, 50, true, 64, kSmokeMixOps);
}
void SmokeKill(benchmark::State& state) { RunKillMidCompaction(state, kSmokeKeyBits); }

// YcsbA args: <fpga_offload, credit_cap>. 64 credits is comfortable; 8 sits
// at the compaction credit reserve, so the gate refuses background grants
// entirely — compaction defers until write stalls force a drain, and the
// interference lands on foreground write tails.
BENCHMARK(YcsbA)->ArgNames({"offload", "credits"})
    ->Args({1, 64})
    ->Args({0, 64})
    ->Args({1, 8})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(YcsbB)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(YcsbC)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(KillMidCompaction)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(SmokeYcsbA)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(SmokeKill)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
