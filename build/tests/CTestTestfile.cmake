# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/pcie_test[1]_include.cmake")
include("/root/repo/build/tests/nvme_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/ebpf_test[1]_include.cmake")
include("/root/repo/build/tests/fpga_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/format_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/dpu_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
