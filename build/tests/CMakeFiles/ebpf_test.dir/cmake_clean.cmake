file(REMOVE_RECURSE
  "CMakeFiles/ebpf_test.dir/ebpf_test.cc.o"
  "CMakeFiles/ebpf_test.dir/ebpf_test.cc.o.d"
  "ebpf_test"
  "ebpf_test.pdb"
  "ebpf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebpf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
