file(REMOVE_RECURSE
  "libhyperion_sim.a"
)
