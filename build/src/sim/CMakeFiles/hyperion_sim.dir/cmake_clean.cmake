file(REMOVE_RECURSE
  "CMakeFiles/hyperion_sim.dir/energy.cc.o"
  "CMakeFiles/hyperion_sim.dir/energy.cc.o.d"
  "CMakeFiles/hyperion_sim.dir/engine.cc.o"
  "CMakeFiles/hyperion_sim.dir/engine.cc.o.d"
  "CMakeFiles/hyperion_sim.dir/stats.cc.o"
  "CMakeFiles/hyperion_sim.dir/stats.cc.o.d"
  "libhyperion_sim.a"
  "libhyperion_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
