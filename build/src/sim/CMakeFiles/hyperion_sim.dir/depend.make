# Empty dependencies file for hyperion_sim.
# This may be replaced when dependencies are built.
