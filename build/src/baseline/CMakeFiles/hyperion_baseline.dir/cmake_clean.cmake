file(REMOVE_RECURSE
  "CMakeFiles/hyperion_baseline.dir/host.cc.o"
  "CMakeFiles/hyperion_baseline.dir/host.cc.o.d"
  "CMakeFiles/hyperion_baseline.dir/integration.cc.o"
  "CMakeFiles/hyperion_baseline.dir/integration.cc.o.d"
  "CMakeFiles/hyperion_baseline.dir/server.cc.o"
  "CMakeFiles/hyperion_baseline.dir/server.cc.o.d"
  "libhyperion_baseline.a"
  "libhyperion_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
