# Empty dependencies file for hyperion_baseline.
# This may be replaced when dependencies are built.
