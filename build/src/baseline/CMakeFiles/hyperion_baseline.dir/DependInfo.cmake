
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/host.cc" "src/baseline/CMakeFiles/hyperion_baseline.dir/host.cc.o" "gcc" "src/baseline/CMakeFiles/hyperion_baseline.dir/host.cc.o.d"
  "/root/repo/src/baseline/integration.cc" "src/baseline/CMakeFiles/hyperion_baseline.dir/integration.cc.o" "gcc" "src/baseline/CMakeFiles/hyperion_baseline.dir/integration.cc.o.d"
  "/root/repo/src/baseline/server.cc" "src/baseline/CMakeFiles/hyperion_baseline.dir/server.cc.o" "gcc" "src/baseline/CMakeFiles/hyperion_baseline.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hyperion_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hyperion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/hyperion_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/hyperion_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hyperion_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
