file(REMOVE_RECURSE
  "libhyperion_baseline.a"
)
