file(REMOVE_RECURSE
  "libhyperion_net.a"
)
