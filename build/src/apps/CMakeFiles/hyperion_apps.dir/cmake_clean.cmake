file(REMOVE_RECURSE
  "CMakeFiles/hyperion_apps.dir/fail2ban.cc.o"
  "CMakeFiles/hyperion_apps.dir/fail2ban.cc.o.d"
  "CMakeFiles/hyperion_apps.dir/load_balancer.cc.o"
  "CMakeFiles/hyperion_apps.dir/load_balancer.cc.o.d"
  "CMakeFiles/hyperion_apps.dir/packet.cc.o"
  "CMakeFiles/hyperion_apps.dir/packet.cc.o.d"
  "libhyperion_apps.a"
  "libhyperion_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
