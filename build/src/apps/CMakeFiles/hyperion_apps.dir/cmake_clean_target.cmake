file(REMOVE_RECURSE
  "libhyperion_apps.a"
)
