# Empty dependencies file for hyperion_apps.
# This may be replaced when dependencies are built.
