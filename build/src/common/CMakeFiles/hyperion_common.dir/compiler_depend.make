# Empty compiler generated dependencies file for hyperion_common.
# This may be replaced when dependencies are built.
