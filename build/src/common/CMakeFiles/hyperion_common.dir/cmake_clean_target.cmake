file(REMOVE_RECURSE
  "libhyperion_common.a"
)
