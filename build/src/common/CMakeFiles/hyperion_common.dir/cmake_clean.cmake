file(REMOVE_RECURSE
  "CMakeFiles/hyperion_common.dir/bytes.cc.o"
  "CMakeFiles/hyperion_common.dir/bytes.cc.o.d"
  "CMakeFiles/hyperion_common.dir/log.cc.o"
  "CMakeFiles/hyperion_common.dir/log.cc.o.d"
  "CMakeFiles/hyperion_common.dir/status.cc.o"
  "CMakeFiles/hyperion_common.dir/status.cc.o.d"
  "CMakeFiles/hyperion_common.dir/u128.cc.o"
  "CMakeFiles/hyperion_common.dir/u128.cc.o.d"
  "libhyperion_common.a"
  "libhyperion_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
