file(REMOVE_RECURSE
  "libhyperion_mem.a"
)
