file(REMOVE_RECURSE
  "CMakeFiles/hyperion_mem.dir/allocator.cc.o"
  "CMakeFiles/hyperion_mem.dir/allocator.cc.o.d"
  "CMakeFiles/hyperion_mem.dir/dram.cc.o"
  "CMakeFiles/hyperion_mem.dir/dram.cc.o.d"
  "CMakeFiles/hyperion_mem.dir/object_store.cc.o"
  "CMakeFiles/hyperion_mem.dir/object_store.cc.o.d"
  "CMakeFiles/hyperion_mem.dir/segment_table.cc.o"
  "CMakeFiles/hyperion_mem.dir/segment_table.cc.o.d"
  "CMakeFiles/hyperion_mem.dir/vm_baseline.cc.o"
  "CMakeFiles/hyperion_mem.dir/vm_baseline.cc.o.d"
  "libhyperion_mem.a"
  "libhyperion_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
