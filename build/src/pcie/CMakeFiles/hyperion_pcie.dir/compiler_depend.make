# Empty compiler generated dependencies file for hyperion_pcie.
# This may be replaced when dependencies are built.
