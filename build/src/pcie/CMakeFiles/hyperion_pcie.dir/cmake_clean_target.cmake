file(REMOVE_RECURSE
  "libhyperion_pcie.a"
)
