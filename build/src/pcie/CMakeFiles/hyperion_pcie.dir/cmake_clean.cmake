file(REMOVE_RECURSE
  "CMakeFiles/hyperion_pcie.dir/dma.cc.o"
  "CMakeFiles/hyperion_pcie.dir/dma.cc.o.d"
  "CMakeFiles/hyperion_pcie.dir/topology.cc.o"
  "CMakeFiles/hyperion_pcie.dir/topology.cc.o.d"
  "libhyperion_pcie.a"
  "libhyperion_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
