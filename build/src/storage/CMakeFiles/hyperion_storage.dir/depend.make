# Empty dependencies file for hyperion_storage.
# This may be replaced when dependencies are built.
