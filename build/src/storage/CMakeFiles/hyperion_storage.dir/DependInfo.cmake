
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bptree.cc" "src/storage/CMakeFiles/hyperion_storage.dir/bptree.cc.o" "gcc" "src/storage/CMakeFiles/hyperion_storage.dir/bptree.cc.o.d"
  "/root/repo/src/storage/corfu.cc" "src/storage/CMakeFiles/hyperion_storage.dir/corfu.cc.o" "gcc" "src/storage/CMakeFiles/hyperion_storage.dir/corfu.cc.o.d"
  "/root/repo/src/storage/graph.cc" "src/storage/CMakeFiles/hyperion_storage.dir/graph.cc.o" "gcc" "src/storage/CMakeFiles/hyperion_storage.dir/graph.cc.o.d"
  "/root/repo/src/storage/hash_index.cc" "src/storage/CMakeFiles/hyperion_storage.dir/hash_index.cc.o" "gcc" "src/storage/CMakeFiles/hyperion_storage.dir/hash_index.cc.o.d"
  "/root/repo/src/storage/kv.cc" "src/storage/CMakeFiles/hyperion_storage.dir/kv.cc.o" "gcc" "src/storage/CMakeFiles/hyperion_storage.dir/kv.cc.o.d"
  "/root/repo/src/storage/lsm.cc" "src/storage/CMakeFiles/hyperion_storage.dir/lsm.cc.o" "gcc" "src/storage/CMakeFiles/hyperion_storage.dir/lsm.cc.o.d"
  "/root/repo/src/storage/txn.cc" "src/storage/CMakeFiles/hyperion_storage.dir/txn.cc.o" "gcc" "src/storage/CMakeFiles/hyperion_storage.dir/txn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hyperion_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hyperion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hyperion_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/hyperion_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/hyperion_pcie.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
