file(REMOVE_RECURSE
  "CMakeFiles/hyperion_storage.dir/bptree.cc.o"
  "CMakeFiles/hyperion_storage.dir/bptree.cc.o.d"
  "CMakeFiles/hyperion_storage.dir/corfu.cc.o"
  "CMakeFiles/hyperion_storage.dir/corfu.cc.o.d"
  "CMakeFiles/hyperion_storage.dir/graph.cc.o"
  "CMakeFiles/hyperion_storage.dir/graph.cc.o.d"
  "CMakeFiles/hyperion_storage.dir/hash_index.cc.o"
  "CMakeFiles/hyperion_storage.dir/hash_index.cc.o.d"
  "CMakeFiles/hyperion_storage.dir/kv.cc.o"
  "CMakeFiles/hyperion_storage.dir/kv.cc.o.d"
  "CMakeFiles/hyperion_storage.dir/lsm.cc.o"
  "CMakeFiles/hyperion_storage.dir/lsm.cc.o.d"
  "CMakeFiles/hyperion_storage.dir/txn.cc.o"
  "CMakeFiles/hyperion_storage.dir/txn.cc.o.d"
  "libhyperion_storage.a"
  "libhyperion_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
