file(REMOVE_RECURSE
  "CMakeFiles/hyperion_format.dir/arrow.cc.o"
  "CMakeFiles/hyperion_format.dir/arrow.cc.o.d"
  "CMakeFiles/hyperion_format.dir/parquet.cc.o"
  "CMakeFiles/hyperion_format.dir/parquet.cc.o.d"
  "CMakeFiles/hyperion_format.dir/scan.cc.o"
  "CMakeFiles/hyperion_format.dir/scan.cc.o.d"
  "libhyperion_format.a"
  "libhyperion_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
