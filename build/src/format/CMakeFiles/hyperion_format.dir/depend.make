# Empty dependencies file for hyperion_format.
# This may be replaced when dependencies are built.
