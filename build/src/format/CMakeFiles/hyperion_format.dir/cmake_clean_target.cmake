file(REMOVE_RECURSE
  "libhyperion_format.a"
)
