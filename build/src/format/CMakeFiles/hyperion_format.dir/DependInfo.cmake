
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/format/arrow.cc" "src/format/CMakeFiles/hyperion_format.dir/arrow.cc.o" "gcc" "src/format/CMakeFiles/hyperion_format.dir/arrow.cc.o.d"
  "/root/repo/src/format/parquet.cc" "src/format/CMakeFiles/hyperion_format.dir/parquet.cc.o" "gcc" "src/format/CMakeFiles/hyperion_format.dir/parquet.cc.o.d"
  "/root/repo/src/format/scan.cc" "src/format/CMakeFiles/hyperion_format.dir/scan.cc.o" "gcc" "src/format/CMakeFiles/hyperion_format.dir/scan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hyperion_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hyperion_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
