# Empty compiler generated dependencies file for hyperion_nvme.
# This may be replaced when dependencies are built.
