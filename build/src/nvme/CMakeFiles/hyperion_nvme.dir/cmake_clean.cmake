file(REMOVE_RECURSE
  "CMakeFiles/hyperion_nvme.dir/controller.cc.o"
  "CMakeFiles/hyperion_nvme.dir/controller.cc.o.d"
  "CMakeFiles/hyperion_nvme.dir/flash.cc.o"
  "CMakeFiles/hyperion_nvme.dir/flash.cc.o.d"
  "CMakeFiles/hyperion_nvme.dir/queue.cc.o"
  "CMakeFiles/hyperion_nvme.dir/queue.cc.o.d"
  "CMakeFiles/hyperion_nvme.dir/zns.cc.o"
  "CMakeFiles/hyperion_nvme.dir/zns.cc.o.d"
  "libhyperion_nvme.a"
  "libhyperion_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
