file(REMOVE_RECURSE
  "libhyperion_nvme.a"
)
