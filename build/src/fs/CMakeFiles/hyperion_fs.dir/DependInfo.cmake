
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/annotation.cc" "src/fs/CMakeFiles/hyperion_fs.dir/annotation.cc.o" "gcc" "src/fs/CMakeFiles/hyperion_fs.dir/annotation.cc.o.d"
  "/root/repo/src/fs/extfs.cc" "src/fs/CMakeFiles/hyperion_fs.dir/extfs.cc.o" "gcc" "src/fs/CMakeFiles/hyperion_fs.dir/extfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hyperion_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hyperion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/hyperion_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/hyperion_pcie.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
