file(REMOVE_RECURSE
  "CMakeFiles/hyperion_fs.dir/annotation.cc.o"
  "CMakeFiles/hyperion_fs.dir/annotation.cc.o.d"
  "CMakeFiles/hyperion_fs.dir/extfs.cc.o"
  "CMakeFiles/hyperion_fs.dir/extfs.cc.o.d"
  "libhyperion_fs.a"
  "libhyperion_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
