file(REMOVE_RECURSE
  "libhyperion_fs.a"
)
