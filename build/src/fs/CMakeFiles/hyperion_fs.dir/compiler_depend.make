# Empty compiler generated dependencies file for hyperion_fs.
# This may be replaced when dependencies are built.
