
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ebpf/assembler.cc" "src/ebpf/CMakeFiles/hyperion_ebpf.dir/assembler.cc.o" "gcc" "src/ebpf/CMakeFiles/hyperion_ebpf.dir/assembler.cc.o.d"
  "/root/repo/src/ebpf/frontend.cc" "src/ebpf/CMakeFiles/hyperion_ebpf.dir/frontend.cc.o" "gcc" "src/ebpf/CMakeFiles/hyperion_ebpf.dir/frontend.cc.o.d"
  "/root/repo/src/ebpf/hdl_codegen.cc" "src/ebpf/CMakeFiles/hyperion_ebpf.dir/hdl_codegen.cc.o" "gcc" "src/ebpf/CMakeFiles/hyperion_ebpf.dir/hdl_codegen.cc.o.d"
  "/root/repo/src/ebpf/insn.cc" "src/ebpf/CMakeFiles/hyperion_ebpf.dir/insn.cc.o" "gcc" "src/ebpf/CMakeFiles/hyperion_ebpf.dir/insn.cc.o.d"
  "/root/repo/src/ebpf/maps.cc" "src/ebpf/CMakeFiles/hyperion_ebpf.dir/maps.cc.o" "gcc" "src/ebpf/CMakeFiles/hyperion_ebpf.dir/maps.cc.o.d"
  "/root/repo/src/ebpf/verifier.cc" "src/ebpf/CMakeFiles/hyperion_ebpf.dir/verifier.cc.o" "gcc" "src/ebpf/CMakeFiles/hyperion_ebpf.dir/verifier.cc.o.d"
  "/root/repo/src/ebpf/vm.cc" "src/ebpf/CMakeFiles/hyperion_ebpf.dir/vm.cc.o" "gcc" "src/ebpf/CMakeFiles/hyperion_ebpf.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hyperion_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hyperion_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
