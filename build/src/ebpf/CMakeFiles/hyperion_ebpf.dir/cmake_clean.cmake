file(REMOVE_RECURSE
  "CMakeFiles/hyperion_ebpf.dir/assembler.cc.o"
  "CMakeFiles/hyperion_ebpf.dir/assembler.cc.o.d"
  "CMakeFiles/hyperion_ebpf.dir/frontend.cc.o"
  "CMakeFiles/hyperion_ebpf.dir/frontend.cc.o.d"
  "CMakeFiles/hyperion_ebpf.dir/hdl_codegen.cc.o"
  "CMakeFiles/hyperion_ebpf.dir/hdl_codegen.cc.o.d"
  "CMakeFiles/hyperion_ebpf.dir/insn.cc.o"
  "CMakeFiles/hyperion_ebpf.dir/insn.cc.o.d"
  "CMakeFiles/hyperion_ebpf.dir/maps.cc.o"
  "CMakeFiles/hyperion_ebpf.dir/maps.cc.o.d"
  "CMakeFiles/hyperion_ebpf.dir/verifier.cc.o"
  "CMakeFiles/hyperion_ebpf.dir/verifier.cc.o.d"
  "CMakeFiles/hyperion_ebpf.dir/vm.cc.o"
  "CMakeFiles/hyperion_ebpf.dir/vm.cc.o.d"
  "libhyperion_ebpf.a"
  "libhyperion_ebpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_ebpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
