# Empty compiler generated dependencies file for hyperion_ebpf.
# This may be replaced when dependencies are built.
