file(REMOVE_RECURSE
  "libhyperion_ebpf.a"
)
