# Empty dependencies file for hyperion_fpga.
# This may be replaced when dependencies are built.
