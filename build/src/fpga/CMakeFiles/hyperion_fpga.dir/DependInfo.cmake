
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/axi.cc" "src/fpga/CMakeFiles/hyperion_fpga.dir/axi.cc.o" "gcc" "src/fpga/CMakeFiles/hyperion_fpga.dir/axi.cc.o.d"
  "/root/repo/src/fpga/fabric.cc" "src/fpga/CMakeFiles/hyperion_fpga.dir/fabric.cc.o" "gcc" "src/fpga/CMakeFiles/hyperion_fpga.dir/fabric.cc.o.d"
  "/root/repo/src/fpga/scheduler.cc" "src/fpga/CMakeFiles/hyperion_fpga.dir/scheduler.cc.o" "gcc" "src/fpga/CMakeFiles/hyperion_fpga.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hyperion_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hyperion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/hyperion_ebpf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
