file(REMOVE_RECURSE
  "CMakeFiles/hyperion_fpga.dir/axi.cc.o"
  "CMakeFiles/hyperion_fpga.dir/axi.cc.o.d"
  "CMakeFiles/hyperion_fpga.dir/fabric.cc.o"
  "CMakeFiles/hyperion_fpga.dir/fabric.cc.o.d"
  "CMakeFiles/hyperion_fpga.dir/scheduler.cc.o"
  "CMakeFiles/hyperion_fpga.dir/scheduler.cc.o.d"
  "libhyperion_fpga.a"
  "libhyperion_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
