file(REMOVE_RECURSE
  "libhyperion_fpga.a"
)
