# Empty dependencies file for hyperion_dpu.
# This may be replaced when dependencies are built.
