file(REMOVE_RECURSE
  "CMakeFiles/hyperion_dpu.dir/distributed.cc.o"
  "CMakeFiles/hyperion_dpu.dir/distributed.cc.o.d"
  "CMakeFiles/hyperion_dpu.dir/hyperion.cc.o"
  "CMakeFiles/hyperion_dpu.dir/hyperion.cc.o.d"
  "CMakeFiles/hyperion_dpu.dir/remote_tree.cc.o"
  "CMakeFiles/hyperion_dpu.dir/remote_tree.cc.o.d"
  "CMakeFiles/hyperion_dpu.dir/rpc.cc.o"
  "CMakeFiles/hyperion_dpu.dir/rpc.cc.o.d"
  "CMakeFiles/hyperion_dpu.dir/services.cc.o"
  "CMakeFiles/hyperion_dpu.dir/services.cc.o.d"
  "libhyperion_dpu.a"
  "libhyperion_dpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_dpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
