file(REMOVE_RECURSE
  "libhyperion_dpu.a"
)
