file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_datapath.dir/bench_fig2_datapath.cc.o"
  "CMakeFiles/bench_fig2_datapath.dir/bench_fig2_datapath.cc.o.d"
  "bench_fig2_datapath"
  "bench_fig2_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
