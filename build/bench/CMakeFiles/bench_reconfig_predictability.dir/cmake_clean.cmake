file(REMOVE_RECURSE
  "CMakeFiles/bench_reconfig_predictability.dir/bench_reconfig_predictability.cc.o"
  "CMakeFiles/bench_reconfig_predictability.dir/bench_reconfig_predictability.cc.o.d"
  "bench_reconfig_predictability"
  "bench_reconfig_predictability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reconfig_predictability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
