# Empty dependencies file for bench_reconfig_predictability.
# This may be replaced when dependencies are built.
