# Empty dependencies file for bench_middleware.
# This may be replaced when dependencies are built.
