file(REMOVE_RECURSE
  "CMakeFiles/bench_middleware.dir/bench_middleware.cc.o"
  "CMakeFiles/bench_middleware.dir/bench_middleware.cc.o.d"
  "bench_middleware"
  "bench_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
