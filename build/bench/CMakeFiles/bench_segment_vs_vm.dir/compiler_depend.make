# Empty compiler generated dependencies file for bench_segment_vs_vm.
# This may be replaced when dependencies are built.
