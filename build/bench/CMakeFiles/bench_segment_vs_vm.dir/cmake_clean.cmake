file(REMOVE_RECURSE
  "CMakeFiles/bench_segment_vs_vm.dir/bench_segment_vs_vm.cc.o"
  "CMakeFiles/bench_segment_vs_vm.dir/bench_segment_vs_vm.cc.o.d"
  "bench_segment_vs_vm"
  "bench_segment_vs_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_segment_vs_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
