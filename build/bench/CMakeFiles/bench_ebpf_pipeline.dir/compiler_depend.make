# Empty compiler generated dependencies file for bench_ebpf_pipeline.
# This may be replaced when dependencies are built.
