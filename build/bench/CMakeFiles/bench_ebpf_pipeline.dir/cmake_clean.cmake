file(REMOVE_RECURSE
  "CMakeFiles/bench_ebpf_pipeline.dir/bench_ebpf_pipeline.cc.o"
  "CMakeFiles/bench_ebpf_pipeline.dir/bench_ebpf_pipeline.cc.o.d"
  "bench_ebpf_pipeline"
  "bench_ebpf_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ebpf_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
