file(REMOVE_RECURSE
  "CMakeFiles/bench_pointer_chasing.dir/bench_pointer_chasing.cc.o"
  "CMakeFiles/bench_pointer_chasing.dir/bench_pointer_chasing.cc.o.d"
  "bench_pointer_chasing"
  "bench_pointer_chasing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pointer_chasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
