# Empty compiler generated dependencies file for bench_pointer_chasing.
# This may be replaced when dependencies are built.
