# Empty compiler generated dependencies file for bench_graph_analytics.
# This may be replaced when dependencies are built.
