file(REMOVE_RECURSE
  "CMakeFiles/bench_graph_analytics.dir/bench_graph_analytics.cc.o"
  "CMakeFiles/bench_graph_analytics.dir/bench_graph_analytics.cc.o.d"
  "bench_graph_analytics"
  "bench_graph_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
