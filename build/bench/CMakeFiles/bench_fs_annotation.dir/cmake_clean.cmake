file(REMOVE_RECURSE
  "CMakeFiles/bench_fs_annotation.dir/bench_fs_annotation.cc.o"
  "CMakeFiles/bench_fs_annotation.dir/bench_fs_annotation.cc.o.d"
  "bench_fs_annotation"
  "bench_fs_annotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fs_annotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
