# Empty dependencies file for bench_fs_annotation.
# This may be replaced when dependencies are built.
