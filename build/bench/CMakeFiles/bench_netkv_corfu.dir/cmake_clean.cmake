file(REMOVE_RECURSE
  "CMakeFiles/bench_netkv_corfu.dir/bench_netkv_corfu.cc.o"
  "CMakeFiles/bench_netkv_corfu.dir/bench_netkv_corfu.cc.o.d"
  "bench_netkv_corfu"
  "bench_netkv_corfu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_netkv_corfu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
