# Empty compiler generated dependencies file for bench_netkv_corfu.
# This may be replaced when dependencies are built.
