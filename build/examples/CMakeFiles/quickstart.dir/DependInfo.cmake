
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cc" "examples/CMakeFiles/quickstart.dir/quickstart.cc.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dpu/CMakeFiles/hyperion_dpu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hyperion_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/hyperion_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/hyperion_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hyperion_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hyperion_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/hyperion_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/hyperion_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/hyperion_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/hyperion_format.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hyperion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hyperion_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
