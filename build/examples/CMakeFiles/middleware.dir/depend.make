# Empty dependencies file for middleware.
# This may be replaced when dependencies are built.
