file(REMOVE_RECURSE
  "CMakeFiles/middleware.dir/middleware.cc.o"
  "CMakeFiles/middleware.dir/middleware.cc.o.d"
  "middleware"
  "middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
