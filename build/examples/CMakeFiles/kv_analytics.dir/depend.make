# Empty dependencies file for kv_analytics.
# This may be replaced when dependencies are built.
