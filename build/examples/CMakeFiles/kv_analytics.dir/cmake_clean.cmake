file(REMOVE_RECURSE
  "CMakeFiles/kv_analytics.dir/kv_analytics.cc.o"
  "CMakeFiles/kv_analytics.dir/kv_analytics.cc.o.d"
  "kv_analytics"
  "kv_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
