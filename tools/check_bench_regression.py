#!/usr/bin/env python3
"""Compare a fresh bench_engine run against a committed baseline.

Usage:
    check_bench_regression.py --baseline bench/BENCH_PR7.json \
        --current bench_smoke.json [--tolerance 0.20]

Both files are google-benchmark --benchmark_format=json output. For every
benchmark name present in BOTH files that reports items_per_second, the
current run must be no more than `tolerance` (default 20%) below the
baseline. Benchmarks only present on one side are ignored (CI smoke runs
use --benchmark_filter, and the committed baseline may carry extra rows).

CI machines are noisy and slower than the machine the baseline was recorded
on, so absolute throughput comparisons across machines are meaningless. The
check self-normalises instead: the best current/baseline ratio across the
common benchmarks estimates this machine's pace relative to the baseline
machine, and every benchmark must land within `tolerance` of that pace. A
uniformly slower machine passes; a single benchmark that collapsed relative
to its peers (an accidental O(n^2) in the hot loop, a debug build sneaking
into CI) fails.
"""

import argparse
import json
import sys


def load_items_per_second(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) from --benchmark_repetitions.
        if b.get("run_type") == "aggregate":
            continue
        ips = b.get("items_per_second")
        if ips is not None and ips > 0:
            # With --benchmark_repetitions the same name appears N times;
            # keep the best repetition. Noise on shared CI machines is
            # one-sided (a run can only be slowed down, never sped up past
            # the code's real ceiling), so best-of-N estimates that ceiling.
            name = b["name"]
            out[name] = max(out.get(name, 0.0), float(ips))
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop after normalisation")
    args = parser.parse_args()

    baseline = load_items_per_second(args.baseline)
    current = load_items_per_second(args.current)
    common = sorted(set(baseline) & set(current))
    if not common:
        print("check_bench_regression: no common benchmarks between "
              f"{args.baseline} and {args.current}", file=sys.stderr)
        return 1

    # Self-normalise: the median current/baseline ratio estimates this
    # machine's speed relative to the baseline machine (median, not max, so
    # one lucky benchmark cannot tighten the floor for all the others).
    # Every benchmark must then be within `tolerance` of that pace — a
    # uniform slowdown passes, a benchmark that regressed relative to its
    # peers fails.
    ratios = {name: current[name] / baseline[name] for name in common}
    ordered = sorted(ratios.values())
    pace = ordered[len(ordered) // 2]
    floor = pace * (1.0 - args.tolerance)

    failed = []
    print(f"{'benchmark':50s} {'baseline':>12s} {'current':>12s} {'ratio':>7s}")
    for name in common:
        mark = ""
        if ratios[name] < floor:
            failed.append(name)
            mark = "  <-- REGRESSION"
        print(f"{name:50s} {baseline[name]:12.3e} {current[name]:12.3e} "
              f"{ratios[name]:7.3f}{mark}")
    print(f"machine pace (median ratio): {pace:.3f}; "
          f"floor at tolerance {args.tolerance:.0%}: {floor:.3f}")

    if failed:
        print(f"check_bench_regression: {len(failed)} benchmark(s) regressed "
              f">{args.tolerance:.0%} vs peers: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print(f"check_bench_regression: OK ({len(common)} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
