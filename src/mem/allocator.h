// Backing-store allocators for the single-level store.
//
// RangeAllocator hands out contiguous [offset, offset+size) ranges from a
// flat space with first-fit + coalescing-free — used both for DRAM/HBM
// arenas (byte granularity) and NVMe extents (LBA granularity).

#ifndef HYPERION_SRC_MEM_ALLOCATOR_H_
#define HYPERION_SRC_MEM_ALLOCATOR_H_

#include <cstdint>
#include <map>

#include "src/common/result.h"

namespace hyperion::mem {

class RangeAllocator {
 public:
  explicit RangeAllocator(uint64_t capacity);

  // First-fit allocation; returns the start offset.
  Result<uint64_t> Allocate(uint64_t size);

  // Claims a specific range (used when rebuilding allocator state from a
  // recovered segment table). Fails if any part is already allocated.
  Status Reserve(uint64_t offset, uint64_t size);

  // Frees a previously allocated range. Double frees / bad ranges are
  // programmer errors and return kInvalidArgument.
  Status Free(uint64_t offset, uint64_t size);

  uint64_t capacity() const { return capacity_; }
  uint64_t used() const { return used_; }
  uint64_t FreeBytes() const { return capacity_ - used_; }
  // Largest single allocatable range (fragmentation metric).
  uint64_t LargestFreeRange() const;

 private:
  uint64_t capacity_;
  uint64_t used_ = 0;
  // offset -> size of free ranges; invariant: no two adjacent (coalesced).
  std::map<uint64_t, uint64_t> free_;
};

}  // namespace hyperion::mem

#endif  // HYPERION_SRC_MEM_ALLOCATOR_H_
