// Page-based virtual-memory baseline for experiment E4.
//
// The paper (§2.1) argues that CPU-centric virtual memory — multi-level
// page tables, TLBs, walk caches — is a major source of complexity and
// overhead that accelerators inherit when integrated into a host's address
// space, and that Hyperion's object-granular segment table avoids it. To
// measure that claim we implement the thing being avoided: an x86-64-style
// 4-level radix page table (48-bit VA, 4 KiB and 2 MiB leaves), a two-level
// set-associative TLB with LRU replacement, and a page-walk cache covering
// the top levels. Translate() reports the modelled latency of each access
// so benches can compare cycles-per-translation against
// SegmentTable::kLookupCost.

#ifndef HYPERION_SRC_MEM_VM_BASELINE_H_
#define HYPERION_SRC_MEM_VM_BASELINE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/result.h"
#include "src/sim/time.h"

namespace hyperion::mem {

enum class PageSize : uint8_t { k4K, k2M };

constexpr uint64_t PageBytes(PageSize ps) {
  return ps == PageSize::k4K ? 4096ull : 2ull * 1024 * 1024;
}

// Radix-512 page table, 4 levels (PML4 -> PDPT -> PD -> PT).
class PageTable {
 public:
  PageTable();

  // Maps the page containing `vaddr` to `paddr` (both aligned to the page
  // size). Fails if already mapped (or covered by a larger mapping).
  Status MapPage(uint64_t vaddr, uint64_t paddr, PageSize page_size);

  // Maps `length` bytes starting at `vaddr` to consecutive physical pages
  // starting at `paddr`, using the given page size throughout.
  Status MapRange(uint64_t vaddr, uint64_t paddr, uint64_t length, PageSize page_size);

  struct Walk {
    uint64_t paddr = 0;
    int levels_touched = 0;  // memory references the walk performed (1..4)
    PageSize page_size = PageSize::k4K;
  };
  // Full software walk (no TLB). kNotFound on unmapped addresses.
  Result<Walk> WalkTranslate(uint64_t vaddr) const;

  uint64_t MappedPages() const { return mapped_pages_; }

 private:
  struct Node;
  struct Entry {
    bool present = false;
    bool leaf = false;
    uint64_t paddr = 0;  // leaf: physical frame; interior: unused (node ptr below)
    std::unique_ptr<Node> child;
  };
  struct Node {
    std::array<Entry, 512> entries;
  };

  static int IndexAt(uint64_t vaddr, int level);  // level 3 = PML4 ... 0 = PT

  std::unique_ptr<Node> root_;
  uint64_t mapped_pages_ = 0;
};

// Set-associative TLB with per-set LRU.
class Tlb {
 public:
  Tlb(uint32_t entries, uint32_t ways);

  struct CachedTranslation {
    uint64_t vpn_base = 0;
    uint64_t paddr = 0;
    PageSize page_size = PageSize::k4K;
  };

  // Probes for the page containing vaddr.
  bool Lookup(uint64_t vaddr, CachedTranslation* out);
  void Insert(uint64_t vaddr, uint64_t page_paddr, PageSize page_size);
  void Flush();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Way {
    bool valid = false;
    uint64_t tag = 0;  // vaddr >> page shift
    uint64_t paddr = 0;
    PageSize page_size = PageSize::k4K;
    uint64_t lru = 0;
  };

  uint32_t sets_;
  uint32_t ways_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::vector<Way> slots_;  // sets_ * ways_
};

struct VmCostParams {
  sim::Duration l1_tlb_hit = 1;      // ns
  sim::Duration l2_tlb_hit = 6;      // ns
  sim::Duration walk_step = 70;      // DRAM reference per level
  sim::Duration pwc_hit_step = 3;    // page-walk-cache-served level
};

// The assembled MMU: L1/L2 TLBs + page-walk cache + PageTable.
class VirtualMemory {
 public:
  explicit VirtualMemory(VmCostParams params = VmCostParams());

  Status MapRange(uint64_t vaddr, uint64_t paddr, uint64_t length, PageSize page_size) {
    return table_.MapRange(vaddr, paddr, length, page_size);
  }

  struct Translation {
    uint64_t paddr = 0;
    sim::Duration cost = 0;
    bool l1_hit = false;
    bool l2_hit = false;
  };
  Result<Translation> Translate(uint64_t vaddr);

  uint64_t l1_hits() const { return l1_.hits(); }
  uint64_t l2_hits() const { return l2_.hits(); }
  uint64_t walks() const { return walks_; }

 private:
  VmCostParams params_;
  PageTable table_;
  Tlb l1_;
  Tlb l2_;
  Tlb pwc_;  // caches PML4/PDPT levels, keyed on 1 GiB regions
  uint64_t walks_ = 0;
};

}  // namespace hyperion::mem

#endif  // HYPERION_SRC_MEM_VM_BASELINE_H_
