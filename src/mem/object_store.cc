#include "src/mem/object_store.h"

#include <algorithm>

#include "src/common/check.h"

namespace hyperion::mem {

namespace {
uint64_t LbasFor(uint64_t bytes) { return (bytes + nvme::kLbaSize - 1) / nvme::kLbaSize; }
}  // namespace

ObjectStore::ObjectStore(sim::Engine* engine, nvme::Controller* nvme, ObjectStoreConfig config)
    : engine_(engine),
      nvme_(nvme),
      config_(config),
      dram_(engine, config.dram_bytes),
      hbm_(engine, config.hbm_bytes, HbmParams()),
      dram_alloc_(config.dram_bytes),
      hbm_alloc_(config.hbm_bytes),
      nvme_alloc_(0) {
  auto capacity = nvme->NamespaceCapacity(config.nvme_nsid);
  CHECK(capacity.ok()) << "object store requires a valid NVMe namespace";
  CHECK_GT(*capacity, config.boot_area_lbas);
  // LBA space after the boot area is the single-level store's flash tier.
  nvme_alloc_ = RangeAllocator(*capacity - config.boot_area_lbas);
}

uint64_t ObjectStore::TotalCapacity() const {
  return dram_.capacity() + hbm_.capacity() + nvme_alloc_.capacity() * nvme::kLbaSize;
}

Result<Location> ObjectStore::PickLocation(uint64_t size, const SegmentHints& hints) {
  if (hints.durable) {
    // Durable segments must be NVMe-backed to survive power-off.
    if (nvme_alloc_.FreeBytes() * nvme::kLbaSize >= size) {
      return Location::kNvme;
    }
    return ResourceExhausted("flash tier full for durable segment");
  }
  if (hints.performance_critical && hbm_alloc_.LargestFreeRange() >= size) {
    return Location::kHbm;
  }
  if (dram_alloc_.LargestFreeRange() >= size) {
    return Location::kDram;
  }
  if (hbm_alloc_.LargestFreeRange() >= size) {
    return Location::kHbm;
  }
  // Spill: NVMe as "a large capacity location" for ephemeral segments.
  if (nvme_alloc_.LargestFreeRange() >= LbasFor(size)) {
    return Location::kNvme;
  }
  return ResourceExhausted("object store full");
}

Result<uint64_t> ObjectStore::AllocateIn(Location loc, uint64_t size) {
  switch (loc) {
    case Location::kDram:
      return dram_alloc_.Allocate(size);
    case Location::kHbm:
      return hbm_alloc_.Allocate(size);
    case Location::kNvme: {
      ASSIGN_OR_RETURN(uint64_t lba, nvme_alloc_.Allocate(LbasFor(size)));
      return lba + config_.boot_area_lbas;  // absolute LBA
    }
  }
  return Internal("bad location");
}

Status ObjectStore::FreeIn(Location loc, uint64_t base, uint64_t size) {
  switch (loc) {
    case Location::kDram:
      return dram_alloc_.Free(base, size);
    case Location::kHbm:
      return hbm_alloc_.Free(base, size);
    case Location::kNvme:
      return nvme_alloc_.Free(base - config_.boot_area_lbas, LbasFor(size));
  }
  return Internal("bad location");
}

Result<SegmentId> ObjectStore::Create(uint64_t size, SegmentHints hints) {
  const SegmentId id(0xC0FFEEull, next_id_++);
  RETURN_IF_ERROR(CreateWithId(id, size, hints));
  return id;
}

Status ObjectStore::CreateWithId(SegmentId id, uint64_t size, SegmentHints hints) {
  if (size == 0) {
    return InvalidArgument("zero-size segment");
  }
  if (table_.Lookup(id).ok()) {
    return AlreadyExists("segment id in use");
  }
  ASSIGN_OR_RETURN(Location loc, PickLocation(size, hints));
  ASSIGN_OR_RETURN(uint64_t base, AllocateIn(loc, size));
  Segment seg;
  seg.id = id;
  seg.size = size;
  seg.location = loc;
  seg.base = base;
  seg.durable = hints.durable;
  RETURN_IF_ERROR(table_.Insert(seg));
  counters_.Increment("segments_created");
  return Status::Ok();
}

Status ObjectStore::Delete(SegmentId id) {
  ASSIGN_OR_RETURN(Segment seg, table_.Lookup(id));
  RETURN_IF_ERROR(FreeIn(seg.location, seg.base, seg.size));
  access_counts_.erase(id);
  return table_.Erase(id);
}

Result<Segment> ObjectStore::Describe(SegmentId id) const { return table_.Lookup(id); }

Status ObjectStore::Write(SegmentId id, uint64_t offset, ByteSpan data) {
  engine_->Advance(SegmentTable::kLookupCost);
  counters_.Increment("translations");
  ++access_counts_[id];
  ASSIGN_OR_RETURN(Segment seg, table_.Lookup(id));
  if (offset + data.size() > seg.size) {
    return OutOfRange("write past end of segment");
  }
  switch (seg.location) {
    case Location::kDram:
      return dram_.Write(seg.base + offset, data);
    case Location::kHbm:
      return hbm_.Write(seg.base + offset, data);
    case Location::kNvme:
      return WriteNvme(seg, offset, data);
  }
  return Internal("bad location");
}

Result<Bytes> ObjectStore::Read(SegmentId id, uint64_t offset, uint64_t length) {
  engine_->Advance(SegmentTable::kLookupCost);
  counters_.Increment("translations");
  ++access_counts_[id];
  ASSIGN_OR_RETURN(Segment seg, table_.Lookup(id));
  if (offset + length > seg.size) {
    return OutOfRange("read past end of segment");
  }
  switch (seg.location) {
    case Location::kDram: {
      Bytes out(length);
      RETURN_IF_ERROR(dram_.Read(seg.base + offset, MutableByteSpan(out)));
      return out;
    }
    case Location::kHbm: {
      Bytes out(length);
      RETURN_IF_ERROR(hbm_.Read(seg.base + offset, MutableByteSpan(out)));
      return out;
    }
    case Location::kNvme:
      return ReadNvme(seg, offset, length);
  }
  return Internal("bad location");
}

Status ObjectStore::ReadInto(SegmentId id, uint64_t offset, MutableByteSpan out) {
  engine_->Advance(SegmentTable::kLookupCost);
  counters_.Increment("translations");
  ++access_counts_[id];
  ASSIGN_OR_RETURN(Segment seg, table_.Lookup(id));
  if (offset + out.size() > seg.size) {
    return OutOfRange("read past end of segment");
  }
  switch (seg.location) {
    case Location::kDram:
      return dram_.Read(seg.base + offset, out);
    case Location::kHbm:
      return hbm_.Read(seg.base + offset, out);
    case Location::kNvme: {
      ASSIGN_OR_RETURN(Bytes data, ReadNvme(seg, offset, out.size()));
      std::copy(data.begin(), data.end(), out.begin());
      return Status::Ok();
    }
  }
  return Internal("bad location");
}

Status ObjectStore::WriteNvme(const Segment& seg, uint64_t offset, ByteSpan data) {
  // Read-modify-write of the covering LBA range.
  const uint64_t first_lba = seg.base + offset / nvme::kLbaSize;
  const uint64_t end = offset + data.size();
  const uint64_t last_lba = seg.base + (end - 1) / nvme::kLbaSize;
  const auto count = static_cast<uint32_t>(last_lba - first_lba + 1);
  Bytes block;
  const uint64_t head_skew = offset % nvme::kLbaSize;
  const bool aligned = head_skew == 0 && data.size() % nvme::kLbaSize == 0;
  if (aligned) {
    return nvme_->Write(config_.nvme_nsid, first_lba, data);
  }
  ASSIGN_OR_RETURN(block, nvme_->Read(config_.nvme_nsid, first_lba, count));
  std::copy(data.begin(), data.end(), block.begin() + static_cast<ptrdiff_t>(head_skew));
  return nvme_->Write(config_.nvme_nsid, first_lba, ByteSpan(block.data(), block.size()));
}

Result<Bytes> ObjectStore::ReadNvme(const Segment& seg, uint64_t offset, uint64_t length) {
  const uint64_t first_lba = seg.base + offset / nvme::kLbaSize;
  const uint64_t end = offset + length;
  const uint64_t last_lba = seg.base + (end - 1) / nvme::kLbaSize;
  const auto count = static_cast<uint32_t>(last_lba - first_lba + 1);
  ASSIGN_OR_RETURN(Bytes block, nvme_->Read(config_.nvme_nsid, first_lba, count));
  const uint64_t head_skew = offset % nvme::kLbaSize;
  return Bytes(block.begin() + static_cast<ptrdiff_t>(head_skew),
               block.begin() + static_cast<ptrdiff_t>(head_skew + length));
}

Status ObjectStore::Migrate(SegmentId id, Location target) {
  ASSIGN_OR_RETURN(Segment seg, table_.Lookup(id));
  if (seg.location == target) {
    return Status::Ok();
  }
  if (seg.durable && target != Location::kNvme) {
    return InvalidArgument("durable segments must stay NVMe-backed");
  }
  ASSIGN_OR_RETURN(Bytes contents, Read(id, 0, seg.size));
  ASSIGN_OR_RETURN(uint64_t new_base, AllocateIn(target, seg.size));
  const Location old_loc = seg.location;
  const uint64_t old_base = seg.base;
  seg.location = target;
  seg.base = new_base;
  RETURN_IF_ERROR(table_.Update(seg));
  RETURN_IF_ERROR(Write(id, 0, ByteSpan(contents.data(), contents.size())));
  RETURN_IF_ERROR(FreeIn(old_loc, old_base, seg.size));
  counters_.Increment("migrations");
  return Status::Ok();
}

uint64_t ObjectStore::AccessCount(SegmentId id) const {
  auto it = access_counts_.find(id);
  return it == access_counts_.end() ? 0 : it->second;
}

Result<uint64_t> ObjectStore::PromoteHot(uint64_t min_accesses, size_t max_promotions) {
  // Collect ephemeral flash-resident candidates, hottest first.
  std::vector<std::pair<uint64_t, SegmentId>> candidates;
  for (const Segment& seg : table_.Entries()) {
    if (seg.location != Location::kNvme || seg.durable) {
      continue;
    }
    const uint64_t hits = AccessCount(seg.id);
    if (hits >= min_accesses) {
      candidates.emplace_back(hits, seg.id);
    }
  }
  std::sort(candidates.begin(), candidates.end(), [](const auto& a, const auto& b) {
    return a.first > b.first;
  });
  uint64_t promoted = 0;
  for (const auto& [hits, id] : candidates) {
    if (promoted >= max_promotions) {
      break;
    }
    ASSIGN_OR_RETURN(Segment seg, table_.Lookup(id));
    if (dram_alloc_.LargestFreeRange() < seg.size) {
      break;  // fast tier full: stop promoting
    }
    RETURN_IF_ERROR(Migrate(id, Location::kDram));
    ++promoted;
  }
  access_counts_.clear();  // epoch-based decay
  counters_.Add("promotions", promoted);
  return promoted;
}

Status ObjectStore::Checkpoint() {
  counters_.Increment("checkpoints");
  return table_.PersistTo(nvme_, config_.nvme_nsid, config_.boot_area_lbas);
}

Result<uint64_t> ObjectStore::Recover() {
  ASSIGN_OR_RETURN(SegmentTable loaded,
                   SegmentTable::LoadFrom(nvme_, config_.nvme_nsid, config_.boot_area_lbas));
  // Reset allocator state; DRAM/HBM contents did not survive the power
  // cycle, so only NVMe-resident segments are retained.
  dram_alloc_ = RangeAllocator(config_.dram_bytes);
  hbm_alloc_ = RangeAllocator(config_.hbm_bytes);
  nvme_alloc_ = RangeAllocator(nvme_alloc_.capacity());
  table_ = SegmentTable();
  uint64_t recovered = 0;
  uint64_t max_id = 0;
  for (const Segment& seg : loaded.Entries()) {
    if (seg.location != Location::kNvme) {
      continue;  // ephemeral segment: data is gone
    }
    RETURN_IF_ERROR(
        nvme_alloc_.Reserve(seg.base - config_.boot_area_lbas, LbasFor(seg.size)));
    RETURN_IF_ERROR(table_.Insert(seg));
    ++recovered;
    if (seg.id.hi == 0xC0FFEEull) {
      max_id = std::max(max_id, seg.id.lo);
    }
  }
  next_id_ = max_id + 1;
  counters_.Increment("recoveries");
  return recovered;
}

}  // namespace hyperion::mem
