#include "src/mem/segment_table.h"

#include <algorithm>

#include "src/common/bytes.h"
#include "src/common/check.h"

namespace hyperion::mem {

namespace {
constexpr uint32_t kMagic = 0x53454754;  // "SEGT"
constexpr uint32_t kVersion = 1;
constexpr size_t kEntryBytes = 16 + 8 + 1 + 8 + 1;  // id + size + loc + base + durable
}  // namespace

Status SegmentTable::Insert(const Segment& segment) {
  if (segment.size == 0) {
    return InvalidArgument("zero-size segment");
  }
  auto [it, inserted] = entries_.emplace(segment.id, segment);
  if (!inserted) {
    return AlreadyExists("segment id already mapped");
  }
  return Status::Ok();
}

Status SegmentTable::Erase(SegmentId id) {
  if (entries_.erase(id) == 0) {
    return NotFound("segment not mapped");
  }
  return Status::Ok();
}

Result<Segment> SegmentTable::Lookup(SegmentId id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return NotFound("segment not mapped");
  }
  return it->second;
}

Status SegmentTable::Update(const Segment& segment) {
  auto it = entries_.find(segment.id);
  if (it == entries_.end()) {
    return NotFound("segment not mapped");
  }
  it->second = segment;
  return Status::Ok();
}

std::vector<Segment> SegmentTable::Entries() const {
  std::vector<Segment> out;
  out.reserve(entries_.size());
  for (const auto& [id, seg] : entries_) {
    out.push_back(seg);
  }
  std::sort(out.begin(), out.end(),
            [](const Segment& a, const Segment& b) { return a.id < b.id; });
  return out;
}

Bytes SegmentTable::Serialize() const {
  Bytes out;
  PutU32(out, kMagic);
  PutU32(out, kVersion);
  const auto entries = Entries();
  PutU64(out, entries.size());
  for (const Segment& seg : entries) {
    PutU64(out, seg.id.hi);
    PutU64(out, seg.id.lo);
    PutU64(out, seg.size);
    out.push_back(static_cast<uint8_t>(seg.location));
    PutU64(out, seg.base);
    out.push_back(seg.durable ? 1 : 0);
  }
  PutU32(out, Crc32c(ByteSpan(out.data(), out.size())));
  return out;
}

Result<SegmentTable> SegmentTable::Deserialize(ByteSpan data) {
  if (data.size() < 20) {
    return DataLoss("segment table snapshot truncated");
  }
  const size_t body = data.size() - 4;
  const uint32_t stored_crc = GetU32(data, body);
  if (Crc32c(data.subspan(0, body)) != stored_crc) {
    return DataLoss("segment table snapshot checksum mismatch");
  }
  ByteReader reader(data.subspan(0, body));
  if (reader.ReadU32() != kMagic) {
    return DataLoss("bad segment table magic");
  }
  if (reader.ReadU32() != kVersion) {
    return Unimplemented("unknown segment table version");
  }
  const uint64_t count = reader.ReadU64();
  if (count * kEntryBytes > reader.remaining()) {
    return DataLoss("segment table snapshot truncated");
  }
  SegmentTable table;
  for (uint64_t i = 0; i < count; ++i) {
    Segment seg;
    seg.id.hi = reader.ReadU64();
    seg.id.lo = reader.ReadU64();
    seg.size = reader.ReadU64();
    seg.location = static_cast<Location>(reader.ReadU8());
    seg.base = reader.ReadU64();
    seg.durable = reader.ReadU8() != 0;
    if (!reader.Ok()) {
      return DataLoss("segment table snapshot truncated");
    }
    RETURN_IF_ERROR(table.Insert(seg));
  }
  return table;
}

Status SegmentTable::PersistTo(nvme::Controller* controller, uint32_t nsid,
                               uint64_t boot_area_lbas) const {
  Bytes snapshot = Serialize();
  // Length prefix so Load knows how much of the padded area is real.
  Bytes framed;
  PutU64(framed, snapshot.size());
  PutBytes(framed, ByteSpan(snapshot.data(), snapshot.size()));
  const uint64_t lbas_needed = (framed.size() + nvme::kLbaSize - 1) / nvme::kLbaSize;
  if (lbas_needed > boot_area_lbas) {
    return ResourceExhausted("segment table exceeds boot area");
  }
  framed.resize(lbas_needed * nvme::kLbaSize, 0);
  RETURN_IF_ERROR(controller->Write(nsid, 0, ByteSpan(framed.data(), framed.size())));
  return controller->Flush(nsid);
}

Result<SegmentTable> SegmentTable::LoadFrom(nvme::Controller* controller, uint32_t nsid,
                                            uint64_t boot_area_lbas) {
  ASSIGN_OR_RETURN(Bytes first, controller->Read(nsid, 0, 1));
  const uint64_t length = GetU64(first, 0);
  if (length == 0) {
    return NotFound("no segment table snapshot present");
  }
  const uint64_t total = length + 8;
  const uint64_t lbas = (total + nvme::kLbaSize - 1) / nvme::kLbaSize;
  if (lbas > boot_area_lbas) {
    return DataLoss("snapshot length exceeds boot area");
  }
  ASSIGN_OR_RETURN(Bytes all, controller->Read(nsid, 0, static_cast<uint32_t>(lbas)));
  return Deserialize(ByteSpan(all.data() + 8, length));
}

}  // namespace hyperion::mem
