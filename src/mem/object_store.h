// Single-level object store (paper §2.1).
//
// The ObjectStore is the programming surface of Hyperion's unified
// storage-memory model: 128-bit segment ids name objects wherever they live
// (FPGA DRAM, HBM, or NVMe flash). Total addressable capacity is the sum of
// all three. Placement follows creation hints — performance-critical
// objects go to HBM, durable ones to NVMe — with graceful spill when a tier
// is full, and explicit Promote()/Demote() for hint-driven migration.
//
// Every access pays exactly one segment-table translation (object-granular)
// plus the media cost of the tier — no page tables, no TLBs, no pinning, no
// host OS. Crash recovery reloads the persisted segment table and drops
// ephemeral (DRAM/HBM) segments, keeping durable ones.

#ifndef HYPERION_SRC_MEM_OBJECT_STORE_H_
#define HYPERION_SRC_MEM_OBJECT_STORE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/common/result.h"
#include "src/mem/allocator.h"
#include "src/mem/dram.h"
#include "src/mem/segment_table.h"
#include "src/nvme/controller.h"
#include "src/sim/engine.h"
#include "src/sim/stats.h"

namespace hyperion::mem {

struct ObjectStoreConfig {
  uint64_t dram_bytes = 256ull << 20;
  uint64_t hbm_bytes = 64ull << 20;
  uint32_t nvme_nsid = 1;
  // LBAs reserved at the start of the namespace for the segment-table
  // snapshot (the "pre-selected control/boot NVMe area").
  uint64_t boot_area_lbas = 256;
};

class ObjectStore {
 public:
  ObjectStore(sim::Engine* engine, nvme::Controller* nvme, ObjectStoreConfig config);

  // Allocates a segment of `size` bytes placed per `hints`; returns its id.
  Result<SegmentId> Create(uint64_t size, SegmentHints hints = SegmentHints());
  // Same, but with a caller-chosen id (used by layers that derive ids).
  Status CreateWithId(SegmentId id, uint64_t size, SegmentHints hints = SegmentHints());

  Status Delete(SegmentId id);

  Status Write(SegmentId id, uint64_t offset, ByteSpan data);
  Result<Bytes> Read(SegmentId id, uint64_t offset, uint64_t length);
  // Read into a caller-owned buffer (`out.size()` bytes at `offset`):
  // allocation-free for DRAM/HBM segments, which is what lets per-packet
  // index probes run without a heap allocation per access.
  Status ReadInto(SegmentId id, uint64_t offset, MutableByteSpan out);

  // Moves a segment's backing to `target`, copying its contents.
  Status Migrate(SegmentId id, Location target);

  // Hints-based promotion (§2.1: "performance-critical objects are ...
  // eventually promoted to DRAM or HBM"): migrates up to `max_promotions`
  // of the most-accessed ephemeral flash-resident segments with at least
  // `min_accesses` touches into DRAM, then resets the access counters.
  // Returns the number promoted.
  Result<uint64_t> PromoteHot(uint64_t min_accesses, size_t max_promotions);

  // Accesses recorded for a segment since the last PromoteHot sweep.
  uint64_t AccessCount(SegmentId id) const;

  Result<Segment> Describe(SegmentId id) const;
  size_t SegmentCount() const { return table_.size(); }

  // Persists the segment table snapshot to the boot area.
  Status Checkpoint();

  // Simulates power-cycle recovery: reloads the table from the boot area,
  // drops ephemeral segments, and rebuilds NVMe allocator state. Returns
  // the number of segments recovered.
  Result<uint64_t> Recover();

  uint64_t TotalCapacity() const;
  const sim::Counters& counters() const { return counters_; }

 private:
  Result<Location> PickLocation(uint64_t size, const SegmentHints& hints);
  Result<uint64_t> AllocateIn(Location loc, uint64_t size);
  Status FreeIn(Location loc, uint64_t base, uint64_t size);

  Status WriteNvme(const Segment& seg, uint64_t offset, ByteSpan data);
  Result<Bytes> ReadNvme(const Segment& seg, uint64_t offset, uint64_t length);

  sim::Engine* engine_;
  nvme::Controller* nvme_;
  ObjectStoreConfig config_;

  DramDevice dram_;
  DramDevice hbm_;
  RangeAllocator dram_alloc_;
  RangeAllocator hbm_alloc_;
  RangeAllocator nvme_alloc_;  // LBA-granular, excludes the boot area

  SegmentTable table_;
  std::unordered_map<SegmentId, uint64_t> access_counts_;
  uint64_t next_id_ = 1;
  sim::Counters counters_;
};

}  // namespace hyperion::mem

#endif  // HYPERION_SRC_MEM_OBJECT_STORE_H_
