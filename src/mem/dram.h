// On-board DRAM/HBM model for the DPU (the U280 carries 32 GiB DDR4 and
// 8 GiB HBM2) and for the baseline host's DIMMs.
//
// A flat byte arena with a simple latency model: fixed access latency plus
// serialization at the device bandwidth. HBM trades slightly higher latency
// for much higher bandwidth, which is why the placement hints of §2.1
// matter.

#ifndef HYPERION_SRC_MEM_DRAM_H_
#define HYPERION_SRC_MEM_DRAM_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/sim/engine.h"

namespace hyperion::mem {

struct DramParams {
  sim::Duration access_latency = 90;  // row activate + CAS, ns
  double bandwidth_gbps = 153.6;      // 19.2 GB/s DDR4-2400 channel
};

inline DramParams HbmParams() {
  return DramParams{.access_latency = 120, .bandwidth_gbps = 3680.0};  // 460 GB/s
}

class DramDevice {
 public:
  DramDevice(sim::Engine* engine, uint64_t capacity_bytes, DramParams params = DramParams())
      : engine_(engine), params_(params), data_(capacity_bytes, 0) {}

  uint64_t capacity() const { return data_.size(); }

  Status Read(uint64_t addr, MutableByteSpan out);
  Status Write(uint64_t addr, ByteSpan data);

  // Latency model only (no data movement), for planners.
  sim::Duration AccessTime(uint64_t bytes) const {
    return params_.access_latency + sim::TransferTime(bytes, params_.bandwidth_gbps);
  }

 private:
  sim::Engine* engine_;
  DramParams params_;
  std::vector<uint8_t> data_;
};

}  // namespace hyperion::mem

#endif  // HYPERION_SRC_MEM_DRAM_H_
