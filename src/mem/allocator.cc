#include "src/mem/allocator.h"

#include <algorithm>

#include "src/common/check.h"

namespace hyperion::mem {

RangeAllocator::RangeAllocator(uint64_t capacity) : capacity_(capacity) {
  if (capacity > 0) {
    free_[0] = capacity;
  }
}

Result<uint64_t> RangeAllocator::Allocate(uint64_t size) {
  if (size == 0) {
    return InvalidArgument("zero-size allocation");
  }
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second >= size) {
      const uint64_t offset = it->first;
      const uint64_t remaining = it->second - size;
      free_.erase(it);
      if (remaining > 0) {
        free_[offset + size] = remaining;
      }
      used_ += size;
      return offset;
    }
  }
  return ResourceExhausted("no contiguous range of requested size");
}

Status RangeAllocator::Reserve(uint64_t offset, uint64_t size) {
  if (size == 0 || offset + size > capacity_) {
    return InvalidArgument("bad reserve range");
  }
  // Find the free range containing [offset, offset+size).
  auto it = free_.upper_bound(offset);
  if (it == free_.begin()) {
    return AlreadyExists("range (partially) allocated");
  }
  --it;
  const uint64_t free_start = it->first;
  const uint64_t free_size = it->second;
  if (offset < free_start || offset + size > free_start + free_size) {
    return AlreadyExists("range (partially) allocated");
  }
  free_.erase(it);
  if (offset > free_start) {
    free_[free_start] = offset - free_start;
  }
  if (offset + size < free_start + free_size) {
    free_[offset + size] = free_start + free_size - (offset + size);
  }
  used_ += size;
  return Status::Ok();
}

Status RangeAllocator::Free(uint64_t offset, uint64_t size) {
  if (size == 0 || offset + size > capacity_) {
    return InvalidArgument("bad free range");
  }
  // Find the free range after the one being inserted and its predecessor.
  auto next = free_.lower_bound(offset);
  if (next != free_.end() && offset + size > next->first) {
    return InvalidArgument("free overlaps a free range (double free?)");
  }
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second > offset) {
      return InvalidArgument("free overlaps a free range (double free?)");
    }
  }
  used_ -= size;
  // Insert, then coalesce with neighbours.
  auto [it, inserted] = free_.emplace(offset, size);
  CHECK(inserted);
  // Coalesce forward.
  auto after = std::next(it);
  if (after != free_.end() && it->first + it->second == after->first) {
    it->second += after->second;
    free_.erase(after);
  }
  // Coalesce backward.
  if (it != free_.begin()) {
    auto before = std::prev(it);
    if (before->first + before->second == it->first) {
      before->second += it->second;
      free_.erase(it);
    }
  }
  return Status::Ok();
}

uint64_t RangeAllocator::LargestFreeRange() const {
  uint64_t largest = 0;
  for (const auto& [off, size] : free_) {
    largest = std::max(largest, size);
  }
  return largest;
}

}  // namespace hyperion::mem
