// Segment translation table (paper §2.1).
//
// Hyperion replaces page-based virtual memory with segmentation-based,
// single-level unified storage-memory addressing: a 128-bit segment id maps
// to a location (DRAM, HBM, or NVMe) and a base address within it. The
// table is object-granular — one entry per segment regardless of its size —
// which is the coarseness the paper credits with "reducing overheads
// associated with the virtual memory translation". Experiment E4 compares
// the per-access translation cost of this table against a 4-level page walk
// (see vm_baseline.h).
//
// The table is periodically persisted to a pre-selected control/boot NVMe
// area so the single-level store survives power cycles.

#ifndef HYPERION_SRC_MEM_SEGMENT_TABLE_H_
#define HYPERION_SRC_MEM_SEGMENT_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/u128.h"
#include "src/nvme/controller.h"
#include "src/sim/time.h"

namespace hyperion::mem {

using SegmentId = U128;

enum class Location : uint8_t { kDram = 0, kHbm = 1, kNvme = 2 };

// Placement/durability intent supplied at creation (the "hints-based
// allocation" of §2.1).
struct SegmentHints {
  bool durable = false;           // must live on NVMe (also) to survive power-off
  bool performance_critical = false;  // prefer HBM over DRAM
};

struct Segment {
  SegmentId id;
  uint64_t size = 0;
  Location location = Location::kDram;
  uint64_t base = 0;  // byte offset in DRAM/HBM arena, or starting LBA on NVMe
  bool durable = false;
};

class SegmentTable {
 public:
  SegmentTable() = default;

  // Inserts a new segment entry. Fails with kAlreadyExists on id collision.
  Status Insert(const Segment& segment);
  Status Erase(SegmentId id);

  // Translation: id -> descriptor. This is the operation on Hyperion's
  // critical path; its modelled hardware cost is kLookupCost (one hashed
  // SRAM/HBM reference — contrast with the 4-level DRAM walk of the VM
  // baseline).
  Result<Segment> Lookup(SegmentId id) const;

  Status Update(const Segment& segment);  // kNotFound if absent

  size_t size() const { return entries_.size(); }
  std::vector<Segment> Entries() const;  // sorted by id, for persistence/tests

  // Modelled hardware translation cost per lookup.
  static constexpr sim::Duration kLookupCost = 8;  // ns: hash + one SRAM bank read

  // -- Persistence (control/boot NVMe area) --------------------------------

  // Serialized snapshot format: [magic, version, count, entries..., crc32c].
  Bytes Serialize() const;
  static Result<SegmentTable> Deserialize(ByteSpan data);

  // Writes the snapshot to `boot_lbas` starting at LBA 0 of `nsid`.
  Status PersistTo(nvme::Controller* controller, uint32_t nsid, uint64_t boot_area_lbas) const;
  static Result<SegmentTable> LoadFrom(nvme::Controller* controller, uint32_t nsid,
                                       uint64_t boot_area_lbas);

 private:
  std::unordered_map<SegmentId, Segment> entries_;
};

}  // namespace hyperion::mem

#endif  // HYPERION_SRC_MEM_SEGMENT_TABLE_H_
