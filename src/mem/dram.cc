#include "src/mem/dram.h"

#include <algorithm>

namespace hyperion::mem {

Status DramDevice::Read(uint64_t addr, MutableByteSpan out) {
  if (addr + out.size() > data_.size()) {
    return OutOfRange("DRAM read past end");
  }
  std::copy(data_.begin() + static_cast<ptrdiff_t>(addr),
            data_.begin() + static_cast<ptrdiff_t>(addr + out.size()), out.begin());
  engine_->Advance(AccessTime(out.size()));
  return Status::Ok();
}

Status DramDevice::Write(uint64_t addr, ByteSpan data) {
  if (addr + data.size() > data_.size()) {
    return OutOfRange("DRAM write past end");
  }
  std::copy(data.begin(), data.end(), data_.begin() + static_cast<ptrdiff_t>(addr));
  engine_->Advance(AccessTime(data.size()));
  return Status::Ok();
}

}  // namespace hyperion::mem
