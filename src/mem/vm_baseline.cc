#include "src/mem/vm_baseline.h"

#include "src/common/check.h"

namespace hyperion::mem {

namespace {
constexpr int kLevelShift[4] = {12, 21, 30, 39};  // PT, PD, PDPT, PML4
constexpr uint64_t kVaMask = (1ull << 48) - 1;
}  // namespace

PageTable::PageTable() : root_(std::make_unique<Node>()) {}

int PageTable::IndexAt(uint64_t vaddr, int level) {
  return static_cast<int>((vaddr >> kLevelShift[level]) & 0x1ff);
}

Status PageTable::MapPage(uint64_t vaddr, uint64_t paddr, PageSize page_size) {
  vaddr &= kVaMask;
  const uint64_t page = PageBytes(page_size);
  if (vaddr % page != 0 || paddr % page != 0) {
    return InvalidArgument("unaligned mapping");
  }
  const int leaf_level = page_size == PageSize::k4K ? 0 : 1;
  Node* node = root_.get();
  for (int level = 3; level > leaf_level; --level) {
    Entry& e = node->entries[static_cast<size_t>(IndexAt(vaddr, level))];
    if (e.present && e.leaf) {
      return AlreadyExists("covered by a larger mapping");
    }
    if (!e.present) {
      e.present = true;
      e.child = std::make_unique<Node>();
    }
    node = e.child.get();
  }
  Entry& leaf = node->entries[static_cast<size_t>(IndexAt(vaddr, leaf_level))];
  if (leaf.present) {
    return AlreadyExists("page already mapped");
  }
  leaf.present = true;
  leaf.leaf = true;
  leaf.paddr = paddr;
  ++mapped_pages_;
  return Status::Ok();
}

Status PageTable::MapRange(uint64_t vaddr, uint64_t paddr, uint64_t length, PageSize page_size) {
  const uint64_t page = PageBytes(page_size);
  if (length == 0 || length % page != 0) {
    return InvalidArgument("length must be a multiple of the page size");
  }
  for (uint64_t off = 0; off < length; off += page) {
    RETURN_IF_ERROR(MapPage(vaddr + off, paddr + off, page_size));
  }
  return Status::Ok();
}

Result<PageTable::Walk> PageTable::WalkTranslate(uint64_t vaddr) const {
  const uint64_t va = vaddr & kVaMask;
  const Node* node = root_.get();
  Walk walk;
  for (int level = 3; level >= 0; --level) {
    ++walk.levels_touched;
    const Entry& e = node->entries[static_cast<size_t>(IndexAt(va, level))];
    if (!e.present) {
      return NotFound("page fault: unmapped address");
    }
    if (e.leaf) {
      walk.page_size = level == 0 ? PageSize::k4K : PageSize::k2M;
      const uint64_t page = PageBytes(walk.page_size);
      walk.paddr = e.paddr + (va & (page - 1));
      return walk;
    }
    node = e.child.get();
  }
  return Internal("page table walk fell through");
}

Tlb::Tlb(uint32_t entries, uint32_t ways) : sets_(entries / ways), ways_(ways) {
  CHECK_GT(ways, 0u);
  CHECK_EQ(entries % ways, 0u);
  CHECK_GT(sets_, 0u);
  slots_.resize(entries);
}

bool Tlb::Lookup(uint64_t vaddr, CachedTranslation* out) {
  // Probe both page sizes; a real TLB does this with parallel arrays.
  for (PageSize ps : {PageSize::k4K, PageSize::k2M}) {
    const uint64_t tag = vaddr / PageBytes(ps);
    const uint32_t set = static_cast<uint32_t>(tag) % sets_;
    for (uint32_t w = 0; w < ways_; ++w) {
      Way& way = slots_[set * ways_ + w];
      if (way.valid && way.page_size == ps && way.tag == tag) {
        way.lru = ++tick_;
        ++hits_;
        out->vpn_base = tag * PageBytes(ps);
        out->paddr = way.paddr;
        out->page_size = ps;
        return true;
      }
    }
  }
  ++misses_;
  return false;
}

void Tlb::Insert(uint64_t vaddr, uint64_t page_paddr, PageSize page_size) {
  const uint64_t tag = vaddr / PageBytes(page_size);
  const uint32_t set = static_cast<uint32_t>(tag) % sets_;
  Way* victim = &slots_[set * ways_];
  for (uint32_t w = 0; w < ways_; ++w) {
    Way& way = slots_[set * ways_ + w];
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (way.lru < victim->lru) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->paddr = page_paddr;
  victim->page_size = page_size;
  victim->lru = ++tick_;
}

void Tlb::Flush() {
  for (Way& way : slots_) {
    way.valid = false;
  }
}

VirtualMemory::VirtualMemory(VmCostParams params)
    : params_(params),
      l1_(64, 4),       // 64-entry, 4-way L1 DTLB
      l2_(1536, 12),    // 1536-entry, 12-way STLB
      pwc_(32, 4) {}    // page-walk cache over 1 GiB regions

Result<VirtualMemory::Translation> VirtualMemory::Translate(uint64_t vaddr) {
  Translation t;
  Tlb::CachedTranslation cached;
  if (l1_.Lookup(vaddr, &cached)) {
    t.l1_hit = true;
    t.cost = params_.l1_tlb_hit;
    t.paddr = cached.paddr + (vaddr - cached.vpn_base);
    return t;
  }
  if (l2_.Lookup(vaddr, &cached)) {
    t.l2_hit = true;
    t.cost = params_.l2_tlb_hit;
    t.paddr = cached.paddr + (vaddr - cached.vpn_base);
    l1_.Insert(cached.vpn_base, cached.paddr, cached.page_size);
    return t;
  }
  // Full walk. The PWC can serve the PML4+PDPT levels for recently walked
  // 1 GiB regions, turning a 4-reference walk into ~2 references.
  ++walks_;
  ASSIGN_OR_RETURN(PageTable::Walk walk, table_.WalkTranslate(vaddr));
  Tlb::CachedTranslation pwc_hit;
  const uint64_t region = vaddr >> 30 << 30;  // 1 GiB granule
  sim::Duration cost = params_.l2_tlb_hit;  // both TLB probes missed first
  int steps = walk.levels_touched;
  if (pwc_.Lookup(region, &pwc_hit)) {
    const int cached_levels = std::min(steps, 2);
    cost += static_cast<sim::Duration>(cached_levels) * params_.pwc_hit_step;
    steps -= cached_levels;
  } else {
    pwc_.Insert(region, 0, PageSize::k4K);
  }
  cost += static_cast<sim::Duration>(steps) * params_.walk_step;
  t.cost = cost;
  t.paddr = walk.paddr;
  const uint64_t page = PageBytes(walk.page_size);
  const uint64_t vpn_base = vaddr / page * page;
  const uint64_t page_paddr = walk.paddr - (vaddr - vpn_base);
  l2_.Insert(vpn_base, page_paddr, walk.page_size);
  l1_.Insert(vpn_base, page_paddr, walk.page_size);
  return t;
}

}  // namespace hyperion::mem
