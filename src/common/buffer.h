// Zero-copy byte buffers for the datapath.
//
// The paper's quantitative argument (§1, Table 1) is that the CPU-free
// datapath wins by eliminating per-hop copies; the host-side simulator
// should itself exhibit that property. `Buffer` is a ref-counted immutable
// view of a byte block: slicing shares the backing allocation, so a payload
// can travel client → RPC frame → shell dispatch → storage and back with
// reference bumps instead of memcpys. `BufferChain` is the scatter-gather
// companion: a frame or DMA descriptor is a list of Buffer segments, and
// flattening (the one real copy) happens only at boundaries that genuinely
// need contiguous bytes.
//
// Every byte physically copied *through this layer* (CopyOf, ToBytes,
// Flatten, straddling ChainReader reads) is charged to a process-wide
// counter so experiments can report copies-per-request (see
// EXPERIMENTS.md, "copy-bytes accounting").
//
// Thread-safety (audited for the sharded parallel simulation, PR 3):
//   * The copy counters are relaxed atomics — accounting stays correct when
//     shard worker threads copy concurrently.
//   * The backing-block reference count is a std::shared_ptr control block,
//     whose increments/decrements are atomic: distinct Buffer values (and
//     slices) that share one block may be created, copied, and destroyed
//     from different threads — exactly what happens when an RPC payload
//     slice rides a cross-shard message.
//   * A single Buffer/BufferChain *object* is still not synchronized; hand
//     a value across shards by moving it through a channel message (the
//     barrier provides the happens-before edge), never by sharing one
//     object between concurrently running shards.
//   * Borrowed() buffers carry no refcount at all; they must stay confined
//     to the scope (and shard) that owns the underlying memory.

#ifndef HYPERION_SRC_COMMON_BUFFER_H_
#define HYPERION_SRC_COMMON_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/check.h"

namespace hyperion {

// -- Copy accounting ---------------------------------------------------------

// Monotonic totals of bytes/operations memcpy'd through the buffer layer
// since process start (relaxed atomics: exact under shard worker threads).
uint64_t BufferCopiedBytes();
uint64_t BufferCopyOps();
// Internal: charge a copy. Exposed so chain helpers outside buffer.cc can
// account honestly.
void AccountBufferCopy(uint64_t bytes);

// -- Buffer ------------------------------------------------------------------

// Immutable, ref-counted byte block view. Copying a Buffer or slicing it
// shares the backing storage; the bytes themselves are never duplicated.
class Buffer {
 public:
  Buffer() = default;

  // Adopts an existing byte vector without copying it (implicit on purpose:
  // existing call sites hand `Bytes` payloads by value/move).
  Buffer(Bytes bytes) {  // NOLINT(google-explicit-constructor)
    auto block = std::make_shared<const Bytes>(std::move(bytes));
    data_ = block->data();
    size_ = block->size();
    owner_ = std::move(block);
  }

  // Copies `data` into a fresh owned block (accounted).
  static Buffer CopyOf(ByteSpan data);
  static Buffer FromString(const std::string& s);

  // Non-owning view of caller-managed memory. The caller guarantees the
  // span outlives every Buffer/slice derived from it — intended for
  // synchronous scopes (e.g. the NVMe facade wrapping a caller's span for
  // the duration of one command).
  static Buffer Borrowed(ByteSpan data) {
    Buffer b;
    b.data_ = data.data();
    b.size_ = data.size();
    return b;
  }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint8_t operator[](size_t i) const {
    DCHECK_LT(i, size_);
    return data_[i];
  }

  ByteSpan span() const { return ByteSpan(data_, size_); }
  operator ByteSpan() const { return span(); }  // NOLINT(google-explicit-constructor)

  // Shares the backing block; no bytes move.
  Buffer Slice(size_t offset, size_t length) const {
    DCHECK_LE(offset, size_);
    DCHECK_LE(length, size_ - offset);
    Buffer b;
    b.data_ = data_ + offset;
    b.size_ = length;
    b.owner_ = owner_;
    return b;
  }
  Buffer Slice(size_t offset) const { return Slice(offset, size_ - offset); }

  // Materializes an owned, mutable copy (accounted). This is the escape
  // hatch for mutation boundaries; hot paths should slice instead.
  Bytes ToBytes() const;

  // References (including this one) on the backing block; 0 for default or
  // borrowed buffers. Test hook for aliasing/lifetime assertions.
  long use_count() const { return owner_.use_count(); }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::shared_ptr<const void> owner_;
};

// -- BufferChain -------------------------------------------------------------

// Scatter-gather list of Buffer segments: the in-memory shape of a network
// frame or DMA descriptor. Appending shares segments; only Flatten/Gather
// (and straddling ChainReader reads) copy bytes.
class BufferChain {
 public:
  BufferChain() = default;
  // A single-segment chain (implicit: lets `Bytes`/`Buffer` payloads flow
  // into scatter-gather APIs without ceremony).
  BufferChain(Buffer buffer) {  // NOLINT(google-explicit-constructor)
    Append(std::move(buffer));
  }
  BufferChain(Bytes bytes)  // NOLINT(google-explicit-constructor)
      : BufferChain(Buffer(std::move(bytes))) {}

  void Append(Buffer buffer) {
    if (buffer.empty()) {
      return;
    }
    total_ += buffer.size();
    segments_.push_back(std::move(buffer));
  }
  void Append(const BufferChain& chain) {
    for (const Buffer& seg : chain.segments_) {
      Append(seg);
    }
  }

  size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }
  size_t segment_count() const { return segments_.size(); }
  const Buffer& segment(size_t i) const {
    DCHECK_LT(i, segments_.size());
    return segments_[i];
  }

  // Byte range [offset, offset+length) as a new chain sharing segments.
  BufferChain SubChain(size_t offset, size_t length) const;

  // Contiguous copy of the whole chain (accounted).
  Bytes Flatten() const;

  // Contiguous view: free for empty/single-segment chains (shares the
  // segment), one accounted copy otherwise.
  Buffer Gather() const;

  // Copies the chain into `out` (out.size() must equal size(); accounted).
  void CopyTo(MutableByteSpan out) const;

 private:
  std::vector<Buffer> segments_;
  size_t total_ = 0;
};

// -- ChainReader -------------------------------------------------------------

// Sequential cursor over a chain that yields contiguous spans. A read that
// lives inside one segment is returned by reference (zero copy); a read
// straddling segments is assembled into caller-provided scratch (accounted).
class ChainReader {
 public:
  explicit ChainReader(const BufferChain& chain) : chain_(&chain) {}

  size_t remaining() const { return chain_->size() - consumed_; }
  bool ok() const { return ok_; }

  // Returns `n` contiguous bytes, advancing the cursor. `scratch` must hold
  // at least `n` bytes; it is written only on a straddling read. Returns an
  // empty span (and clears ok()) on overrun.
  ByteSpan Next(size_t n, MutableByteSpan scratch);

 private:
  const BufferChain* chain_;
  size_t segment_ = 0;     // current segment index
  size_t offset_ = 0;      // offset within current segment
  size_t consumed_ = 0;    // total bytes consumed
  bool ok_ = true;
};

}  // namespace hyperion

#endif  // HYPERION_SRC_COMMON_BUFFER_H_
