// Minimal leveled logging. Logs go to stderr; the level is a process-wide
// knob so tests and benches can silence INFO chatter.

#ifndef HYPERION_SRC_COMMON_LOG_H_
#define HYPERION_SRC_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace hyperion {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) {
      stream_ << v;
    }
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hyperion

#define LOG_DEBUG ::hyperion::internal::LogMessage(::hyperion::LogLevel::kDebug, __FILE__, __LINE__)
#define LOG_INFO ::hyperion::internal::LogMessage(::hyperion::LogLevel::kInfo, __FILE__, __LINE__)
#define LOG_WARNING \
  ::hyperion::internal::LogMessage(::hyperion::LogLevel::kWarning, __FILE__, __LINE__)
#define LOG_ERROR ::hyperion::internal::LogMessage(::hyperion::LogLevel::kError, __FILE__, __LINE__)

#endif  // HYPERION_SRC_COMMON_LOG_H_
