#include "src/common/buffer.h"

#include <atomic>

namespace hyperion {

namespace {
// Relaxed atomics: shard worker threads (sim/parallel.h) copy buffers
// concurrently, and the totals are monotonic tallies read only at
// quiescence — no ordering with respect to other memory is needed.
std::atomic<uint64_t> g_copied_bytes{0};
std::atomic<uint64_t> g_copy_ops{0};
}  // namespace

uint64_t BufferCopiedBytes() { return g_copied_bytes.load(std::memory_order_relaxed); }
uint64_t BufferCopyOps() { return g_copy_ops.load(std::memory_order_relaxed); }

void AccountBufferCopy(uint64_t bytes) {
  g_copied_bytes.fetch_add(bytes, std::memory_order_relaxed);
  g_copy_ops.fetch_add(1, std::memory_order_relaxed);
}

Buffer Buffer::CopyOf(ByteSpan data) {
  AccountBufferCopy(data.size());
  return Buffer(Bytes(data.begin(), data.end()));
}

Buffer Buffer::FromString(const std::string& s) {
  AccountBufferCopy(s.size());
  return Buffer(Bytes(s.begin(), s.end()));
}

Bytes Buffer::ToBytes() const {
  AccountBufferCopy(size_);
  return Bytes(data_, data_ + size_);
}

BufferChain BufferChain::SubChain(size_t offset, size_t length) const {
  DCHECK_LE(offset, total_);
  DCHECK_LE(length, total_ - offset);
  BufferChain out;
  size_t skip = offset;
  size_t want = length;
  for (const Buffer& seg : segments_) {
    if (want == 0) {
      break;
    }
    if (skip >= seg.size()) {
      skip -= seg.size();
      continue;
    }
    const size_t take = std::min(want, seg.size() - skip);
    out.Append(seg.Slice(skip, take));
    skip = 0;
    want -= take;
  }
  return out;
}

Bytes BufferChain::Flatten() const {
  Bytes out(total_);
  CopyTo(MutableByteSpan(out));
  return out;
}

Buffer BufferChain::Gather() const {
  if (segments_.empty()) {
    return Buffer();
  }
  if (segments_.size() == 1) {
    return segments_[0];
  }
  return Buffer(Flatten());
}

void BufferChain::CopyTo(MutableByteSpan out) const {
  CHECK_EQ(out.size(), total_);
  size_t at = 0;
  for (const Buffer& seg : segments_) {
    std::memcpy(out.data() + at, seg.data(), seg.size());
    at += seg.size();
  }
  AccountBufferCopy(total_);
}

ByteSpan ChainReader::Next(size_t n, MutableByteSpan scratch) {
  if (!ok_ || remaining() < n || scratch.size() < n) {
    ok_ = false;
    return {};
  }
  if (n == 0) {
    return {};
  }
  const Buffer& seg = chain_->segment(segment_);
  if (seg.size() - offset_ >= n) {
    // Entirely inside the current segment: hand out the live span.
    ByteSpan out(seg.data() + offset_, n);
    offset_ += n;
    consumed_ += n;
    if (offset_ == seg.size()) {
      ++segment_;
      offset_ = 0;
    }
    return out;
  }
  // Straddles segments: assemble into scratch (the one honest copy).
  size_t filled = 0;
  while (filled < n) {
    const Buffer& cur = chain_->segment(segment_);
    const size_t take = std::min(n - filled, cur.size() - offset_);
    std::memcpy(scratch.data() + filled, cur.data() + offset_, take);
    filled += take;
    offset_ += take;
    if (offset_ == cur.size()) {
      ++segment_;
      offset_ = 0;
    }
  }
  consumed_ += n;
  AccountBufferCopy(n);
  return ByteSpan(scratch.data(), n);
}

}  // namespace hyperion
