#include "src/common/u128.h"

#include <array>

namespace hyperion {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}
}  // namespace

std::string U128::ToHex() const {
  std::string out(32, '0');
  uint64_t parts[2] = {hi, lo};
  for (int p = 0; p < 2; ++p) {
    uint64_t v = parts[p];
    for (int i = 15; i >= 0; --i) {
      out[p * 16 + i] = kHexDigits[v & 0xf];
      v >>= 4;
    }
  }
  return out;
}

bool U128::FromHex(const std::string& hex, U128* out) {
  if (hex.empty() || hex.size() > 32) {
    return false;
  }
  U128 v;
  for (char c : hex) {
    int d = HexValue(c);
    if (d < 0) {
      return false;
    }
    // v = v * 16 + d, 128-bit shift-left by 4.
    v.hi = (v.hi << 4) | (v.lo >> 60);
    v.lo = (v.lo << 4) | static_cast<uint64_t>(d);
  }
  *out = v;
  return true;
}

}  // namespace hyperion
