#include "src/common/log.h"

#include <atomic>
#include <iostream>

namespace hyperion {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_min_level.load()), level_(level) {
  if (enabled_) {
    // Keep only the basename to keep lines short.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace internal
}  // namespace hyperion
