// Byte-buffer utilities: little-endian encode/decode, checksums, hex dumps.
//
// Every on-"disk" and on-"wire" structure in Hyperion serializes through
// these helpers so the layout is explicit and endian-stable.

#ifndef HYPERION_SRC_COMMON_BYTES_H_
#define HYPERION_SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/common/check.h"

namespace hyperion {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;
using MutableByteSpan = std::span<uint8_t>;

// -- Little-endian fixed-width append/read ---------------------------------

inline void PutU16(Bytes& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

inline void PutU32(Bytes& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

inline void PutU64(Bytes& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

inline void PutBytes(Bytes& out, ByteSpan data) { out.insert(out.end(), data.begin(), data.end()); }

inline void PutString(Bytes& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

inline uint16_t GetU16(ByteSpan in, size_t offset) {
  DCHECK_LE(offset + 2, in.size());
  return static_cast<uint16_t>(in[offset]) | static_cast<uint16_t>(in[offset + 1]) << 8;
}

inline uint32_t GetU32(ByteSpan in, size_t offset) {
  DCHECK_LE(offset + 4, in.size());
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | in[offset + static_cast<size_t>(i)];
  }
  return v;
}

inline uint64_t GetU64(ByteSpan in, size_t offset) {
  DCHECK_LE(offset + 8, in.size());
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | in[offset + static_cast<size_t>(i)];
  }
  return v;
}

// -- Sequential reader ------------------------------------------------------

// Cursor over a byte span; Ok() goes false on overrun instead of crashing so
// parsers can reject truncated input gracefully.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  bool Ok() const { return ok_; }
  size_t offset() const { return offset_; }
  size_t remaining() const { return ok_ ? data_.size() - offset_ : 0; }

  uint8_t ReadU8() {
    if (!Require(1)) {
      return 0;
    }
    return data_[offset_++];
  }
  uint16_t ReadU16() {
    if (!Require(2)) {
      return 0;
    }
    uint16_t v = GetU16(data_, offset_);
    offset_ += 2;
    return v;
  }
  uint32_t ReadU32() {
    if (!Require(4)) {
      return 0;
    }
    uint32_t v = GetU32(data_, offset_);
    offset_ += 4;
    return v;
  }
  uint64_t ReadU64() {
    if (!Require(8)) {
      return 0;
    }
    uint64_t v = GetU64(data_, offset_);
    offset_ += 8;
    return v;
  }
  std::string ReadString() {
    uint32_t n = ReadU32();
    if (!Require(n)) {
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data()) + offset_, n);
    offset_ += n;
    return s;
  }
  Bytes ReadBytes(size_t n) {
    if (!Require(n)) {
      return {};
    }
    Bytes b(data_.begin() + static_cast<ptrdiff_t>(offset_),
            data_.begin() + static_cast<ptrdiff_t>(offset_ + n));
    offset_ += n;
    return b;
  }
  void Skip(size_t n) { Require(n) ? (void)(offset_ += n) : (void)0; }

 private:
  bool Require(size_t n) {
    if (!ok_ || data_.size() - offset_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  ByteSpan data_;
  size_t offset_ = 0;
  bool ok_ = true;
};

// -- Checksums & formatting -------------------------------------------------

// CRC32C (Castagnoli), bit-reflected, software table implementation. Used by
// the WAL, SSTables, the segment table snapshot, and the file system to
// detect torn writes (StatusCode::kDataLoss).
uint32_t Crc32c(ByteSpan data);

// FNV-1a 64-bit, for hash indexes where crypto strength is irrelevant.
uint64_t Fnv1a64(ByteSpan data);

// "deadbeef"-style lowercase hex of a buffer (for logs and tests).
std::string ToHex(ByteSpan data);

// Convenience converters between std::string payloads and Bytes.
inline Bytes ToBytes(const std::string& s) { return Bytes(s.begin(), s.end()); }
inline std::string ToString(ByteSpan b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

}  // namespace hyperion

#endif  // HYPERION_SRC_COMMON_BYTES_H_
