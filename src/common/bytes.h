// Byte-buffer utilities: little-endian encode/decode, checksums, hex dumps.
//
// Every on-"disk" and on-"wire" structure in Hyperion serializes through
// these helpers so the layout is explicit and endian-stable.

#ifndef HYPERION_SRC_COMMON_BYTES_H_
#define HYPERION_SRC_COMMON_BYTES_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/common/check.h"

namespace hyperion {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;
using MutableByteSpan = std::span<uint8_t>;

// -- Little-endian fixed-width append/read ---------------------------------
//
// Encode/decode are single memcpys on little-endian targets (every platform
// we build for); the shift loops remain as the big-endian fallback so the
// wire layout stays endian-stable.

namespace internal {

template <typename T>
inline void PutLittleEndian(Bytes& out, T v) {
  const size_t at = out.size();
  out.resize(at + sizeof(T));
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data() + at, &v, sizeof(T));
  } else {
    for (size_t i = 0; i < sizeof(T); ++i) {
      out[at + i] = static_cast<uint8_t>(v >> (8 * i));
    }
  }
}

template <typename T>
inline T GetLittleEndian(ByteSpan in, size_t offset) {
  DCHECK_LE(offset + sizeof(T), in.size());
  if constexpr (std::endian::native == std::endian::little) {
    T v;
    std::memcpy(&v, in.data() + offset, sizeof(T));
    return v;
  } else {
    T v = 0;
    for (size_t i = sizeof(T); i-- > 0;) {
      v = static_cast<T>((v << 8) | in[offset + i]);
    }
    return v;
  }
}

}  // namespace internal

inline void PutU16(Bytes& out, uint16_t v) { internal::PutLittleEndian(out, v); }
inline void PutU32(Bytes& out, uint32_t v) { internal::PutLittleEndian(out, v); }
inline void PutU64(Bytes& out, uint64_t v) { internal::PutLittleEndian(out, v); }

inline void PutBytes(Bytes& out, ByteSpan data) { out.insert(out.end(), data.begin(), data.end()); }

inline void PutString(Bytes& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

inline uint16_t GetU16(ByteSpan in, size_t offset) {
  return internal::GetLittleEndian<uint16_t>(in, offset);
}

inline uint32_t GetU32(ByteSpan in, size_t offset) {
  return internal::GetLittleEndian<uint32_t>(in, offset);
}

inline uint64_t GetU64(ByteSpan in, size_t offset) {
  return internal::GetLittleEndian<uint64_t>(in, offset);
}

// -- Sequential reader ------------------------------------------------------

// Cursor over a byte span; Ok() goes false on overrun instead of crashing so
// parsers can reject truncated input gracefully.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  bool Ok() const { return ok_; }
  size_t offset() const { return offset_; }
  size_t remaining() const { return ok_ ? data_.size() - offset_ : 0; }

  uint8_t ReadU8() {
    if (!Require(1)) {
      return 0;
    }
    return data_[offset_++];
  }
  uint16_t ReadU16() {
    if (!Require(2)) {
      return 0;
    }
    uint16_t v = GetU16(data_, offset_);
    offset_ += 2;
    return v;
  }
  uint32_t ReadU32() {
    if (!Require(4)) {
      return 0;
    }
    uint32_t v = GetU32(data_, offset_);
    offset_ += 4;
    return v;
  }
  uint64_t ReadU64() {
    if (!Require(8)) {
      return 0;
    }
    uint64_t v = GetU64(data_, offset_);
    offset_ += 8;
    return v;
  }
  std::string ReadString() {
    uint32_t n = ReadU32();
    if (!Require(n)) {
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data()) + offset_, n);
    offset_ += n;
    return s;
  }
  Bytes ReadBytes(size_t n) {
    if (!Require(n)) {
      return {};
    }
    Bytes b(data_.begin() + static_cast<ptrdiff_t>(offset_),
            data_.begin() + static_cast<ptrdiff_t>(offset_ + n));
    offset_ += n;
    return b;
  }
  void Skip(size_t n) { Require(n) ? (void)(offset_ += n) : (void)0; }

 private:
  bool Require(size_t n) {
    if (!ok_ || data_.size() - offset_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  ByteSpan data_;
  size_t offset_ = 0;
  bool ok_ = true;
};

// -- Sequential writer ------------------------------------------------------

// Append-side companion to ByteReader: owns the output vector and carries a
// reserve hint so fixed-layout headers and length-prefixed payloads are
// built with one allocation and memcpy-width stores.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(size_t reserve_hint) { buf_.reserve(reserve_hint); }

  // Pre-allocates room for `additional` more bytes.
  void Reserve(size_t additional) { buf_.reserve(buf_.size() + additional); }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { hyperion::PutU16(buf_, v); }
  void PutU32(uint32_t v) { hyperion::PutU32(buf_, v); }
  void PutU64(uint64_t v) { hyperion::PutU64(buf_, v); }
  void PutBytes(ByteSpan data) { hyperion::PutBytes(buf_, data); }
  void PutString(const std::string& s) { hyperion::PutString(buf_, s); }

  size_t size() const { return buf_.size(); }
  const Bytes& bytes() const { return buf_; }
  // Moves the accumulated bytes out; the writer is empty afterwards.
  Bytes Take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

// -- Checksums & formatting -------------------------------------------------

// CRC32C (Castagnoli), bit-reflected. Dispatches once to the hardware
// instruction path (SSE4.2 / ARMv8 CRC) when the CPU has it, else the
// software table; both produce identical results (cross-checked in tests).
uint32_t Crc32c(ByteSpan data);

namespace internal {
// Test/bench hooks for the two CRC32C implementations.
uint32_t Crc32cSoftware(ByteSpan data);
bool Crc32cHardwareAvailable();
// Precondition: Crc32cHardwareAvailable().
uint32_t Crc32cHardware(ByteSpan data);
}  // namespace internal

// FNV-1a 64-bit, for hash indexes where crypto strength is irrelevant.
uint64_t Fnv1a64(ByteSpan data);

// "deadbeef"-style lowercase hex of a buffer (for logs and tests).
std::string ToHex(ByteSpan data);

// Convenience converters between std::string payloads and Bytes.
inline Bytes ToBytes(const std::string& s) { return Bytes(s.begin(), s.end()); }
inline std::string ToString(ByteSpan b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

}  // namespace hyperion

#endif  // HYPERION_SRC_COMMON_BYTES_H_
