// CHECK/DCHECK: invariant enforcement. A failed CHECK aborts the process with
// the file/line and a streamed message; it is for programmer errors, never
// for conditions a caller can trigger (those return Status).

#ifndef HYPERION_SRC_COMMON_CHECK_H_
#define HYPERION_SRC_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace hyperion {
namespace internal {

// Accumulates the streamed message and aborts on destruction (end of the
// full expression the CHECK appears in).
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// glog-style voidify: `&` binds looser than `<<`, so the whole streamed
// chain evaluates before being discarded, and the ternary stays type-`void`.
struct Voidify {
  void operator&(const CheckFailure&) {}
};

}  // namespace internal
}  // namespace hyperion

#define CHECK(cond)            \
  (cond) ? (void)0             \
         : ::hyperion::internal::Voidify() & \
               ::hyperion::internal::CheckFailure(__FILE__, __LINE__, #cond)

#define CHECK_OP(a, b, op)     \
  ((a)op(b)) ? (void)0         \
             : ::hyperion::internal::Voidify() & \
                   ::hyperion::internal::CheckFailure(__FILE__, __LINE__, #a " " #op " " #b)

#define CHECK_EQ(a, b) CHECK_OP(a, b, ==)
#define CHECK_NE(a, b) CHECK_OP(a, b, !=)
#define CHECK_LT(a, b) CHECK_OP(a, b, <)
#define CHECK_LE(a, b) CHECK_OP(a, b, <=)
#define CHECK_GT(a, b) CHECK_OP(a, b, >)
#define CHECK_GE(a, b) CHECK_OP(a, b, >=)

// CHECK_OK(expr): expr must evaluate to an OK Status (or Result). Binds by
// value (not reference): GCC 12 raises spurious -Wdangling-pointer /
// -Wmaybe-uninitialized on lifetime-extended shared_ptr members otherwise.
#define CHECK_OK(expr)                                                         \
  do {                                                                         \
    const auto _check_ok_st = (expr);                                          \
    if (!_check_ok_st.ok()) {                                                  \
      ::hyperion::internal::CheckFailure(__FILE__, __LINE__, #expr)            \
          << " -> not OK";                                                     \
    }                                                                          \
  } while (0)

#ifndef NDEBUG
#define DCHECK(cond) CHECK(cond)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#else
#define DCHECK(cond) CHECK(true || (cond))
#define DCHECK_EQ(a, b) DCHECK((a) == (b))
#define DCHECK_NE(a, b) DCHECK((a) != (b))
#define DCHECK_LT(a, b) DCHECK((a) < (b))
#define DCHECK_LE(a, b) DCHECK((a) <= (b))
#define DCHECK_GT(a, b) DCHECK((a) > (b))
#define DCHECK_GE(a, b) DCHECK((a) >= (b))
#endif

#endif  // HYPERION_SRC_COMMON_CHECK_H_
