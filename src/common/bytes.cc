#include "src/common/bytes.h"

#include <array>

namespace hyperion {

namespace {

// Castagnoli polynomial, reflected.
constexpr uint32_t kCrc32cPoly = 0x82f63b78u;

std::array<uint32_t, 256> BuildCrc32cTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 1) != 0 ? (crc >> 1) ^ kCrc32cPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(ByteSpan data) {
  static const std::array<uint32_t, 256> kTable = BuildCrc32cTable();
  uint32_t crc = 0xffffffffu;
  for (uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

uint64_t Fnv1a64(ByteSpan data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string ToHex(ByteSpan data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t byte : data) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xf]);
  }
  return out;
}

}  // namespace hyperion
