#include "src/common/bytes.h"

#include <array>

#include "src/common/check.h"

#if defined(__x86_64__) || defined(__i386__)
#define HYPERION_CRC32C_X86 1
#include <nmmintrin.h>
#elif defined(__aarch64__) && defined(__linux__)
#define HYPERION_CRC32C_ARM 1
#include <arm_acle.h>
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif

namespace hyperion {

namespace {

// Castagnoli polynomial, reflected.
constexpr uint32_t kCrc32cPoly = 0x82f63b78u;

std::array<uint32_t, 256> BuildCrc32cTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 1) != 0 ? (crc >> 1) ^ kCrc32cPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

namespace internal {

uint32_t Crc32cSoftware(ByteSpan data) {
  static const std::array<uint32_t, 256> kTable = BuildCrc32cTable();
  uint32_t crc = 0xffffffffu;
  for (uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

#if defined(HYPERION_CRC32C_X86)

bool Crc32cHardwareAvailable() { return __builtin_cpu_supports("sse4.2") != 0; }

__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(ByteSpan data) {
  uint32_t crc = 0xffffffffu;
  const uint8_t* p = data.data();
  size_t n = data.size();
#if defined(__x86_64__)
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc64 = _mm_crc32_u64(crc64, chunk);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
#endif
  while (n >= 4) {
    uint32_t chunk;
    std::memcpy(&chunk, p, 4);
    crc = _mm_crc32_u32(crc, chunk);
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  return crc ^ 0xffffffffu;
}

#elif defined(HYPERION_CRC32C_ARM)

bool Crc32cHardwareAvailable() { return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0; }

__attribute__((target("+crc"))) uint32_t Crc32cHardware(ByteSpan data) {
  uint32_t crc = 0xffffffffu;
  const uint8_t* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc = __crc32cd(crc, chunk);
    p += 8;
    n -= 8;
  }
  while (n >= 4) {
    uint32_t chunk;
    std::memcpy(&chunk, p, 4);
    crc = __crc32cw(crc, chunk);
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = __crc32cb(crc, *p++);
    --n;
  }
  return crc ^ 0xffffffffu;
}

#else

bool Crc32cHardwareAvailable() { return false; }

uint32_t Crc32cHardware(ByteSpan data) {
  CHECK(false) << "no hardware CRC32C on this target";
  return Crc32cSoftware(data);
}

#endif

}  // namespace internal

uint32_t Crc32c(ByteSpan data) {
  static const bool kUseHardware = internal::Crc32cHardwareAvailable();
  return kUseHardware ? internal::Crc32cHardware(data) : internal::Crc32cSoftware(data);
}

uint64_t Fnv1a64(ByteSpan data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string ToHex(ByteSpan data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t byte : data) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xf]);
  }
  return out;
}

}  // namespace hyperion
