// Status: lightweight error propagation for fallible operations.
//
// Libraries in Hyperion do not throw exceptions across their API boundaries
// (C++ Core Guidelines E.x applied to a systems context); fallible calls
// return Status or Result<T> (see result.h) instead. A Status is cheap to
// copy in the OK case (no allocation) and carries a code plus a diagnostic
// message otherwise.

#ifndef HYPERION_SRC_COMMON_STATUS_H_
#define HYPERION_SRC_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>

namespace hyperion {

// Canonical error space, modelled on the POSIX/absl intersection that a
// storage/network stack actually needs.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   // caller passed something malformed
  kNotFound = 2,          // key / segment / file absent
  kAlreadyExists = 3,     // create-exclusive collision
  kOutOfRange = 4,        // offset past end, capacity exceeded
  kPermissionDenied = 5,  // isolation / verifier rejection
  kUnavailable = 6,       // transient: queue full, link down, retry may help
  kDataLoss = 7,          // checksum mismatch, torn write detected
  kInternal = 8,          // invariant violated inside the library
  kUnimplemented = 9,     // feature intentionally absent
  kAborted = 10,          // transaction / request aborted (conflict)
  kDeadlineExceeded = 11, // simulated timeout expired
  kResourceExhausted = 12 // no slots / blocks / credits left
};

// Human-readable name of a StatusCode ("OK", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  // Default-constructed Status is OK.
  Status() = default;

  Status(StatusCode code, std::string_view message);

  static Status Ok() { return Status(); }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }
  std::string_view message() const {
    return rep_ == nullptr ? std::string_view() : std::string_view(rep_->message);
  }

  // "OK" or "NOT_FOUND: no such segment".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Null for OK: the success path never allocates.
  std::shared_ptr<const Rep> rep_;
};

// Factory helpers so call sites read as `return NotFound("segment ...")`.
Status InvalidArgument(std::string_view message);
Status NotFound(std::string_view message);
Status AlreadyExists(std::string_view message);
Status OutOfRange(std::string_view message);
Status PermissionDenied(std::string_view message);
Status Unavailable(std::string_view message);
Status DataLoss(std::string_view message);
Status Internal(std::string_view message);
Status Unimplemented(std::string_view message);
Status Aborted(std::string_view message);
Status DeadlineExceeded(std::string_view message);
Status ResourceExhausted(std::string_view message);

// Propagate a non-OK status to the caller.
#define RETURN_IF_ERROR(expr)                 \
  do {                                        \
    ::hyperion::Status _st = (expr);          \
    if (!_st.ok()) {                          \
      return _st;                             \
    }                                         \
  } while (0)

}  // namespace hyperion

#endif  // HYPERION_SRC_COMMON_STATUS_H_
