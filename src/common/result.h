// Result<T>: value-or-Status, the return type of fallible producing calls.
//
// Usage:
//   Result<Segment> r = table.Lookup(id);
//   if (!r.ok()) return r.status();
//   Use(r.value());
//
// or, inside a function that itself returns Status/Result:
//   ASSIGN_OR_RETURN(Segment seg, table.Lookup(id));

#ifndef HYPERION_SRC_COMMON_RESULT_H_
#define HYPERION_SRC_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/common/status.h"

namespace hyperion {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from a value: `return segment;`.
  Result(T value) : value_(std::move(value)) {}
  // Implicit from a non-OK Status: `return NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {
    CHECK(!status_.ok()) << "Result constructed from OK status without a value";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

#define HYPERION_CONCAT_INNER(a, b) a##b
#define HYPERION_CONCAT(a, b) HYPERION_CONCAT_INNER(a, b)

// ASSIGN_OR_RETURN(lhs, expr): evaluates expr (a Result<T>), propagating the
// error to the caller, otherwise binding the value to lhs.
#define ASSIGN_OR_RETURN(lhs, expr)                                    \
  auto HYPERION_CONCAT(_result_, __LINE__) = (expr);                  \
  if (!HYPERION_CONCAT(_result_, __LINE__).ok()) {                    \
    return HYPERION_CONCAT(_result_, __LINE__).status();              \
  }                                                                    \
  lhs = std::move(HYPERION_CONCAT(_result_, __LINE__)).value()

}  // namespace hyperion

#endif  // HYPERION_SRC_COMMON_RESULT_H_
