#include "src/common/status.h"

namespace hyperion {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

Status::Status(StatusCode code, std::string_view message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_shared<const Rep>(Rep{code, std::string(message)});
  }
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code()));
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

Status InvalidArgument(std::string_view message) {
  return Status(StatusCode::kInvalidArgument, message);
}
Status NotFound(std::string_view message) { return Status(StatusCode::kNotFound, message); }
Status AlreadyExists(std::string_view message) {
  return Status(StatusCode::kAlreadyExists, message);
}
Status OutOfRange(std::string_view message) { return Status(StatusCode::kOutOfRange, message); }
Status PermissionDenied(std::string_view message) {
  return Status(StatusCode::kPermissionDenied, message);
}
Status Unavailable(std::string_view message) { return Status(StatusCode::kUnavailable, message); }
Status DataLoss(std::string_view message) { return Status(StatusCode::kDataLoss, message); }
Status Internal(std::string_view message) { return Status(StatusCode::kInternal, message); }
Status Unimplemented(std::string_view message) {
  return Status(StatusCode::kUnimplemented, message);
}
Status Aborted(std::string_view message) { return Status(StatusCode::kAborted, message); }
Status DeadlineExceeded(std::string_view message) {
  return Status(StatusCode::kDeadlineExceeded, message);
}
Status ResourceExhausted(std::string_view message) {
  return Status(StatusCode::kResourceExhausted, message);
}

}  // namespace hyperion
