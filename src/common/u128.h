// U128: an unsigned 128-bit integer used for Hyperion object / segment IDs.
//
// The paper (§2.1) adopts 128-bit object identifiers for its single-level,
// segmentation-based storage-memory addressing (inspired by Twizzler). We
// implement the subset of arithmetic the system needs: comparison, addition
// of 64-bit offsets, hashing, and parsing/printing — avoiding a dependency
// on compiler-specific __int128 in public headers.

#ifndef HYPERION_SRC_COMMON_U128_H_
#define HYPERION_SRC_COMMON_U128_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace hyperion {

struct U128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  constexpr U128() = default;
  constexpr U128(uint64_t high, uint64_t low) : hi(high), lo(low) {}
  // Implicit widening from 64 bits is intended: segment ids are often built
  // from small integers in tests and examples.
  constexpr U128(uint64_t low) : hi(0), lo(low) {}  // NOLINT(google-explicit-constructor)

  friend constexpr bool operator==(const U128&, const U128&) = default;
  friend constexpr std::strong_ordering operator<=>(const U128& a, const U128& b) {
    if (a.hi != b.hi) {
      return a.hi <=> b.hi;
    }
    return a.lo <=> b.lo;
  }

  // a + b with wraparound, matching unsigned integer semantics.
  friend constexpr U128 operator+(U128 a, uint64_t b) {
    U128 r = a;
    r.lo += b;
    if (r.lo < a.lo) {
      ++r.hi;
    }
    return r;
  }

  friend constexpr U128 operator-(U128 a, uint64_t b) {
    U128 r = a;
    r.lo -= b;
    if (a.lo < b) {
      --r.hi;
    }
    return r;
  }

  constexpr bool IsZero() const { return hi == 0 && lo == 0; }

  // 32 hex digits, zero padded: "0123456789abcdef0123456789abcdef".
  std::string ToHex() const;

  // Parses ToHex() output (also accepts shorter strings, right-aligned).
  // Returns false on non-hex input or length > 32.
  static bool FromHex(const std::string& hex, U128* out);
};

}  // namespace hyperion

template <>
struct std::hash<hyperion::U128> {
  size_t operator()(const hyperion::U128& v) const noexcept {
    // splitmix-style combine of the two halves.
    uint64_t x = v.hi ^ (v.lo + 0x9e3779b97f4a7c15ULL + (v.hi << 6) + (v.hi >> 2));
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return static_cast<size_t>(x);
  }
};

#endif  // HYPERION_SRC_COMMON_U128_H_
