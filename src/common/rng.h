// Deterministic pseudo-random generation for simulation and workloads.
//
// All randomness in Hyperion flows through Rng so that every test, bench,
// and simulated workload is reproducible from a single seed. The core is
// xoshiro256**, seeded via splitmix64.

#ifndef HYPERION_SRC_COMMON_RNG_H_
#define HYPERION_SRC_COMMON_RNG_H_

#include <cstdint>
#include <cmath>

#include "src/common/check.h"

namespace hyperion {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 to spread a possibly-low-entropy seed over the state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  // Uniform over the full 64-bit range.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    DCHECK_GT(bound, 0u);
    // Lemire's multiply-shift rejection-free approximation is fine here: the
    // simulation does not need cryptographic uniformity, only balance.
    return static_cast<uint64_t>((static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    DCHECK_LE(lo, hi);
    return lo + Uniform(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Zipfian over [0, n) with skew theta (0 = uniform-ish, 0.99 = YCSB
  // default). Uses the Gray et al. rejection-free approximation.
  uint64_t Zipf(uint64_t n, double theta) {
    DCHECK_GT(n, 0u);
    if (n != zipf_n_ || theta != zipf_theta_) {
      PrepareZipf(n, theta);
    }
    const double u = NextDouble();
    const double uz = u * zipf_zeta_n_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, zipf_theta_)) {
      return 1;
    }
    return static_cast<uint64_t>(static_cast<double>(n) *
                                 std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
  }

  // Exponential with the given mean (> 0); used for inter-arrival times.
  double Exponential(double mean) {
    DCHECK_GT(mean, 0.0);
    double u = NextDouble();
    // Guard the log(0) corner.
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(u);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  void PrepareZipf(uint64_t n, double theta) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_zeta_n_ = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      zipf_zeta_n_ += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    const double zeta2 = 1.0 + std::pow(0.5, theta);
    zipf_alpha_ = 1.0 / (1.0 - theta);
    zipf_eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
                (1.0 - zeta2 / zipf_zeta_n_);
  }

  uint64_t state_[4];

  // Cached Zipf parameters (recomputed when n or theta changes).
  uint64_t zipf_n_ = 0;
  double zipf_theta_ = 0.0;
  double zipf_zeta_n_ = 0.0;
  double zipf_alpha_ = 0.0;
  double zipf_eta_ = 0.0;
};

}  // namespace hyperion

#endif  // HYPERION_SRC_COMMON_RNG_H_
