// Columnar in-memory format (paper §2.3: "application-level object formats
// Parquet (on storage) and Arrow (in-memory)").
//
// A RecordBatch is a set of equal-length typed column vectors — the
// data-in-motion representation Hyperion's accelerators operate on. Three
// physical types cover the analytics experiments: int64, float64, and
// dictionary-encodable strings.

#ifndef HYPERION_SRC_FORMAT_ARROW_H_
#define HYPERION_SRC_FORMAT_ARROW_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/common/result.h"

namespace hyperion::format {

enum class ColumnType : uint8_t { kInt64 = 0, kFloat64 = 1, kString = 2 };

std::string_view ColumnTypeName(ColumnType type);

struct Field {
  std::string name;
  ColumnType type = ColumnType::kInt64;
};

using Schema = std::vector<Field>;

// One column's data; the variant alternative must match the schema type.
using ColumnData =
    std::variant<std::vector<int64_t>, std::vector<double>, std::vector<std::string>>;

class RecordBatch {
 public:
  RecordBatch(Schema schema, std::vector<ColumnData> columns);

  // Validated construction: checks column count, types, equal lengths.
  static Result<RecordBatch> Make(Schema schema, std::vector<ColumnData> columns);

  const Schema& schema() const { return schema_; }
  uint64_t rows() const { return rows_; }
  size_t ColumnCount() const { return columns_.size(); }

  Result<size_t> ColumnIndex(const std::string& name) const;

  const std::vector<int64_t>& Int64Column(size_t i) const;
  const std::vector<double>& Float64Column(size_t i) const;
  const std::vector<std::string>& StringColumn(size_t i) const;
  const ColumnData& column(size_t i) const { return columns_[i]; }

  // Row-filtered copy (selection vector semantics).
  RecordBatch Take(const std::vector<uint32_t>& row_indices) const;

 private:
  Schema schema_;
  std::vector<ColumnData> columns_;
  uint64_t rows_ = 0;
};

}  // namespace hyperion::format

#endif  // HYPERION_SRC_FORMAT_ARROW_H_
