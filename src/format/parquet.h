// Columnar on-storage format (Parquet-flavoured), paper §2.3.
//
// Layout of a file:
//
//   [magic "HPQ1"]
//   row group 0: column chunk 0, column chunk 1, ...
//   row group 1: ...
//   footer: schema, per-group/per-column chunk metadata
//           (offset, byte size, encoding, zone-map min/max for int64)
//   [footer_size u32][magic "HPQ1"]
//
// Encodings: int64 chunks pick PLAIN or RLE (whichever is smaller), strings
// pick PLAIN or DICTIONARY, float64 is PLAIN. Zone maps enable row-group
// skipping (predicate pushdown); chunk-granular offsets enable projection
// pushdown (fetch only the columns you scan). The reader pulls bytes
// through a caller-supplied fetch function, so the same code prices an
// in-memory buffer, a host file-system read, or the annotated CPU-free
// device path of experiment E8.

#ifndef HYPERION_SRC_FORMAT_PARQUET_H_
#define HYPERION_SRC_FORMAT_PARQUET_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/format/arrow.h"

namespace hyperion::format {

enum class Encoding : uint8_t { kPlain = 0, kRle = 1, kDictionary = 2 };

struct ChunkMeta {
  uint64_t offset = 0;  // from file start
  uint64_t bytes = 0;
  Encoding encoding = Encoding::kPlain;
  // Zone map, valid for int64 columns.
  bool has_zone_map = false;
  int64_t min = 0;
  int64_t max = 0;
};

struct RowGroupMeta {
  uint64_t rows = 0;
  std::vector<ChunkMeta> chunks;  // one per schema field
};

struct ParquetWriteOptions {
  uint64_t rows_per_group = 4096;
  // Omit zone maps entirely (has_zone_map = false on every chunk). Readers
  // must then treat every row group as a potential match — the pushdown
  // layers cross-check both shapes against each other.
  bool zone_maps = true;
};

// The one zone-map predicate everyone shares (reader scans, FPGA scan
// kernels, the host baseline): true when the zone map *proves* no row of
// `chunk` can satisfy value in [lo, hi], both edges inclusive. A chunk
// without a zone map can never be excluded.
inline bool ZoneMapExcludes(const ChunkMeta& chunk, int64_t lo, int64_t hi) {
  return chunk.has_zone_map && (chunk.max < lo || chunk.min > hi);
}

// Serializes a batch into the file format.
Result<Bytes> WriteParquet(const RecordBatch& batch,
                           ParquetWriteOptions options = ParquetWriteOptions());

class ParquetReader {
 public:
  // Byte provider: reads [offset, offset+length) of the file.
  using FetchFn = std::function<Result<Bytes>(uint64_t offset, uint64_t length)>;

  static Result<ParquetReader> Open(uint64_t file_size, FetchFn fetch);
  // Convenience: reader over an in-memory buffer.
  static Result<ParquetReader> OpenBuffer(Bytes file);

  const Schema& schema() const { return schema_; }
  size_t RowGroupCount() const { return groups_.size(); }
  uint64_t TotalRows() const;

  // Footer metadata for one row group — what a pushdown engine plans chunk
  // fetches and zone-map skips from without touching data pages.
  const RowGroupMeta& GroupMeta(size_t group) const { return groups_[group]; }

  // Index of `name` in the schema; kNotFound when absent.
  Result<size_t> FieldIndex(const std::string& name) const;

  // Materializes one row group, fetching only the chunks of `columns`
  // (empty = all columns).
  Result<RecordBatch> ReadRowGroup(size_t group, const std::vector<std::string>& columns = {});

  // Zone-map-driven scan: returns rows of `projection` where
  // filter_column in [lo, hi]; row groups whose zone map excludes the range
  // are never fetched.
  Result<RecordBatch> ScanInt64Filter(const std::string& filter_column, int64_t lo, int64_t hi,
                                      const std::vector<std::string>& projection);

  uint64_t groups_skipped() const { return groups_skipped_; }
  uint64_t bytes_fetched() const { return bytes_fetched_; }

 private:
  ParquetReader(uint64_t file_size, FetchFn fetch)
      : file_size_(file_size), fetch_(std::move(fetch)) {}

  Result<Bytes> Fetch(uint64_t offset, uint64_t length);
  Status ParseFooter();
  Result<ColumnData> DecodeChunk(const ChunkMeta& chunk, ColumnType type, uint64_t rows);

  uint64_t file_size_;
  FetchFn fetch_;
  Schema schema_;
  std::vector<RowGroupMeta> groups_;
  uint64_t groups_skipped_ = 0;
  uint64_t bytes_fetched_ = 0;
};

}  // namespace hyperion::format

#endif  // HYPERION_SRC_FORMAT_PARQUET_H_
