#include "src/format/scan_kernel.h"

#include <algorithm>
#include <map>

#include "src/nvme/flash.h"

namespace hyperion::format {

namespace {

// Incremental FNV-1a fold of one 64-bit value (little-endian bytes).
uint64_t FnvFold64(uint64_t hash, uint64_t v) {
  for (size_t i = 0; i < 8; ++i) {
    hash ^= (v >> (8 * i)) & 0xff;
    hash *= 1099511628211ull;
  }
  return hash;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ull;

// Folds a per-group partial aggregate into the running one. An empty part
// contributes nothing (count == 0 is the "no rows" discriminant).
void MergeAggregates(Int64Aggregates* into, const Int64Aggregates& part) {
  if (part.count == 0) {
    return;
  }
  if (into->count == 0) {
    *into = part;
    return;
  }
  into->count += part.count;
  into->sum = WrapAddInt64(into->sum, part.sum);
  into->min = std::min(into->min, part.min);
  into->max = std::max(into->max, part.max);
}

}  // namespace

std::string_view ScanKernelName(ScanKernelKind kind) {
  switch (kind) {
    case ScanKernelKind::kFilter:
      return "filter";
    case ScanKernelKind::kFilterAggregate:
      return "filter_aggregate";
    case ScanKernelKind::kGroupedSum:
      return "grouped_sum";
  }
  return "unknown";
}

uint64_t ScanOutput::Fingerprint() const {
  uint64_t h = kFnvOffset;
  h = FnvFold64(h, rows_scanned);
  h = FnvFold64(h, rows_matched);
  h = FnvFold64(h, match_hash);
  h = FnvFold64(h, agg.count);
  h = FnvFold64(h, static_cast<uint64_t>(agg.sum));
  h = FnvFold64(h, static_cast<uint64_t>(agg.min));
  h = FnvFold64(h, static_cast<uint64_t>(agg.max));
  h = FnvFold64(h, groups.size());
  for (const auto& [name, sum] : groups) {
    h = FnvFold64(h, Fnv1a64(ToBytes(name)));
    h = FnvFold64(h, static_cast<uint64_t>(sum));
  }
  return h;
}

// -- Wire codecs -------------------------------------------------------------

Bytes SerializeScanQuery(const ScanQuery& query) {
  ByteWriter w(64);
  w.PutU8(static_cast<uint8_t>(query.kind));
  w.PutString(query.filter_column);
  w.PutU64(static_cast<uint64_t>(query.lo));
  w.PutU64(static_cast<uint64_t>(query.hi));
  w.PutString(query.value_column);
  w.PutString(query.group_column);
  return w.Take();
}

Result<ScanQuery> ParseScanQuery(ByteSpan payload) {
  ByteReader r(payload);
  ScanQuery q;
  const uint8_t kind = r.ReadU8();
  if (kind >= kScanKernelKindCount) {
    return InvalidArgument("unknown scan kernel kind");
  }
  q.kind = static_cast<ScanKernelKind>(kind);
  q.filter_column = r.ReadString();
  q.lo = static_cast<int64_t>(r.ReadU64());
  q.hi = static_cast<int64_t>(r.ReadU64());
  q.value_column = r.ReadString();
  q.group_column = r.ReadString();
  if (!r.Ok()) {
    return DataLoss("truncated scan query");
  }
  return q;
}

Bytes SerializeScanResult(const ScanResult& result) {
  const ScanOutput& o = result.output;
  const ScanStats& s = result.stats;
  ByteWriter w(128);
  w.PutU64(o.rows_scanned);
  w.PutU64(o.rows_matched);
  w.PutU64(o.match_hash);
  w.PutU64(o.agg.count);
  w.PutU64(static_cast<uint64_t>(o.agg.sum));
  w.PutU64(static_cast<uint64_t>(o.agg.min));
  w.PutU64(static_cast<uint64_t>(o.agg.max));
  w.PutU32(static_cast<uint32_t>(o.groups.size()));
  for (const auto& [name, sum] : o.groups) {
    w.PutString(name);
    w.PutU64(static_cast<uint64_t>(sum));
  }
  w.PutU64(s.groups_total);
  w.PutU64(s.groups_skipped);
  w.PutU64(s.chunk_bytes_fetched);
  w.PutU64(s.device_bytes_moved);
  w.PutU64(s.host_bytes_copied);
  w.PutU8(s.reconfigured ? 1 : 0);
  w.PutU64(s.reconfig_ns);
  w.PutU64(s.exec_ns);
  return w.Take();
}

Result<ScanResult> ParseScanResult(ByteSpan payload) {
  ByteReader r(payload);
  ScanResult out;
  ScanOutput& o = out.output;
  o.rows_scanned = r.ReadU64();
  o.rows_matched = r.ReadU64();
  o.match_hash = r.ReadU64();
  o.agg.count = r.ReadU64();
  o.agg.sum = static_cast<int64_t>(r.ReadU64());
  o.agg.min = static_cast<int64_t>(r.ReadU64());
  o.agg.max = static_cast<int64_t>(r.ReadU64());
  const uint32_t group_count = r.ReadU32();
  // Each group needs >= 12 bytes (length + u64); bound before reserving.
  if (!r.Ok() || uint64_t{group_count} * 12 > r.remaining()) {
    return DataLoss("implausible scan result group count");
  }
  o.groups.reserve(group_count);
  for (uint32_t i = 0; i < group_count; ++i) {
    std::string name = r.ReadString();
    const int64_t sum = static_cast<int64_t>(r.ReadU64());
    if (!r.Ok()) {
      return DataLoss("truncated scan result groups");
    }
    o.groups.emplace_back(std::move(name), sum);
  }
  ScanStats& s = out.stats;
  s.groups_total = r.ReadU64();
  s.groups_skipped = r.ReadU64();
  s.chunk_bytes_fetched = r.ReadU64();
  s.device_bytes_moved = r.ReadU64();
  s.host_bytes_copied = r.ReadU64();
  s.reconfigured = r.ReadU8() != 0;
  s.reconfig_ns = r.ReadU64();
  s.exec_ns = r.ReadU64();
  if (!r.Ok()) {
    return DataLoss("truncated scan result");
  }
  return out;
}

// -- Shared evaluation loop --------------------------------------------------

Result<ScanOutput> EvaluateScanQuery(ParquetReader& reader, const ScanQuery& query,
                                     const ScanChargeFn& charge, ScanStats* stats) {
  ASSIGN_OR_RETURN(size_t filter_idx, reader.FieldIndex(query.filter_column));
  if (reader.schema()[filter_idx].type != ColumnType::kInt64) {
    return InvalidArgument("scan filter column is not int64");
  }

  // Projection: only the columns the query touches are ever fetched.
  std::vector<std::string> columns = {query.filter_column};
  if (query.kind != ScanKernelKind::kFilter && query.value_column != query.filter_column) {
    columns.push_back(query.value_column);
  }
  if (query.kind == ScanKernelKind::kGroupedSum && query.group_column != query.filter_column &&
      query.group_column != query.value_column) {
    columns.push_back(query.group_column);
  }
  // Validate the projection up front so a bad query fails before any fetch.
  for (const auto& name : columns) {
    ASSIGN_OR_RETURN(size_t ignored, reader.FieldIndex(name));
    (void)ignored;
  }

  ScanOutput out;
  out.match_hash = kFnvOffset;
  std::map<std::string, int64_t> grouped;

  const size_t group_count = reader.RowGroupCount();
  uint64_t skipped = 0;
  const uint64_t fetched_before = reader.bytes_fetched();
  for (size_t g = 0; g < group_count; ++g) {
    const RowGroupMeta& meta = reader.GroupMeta(g);
    if (ZoneMapExcludes(meta.chunks[filter_idx], query.lo, query.hi)) {
      ++skipped;
      continue;
    }
    const uint64_t group_fetch_before = reader.bytes_fetched();
    ASSIGN_OR_RETURN(RecordBatch batch, reader.ReadRowGroup(g, columns));
    if (charge) {
      Status charged = charge(reader.bytes_fetched() - group_fetch_before, batch.rows());
      if (!charged.ok()) {
        return charged;
      }
    }
    out.rows_scanned += batch.rows();
    ASSIGN_OR_RETURN(RecordBatch matched, FilterInt64(batch, query.filter_column, query.lo,
                                                      query.hi));
    out.rows_matched += matched.rows();
    ASSIGN_OR_RETURN(size_t midx, matched.ColumnIndex(query.filter_column));
    for (int64_t v : matched.Int64Column(midx)) {
      out.match_hash = FnvFold64(out.match_hash, static_cast<uint64_t>(v));
    }
    switch (query.kind) {
      case ScanKernelKind::kFilter:
        break;
      case ScanKernelKind::kFilterAggregate: {
        ASSIGN_OR_RETURN(Int64Aggregates part, AggregateInt64(matched, query.value_column));
        MergeAggregates(&out.agg, part);
        break;
      }
      case ScanKernelKind::kGroupedSum: {
        ASSIGN_OR_RETURN(auto part, GroupedSum(matched, query.group_column, query.value_column));
        for (const auto& [name, sum] : part) {
          int64_t& into = grouped[name];
          into = WrapAddInt64(into, sum);
        }
        break;
      }
    }
  }
  if (query.kind == ScanKernelKind::kGroupedSum) {
    out.groups.assign(grouped.begin(), grouped.end());
  }
  if (stats != nullptr) {
    stats->groups_total += group_count;
    stats->groups_skipped += skipped;
    stats->chunk_bytes_fetched += reader.bytes_fetched() - fetched_before;
  }
  return out;
}

// -- Parquet-on-NVMe placement -----------------------------------------------

Result<NvmeParquetFile> NvmeParquetFile::Store(nvme::Controller* nvme, uint32_t nsid,
                                               uint64_t base_lba, ByteSpan file) {
  if (file.empty()) {
    return InvalidArgument("cannot store an empty parquet file");
  }
  Bytes padded(file.begin(), file.end());
  const size_t tail = padded.size() % nvme::kLbaSize;
  if (tail != 0) {
    padded.resize(padded.size() + (nvme::kLbaSize - tail));
  }
  Status written = nvme->Write(nsid, base_lba, padded);
  if (!written.ok()) {
    return written;
  }
  auto state = std::make_shared<State>();
  state->nvme = nvme;
  state->nsid = nsid;
  state->base_lba = base_lba;
  state->file_size = file.size();
  return NvmeParquetFile(std::move(state));
}

NvmeParquetFile NvmeParquetFile::Attach(nvme::Controller* nvme, uint32_t nsid, uint64_t base_lba,
                                        uint64_t file_size) {
  auto state = std::make_shared<State>();
  state->nvme = nvme;
  state->nsid = nsid;
  state->base_lba = base_lba;
  state->file_size = file_size;
  return NvmeParquetFile(std::move(state));
}

uint64_t NvmeParquetFile::lbas() const {
  return (state_->file_size + nvme::kLbaSize - 1) / nvme::kLbaSize;
}

Result<Bytes> NvmeParquetFile::ReadDevice(uint64_t offset, uint64_t length) const {
  State& s = *state_;
  if (length > s.file_size || offset > s.file_size - length) {
    return OutOfRange("read past parquet extent");
  }
  if (length == 0) {
    return Bytes{};
  }
  const uint64_t first = offset / nvme::kLbaSize;
  const uint64_t last = (offset + length - 1) / nvme::kLbaSize;
  const uint64_t blocks = last - first + 1;
  ASSIGN_OR_RETURN(Bytes raw, s.nvme->Read(s.nsid, s.base_lba + first,
                                           static_cast<uint32_t>(blocks)));
  s.device_bytes += blocks * nvme::kLbaSize;
  const uint64_t skip = offset - first * nvme::kLbaSize;
  return Bytes(raw.begin() + static_cast<ptrdiff_t>(skip),
               raw.begin() + static_cast<ptrdiff_t>(skip + length));
}

ParquetReader::FetchFn NvmeParquetFile::ChunkFetch() const {
  // Capture the handle (shared state) by value: the closure outlives `this`.
  NvmeParquetFile self = *this;
  return [self](uint64_t offset, uint64_t length) { return self.ReadDevice(offset, length); };
}

// -- The FPGA scan kernel ----------------------------------------------------

FpgaScanKernel::FpgaScanKernel(sim::Engine* engine, fpga::Fabric* fabric,
                               fpga::SlotScheduler* scheduler, ScanKernelConfig config)
    : engine_(engine), fabric_(fabric), scheduler_(scheduler), config_(config) {}

Result<ScanResult> FpgaScanKernel::Execute(const NvmeParquetFile& table, const ScanQuery& query) {
  if (static_cast<size_t>(query.kind) >= kScanKernelKindCount) {
    return InvalidArgument("unknown scan kernel kind");
  }
  fpga::Bitstream bitstream;
  bitstream.name = std::string("scan/") + std::string(ScanKernelName(query.kind));
  bitstream.size_bytes = config_.bitstream_bytes[static_cast<size_t>(query.kind)];
  bitstream.fmax_mhz = config_.fmax_mhz;
  bitstream.tenant = config_.tenant;
  ASSIGN_OR_RETURN(fpga::SlotScheduler::Placement placement, scheduler_->Acquire(bitstream));

  ScanResult result;
  result.stats.reconfigured = placement.reconfigured;
  result.stats.reconfig_ns = static_cast<uint64_t>(placement.reconfig_latency);
  Status run = ExecuteOnRegion(placement.region, table, query, &result);
  Status released = scheduler_->Release(placement.region);
  if (!run.ok()) {
    return run;
  }
  if (!released.ok()) {
    return released;
  }
  return result;
}

Status FpgaScanKernel::ExecuteOnRegion(fpga::RegionId region, const NvmeParquetFile& table,
                                       const ScanQuery& query, ScanResult* out) {
  const sim::SimTime start = engine_->Now();
  const uint64_t device_before = table.device_bytes_moved();

  // Footer fetch rides the same accounted device path as the chunks.
  ASSIGN_OR_RETURN(ParquetReader reader, ParquetReader::Open(table.file_size(),
                                                             table.ChunkFetch()));
  Result<sim::Duration> setup = fabric_->Execute(region, config_.setup_cycles);
  if (!setup.ok()) {
    return setup.status();
  }
  const ScanChargeFn charge = [this, region](uint64_t bytes, uint64_t rows) -> Status {
    const uint64_t cycles =
        bytes / config_.bytes_per_cycle + rows * config_.per_row_cycles + 1;
    Result<sim::Duration> ran = fabric_->Execute(region, cycles);
    return ran.ok() ? Status::Ok() : ran.status();
  };
  ASSIGN_OR_RETURN(out->output, EvaluateScanQuery(reader, query, charge, &out->stats));
  out->stats.device_bytes_moved = table.device_bytes_moved() - device_before;
  out->stats.host_bytes_copied = 0;
  out->stats.exec_ns = static_cast<uint64_t>(engine_->Now() - start);
  return Status::Ok();
}

}  // namespace hyperion::format
