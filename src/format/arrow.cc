#include "src/format/arrow.h"

#include "src/common/check.h"

namespace hyperion::format {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kFloat64:
      return "float64";
    case ColumnType::kString:
      return "string";
  }
  return "?";
}

namespace {
uint64_t LengthOf(const ColumnData& column) {
  return std::visit([](const auto& v) { return static_cast<uint64_t>(v.size()); }, column);
}

bool TypeMatches(const ColumnData& column, ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return std::holds_alternative<std::vector<int64_t>>(column);
    case ColumnType::kFloat64:
      return std::holds_alternative<std::vector<double>>(column);
    case ColumnType::kString:
      return std::holds_alternative<std::vector<std::string>>(column);
  }
  return false;
}
}  // namespace

RecordBatch::RecordBatch(Schema schema, std::vector<ColumnData> columns)
    : schema_(std::move(schema)), columns_(std::move(columns)) {
  CHECK_EQ(schema_.size(), columns_.size());
  rows_ = columns_.empty() ? 0 : LengthOf(columns_[0]);
  for (size_t i = 0; i < columns_.size(); ++i) {
    CHECK(TypeMatches(columns_[i], schema_[i].type)) << "column " << i << " type mismatch";
    CHECK_EQ(LengthOf(columns_[i]), rows_) << "ragged column " << i;
  }
}

Result<RecordBatch> RecordBatch::Make(Schema schema, std::vector<ColumnData> columns) {
  if (schema.size() != columns.size()) {
    return InvalidArgument("schema/column count mismatch");
  }
  const uint64_t rows = columns.empty() ? 0 : LengthOf(columns[0]);
  for (size_t i = 0; i < columns.size(); ++i) {
    if (!TypeMatches(columns[i], schema[i].type)) {
      return InvalidArgument("column type does not match schema");
    }
    if (LengthOf(columns[i]) != rows) {
      return InvalidArgument("ragged columns");
    }
  }
  return RecordBatch(std::move(schema), std::move(columns));
}

Result<size_t> RecordBatch::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == name) {
      return i;
    }
  }
  return NotFound("no column named " + name);
}

const std::vector<int64_t>& RecordBatch::Int64Column(size_t i) const {
  return std::get<std::vector<int64_t>>(columns_[i]);
}

const std::vector<double>& RecordBatch::Float64Column(size_t i) const {
  return std::get<std::vector<double>>(columns_[i]);
}

const std::vector<std::string>& RecordBatch::StringColumn(size_t i) const {
  return std::get<std::vector<std::string>>(columns_[i]);
}

RecordBatch RecordBatch::Take(const std::vector<uint32_t>& row_indices) const {
  std::vector<ColumnData> out;
  out.reserve(columns_.size());
  for (const ColumnData& column : columns_) {
    out.push_back(std::visit(
        [&row_indices](const auto& v) -> ColumnData {
          std::decay_t<decltype(v)> taken;
          taken.reserve(row_indices.size());
          for (uint32_t idx : row_indices) {
            CHECK_LT(idx, v.size());
            taken.push_back(v[idx]);
          }
          return taken;
        },
        column));
  }
  return RecordBatch(schema_, std::move(out));
}

}  // namespace hyperion::format
