// Streaming Parquet scan kernels: predicate + projection pushdown executed
// on the FPGA fabric, reading row groups directly from NVMe (paper §2.3,
// FpgaHub's "FPGA as the data hub", Diba's reconfigurable operators).
//
// The pipeline this models:
//
//   NVMe flash --(chunk-granular DMA)--> fabric region --(scan kernel)--> result
//
// No host bounce: only the footer and the column chunks a query actually
// needs cross the device link (zone maps prune whole row groups before any
// data page is fetched), and the filter/aggregate circuit consumes the
// stream at line rate. Each query kind is its own partial bitstream, swapped
// onto a region by fpga::SlotScheduler via ICAP partial reconfiguration —
// the 10-100 ms band the paper cites, measured end to end by E18.
//
// `EvaluateScanQuery` is the one shared evaluation loop: the FPGA kernel
// prices it in fabric cycles, `baseline::HostScanPath` prices the identical
// loop in host CPU cycles after bouncing the whole file through DRAM. Both
// produce bit-identical ScanOutput — the bytes-moved delta is the
// architecture, not the answer.

#ifndef HYPERION_SRC_FORMAT_SCAN_KERNEL_H_
#define HYPERION_SRC_FORMAT_SCAN_KERNEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/format/parquet.h"
#include "src/format/scan.h"
#include "src/fpga/scheduler.h"
#include "src/nvme/controller.h"
#include "src/sim/engine.h"

namespace hyperion::format {

// -- Query model -------------------------------------------------------------

// Which circuit the query needs resident. Each kind is a distinct partial
// bitstream; switching kinds on a region costs an ICAP reconfiguration.
enum class ScanKernelKind : uint8_t {
  kFilter = 0,           // WHERE filter_column IN [lo, hi] (count + hash)
  kFilterAggregate = 1,  // ... plus count/sum/min/max of value_column
  kGroupedSum = 2,       // ... plus GROUP BY group_column SUM(value_column)
};
inline constexpr size_t kScanKernelKindCount = 3;

// Stable lower_snake name ("filter", ...), used in bitstream names/counters.
std::string_view ScanKernelName(ScanKernelKind kind);

struct ScanQuery {
  ScanKernelKind kind = ScanKernelKind::kFilter;
  std::string filter_column;  // int64 predicate column
  int64_t lo = 0;             // inclusive range, both edges
  int64_t hi = 0;
  std::string value_column;  // int64, for kFilterAggregate / kGroupedSum
  std::string group_column;  // string, for kGroupedSum

  bool operator==(const ScanQuery&) const = default;
};

// What a scan ships back over the wire. Matched rows are witnessed by
// (rows_matched, match_hash) rather than materialized wholesale — the
// pushdown argument is precisely that results are small next to the data.
struct ScanOutput {
  uint64_t rows_scanned = 0;  // rows in groups the zone maps could not prune
  uint64_t rows_matched = 0;
  // FNV-1a over the matched filter-column values, in row-group order: a
  // bit-identity witness of exactly which rows matched.
  uint64_t match_hash = 0;
  Int64Aggregates agg;  // kFilterAggregate (zero otherwise)
  // kGroupedSum: (group, sum) pairs, sorted by group (empty otherwise).
  std::vector<std::pair<std::string, int64_t>> groups;

  bool operator==(const ScanOutput&) const = default;

  // Order-sensitive digest of every field — what the determinism oracles
  // fold across shard layouts.
  uint64_t Fingerprint() const;
};

// Bytes-moved + latency accounting, the currency of experiment E18.
struct ScanStats {
  uint64_t groups_total = 0;
  uint64_t groups_skipped = 0;        // pruned by zone maps, never fetched
  uint64_t chunk_bytes_fetched = 0;   // footer + chunk bytes the reader asked for
  uint64_t device_bytes_moved = 0;    // LBA-rounded bytes the device shipped
  uint64_t host_bytes_copied = 0;     // kernel->user copies (0 on the fabric path)
  bool reconfigured = false;          // this query paid an ICAP load
  uint64_t reconfig_ns = 0;
  uint64_t exec_ns = 0;               // open + stream + evaluate, after placement

  bool operator==(const ScanStats&) const = default;
};

struct ScanResult {
  ScanOutput output;
  ScanStats stats;

  bool operator==(const ScanResult&) const = default;
};

// -- Wire codecs (RPC payloads of the analytics service) ---------------------

Bytes SerializeScanQuery(const ScanQuery& query);
Result<ScanQuery> ParseScanQuery(ByteSpan payload);
Bytes SerializeScanResult(const ScanResult& result);
Result<ScanResult> ParseScanResult(ByteSpan payload);

// -- Shared evaluation loop --------------------------------------------------

// Charges `bytes` of chunk stream + `rows` of per-row work to whatever
// substrate executes the scan. Returning non-OK aborts the scan (e.g. the
// fabric region failed mid-query).
using ScanChargeFn = std::function<Status(uint64_t bytes, uint64_t rows)>;

// Group-at-a-time streaming evaluation: for each row group, consult the
// zone map (ZoneMapExcludes — inclusive [lo,hi], unmapped groups never
// skipped), fetch only the chunks of the columns the query touches, charge
// the substrate, filter, fold aggregates. Fills stats->groups_total,
// groups_skipped, chunk_bytes_fetched; the caller owns the device/host
// byte accounting. Output is independent of the substrate by construction.
Result<ScanOutput> EvaluateScanQuery(ParquetReader& reader, const ScanQuery& query,
                                     const ScanChargeFn& charge, ScanStats* stats);

// -- Parquet-on-NVMe placement -----------------------------------------------

// A Parquet file resident on an NVMe namespace at a fixed LBA extent, with
// chunk-granular fetch: ChunkFetch() reads exactly the LBAs covering a
// requested byte range (device moves LBA-rounded bytes; the reader sees the
// byte-exact slice). Copyable handle over shared state so the FetchFn
// closures and the owner observe one bytes-moved counter.
class NvmeParquetFile {
 public:
  // Writes `file` (LBA-padded) to [base_lba, ...) of `nsid`.
  static Result<NvmeParquetFile> Store(nvme::Controller* nvme, uint32_t nsid, uint64_t base_lba,
                                       ByteSpan file);
  // Wraps an extent written earlier (e.g. by a peer shard's Store).
  static NvmeParquetFile Attach(nvme::Controller* nvme, uint32_t nsid, uint64_t base_lba,
                                uint64_t file_size);

  uint64_t file_size() const { return state_->file_size; }
  uint64_t lbas() const;  // blocks the file occupies (padding included)

  // FetchFn for ParquetReader::Open: byte-exact view, LBA-rounded device
  // traffic, every read accounted in device_bytes_moved().
  ParquetReader::FetchFn ChunkFetch() const;

  // Raw extent read (the host baseline streams the whole file through this).
  Result<Bytes> ReadDevice(uint64_t offset, uint64_t length) const;

  // Total LBA-rounded bytes the device shipped through this handle.
  uint64_t device_bytes_moved() const { return state_->device_bytes; }

 private:
  struct State {
    nvme::Controller* nvme = nullptr;
    uint32_t nsid = 0;
    uint64_t base_lba = 0;
    uint64_t file_size = 0;
    uint64_t device_bytes = 0;
  };
  explicit NvmeParquetFile(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

// -- The FPGA scan kernel ----------------------------------------------------

struct ScanKernelConfig {
  // Streaming datapath: bytes of chunk data consumed per fabric cycle
  // (a 512-bit AXI stream), plus a per-row evaluate slot.
  uint64_t bytes_per_cycle = 64;
  uint64_t setup_cycles = 2000;  // CSR writes, footer walk, pipeline fill
  uint64_t per_row_cycles = 1;
  double fmax_mhz = 250.0;
  // Partial bitstream sizes per kind; at the default 400 MB/s ICAP these
  // land reconfiguration in the paper's 10-100 ms band (11-18 ms).
  uint64_t bitstream_bytes[kScanKernelKindCount] = {
      3584 * 1024,  // filter: comparators + popcount
      4608 * 1024,  // filter+aggregate: adds an accumulate tree
      6144 * 1024,  // grouped sum: adds a hash table + dictionary decode
  };
  fpga::TenantId tenant = fpga::kNoTenant;
};

// Executes ScanQuerys against NVMe-resident Parquet files on a fabric
// region, acquiring the kind's bitstream through the slot scheduler (a
// resident hit is free; a miss pays ICAP reconfiguration, measured in
// ScanStats). One instance serves many tables and queries.
class FpgaScanKernel {
 public:
  FpgaScanKernel(sim::Engine* engine, fpga::Fabric* fabric, fpga::SlotScheduler* scheduler,
                 ScanKernelConfig config = ScanKernelConfig());

  // Runs `query` over `table` end to end: acquire slot, stream surviving
  // chunks from NVMe, evaluate, release. The region is released on every
  // path, including mid-scan faults.
  Result<ScanResult> Execute(const NvmeParquetFile& table, const ScanQuery& query);

  const ScanKernelConfig& config() const { return config_; }

 private:
  Status ExecuteOnRegion(fpga::RegionId region, const NvmeParquetFile& table,
                         const ScanQuery& query, ScanResult* out);

  sim::Engine* engine_;
  fpga::Fabric* fabric_;
  fpga::SlotScheduler* scheduler_;
  ScanKernelConfig config_;
};

}  // namespace hyperion::format

#endif  // HYPERION_SRC_FORMAT_SCAN_KERNEL_H_
