#include "src/format/parquet.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>

#include "src/common/check.h"

namespace hyperion::format {

namespace {

constexpr uint32_t kMagic = 0x31515048;  // "HPQ1" little-endian

// -- Chunk encoders -----------------------------------------------------

Bytes EncodeInt64Plain(const std::vector<int64_t>& values, size_t begin, size_t end) {
  Bytes out;
  out.reserve((end - begin) * 8);
  for (size_t i = begin; i < end; ++i) {
    PutU64(out, static_cast<uint64_t>(values[i]));
  }
  return out;
}

Bytes EncodeInt64Rle(const std::vector<int64_t>& values, size_t begin, size_t end) {
  Bytes out;
  size_t i = begin;
  while (i < end) {
    size_t run = 1;
    while (i + run < end && values[i + run] == values[i]) {
      ++run;
    }
    PutU64(out, static_cast<uint64_t>(values[i]));
    PutU32(out, static_cast<uint32_t>(run));
    i += run;
  }
  return out;
}

Bytes EncodeFloat64(const std::vector<double>& values, size_t begin, size_t end) {
  Bytes out;
  out.reserve((end - begin) * 8);
  for (size_t i = begin; i < end; ++i) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(double));
    std::memcpy(&bits, &values[i], 8);
    PutU64(out, bits);
  }
  return out;
}

Bytes EncodeStringPlain(const std::vector<std::string>& values, size_t begin, size_t end) {
  Bytes out;
  for (size_t i = begin; i < end; ++i) {
    PutString(out, values[i]);
  }
  return out;
}

Bytes EncodeStringDict(const std::vector<std::string>& values, size_t begin, size_t end) {
  // Dictionary: [entry_count][entries][indices u32...].
  std::map<std::string, uint32_t> dict;
  for (size_t i = begin; i < end; ++i) {
    dict.emplace(values[i], 0);
  }
  uint32_t next = 0;
  for (auto& [k, v] : dict) {
    v = next++;
  }
  Bytes out;
  PutU32(out, static_cast<uint32_t>(dict.size()));
  for (const auto& [k, v] : dict) {
    PutString(out, k);
  }
  for (size_t i = begin; i < end; ++i) {
    PutU32(out, dict.at(values[i]));
  }
  return out;
}

}  // namespace

Result<Bytes> WriteParquet(const RecordBatch& batch, ParquetWriteOptions options) {
  if (options.rows_per_group == 0) {
    return InvalidArgument("rows_per_group must be positive");
  }
  if (batch.rows() == 0) {
    return InvalidArgument("cannot write an empty table");
  }
  Bytes file;
  PutU32(file, kMagic);

  std::vector<RowGroupMeta> groups;
  const Schema& schema = batch.schema();
  for (uint64_t start = 0; start < batch.rows(); start += options.rows_per_group) {
    const size_t begin = static_cast<size_t>(start);
    const size_t end =
        static_cast<size_t>(std::min<uint64_t>(batch.rows(), start + options.rows_per_group));
    RowGroupMeta group;
    group.rows = end - begin;
    for (size_t c = 0; c < schema.size(); ++c) {
      ChunkMeta chunk;
      chunk.offset = file.size();
      Bytes encoded;
      switch (schema[c].type) {
        case ColumnType::kInt64: {
          const auto& values = batch.Int64Column(c);
          Bytes plain = EncodeInt64Plain(values, begin, end);
          Bytes rle = EncodeInt64Rle(values, begin, end);
          if (rle.size() < plain.size()) {
            encoded = std::move(rle);
            chunk.encoding = Encoding::kRle;
          } else {
            encoded = std::move(plain);
            chunk.encoding = Encoding::kPlain;
          }
          if (options.zone_maps) {
            chunk.has_zone_map = true;
            chunk.min = *std::min_element(values.begin() + static_cast<ptrdiff_t>(begin),
                                          values.begin() + static_cast<ptrdiff_t>(end));
            chunk.max = *std::max_element(values.begin() + static_cast<ptrdiff_t>(begin),
                                          values.begin() + static_cast<ptrdiff_t>(end));
          }
          break;
        }
        case ColumnType::kFloat64:
          encoded = EncodeFloat64(batch.Float64Column(c), begin, end);
          chunk.encoding = Encoding::kPlain;
          break;
        case ColumnType::kString: {
          const auto& values = batch.StringColumn(c);
          Bytes plain = EncodeStringPlain(values, begin, end);
          Bytes dict = EncodeStringDict(values, begin, end);
          if (dict.size() < plain.size()) {
            encoded = std::move(dict);
            chunk.encoding = Encoding::kDictionary;
          } else {
            encoded = std::move(plain);
            chunk.encoding = Encoding::kPlain;
          }
          break;
        }
      }
      chunk.bytes = encoded.size();
      PutBytes(file, ByteSpan(encoded.data(), encoded.size()));
      group.chunks.push_back(chunk);
    }
    groups.push_back(std::move(group));
  }

  // Footer.
  const uint64_t footer_start = file.size();
  Bytes footer;
  PutU32(footer, static_cast<uint32_t>(schema.size()));
  for (const Field& field : schema) {
    PutString(footer, field.name);
    footer.push_back(static_cast<uint8_t>(field.type));
  }
  PutU32(footer, static_cast<uint32_t>(groups.size()));
  for (const RowGroupMeta& group : groups) {
    PutU64(footer, group.rows);
    for (const ChunkMeta& chunk : group.chunks) {
      PutU64(footer, chunk.offset);
      PutU64(footer, chunk.bytes);
      footer.push_back(static_cast<uint8_t>(chunk.encoding));
      footer.push_back(chunk.has_zone_map ? 1 : 0);
      PutU64(footer, static_cast<uint64_t>(chunk.min));
      PutU64(footer, static_cast<uint64_t>(chunk.max));
    }
  }
  PutU32(footer, Crc32c(ByteSpan(footer.data(), footer.size())));
  PutBytes(file, ByteSpan(footer.data(), footer.size()));
  PutU32(file, static_cast<uint32_t>(file.size() - footer_start));
  PutU32(file, kMagic);
  return file;
}

Result<Bytes> ParquetReader::Fetch(uint64_t offset, uint64_t length) {
  // Checked as "offset > size - length" so a corrupt footer whose
  // offset+length wraps uint64 cannot sneak past the bound.
  if (length > file_size_ || offset > file_size_ - length) {
    return OutOfRange("fetch past end of file");
  }
  bytes_fetched_ += length;
  return fetch_(offset, length);
}

Result<ParquetReader> ParquetReader::Open(uint64_t file_size, FetchFn fetch) {
  ParquetReader reader(file_size, std::move(fetch));
  RETURN_IF_ERROR(reader.ParseFooter());
  return reader;
}

Result<ParquetReader> ParquetReader::OpenBuffer(Bytes file) {
  auto shared = std::make_shared<Bytes>(std::move(file));
  const uint64_t size = shared->size();
  return Open(size, [shared](uint64_t offset, uint64_t length) -> Result<Bytes> {
    if (length > shared->size() || offset > shared->size() - length) {
      return OutOfRange("buffer fetch out of range");
    }
    return Bytes(shared->begin() + static_cast<ptrdiff_t>(offset),
                 shared->begin() + static_cast<ptrdiff_t>(offset + length));
  });
}

Status ParquetReader::ParseFooter() {
  if (file_size_ < 12) {
    return DataLoss("file too small for a footer");
  }
  ASSIGN_OR_RETURN(Bytes tail, Fetch(file_size_ - 8, 8));
  const uint32_t footer_size = GetU32(tail, 0);
  if (GetU32(tail, 4) != kMagic) {
    return DataLoss("bad trailing magic (not an HPQ file)");
  }
  // uint64 arithmetic: a footer_size near UINT32_MAX must not wrap the sum
  // back under file_size_ and walk Fetch off the front of the file.
  if (uint64_t{footer_size} + 12 > file_size_) {
    return DataLoss("footer size exceeds file");
  }
  ASSIGN_OR_RETURN(Bytes footer, Fetch(file_size_ - 8 - footer_size, footer_size));
  if (footer.size() < 4) {
    return DataLoss("footer truncated");
  }
  const size_t body = footer.size() - 4;
  if (Crc32c(ByteSpan(footer.data(), body)) != GetU32(footer, body)) {
    return DataLoss("footer checksum mismatch");
  }
  ByteReader reader(ByteSpan(footer.data(), body));
  const uint32_t field_count = reader.ReadU32();
  if (field_count > 4096) {
    return DataLoss("implausible field count");
  }
  schema_.clear();
  for (uint32_t f = 0; f < field_count; ++f) {
    Field field;
    field.name = reader.ReadString();
    const uint8_t type_byte = reader.ReadU8();
    if (!reader.Ok()) {
      return DataLoss("footer truncated");
    }
    if (type_byte > static_cast<uint8_t>(ColumnType::kString)) {
      return DataLoss("unknown column type");
    }
    field.type = static_cast<ColumnType>(type_byte);
    schema_.push_back(std::move(field));
  }
  const uint32_t group_count = reader.ReadU32();
  // Every group record is >= 8 + 34 * fields bytes, so any plausible count
  // fits the footer we already have in hand; reject before the loop rather
  // than spinning a 4-billion-iteration parse on a zero-filled reader.
  if (!reader.Ok() || uint64_t{group_count} * 8 > reader.remaining()) {
    return DataLoss("implausible row group count");
  }
  groups_.clear();
  for (uint32_t g = 0; g < group_count; ++g) {
    RowGroupMeta group;
    group.rows = reader.ReadU64();
    if (group.rows > (1ull << 40)) {
      return DataLoss("implausible row count");
    }
    for (uint32_t c = 0; c < field_count; ++c) {
      ChunkMeta chunk;
      chunk.offset = reader.ReadU64();
      chunk.bytes = reader.ReadU64();
      const uint8_t encoding_byte = reader.ReadU8();
      chunk.has_zone_map = reader.ReadU8() != 0;
      chunk.min = static_cast<int64_t>(reader.ReadU64());
      chunk.max = static_cast<int64_t>(reader.ReadU64());
      if (!reader.Ok()) {
        return DataLoss("footer truncated");
      }
      if (encoding_byte > static_cast<uint8_t>(Encoding::kDictionary)) {
        return DataLoss("unknown chunk encoding");
      }
      chunk.encoding = static_cast<Encoding>(encoding_byte);
      // Overflow-safe containment: offset + bytes must stay inside the file.
      if (chunk.bytes > file_size_ || chunk.offset > file_size_ - chunk.bytes) {
        return DataLoss("chunk extends past end of file");
      }
      group.chunks.push_back(chunk);
    }
    groups_.push_back(std::move(group));
  }
  if (!reader.Ok()) {
    return DataLoss("footer truncated");
  }
  return Status::Ok();
}

Result<size_t> ParquetReader::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == name) {
      return i;
    }
  }
  return NotFound("no column named " + name);
}

uint64_t ParquetReader::TotalRows() const {
  uint64_t rows = 0;
  for (const RowGroupMeta& group : groups_) {
    rows += group.rows;
  }
  return rows;
}

Result<ColumnData> ParquetReader::DecodeChunk(const ChunkMeta& chunk, ColumnType type,
                                              uint64_t rows) {
  ASSIGN_OR_RETURN(Bytes raw, Fetch(chunk.offset, chunk.bytes));
  ByteReader reader(ByteSpan(raw.data(), raw.size()));
  switch (type) {
    case ColumnType::kInt64: {
      std::vector<int64_t> values;
      // Reservations are bounded by the bytes actually in hand, never by the
      // (attacker-controlled) footer row count alone.
      values.reserve(std::min<uint64_t>(rows, raw.size() / 8 + 1));
      if (chunk.encoding == Encoding::kPlain) {
        if (chunk.bytes != rows * 8) {
          return DataLoss("int64 chunk size mismatch");
        }
        for (uint64_t i = 0; i < rows; ++i) {
          values.push_back(static_cast<int64_t>(reader.ReadU64()));
        }
      } else if (chunk.encoding == Encoding::kRle) {
        while (values.size() < rows) {
          const auto value = static_cast<int64_t>(reader.ReadU64());
          const uint32_t run = reader.ReadU32();
          if (!reader.Ok() || run == 0 || values.size() + run > rows) {
            return DataLoss("corrupt RLE run");
          }
          values.insert(values.end(), run, value);
        }
      } else {
        return DataLoss("bad encoding for int64 chunk");
      }
      if (!reader.Ok()) {
        return DataLoss("truncated int64 chunk");
      }
      return ColumnData(std::move(values));
    }
    case ColumnType::kFloat64: {
      if (chunk.encoding != Encoding::kPlain) {
        return DataLoss("bad encoding for float64 chunk");
      }
      if (chunk.bytes != rows * 8) {
        return DataLoss("float64 chunk size mismatch");
      }
      std::vector<double> values;
      values.reserve(rows);
      for (uint64_t i = 0; i < rows; ++i) {
        const uint64_t bits = reader.ReadU64();
        double v;
        std::memcpy(&v, &bits, 8);
        values.push_back(v);
      }
      if (!reader.Ok()) {
        return DataLoss("truncated float64 chunk");
      }
      return ColumnData(std::move(values));
    }
    case ColumnType::kString: {
      std::vector<std::string> values;
      // Each plain string costs >= 4 length bytes, each dictionary index
      // exactly 4: bound the reservation by the chunk's own size.
      values.reserve(std::min<uint64_t>(rows, raw.size() / 4 + 1));
      if (chunk.encoding == Encoding::kPlain) {
        for (uint64_t i = 0; i < rows; ++i) {
          values.push_back(reader.ReadString());
          if (!reader.Ok()) {
            return DataLoss("truncated string chunk");
          }
        }
      } else if (chunk.encoding == Encoding::kDictionary) {
        const uint32_t entries = reader.ReadU32();
        if (!reader.Ok() || uint64_t{entries} * 4 > reader.remaining()) {
          return DataLoss("corrupt dictionary header");
        }
        std::vector<std::string> dict;
        dict.reserve(entries);
        for (uint32_t e = 0; e < entries; ++e) {
          dict.push_back(reader.ReadString());
        }
        for (uint64_t i = 0; i < rows; ++i) {
          const uint32_t idx = reader.ReadU32();
          if (!reader.Ok() || idx >= dict.size()) {
            return DataLoss("corrupt dictionary index");
          }
          values.push_back(dict[idx]);
        }
      } else {
        return DataLoss("bad encoding for string chunk");
      }
      if (!reader.Ok()) {
        return DataLoss("truncated string chunk");
      }
      return ColumnData(std::move(values));
    }
  }
  return Internal("bad column type");
}

Result<RecordBatch> ParquetReader::ReadRowGroup(size_t group,
                                                const std::vector<std::string>& columns) {
  if (group >= groups_.size()) {
    return OutOfRange("no such row group");
  }
  const RowGroupMeta& meta = groups_[group];
  // Resolve the projection.
  std::vector<size_t> indices;
  if (columns.empty()) {
    for (size_t i = 0; i < schema_.size(); ++i) {
      indices.push_back(i);
    }
  } else {
    for (const std::string& name : columns) {
      bool found = false;
      for (size_t i = 0; i < schema_.size(); ++i) {
        if (schema_[i].name == name) {
          indices.push_back(i);
          found = true;
          break;
        }
      }
      if (!found) {
        return NotFound("no column named " + name);
      }
    }
  }
  Schema projected;
  std::vector<ColumnData> data;
  for (size_t i : indices) {
    projected.push_back(schema_[i]);
    ASSIGN_OR_RETURN(ColumnData column,
                     DecodeChunk(meta.chunks[i], schema_[i].type, meta.rows));
    data.push_back(std::move(column));
  }
  return RecordBatch::Make(std::move(projected), std::move(data));
}

Result<RecordBatch> ParquetReader::ScanInt64Filter(const std::string& filter_column, int64_t lo,
                                                   int64_t hi,
                                                   const std::vector<std::string>& projection) {
  auto filter_field = FieldIndex(filter_column);
  if (!filter_field.ok() || schema_[*filter_field].type != ColumnType::kInt64) {
    return InvalidArgument("filter column must be an int64 column");
  }
  const size_t filter_idx = *filter_field;
  std::vector<std::string> needed = projection;
  if (std::find(needed.begin(), needed.end(), filter_column) == needed.end()) {
    needed.push_back(filter_column);
  }
  std::vector<RecordBatch> parts;
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (ZoneMapExcludes(groups_[g].chunks[filter_idx], lo, hi)) {
      ++groups_skipped_;
      continue;
    }
    ASSIGN_OR_RETURN(RecordBatch batch, ReadRowGroup(g, needed));
    ASSIGN_OR_RETURN(size_t col, batch.ColumnIndex(filter_column));
    const auto& values = batch.Int64Column(col);
    std::vector<uint32_t> selected;
    for (uint32_t r = 0; r < values.size(); ++r) {
      if (values[r] >= lo && values[r] <= hi) {
        selected.push_back(r);
      }
    }
    parts.push_back(batch.Take(selected));
  }
  // Concatenate the parts.
  if (parts.empty()) {
    // Empty result with the projected schema.
    Schema projected;
    std::vector<ColumnData> empty;
    for (const std::string& name : needed) {
      for (const Field& f : schema_) {
        if (f.name == name) {
          projected.push_back(f);
          switch (f.type) {
            case ColumnType::kInt64:
              empty.emplace_back(std::vector<int64_t>{});
              break;
            case ColumnType::kFloat64:
              empty.emplace_back(std::vector<double>{});
              break;
            case ColumnType::kString:
              empty.emplace_back(std::vector<std::string>{});
              break;
          }
        }
      }
    }
    return RecordBatch::Make(std::move(projected), std::move(empty));
  }
  Schema schema = parts[0].schema();
  std::vector<ColumnData> merged;
  for (size_t c = 0; c < schema.size(); ++c) {
    ColumnData column = parts[0].column(c);
    for (size_t p = 1; p < parts.size(); ++p) {
      std::visit(
          [&](auto& dst) {
            const auto& src = std::get<std::decay_t<decltype(dst)>>(parts[p].column(c));
            dst.insert(dst.end(), src.begin(), src.end());
          },
          column);
    }
    merged.push_back(std::move(column));
  }
  return RecordBatch::Make(std::move(schema), std::move(merged));
}

}  // namespace hyperion::format
