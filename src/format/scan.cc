#include "src/format/scan.h"

#include <algorithm>
#include <map>

namespace hyperion::format {

Result<Int64Aggregates> AggregateInt64(const RecordBatch& batch, const std::string& column) {
  ASSIGN_OR_RETURN(size_t idx, batch.ColumnIndex(column));
  if (batch.schema()[idx].type != ColumnType::kInt64) {
    return InvalidArgument("not an int64 column");
  }
  const auto& values = batch.Int64Column(idx);
  Int64Aggregates agg;
  if (values.empty()) {
    return agg;
  }
  agg.count = values.size();
  agg.min = values[0];
  agg.max = values[0];
  for (int64_t v : values) {
    agg.sum = WrapAddInt64(agg.sum, v);
    agg.min = std::min(agg.min, v);
    agg.max = std::max(agg.max, v);
  }
  return agg;
}

Result<double> SumFloat64(const RecordBatch& batch, const std::string& column) {
  ASSIGN_OR_RETURN(size_t idx, batch.ColumnIndex(column));
  if (batch.schema()[idx].type != ColumnType::kFloat64) {
    return InvalidArgument("not a float64 column");
  }
  double sum = 0;
  for (double v : batch.Float64Column(idx)) {
    sum += v;
  }
  return sum;
}

Result<RecordBatch> FilterInt64(const RecordBatch& batch, const std::string& column, int64_t lo,
                                int64_t hi) {
  ASSIGN_OR_RETURN(size_t idx, batch.ColumnIndex(column));
  if (batch.schema()[idx].type != ColumnType::kInt64) {
    return InvalidArgument("not an int64 column");
  }
  const auto& values = batch.Int64Column(idx);
  std::vector<uint32_t> selected;
  for (uint32_t r = 0; r < values.size(); ++r) {
    if (values[r] >= lo && values[r] <= hi) {
      selected.push_back(r);
    }
  }
  return batch.Take(selected);
}

Result<std::vector<std::pair<std::string, int64_t>>> GroupedSum(const RecordBatch& batch,
                                                                const std::string& group_col,
                                                                const std::string& value_col) {
  ASSIGN_OR_RETURN(size_t gidx, batch.ColumnIndex(group_col));
  ASSIGN_OR_RETURN(size_t vidx, batch.ColumnIndex(value_col));
  if (batch.schema()[gidx].type != ColumnType::kString ||
      batch.schema()[vidx].type != ColumnType::kInt64) {
    return InvalidArgument("GroupedSum needs (string, int64) columns");
  }
  const auto& groups = batch.StringColumn(gidx);
  const auto& values = batch.Int64Column(vidx);
  std::map<std::string, int64_t> sums;
  for (size_t r = 0; r < groups.size(); ++r) {
    int64_t& sum = sums[groups[r]];
    sum = WrapAddInt64(sum, values[r]);
  }
  return std::vector<std::pair<std::string, int64_t>>(sums.begin(), sums.end());
}

}  // namespace hyperion::format
