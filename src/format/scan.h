// Vectorized scan kernels over RecordBatches — the compute Hyperion's
// eHDL accelerator slots run against Parquet/Arrow data (paper §2.3's
// "end-to-end Parquet/Arrow object access pipeline").

#ifndef HYPERION_SRC_FORMAT_SCAN_H_
#define HYPERION_SRC_FORMAT_SCAN_H_

#include <cstdint>
#include <string>

#include "src/common/result.h"
#include "src/format/arrow.h"

namespace hyperion::format {

// a + b modulo 2^64 (two's-complement wrap) — what a 64-bit hardware
// accumulator does. Shared by every sum path so overflow is defined
// behaviour everywhere arbitrary table data flows.
inline int64_t WrapAddInt64(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) + static_cast<uint64_t>(b));
}

struct Int64Aggregates {
  uint64_t count = 0;
  int64_t sum = 0;  // modulo 2^64 (two's-complement wrap), like the hardware
  int64_t min = 0;
  int64_t max = 0;

  bool operator==(const Int64Aggregates&) const = default;
};

// count/sum/min/max of an int64 column. An empty column yields the
// all-zero aggregate (count == 0 is the "no rows" discriminant). Sums wrap
// modulo 2^64 — never UB, pinned by tests at INT64_MAX/INT64_MIN.
Result<Int64Aggregates> AggregateInt64(const RecordBatch& batch, const std::string& column);

// Sum of a float64 column.
Result<double> SumFloat64(const RecordBatch& batch, const std::string& column);

// Rows where `column` (int64) lies in [lo, hi].
Result<RecordBatch> FilterInt64(const RecordBatch& batch, const std::string& column, int64_t lo,
                                int64_t hi);

// SELECT group_col, SUM(value_col): grouped sum over a string column.
Result<std::vector<std::pair<std::string, int64_t>>> GroupedSum(const RecordBatch& batch,
                                                                const std::string& group_col,
                                                                const std::string& value_col);

}  // namespace hyperion::format

#endif  // HYPERION_SRC_FORMAT_SCAN_H_
