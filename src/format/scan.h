// Vectorized scan kernels over RecordBatches — the compute Hyperion's
// eHDL accelerator slots run against Parquet/Arrow data (paper §2.3's
// "end-to-end Parquet/Arrow object access pipeline").

#ifndef HYPERION_SRC_FORMAT_SCAN_H_
#define HYPERION_SRC_FORMAT_SCAN_H_

#include <cstdint>
#include <string>

#include "src/common/result.h"
#include "src/format/arrow.h"

namespace hyperion::format {

struct Int64Aggregates {
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
};

// count/sum/min/max of an int64 column.
Result<Int64Aggregates> AggregateInt64(const RecordBatch& batch, const std::string& column);

// Sum of a float64 column.
Result<double> SumFloat64(const RecordBatch& batch, const std::string& column);

// Rows where `column` (int64) lies in [lo, hi].
Result<RecordBatch> FilterInt64(const RecordBatch& batch, const std::string& column, int64_t lo,
                                int64_t hi);

// SELECT group_col, SUM(value_col): grouped sum over a string column.
Result<std::vector<std::pair<std::string, int64_t>>> GroupedSum(const RecordBatch& batch,
                                                                const std::string& group_col,
                                                                const std::string& value_col);

}  // namespace hyperion::format

#endif  // HYPERION_SRC_FORMAT_SCAN_H_
