#include "src/net/transport.h"

#include <algorithm>

#include "src/common/check.h"

namespace hyperion::net {

std::string_view TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kUdp:
      return "udp";
    case TransportKind::kTcp:
      return "tcp";
    case TransportKind::kRdma:
      return "rdma";
    case TransportKind::kHoma:
      return "homa";
  }
  return "?";
}

uint32_t HeaderBytes(TransportKind kind) {
  switch (kind) {
    case TransportKind::kUdp:
      return 42;  // eth + ipv4 + udp
    case TransportKind::kTcp:
      return 54;  // eth + ipv4 + tcp
    case TransportKind::kRdma:
      return 58;  // eth + ip + udp + ib bth (RoCEv2)
    case TransportKind::kHoma:
      return 60;  // eth + ipv4 + homa data header
  }
  return 0;
}

namespace {

class UdpTransport : public Transport {
 public:
  UdpTransport(Fabric* fabric, Rng* rng, TransportParams params) : Transport(fabric, rng, params) {}
  TransportKind kind() const override { return TransportKind::kUdp; }

  Result<sim::Duration> Send(HostId src, HostId dst, uint64_t bytes) override {
    fabric_->engine()->Advance(params_.sender_sw_overhead);
    if (rng_->Bernoulli(params_.loss_probability) || InjectFault(sim::FaultSite::kNetLoss)) {
      // The datagram evaporates; the sender has already paid its software
      // cost. UDP gives no feedback, so the model surfaces loss directly.
      fabric_->Deliver(src, dst, 0).status();  // still occupies the wire path
      return Unavailable("datagram lost");
    }
    if (InjectFault(sim::FaultSite::kNetCorrupt)) {
      // Delivered, but the receiver's checksum rejects it: the full wire
      // cost is paid and the payload is discarded.
      RETURN_IF_ERROR(fabric_->Deliver(src, dst, bytes + HeaderBytes(kind())).status());
      return Unavailable("datagram corrupted");
    }
    ASSIGN_OR_RETURN(sim::Duration wire,
                     fabric_->Deliver(src, dst, bytes + HeaderBytes(kind())));
    fabric_->engine()->Advance(params_.receiver_sw_overhead);
    return wire + params_.sender_sw_overhead + params_.receiver_sw_overhead;
  }

  Result<sim::Duration> RoundTrip(HostId src, HostId dst, uint64_t request_bytes,
                                  uint64_t response_bytes) override {
    // Application-level retry on a 1 ms timer, the standard pattern over UDP.
    constexpr sim::Duration kRetryTimeout = 1 * sim::kMillisecond;
    constexpr int kMaxAttempts = 16;
    sim::Duration total = 0;
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Result<sim::Duration> fwd = Send(src, dst, request_bytes);
      if (fwd.ok()) {
        Result<sim::Duration> rev = Send(dst, src, response_bytes);
        if (rev.ok()) {
          return total + *fwd + *rev;
        }
      }
      fabric_->engine()->Advance(kRetryTimeout);
      total += kRetryTimeout;
    }
    return DeadlineExceeded("udp round trip exhausted retries");
  }
};

class TcpTransport : public Transport {
 public:
  TcpTransport(Fabric* fabric, Rng* rng, TransportParams params) : Transport(fabric, rng, params) {}
  TransportKind kind() const override { return TransportKind::kTcp; }

  Result<sim::Duration> Send(HostId src, HostId dst, uint64_t bytes) override {
    sim::Duration total = params_.sender_sw_overhead + params_.receiver_sw_overhead;
    fabric_->engine()->Advance(params_.sender_sw_overhead);
    // Reliable delivery: retransmit on loss after an RTO. Fast-retransmit
    // keeps the penalty near one RTT for the common case.
    ASSIGN_OR_RETURN(sim::Duration rtt, fabric_->Rtt(src, dst));
    const sim::Duration rto = std::max<sim::Duration>(3 * rtt, 200 * sim::kMicrosecond);
    for (int attempt = 0; attempt < 64; ++attempt) {
      // Injected wire loss and checksum corruption both cost a
      // retransmission round — TCP absorbs them identically.
      const bool delivered = !rng_->Bernoulli(params_.loss_probability) &&
                             !InjectFault(sim::FaultSite::kNetLoss) &&
                             !InjectFault(sim::FaultSite::kNetCorrupt);
      if (delivered) {
        ASSIGN_OR_RETURN(sim::Duration wire,
                         fabric_->Deliver(src, dst, bytes + HeaderBytes(kind())));
        // Delayed-ACK-free model: the ACK rides back immediately.
        ASSIGN_OR_RETURN(sim::Duration ack, fabric_->Deliver(dst, src, HeaderBytes(kind())));
        fabric_->engine()->Advance(params_.receiver_sw_overhead);
        return total + wire + ack;
      }
      fabric_->engine()->Advance(rto);
      total += rto;
    }
    return DeadlineExceeded("tcp retransmission limit");
  }

  Result<sim::Duration> RoundTrip(HostId src, HostId dst, uint64_t request_bytes,
                                  uint64_t response_bytes) override {
    ASSIGN_OR_RETURN(sim::Duration fwd, Send(src, dst, request_bytes));
    ASSIGN_OR_RETURN(sim::Duration rev, Send(dst, src, response_bytes));
    return fwd + rev;
  }
};

class RdmaTransport : public Transport {
 public:
  RdmaTransport(Fabric* fabric, Rng* rng, TransportParams params)
      : Transport(fabric, rng, params) {
    // RoCE assumes PFC-lossless fabric; configuring loss is a setup bug.
    CHECK_EQ(params_.loss_probability, 0.0) << "RDMA transport requires a lossless fabric";
  }
  TransportKind kind() const override { return TransportKind::kRdma; }

  Result<sim::Duration> Send(HostId src, HostId dst, uint64_t bytes) override {
    // Kernel-bypass: software overhead is whatever the caller configured
    // (typically ~0 for hardware verbs).
    fabric_->engine()->Advance(params_.sender_sw_overhead);
    ASSIGN_OR_RETURN(sim::Duration wire,
                     fabric_->Deliver(src, dst, bytes + HeaderBytes(kind())));
    fabric_->engine()->Advance(params_.receiver_sw_overhead);
    return wire + params_.sender_sw_overhead + params_.receiver_sw_overhead;
  }

  Result<sim::Duration> RoundTrip(HostId src, HostId dst, uint64_t request_bytes,
                                  uint64_t response_bytes) override {
    // One-sided READ: request carries no payload; data returns in one go.
    ASSIGN_OR_RETURN(sim::Duration fwd, Send(src, dst, request_bytes));
    ASSIGN_OR_RETURN(sim::Duration rev, Send(dst, src, response_bytes));
    return fwd + rev;
  }
};

class HomaTransport : public Transport {
 public:
  HomaTransport(Fabric* fabric, Rng* rng, TransportParams params) : Transport(fabric, rng, params) {}
  TransportKind kind() const override { return TransportKind::kHoma; }

  Result<sim::Duration> Send(HostId src, HostId dst, uint64_t bytes) override {
    const sim::Duration sw = params_.sender_sw_overhead + params_.receiver_sw_overhead;
    fabric_->engine()->Advance(sw);
    ASSIGN_OR_RETURN(sim::Duration wire,
                     fabric_->Deliver(src, dst, bytes + HeaderBytes(kind())));
    sim::Duration grant_cost = 0;
    if (bytes > params_.homa_unscheduled_bytes) {
      // Bytes beyond the unscheduled window wait one RTT for the first grant;
      // grants then pipeline with the data.
      ASSIGN_OR_RETURN(sim::Duration rtt, fabric_->Rtt(src, dst));
      grant_cost = rtt;
    }
    // SRPT priority queues: short messages bypass queue buildup, long ones
    // absorb it. The M/G/1-flavoured term grows as load -> 1.
    sim::Duration queueing = 0;
    if (params_.homa_load > 0.0) {
      const double rho = std::min(params_.homa_load, 0.95);
      const double size_rank = bytes <= params_.homa_unscheduled_bytes ? 0.1 : 1.0;
      queueing = static_cast<sim::Duration>(rho / (1.0 - rho) * size_rank *
                                            static_cast<double>(5 * sim::kMicrosecond));
    }
    fabric_->engine()->Advance(grant_cost + queueing);
    return wire + sw + grant_cost + queueing;
  }

  Result<sim::Duration> RoundTrip(HostId src, HostId dst, uint64_t request_bytes,
                                  uint64_t response_bytes) override {
    ASSIGN_OR_RETURN(sim::Duration fwd, Send(src, dst, request_bytes));
    ASSIGN_OR_RETURN(sim::Duration rev, Send(dst, src, response_bytes));
    return fwd + rev;
  }
};

}  // namespace

std::unique_ptr<Transport> MakeTransport(TransportKind kind, Fabric* fabric, Rng* rng,
                                         TransportParams params) {
  switch (kind) {
    case TransportKind::kUdp:
      return std::make_unique<UdpTransport>(fabric, rng, params);
    case TransportKind::kTcp:
      return std::make_unique<TcpTransport>(fabric, rng, params);
    case TransportKind::kRdma:
      return std::make_unique<RdmaTransport>(fabric, rng, params);
    case TransportKind::kHoma:
      return std::make_unique<HomaTransport>(fabric, rng, params);
  }
  return nullptr;
}

}  // namespace hyperion::net
