// Data-center network fabric model.
//
// Hosts (servers, clients, Hyperion DPUs) attach to a single-tier switch
// fabric by links of configurable bandwidth — the blueprint gives the DPU
// 2x100 GbE QSFP ports. Latency for a message is:
//
//   NIC/port processing (both ends) + switch forwarding + propagation
//   + serialization on the slower of the two attachment links
//
// calibrated to intra-rack numbers (a few microseconds RTT for small
// messages on 100 GbE). The pointer-chasing experiment (E5) is, at heart, a
// multiplication of this number by the number of dependent round trips, so
// the model keeps it explicit and sweepable.

#ifndef HYPERION_SRC_NET_FABRIC_H_
#define HYPERION_SRC_NET_FABRIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/result.h"
#include "src/sim/engine.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace hyperion::net {

using HostId = uint32_t;

struct FabricParams {
  sim::Duration port_latency = 300;       // NIC MAC/PHY processing, each end
  sim::Duration switch_latency = 400;     // cut-through forwarding
  sim::Duration propagation = 250;        // ~50 m of fiber, one way
  double default_link_gbps = 100.0;
};

// One-way latency for `bytes` between two hosts attached by links of the
// given speeds: pure arithmetic over the parameters, usable from any thread
// and without a Fabric instance (the sharded cluster simulation computes
// cross-shard message latencies with it). Fabric::OneWayLatency delegates
// here, so both agree byte-for-byte.
constexpr sim::Duration OneWayLatencyModel(const FabricParams& params, double src_gbps,
                                           double dst_gbps, uint64_t bytes) {
  const double gbps = src_gbps < dst_gbps ? src_gbps : dst_gbps;
  return 2 * params.port_latency + params.switch_latency + 2 * params.propagation +
         sim::TransferTime(bytes, gbps);
}

// Lower bound of any cross-host message's latency under `params`: the
// zero-byte fixed path cost. This is the conservative lookahead the
// parallel simulation layer uses for its epoch windows.
constexpr sim::Duration MinOneWayLatency(const FabricParams& params) {
  return 2 * params.port_latency + params.switch_latency + 2 * params.propagation;
}

class Fabric {
 public:
  explicit Fabric(sim::Engine* engine, FabricParams params = FabricParams())
      : engine_(engine), params_(params) {}

  HostId AddHost(std::string name, double link_gbps);
  HostId AddHost(std::string name) { return AddHost(std::move(name), params_.default_link_gbps); }

  size_t HostCount() const { return hosts_.size(); }
  const std::string& HostName(HostId id) const;

  // One-way latency for `bytes` from src to dst (pure model, no clock).
  Result<sim::Duration> OneWayLatency(HostId src, HostId dst, uint64_t bytes) const;

  // Small-message round-trip time between two hosts.
  Result<sim::Duration> Rtt(HostId a, HostId b) const;

  // Accounts a message on the clock and counters; returns its latency.
  Result<sim::Duration> Deliver(HostId src, HostId dst, uint64_t bytes);

  // Accounts a scatter-gather frame (net_frames / net_frame_segments). The
  // frame's bytes are charged by the transport via Send; the chain itself
  // crosses the fabric as shared slices, never flattened.
  void NoteFrame(const BufferChain& frame) {
    counters_.Increment("net_frames");
    counters_.Add("net_frame_segments", frame.segment_count());
  }

  const FabricParams& params() const { return params_; }
  const sim::Counters& counters() const { return counters_; }
  sim::Engine* engine() { return engine_; }

 private:
  struct Host {
    std::string name;
    double link_gbps;
  };

  sim::Engine* engine_;
  FabricParams params_;
  std::vector<Host> hosts_;
  sim::Counters counters_;
};

}  // namespace hyperion::net

#endif  // HYPERION_SRC_NET_FABRIC_H_
