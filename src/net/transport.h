// Application-defined network transports (paper §2: "an application-defined
// network transport (TCP, UDP, RDMA, HOMA)").
//
// Hyperion's point is that the transport is *part of the offloaded
// pipeline*: a workload picks the semantics it needs and the fabric
// specializes for it. The four transports here share a Fabric but differ in
// per-message software/protocol costs, reliability behaviour under loss,
// and (for Homa) message-size-dependent scheduling:
//
//   Udp  — fire-and-forget datagrams; loss surfaces to the caller.
//   Tcp  — reliable byte stream; pays header+ACK costs and retransmission
//          timeouts under loss.
//   Rdma — one-sided verbs; near-zero software overhead, requires a
//          lossless fabric (loss injection is a CHECK-fail by design).
//   Homa — receiver-driven, SRPT-favouring; short messages dodge the
//          queueing that builds at high load.

#ifndef HYPERION_SRC_NET_TRANSPORT_H_
#define HYPERION_SRC_NET_TRANSPORT_H_

#include <memory>
#include <string_view>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/net/fabric.h"
#include "src/obs/trace.h"
#include "src/sim/fault.h"

namespace hyperion::net {

enum class TransportKind { kUdp, kTcp, kRdma, kHoma };

std::string_view TransportKindName(TransportKind kind);

struct TransportParams {
  double loss_probability = 0.0;  // per one-way message
  // Software cost charged per message at each end (protocol processing).
  // Hardware-offloaded transports on the DPU set these near zero; a host
  // kernel stack pays microseconds.
  sim::Duration sender_sw_overhead = 0;
  sim::Duration receiver_sw_overhead = 0;
  // Homa only: fabric load in [0, 1) driving queueing at the receiver's
  // downlink, and the unscheduled window.
  double homa_load = 0.0;
  uint64_t homa_unscheduled_bytes = 64 * 1024;
  // Optional deterministic fault source (see sim/fault.h), additional to
  // the probabilistic loss_probability model. kNetLoss drops a message on
  // the wire; kNetCorrupt delivers it but fails the receiver's checksum.
  // Applies to UDP (surfaces to the caller) and TCP (absorbed by
  // retransmission). RDMA is lossless by contract and Homa's reliability
  // is receiver-driven; neither consults the injector.
  sim::FaultInjector* fault_injector = nullptr;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportKind kind() const = 0;
  std::string_view Name() const { return TransportKindName(kind()); }

  // One-way message; advances the clock by the modelled latency. Unreliable
  // transports return kUnavailable when the message is lost (clock still
  // advances to the loss-detection point, which for UDP is immediate at the
  // sender model boundary).
  virtual Result<sim::Duration> Send(HostId src, HostId dst, uint64_t bytes) = 0;

  // Scatter-gather send: the frame travels as shared Buffer slices and is
  // never flattened here — the cost charged is exactly Send() of the chain's
  // total byte count, so the latency model is independent of segmentation.
  Result<sim::Duration> SendFrame(HostId src, HostId dst, const BufferChain& frame) {
    fabric_->NoteFrame(frame);
    obs::ScopedSpan span(tracer_, engine(), obs::Subsystem::kNet, "net.send");
    return Send(src, dst, frame.size());
  }

  // Coalesced send (PR 5): N frames ride one wire message, so the header
  // and the per-message software overhead at each end are charged once and
  // amortized across the batch — the transport-level analogue of NVMe
  // doorbell coalescing. An empty batch is free.
  Result<sim::Duration> SendFrameBatch(HostId src, HostId dst,
                                       const std::vector<BufferChain>& frames) {
    if (frames.empty()) {
      return sim::Duration{0};
    }
    uint64_t total = 0;
    for (const auto& frame : frames) {
      fabric_->NoteFrame(frame);
      total += frame.size();
    }
    obs::ScopedSpan span(tracer_, engine(), obs::Subsystem::kNet, "net.send_batch");
    return Send(src, dst, total);
  }

  // Attaches a tracer (null detaches): SendFrame emits a net.send span
  // covering the modelled wire + software time of each frame.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Request/response exchange; reliable transports retry internally.
  virtual Result<sim::Duration> RoundTrip(HostId src, HostId dst, uint64_t request_bytes,
                                          uint64_t response_bytes) = 0;

  // The shared virtual clock this transport charges (for callers layering
  // their own timers/backoff on top, e.g. the RPC retry loop).
  sim::Engine* engine() { return fabric_->engine(); }

 protected:
  Transport(Fabric* fabric, Rng* rng, TransportParams params)
      : fabric_(fabric), rng_(rng), params_(params) {}

  // True when the configured plan injects a fault at `site`; false (and
  // free) without an injector.
  bool InjectFault(sim::FaultSite site) {
    return params_.fault_injector != nullptr && params_.fault_injector->ShouldInject(site);
  }

  Fabric* fabric_;
  Rng* rng_;
  TransportParams params_;
  obs::Tracer* tracer_ = nullptr;
};

std::unique_ptr<Transport> MakeTransport(TransportKind kind, Fabric* fabric, Rng* rng,
                                         TransportParams params = TransportParams());

// Per-message wire overhead (headers) by transport kind, bytes.
uint32_t HeaderBytes(TransportKind kind);

}  // namespace hyperion::net

#endif  // HYPERION_SRC_NET_TRANSPORT_H_
