#include "src/net/fabric.h"

#include <algorithm>

#include "src/common/check.h"

namespace hyperion::net {

HostId Fabric::AddHost(std::string name, double link_gbps) {
  CHECK_GT(link_gbps, 0.0);
  hosts_.push_back(Host{std::move(name), link_gbps});
  return static_cast<HostId>(hosts_.size() - 1);
}

const std::string& Fabric::HostName(HostId id) const {
  CHECK_LT(id, hosts_.size());
  return hosts_[id].name;
}

Result<sim::Duration> Fabric::OneWayLatency(HostId src, HostId dst, uint64_t bytes) const {
  if (src >= hosts_.size() || dst >= hosts_.size()) {
    return InvalidArgument("unknown host");
  }
  if (src == dst) {
    return sim::Duration{0};  // loopback is free in the model
  }
  return OneWayLatencyModel(params_, hosts_[src].link_gbps, hosts_[dst].link_gbps, bytes);
}

Result<sim::Duration> Fabric::Rtt(HostId a, HostId b) const {
  // Minimal 64-byte frames in both directions.
  ASSIGN_OR_RETURN(sim::Duration fwd, OneWayLatency(a, b, 64));
  ASSIGN_OR_RETURN(sim::Duration rev, OneWayLatency(b, a, 64));
  return fwd + rev;
}

Result<sim::Duration> Fabric::Deliver(HostId src, HostId dst, uint64_t bytes) {
  ASSIGN_OR_RETURN(sim::Duration latency, OneWayLatency(src, dst, bytes));
  engine_->Advance(latency);
  counters_.Add("net_messages", 1);
  counters_.Add("net_bytes", bytes);
  return latency;
}

}  // namespace hyperion::net
