// CPU-centric storage server: the end-to-end baseline Hyperion replaces.
//
// Composes the host cost model, a host PCIe topology (NIC, NVMe, DRAM
// behind the host root complex), and an NVMe controller into the classic
// kernel-mediated pipeline:
//
//   NIC DMA -> DRAM -> IRQ -> net stack -> syscall+copy to userspace ->
//   application -> syscall+copy -> block stack -> DMA -> NVMe
//
// Also provides the time-shared multi-tenant scheduler used as the
// predictability baseline in experiment E7 (contrast: spatially partitioned
// FPGA slots never queue behind a neighbour).

#ifndef HYPERION_SRC_BASELINE_SERVER_H_
#define HYPERION_SRC_BASELINE_SERVER_H_

#include <cstdint>
#include <vector>

#include "src/baseline/host.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/nvme/controller.h"
#include "src/pcie/dma.h"
#include "src/pcie/topology.h"
#include "src/sim/engine.h"
#include "src/sim/stats.h"

namespace hyperion::baseline {

class CpuServer {
 public:
  CpuServer(sim::Engine* engine, HostCostParams params = HostCostParams());

  // Ingest `bytes` from the wire into durable storage (full kernel path).
  // Returns the end-to-end host-side latency (excluding network flight).
  Result<sim::Duration> IngestToStorage(uint64_t bytes);

  // Serve `bytes` from storage out to the wire.
  Result<sim::Duration> ServeFromStorage(uint64_t bytes);

  // Application-level KV op (userspace index + storage access).
  Result<sim::Duration> KvOperation(bool is_write, uint64_t value_bytes);

  HostCpu& cpu() { return cpu_; }
  nvme::Controller& nvme() { return nvme_; }
  const pcie::DmaEngine& dma() const { return dma_; }

 private:
  sim::Engine* engine_;
  HostCpu cpu_;
  pcie::Topology topology_;
  pcie::NodeId root_;
  pcie::NodeId nic_;
  pcie::NodeId ssd_;
  pcie::NodeId dram_;
  pcie::DmaEngine dma_;
  nvme::Controller nvme_;
  uint32_t nsid_;
  uint64_t next_lba_ = 0;
};

// FCFS time-sharing of one core pool among tenants, with context-switch
// costs — the CPU's answer to multi-tenancy.
class TimeSharedScheduler {
 public:
  TimeSharedScheduler(uint32_t cores, sim::Duration context_switch)
      : cores_(cores), context_switch_(context_switch), core_free_at_(cores, 0) {}

  // Offers a request arriving at `arrival` needing `service` of CPU time;
  // returns its completion latency (queueing + switch + service).
  sim::Duration Submit(sim::SimTime arrival, sim::Duration service);

  const sim::Histogram& latencies() const { return latency_hist_; }

 private:
  uint32_t cores_;
  sim::Duration context_switch_;
  std::vector<sim::SimTime> core_free_at_;
  sim::Histogram latency_hist_;
};

}  // namespace hyperion::baseline

#endif  // HYPERION_SRC_BASELINE_SERVER_H_
