#include "src/baseline/scan.h"

#include <algorithm>
#include <utility>

namespace hyperion::baseline {

Result<format::ScanResult> HostScanPath::Execute(const format::NvmeParquetFile& table,
                                                 const format::ScanQuery& query) {
  const sim::SimTime start = engine_->Now();
  const uint64_t device_before = table.device_bytes_moved();
  const uint64_t file_size = table.file_size();

  // open(2).
  cpu_.Syscall();

  // The block stack streams the whole file device->page-cache in
  // readahead-sized I/Os: syscall + VFS/blk-mq + completion IRQ per I/O.
  Bytes file;
  file.reserve(file_size);
  for (uint64_t off = 0; off < file_size; off += params_.io_bytes) {
    const uint64_t len = std::min<uint64_t>(params_.io_bytes, file_size - off);
    cpu_.Syscall();
    cpu_.BlockStackIo();
    ASSIGN_OR_RETURN(Bytes piece, table.ReadDevice(off, len));
    cpu_.Interrupt();
    file.insert(file.end(), piece.begin(), piece.end());
  }

  // One kernel->user crossing of the whole file — the host bounce the
  // CPU-free path never pays.
  cpu_.Copy(file_size);

  ASSIGN_OR_RETURN(format::ParquetReader reader,
                   format::ParquetReader::OpenBuffer(std::move(file)));

  format::ScanResult result;
  const format::ScanChargeFn charge = [this](uint64_t bytes, uint64_t rows) -> Status {
    cpu_.Compute(static_cast<uint64_t>(static_cast<double>(bytes) *
                                       params_.decode_cycles_per_byte) +
                 rows * params_.per_row_cycles);
    return Status::Ok();
  };
  ASSIGN_OR_RETURN(result.output, format::EvaluateScanQuery(reader, query, charge,
                                                            &result.stats));
  result.stats.device_bytes_moved = table.device_bytes_moved() - device_before;
  result.stats.host_bytes_copied = file_size;
  result.stats.reconfigured = false;
  result.stats.reconfig_ns = 0;
  result.stats.exec_ns = static_cast<uint64_t>(engine_->Now() - start);
  return result;
}

}  // namespace hyperion::baseline
