#include "src/baseline/server.h"

#include <algorithm>

#include "src/common/check.h"

namespace hyperion::baseline {

CpuServer::CpuServer(sim::Engine* engine, HostCostParams params)
    : engine_(engine),
      cpu_(engine, params),
      dma_(engine, &topology_),
      nvme_(engine) {
  root_ = topology_.AddRootComplex("host_rc");
  dram_ = topology_.AddEndpoint("dram", root_, {5, 16});  // memory-bus stand-in
  nic_ = topology_.AddEndpoint("nic", root_, {4, 8});
  ssd_ = topology_.AddEndpoint("nvme", root_, {3, 4});
  nsid_ = nvme_.AddNamespace(1u << 20);  // 4 GiB namespace
}

Result<sim::Duration> CpuServer::IngestToStorage(uint64_t bytes) {
  const sim::SimTime start = engine_->Now();
  // NIC DMA into kernel DRAM buffers, then the interrupt + stack.
  RETURN_IF_ERROR(dma_.Transfer(nic_, dram_, bytes).status());
  cpu_.Interrupt();
  const uint64_t packets = std::max<uint64_t>(1, bytes / 1460);
  for (uint64_t p = 0; p < packets; ++p) {
    cpu_.NetStackPacket();
  }
  // Userspace read(): syscall + copy out of the kernel.
  cpu_.Syscall();
  cpu_.Copy(bytes);
  // Userspace write(): syscall + copy back in + block stack per 128 KiB IO.
  cpu_.Syscall();
  cpu_.Copy(bytes);
  const uint64_t ios = std::max<uint64_t>(1, bytes / (128 * 1024));
  for (uint64_t i = 0; i < ios; ++i) {
    cpu_.BlockStackIo();
  }
  // DMA to the device and the NVMe program itself.
  RETURN_IF_ERROR(dma_.Transfer(dram_, ssd_, bytes).status());
  const uint64_t lbas = std::max<uint64_t>(1, (bytes + nvme::kLbaSize - 1) / nvme::kLbaSize);
  Bytes payload(lbas * nvme::kLbaSize, 0);
  RETURN_IF_ERROR(nvme_.Write(nsid_, next_lba_, ByteSpan(payload.data(), payload.size())));
  next_lba_ = (next_lba_ + lbas) % (1u << 19);
  cpu_.Interrupt();  // completion interrupt
  return engine_->Now() - start;
}

Result<sim::Duration> CpuServer::ServeFromStorage(uint64_t bytes) {
  const sim::SimTime start = engine_->Now();
  cpu_.Syscall();
  cpu_.PageCacheLookup();
  const uint64_t ios = std::max<uint64_t>(1, bytes / (128 * 1024));
  for (uint64_t i = 0; i < ios; ++i) {
    cpu_.BlockStackIo();
  }
  const uint64_t lbas = std::max<uint64_t>(1, (bytes + nvme::kLbaSize - 1) / nvme::kLbaSize);
  RETURN_IF_ERROR(nvme_.Read(nsid_, 0, static_cast<uint32_t>(lbas)).status());
  RETURN_IF_ERROR(dma_.Transfer(ssd_, dram_, bytes).status());
  cpu_.Interrupt();
  cpu_.Copy(bytes);  // kernel -> user
  cpu_.Syscall();    // send()
  cpu_.Copy(bytes);  // user -> kernel socket buffer
  const uint64_t packets = std::max<uint64_t>(1, bytes / 1460);
  for (uint64_t p = 0; p < packets; ++p) {
    cpu_.NetStackPacket();
  }
  RETURN_IF_ERROR(dma_.Transfer(dram_, nic_, bytes).status());
  return engine_->Now() - start;
}

Result<sim::Duration> CpuServer::KvOperation(bool is_write, uint64_t value_bytes) {
  const sim::SimTime start = engine_->Now();
  cpu_.Interrupt();
  cpu_.NetStackPacket();
  cpu_.Syscall();
  cpu_.Copy(value_bytes + 64);
  cpu_.Compute(4000);  // index probe/update in userspace
  const uint64_t lbas = std::max<uint64_t>(1, (value_bytes + nvme::kLbaSize - 1) / nvme::kLbaSize);
  cpu_.BlockStackIo();
  if (is_write) {
    Bytes payload(lbas * nvme::kLbaSize, 0);
    RETURN_IF_ERROR(nvme_.Write(nsid_, next_lba_, ByteSpan(payload.data(), payload.size())));
    next_lba_ = (next_lba_ + lbas) % (1u << 19);
  } else {
    RETURN_IF_ERROR(nvme_.Read(nsid_, 0, static_cast<uint32_t>(lbas)).status());
  }
  cpu_.Syscall();
  cpu_.Copy(value_bytes + 64);
  cpu_.NetStackPacket();
  return engine_->Now() - start;
}

sim::Duration TimeSharedScheduler::Submit(sim::SimTime arrival, sim::Duration service) {
  // Pick the earliest-free core.
  auto it = std::min_element(core_free_at_.begin(), core_free_at_.end());
  const sim::SimTime start = std::max(arrival, *it);
  const sim::SimTime done = start + context_switch_ + service;
  *it = done;
  const sim::Duration latency = done - arrival;
  latency_hist_.Record(latency);
  return latency;
}

}  // namespace hyperion::baseline
