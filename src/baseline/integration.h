// Table 1 reproduction (experiment E1): the pairwise accelerator
// integration patterns of the state of the art, priced end to end.
//
// The paper's Table 1 is qualitative: every prior system integrates at most
// two of {network, storage, compute} and leaves the CPU translating and
// mediating for the third. This module makes that quantitative. For each
// integration class it builds the corresponding host PCIe topology and
// composes the network-to-durable-storage transfer path out of DMA legs and
// host-CPU primitives, reporting CPU touches, DMA legs, PCIe hops, and
// end-to-end latency — the same row set the bench prints against Hyperion.

#ifndef HYPERION_SRC_BASELINE_INTEGRATION_H_
#define HYPERION_SRC_BASELINE_INTEGRATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/baseline/host.h"
#include "src/common/result.h"
#include "src/sim/engine.h"

namespace hyperion::baseline {

enum class IntegrationKind {
  kGpuWithNetwork,     // GPUnet/GPUDirect-RDMA style: no storage integration
  kGpuWithStorage,     // GPUDirect-Storage/SPIN: CPU-assisted FS, no network
  kFpgaWithNetwork,    // Catapult/hXDP: no storage integration
  kStorageWithNetwork, // NVMe-oF: block protocol only, CPU runs the target
  kStorageWithAccel,   // CSD/INSIDER: CPU does FS + network
  kCommercialDpu,      // BlueField-style SoC: embedded ARM cores on the path
  kHyperion,           // this paper: unified, no CPU anywhere
};

std::string_view IntegrationName(IntegrationKind kind);
std::string_view IntegrationLimitation(IntegrationKind kind);  // Table 1's right column

struct PathReport {
  IntegrationKind kind;
  uint32_t cpu_touches = 0;   // syscalls+interrupts+stack traversals+copies
  uint32_t dma_legs = 0;
  uint32_t pcie_hops = 0;
  sim::Duration latency = 0;  // end-to-end for the transfer
  sim::Duration cpu_busy = 0; // host CPU time consumed
};

// Prices moving `bytes` arriving from the network into durable storage
// (with any required accelerator touch) under the given integration style.
Result<PathReport> PriceNetToStorage(IntegrationKind kind, uint64_t bytes);

// All rows of the table for one transfer size.
std::vector<PathReport> PriceAll(uint64_t bytes);

}  // namespace hyperion::baseline

#endif  // HYPERION_SRC_BASELINE_INTEGRATION_H_
