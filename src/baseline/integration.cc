#include "src/baseline/integration.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/nvme/flash.h"
#include "src/pcie/dma.h"
#include "src/pcie/topology.h"

namespace hyperion::baseline {

std::string_view IntegrationName(IntegrationKind kind) {
  switch (kind) {
    case IntegrationKind::kGpuWithNetwork:
      return "gpu_with_network";
    case IntegrationKind::kGpuWithStorage:
      return "gpu_with_storage";
    case IntegrationKind::kFpgaWithNetwork:
      return "fpga_with_network";
    case IntegrationKind::kStorageWithNetwork:
      return "storage_with_network";
    case IntegrationKind::kStorageWithAccel:
      return "storage_with_accelerator";
    case IntegrationKind::kCommercialDpu:
      return "commercial_dpu";
    case IntegrationKind::kHyperion:
      return "hyperion";
  }
  return "?";
}

std::string_view IntegrationLimitation(IntegrationKind kind) {
  switch (kind) {
    case IntegrationKind::kGpuWithNetwork:
      return "does not have or consider any storage integration";
    case IntegrationKind::kGpuWithStorage:
      return "CPU-assisted storage translation, no or limited networking support";
    case IntegrationKind::kFpgaWithNetwork:
      return "does not have or consider storage integration";
    case IntegrationKind::kStorageWithNetwork:
      return "block-level protocols only, no support for file systems";
    case IntegrationKind::kStorageWithAccel:
      return "CPU does the file system/translations, no/limited network support";
    case IntegrationKind::kCommercialDpu:
      return "DPU designed around specialized CPU cores";
    case IntegrationKind::kHyperion:
      return "unified network+compute+storage, no CPU anywhere on the path";
  }
  return "?";
}

namespace {

struct PathContext {
  sim::Engine engine;
  pcie::Topology topology;
  pcie::NodeId root = 0;
  pcie::NodeId nic = 0;
  pcie::NodeId accel = 0;
  pcie::NodeId dram = 0;
  pcie::NodeId ssd = 0;
  std::unique_ptr<pcie::DmaEngine> dma;
  std::unique_ptr<HostCpu> cpu;
  uint32_t cpu_touches = 0;
  uint32_t dma_legs = 0;

  void BuildHostTopology() {
    root = topology.AddRootComplex("host_rc");
    dram = topology.AddEndpoint("dram", root, {5, 16});
    nic = topology.AddEndpoint("nic", root, {4, 8});
    accel = topology.AddEndpoint("accel", root, {4, 16});
    ssd = topology.AddEndpoint("nvme", root, {3, 4});
    dma = std::make_unique<pcie::DmaEngine>(&engine, &topology);
    cpu = std::make_unique<HostCpu>(&engine);
  }

  void Dma(pcie::NodeId a, pcie::NodeId b, uint64_t bytes) {
    CHECK_OK(dma->Transfer(a, b, bytes));
    ++dma_legs;
  }
  void P2p(pcie::NodeId a, pcie::NodeId b, uint64_t bytes) {
    CHECK_OK(dma->TransferPeerToPeer(a, b, bytes));
    ++dma_legs;
  }
  void Interrupt() {
    cpu->Interrupt();
    ++cpu_touches;
  }
  void Syscall() {
    cpu->Syscall();
    ++cpu_touches;
  }
  void Copy(uint64_t bytes) {
    cpu->Copy(bytes);
    ++cpu_touches;
  }
  void NetStack(uint64_t bytes) {
    const uint64_t packets = std::max<uint64_t>(1, bytes / 1460);
    for (uint64_t p = 0; p < packets; ++p) {
      cpu->NetStackPacket();
    }
    ++cpu_touches;
  }
  void BlockStack(uint64_t bytes) {
    const uint64_t ios = std::max<uint64_t>(1, bytes / (128 * 1024));
    for (uint64_t i = 0; i < ios; ++i) {
      cpu->BlockStackIo();
    }
    ++cpu_touches;
  }
  // NVMe program time on the media (same flash model everywhere).
  void FlashWrite(uint64_t bytes) {
    nvme::FlashDevice flash(1u << 20);
    const auto blocks =
        static_cast<uint32_t>((bytes + nvme::kLbaSize - 1) / nvme::kLbaSize);
    engine.Advance(flash.ServiceTime(0, std::max<uint32_t>(1, blocks), /*is_write=*/true,
                                     engine.Now()));
  }

  PathReport Finish(IntegrationKind kind) {
    PathReport report;
    report.kind = kind;
    report.cpu_touches = cpu_touches;
    report.dma_legs = dma_legs;
    report.pcie_hops = static_cast<uint32_t>(dma->counters().Get("pcie_hops"));
    report.latency = engine.Now();
    report.cpu_busy = cpu->BusyTime();
    return report;
  }
};

}  // namespace

Result<PathReport> PriceNetToStorage(IntegrationKind kind, uint64_t bytes) {
  PathContext ctx;
  switch (kind) {
    case IntegrationKind::kGpuWithNetwork: {
      // GPUDirect RDMA: NIC -> GPU P2P is clean, but persistence needs the
      // host: GPU -> DRAM, kernel write path, DRAM -> SSD.
      ctx.BuildHostTopology();
      ctx.P2p(ctx.nic, ctx.accel, bytes);
      ctx.Dma(ctx.accel, ctx.dram, bytes);
      ctx.Interrupt();
      ctx.Syscall();
      ctx.Copy(bytes);
      ctx.BlockStack(bytes);
      ctx.Dma(ctx.dram, ctx.ssd, bytes);
      ctx.FlashWrite(bytes);
      return ctx.Finish(kind);
    }
    case IntegrationKind::kGpuWithStorage: {
      // GPUDirect Storage: SSD <-> GPU P2P, but network lands in the kernel
      // first, and the CPU resolves file offsets.
      ctx.BuildHostTopology();
      ctx.Dma(ctx.nic, ctx.dram, bytes);
      ctx.Interrupt();
      ctx.NetStack(bytes);
      ctx.Syscall();
      ctx.Copy(bytes);
      ctx.Dma(ctx.dram, ctx.accel, bytes);
      ctx.Syscall();  // CPU performs the FS translation for the P2P leg
      ctx.P2p(ctx.accel, ctx.ssd, bytes);
      ctx.FlashWrite(bytes);
      return ctx.Finish(kind);
    }
    case IntegrationKind::kFpgaWithNetwork: {
      // Catapult-style bump-in-the-wire FPGA NIC: network is free of the
      // CPU, storage is not.
      ctx.BuildHostTopology();
      // Wire -> FPGA is on-card; first PCIe leg is FPGA -> DRAM.
      ctx.Dma(ctx.accel, ctx.dram, bytes);
      ctx.Interrupt();
      ctx.Syscall();
      ctx.Copy(bytes);
      ctx.BlockStack(bytes);
      ctx.Dma(ctx.dram, ctx.ssd, bytes);
      ctx.FlashWrite(bytes);
      return ctx.Finish(kind);
    }
    case IntegrationKind::kStorageWithNetwork: {
      // NVMe-oF target: kernel target stack bridges NIC and SSD; no
      // userspace copy, but interrupts + block protocol on the CPU.
      ctx.BuildHostTopology();
      ctx.Dma(ctx.nic, ctx.dram, bytes);
      ctx.Interrupt();
      ctx.NetStack(bytes);
      ctx.BlockStack(bytes);
      ctx.Dma(ctx.dram, ctx.ssd, bytes);
      ctx.FlashWrite(bytes);
      return ctx.Finish(kind);
    }
    case IntegrationKind::kStorageWithAccel: {
      // Computational storage: the device computes, but ingest from the
      // network crosses the full kernel path first.
      ctx.BuildHostTopology();
      ctx.Dma(ctx.nic, ctx.dram, bytes);
      ctx.Interrupt();
      ctx.NetStack(bytes);
      ctx.Syscall();
      ctx.Copy(bytes);
      ctx.Syscall();
      ctx.Copy(bytes);
      ctx.BlockStack(bytes);
      ctx.Dma(ctx.dram, ctx.ssd, bytes);
      ctx.FlashWrite(bytes);
      return ctx.Finish(kind);
    }
    case IntegrationKind::kCommercialDpu: {
      // BlueField-style SoC: the NIC and SSD hang off the DPU, so the path
      // avoids the host — but embedded ARM cores run a kernel stack on
      // every request, and each software step is ~1.8x slower than x86.
      ctx.BuildHostTopology();
      HostCostParams arm;
      arm.syscall = static_cast<sim::Duration>(arm.syscall * 1.8);
      arm.interrupt = static_cast<sim::Duration>(arm.interrupt * 1.8);
      arm.net_stack_per_packet = static_cast<sim::Duration>(arm.net_stack_per_packet * 1.8);
      arm.block_stack_per_io = static_cast<sim::Duration>(arm.block_stack_per_io * 1.8);
      arm.memcpy_gbps /= 1.8;
      ctx.cpu = std::make_unique<HostCpu>(&ctx.engine, arm);
      ctx.Dma(ctx.nic, ctx.dram, bytes);  // into DPU-local DRAM
      // Embedded cores: cheaper than x86 but still software on the path.
      ctx.Interrupt();
      ctx.NetStack(bytes);
      ctx.BlockStack(bytes);
      ctx.Dma(ctx.dram, ctx.ssd, bytes);
      ctx.FlashWrite(bytes);
      return ctx.Finish(kind);
    }
    case IntegrationKind::kHyperion: {
      // Unified: the wire terminates in the fabric; one DMA through the
      // FPGA-hosted root complex to flash. No CPU exists to touch it.
      ctx.root = ctx.topology.AddRootComplex("fpga_rc");
      ctx.ssd = ctx.topology.AddEndpoint("nvme0", ctx.root, {3, 4});
      ctx.dma = std::make_unique<pcie::DmaEngine>(&ctx.engine, &ctx.topology);
      ctx.cpu = std::make_unique<HostCpu>(&ctx.engine);
      ctx.Dma(ctx.root, ctx.ssd, bytes);
      ctx.FlashWrite(bytes);
      return ctx.Finish(kind);
    }
  }
  return InvalidArgument("unknown integration kind");
}

std::vector<PathReport> PriceAll(uint64_t bytes) {
  std::vector<PathReport> rows;
  for (IntegrationKind kind :
       {IntegrationKind::kGpuWithNetwork, IntegrationKind::kGpuWithStorage,
        IntegrationKind::kFpgaWithNetwork, IntegrationKind::kStorageWithNetwork,
        IntegrationKind::kStorageWithAccel, IntegrationKind::kCommercialDpu,
        IntegrationKind::kHyperion}) {
    auto report = PriceNetToStorage(kind, bytes);
    CHECK(report.ok());
    rows.push_back(*report);
  }
  return rows;
}

}  // namespace hyperion::baseline
