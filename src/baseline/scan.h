// Host-path analytics scan: the Table 1 contrast arm for E18.
//
// The same Parquet query the FPGA scan kernel streams from NVMe, executed
// the way a pairwise-integrated host runs it: the kernel block stack reads
// the *whole file* from the device into the page cache (no zone-map pruning
// can help until the footer is in DRAM, and by then every byte has already
// crossed the bus), one kernel->user copy hands it to the query engine, and
// the CPU evaluates the identical shared loop (EvaluateScanQuery) in
// software cycles. Outputs are bit-identical to the fabric path — only the
// bytes-moved and latency accounting differ, which is the experiment.

#ifndef HYPERION_SRC_BASELINE_SCAN_H_
#define HYPERION_SRC_BASELINE_SCAN_H_

#include <cstdint>

#include "src/baseline/host.h"
#include "src/common/result.h"
#include "src/format/scan_kernel.h"
#include "src/sim/engine.h"

namespace hyperion::baseline {

struct HostScanParams {
  HostCostParams cpu;
  uint64_t io_bytes = 128 * 1024;        // readahead-sized block-stack reads
  double decode_cycles_per_byte = 1.5;   // software Parquet decode
  uint64_t per_row_cycles = 12;          // branchy scalar filter/aggregate
};

// Prices one query end to end on the host path. Stateless between queries
// apart from the accumulated HostCpu counters.
class HostScanPath {
 public:
  HostScanPath(sim::Engine* engine, HostScanParams params = HostScanParams())
      : engine_(engine), cpu_(engine, params.cpu), params_(params) {}

  // Reads `table`'s whole extent through the block stack, copies it to user
  // space, then evaluates `query` with CPU-cycle charging. ScanStats records
  // the full-file device traffic and the kernel->user copy.
  Result<format::ScanResult> Execute(const format::NvmeParquetFile& table,
                                     const format::ScanQuery& query);

  HostCpu& cpu() { return cpu_; }

 private:
  sim::Engine* engine_;
  HostCpu cpu_;
  HostScanParams params_;
};

}  // namespace hyperion::baseline

#endif  // HYPERION_SRC_BASELINE_SCAN_H_
