// Host CPU cost model — the thing the paper wants out of the critical path.
//
// Every number here is a well-documented public measurement for a modern
// x86 server running Linux: syscall entry/exit, interrupt handling, context
// switches, single-core memcpy bandwidth, and the per-operation software
// costs of the kernel network and block stacks. The baseline architectures
// of Table 1 and the host sides of experiments E1/E3/E5/E8 are priced by
// composing these primitives; Hyperion's paths simply never call them.

#ifndef HYPERION_SRC_BASELINE_HOST_H_
#define HYPERION_SRC_BASELINE_HOST_H_

#include <cstdint>

#include "src/sim/engine.h"
#include "src/sim/stats.h"

namespace hyperion::baseline {

struct HostCostParams {
  sim::Duration syscall = 600;                   // entry/exit + spectre mitigations
  sim::Duration interrupt = 1500;                // IRQ + softirq dispatch
  sim::Duration context_switch = 2 * sim::kMicrosecond;
  double memcpy_gbps = 80.0;                     // one core, warm cache ~10 GB/s
  sim::Duration net_stack_per_packet = 1500;     // skb alloc, protocol, routing
  sim::Duration block_stack_per_io = 3 * sim::kMicrosecond;  // VFS+FS+blk-mq
  sim::Duration page_cache_lookup = 250;
  double cpu_ghz = 3.0;
};

// Charges host software costs to the virtual clock and tracks CPU busy time
// (for the energy model) plus per-primitive counters.
class HostCpu {
 public:
  explicit HostCpu(sim::Engine* engine, HostCostParams params = HostCostParams())
      : engine_(engine), params_(params) {}

  void Syscall() { Charge("syscalls", params_.syscall); }
  void Interrupt() { Charge("interrupts", params_.interrupt); }
  void ContextSwitch() { Charge("context_switches", params_.context_switch); }
  void NetStackPacket() { Charge("net_stack_packets", params_.net_stack_per_packet); }
  void BlockStackIo() { Charge("block_ios", params_.block_stack_per_io); }
  void PageCacheLookup() { Charge("page_cache_lookups", params_.page_cache_lookup); }

  // One CPU-mediated copy of `bytes` (e.g. user<->kernel crossing).
  void Copy(uint64_t bytes) {
    counters_.Add("copied_bytes", bytes);
    ChargeTime("copies", sim::TransferTime(bytes, params_.memcpy_gbps));
  }

  // Generic compute of `cycles` on one core.
  void Compute(uint64_t cycles) {
    ChargeTime("compute", sim::CyclesToTime(cycles, params_.cpu_ghz * 1000.0));
  }

  sim::Duration BusyTime() const { return busy_; }
  const sim::Counters& counters() const { return counters_; }
  const HostCostParams& params() const { return params_; }

 private:
  void Charge(const char* what, sim::Duration cost) {
    counters_.Increment(what);
    ChargeTime(what, cost);
  }
  void ChargeTime(const char* what, sim::Duration cost) {
    (void)what;
    engine_->Advance(cost);
    busy_ += cost;
  }

  sim::Engine* engine_;
  HostCostParams params_;
  sim::Duration busy_ = 0;
  sim::Counters counters_;
};

}  // namespace hyperion::baseline

#endif  // HYPERION_SRC_BASELINE_HOST_H_
