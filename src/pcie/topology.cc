#include "src/pcie/topology.h"

#include <algorithm>

#include "src/common/check.h"

namespace hyperion::pcie {

double LanesGBps(int gen, int lanes) {
  CHECK_GE(gen, 1);
  CHECK_LE(gen, 5);
  CHECK_GT(lanes, 0);
  // Effective per-lane payload bandwidth in GB/s after encoding overhead.
  static constexpr double kPerLane[] = {0.0, 0.25, 0.5, 0.985, 1.969, 3.938};
  return kPerLane[gen] * lanes;
}

NodeId Topology::AddRootComplex(std::string name) {
  CHECK(nodes_.empty()) << "root complex must be the first node";
  Node n;
  n.id = 0;
  n.kind = NodeKind::kRootComplex;
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  return 0;
}

NodeId Topology::AddSwitch(std::string name, NodeId parent, LinkSpec uplink) {
  CHECK_LT(parent, nodes_.size());
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.kind = NodeKind::kSwitch;
  n.name = std::move(name);
  n.parent = parent;
  n.uplink = uplink;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

NodeId Topology::AddEndpoint(std::string name, NodeId parent, LinkSpec uplink) {
  CHECK_LT(parent, nodes_.size());
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.kind = NodeKind::kEndpoint;
  n.name = std::move(name);
  n.parent = parent;
  n.uplink = uplink;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

const Node& Topology::node(NodeId id) const {
  CHECK_LT(id, nodes_.size());
  return nodes_[id];
}

Result<std::vector<NodeId>> Topology::Path(NodeId a, NodeId b) const {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    return InvalidArgument("unknown PCIe node id");
  }
  if (a == b) {
    return std::vector<NodeId>{a};
  }
  // Collect ancestor chains up to the root, then splice at the lowest
  // common ancestor.
  auto chain = [this](NodeId n) {
    std::vector<NodeId> c;
    for (NodeId cur = n; cur != kInvalidNode; cur = nodes_[cur].parent) {
      c.push_back(cur);
    }
    return c;  // n ... root
  };
  std::vector<NodeId> ca = chain(a);
  std::vector<NodeId> cb = chain(b);
  // Walk back from the root while the chains agree.
  size_t ia = ca.size();
  size_t ib = cb.size();
  while (ia > 0 && ib > 0 && ca[ia - 1] == cb[ib - 1]) {
    --ia;
    --ib;
  }
  // Path: a up to (and including) LCA, then down to b.
  std::vector<NodeId> path(ca.begin(), ca.begin() + static_cast<ptrdiff_t>(ia + 1));
  for (size_t i = ib; i-- > 0;) {
    path.push_back(cb[i]);
  }
  return path;
}

Result<uint32_t> Topology::PathHops(NodeId a, NodeId b) const {
  ASSIGN_OR_RETURN(std::vector<NodeId> path, Path(a, b));
  return static_cast<uint32_t>(path.size() - 1);
}

Result<double> Topology::PathBandwidthGBps(NodeId a, NodeId b) const {
  ASSIGN_OR_RETURN(std::vector<NodeId> path, Path(a, b));
  if (path.size() < 2) {
    return InvalidArgument("no link on a self-path");
  }
  double min_bw = 1e18;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    // Each edge is the uplink of whichever of the two nodes is the child.
    const Node& x = nodes_[path[i]];
    const Node& y = nodes_[path[i + 1]];
    const Node& child = x.parent == y.id ? x : y;
    DCHECK(child.parent == (x.parent == y.id ? y.id : x.id));
    min_bw = std::min(min_bw, LanesGBps(child.uplink.gen, child.uplink.lanes));
  }
  return min_bw;
}

Result<sim::Duration> Topology::TransferLatency(NodeId a, NodeId b, uint64_t bytes) const {
  ASSIGN_OR_RETURN(uint32_t hops, PathHops(a, b));
  if (hops == 0) {
    return sim::Duration{0};
  }
  ASSIGN_OR_RETURN(double bw, PathBandwidthGBps(a, b));
  const auto serialization =
      static_cast<sim::Duration>(static_cast<double>(bytes) / (bw * 1e9) * 1e9);
  return kHopLatency * hops + serialization;
}

}  // namespace hyperion::pcie
