// DMA engine over a PCIe topology.
//
// Transfers advance the simulation clock by the modelled bus latency and
// feed the experiment counters (hops, bytes, transfers) that experiment E1
// (Table 1 reproduction) reports. A transfer between two endpoints that
// must bounce through host DRAM (the CPU-centric pattern) is modelled as
// two DMA legs plus a configurable CPU touch cost charged by the caller.

#ifndef HYPERION_SRC_PCIE_DMA_H_
#define HYPERION_SRC_PCIE_DMA_H_

#include <cstdint>

#include "src/common/buffer.h"
#include "src/common/result.h"
#include "src/obs/trace.h"
#include "src/pcie/topology.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/sim/stats.h"

namespace hyperion::pcie {

// Scatter-gather DMA descriptor: the transfer references the payload's
// buffer segments (SGL-style) — no staging copy is made to launch it.
struct DmaDescriptor {
  NodeId src = 0;
  NodeId dst = 0;
  BufferChain data;
  bool peer_to_peer = false;
};

class DmaEngine {
 public:
  // LTSSM Recovery: a dropped link retrains and the data-link layer replays
  // outstanding TLPs, so a transfer survives a drop with added latency.
  static constexpr sim::Duration kRetrainLatency = 20 * sim::kMicrosecond;
  // Consecutive failed retrains before the link is declared down and the
  // transfer surfaces kUnavailable to the caller.
  static constexpr int kMaxRetrains = 8;

  DmaEngine(sim::Engine* engine, const Topology* topology)
      : engine_(engine), topology_(topology) {}

  // Hooks this engine to a fault injector (null detaches). Injected fault:
  // link drops, absorbed by retrain + replay up to kMaxRetrains.
  void SetFaultInjector(sim::FaultInjector* injector) { injector_ = injector; }

  // Attaches a tracer (null detaches): transfers emit pcie.dma spans, and
  // each injected link drop adds a pcie.retrain recovery span.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Synchronous transfer of `bytes` from node `src` to node `dst`:
  // advances virtual time by the modelled latency and returns it.
  Result<sim::Duration> Transfer(NodeId src, NodeId dst, uint64_t bytes);

  // Peer-to-peer transfer. Identical cost model to Transfer but recorded
  // under a separate counter so experiments can distinguish P2P DMA (e.g.
  // NVMe CMB-based designs) from root-complex-mediated flows.
  Result<sim::Duration> TransferPeerToPeer(NodeId src, NodeId dst, uint64_t bytes);

  // Scatter-gather transfer: identical cost model to Transfer for the
  // chain's total byte count (segmentation never changes modelled latency),
  // with dma_sg_transfers / dma_sg_segments accounting on top.
  Result<sim::Duration> TransferDescriptor(const DmaDescriptor& descriptor);

  const sim::Counters& counters() const { return counters_; }
  void ResetCounters() { counters_.Reset(); }

 private:
  Result<sim::Duration> DoTransfer(NodeId src, NodeId dst, uint64_t bytes, const char* kind);

  sim::Engine* engine_;
  const Topology* topology_;
  sim::FaultInjector* injector_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  sim::Counters counters_;
};

}  // namespace hyperion::pcie

#endif  // HYPERION_SRC_PCIE_DMA_H_
