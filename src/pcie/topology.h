// PCIe topology model.
//
// Hyperion's blueprint (Figure 2) hosts a PCIe root complex *on the FPGA*
// and bifurcates its x16 lanes into 4 x4 links, one per NVMe device — so
// storage traffic never crosses a host root complex. The conventional
// architectures of Table 1 instead route every accelerator<->device transfer
// through the host root complex (and often through host DRAM). This module
// models both: a device tree with per-link generation/width, path
// resolution with hop counting, and transfer-latency computation. The DMA
// engine (dma.h) layers byte movement and counters on top.

#ifndef HYPERION_SRC_PCIE_TOPOLOGY_H_
#define HYPERION_SRC_PCIE_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/sim/time.h"

namespace hyperion::pcie {

using NodeId = uint32_t;
constexpr NodeId kInvalidNode = ~0u;

enum class NodeKind : uint8_t {
  kRootComplex,  // owns the hierarchy; the CPU (host) or FPGA (Hyperion)
  kSwitch,       // fan-out, adds a store-and-forward hop
  kEndpoint,     // NIC, NVMe device, GPU, FPGA-as-device, DRAM controller
};

// Per-lane bandwidth by PCIe generation, GB/s (after 128b/130b encoding).
double LanesGBps(int gen, int lanes);

struct LinkSpec {
  int gen = 3;     // PCIe generation (1..5 supported)
  int lanes = 4;   // x1/x2/x4/x8/x16
};

struct Node {
  NodeId id = kInvalidNode;
  NodeKind kind = NodeKind::kEndpoint;
  std::string name;
  NodeId parent = kInvalidNode;  // kInvalidNode for the root complex
  LinkSpec uplink;               // link towards the parent
};

class Topology {
 public:
  // Creates the hierarchy root. Must be called exactly once, first.
  NodeId AddRootComplex(std::string name);
  NodeId AddSwitch(std::string name, NodeId parent, LinkSpec uplink);
  NodeId AddEndpoint(std::string name, NodeId parent, LinkSpec uplink);

  const Node& node(NodeId id) const;
  size_t NodeCount() const { return nodes_.size(); }

  // Number of link traversals on the path a -> b (via their lowest common
  // ancestor). Two endpoints under the same switch with P2P enabled cross
  // 2 links; through the root complex it is the full up-and-down path.
  Result<uint32_t> PathHops(NodeId a, NodeId b) const;

  // The bottleneck (minimum-bandwidth) link on the path, GB/s.
  Result<double> PathBandwidthGBps(NodeId a, NodeId b) const;

  // Latency for moving `bytes` from a to b: per-hop TLP forwarding latency
  // plus serialization on the bottleneck link.
  Result<sim::Duration> TransferLatency(NodeId a, NodeId b, uint64_t bytes) const;

  // Per-hop forwarding latency (switch/root-complex store-and-forward).
  // ~150 ns per traversal is representative of Gen3/Gen4 parts.
  static constexpr sim::Duration kHopLatency = 150;

 private:
  Result<std::vector<NodeId>> Path(NodeId a, NodeId b) const;

  std::vector<Node> nodes_;
};

}  // namespace hyperion::pcie

#endif  // HYPERION_SRC_PCIE_TOPOLOGY_H_
