#include "src/pcie/dma.h"

namespace hyperion::pcie {

Result<sim::Duration> DmaEngine::Transfer(NodeId src, NodeId dst, uint64_t bytes) {
  return DoTransfer(src, dst, bytes, "dma");
}

Result<sim::Duration> DmaEngine::TransferPeerToPeer(NodeId src, NodeId dst, uint64_t bytes) {
  return DoTransfer(src, dst, bytes, "p2p_dma");
}

Result<sim::Duration> DmaEngine::DoTransfer(NodeId src, NodeId dst, uint64_t bytes,
                                            const char* kind) {
  ASSIGN_OR_RETURN(sim::Duration latency, topology_->TransferLatency(src, dst, bytes));
  ASSIGN_OR_RETURN(uint32_t hops, topology_->PathHops(src, dst));
  engine_->Advance(latency);
  counters_.Add(std::string(kind) + "_transfers", 1);
  counters_.Add(std::string(kind) + "_bytes", bytes);
  counters_.Add("pcie_hops", hops);
  return latency;
}

}  // namespace hyperion::pcie
