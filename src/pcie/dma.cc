#include "src/pcie/dma.h"

namespace hyperion::pcie {

Result<sim::Duration> DmaEngine::Transfer(NodeId src, NodeId dst, uint64_t bytes) {
  return DoTransfer(src, dst, bytes, "dma");
}

Result<sim::Duration> DmaEngine::TransferPeerToPeer(NodeId src, NodeId dst, uint64_t bytes) {
  return DoTransfer(src, dst, bytes, "p2p_dma");
}

Result<sim::Duration> DmaEngine::TransferDescriptor(const DmaDescriptor& descriptor) {
  counters_.Add("dma_sg_transfers", 1);
  counters_.Add("dma_sg_segments", descriptor.data.segment_count());
  return DoTransfer(descriptor.src, descriptor.dst, descriptor.data.size(),
                    descriptor.peer_to_peer ? "p2p_dma" : "dma");
}

Result<sim::Duration> DmaEngine::DoTransfer(NodeId src, NodeId dst, uint64_t bytes,
                                            const char* kind) {
  ASSIGN_OR_RETURN(sim::Duration latency, topology_->TransferLatency(src, dst, bytes));
  ASSIGN_OR_RETURN(uint32_t hops, topology_->PathHops(src, dst));
  obs::ScopedSpan span(tracer_, engine_, obs::Subsystem::kPcie, "pcie.dma");
  // Injected link drops: each one costs a retrain, after which the
  // data-link layer replays the outstanding TLPs — recovery is below the
  // software's horizon unless the link refuses to come back.
  sim::Duration retrain_total = 0;
  for (int drops = 0;
       injector_ != nullptr && injector_->ShouldInject(sim::FaultSite::kPcieLinkDrop);) {
    if (++drops > kMaxRetrains) {
      counters_.Add("pcie_link_down", 1);
      return Unavailable("PCIe link down: retrain limit exceeded");
    }
    {
      obs::ScopedSpan retrain(tracer_, engine_, obs::Subsystem::kPcie, "pcie.retrain");
      engine_->Advance(kRetrainLatency);
    }
    retrain_total += kRetrainLatency;
    counters_.Add("pcie_link_drops", 1);
  }
  if (retrain_total > 0) {
    counters_.Add("pcie_replays", 1);
    counters_.Add("pcie_retrain_ns", retrain_total);
  }
  engine_->Advance(latency);
  counters_.Add(std::string(kind) + "_transfers", 1);
  counters_.Add(std::string(kind) + "_bytes", bytes);
  counters_.Add("pcie_hops", hops);
  return retrain_total + latency;
}

}  // namespace hyperion::pcie
