// NVMe controller: namespaces, queue pairs, command execution.
//
// On Hyperion the controller sits behind the FPGA-hosted PCIe root complex
// (the "NVMe Host IP Core" of Figure 2); on the baseline it hangs off the
// host root complex and is driven by the kernel. Both use this same model —
// what differs between the architectures is who issues the doorbells and
// how many bus/software hops the data crosses on the way here.

#ifndef HYPERION_SRC_NVME_CONTROLLER_H_
#define HYPERION_SRC_NVME_CONTROLLER_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/result.h"
#include "src/nvme/command.h"
#include "src/nvme/flash.h"
#include "src/nvme/queue.h"
#include "src/obs/trace.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/sim/stats.h"

namespace hyperion::nvme {

class Controller {
 public:
  explicit Controller(sim::Engine* engine) : engine_(engine) {}

  // Attaches a namespace; returns its 1-based nsid.
  uint32_t AddNamespace(uint64_t capacity_lbas, FlashLatency latency = FlashLatency());

  uint32_t NamespaceCount() const { return static_cast<uint32_t>(namespaces_.size()); }
  Result<uint64_t> NamespaceCapacity(uint32_t nsid) const;

  // -- Queue-pair interface (asynchronous, spec-shaped) ---------------------

  // Creates an I/O queue pair; returns its qid (1-based; qid 0 is admin,
  // which this model does not expose).
  uint16_t CreateQueuePair(uint16_t entries);

  // Producer: post a command to queue `qid` (rings the SQ doorbell).
  Status Submit(uint16_t qid, Command cmd);

  // Controller side: drain all submission queues, executing each command
  // against the media model and posting completions. Returns the number of
  // commands executed. Virtual time advances to the completion time of the
  // latest command.
  uint32_t ProcessSubmissions();

  // Consumer: reap one completion from queue `qid`.
  std::optional<Completion> Reap(uint16_t qid);

  // -- Submission batching (doorbell coalescing, PR 5) ----------------------
  // SQEs staged via SubmitCoalesced accumulate host-side; one doorbell ring
  // publishes up to `max_batch` of them and charges the MMIO doorbell cost
  // once, amortizing it across the batch. With the default max_batch of 1
  // every staged command rings immediately (no coalescing).

  void SetDoorbellCoalescing(uint16_t max_batch) {
    doorbell_batch_ = std::max<uint16_t>(1, max_batch);
  }
  void SetDoorbellCost(sim::Duration cost) { doorbell_cost_ = cost; }

  // Stages a command for `qid`; rings automatically when the stage reaches
  // the batch bound or the SQ cannot hold another staged entry. Returns
  // ResourceExhausted (nothing staged) when SQ free slots are exhausted by
  // the entries already staged — the backpressure signal callers propagate.
  Status SubmitCoalesced(uint16_t qid, Command cmd);
  // Publishes whatever is staged for `qid` (no-op when empty). Callers
  // enforce their own max-delay bound by invoking this from a timer.
  Status RingDoorbell(uint16_t qid);
  size_t StagedCount(uint16_t qid) const;

  // -- Synchronous convenience facade ---------------------------------------
  // Issues through an internal queue pair and advances virtual time by the
  // full command latency. Used by the storage/fs layers, which care about
  // the cost model, not doorbell mechanics.

  Result<Bytes> Read(uint32_t nsid, uint64_t slba, uint32_t block_count);
  Status Write(uint32_t nsid, uint64_t slba, ByteSpan data);  // data = N * kLbaSize
  // Scatter-gather write: the command references `data`'s segments (no
  // staging copy). Same size contract as Write.
  Status WriteChain(uint32_t nsid, uint64_t slba, BufferChain data);
  Status Flush(uint32_t nsid);

  // -- Fault injection & recovery -------------------------------------------

  // Hooks this controller to a fault injector (null detaches). Injected
  // faults: unrecovered media read errors and command timeouts. Queue-pair
  // consumers see the raw spec-shaped completion status; the synchronous
  // facade reissues transient failures up to the retry budget.
  void SetFaultInjector(sim::FaultInjector* injector) { injector_ = injector; }

  // Attaches a tracer (null detaches). The synchronous facade emits
  // nvme.read / nvme.write / nvme.flush spans; recovery paths add
  // nvme.retry (each reissue) and nvme.timeout (watchdog expiry).
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Bounded reissue budget for the synchronous facade (reissues, not total
  // attempts: 3 means up to 4 submissions of the same command).
  void SetRetryLimit(uint32_t retries) { retry_limit_ = retries; }
  uint32_t retry_limit() const { return retry_limit_; }

  // Host-side watchdog: how long an injected command hang costs before the
  // abort completion is posted.
  void SetCommandTimeout(sim::Duration timeout) { command_timeout_ = timeout; }
  sim::Duration command_timeout() const { return command_timeout_; }

  const sim::Counters& counters() const { return counters_; }

 private:
  Completion Execute(const Command& cmd);
  FlashDevice* GetNamespace(uint32_t nsid);
  // Executes `cmd` and reissues it (fresh cid) on transient failure until
  // it succeeds, fails deterministically, or exhausts the retry budget.
  Completion ExecuteWithRetry(Command cmd);

  sim::Engine* engine_;
  std::vector<std::unique_ptr<FlashDevice>> namespaces_;
  std::vector<std::unique_ptr<QueuePair>> queues_;
  std::vector<std::vector<Command>> staged_;  // parallel to queues_
  uint16_t doorbell_batch_ = 1;
  sim::Duration doorbell_cost_ = 500;  // one MMIO write, ns
  uint16_t next_cid_ = 1;
  sim::FaultInjector* injector_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  uint32_t retry_limit_ = 3;
  sim::Duration command_timeout_ = 5 * sim::kMillisecond;
  sim::Counters counters_;
  // Reused 1-block staging buffer for writes whose SG chain straddles a
  // segment boundary (was a fresh zeroed 4 KiB heap block per command).
  Bytes write_scratch_;
  // Hot-path counter slots, interned lazily at first bump so untouched
  // counters never appear in Snapshot().
  static constexpr sim::Counters::Handle kUnresolved = ~sim::Counters::Handle{0};
  sim::Counters::Handle h_reads_ = kUnresolved;
  sim::Counters::Handle h_read_bytes_ = kUnresolved;
  sim::Counters::Handle h_writes_ = kUnresolved;
  sim::Counters::Handle h_write_bytes_ = kUnresolved;
  sim::Counters::Handle h_doorbells_ = kUnresolved;
  sim::Counters::Handle h_doorbell_sqes_ = kUnresolved;
};

}  // namespace hyperion::nvme

#endif  // HYPERION_SRC_NVME_CONTROLLER_H_
