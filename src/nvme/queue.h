// NVMe submission/completion queue pair with doorbell semantics.
//
// The rings follow the spec's invariants: fixed-size circular buffers,
// producer advances tail, consumer advances head, full when
// (tail+1) % size == head. The host (or Hyperion's FPGA NVMe host IP) posts
// commands and rings the SQ tail doorbell; the controller consumes them and
// posts completions, which the host reaps by advancing the CQ head.

#ifndef HYPERION_SRC_NVME_QUEUE_H_
#define HYPERION_SRC_NVME_QUEUE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/result.h"
#include "src/nvme/command.h"

namespace hyperion::nvme {

class SubmissionQueue {
 public:
  SubmissionQueue(uint16_t id, uint16_t entries);

  uint16_t id() const { return id_; }
  bool Full() const;
  bool Empty() const { return head_ == tail_; }
  uint16_t Depth() const;
  // Usable capacity: one slot is sacrificed to tell full from empty.
  uint16_t Capacity() const { return static_cast<uint16_t>(entries_ - 1); }
  uint16_t FreeSlots() const { return static_cast<uint16_t>(Capacity() - Depth()); }

  // Producer side: enqueue + ring the doorbell.
  Status Push(Command cmd);

  // Consumer (controller) side.
  std::optional<Command> Pop();

 private:
  uint16_t id_;
  uint16_t entries_;
  uint16_t head_ = 0;
  uint16_t tail_ = 0;
  std::vector<Command> ring_;
};

class CompletionQueue {
 public:
  explicit CompletionQueue(uint16_t entries);

  bool Full() const;
  bool Empty() const { return head_ == tail_; }
  uint16_t Depth() const {
    return static_cast<uint16_t>((tail_ + entries_ - head_) % entries_);
  }
  uint16_t Capacity() const { return static_cast<uint16_t>(entries_ - 1); }

  Status Post(Completion cqe);
  std::optional<Completion> Reap();

 private:
  uint16_t entries_;
  uint16_t head_ = 0;
  uint16_t tail_ = 0;
  std::vector<Completion> ring_;
};

// A paired SQ/CQ, the unit of I/O parallelism in NVMe.
struct QueuePair {
  QueuePair(uint16_t id, uint16_t entries) : sq(id, entries), cq(entries) {}
  SubmissionQueue sq;
  CompletionQueue cq;
};

}  // namespace hyperion::nvme

#endif  // HYPERION_SRC_NVME_QUEUE_H_
