#include "src/nvme/flash.h"

#include <algorithm>

#include "src/common/check.h"

namespace hyperion::nvme {

Status FlashDevice::ReadBlock(uint64_t lba, MutableByteSpan out) const {
  if (lba >= capacity_lbas_) {
    return OutOfRange("read past end of namespace");
  }
  if (out.size() != kLbaSize) {
    return InvalidArgument("read buffer must be one LBA");
  }
  auto it = blocks_.find(lba);
  if (it == blocks_.end()) {
    std::fill(out.begin(), out.end(), 0);
  } else {
    std::copy(it->second.begin(), it->second.end(), out.begin());
  }
  return Status::Ok();
}

Status FlashDevice::WriteBlock(uint64_t lba, ByteSpan data) {
  if (lba >= capacity_lbas_) {
    return OutOfRange("write past end of namespace");
  }
  if (data.size() != kLbaSize) {
    return InvalidArgument("write buffer must be one LBA");
  }
  blocks_[lba] = Bytes(data.begin(), data.end());
  return Status::Ok();
}

sim::Duration FlashDevice::ServiceTime(uint64_t lba, uint32_t count, bool is_write,
                                       sim::SimTime now) {
  CHECK_GT(count, 0u);
  const sim::Duration media = is_write ? latency_.program_ns : latency_.read_ns;
  sim::SimTime finish = now;
  for (uint32_t i = 0; i < count; ++i) {
    const size_t ch = static_cast<size_t>((lba + i) % latency_.channels);
    // The block starts when both the op has been issued (now) and its
    // channel is free; it occupies the channel for media + transfer time.
    const sim::SimTime start = std::max(now, channel_free_at_[ch]);
    const sim::SimTime done = start + media + latency_.channel_xfer_per_lba_ns;
    channel_free_at_[ch] = done;
    finish = std::max(finish, done);
  }
  return finish - now;
}

}  // namespace hyperion::nvme
