#include "src/nvme/queue.h"

#include "src/common/check.h"

namespace hyperion::nvme {

SubmissionQueue::SubmissionQueue(uint16_t id, uint16_t entries)
    : id_(id), entries_(entries), ring_(entries) {
  CHECK_GE(entries, 2) << "NVMe queues need at least 2 entries";
}

bool SubmissionQueue::Full() const {
  return static_cast<uint16_t>((tail_ + 1) % entries_) == head_;
}

uint16_t SubmissionQueue::Depth() const {
  return static_cast<uint16_t>((tail_ + entries_ - head_) % entries_);
}

Status SubmissionQueue::Push(Command cmd) {
  if (Full()) {
    return ResourceExhausted("submission queue full");
  }
  ring_[tail_] = std::move(cmd);
  tail_ = static_cast<uint16_t>((tail_ + 1) % entries_);
  return Status::Ok();
}

std::optional<Command> SubmissionQueue::Pop() {
  if (Empty()) {
    return std::nullopt;
  }
  Command cmd = std::move(ring_[head_]);
  head_ = static_cast<uint16_t>((head_ + 1) % entries_);
  return cmd;
}

CompletionQueue::CompletionQueue(uint16_t entries) : entries_(entries), ring_(entries) {
  CHECK_GE(entries, 2);
}

bool CompletionQueue::Full() const {
  return static_cast<uint16_t>((tail_ + 1) % entries_) == head_;
}

Status CompletionQueue::Post(Completion cqe) {
  if (Full()) {
    return ResourceExhausted("completion queue full");
  }
  ring_[tail_] = std::move(cqe);
  tail_ = static_cast<uint16_t>((tail_ + 1) % entries_);
  return Status::Ok();
}

std::optional<Completion> CompletionQueue::Reap() {
  if (Empty()) {
    return std::nullopt;
  }
  Completion cqe = std::move(ring_[head_]);
  head_ = static_cast<uint16_t>((head_ + 1) % entries_);
  return cqe;
}

}  // namespace hyperion::nvme
