#include "src/nvme/zns.h"

namespace hyperion::nvme {

Result<ZonedNamespace> ZonedNamespace::Create(Controller* controller, uint32_t nsid,
                                              uint64_t zone_lbas) {
  if (zone_lbas == 0) {
    return InvalidArgument("zone size must be positive");
  }
  ASSIGN_OR_RETURN(uint64_t capacity, controller->NamespaceCapacity(nsid));
  const uint64_t zone_count = capacity / zone_lbas;
  if (zone_count == 0) {
    return InvalidArgument("namespace smaller than one zone");
  }
  ZonedNamespace zns(controller, nsid, zone_lbas);
  zns.zones_.reserve(zone_count);
  for (uint64_t z = 0; z < zone_count; ++z) {
    Zone zone;
    zone.start_lba = z * zone_lbas;
    zone.capacity_lbas = zone_lbas;
    zone.write_pointer = zone.start_lba;
    zns.zones_.push_back(zone);
  }
  return zns;
}

Result<Zone> ZonedNamespace::Describe(uint32_t zone_id) const {
  if (zone_id >= zones_.size()) {
    return InvalidArgument("no such zone");
  }
  return zones_[zone_id];
}

Result<uint64_t> ZonedNamespace::Remaining(uint32_t zone_id) const {
  if (zone_id >= zones_.size()) {
    return InvalidArgument("no such zone");
  }
  const Zone& zone = zones_[zone_id];
  return zone.start_lba + zone.capacity_lbas - zone.write_pointer;
}

Status ZonedNamespace::Write(uint32_t zone_id, uint64_t slba, ByteSpan data) {
  if (zone_id >= zones_.size()) {
    return InvalidArgument("no such zone");
  }
  Zone& zone = zones_[zone_id];
  if (zone.state == ZoneState::kFull) {
    return ResourceExhausted("zone is full");
  }
  if (data.empty() || data.size() % kLbaSize != 0) {
    return InvalidArgument("write must be whole LBAs");
  }
  if (slba != zone.write_pointer) {
    return InvalidArgument("ZNS violation: write not at the zone write pointer");
  }
  const uint64_t blocks = data.size() / kLbaSize;
  if (zone.write_pointer + blocks > zone.start_lba + zone.capacity_lbas) {
    return ResourceExhausted("write crosses the zone boundary");
  }
  RETURN_IF_ERROR(controller_->Write(nsid_, slba, data));
  zone.write_pointer += blocks;
  zone.state = zone.write_pointer == zone.start_lba + zone.capacity_lbas ? ZoneState::kFull
                                                                          : ZoneState::kOpen;
  return Status::Ok();
}

Result<uint64_t> ZonedNamespace::Append(uint32_t zone_id, ByteSpan data) {
  if (zone_id >= zones_.size()) {
    return InvalidArgument("no such zone");
  }
  const uint64_t assigned = zones_[zone_id].write_pointer;
  RETURN_IF_ERROR(Write(zone_id, assigned, data));
  return assigned;
}

Result<Bytes> ZonedNamespace::Read(uint32_t zone_id, uint64_t slba, uint32_t block_count) {
  if (zone_id >= zones_.size()) {
    return InvalidArgument("no such zone");
  }
  const Zone& zone = zones_[zone_id];
  if (slba < zone.start_lba || slba + block_count > zone.write_pointer) {
    return OutOfRange("read beyond the zone's written extent");
  }
  return controller_->Read(nsid_, slba, block_count);
}

Status ZonedNamespace::Reset(uint32_t zone_id) {
  if (zone_id >= zones_.size()) {
    return InvalidArgument("no such zone");
  }
  Zone& zone = zones_[zone_id];
  zone.write_pointer = zone.start_lba;
  zone.state = ZoneState::kEmpty;
  return Status::Ok();
}

Status ZonedNamespace::Open(uint32_t zone_id) {
  if (zone_id >= zones_.size()) {
    return InvalidArgument("no such zone");
  }
  Zone& zone = zones_[zone_id];
  if (zone.state == ZoneState::kFull) {
    return InvalidArgument("cannot open a full zone");
  }
  zone.state = ZoneState::kOpen;
  return Status::Ok();
}

Status ZonedNamespace::Finish(uint32_t zone_id) {
  if (zone_id >= zones_.size()) {
    return InvalidArgument("no such zone");
  }
  Zone& zone = zones_[zone_id];
  zone.write_pointer = zone.start_lba + zone.capacity_lbas;
  zone.state = ZoneState::kFull;
  return Status::Ok();
}

}  // namespace hyperion::nvme
