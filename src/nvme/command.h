// NVMe command set subset used by Hyperion.
//
// We model the semantics of the spec structures (64-byte SQE, 16-byte CQE)
// rather than their exact bit layout: opcode, namespace, LBA range, a data
// buffer in place of PRP lists, and the command identifier / status fields
// needed for queue-pair completion matching.

#ifndef HYPERION_SRC_NVME_COMMAND_H_
#define HYPERION_SRC_NVME_COMMAND_H_

#include <cstdint>

#include "src/common/buffer.h"
#include "src/common/bytes.h"

namespace hyperion::nvme {

enum class Opcode : uint8_t {
  kFlush = 0x00,
  kWrite = 0x01,
  kRead = 0x02,
  kIdentify = 0x06,
};

enum class CmdStatus : uint8_t {
  kSuccess = 0x0,
  kInvalidOpcode = 0x1,
  kInvalidField = 0x2,
  kLbaOutOfRange = 0x80,
  kInternalError = 0x6,
  kAbortedByTimeout = 0x7,   // host watchdog expired and aborted the command
  kMediaError = 0x81,        // unrecovered media error (ECC exhausted)
};

// Transient statuses are worth reissuing with a fresh command; the rest are
// deterministic rejections that would fail identically on retry.
constexpr bool IsTransient(CmdStatus status) {
  return status == CmdStatus::kAbortedByTimeout || status == CmdStatus::kMediaError;
}

struct Command {
  uint16_t cid = 0;       // command identifier, echoed in the completion
  Opcode opcode = Opcode::kFlush;
  uint32_t nsid = 1;      // namespace id (1-based, per the spec)
  uint64_t slba = 0;      // starting LBA
  uint32_t nlb = 0;       // number of logical blocks, 0-based per spec (0 => 1 block)

  // SGL stand-in: the write payload as a scatter-gather chain of shared
  // Buffer segments — posting a command references the caller's buffers
  // rather than staging a copy.
  BufferChain data;

  uint32_t BlockCount() const { return nlb + 1; }
};

struct Completion {
  uint16_t cid = 0;
  CmdStatus status = CmdStatus::kSuccess;
  uint16_t sq_id = 0;
  Bytes data;  // read payload
};

}  // namespace hyperion::nvme

#endif  // HYPERION_SRC_NVME_COMMAND_H_
