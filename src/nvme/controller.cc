#include "src/nvme/controller.h"

#include <algorithm>

#include "src/common/check.h"

namespace hyperion::nvme {

uint32_t Controller::AddNamespace(uint64_t capacity_lbas, FlashLatency latency) {
  namespaces_.push_back(std::make_unique<FlashDevice>(capacity_lbas, latency));
  return static_cast<uint32_t>(namespaces_.size());
}

Result<uint64_t> Controller::NamespaceCapacity(uint32_t nsid) const {
  if (nsid == 0 || nsid > namespaces_.size()) {
    return InvalidArgument("bad nsid");
  }
  return namespaces_[nsid - 1]->capacity_lbas();
}

uint16_t Controller::CreateQueuePair(uint16_t entries) {
  queues_.push_back(std::make_unique<QueuePair>(static_cast<uint16_t>(queues_.size() + 1),
                                                entries));
  staged_.emplace_back();
  return static_cast<uint16_t>(queues_.size());
}

Status Controller::Submit(uint16_t qid, Command cmd) {
  if (qid == 0 || qid > queues_.size()) {
    return InvalidArgument("bad qid");
  }
  return queues_[qid - 1]->sq.Push(std::move(cmd));
}

FlashDevice* Controller::GetNamespace(uint32_t nsid) {
  if (nsid == 0 || nsid > namespaces_.size()) {
    return nullptr;
  }
  return namespaces_[nsid - 1].get();
}

Completion Controller::Execute(const Command& cmd) {
  Completion cqe;
  cqe.cid = cmd.cid;
  FlashDevice* ns = GetNamespace(cmd.nsid);
  if (ns == nullptr) {
    cqe.status = CmdStatus::kInvalidField;
    return cqe;
  }
  switch (cmd.opcode) {
    case Opcode::kRead: {
      const uint32_t blocks = cmd.BlockCount();
      if (cmd.slba + blocks > ns->capacity_lbas()) {
        cqe.status = CmdStatus::kLbaOutOfRange;
        return cqe;
      }
      if (injector_ != nullptr && injector_->ShouldInject(sim::FaultSite::kNvmeCmdTimeout)) {
        // The command hangs at the device; the host-side watchdog expires
        // and posts an abort completion after the full timeout.
        obs::ScopedSpan timeout_span(tracer_, engine_, obs::Subsystem::kNvme, "nvme.timeout");
        engine_->Advance(command_timeout_);
        counters_.Add("nvme_cmd_timeouts", 1);
        cqe.status = CmdStatus::kAbortedByTimeout;
        return cqe;
      }
      const sim::Duration t = ns->ServiceTime(cmd.slba, blocks, /*is_write=*/false,
                                              engine_->Now());
      engine_->Advance(t);
      if (injector_ != nullptr && injector_->ShouldInject(sim::FaultSite::kNvmeReadError)) {
        // The media paid the access cost but ECC could not recover the page.
        counters_.Add("nvme_media_errors", 1);
        cqe.status = CmdStatus::kMediaError;
        return cqe;
      }
      cqe.data.resize(static_cast<size_t>(blocks) * kLbaSize);
      for (uint32_t i = 0; i < blocks; ++i) {
        CHECK_OK(ns->ReadBlock(cmd.slba + i,
                               MutableByteSpan(cqe.data.data() + static_cast<size_t>(i) * kLbaSize,
                                               kLbaSize)));
      }
      if (h_reads_ == kUnresolved) [[unlikely]] {
        h_reads_ = counters_.Intern("nvme_reads");
        h_read_bytes_ = counters_.Intern("nvme_read_bytes");
      }
      counters_.Increment(h_reads_);
      counters_.Add(h_read_bytes_, static_cast<uint64_t>(blocks) * kLbaSize);
      break;
    }
    case Opcode::kWrite: {
      const uint32_t blocks = cmd.BlockCount();
      if (cmd.slba + blocks > ns->capacity_lbas()) {
        cqe.status = CmdStatus::kLbaOutOfRange;
        return cqe;
      }
      if (cmd.data.size() != static_cast<size_t>(blocks) * kLbaSize) {
        cqe.status = CmdStatus::kInvalidField;
        return cqe;
      }
      if (injector_ != nullptr && injector_->ShouldInject(sim::FaultSite::kNvmeCmdTimeout)) {
        obs::ScopedSpan timeout_span(tracer_, engine_, obs::Subsystem::kNvme, "nvme.timeout");
        engine_->Advance(command_timeout_);
        counters_.Add("nvme_cmd_timeouts", 1);
        cqe.status = CmdStatus::kAbortedByTimeout;
        return cqe;
      }
      const sim::Duration t = ns->ServiceTime(cmd.slba, blocks, /*is_write=*/true,
                                              engine_->Now());
      engine_->Advance(t);
      // Walk the SG chain block by block: a block inside one segment is
      // written straight from the caller's buffer; only a block straddling
      // segment boundaries assembles through scratch.
      ChainReader reader(cmd.data);
      if (write_scratch_.size() != kLbaSize) {
        write_scratch_.resize(kLbaSize);
      }
      for (uint32_t i = 0; i < blocks; ++i) {
        ByteSpan block = reader.Next(kLbaSize, MutableByteSpan(write_scratch_));
        CHECK(reader.ok());
        CHECK_OK(ns->WriteBlock(cmd.slba + i, block));
      }
      if (h_writes_ == kUnresolved) [[unlikely]] {
        h_writes_ = counters_.Intern("nvme_writes");
        h_write_bytes_ = counters_.Intern("nvme_write_bytes");
      }
      counters_.Increment(h_writes_);
      counters_.Add(h_write_bytes_, static_cast<uint64_t>(blocks) * kLbaSize);
      break;
    }
    case Opcode::kFlush:
      // Durable by construction in the model; charge a small controller cost.
      engine_->Advance(2 * sim::kMicrosecond);
      counters_.Add("nvme_flushes", 1);
      break;
    case Opcode::kIdentify: {
      Bytes payload;
      PutU32(payload, static_cast<uint32_t>(namespaces_.size()));
      for (const auto& n : namespaces_) {
        PutU64(payload, n->capacity_lbas());
      }
      cqe.data = std::move(payload);
      break;
    }
    default:
      cqe.status = CmdStatus::kInvalidOpcode;
      break;
  }
  return cqe;
}

uint32_t Controller::ProcessSubmissions() {
  uint32_t executed = 0;
  for (auto& qp : queues_) {
    while (!qp->sq.Empty()) {
      // A full CQ stalls the controller, exactly as in hardware: the SQE
      // stays queued (completions are never dropped) until the host reaps.
      // Checking before the Pop keeps the command in the SQ — popping first
      // and failing the Post would lose it.
      if (qp->cq.Full()) {
        counters_.Add("nvme_cq_stalls", 1);
        break;
      }
      auto cmd = qp->sq.Pop();
      Completion cqe = Execute(*cmd);
      cqe.sq_id = qp->sq.id();
      CHECK_OK(qp->cq.Post(std::move(cqe)));
      ++executed;
    }
  }
  return executed;
}

Status Controller::SubmitCoalesced(uint16_t qid, Command cmd) {
  if (qid == 0 || qid > queues_.size()) {
    return InvalidArgument("bad qid");
  }
  auto& staged = staged_[qid - 1];
  const uint16_t free = queues_[qid - 1]->sq.FreeSlots();
  if (staged.size() >= free) {
    return ResourceExhausted("submission queue full");
  }
  staged.push_back(std::move(cmd));
  // Ring when the batch bound is reached or the SQ has no room to stage
  // more; otherwise leave it to the caller's flush policy (max-delay timer
  // or explicit RingDoorbell).
  if (staged.size() >= doorbell_batch_ || staged.size() == free) {
    return RingDoorbell(qid);
  }
  return Status::Ok();
}

Status Controller::RingDoorbell(uint16_t qid) {
  if (qid == 0 || qid > queues_.size()) {
    return InvalidArgument("bad qid");
  }
  auto& staged = staged_[qid - 1];
  if (staged.empty()) {
    return Status::Ok();
  }
  // One MMIO doorbell write publishes the whole batch: the per-ring cost is
  // paid once, however many SQEs ride it.
  if (h_doorbells_ == kUnresolved) [[unlikely]] {
    h_doorbells_ = counters_.Intern("nvme_doorbells");
    h_doorbell_sqes_ = counters_.Intern("nvme_doorbell_sqes");
  }
  counters_.Increment(h_doorbells_);
  counters_.Add(h_doorbell_sqes_, staged.size());
  engine_->Advance(doorbell_cost_);
  auto& sq = queues_[qid - 1]->sq;
  size_t pushed = 0;
  for (; pushed < staged.size(); ++pushed) {
    Status status = sq.Push(std::move(staged[pushed]));
    if (!status.ok()) {
      staged.erase(staged.begin(), staged.begin() + static_cast<ptrdiff_t>(pushed));
      return status;
    }
  }
  staged.clear();
  return Status::Ok();
}

size_t Controller::StagedCount(uint16_t qid) const {
  if (qid == 0 || qid > staged_.size()) {
    return 0;
  }
  return staged_[qid - 1].size();
}

std::optional<Completion> Controller::Reap(uint16_t qid) {
  if (qid == 0 || qid > queues_.size()) {
    return std::nullopt;
  }
  return queues_[qid - 1]->cq.Reap();
}

Completion Controller::ExecuteWithRetry(Command cmd) {
  for (uint32_t attempt = 0;; ++attempt) {
    Completion cqe;
    if (attempt == 0) {
      cqe = Execute(cmd);
    } else {
      // Recovery span: one per reissue, covering the repeated media trip.
      obs::ScopedSpan retry(tracer_, engine_, obs::Subsystem::kNvme, "nvme.retry");
      cqe = Execute(cmd);
    }
    if (cqe.status == CmdStatus::kSuccess) {
      if (attempt > 0) {
        counters_.Add("nvme_retry_recoveries", 1);
      }
      return cqe;
    }
    if (!IsTransient(cqe.status) || attempt >= retry_limit_) {
      if (IsTransient(cqe.status)) {
        counters_.Add("nvme_retries_exhausted", 1);
      }
      return cqe;
    }
    // Reissue with a fresh command identifier, per the spec's abort flow.
    counters_.Add("nvme_retries", 1);
    cmd.cid = next_cid_++;
  }
}

Result<Bytes> Controller::Read(uint32_t nsid, uint64_t slba, uint32_t block_count) {
  if (block_count == 0) {
    return InvalidArgument("zero-length read");
  }
  obs::ScopedSpan span(tracer_, engine_, obs::Subsystem::kNvme, "nvme.read");
  Command cmd;
  cmd.cid = next_cid_++;
  cmd.opcode = Opcode::kRead;
  cmd.nsid = nsid;
  cmd.slba = slba;
  cmd.nlb = block_count - 1;
  Completion cqe = ExecuteWithRetry(std::move(cmd));
  if (cqe.status != CmdStatus::kSuccess) {
    if (IsTransient(cqe.status)) {
      return DataLoss("NVMe read failed after retries");
    }
    return OutOfRange("NVMe read failed");
  }
  return std::move(cqe.data);
}

Status Controller::Write(uint32_t nsid, uint64_t slba, ByteSpan data) {
  // The command only lives for this synchronous call, so it can reference
  // the caller's span directly instead of staging a copy.
  return WriteChain(nsid, slba, BufferChain(Buffer::Borrowed(data)));
}

Status Controller::WriteChain(uint32_t nsid, uint64_t slba, BufferChain data) {
  if (data.empty() || data.size() % kLbaSize != 0) {
    return InvalidArgument("write must be a whole number of LBAs");
  }
  obs::ScopedSpan span(tracer_, engine_, obs::Subsystem::kNvme, "nvme.write");
  Command cmd;
  cmd.cid = next_cid_++;
  cmd.opcode = Opcode::kWrite;
  cmd.nsid = nsid;
  cmd.slba = slba;
  cmd.nlb = static_cast<uint32_t>(data.size() / kLbaSize) - 1;
  cmd.data = std::move(data);
  Completion cqe = ExecuteWithRetry(std::move(cmd));
  if (cqe.status != CmdStatus::kSuccess) {
    if (IsTransient(cqe.status)) {
      return DataLoss("NVMe write failed after retries");
    }
    return OutOfRange("NVMe write failed");
  }
  return Status::Ok();
}

Status Controller::Flush(uint32_t nsid) {
  obs::ScopedSpan span(tracer_, engine_, obs::Subsystem::kNvme, "nvme.flush");
  Command cmd;
  cmd.cid = next_cid_++;
  cmd.opcode = Opcode::kFlush;
  cmd.nsid = nsid;
  Completion cqe = Execute(cmd);
  if (cqe.status != CmdStatus::kSuccess) {
    return Internal("NVMe flush failed");
  }
  return Status::Ok();
}

}  // namespace hyperion::nvme
