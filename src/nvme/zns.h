// Zoned Namespace (ZNS) command set on top of the flash model (paper §2:
// the storage-API menu "NVMoF, KV, ZNS"; the authors also cite ZNS [32]
// and Zoned-Namespaces work [153] as the block-interface escape hatch).
//
// A zoned namespace divides the LBA space into fixed-size zones that must
// be written sequentially at the zone's write pointer. The interface
// models the spec's state machine (EMPTY -> OPEN -> FULL, explicit RESET)
// plus Zone Append — the contention-free variant where the device picks
// the LBA and returns it, which is what a log-structured engine on
// Hyperion would actually use.

#ifndef HYPERION_SRC_NVME_ZNS_H_
#define HYPERION_SRC_NVME_ZNS_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/nvme/controller.h"

namespace hyperion::nvme {

enum class ZoneState : uint8_t { kEmpty, kOpen, kFull };

struct Zone {
  uint64_t start_lba = 0;
  uint64_t capacity_lbas = 0;  // writable LBAs (== size in this model)
  uint64_t write_pointer = 0;  // next writable LBA
  ZoneState state = ZoneState::kEmpty;
};

// Zoned view over one namespace of a Controller. The zone bookkeeping is
// the device-side FTL-free contract: sequential-write enforcement replaces
// the garbage-collecting translation layer.
class ZonedNamespace {
 public:
  // Carves `nsid` into zones of `zone_lbas` each (trailing partial zone is
  // unused, as in real devices).
  static Result<ZonedNamespace> Create(Controller* controller, uint32_t nsid,
                                       uint64_t zone_lbas);

  uint32_t ZoneCount() const { return static_cast<uint32_t>(zones_.size()); }
  uint64_t zone_lbas() const { return zone_lbas_; }
  // LBAs reachable through the zoned view: ZoneCount() * zone_lbas(). The
  // namespace's trailing partial zone (if any) is outside every zone and
  // never addressable — appends cannot cross into it.
  uint64_t AddressableLbas() const { return zones_.size() * zone_lbas_; }
  Result<Zone> Describe(uint32_t zone_id) const;
  // Writable LBAs left before the zone is FULL (0 for full zones).
  Result<uint64_t> Remaining(uint32_t zone_id) const;

  // Sequential write at the zone's write pointer. kInvalidArgument if
  // `slba` != write pointer (the ZNS contract); kResourceExhausted when
  // the zone is full.
  Status Write(uint32_t zone_id, uint64_t slba, ByteSpan data);

  // Zone Append: device chooses the LBA; returns the assigned start LBA.
  Result<uint64_t> Append(uint32_t zone_id, ByteSpan data);

  // Reads anywhere below the write pointer.
  Result<Bytes> Read(uint32_t zone_id, uint64_t slba, uint32_t block_count);

  // Resets the zone to EMPTY (the explicit erase the host now controls).
  Status Reset(uint32_t zone_id);

  // Explicitly transitions EMPTY -> OPEN (bounded by max_open in the spec;
  // modelled unbounded here, but the transition is still required).
  Status Open(uint32_t zone_id);
  Status Finish(uint32_t zone_id);  // force FULL

 private:
  ZonedNamespace(Controller* controller, uint32_t nsid, uint64_t zone_lbas)
      : controller_(controller), nsid_(nsid), zone_lbas_(zone_lbas) {}

  Controller* controller_;
  uint32_t nsid_;
  uint64_t zone_lbas_;
  std::vector<Zone> zones_;
};

}  // namespace hyperion::nvme

#endif  // HYPERION_SRC_NVME_ZNS_H_
