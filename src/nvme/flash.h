// Flash media model backing a simulated NVMe device.
//
// Storage is an in-memory sparse block map (unwritten LBAs read back as
// zeroes, like a freshly formatted namespace). The latency model captures
// the properties the experiments depend on: asymmetric read/program
// latency, multi-channel parallelism (ops on different channels overlap),
// and serialization of the data across the channel bus.

#ifndef HYPERION_SRC_NVME_FLASH_H_
#define HYPERION_SRC_NVME_FLASH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/sim/time.h"

namespace hyperion::nvme {

constexpr uint32_t kLbaSize = 4096;  // bytes per logical block

struct FlashLatency {
  sim::Duration read_ns = 75 * sim::kMicrosecond;    // TLC page read
  sim::Duration program_ns = 15 * sim::kMicrosecond; // SLC-cache program
  sim::Duration channel_xfer_per_lba_ns = 3 * sim::kMicrosecond;  // ONFI bus
  uint32_t channels = 8;
};

class FlashDevice {
 public:
  FlashDevice(uint64_t capacity_lbas, FlashLatency latency = FlashLatency())
      : capacity_lbas_(capacity_lbas), latency_(latency),
        channel_free_at_(latency.channels, 0) {}

  uint64_t capacity_lbas() const { return capacity_lbas_; }
  const FlashLatency& latency() const { return latency_; }

  // Copies the block at `lba` into `out` (exactly kLbaSize bytes).
  Status ReadBlock(uint64_t lba, MutableByteSpan out) const;
  // Stores `data` (exactly kLbaSize bytes) at `lba`.
  Status WriteBlock(uint64_t lba, ByteSpan data);

  // Media service time for a `count`-block op starting at `lba`, beginning
  // at virtual time `now`. Accounts channel occupancy: the op completes when
  // its last channel finishes. Mutates per-channel free times.
  sim::Duration ServiceTime(uint64_t lba, uint32_t count, bool is_write, sim::SimTime now);

  // Number of blocks that have ever been written (for tests/metrics).
  size_t WrittenBlocks() const { return blocks_.size(); }

 private:
  uint64_t capacity_lbas_;
  FlashLatency latency_;
  std::unordered_map<uint64_t, Bytes> blocks_;
  std::vector<sim::SimTime> channel_free_at_;
};

}  // namespace hyperion::nvme

#endif  // HYPERION_SRC_NVME_FLASH_H_
