#include "src/load/pipeline.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace hyperion::load {

OverloadPipeline::OverloadPipeline(sim::Engine* engine, const OverloadPipelineOptions& options)
    : engine_(engine),
      options_(options),
      controller_(&device_),
      nic_gate_(options.nic_capacity),
      fpga_gate_(options.fpga_slots),
      admission_(options.admission),
      rx_batcher_(engine, options.rx_batch, options.rx_max_delay,
                  [this](std::vector<PendingIo> batch, bool) {
                    for (auto& io : batch) {
                      AdmitOne(std::move(io));
                    }
                  }),
      nvme_batcher_(engine, options.doorbell_batch, options.doorbell_max_delay,
                    [this](std::vector<PendingIo> batch, bool) {
                      SubmitBatch(std::move(batch));
                    }) {
  CHECK(engine_ != nullptr);
  nsid_ = controller_.AddNamespace(options_.device_lbas, options_.flash);
  qid_ = controller_.CreateQueuePair(options_.sq_entries);
  controller_.SetDoorbellCoalescing(options_.doorbell_batch);
  controller_.SetDoorbellCost(options_.doorbell_cost);
}

void OverloadPipeline::Offer(uint64_t seq, sim::SimTime deadline, LoadGen::DoneFn done) {
  counters_.Increment("nic_offered");
  PendingIo io;
  io.seq = seq;
  io.arrival = engine_->Now();
  io.deadline = deadline;
  io.done = std::move(done);
  if (!nic_gate_.TryAcquire()) {
    // Tail drop at the NIC: no buffer, no cost, immediate feedback (the
    // model's stand-in for the wire-level pushback a real NIC would apply).
    counters_.Increment("nic_dropped");
    io.done(Outcome::kRejected);
    return;
  }
  rx_batcher_.Add(std::move(io));
}

void OverloadPipeline::Reject(PendingIo io, const char* counter, bool release_fpga) {
  counters_.Increment(counter);
  if (release_fpga) {
    fpga_gate_.Release();
  }
  nic_gate_.Release();
  // The reject is cheap but not free: schedule the answer after the shell-
  // level bounce cost, without touching the device clock.
  engine_->ScheduleAfter(options_.reject_cost,
                         [done = std::move(io.done)] { done(Outcome::kRejected); });
}

void OverloadPipeline::AdmitOne(PendingIo io) {
  const sim::SimTime now = engine_->Now();
  if (options_.admission_enabled) {
    const sim::AdmissionDecision decision = admission_.Decide(now, device_.Now(), io.deadline);
    if (decision != sim::AdmissionDecision::kAdmit) {
      Reject(std::move(io),
             decision == sim::AdmissionDecision::kShedDeadline ? "pipe_shed_deadline"
                                                               : "pipe_shed_queue",
             /*release_fpga=*/false);
      return;
    }
  }
  if (!fpga_gate_.TryAcquire()) {
    // Downstream credits exhausted: backpressure surfaces as a reject here
    // rather than as unbounded queueing in front of the fabric.
    Reject(std::move(io), "fpga_backpressure", /*release_fpga=*/false);
    return;
  }
  counters_.Increment("pipe_admitted");
  nvme_batcher_.Add(std::move(io));
}

void OverloadPipeline::SubmitBatch(std::vector<PendingIo> batch) {
  const sim::SimTime now = engine_->Now();
  // Idle catch-up: the device clock trails event time while the pipeline
  // sits empty; work never starts in the past.
  if (device_.Now() < now) {
    device_.AdvanceTo(now);
  }
  bool submitted = false;
  for (auto& io : batch) {
    nvme::Command cmd;
    cmd.cid = next_cid_;
    cmd.opcode = nvme::Opcode::kRead;
    cmd.nsid = nsid_;
    cmd.slba = (io.seq * 97) % (options_.device_lbas - options_.read_blocks);
    cmd.nlb = options_.read_blocks - 1;
    const Status status = controller_.SubmitCoalesced(qid_, std::move(cmd));
    if (!status.ok()) {
      // SQ credits exhausted — the innermost backpressure signal.
      Reject(std::move(io), "nvme_rejected", /*release_fpga=*/true);
      continue;
    }
    inflight_.emplace(next_cid_, std::move(io));
    next_cid_ = next_cid_ == 0xffff ? 1 : static_cast<uint16_t>(next_cid_ + 1);
    submitted = true;
  }
  if (!submitted) {
    return;
  }
  // Publish any staged remainder (one doorbell for the whole batch), run
  // the device, and reap with one coalesced completion interrupt.
  CHECK_OK(controller_.RingDoorbell(qid_));
  controller_.ProcessSubmissions();
  const sim::SimTime finish = device_.Now();
  while (auto cqe = controller_.Reap(qid_)) {
    auto it = inflight_.find(cqe->cid);
    CHECK(it != inflight_.end());
    PendingIo io = std::move(it->second);
    inflight_.erase(it);
    if (options_.admission_enabled) {
      admission_.OnAdmitted(io.arrival, finish);
    }
    const bool ok = cqe->status == nvme::CmdStatus::kSuccess;
    engine_->ScheduleAt(finish, [this, ok, done = std::move(io.done)] {
      fpga_gate_.Release();
      nic_gate_.Release();
      counters_.Increment(ok ? "completed" : "io_failed");
      done(ok ? Outcome::kOk : Outcome::kFailed);
    });
  }
}

void OverloadPipeline::FlushAll() {
  rx_batcher_.Flush();
  nvme_batcher_.Flush();
}

void OverloadPipeline::SnapshotMetrics(obs::MetricsRegistry* registry) const {
  registry->ImportCounters(obs::Subsystem::kApp, counters_);
  registry->ImportCounters(obs::Subsystem::kApp, admission_.counters());
  registry->ImportCounters(obs::Subsystem::kNvme, controller_.counters());
  for (const auto& [name, value] : nic_gate_.counters().Snapshot()) {
    registry->Add(obs::Subsystem::kNet, "nic_" + name, value);
  }
  for (const auto& [name, value] : fpga_gate_.counters().Snapshot()) {
    registry->Add(obs::Subsystem::kFpga, "fpga_" + name, value);
  }
  for (const auto& [name, value] : rx_batcher_.counters().Snapshot()) {
    registry->Add(obs::Subsystem::kNet, "rx_" + name, value);
  }
  for (const auto& [name, value] : nvme_batcher_.counters().Snapshot()) {
    registry->Add(obs::Subsystem::kNvme, "doorbell_" + name, value);
  }
  registry->Record(obs::Subsystem::kApp, "admission_depth_p99", admission_.depth().P99());
  registry->Record(obs::Subsystem::kNvme, "doorbell_batch_p50",
                   nvme_batcher_.batch_sizes().P50());
}

}  // namespace hyperion::load
