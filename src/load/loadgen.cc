#include "src/load/loadgen.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace hyperion::load {

LoadGen::LoadGen(sim::Engine* engine, const LoadGenOptions& options, IssueFn issue)
    : engine_(engine), options_(options), issue_(std::move(issue)) {
  CHECK(engine_ != nullptr);
  CHECK(issue_ != nullptr);
  CHECK_GT(options_.total_requests, 0u);
  if (options_.open_loop) {
    CHECK_GT(options_.interarrival, 0u);
  } else {
    CHECK_GT(options_.clients, 0u);
  }
}

void LoadGen::Start() {
  if (options_.open_loop) {
    engine_->ScheduleAt(options_.start, [this] { IssueNext(); });
    return;
  }
  const uint32_t clients = std::min<uint32_t>(options_.clients, options_.total_requests);
  for (uint32_t c = 0; c < clients; ++c) {
    // Distinct start times need no tie-break, so the startup order is
    // trivially layout-invariant under the sharded engine.
    engine_->ScheduleAt(options_.start + uint64_t{c} * 7,
                        [this, c] { IssueClient(c); });
  }
}

void LoadGen::IssueNext() {
  if (next_seq_ >= options_.total_requests) {
    return;
  }
  const uint64_t seq = next_seq_++;
  // Chain the next arrival before issuing: an open loop waits for no one.
  if (next_seq_ < options_.total_requests) {
    engine_->ScheduleAfter(options_.interarrival, [this] { IssueNext(); });
  }
  Fire(seq, /*client=*/-1);
}

void LoadGen::IssueClient(uint32_t client) {
  if (next_seq_ >= options_.total_requests) {
    return;
  }
  Fire(next_seq_++, static_cast<int32_t>(client));
}

void LoadGen::Fire(uint64_t seq, int32_t client) {
  const sim::SimTime issued = engine_->Now();
  if (stats_.issued == 0) {
    stats_.first_issue = issued;
  }
  ++stats_.issued;
  const sim::SimTime deadline =
      options_.deadline == 0 ? sim::Engine::kNever : issued + options_.deadline;
  issue_(seq, deadline, [this, issued, deadline, client](Outcome outcome) {
    const sim::SimTime now = engine_->Now();
    stats_.last_completion = std::max(stats_.last_completion, now);
    switch (outcome) {
      case Outcome::kOk:
        if (deadline != sim::Engine::kNever && now > deadline) {
          // The server answered, but past the point the caller cared: for
          // goodput purposes this is wasted work, not a success.
          ++stats_.deadline_missed;
        } else {
          ++stats_.ok;
          latency_.Record(now - issued);
        }
        break;
      case Outcome::kRejected:
        ++stats_.rejected;
        break;
      case Outcome::kFailed:
        ++stats_.failed;
        break;
    }
    ++completed_;
    if (client >= 0 && next_seq_ < options_.total_requests) {
      // Always reissue via an event (even with zero think time): an inline
      // chain through a fast-rejecting sink would recurse once per request.
      engine_->ScheduleAfter(options_.think_time, [this, client] {
        IssueClient(static_cast<uint32_t>(client));
      });
    }
  });
}

}  // namespace hyperion::load
