#include "src/load/harness.h"

#include <algorithm>

#include "src/common/bytes.h"
#include "src/common/check.h"
#include "src/obs/export.h"

namespace hyperion::load {

namespace {

dpu::HyperionConfig ServerConfig(const OverloadClusterOptions& options) {
  dpu::HyperionConfig config;
  config.nvme_devices = 1;
  config.lbas_per_device = options.lbas_per_device;
  config.dram_bytes = options.dram_bytes;
  config.hbm_bytes = options.hbm_bytes;
  config.link_gbps = options.fabric.default_link_gbps;
  return config;
}

}  // namespace

OverloadCluster::ServerNode::ServerNode(OverloadCluster* cluster)
    : fabric(&clock, cluster->options_.fabric),
      dpu(&clock, &fabric, ServerConfig(cluster->options_)) {
  CHECK(dpu.Boot().ok());
  auto installed = dpu::HyperionServices::Install(&dpu, storage::KvBackend::kBTree);
  CHECK(installed.ok());
  services = std::move(*installed);
  if (cluster->options_.workload == OverloadWorkload::kLsmKv) {
    // A zoned namespace beside the block namespaces, formatted for the PR 6
    // LSM engine; the engine runs on the server's node clock so its I/O
    // costs land in the served-request latency like every other substrate.
    constexpr uint64_t kZoneLbas = 128;
    constexpr uint32_t kZones = 48;
    const uint32_t nsid = dpu.nvme().AddNamespace(kZones * kZoneLbas);
    auto zoned = nvme::ZonedNamespace::Create(&dpu.nvme(), nsid, kZoneLbas);
    CHECK_OK(zoned.status());
    zns = std::make_unique<nvme::ZonedNamespace>(std::move(zoned).value());
    auto formatted = storage::LsmEngine::Format(
        storage::LsmDeps{.engine = &clock, .zns = zns.get(), .injector = nullptr});
    CHECK_OK(formatted.status());
    lsm = std::move(*formatted);
    dpu.rpc().RegisterService(dpu::ServiceId::kLsmKv,
                              [this](uint16_t opcode, const Buffer& payload) {
                                return HandleLsm(opcode, payload);
                              });
  }
  endpoint = std::make_unique<dpu::ShardedRpcNode>(
      cluster->engine_.get(), cluster->ShardOf(0), &dpu.rpc(), &clock,
      cluster->options_.fabric, cluster->options_.fabric.default_link_gbps);
  endpoint->SetOverloadPolicy(cluster->options_.policy);
}

dpu::RpcResponse OverloadCluster::ServerNode::HandleLsm(uint16_t opcode,
                                                        const Buffer& payload) {
  clock.Advance(1200);  // shell datapath cost, same as the plain services
  ByteReader reader(payload);
  switch (opcode) {
    case dpu::KvOp::kPut: {
      const uint64_t key = reader.ReadU64();
      const uint32_t len = reader.ReadU32();
      if (!reader.Ok() || reader.remaining() < len) {
        return dpu::RpcResponse::Fail(InvalidArgument("malformed LSM put"));
      }
      const Bytes value = reader.ReadBytes(len);
      auto seq = lsm->Put(key, ByteSpan(value.data(), value.size()));
      if (!seq.ok()) {
        return dpu::RpcResponse::Fail(seq.status());
      }
      // The ack barrier: the response leaves only after the WAL group
      // holding this mutation is on media.
      Status synced = lsm->Sync();
      if (!synced.ok()) {
        return dpu::RpcResponse::Fail(synced);
      }
      return dpu::RpcResponse::Ok();
    }
    case dpu::KvOp::kGet: {
      const uint64_t key = reader.ReadU64();
      if (!reader.Ok()) {
        return dpu::RpcResponse::Fail(InvalidArgument("malformed LSM get"));
      }
      auto got = lsm->Get(key);
      if (!got.ok()) {
        return dpu::RpcResponse::Fail(got.status());
      }
      ByteWriter out;
      if (got->has_value()) {
        out.PutU8(1);
        out.PutU32(static_cast<uint32_t>((*got)->size()));
        out.PutBytes(ByteSpan((*got)->data(), (*got)->size()));
      } else {
        out.PutU8(0);
      }
      return dpu::RpcResponse::Ok(Buffer(out.Take()));
    }
    default:
      return dpu::RpcResponse::Fail(Unimplemented("unknown LSM opcode"));
  }
}

OverloadCluster::AnalyticsTenant::AnalyticsTenant(OverloadCluster* cluster)
    : exec(cluster->options_.analytics_spatial ? &clock : &cluster->server_->clock) {
  const OverloadClusterOptions& opts = cluster->options_;
  if (!opts.scan_faults.empty()) {
    injector = std::make_unique<sim::FaultInjector>(exec, opts.scan_faults,
                                                    opts.scan_fault_seed);
  }
  nvme = std::make_unique<nvme::Controller>(exec);
  if (injector) {
    nvme->SetFaultInjector(injector.get());
  }
  fpga::FabricConfig fabric_config;
  fabric_config.regions = opts.scan_fabric_regions;
  fabric = std::make_unique<fpga::Fabric>(exec, fabric_config);
  if (injector) {
    fabric->SetFaultInjector(injector.get());
  }
  scheduler = std::make_unique<fpga::SlotScheduler>(exec, fabric.get());

  // Deterministic Parquet table: sequential order ids (tight per-group zone
  // maps, so range predicates prune), mixed-sign amounts, 7 regions.
  table_rows = opts.scan_table_rows;
  std::vector<int64_t> order_id(table_rows);
  std::vector<int64_t> amount(table_rows);
  std::vector<std::string> region(table_rows);
  for (uint64_t i = 0; i < table_rows; ++i) {
    order_id[i] = static_cast<int64_t>(i);
    amount[i] = static_cast<int64_t>((i * 0x9e3779b9ull + 12345) % 100000) - 50000;
    region[i] = std::string("r") + static_cast<char>('0' + (i * 2654435761ull >> 7) % 7);
  }
  format::Schema schema = {{"order_id", format::ColumnType::kInt64},
                           {"amount", format::ColumnType::kInt64},
                           {"region", format::ColumnType::kString}};
  std::vector<format::ColumnData> columns;
  columns.emplace_back(std::move(order_id));
  columns.emplace_back(std::move(amount));
  columns.emplace_back(std::move(region));
  auto batch = format::RecordBatch::Make(std::move(schema), std::move(columns));
  CHECK_OK(batch.status());
  format::ParquetWriteOptions write_options;
  write_options.rows_per_group = opts.scan_rows_per_group;
  auto file = format::WriteParquet(*batch, write_options);
  CHECK_OK(file.status());
  table_groups = static_cast<uint32_t>((table_rows + opts.scan_rows_per_group - 1) /
                                       opts.scan_rows_per_group);
  const uint64_t lbas = (file->size() + nvme::kLbaSize - 1) / nvme::kLbaSize + 8;
  const uint32_t nsid = nvme->AddNamespace(lbas);
  auto stored = format::NvmeParquetFile::Store(nvme.get(), nsid, 0, *file);
  CHECK_OK(stored.status());
  table = std::make_unique<format::NvmeParquetFile>(std::move(*stored));
  kernel = std::make_unique<format::FpgaScanKernel>(exec, fabric.get(), scheduler.get());

  auto handler = [this](uint16_t opcode, const Buffer& payload) {
    return HandleScan(opcode, payload);
  };
  if (opts.analytics_spatial) {
    // Spatial multiplexing: the analytics tenant is its own pipeline (own
    // RpcServer, own node clock) on node 0's shard — KV head-of-line
    // behaviour cannot leak into it, nor it into KV.
    rpc.RegisterService(dpu::ServiceId::kScan, handler);
    endpoint = std::make_unique<dpu::ShardedRpcNode>(
        cluster->engine_.get(), cluster->ShardOf(0), &rpc, &clock, opts.fabric,
        opts.fabric.default_link_gbps);
  } else {
    // Time-shared contrast arm: scans ride the KV pipeline and advance the
    // KV server's clock — every queued KV request behind a scan waits.
    cluster->server_->dpu.rpc().RegisterService(dpu::ServiceId::kScan, handler);
  }
}

dpu::RpcResponse OverloadCluster::AnalyticsTenant::HandleScan(uint16_t opcode,
                                                              const Buffer& payload) {
  exec->Advance(1200);  // shell datapath cost, same as the plain services
  switch (opcode) {
    case dpu::ScanOp::kQuery: {
      auto query = format::ParseScanQuery(payload);
      if (!query.ok()) {
        return dpu::RpcResponse::Fail(query.status());
      }
      auto result = kernel->Execute(*table, *query);
      if (!result.ok()) {
        return dpu::RpcResponse::Fail(result.status());
      }
      return dpu::RpcResponse::Ok(Buffer(format::SerializeScanResult(*result)));
    }
    case dpu::ScanOp::kTableInfo: {
      ByteWriter out(20);
      out.PutU64(table_rows);
      out.PutU64(table->file_size());
      out.PutU32(table_groups);
      return dpu::RpcResponse::Ok(Buffer(out.Take()));
    }
    default:
      return dpu::RpcResponse::Fail(Unimplemented("unknown scan opcode"));
  }
}

OverloadCluster::ClientNode::ClientNode(OverloadCluster* cluster, uint32_t id, bool analytics)
    : id(id), analytics(analytics) {
  endpoint = std::make_unique<dpu::ShardedRpcNode>(
      cluster->engine_.get(), cluster->ShardOf(id), /*server=*/nullptr, &clock,
      cluster->options_.fabric, cluster->options_.fabric.default_link_gbps);
}

OverloadCluster::OverloadCluster(const OverloadClusterOptions& options) : options_(options) {
  CHECK_GT(options_.num_clients, 0u);
  CHECK_GT(options_.requests_per_client, 0u);
  CHECK_GT(options_.read_blocks, 0u);
  const uint32_t nodes = num_nodes();
  if (options_.num_shards == 0 || options_.num_shards > nodes) {
    options_.num_shards = nodes;
  }

  sim::ParallelEngineOptions popts;
  popts.num_shards = options_.num_shards;
  popts.lookahead_floor = options_.lookahead_floor;
  popts.use_threads = options_.use_threads;
  engine_ = std::make_unique<sim::ParallelEngine>(popts);

  // Id-ordered construction pins the cross-shard source order: server is
  // node 0 (KV endpoint first, analytics endpoint second on the same
  // shard), clients 1..N, analytics clients N+1..N+M.
  server_ = std::make_unique<ServerNode>(this);
  if (options_.analytics_clients > 0) {
    analytics_ = std::make_unique<AnalyticsTenant>(this);
  }
  const uint32_t total_clients = options_.num_clients + options_.analytics_clients;
  clients_.reserve(total_clients);
  for (uint32_t id = 1; id <= total_clients; ++id) {
    clients_.push_back(
        std::make_unique<ClientNode>(this, id, /*analytics=*/id > options_.num_clients));
  }
}

OverloadCluster::~OverloadCluster() = default;

uint32_t OverloadCluster::ShardOf(uint32_t node) const {
  return static_cast<uint32_t>(uint64_t{node} * options_.num_shards / num_nodes());
}

OverloadResult OverloadCluster::Run() {
  CHECK(!ran_);
  ran_ = true;
  if (options_.workload == OverloadWorkload::kLsmKv) {
    // Warm dataset, installed directly (no wire) before the measured phase.
    for (uint64_t key = 0; key < options_.kv_key_space; ++key) {
      Bytes value(options_.kv_value_bytes, static_cast<uint8_t>(key * 131 + 17));
      CHECK_OK(server_->lsm->Put(key, ByteSpan(value.data(), value.size())).status());
    }
    CHECK_OK(server_->lsm->Sync());
  }
  // Clients start once the server has drained boot from its pipeline (the
  // base is layout-invariant: boot never touches shard engines).
  const sim::SimTime start_base = server_->clock.Now() + 1000;
  const uint64_t node_stride =
      7ull * (options_.open_loop ? 1 : std::max<uint32_t>(1, options_.closed_clients));
  for (auto& owned : clients_) {
    ClientNode* client = owned.get();
    if (client->analytics) {
      StartScanClient(client, start_base, node_stride);
    } else {
      StartKvClient(client, start_base, node_stride);
    }
  }
  engine_->Run();
  return Collect(start_base);
}

void OverloadCluster::StartKvClient(ClientNode* client, sim::SimTime start_base,
                                    uint64_t node_stride) {
  const uint64_t max_slba = options_.lbas_per_device - options_.read_blocks;
  {
    LoadGenOptions gopts;
    gopts.open_loop = options_.open_loop;
    gopts.interarrival = options_.interarrival;
    gopts.clients = options_.closed_clients;
    gopts.think_time = options_.think_time;
    gopts.total_requests = options_.requests_per_client;
    gopts.deadline = options_.deadline;
    gopts.start = start_base + (client->id - 1) * node_stride;
    client->gen = std::make_unique<LoadGen>(
        &engine_->shard(ShardOf(client->id)), gopts,
        [this, client, max_slba](uint64_t seq, sim::SimTime deadline, LoadGen::DoneFn done) {
          dpu::RpcRequest request;
          if (options_.workload == OverloadWorkload::kLsmKv) {
            // Deterministic per-(client, seq) key and op mix: layout cannot
            // change what any client issues.
            const uint64_t h =
                (seq * 0x9e3779b97f4a7c15ull) ^ (uint64_t{client->id} << 32);
            const uint64_t key = h % options_.kv_key_space;
            const bool write = (h >> 33) % 100 < options_.kv_write_pct;
            request.service = dpu::ServiceId::kLsmKv;
            ByteWriter payload;
            if (write) {
              request.opcode = dpu::KvOp::kPut;
              Bytes value(options_.kv_value_bytes,
                          static_cast<uint8_t>(h >> 56 | 1));
              payload.PutU64(key);
              payload.PutU32(static_cast<uint32_t>(value.size()));
              payload.PutBytes(ByteSpan(value.data(), value.size()));
            } else {
              request.opcode = dpu::KvOp::kGet;
              payload.PutU64(key);
            }
            request.payload = Buffer(payload.Take());
          } else {
            request.service = dpu::ServiceId::kBlock;
            request.opcode = dpu::BlockOp::kRead;
            ByteWriter payload(16);
            payload.PutU32(1);  // nsid
            payload.PutU64((seq * 97 + uint64_t{client->id} * 7919) % max_slba);
            payload.PutU32(options_.read_blocks);
            request.payload = Buffer(payload.Take());
          }
          request.deadline = deadline;  // kNever == kNoDeadline: none
          client->endpoint->CallAsync(
              server_->endpoint.get(), request,
              [done = std::move(done)](Result<dpu::RpcResponse> result) {
                if (!result.ok()) {
                  done(Outcome::kFailed);
                  return;
                }
                if (result->status.ok()) {
                  done(Outcome::kOk);
                  return;
                }
                done(result->status.code() == StatusCode::kResourceExhausted
                         ? Outcome::kRejected
                         : Outcome::kFailed);
              });
        });
    client->gen->Start();
  }
}

void OverloadCluster::StartScanClient(ClientNode* client, sim::SimTime start_base,
                                      uint64_t node_stride) {
  LoadGenOptions gopts;
  gopts.open_loop = true;
  gopts.interarrival = options_.scan_interarrival;
  gopts.total_requests = options_.scan_requests_per_client;
  gopts.deadline = options_.scan_deadline;
  gopts.start = start_base + (client->id - 1) * node_stride;
  dpu::ShardedRpcNode* target =
      options_.analytics_spatial ? analytics_->endpoint.get() : server_->endpoint.get();
  const uint64_t table_rows = options_.scan_table_rows;
  client->gen = std::make_unique<LoadGen>(
      &engine_->shard(ShardOf(client->id)), gopts,
      [this, client, target, table_rows](uint64_t seq, sim::SimTime deadline,
                                         LoadGen::DoneFn done) {
        // Deterministic per-(client, seq) query: the kernel kind rotates
        // (forcing ICAP swaps on a small fabric) and the predicate range
        // walks the order-id space (zone maps prune most groups).
        const uint64_t h = (seq * 0x9e3779b97f4a7c15ull) ^ (uint64_t{client->id} << 32);
        format::ScanQuery query;
        query.kind = static_cast<format::ScanKernelKind>(h % format::kScanKernelKindCount);
        query.filter_column = "order_id";
        const uint64_t span = std::max<uint64_t>(1, table_rows / 8);
        const uint64_t lo = (h >> 8) % (table_rows - span + 1);
        query.lo = static_cast<int64_t>(lo);
        query.hi = static_cast<int64_t>(lo + span - 1);
        query.value_column = "amount";
        query.group_column = "region";
        dpu::RpcRequest request;
        request.service = dpu::ServiceId::kScan;
        request.opcode = dpu::ScanOp::kQuery;
        request.payload = Buffer(format::SerializeScanQuery(query));
        request.deadline = deadline;
        client->endpoint->CallAsync(
            target, request,
            [client, h, done = std::move(done)](Result<dpu::RpcResponse> result) {
              if (!result.ok()) {
                done(Outcome::kFailed);
                return;
              }
              if (!result->status.ok()) {
                done(result->status.code() == StatusCode::kResourceExhausted
                         ? Outcome::kRejected
                         : Outcome::kFailed);
                return;
              }
              auto scan = format::ParseScanResult(result->payload);
              if (!scan.ok()) {
                done(Outcome::kFailed);
                return;
              }
              // Commutative folds only: completion order across clients is
              // not layout-pinned, per-(client, seq) salting keeps the
              // fingerprint sensitive to which query produced what.
              client->scan_fingerprint ^=
                  scan->output.Fingerprint() ^ (h * 0x2545f4914f6cdd1dull);
              client->scan_rows_matched += scan->output.rows_matched;
              client->scan_chunk_bytes += scan->stats.chunk_bytes_fetched;
              client->scan_device_bytes += scan->stats.device_bytes_moved;
              client->scan_groups_skipped += scan->stats.groups_skipped;
              if (scan->stats.reconfigured) {
                ++client->scan_reconfigs;
                client->reconfig_latency.Record(scan->stats.reconfig_ns);
              }
              done(Outcome::kOk);
            });
      });
  client->gen->Start();
}

OverloadResult OverloadCluster::Collect(sim::SimTime start_base) {
  OverloadResult result;
  sim::Histogram reconfig;
  for (auto& client : clients_) {
    const LoadStats& stats = client->gen->stats();
    if (stats.last_completion > start_base) {
      result.makespan_ns = std::max(result.makespan_ns, stats.last_completion - start_base);
    }
    if (client->analytics) {
      result.scan_issued += stats.issued;
      result.scan_ok += stats.ok;
      result.scan_rejected += stats.rejected;
      result.scan_failed += stats.failed + stats.deadline_missed;
      result.scan_fingerprint ^= client->scan_fingerprint;
      result.scan_rows_matched += client->scan_rows_matched;
      result.scan_chunk_bytes += client->scan_chunk_bytes;
      result.scan_device_bytes += client->scan_device_bytes;
      result.scan_groups_skipped += client->scan_groups_skipped;
      result.scan_reconfigs += client->scan_reconfigs;
      reconfig.Merge(client->reconfig_latency);
      merged_scan_latency_.Merge(client->gen->latency());
    } else {
      result.issued += stats.issued;
      result.ok += stats.ok;
      result.rejected += stats.rejected;
      result.failed += stats.failed;
      result.deadline_missed += stats.deadline_missed;
      merged_latency_.Merge(client->gen->latency());
    }
  }
  const sim::Counters& server = server_->endpoint->counters();
  result.served = server.Get("rpc_async_served");
  result.admitted = server.Get("rpc_admitted");
  result.shed_queue = server.Get("rpc_shed_queue");
  result.shed_deadline = server.Get("rpc_shed_deadline");
  result.messages = engine_->stats().messages;
  result.server_clock_ns = server_->clock.Now();
  result.latency_count = merged_latency_.count();
  result.latency_p50_ns = merged_latency_.P50();
  result.latency_p99_ns = merged_latency_.P99();
  result.latency_max_ns = merged_latency_.max();
  result.scan_reconfig_p50_ns = reconfig.P50();
  result.scan_reconfig_max_ns = reconfig.max();
  result.scan_latency_count = merged_scan_latency_.count();
  result.scan_latency_p50_ns = merged_scan_latency_.P50();
  result.scan_latency_p99_ns = merged_scan_latency_.P99();
  result.scan_latency_max_ns = merged_scan_latency_.max();
  return result;
}

void OverloadCluster::SnapshotMetrics(obs::MetricsRegistry* registry) const {
  registry->ImportCounters(obs::Subsystem::kRpc, server_->endpoint->counters());
  registry->ImportCounters(obs::Subsystem::kRpc, server_->dpu.rpc().counters());
  registry->ImportCounters(obs::Subsystem::kNvme, server_->dpu.nvme().counters());
  if (const sim::AdmissionController* admission = server_->endpoint->admission()) {
    registry->ImportCounters(obs::Subsystem::kRpc, admission->counters());
    registry->Record(obs::Subsystem::kRpc, "admission_depth_p99", admission->depth().P99());
  }
  for (const auto& client : clients_) {
    registry->ImportCounters(obs::Subsystem::kRpc, client->endpoint->counters());
  }
  if (analytics_) {
    registry->ImportCounters(obs::Subsystem::kFpga, analytics_->scheduler->counters());
    registry->ImportCounters(obs::Subsystem::kFpga, analytics_->fabric->counters());
    registry->ImportCounters(obs::Subsystem::kNvme, analytics_->nvme->counters());
  }
  obs::ImportParallelStats(registry, engine_->stats());
}

}  // namespace hyperion::load
