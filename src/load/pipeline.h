// Single-engine overload datapath: NIC -> admission -> FPGA -> flash (PR 5).
//
// OverloadPipeline wires the flow-control primitives of sim/flow.h into the
// Fig. 2 request path, end to end, on one event engine:
//
//   NIC ingress      CreditGate bounding total in-flight requests; a frame
//                    arriving with no credit is tail-dropped at the NIC.
//   RX coalescing    Batcher<Arrival>: frames accumulate for up to rx_batch
//                    or rx_max_delay before one batched pass hands them on.
//   Admission        AdmissionController against the *device* busy-until
//                    clock: bounded pending queue, backlog bound, deadline-
//                    aware shedding. A shed costs reject_cost of event time
//                    and never touches the device.
//   FPGA stage       CreditGate of pipeline slots between admission and the
//                    NVMe queue (credit exhaustion = backpressure reject).
//   NVMe             Batcher<PendingIo> + the controller's doorbell
//                    coalescing: K SQEs ride one doorbell ring, the batch
//                    executes on the device cost clock, and one coalesced
//                    completion event releases credits and reports back.
//
// Two clocks, by design: the host engine holds *events* (arrivals, batch
// timers, completions) and must never be advanced inline; the device engine
// is a pure cost clock (never holds events) that the NVMe controller
// advances inline, exactly the node-clock idiom of ShardedRpcNode.

#ifndef HYPERION_SRC_LOAD_PIPELINE_H_
#define HYPERION_SRC_LOAD_PIPELINE_H_

#include <cstdint>
#include <map>
#include <memory>

#include "src/load/loadgen.h"
#include "src/nvme/controller.h"
#include "src/obs/metrics.h"
#include "src/sim/engine.h"
#include "src/sim/flow.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace hyperion::load {

struct OverloadPipelineOptions {
  // NIC ingress bound: total requests in flight anywhere in the pipeline.
  uint32_t nic_capacity = 256;
  // NIC RX frame coalescing.
  uint32_t rx_batch = 4;
  sim::Duration rx_max_delay = 2 * sim::kMicrosecond;
  // Admission control (the with/without axis of the E13 curves).
  bool admission_enabled = true;
  sim::AdmissionParams admission;
  sim::Duration reject_cost = 200;
  // FPGA pipeline slots between admission and the NVMe submission queue.
  uint32_t fpga_slots = 64;
  // NVMe doorbell coalescing: SQEs per ring and the max staging delay.
  uint16_t doorbell_batch = 4;
  sim::Duration doorbell_max_delay = 2 * sim::kMicrosecond;
  sim::Duration doorbell_cost = 500;
  uint16_t sq_entries = 256;
  // Media model behind the queue pair.
  uint64_t device_lbas = 65536;
  uint32_t read_blocks = 1;
  nvme::FlashLatency flash;
};

class OverloadPipeline {
 public:
  OverloadPipeline(sim::Engine* engine, const OverloadPipelineOptions& options);

  // NIC ingress for request `seq` with an absolute `deadline`
  // (sim::Engine::kNever = none); signature matches LoadGen::IssueFn.
  void Offer(uint64_t seq, sim::SimTime deadline, LoadGen::DoneFn done);

  // Manually drains both coalescers (tests; the max-delay timers make this
  // unnecessary in a driven run).
  void FlushAll();

  sim::Engine* engine() { return engine_; }
  sim::Engine& device_clock() { return device_; }
  nvme::Controller& controller() { return controller_; }
  sim::CreditGate& nic_gate() { return nic_gate_; }
  sim::CreditGate& fpga_gate() { return fpga_gate_; }
  sim::AdmissionController& admission() { return admission_; }

  // nic_offered / nic_dropped / pipe_admitted / pipe_shed_queue /
  // pipe_shed_deadline / fpga_backpressure / nvme_rejected / completed /
  // io_failed.
  const sim::Counters& counters() const { return counters_; }

  // Queue depths, sheds, and batch sizes from every stage, under stable
  // names: load.* (pipeline counters), plus the admission controller's,
  // both credit gates' (nic_/fpga_ prefixed), both batchers' (rx_/nvme_
  // prefixed), and the NVMe controller's counters.
  void SnapshotMetrics(obs::MetricsRegistry* registry) const;

 private:
  struct PendingIo {
    uint64_t seq = 0;
    sim::SimTime arrival = 0;  // NIC arrival (admission's queueing anchor)
    sim::SimTime deadline = sim::Engine::kNever;
    LoadGen::DoneFn done;
  };

  void Reject(PendingIo io, const char* counter, bool release_fpga);
  void AdmitOne(PendingIo io);
  void SubmitBatch(std::vector<PendingIo> batch);

  sim::Engine* engine_;
  OverloadPipelineOptions options_;
  sim::Engine device_;  // pure cost clock; never holds events
  nvme::Controller controller_;
  uint16_t qid_ = 0;
  uint32_t nsid_ = 0;
  sim::CreditGate nic_gate_;
  sim::CreditGate fpga_gate_;
  sim::AdmissionController admission_;
  sim::Batcher<PendingIo> rx_batcher_;
  sim::Batcher<PendingIo> nvme_batcher_;
  std::map<uint16_t, PendingIo> inflight_;  // cid -> request at the device
  uint16_t next_cid_ = 1;
  sim::Counters counters_;
};

}  // namespace hyperion::load

#endif  // HYPERION_SRC_LOAD_PIPELINE_H_
