// Sharded overload harness: open-loop clients vs one Hyperion server (PR 5).
//
// OverloadCluster is the determinism-grade E13 experiment: node 0 is a full
// Hyperion DPU serving NVMe-oF-style block reads, nodes 1..N are client
// nodes (endpoint-only, no server) each running a LoadGen that issues
// deadline-stamped BlockOp::kRead RPCs across the sharded fabric. The
// server's RpcOverloadPolicy is the with/without-admission-control axis:
//
//   OFF  arrivals queue on the server's node clock without bound; latency
//        grows with offered load (the open-loop hockey stick).
//   ON   the bounded pending queue + deadline shedding answer doomed
//        requests with kResourceExhausted after reject_cost only, keeping
//        admitted-request latency bounded and goodput at the plateau.
//
// Layout invariance is inherited from the PDES layer exactly as KvCluster:
// nodes share no mutable state, construction order pins source order, and
// every client start time is distinct — OverloadResult is bit-identical
// across num_shards x threads (tests/load_test.cc pins {1, 2, 4} x on/off).

#ifndef HYPERION_SRC_LOAD_HARNESS_H_
#define HYPERION_SRC_LOAD_HARNESS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/dpu/hyperion.h"
#include "src/dpu/rpc.h"
#include "src/dpu/services.h"
#include "src/format/scan_kernel.h"
#include "src/fpga/fabric.h"
#include "src/fpga/scheduler.h"
#include "src/load/loadgen.h"
#include "src/nvme/zns.h"
#include "src/obs/metrics.h"
#include "src/sim/fault.h"
#include "src/sim/parallel.h"
#include "src/sim/stats.h"
#include "src/storage/lsm_engine.h"

namespace hyperion::load {

// What the server serves and the clients issue.
enum class OverloadWorkload {
  kBlockRead,  // NVMe-oF-style BlockOp::kRead (the original E13 shape)
  kLsmKv,      // the PR 6 LSM engine served over RPC: KvOp::kPut / kGet
};

struct OverloadClusterOptions {
  uint32_t num_clients = 3;  // client nodes; node 0 is the server
  // 0 defaults to one shard per node; nodes map to shards in contiguous
  // blocks (same scheme as KvCluster).
  uint32_t num_shards = 0;
  bool use_threads = true;
  sim::Duration lookahead_floor = 100;
  net::FabricParams fabric;
  // Per-client arrival process (LoadGen semantics).
  bool open_loop = true;
  uint32_t requests_per_client = 64;
  sim::Duration interarrival = 20 * sim::kMicrosecond;
  uint32_t closed_clients = 4;  // closed loop: concurrency per client node
  sim::Duration think_time = 0;
  sim::Duration deadline = 1 * sim::kMillisecond;  // relative; 0 = none
  uint32_t read_blocks = 1;
  // Workload selection (kLsmKv: the server formats an LsmEngine on a zoned
  // namespace and serves it under ServiceId::kLsmKv; puts are acknowledged
  // only after their WAL group sync, so every kOk is durable).
  OverloadWorkload workload = OverloadWorkload::kBlockRead;
  uint64_t kv_key_space = 256;   // preloaded before the measured phase
  uint32_t kv_write_pct = 50;    // percent of issued ops that are puts
  uint32_t kv_value_bytes = 64;
  // Server-side overload policy (the experiment's independent variable).
  dpu::RpcOverloadPolicy policy;
  // Trimmed server DPU (communication structure, not capacity).
  uint64_t lbas_per_device = 32768;
  uint64_t dram_bytes = 64ull << 20;
  uint64_t hbm_bytes = 16ull << 20;
  // -- Analytics tenant (PR 10) ----------------------------------------------
  // `analytics_clients` extra client nodes (ids num_clients+1 ..) issue
  // ScanOp::kQuery against a Parquet table on the server's NVMe, scanned by
  // FPGA kernels. With analytics_spatial the scans run behind a *second*
  // endpoint on node 0 with its own node clock — spatial multiplexing on
  // the same fabric, zero head-of-line coupling with KV. Without it the
  // scan handler shares the KV pipeline (the time-shared contrast arm).
  uint32_t analytics_clients = 0;
  uint32_t scan_requests_per_client = 8;
  sim::Duration scan_interarrival = 200 * sim::kMicrosecond;
  sim::Duration scan_deadline = 0;  // relative; 0 = none
  uint64_t scan_table_rows = 32768;
  uint64_t scan_rows_per_group = 2048;
  bool analytics_spatial = true;
  uint32_t scan_fabric_regions = 2;
  // Fault plan evaluated on the analytics exec clock, hooked to the scan
  // path's NVMe controller and fabric (PR 1 semantics).
  sim::FaultPlan scan_faults;
  uint64_t scan_fault_seed = 0x5eed;
};

// Deterministic run snapshot; equality across shard layouts is the
// regression oracle.
struct OverloadResult {
  uint64_t issued = 0;
  uint64_t ok = 0;
  uint64_t rejected = 0;
  uint64_t failed = 0;
  uint64_t deadline_missed = 0;
  // Server-side accounting.
  uint64_t served = 0;
  uint64_t admitted = 0;
  uint64_t shed_queue = 0;
  uint64_t shed_deadline = 0;
  uint64_t messages = 0;
  sim::SimTime server_clock_ns = 0;
  sim::SimTime makespan_ns = 0;
  // Client-observed latency of in-deadline successes, merged across the KV
  // client nodes only (analytics latency is reported separately below).
  uint64_t latency_count = 0;
  uint64_t latency_p50_ns = 0;
  uint64_t latency_p99_ns = 0;
  uint64_t latency_max_ns = 0;
  // -- Analytics tenant (zero when analytics_clients == 0) -------------------
  uint64_t scan_issued = 0;
  uint64_t scan_ok = 0;
  uint64_t scan_rejected = 0;
  uint64_t scan_failed = 0;
  uint64_t scan_rows_matched = 0;
  // Order-independent fold of per-query ScanOutput fingerprints salted by
  // (client, seq) — the bit-identity witness across shard layouts.
  uint64_t scan_fingerprint = 0;
  uint64_t scan_chunk_bytes = 0;   // reader-requested bytes (footer + chunks)
  uint64_t scan_device_bytes = 0;  // LBA-rounded device traffic
  uint64_t scan_groups_skipped = 0;
  uint64_t scan_reconfigs = 0;     // queries that paid an ICAP load
  uint64_t scan_reconfig_p50_ns = 0;
  uint64_t scan_reconfig_max_ns = 0;
  uint64_t scan_latency_count = 0;
  uint64_t scan_latency_p50_ns = 0;
  uint64_t scan_latency_p99_ns = 0;
  uint64_t scan_latency_max_ns = 0;

  bool operator==(const OverloadResult&) const = default;
};

class OverloadCluster {
 public:
  explicit OverloadCluster(const OverloadClusterOptions& options);
  OverloadCluster(const OverloadCluster&) = delete;
  OverloadCluster& operator=(const OverloadCluster&) = delete;
  ~OverloadCluster();

  uint32_t num_nodes() const {
    return options_.num_clients + options_.analytics_clients + 1;
  }
  uint32_t ShardOf(uint32_t node) const;

  // Runs every client to completion and snapshots the result. One-shot.
  OverloadResult Run();

  dpu::ShardedRpcNode& server_endpoint() { return *server_->endpoint; }
  const sim::Histogram& merged_latency() const { return merged_latency_; }
  const sim::Histogram& merged_scan_latency() const { return merged_scan_latency_; }
  // Analytics-side fault accounting (null when analytics_clients == 0).
  const sim::FaultInjector* scan_injector() const {
    return analytics_ ? analytics_->injector.get() : nullptr;
  }

  // Client + server counters and the parallel engine's tallies, under the
  // PR 4 registry (valid after Run()).
  void SnapshotMetrics(obs::MetricsRegistry* registry) const;

 private:
  struct ServerNode {
    explicit ServerNode(OverloadCluster* cluster);
    dpu::RpcResponse HandleLsm(uint16_t opcode, const Buffer& payload);
    sim::Engine clock;  // private cost engine (never holds events)
    net::Fabric fabric;
    dpu::Hyperion dpu;
    std::unique_ptr<dpu::HyperionServices> services;
    std::unique_ptr<dpu::ShardedRpcNode> endpoint;
    // kLsmKv only: a zoned namespace added to the DPU's controller and the
    // LSM engine formatted onto it, driven on the server's node clock.
    std::unique_ptr<nvme::ZonedNamespace> zns;
    std::unique_ptr<storage::LsmEngine> lsm;
  };
  // The analytics tenant living on node 0 beside the KV server: Parquet
  // table on its own NVMe controller behind a small FPGA fabric, scan
  // kernels swapped by the slot scheduler. In spatial mode it serves from
  // its own endpoint + node clock; in shared mode its handler is registered
  // on the KV pipeline and advances the server clock (head-of-line arm).
  struct AnalyticsTenant {
    AnalyticsTenant(OverloadCluster* cluster);
    dpu::RpcResponse HandleScan(uint16_t opcode, const Buffer& payload);
    sim::Engine clock;         // private node clock (spatial mode)
    sim::Engine* exec;         // the clock scans actually advance
    std::unique_ptr<sim::FaultInjector> injector;
    std::unique_ptr<nvme::Controller> nvme;
    std::unique_ptr<fpga::Fabric> fabric;
    std::unique_ptr<fpga::SlotScheduler> scheduler;
    std::unique_ptr<format::NvmeParquetFile> table;
    uint64_t table_rows = 0;
    uint32_t table_groups = 0;
    std::unique_ptr<format::FpgaScanKernel> kernel;
    dpu::RpcServer rpc;        // spatial mode dispatch table
    std::unique_ptr<dpu::ShardedRpcNode> endpoint;  // spatial mode only
  };
  struct ClientNode {
    ClientNode(OverloadCluster* cluster, uint32_t id, bool analytics);
    uint32_t id;
    bool analytics;
    sim::Engine clock;  // endpoint node clock (client side serves nothing)
    std::unique_ptr<dpu::ShardedRpcNode> endpoint;
    std::unique_ptr<LoadGen> gen;
    // Analytics accumulators, folded order-independently per completion.
    uint64_t scan_fingerprint = 0;
    uint64_t scan_rows_matched = 0;
    uint64_t scan_chunk_bytes = 0;
    uint64_t scan_device_bytes = 0;
    uint64_t scan_groups_skipped = 0;
    uint64_t scan_reconfigs = 0;
    sim::Histogram reconfig_latency;
  };

  void StartKvClient(ClientNode* client, sim::SimTime start_base, uint64_t node_stride);
  void StartScanClient(ClientNode* client, sim::SimTime start_base, uint64_t node_stride);
  OverloadResult Collect(sim::SimTime start_base);

  OverloadClusterOptions options_;
  std::unique_ptr<sim::ParallelEngine> engine_;
  std::unique_ptr<ServerNode> server_;
  std::unique_ptr<AnalyticsTenant> analytics_;
  std::vector<std::unique_ptr<ClientNode>> clients_;
  sim::Histogram merged_latency_;
  sim::Histogram merged_scan_latency_;
  bool ran_ = false;
};

}  // namespace hyperion::load

#endif  // HYPERION_SRC_LOAD_HARNESS_H_
