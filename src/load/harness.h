// Sharded overload harness: open-loop clients vs one Hyperion server (PR 5).
//
// OverloadCluster is the determinism-grade E13 experiment: node 0 is a full
// Hyperion DPU serving NVMe-oF-style block reads, nodes 1..N are client
// nodes (endpoint-only, no server) each running a LoadGen that issues
// deadline-stamped BlockOp::kRead RPCs across the sharded fabric. The
// server's RpcOverloadPolicy is the with/without-admission-control axis:
//
//   OFF  arrivals queue on the server's node clock without bound; latency
//        grows with offered load (the open-loop hockey stick).
//   ON   the bounded pending queue + deadline shedding answer doomed
//        requests with kResourceExhausted after reject_cost only, keeping
//        admitted-request latency bounded and goodput at the plateau.
//
// Layout invariance is inherited from the PDES layer exactly as KvCluster:
// nodes share no mutable state, construction order pins source order, and
// every client start time is distinct — OverloadResult is bit-identical
// across num_shards x threads (tests/load_test.cc pins {1, 2, 4} x on/off).

#ifndef HYPERION_SRC_LOAD_HARNESS_H_
#define HYPERION_SRC_LOAD_HARNESS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/dpu/hyperion.h"
#include "src/dpu/rpc.h"
#include "src/dpu/services.h"
#include "src/load/loadgen.h"
#include "src/nvme/zns.h"
#include "src/obs/metrics.h"
#include "src/sim/parallel.h"
#include "src/sim/stats.h"
#include "src/storage/lsm_engine.h"

namespace hyperion::load {

// What the server serves and the clients issue.
enum class OverloadWorkload {
  kBlockRead,  // NVMe-oF-style BlockOp::kRead (the original E13 shape)
  kLsmKv,      // the PR 6 LSM engine served over RPC: KvOp::kPut / kGet
};

struct OverloadClusterOptions {
  uint32_t num_clients = 3;  // client nodes; node 0 is the server
  // 0 defaults to one shard per node; nodes map to shards in contiguous
  // blocks (same scheme as KvCluster).
  uint32_t num_shards = 0;
  bool use_threads = true;
  sim::Duration lookahead_floor = 100;
  net::FabricParams fabric;
  // Per-client arrival process (LoadGen semantics).
  bool open_loop = true;
  uint32_t requests_per_client = 64;
  sim::Duration interarrival = 20 * sim::kMicrosecond;
  uint32_t closed_clients = 4;  // closed loop: concurrency per client node
  sim::Duration think_time = 0;
  sim::Duration deadline = 1 * sim::kMillisecond;  // relative; 0 = none
  uint32_t read_blocks = 1;
  // Workload selection (kLsmKv: the server formats an LsmEngine on a zoned
  // namespace and serves it under ServiceId::kLsmKv; puts are acknowledged
  // only after their WAL group sync, so every kOk is durable).
  OverloadWorkload workload = OverloadWorkload::kBlockRead;
  uint64_t kv_key_space = 256;   // preloaded before the measured phase
  uint32_t kv_write_pct = 50;    // percent of issued ops that are puts
  uint32_t kv_value_bytes = 64;
  // Server-side overload policy (the experiment's independent variable).
  dpu::RpcOverloadPolicy policy;
  // Trimmed server DPU (communication structure, not capacity).
  uint64_t lbas_per_device = 32768;
  uint64_t dram_bytes = 64ull << 20;
  uint64_t hbm_bytes = 16ull << 20;
};

// Deterministic run snapshot; equality across shard layouts is the
// regression oracle.
struct OverloadResult {
  uint64_t issued = 0;
  uint64_t ok = 0;
  uint64_t rejected = 0;
  uint64_t failed = 0;
  uint64_t deadline_missed = 0;
  // Server-side accounting.
  uint64_t served = 0;
  uint64_t admitted = 0;
  uint64_t shed_queue = 0;
  uint64_t shed_deadline = 0;
  uint64_t messages = 0;
  sim::SimTime server_clock_ns = 0;
  sim::SimTime makespan_ns = 0;
  // Client-observed latency of in-deadline successes, merged across nodes.
  uint64_t latency_count = 0;
  uint64_t latency_p50_ns = 0;
  uint64_t latency_p99_ns = 0;
  uint64_t latency_max_ns = 0;

  bool operator==(const OverloadResult&) const = default;
};

class OverloadCluster {
 public:
  explicit OverloadCluster(const OverloadClusterOptions& options);
  OverloadCluster(const OverloadCluster&) = delete;
  OverloadCluster& operator=(const OverloadCluster&) = delete;
  ~OverloadCluster();

  uint32_t num_nodes() const { return options_.num_clients + 1; }
  uint32_t ShardOf(uint32_t node) const;

  // Runs every client to completion and snapshots the result. One-shot.
  OverloadResult Run();

  dpu::ShardedRpcNode& server_endpoint() { return *server_->endpoint; }
  const sim::Histogram& merged_latency() const { return merged_latency_; }

  // Client + server counters and the parallel engine's tallies, under the
  // PR 4 registry (valid after Run()).
  void SnapshotMetrics(obs::MetricsRegistry* registry) const;

 private:
  struct ServerNode {
    explicit ServerNode(OverloadCluster* cluster);
    dpu::RpcResponse HandleLsm(uint16_t opcode, const Buffer& payload);
    sim::Engine clock;  // private cost engine (never holds events)
    net::Fabric fabric;
    dpu::Hyperion dpu;
    std::unique_ptr<dpu::HyperionServices> services;
    std::unique_ptr<dpu::ShardedRpcNode> endpoint;
    // kLsmKv only: a zoned namespace added to the DPU's controller and the
    // LSM engine formatted onto it, driven on the server's node clock.
    std::unique_ptr<nvme::ZonedNamespace> zns;
    std::unique_ptr<storage::LsmEngine> lsm;
  };
  struct ClientNode {
    ClientNode(OverloadCluster* cluster, uint32_t id);
    uint32_t id;
    sim::Engine clock;  // endpoint node clock (client side serves nothing)
    std::unique_ptr<dpu::ShardedRpcNode> endpoint;
    std::unique_ptr<LoadGen> gen;
  };

  OverloadClusterOptions options_;
  std::unique_ptr<sim::ParallelEngine> engine_;
  std::unique_ptr<ServerNode> server_;
  std::vector<std::unique_ptr<ClientNode>> clients_;
  sim::Histogram merged_latency_;
  bool ran_ = false;
};

}  // namespace hyperion::load

#endif  // HYPERION_SRC_LOAD_HARNESS_H_
