// Line-rate XDP ingress on Hyperion: eBPF -> FPGA match/action chain with a
// millions-of-flows table behind it (PR 8, E16).
//
// Three verified eBPF programs become three fabric regions chained over the
// AXI interconnect (fpga::MatchActionPipeline):
//
//   xdp_guard  SSH brute-force filter. Banned sources drop in-fabric;
//              unrecognized auth attempts REDIRECT to apps::Fail2Ban, which
//              durably logs the attempt and installs the ban back into the
//              fabric map — after which that attacker costs zero slow-path
//              time, i.e. sheds *before* admission control.
//   xdp_flow   Heavy-hitter accounting. The front map holds the hot flows;
//              hits count packets in-fabric and PASS. Misses REDIRECT to
//              the slow path, which tracks every flow (millions) in a
//              storage::HashIndex over the single-level store's HBM tier.
//   xdp_lb     Forwarding match. Flows pinned in the LB map TX in-fabric;
//              unpinned flows and FIN/RST teardowns REDIRECT so the
//              apps::LoadBalancer places them (consistent hash + flash
//              spill tier) and re-pins.
//
// Timing model — the core of the line-rate claim: the fabric chain and the
// slow path overlap. Fabric service is a busy-until variable advanced by
// the pipelined batch model (fill + (N-1) * bottleneck-II); the slow path
// runs on the DPU's node clock (HBM flow table, flash spill, Corfu audit
// log). Neither waits for the other. What couples them is flow control:
// an rx CreditGate bounds NIC batches in flight against fabric completion,
// and a sim::AdmissionController bounds slow-path backlog in virtual time,
// shedding misses the table tier cannot absorb — exactly the PR 5
// composition, applied per packet.
//
// XdpPipeline is the single-node datapath (bench arms: fabric vs
// baseline::HostCpu, which runs the same programs serially at kernel
// networking cost). XdpCluster is the sharded determinism harness: node 0
// runs the ingress, nodes 1..K are KvCluster-style backends; admitted new
// flows are sprayed to their backend over the sharded RPC fabric. Its
// result snapshot (including a per-packet verdict hash) must be
// bit-identical across {1,2,4} shards x threads on/off.

#ifndef HYPERION_SRC_LOAD_XDP_H_
#define HYPERION_SRC_LOAD_XDP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/apps/fail2ban.h"
#include "src/apps/load_balancer.h"
#include "src/baseline/host.h"
#include "src/dpu/hyperion.h"
#include "src/dpu/rpc.h"
#include "src/dpu/services.h"
#include "src/fpga/match_action.h"
#include "src/load/packet_trace.h"
#include "src/obs/trace.h"
#include "src/sim/flow.h"
#include "src/sim/parallel.h"
#include "src/storage/hash_index.h"

namespace hyperion::load {

struct XdpOptions {
  PacketTraceOptions trace;
  // NIC RX coalescing: frames per batch, and batches in flight before the
  // ring sheds (the CreditGate capacity).
  uint32_t rx_batch = 64;
  uint32_t rx_ring_batches = 64;
  // Slow-path admission (the flow-table tier's overload bound).
  sim::AdmissionParams slow_path{.max_pending = 8192, .max_backlog = 1 * sim::kMillisecond};
  sim::Duration slow_deadline = 2 * sim::kMillisecond;  // relative, 0 = none
  // Fabric-resident map sizes. The front map is sized to the hot set so
  // the ramp (hot flows open first) pins exactly the heavy hitters.
  uint32_t front_entries = 0;  // 0 = trace.hot_flows
  // Flow-table directory (storage::HashIndex roots) and placement; the
  // default hints put buckets on the HBM tier (fast, non-durable).
  uint32_t flow_buckets = 4096;
  mem::SegmentHints flow_hints{.durable = false, .performance_critical = true};
  // Load balancer: DRAM-resident flow capacity and flash-spill directory.
  uint32_t lb_resident = 32768;
  uint32_t lb_spill_buckets = 4096;
  uint32_t backends = 4;
  apps::Fail2BanConfig fail2ban;
  ebpf::CodegenOptions codegen;
  // false = baseline::HostCpu arm: same programs, same slow path, but every
  // packet pays the kernel network stack serially on one core.
  bool use_fpga = true;
  baseline::HostCostParams host;
};

// Snapshot of one run; equality across shard layouts is the E16 oracle.
struct XdpStats {
  uint64_t rx_frames = 0;
  uint64_t rx_batches = 0;
  uint64_t rx_overflow = 0;      // frames shed at the NIC ring
  uint64_t drop_banned = 0;      // in-fabric drops, zero slow-path cost
  uint64_t auth_reports = 0;     // guard REDIRECTs into fail2ban
  uint64_t auth_shed = 0;
  uint64_t bans = 0;
  uint64_t fast_hits = 0;        // front-map hits counted in-fabric
  uint64_t fast_tx = 0;          // forwarded without leaving the fabric
  uint64_t slow_packets = 0;     // REDIRECTs reaching admission
  uint64_t slow_admitted = 0;
  uint64_t slow_shed = 0;
  uint64_t flow_inserts = 0;
  uint64_t flow_updates = 0;
  uint64_t teardowns = 0;
  uint64_t sprayed = 0;          // new-flow registrations handed to on_new_flow
  // Flow-table directory health (satellite: HashIndexStats).
  uint64_t flow_entries = 0;
  uint32_t flow_max_chain = 0;
  double flow_mean_chain = 0.0;
  uint64_t flow_overflow_buckets = 0;
  double flow_occupancy = 0.0;
  // Load-balancer tiers.
  uint64_t lb_new_flows = 0;
  uint64_t lb_spills = 0;
  uint64_t lb_spill_hits = 0;
  uint64_t lb_spill_entries = 0;
  // Clocks: fabric busy-until vs the table tier's node clock.
  sim::SimTime fabric_busy_ns = 0;
  sim::SimTime clock_ns = 0;
  // Steady-phase throughput accounting.
  uint64_t steady_offered = 0;
  uint64_t steady_delivered = 0;
  sim::SimTime steady_window_ns = 0;
  // FNV over every packet's final disposition, in arrival order.
  uint64_t verdict_hash = 0;

  bool operator==(const XdpStats&) const = default;

  double SteadyMpps() const {
    return steady_window_ns > 0
               ? static_cast<double>(steady_delivered) * 1e3 / static_cast<double>(steady_window_ns)
               : 0.0;
  }
};

class XdpPipeline {
 public:
  // New-flow registration hook (cluster spray): key, placed backend, and
  // the admission time on the ingress clock.
  using NewFlowFn =
      std::function<void(const apps::FlowKey&, const apps::Backend&, sim::SimTime)>;

  // Backend ring addresses: ip = kBackendIpBase + i maps to cluster node
  // 1 + i, which is how XdpCluster routes spray RPCs.
  static constexpr uint32_t kBackendIpBase = 0x0A640001;  // 10.100.0.1

  // Builds maps, programs, apps and (use_fpga) the match/action chain on
  // `dpu`, which must be booted. The pipeline charges slow-path costs to
  // the DPU's engine and keeps fabric service in its own busy-until clock.
  static Result<std::unique_ptr<XdpPipeline>> Create(dpu::Hyperion* dpu, XdpOptions options);

  // Runs frames [first, first+count) arriving at `arrival` (first frame;
  // the rest follow at wire pace) through the chain and the slow path.
  Status ProcessBatch(uint64_t first, uint32_t count, sim::SimTime arrival,
                      const NewFlowFn& on_new_flow = nullptr);

  // Standalone run: every batch of the trace, arrivals offset from the
  // current engine clock. Single-engine (bench) mode.
  Status Run(const NewFlowFn& on_new_flow = nullptr);

  // Per-batch span emission (kEngine root + per-stage kFpga/kNet/kStore/
  // kApp children). Null disables; switchable mid-run (e.g. steady only).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  const PacketTrace& trace() const { return trace_; }
  const sim::Counters& counters() const { return counters_; }
  const storage::HashIndex& flow_table() const { return *flows_; }
  const apps::LoadBalancer& lb() const { return *lb_; }
  const apps::Fail2Ban& fail2ban() const { return *fail2ban_; }
  const fpga::MatchActionPipeline* fabric_pipeline() const { return ma_.get(); }
  const std::vector<apps::Backend>& backends() const { return backends_; }
  sim::SimTime fabric_busy() const { return fabric_busy_; }

  // Final snapshot (flow-table stats are recomputed here).
  XdpStats Snapshot() const;

 private:
  XdpPipeline(dpu::Hyperion* dpu, XdpOptions options)
      : dpu_(dpu),
        options_(options),
        trace_(options.trace),
        rx_credits_(options.rx_ring_batches),
        admission_(options.slow_path) {}

  Status BuildDataPath();
  Result<uint64_t> RunStage(size_t stage, MutableByteSpan ctx);
  Status SlowPath(const TraceFrameMeta& meta, sim::SimTime packet_arrival,
                  const NewFlowFn& on_new_flow, uint64_t* disposition);
  void NoteVerdict(uint64_t disposition);

  dpu::Hyperion* dpu_;
  XdpOptions options_;
  PacketTrace trace_;
  obs::Tracer* tracer_ = nullptr;

  // Fabric-resident maps (ids in the DPU registry).
  uint32_t banned_map_ = 0;
  uint32_t front_map_ = 0;
  uint32_t pins_map_ = 0;

  std::unique_ptr<fpga::MatchActionPipeline> ma_;  // use_fpga arm
  // Host arm: same programs, interpreted serially at kernel cost.
  std::vector<ebpf::Program> host_programs_;
  std::unique_ptr<ebpf::Vm> host_vm_;
  std::unique_ptr<baseline::HostCpu> host_;

  std::unique_ptr<storage::HashIndex> flows_;
  std::unique_ptr<apps::LoadBalancer> lb_;
  std::unique_ptr<apps::Fail2Ban> fail2ban_;
  std::vector<apps::Backend> backends_;

  sim::CreditGate rx_credits_;
  std::deque<sim::SimTime> rx_in_flight_;  // batch service completion times
  sim::AdmissionController admission_;

  sim::SimTime t0_ = 0;           // trace origin on this node's clock
  sim::SimTime fabric_busy_ = 0;  // fabric chain busy-until
  sim::Counters counters_;
  uint64_t verdict_hash_ = 0x811c9dc5u;
  uint64_t steady_offered_ = 0;
  uint64_t steady_delivered_ = 0;
  sim::SimTime steady_first_arrival_ = 0;
  bool started_ = false;
};

// -- Sharded cluster harness (determinism oracle) ----------------------------

struct XdpClusterOptions {
  XdpOptions xdp;
  uint32_t num_backends = 3;
  // 0 = one shard per node; contiguous node->shard blocks (KvCluster map).
  uint32_t num_shards = 0;
  bool use_threads = true;
  sim::Duration lookahead_floor = 100;
  net::FabricParams fabric;
  // Backend-side overload policy for the spray RPCs.
  dpu::RpcOverloadPolicy policy;
  sim::Duration rpc_deadline = 2 * sim::kMillisecond;
  // Register every Nth admitted new flow with its backend over RPC.
  uint32_t spray_sample = 1;
  // Trimmed backend DPU sizing.
  uint64_t lbas_per_device = 32768;
  uint64_t dram_bytes = 64ull << 20;
  uint64_t hbm_bytes = 16ull << 20;
};

struct XdpClusterResult {
  XdpStats xdp;
  uint64_t spray_issued = 0;
  uint64_t spray_ok = 0;
  uint64_t spray_rejected = 0;
  uint64_t spray_failed = 0;
  uint64_t backend_served = 0;
  uint64_t backend_shed = 0;
  uint64_t messages = 0;
  sim::SimTime ingress_clock_ns = 0;
  sim::SimTime makespan_ns = 0;

  bool operator==(const XdpClusterResult&) const = default;
};

class XdpCluster {
 public:
  explicit XdpCluster(const XdpClusterOptions& options);
  XdpCluster(const XdpCluster&) = delete;
  XdpCluster& operator=(const XdpCluster&) = delete;
  ~XdpCluster();

  uint32_t num_nodes() const { return options_.num_backends + 1; }
  uint32_t ShardOf(uint32_t node) const;

  // Drives the whole trace through the ingress node, spraying admitted new
  // flows to the backends. One-shot.
  XdpClusterResult Run();

  XdpPipeline& pipeline() { return *ingress_->pipeline; }
  obs::Tracer& ingress_tracer() { return ingress_->tracer; }

 private:
  struct IngressNode {
    explicit IngressNode(XdpCluster* cluster);
    sim::Engine clock;  // node clock: slow-path costs live here
    net::Fabric fabric;
    dpu::Hyperion dpu;
    obs::Tracer tracer{0};
    std::unique_ptr<XdpPipeline> pipeline;
    std::unique_ptr<dpu::ShardedRpcNode> endpoint;
  };
  struct BackendNode {
    BackendNode(XdpCluster* cluster, uint32_t id);
    uint32_t id;
    sim::Engine clock;
    net::Fabric fabric;
    dpu::Hyperion dpu;
    std::unique_ptr<dpu::HyperionServices> services;
    std::unique_ptr<dpu::ShardedRpcNode> endpoint;
  };

  void ScheduleBatch(uint64_t first);
  void SprayFlow(const apps::FlowKey& key, const apps::Backend& backend, sim::SimTime now);

  XdpClusterOptions options_;
  std::unique_ptr<sim::ParallelEngine> engine_;
  std::unique_ptr<IngressNode> ingress_;
  std::vector<std::unique_ptr<BackendNode>> backends_;
  sim::SimTime start_base_ = 0;
  uint64_t spray_seen_ = 0;
  uint64_t spray_issued_ = 0;
  uint64_t spray_ok_ = 0;
  uint64_t spray_rejected_ = 0;
  uint64_t spray_failed_ = 0;
  bool ran_ = false;
};

}  // namespace hyperion::load

#endif  // HYPERION_SRC_LOAD_XDP_H_
