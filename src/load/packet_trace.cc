#include "src/load/packet_trace.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"

namespace hyperion::load {

namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

void StoreU16(MutableByteSpan ctx, size_t off, uint16_t v) {
  ctx[off] = static_cast<uint8_t>(v);
  ctx[off + 1] = static_cast<uint8_t>(v >> 8);
}

void StoreU32(MutableByteSpan ctx, size_t off, uint32_t v) {
  for (int b = 0; b < 4; ++b) {
    ctx[off + b] = static_cast<uint8_t>(v >> (8 * b));
  }
}

}  // namespace

PacketTrace::PacketTrace(PacketTraceOptions options) : options_(options) {
  CHECK_GT(options_.benign_flows, 0u);
  CHECK_GT(options_.hot_flows, 0u);
  CHECK_LE(options_.hot_flows, options_.benign_flows);
  CHECK_LE(options_.hot_per_myriad, 10000u);
  CHECK_GT(options_.frame_bytes, 0u);
  attack_packets_ = uint64_t{options_.attacker_ips} * options_.attack_packets_per_ip;
  ramp_packets_ = options_.benign_flows + attack_packets_;
  // Spread the attack burst evenly across the ramp (never the very first
  // slot: the hot set must start populating before the attackers show up).
  attack_stride_ =
      attack_packets_ > 0 ? std::max<uint64_t>(2, ramp_packets_ / (attack_packets_ + 1)) : 0;
  // Every attack frame must land inside the ramp, or flow-open indices
  // would run past benign_flows.
  CHECK(attack_packets_ == 0 || attack_stride_ * attack_packets_ <= ramp_packets_)
      << "attack burst does not fit the ramp";
  wire_time_ = std::max<sim::Duration>(
      1, sim::TransferTime(options_.frame_bytes, options_.line_gbps));
}

sim::SimTime PacketTrace::ArrivalOf(uint64_t i) const {
  CHECK_LE(i, total_packets());
  const sim::Duration ramp_gap = std::max<sim::Duration>(options_.ramp_interarrival, wire_time_);
  if (i <= ramp_packets_) {
    return i * ramp_gap;
  }
  return ramp_packets_ * ramp_gap + (i - ramp_packets_) * wire_time_;
}

apps::FlowKey PacketTrace::BenignFlowKey(uint64_t flow) const {
  apps::FlowKey key;
  // 4096 source ports per source address: distinct tuples for up to 2^24
  // flows without leaving the 11.0.0.0/8 test range.
  key.src_ip = 0x0B000000u + static_cast<uint32_t>(flow >> 12);
  key.src_port = static_cast<uint16_t>(1024 + (flow & 0xFFF));
  key.dst_ip = kVipAddr;
  key.dst_port = kVipPort;
  key.protocol = 6;
  return key;
}

TraceFrameMeta PacketTrace::RampFrame(uint64_t i) const {
  TraceFrameMeta meta;
  meta.phase = TracePhase::kRamp;
  // Attack slots at the fixed stride, until the burst budget is spent.
  const uint64_t attack_no = attack_stride_ > 0 ? i / attack_stride_ : 0;
  const bool attack_slot =
      attack_stride_ > 0 && i % attack_stride_ == attack_stride_ - 1 && attack_no < attack_packets_;
  if (attack_slot) {
    meta.attack = true;
    meta.flow_id = attack_no % options_.attacker_ips;
    meta.packet.flow.src_ip = 0xC0A80000u + static_cast<uint32_t>(meta.flow_id);  // 192.168/16
    meta.packet.flow.src_port = static_cast<uint16_t>(40000 + attack_no / options_.attacker_ips);
    meta.packet.flow.dst_ip = kVipAddr;
    meta.packet.flow.dst_port = kAuthPort;
    meta.packet.tcp_flags = apps::kTcpSyn;
    return meta;
  }
  // Benign flow opens, hot flows first; subtract the attack slots that
  // preceded this one.
  const uint64_t attacks_before = attack_stride_ > 0
                                      ? std::min(attack_packets_, i / attack_stride_ +
                                                                      (i % attack_stride_ ==
                                                                               attack_stride_ - 1
                                                                           ? 1
                                                                           : 0))
                                      : 0;
  meta.flow_open = true;
  meta.flow_id = i - attacks_before;
  CHECK_LT(meta.flow_id, options_.benign_flows);
  meta.packet.flow = BenignFlowKey(meta.flow_id);
  meta.packet.tcp_flags = apps::kTcpSyn;
  return meta;
}

TraceFrameMeta PacketTrace::SteadyFrame(uint64_t i) const {
  TraceFrameMeta meta;
  meta.phase = TracePhase::kSteady;
  const uint64_t r = Mix64(options_.seed ^ (0x5EEDull + i));
  const uint32_t myriad = static_cast<uint32_t>(r % 10000);
  const uint64_t pick = Mix64(r);
  if (myriad < options_.hot_per_myriad) {
    meta.flow_id = pick % options_.hot_flows;
  } else {
    const uint64_t cold = options_.benign_flows - options_.hot_flows;
    meta.flow_id = cold > 0 ? options_.hot_flows + pick % cold : pick % options_.hot_flows;
  }
  meta.packet.flow = BenignFlowKey(meta.flow_id);
  meta.packet.tcp_flags = apps::kTcpAck;
  // Teardowns come from the cold tail only: hot flows must stay pinned in
  // the front map for the duration of the measurement window.
  if (myriad >= options_.hot_per_myriad &&
      myriad < options_.hot_per_myriad + options_.teardown_per_myriad) {
    meta.packet.tcp_flags = apps::kTcpFin | apps::kTcpAck;
  }
  meta.packet.payload_bytes = options_.frame_bytes;
  return meta;
}

TraceFrameMeta PacketTrace::FrameAt(uint64_t i, MutableByteSpan ctx) const {
  CHECK_LT(i, total_packets());
  CHECK_EQ(ctx.size(), size_t{kCtxBytes});
  const TraceFrameMeta meta = i < ramp_packets_ ? RampFrame(i) : SteadyFrame(i - ramp_packets_);
  std::memset(ctx.data(), 0, ctx.size());
  StoreU16(ctx, kOffEthertype, 0x0800);
  ctx[kOffProto] = meta.packet.flow.protocol;
  StoreU32(ctx, kOffSrcIp, meta.packet.flow.src_ip);
  StoreU32(ctx, kOffDstIp, meta.packet.flow.dst_ip);
  StoreU16(ctx, kOffSrcPort, meta.packet.flow.src_port);
  StoreU16(ctx, kOffDstPort, meta.packet.flow.dst_port);
  ctx[kOffTcpFlags] = meta.packet.tcp_flags;
  return meta;
}

}  // namespace hyperion::load
