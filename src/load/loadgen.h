// Deterministic load generation for overload experiments (PR 5).
//
// The hockey-stick curves of E13 need two request sources:
//
//   * open loop — arrivals at a fixed spacing regardless of completions.
//     This is the overload regime: offered load is an independent variable,
//     and a server without admission control accumulates unbounded queueing.
//   * closed loop — N clients, each with at most one request outstanding,
//     issuing the next one `think_time` after the previous completes. Load
//     self-limits, the classic contrast to the open-loop curve.
//
// LoadGen is sink-agnostic: the IssueFn may drive an OverloadPipeline (one
// engine) or a ShardedRpcNode (a shard of a ParallelEngine) — both are just
// "issue request seq with this absolute deadline, call done once". All
// arrival times are pure functions of the options, so runs are bit-stable.

#ifndef HYPERION_SRC_LOAD_LOADGEN_H_
#define HYPERION_SRC_LOAD_LOADGEN_H_

#include <cstdint>
#include <functional>

#include "src/sim/engine.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace hyperion::load {

enum class Outcome : uint8_t {
  kOk = 0,    // completed successfully
  kRejected,  // shed by admission control or backpressure (resource exhausted)
  kFailed,    // any other error
};

struct LoadGenOptions {
  bool open_loop = true;
  // Open loop: fixed inter-arrival spacing; offered load = 1/interarrival.
  sim::Duration interarrival = 10 * sim::kMicrosecond;
  // Closed loop: concurrent clients and think time between a client's
  // completion and its next issue.
  uint32_t clients = 8;
  sim::Duration think_time = 0;
  uint32_t total_requests = 1000;
  // Per-request deadline relative to its issue time (0 = none).
  sim::Duration deadline = 0;
  // Virtual time of the first arrival.
  sim::SimTime start = 1000;
};

struct LoadStats {
  uint64_t issued = 0;
  uint64_t ok = 0;               // completed successfully within the deadline
  uint64_t rejected = 0;         // shed (the fast-reject path)
  uint64_t failed = 0;           // hard errors
  uint64_t deadline_missed = 0;  // completed kOk but past the deadline
  sim::SimTime first_issue = 0;
  sim::SimTime last_completion = 0;

  // Goodput denominator: everything that came back one way or another.
  uint64_t completed() const { return ok + rejected + failed + deadline_missed; }
};

class LoadGen {
 public:
  using DoneFn = std::function<void(Outcome)>;
  // `seq` is the request's 0-based sequence number; `deadline` is absolute
  // virtual time (sim::Engine::kNever when none). The sink must invoke
  // `done` exactly once, at the request's completion time.
  using IssueFn = std::function<void(uint64_t seq, sim::SimTime deadline, DoneFn done)>;

  LoadGen(sim::Engine* engine, const LoadGenOptions& options, IssueFn issue);

  // Schedules the arrival process on the engine; the caller drives it
  // (Engine::Run or the enclosing ParallelEngine).
  void Start();

  bool Finished() const { return completed_ == options_.total_requests; }
  const LoadGenOptions& options() const { return options_; }
  const LoadStats& stats() const { return stats_; }
  // Latency of requests that completed kOk within their deadline.
  const sim::Histogram& latency() const { return latency_; }

 private:
  void IssueNext();                 // open-loop arrival chain
  void IssueClient(uint32_t client);
  // client < 0 marks an open-loop request (no follow-up issue).
  void Fire(uint64_t seq, int32_t client);

  sim::Engine* engine_;
  LoadGenOptions options_;
  IssueFn issue_;
  uint64_t next_seq_ = 0;
  uint64_t completed_ = 0;
  LoadStats stats_;
  sim::Histogram latency_;
};

}  // namespace hyperion::load

#endif  // HYPERION_SRC_LOAD_LOADGEN_H_
