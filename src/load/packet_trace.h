// Deterministic 2x100 GbE packet-trace generator for the XDP ingress
// pipeline (PR 8, E16).
//
// The trace is a pure function of (options, index): no state, no RNG
// stream, no wall clock. FrameAt(i) regenerates frame i's bytes and
// metadata on demand, so a billion-packet trace costs nothing to hold and
// every shard layout sees byte-identical frames — the property the E16
// determinism oracle rests on.
//
// Two phases model a realistic ingress day:
//
//   ramp    every benign flow is opened once with a SYN (hot flows first,
//           so they populate the fabric-resident heavy-hitter front map
//           before the cold tail arrives), with an SSH brute-force burst
//           from a small attacker pool interleaved at a fixed stride.
//           Ramp frames are paced at `ramp_interarrival` — connection
//           setup runs at flow-table speed, not wire speed, exactly like
//           a real ToR warm-up.
//   steady  the measurement window: frames arrive back-to-back at the
//           aggregate line rate (frame_bytes over 2x100 GbE). A fixed
//           per-myriad split sends most packets to the hot set (front-map
//           hits that never leave the fabric) and the remainder to the
//           cold tail (front-map misses that exercise the flow table).
//
// Frame layout: a 64-byte context image with the header fields at the
// fixed offsets the match/action programs load from (kOffProto etc.).
// Multi-byte fields are little-endian, matching the VM's load semantics.

#ifndef HYPERION_SRC_LOAD_PACKET_TRACE_H_
#define HYPERION_SRC_LOAD_PACKET_TRACE_H_

#include <cstdint>

#include "src/apps/packet.h"
#include "src/common/bytes.h"
#include "src/sim/time.h"

namespace hyperion::load {

struct PacketTraceOptions {
  // Distinct benign flows opened during ramp; the first `hot_flows` of
  // them form the heavy-hitter set.
  uint32_t benign_flows = 65536;
  uint32_t hot_flows = 8192;
  // SSH brute-force burst: SYNs to port 22 from a small source pool,
  // interleaved into the ramp at a fixed stride.
  uint32_t attacker_ips = 16;
  uint32_t attack_packets_per_ip = 8;
  // Measurement phase length and its hot/cold split (per ten thousand).
  uint64_t steady_packets = 1 << 18;
  uint32_t hot_per_myriad = 9800;
  // Per-myriad steady frames that tear their (cold) flow down with FIN.
  uint32_t teardown_per_myriad = 0;
  // Simulated wire size per frame (sets the line-rate packet budget).
  uint32_t frame_bytes = 512;
  // Aggregate attachment bandwidth: 2x100 GbE.
  double line_gbps = 200.0;
  // Connection-setup pacing during ramp.
  sim::Duration ramp_interarrival = 1 * sim::kMicrosecond;
  uint64_t seed = 1;
};

enum class TracePhase : uint8_t { kRamp, kSteady };

struct TraceFrameMeta {
  TracePhase phase = TracePhase::kRamp;
  bool attack = false;
  bool flow_open = false;  // first packet of a benign flow (ramp SYN)
  uint64_t flow_id = 0;    // benign flow index, or attacker pool index
  apps::Packet packet;     // parsed 5-tuple + flags, for the slow path
};

class PacketTrace {
 public:
  // Context image size handed to the eBPF stages (ctx_size at assembly).
  static constexpr uint32_t kCtxBytes = 64;
  // Field offsets inside the context image.
  static constexpr size_t kOffEthertype = 12;
  static constexpr size_t kOffProto = 23;
  static constexpr size_t kOffSrcIp = 26;
  static constexpr size_t kOffDstIp = 30;
  static constexpr size_t kOffSrcPort = 34;
  static constexpr size_t kOffDstPort = 36;
  static constexpr size_t kOffTcpFlags = 47;

  static constexpr uint16_t kVipPort = 443;
  static constexpr uint16_t kAuthPort = 22;
  static constexpr uint32_t kVipAddr = 0x0A0000FE;  // 10.0.0.254

  explicit PacketTrace(PacketTraceOptions options);

  const PacketTraceOptions& options() const { return options_; }
  uint64_t ramp_packets() const { return ramp_packets_; }
  uint64_t total_packets() const { return ramp_packets_ + options_.steady_packets; }

  // Serialization time of one frame at the aggregate line rate.
  sim::Duration FrameWireTime() const { return wire_time_; }

  // Arrival of frame i relative to trace start (monotone in i).
  sim::SimTime ArrivalOf(uint64_t i) const;
  // Arrival of the first steady-phase frame.
  sim::SimTime SteadyStart() const { return ArrivalOf(ramp_packets_); }

  // Regenerates frame i: fills `ctx` (exactly kCtxBytes) and returns its
  // metadata. Pure in (options, i).
  TraceFrameMeta FrameAt(uint64_t i, MutableByteSpan ctx) const;

  // The 5-tuple of benign flow `flow` (what FrameAt encodes).
  apps::FlowKey BenignFlowKey(uint64_t flow) const;

 private:
  TraceFrameMeta RampFrame(uint64_t i) const;
  TraceFrameMeta SteadyFrame(uint64_t i) const;

  PacketTraceOptions options_;
  uint64_t attack_packets_ = 0;
  uint64_t ramp_packets_ = 0;
  uint64_t attack_stride_ = 0;  // ramp slots between attack frames
  sim::Duration wire_time_ = 0;
};

}  // namespace hyperion::load

#endif  // HYPERION_SRC_LOAD_PACKET_TRACE_H_
