#include "src/load/xdp.h"

#include <algorithm>
#include <string>

#include "src/common/check.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/verifier.h"
#include "src/sim/energy.h"

namespace hyperion::load {

namespace {

constexpr uint64_t kFlowIndexId = 0x2A;
constexpr uint16_t kBackendPort = 7000;

// Packet dispositions folded into the verdict hash (arrival order).
constexpr uint64_t kDispRxDrop = 0;
constexpr uint64_t kDispBanned = 1;
constexpr uint64_t kDispAuthReport = 2;
constexpr uint64_t kDispAuthShed = 3;
constexpr uint64_t kDispFastTx = 4;
constexpr uint64_t kDispSlowForward = 5;
constexpr uint64_t kDispSlowShed = 6;
constexpr uint64_t kDispTeardown = 7;

// The 8-byte flow id the fabric stages compute from the header fields:
// (src_ip << 32 | dst_ip) ^ (src_port | dst_port << 16). Mirrors the
// ldxw/lsh/or/xor sequence in xdp_flow / xdp_lb below.
uint64_t FrontKeyOf(const apps::FlowKey& flow) {
  const uint64_t ips = (uint64_t{flow.src_ip} << 32) | flow.dst_ip;
  const uint64_t ports = uint64_t{flow.src_port} | (uint64_t{flow.dst_port} << 16);
  return ips ^ ports;
}

Bytes U32Key(uint32_t v) {
  Bytes b;
  PutU32(b, v);
  return b;
}

Bytes U64Key(uint64_t v) {
  Bytes b;
  PutU64(b, v);
  return b;
}

// Stage 1 — SSH brute-force guard. TCP to the auth port probes the banned
// map: hits DROP in-fabric, misses REDIRECT to fail2ban. Everything else
// PASSes untouched.
std::string GuardSource(uint32_t banned_map) {
  return R"(
      mov r9, r1
      ldxb r2, [r9+23]
      jne r2, 6, pass
      ldxh r3, [r9+36]
      jne r3, 22, pass
      ldxw r4, [r9+26]
      stxw [r10-4], r4
      ld_map_fd r1, )" +
         std::to_string(banned_map) + R"(
      mov r2, r10
      add r2, -4
      call map_lookup
      jeq r0, 0, report
      mov r0, 1
      exit
  report:
      mov r0, 4
      exit
  pass:
      mov r0, 2
      exit
  )";
}

// Stage 2 — heavy-hitter accounting. Front-map hits count the packet
// in-fabric and PASS; misses try to claim a front slot (first flows win —
// the ramp opens the hot set first) and REDIRECT to the flow-table tier.
std::string FlowSource(uint32_t front_map) {
  const std::string fd = std::to_string(front_map);
  return R"(
      mov r9, r1
      ldxw r3, [r9+26]
      lsh r3, 32
      ldxw r4, [r9+30]
      or r3, r4
      ldxw r5, [r9+34]
      xor r3, r5
      stxdw [r10-8], r3
      ld_map_fd r1, )" +
         fd + R"(
      mov r2, r10
      add r2, -8
      call map_lookup
      jeq r0, 0, miss
      ldxdw r6, [r0+0]
      add r6, 1
      stxdw [r0+0], r6
      mov r0, 2
      exit
  miss:
      stdw [r10-16], 1
      ld_map_fd r1, )" +
         fd + R"(
      mov r2, r10
      add r2, -8
      mov r3, r10
      add r3, -16
      mov r4, 0
      call map_update
      mov r0, 4
      exit
  )";
}

// Stage 3 — forwarding match. Pinned, non-teardown flows TX in-fabric;
// unpinned flows and FIN/RST REDIRECT to the load balancer.
std::string LbSource(uint32_t pins_map) {
  return R"(
      mov r9, r1
      ldxw r3, [r9+26]
      lsh r3, 32
      ldxw r4, [r9+30]
      or r3, r4
      ldxw r5, [r9+34]
      xor r3, r5
      stxdw [r10-8], r3
      ld_map_fd r1, )" +
         std::to_string(pins_map) + R"(
      mov r2, r10
      add r2, -8
      call map_lookup
      jeq r0, 0, slow
      ldxb r6, [r9+47]
      and r6, 5
      jne r6, 0, slow
      mov r0, 3
      exit
  slow:
      mov r0, 4
      exit
  )";
}

Bytes FlowRecord(const apps::Backend& backend, uint64_t count) {
  Bytes value;
  PutU32(value, backend.ip);
  PutU16(value, backend.port);
  PutU64(value, count);
  return value;
}

}  // namespace

Result<std::unique_ptr<XdpPipeline>> XdpPipeline::Create(dpu::Hyperion* dpu, XdpOptions options) {
  if (!dpu->booted()) {
    return Unavailable("boot the DPU first");
  }
  if (options.rx_batch == 0 || options.rx_ring_batches == 0) {
    return InvalidArgument("rx batch/ring must be positive");
  }
  if (options.backends == 0) {
    return InvalidArgument("need at least one backend");
  }
  if (options.front_entries == 0) {
    options.front_entries = options.trace.hot_flows;
  }
  auto pipeline = std::unique_ptr<XdpPipeline>(new XdpPipeline(dpu, options));
  RETURN_IF_ERROR(pipeline->BuildDataPath());
  return pipeline;
}

Status XdpPipeline::BuildDataPath() {
  const std::string& token = dpu_->config().control_token;
  backends_.reserve(options_.backends);
  for (uint32_t i = 0; i < options_.backends; ++i) {
    backends_.push_back(apps::Backend{kBackendIpBase + i, kBackendPort});
  }

  // Fabric-resident maps, shared so the control path accepts any tenant.
  ebpf::MapSpec banned_spec{ebpf::MapType::kHash, 4, 8, 4096, "xdp_banned", ebpf::kSharedMap};
  ASSIGN_OR_RETURN(banned_map_, dpu_->CreateMap(token, banned_spec));
  ebpf::MapSpec front_spec{ebpf::MapType::kHash, 8, 8, options_.front_entries, "xdp_front",
                           ebpf::kSharedMap};
  ASSIGN_OR_RETURN(front_map_, dpu_->CreateMap(token, front_spec));
  ebpf::MapSpec pins_spec{ebpf::MapType::kHash, 8, 8, options_.front_entries, "xdp_pins",
                          ebpf::kSharedMap};
  ASSIGN_OR_RETURN(pins_map_, dpu_->CreateMap(token, pins_spec));

  ASSIGN_OR_RETURN(ebpf::Program guard,
                   ebpf::Assemble(GuardSource(banned_map_), "xdp_guard", PacketTrace::kCtxBytes));
  ASSIGN_OR_RETURN(ebpf::Program flow,
                   ebpf::Assemble(FlowSource(front_map_), "xdp_flow", PacketTrace::kCtxBytes));
  ASSIGN_OR_RETURN(ebpf::Program lb,
                   ebpf::Assemble(LbSource(pins_map_), "xdp_lb", PacketTrace::kCtxBytes));

  if (options_.use_fpga) {
    std::vector<fpga::MatchActionStageSpec> specs;
    specs.push_back({std::move(guard), options_.codegen});
    specs.push_back({std::move(flow), options_.codegen});
    specs.push_back({std::move(lb), options_.codegen});
    ASSIGN_OR_RETURN(ma_, fpga::MatchActionPipeline::Create(&dpu_->fabric(), &dpu_->axi(),
                                                            &dpu_->maps(), std::move(specs)));
  } else {
    // Host arm: verification is still the gate, then the same programs run
    // serially on the interpreter at kernel networking cost.
    for (ebpf::Program* program : {&guard, &flow, &lb}) {
      RETURN_IF_ERROR(ebpf::Verify(*program, dpu_->maps()).status());
    }
    host_programs_.push_back(std::move(guard));
    host_programs_.push_back(std::move(flow));
    host_programs_.push_back(std::move(lb));
    host_vm_ = std::make_unique<ebpf::Vm>(&dpu_->maps());
    host_ = std::make_unique<baseline::HostCpu>(dpu_->engine(), options_.host);
  }

  ASSIGN_OR_RETURN(storage::HashIndex flows,
                   storage::HashIndex::Create(&dpu_->store(), kFlowIndexId, options_.flow_buckets,
                                              options_.flow_hints));
  flows_ = std::make_unique<storage::HashIndex>(std::move(flows));
  ASSIGN_OR_RETURN(lb_, apps::LoadBalancer::Create(dpu_, backends_, options_.lb_resident,
                                                   options_.lb_spill_buckets));
  ASSIGN_OR_RETURN(fail2ban_, apps::Fail2Ban::Create(dpu_, options_.fail2ban));
  return Status::Ok();
}

Result<uint64_t> XdpPipeline::RunStage(size_t stage, MutableByteSpan ctx) {
  if (ma_) {
    return ma_->RunStage(stage, ctx);
  }
  ASSIGN_OR_RETURN(ebpf::ExecResult result, host_vm_->Run(host_programs_[stage], ctx));
  host_->Compute(result.insns_executed);  // ~1 cycle/insn interpreted filter
  return result.return_value;
}

void XdpPipeline::NoteVerdict(uint64_t disposition) {
  verdict_hash_ = (verdict_hash_ ^ disposition) * 0x100000001b3ull;
}

Status XdpPipeline::SlowPath(const TraceFrameMeta& meta, sim::SimTime packet_arrival,
                             const NewFlowFn& on_new_flow, uint64_t* disposition) {
  sim::Engine* clock = dpu_->engine();
  counters_.Increment("xdp_slow_packets");
  if (clock->Now() < packet_arrival) {
    clock->AdvanceTo(packet_arrival);
  }
  const sim::SimTime deadline =
      options_.slow_deadline > 0 ? packet_arrival + options_.slow_deadline : sim::Engine::kNever;
  if (admission_.Decide(packet_arrival, clock->Now(), deadline) !=
      sim::AdmissionDecision::kAdmit) {
    counters_.Increment("xdp_slow_shed");
    *disposition = kDispSlowShed;
    return Status::Ok();
  }
  counters_.Increment("xdp_slow_admitted");

  const bool teardown = (meta.packet.tcp_flags & (apps::kTcpFin | apps::kTcpRst)) != 0;
  Bytes key_bytes = meta.packet.flow.Serialize();
  const ByteSpan key(key_bytes.data(), key_bytes.size());
  const Bytes front_key = U64Key(FrontKeyOf(meta.packet.flow));

  if (teardown) {
    Status deleted = flows_->Delete(key);
    if (deleted.ok()) {
      counters_.Increment("xdp_teardowns");
    } else if (deleted.code() != StatusCode::kNotFound) {
      return deleted;
    }
    RETURN_IF_ERROR(lb_->Route(meta.packet).status());
    // Unpin from the fabric maps so the chain stops TXing the dead flow.
    (void)dpu_->maps().Get(pins_map_)->Delete(ByteSpan(front_key.data(), front_key.size()));
    (void)dpu_->maps().Get(front_map_)->Delete(ByteSpan(front_key.data(), front_key.size()));
    *disposition = kDispTeardown;
  } else {
    Result<Bytes> record = flows_->Get(key);
    if (record.ok()) {
      // Established cold flow: bump its packet count in place (same-size
      // overwrite -> value-bytes-only write on the HBM tier).
      apps::Backend backend;
      backend.ip = GetU32(ByteSpan(record->data(), record->size()), 0);
      backend.port = GetU16(ByteSpan(record->data(), record->size()), 4);
      const uint64_t count = GetU64(ByteSpan(record->data(), record->size()), 6) + 1;
      Bytes value = FlowRecord(backend, count);
      RETURN_IF_ERROR(flows_->Put(key, ByteSpan(value.data(), value.size())));
      counters_.Increment("xdp_flow_updates");
    } else if (record.status().code() == StatusCode::kNotFound) {
      // New flow (ramp SYN, or a flow whose registration was shed): place
      // it, track it, pin it, and hand it to the spray hook.
      ASSIGN_OR_RETURN(apps::Backend backend, lb_->Route(meta.packet));
      Bytes value = FlowRecord(backend, 1);
      RETURN_IF_ERROR(flows_->Put(key, ByteSpan(value.data(), value.size())));
      counters_.Increment("xdp_flow_inserts");
      // Best effort: the pin map holds the hot set; beyond capacity the
      // flow simply stays on the slow path.
      const Bytes pin_value = U64Key(backend.ip - kBackendIpBase);
      Result<uint32_t> pinned =
          dpu_->maps().Get(pins_map_)->Update(ByteSpan(front_key.data(), front_key.size()),
                                              ByteSpan(pin_value.data(), pin_value.size()));
      if (!pinned.ok() && pinned.status().code() != StatusCode::kResourceExhausted) {
        return pinned.status();
      }
      counters_.Increment("xdp_sprayed");
      if (on_new_flow) {
        on_new_flow(meta.packet.flow, backend, clock->Now());
      }
    } else {
      return record.status();
    }
    *disposition = kDispSlowForward;
  }
  admission_.OnAdmitted(packet_arrival, clock->Now());
  return Status::Ok();
}

Status XdpPipeline::ProcessBatch(uint64_t first, uint32_t count, sim::SimTime arrival,
                                 const NewFlowFn& on_new_flow) {
  CHECK_GT(count, 0u);
  sim::Engine* clock = dpu_->engine();
  if (!started_) {
    started_ = true;
    t0_ = arrival - trace_.ArrivalOf(first);
    steady_first_arrival_ = t0_ + trace_.SteadyStart();
  }
  if (clock->Now() < arrival) {
    clock->AdvanceTo(arrival);
  }
  counters_.Increment("xdp_rx_batches");
  counters_.Add("xdp_rx_frames", count);
  const sim::Duration wire = trace_.FrameWireTime();
  // The batch is handed onward once its last frame is fully received
  // (ramp frames are setup-paced, steady frames wire-paced).
  const sim::SimTime batch_received = t0_ + trace_.ArrivalOf(first + count - 1) + wire;

  // NIC ring flow control: retire batches whose service completed before
  // this one arrived, then claim a slot — or shed the whole batch.
  while (!rx_in_flight_.empty() && rx_in_flight_.front() <= arrival) {
    rx_in_flight_.pop_front();
    rx_credits_.Release();
  }
  for (uint32_t i = 0; i < count; ++i) {
    if (first + i >= trace_.ramp_packets()) {
      ++steady_offered_;
    }
  }
  if (!rx_credits_.TryAcquire()) {
    counters_.Add("xdp_rx_overflow", count);
    for (uint32_t i = 0; i < count; ++i) {
      NoteVerdict(kDispRxDrop);
    }
    return Status::Ok();
  }

  // Fabric service: store-and-forward at batch granularity, overlapped
  // with everything the slow path does on the node clock.
  obs::SpanId root = 0;
  obs::TraceContext root_ctx;
  if (tracer_ != nullptr) {
    root = tracer_->BeginAsync(obs::Subsystem::kEngine, "xdp_batch", arrival);
    root_ctx = tracer_->ContextOf(root);
    tracer_->End(tracer_->BeginAsync(obs::Subsystem::kNet, "rx", arrival, root_ctx),
                 batch_received);
  }
  sim::SimTime fabric_done = 0;
  if (ma_) {
    const sim::SimTime fabric_start = std::max(fabric_busy_, batch_received);
    const sim::Duration service = ma_->BatchTime(count);
    fabric_done = fabric_start + service;
    fabric_busy_ = fabric_done;
    dpu_->energy().Busy(sim::DpuPowerIds::kFabric, service);
    counters_.Add("xdp_fabric_cycles", ma_->BatchCycles(count));
    if (tracer_ != nullptr) {
      sim::SimTime cursor = fabric_start;
      for (size_t s = 0; s < ma_->StageCount(); ++s) {
        const fpga::MatchActionStageInfo& info = ma_->stage(s);
        const sim::Duration fill = sim::CyclesToTime(info.critical_path_cycles, info.fmax_mhz);
        tracer_->End(tracer_->BeginAsync(obs::Subsystem::kFpga, "ma/" + info.name, cursor,
                                         root_ctx),
                     cursor + fill);
        cursor += fill;
      }
      if (fabric_done > cursor) {
        tracer_->End(tracer_->BeginAsync(obs::Subsystem::kFpga, "ma/stream", cursor, root_ctx),
                     fabric_done);
      }
    }
  } else {
    host_->Interrupt();  // NAPI-style: one IRQ + one syscall per batch
    host_->Syscall();
  }

  // Per-frame functional pass + slow-path work. Span attribution for the
  // slow path is accumulated as durations and laid out sequentially after
  // the loop (ops of one batch are contiguous on the node clock).
  const sim::SimTime slow_window_start = std::max(clock->Now(), arrival);
  sim::Duration store_time = 0;
  sim::Duration app_time = 0;
  sim::Duration host_time = 0;
  uint8_t frame[PacketTrace::kCtxBytes];
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t index = first + i;
    const sim::SimTime packet_arrival = t0_ + trace_.ArrivalOf(first + i);
    const TraceFrameMeta meta = trace_.FrameAt(index, MutableByteSpan(frame, sizeof frame));
    const bool steady = meta.phase == TracePhase::kSteady;
    sim::SimTime mark = clock->Now();
    if (host_) {
      host_->NetStackPacket();
    }
    ASSIGN_OR_RETURN(uint64_t guard_verdict, RunStage(0, MutableByteSpan(frame, sizeof frame)));
    uint64_t disposition = kDispFastTx;
    if (guard_verdict == fpga::kXdpDrop) {
      counters_.Increment("xdp_drop_banned");
      disposition = kDispBanned;
    } else if (guard_verdict == fpga::kXdpRedirect) {
      // Auth attempt: durable fail2ban accounting, behind admission (the
      // audit log is flash-priced work the attacker is trying to flood).
      if (host_) {
        host_time += clock->Now() - mark;
        mark = clock->Now();
      }
      if (clock->Now() < packet_arrival) {
        clock->AdvanceTo(packet_arrival);
        mark = clock->Now();
      }
      const sim::SimTime deadline = options_.slow_deadline > 0
                                        ? packet_arrival + options_.slow_deadline
                                        : sim::Engine::kNever;
      if (admission_.Decide(packet_arrival, clock->Now(), deadline) !=
          sim::AdmissionDecision::kAdmit) {
        counters_.Increment("xdp_auth_shed");
        disposition = kDispAuthShed;
      } else {
        ASSIGN_OR_RETURN(apps::Fail2Ban::Verdict verdict,
                         fail2ban_->OnAuthAttempt(meta.packet.flow.src_ip, /*auth_failed=*/true));
        if (verdict == apps::Fail2Ban::Verdict::kBanned) {
          // Push the ban into the fabric: from now on this source drops at
          // stage 1 for zero slow-path cost.
          const Bytes ip_key = U32Key(meta.packet.flow.src_ip);
          const Bytes one = U64Key(1);
          RETURN_IF_ERROR(dpu_->maps()
                              .Get(banned_map_)
                              ->Update(ByteSpan(ip_key.data(), ip_key.size()),
                                       ByteSpan(one.data(), one.size()))
                              .status());
        }
        admission_.OnAdmitted(packet_arrival, clock->Now());
        app_time += clock->Now() - mark;
        counters_.Increment("xdp_auth_reports");
        disposition = kDispAuthReport;
      }
    } else {
      if (host_) {
        host_time += clock->Now() - mark;
        mark = clock->Now();
      }
      ASSIGN_OR_RETURN(uint64_t flow_verdict, RunStage(1, MutableByteSpan(frame, sizeof frame)));
      if (host_) {
        host_time += clock->Now() - mark;
        mark = clock->Now();
      }
      if (flow_verdict == fpga::kXdpPass) {
        counters_.Increment("xdp_fast_hits");
        ASSIGN_OR_RETURN(uint64_t lb_verdict, RunStage(2, MutableByteSpan(frame, sizeof frame)));
        if (host_) {
          host_time += clock->Now() - mark;
          mark = clock->Now();
        }
        if (lb_verdict == fpga::kXdpTx) {
          counters_.Increment("xdp_fast_tx");
          disposition = kDispFastTx;
        } else {
          RETURN_IF_ERROR(SlowPath(meta, packet_arrival, on_new_flow, &disposition));
          store_time += clock->Now() - mark;
        }
      } else {
        counters_.Increment("xdp_front_miss");
        RETURN_IF_ERROR(SlowPath(meta, packet_arrival, on_new_flow, &disposition));
        store_time += clock->Now() - mark;
      }
    }
    NoteVerdict(disposition);
    if (steady &&
        (disposition == kDispFastTx || disposition == kDispSlowForward ||
         disposition == kDispTeardown)) {
      ++steady_delivered_;
    }
  }

  const sim::SimTime batch_service_done = ma_ ? std::max(fabric_done, clock->Now()) : clock->Now();
  rx_in_flight_.push_back(batch_service_done);
  if (tracer_ != nullptr) {
    sim::SimTime cursor = slow_window_start;
    if (host_time > 0) {
      tracer_->End(tracer_->BeginAsync(obs::Subsystem::kNet, "host_stack", cursor, root_ctx),
                   cursor + host_time);
      cursor += host_time;
    }
    if (store_time > 0) {
      tracer_->End(tracer_->BeginAsync(obs::Subsystem::kStore, "flow_table", cursor, root_ctx),
                   cursor + store_time);
      cursor += store_time;
    }
    if (app_time > 0) {
      tracer_->End(tracer_->BeginAsync(obs::Subsystem::kApp, "fail2ban", cursor, root_ctx),
                   cursor + app_time);
    }
    tracer_->End(root, std::max(batch_service_done, batch_received));
  }
  return Status::Ok();
}

Status XdpPipeline::Run(const NewFlowFn& on_new_flow) {
  const sim::SimTime t0 = dpu_->engine()->Now() + 1000;
  const uint64_t total = trace_.total_packets();
  for (uint64_t first = 0; first < total; first += options_.rx_batch) {
    const uint32_t count =
        static_cast<uint32_t>(std::min<uint64_t>(options_.rx_batch, total - first));
    RETURN_IF_ERROR(ProcessBatch(first, count, t0 + trace_.ArrivalOf(first), on_new_flow));
  }
  return Status::Ok();
}

XdpStats XdpPipeline::Snapshot() const {
  XdpStats stats;
  stats.rx_frames = counters_.Get("xdp_rx_frames");
  stats.rx_batches = counters_.Get("xdp_rx_batches");
  stats.rx_overflow = counters_.Get("xdp_rx_overflow");
  stats.drop_banned = counters_.Get("xdp_drop_banned");
  stats.auth_reports = counters_.Get("xdp_auth_reports");
  stats.auth_shed = counters_.Get("xdp_auth_shed");
  stats.bans = fail2ban_->bans_issued();
  stats.fast_hits = counters_.Get("xdp_fast_hits");
  stats.fast_tx = counters_.Get("xdp_fast_tx");
  stats.slow_packets = counters_.Get("xdp_slow_packets");
  stats.slow_admitted = counters_.Get("xdp_slow_admitted");
  stats.slow_shed = counters_.Get("xdp_slow_shed");
  stats.flow_inserts = counters_.Get("xdp_flow_inserts");
  stats.flow_updates = counters_.Get("xdp_flow_updates");
  stats.teardowns = counters_.Get("xdp_teardowns");
  stats.sprayed = counters_.Get("xdp_sprayed");
  const storage::HashIndexStats flow_stats = flows_->Stats();
  stats.flow_entries = flow_stats.entries;
  stats.flow_max_chain = flow_stats.max_chain;
  stats.flow_mean_chain = flow_stats.mean_chain;
  stats.flow_overflow_buckets = flow_stats.overflow_buckets;
  stats.flow_occupancy = flow_stats.occupancy;
  const apps::LoadBalancerStats& lb_stats = lb_->stats();
  stats.lb_new_flows = lb_stats.new_flows;
  stats.lb_spills = lb_stats.spills;
  stats.lb_spill_hits = lb_stats.spill_hits;
  stats.lb_spill_entries = lb_->spill().EntryCount();
  stats.clock_ns = dpu_->engine()->Now();
  stats.fabric_busy_ns = ma_ ? fabric_busy_ : stats.clock_ns;
  stats.steady_offered = steady_offered_;
  stats.steady_delivered = steady_delivered_;
  if (steady_offered_ > 0) {
    const sim::SimTime steady_end = std::max(stats.fabric_busy_ns, stats.clock_ns);
    stats.steady_window_ns =
        steady_end > steady_first_arrival_ ? steady_end - steady_first_arrival_ : 0;
  }
  stats.verdict_hash = verdict_hash_;
  return stats;
}

// -- XdpCluster --------------------------------------------------------------

namespace {

dpu::HyperionConfig IngressConfig(const XdpClusterOptions& options) {
  dpu::HyperionConfig config;
  config.nvme_devices = 1;
  config.lbas_per_device = std::max<uint64_t>(options.lbas_per_device, 65536);
  // The flow-table directory lives on the HBM tier; size it for the
  // root buckets plus chain growth.
  config.hbm_bytes =
      std::max<uint64_t>(options.hbm_bytes, uint64_t{options.xdp.flow_buckets} * 4096 * 2);
  config.dram_bytes = std::max<uint64_t>(options.dram_bytes, 128ull << 20);
  config.link_gbps = options.fabric.default_link_gbps;
  return config;
}

dpu::HyperionConfig BackendConfig(const XdpClusterOptions& options) {
  dpu::HyperionConfig config;
  config.nvme_devices = 1;
  config.lbas_per_device = options.lbas_per_device;
  config.dram_bytes = options.dram_bytes;
  config.hbm_bytes = options.hbm_bytes;
  config.link_gbps = options.fabric.default_link_gbps;
  return config;
}

}  // namespace

XdpCluster::IngressNode::IngressNode(XdpCluster* cluster)
    : fabric(&clock, cluster->options_.fabric),
      dpu(&clock, &fabric, IngressConfig(cluster->options_)) {
  CHECK(dpu.Boot().ok());
  auto built = XdpPipeline::Create(&dpu, cluster->options_.xdp);
  CHECK(built.ok()) << built.status().message();
  pipeline = std::move(*built);
  pipeline->set_tracer(&tracer);
  endpoint = std::make_unique<dpu::ShardedRpcNode>(
      cluster->engine_.get(), cluster->ShardOf(0), &dpu.rpc(), &clock,
      cluster->options_.fabric, cluster->options_.fabric.default_link_gbps);
}

XdpCluster::BackendNode::BackendNode(XdpCluster* cluster, uint32_t id)
    : id(id),
      fabric(&clock, cluster->options_.fabric),
      dpu(&clock, &fabric, BackendConfig(cluster->options_)) {
  CHECK(dpu.Boot().ok());
  auto installed = dpu::HyperionServices::Install(&dpu, storage::KvBackend::kBTree);
  CHECK(installed.ok());
  services = std::move(*installed);
  endpoint = std::make_unique<dpu::ShardedRpcNode>(
      cluster->engine_.get(), cluster->ShardOf(id), &dpu.rpc(), &clock,
      cluster->options_.fabric, cluster->options_.fabric.default_link_gbps);
  endpoint->SetOverloadPolicy(cluster->options_.policy);
}

XdpCluster::XdpCluster(const XdpClusterOptions& options) : options_(options) {
  CHECK_GT(options_.num_backends, 0u);
  CHECK_GT(options_.spray_sample, 0u);
  // The pipeline's backend ring mirrors the cluster layout 1:1.
  options_.xdp.backends = options_.num_backends;
  const uint32_t nodes = num_nodes();
  if (options_.num_shards == 0 || options_.num_shards > nodes) {
    options_.num_shards = nodes;
  }
  sim::ParallelEngineOptions popts;
  popts.num_shards = options_.num_shards;
  popts.lookahead_floor = options_.lookahead_floor;
  popts.use_threads = options_.use_threads;
  engine_ = std::make_unique<sim::ParallelEngine>(popts);

  // Id-ordered construction pins cross-shard source order: ingress is
  // node 0, backends 1..N (the OverloadCluster scheme).
  ingress_ = std::make_unique<IngressNode>(this);
  backends_.reserve(options_.num_backends);
  for (uint32_t id = 1; id <= options_.num_backends; ++id) {
    backends_.push_back(std::make_unique<BackendNode>(this, id));
  }
}

XdpCluster::~XdpCluster() = default;

uint32_t XdpCluster::ShardOf(uint32_t node) const {
  return static_cast<uint32_t>(uint64_t{node} * options_.num_shards / num_nodes());
}

void XdpCluster::SprayFlow(const apps::FlowKey& key, const apps::Backend& backend,
                           sim::SimTime now) {
  if (spray_seen_++ % options_.spray_sample != 0) {
    return;
  }
  const uint32_t idx = backend.ip - XdpPipeline::kBackendIpBase;
  CHECK_LT(idx, backends_.size());
  dpu::RpcRequest request;
  request.service = dpu::ServiceId::kKv;
  request.opcode = dpu::KvOp::kPut;
  Bytes flow_bytes = key.Serialize();
  ByteWriter payload(16 + flow_bytes.size());
  payload.PutU64(key.Hash());
  payload.PutU32(static_cast<uint32_t>(flow_bytes.size()));
  payload.PutBytes(ByteSpan(flow_bytes.data(), flow_bytes.size()));
  request.payload = Buffer(payload.Take());
  request.deadline = options_.rpc_deadline > 0 ? now + options_.rpc_deadline : sim::Engine::kNever;
  ++spray_issued_;
  ingress_->endpoint->CallAsync(backends_[idx]->endpoint.get(), request,
                                [this](Result<dpu::RpcResponse> result) {
                                  if (!result.ok()) {
                                    ++spray_failed_;
                                  } else if (result->status.ok()) {
                                    ++spray_ok_;
                                  } else if (result->status.code() ==
                                             StatusCode::kResourceExhausted) {
                                    ++spray_rejected_;
                                  } else {
                                    ++spray_failed_;
                                  }
                                });
}

void XdpCluster::ScheduleBatch(uint64_t first) {
  const PacketTrace& trace = ingress_->pipeline->trace();
  if (first >= trace.total_packets()) {
    return;
  }
  const uint32_t count = static_cast<uint32_t>(
      std::min<uint64_t>(options_.xdp.rx_batch, trace.total_packets() - first));
  const sim::SimTime when = start_base_ + trace.ArrivalOf(first);
  engine_->shard(ShardOf(0)).ScheduleAt(when, [this, first, count, when] {
    Status status = ingress_->pipeline->ProcessBatch(
        first, count, when,
        [this](const apps::FlowKey& key, const apps::Backend& backend, sim::SimTime now) {
          SprayFlow(key, backend, now);
        });
    CHECK(status.ok()) << status.message();
    ScheduleBatch(first + uint64_t{count});
  });
}

XdpClusterResult XdpCluster::Run() {
  CHECK(!ran_);
  ran_ = true;
  start_base_ = ingress_->clock.Now() + 1000;
  ScheduleBatch(0);
  engine_->Run();

  XdpClusterResult result;
  result.xdp = ingress_->pipeline->Snapshot();
  result.spray_issued = spray_issued_;
  result.spray_ok = spray_ok_;
  result.spray_rejected = spray_rejected_;
  result.spray_failed = spray_failed_;
  sim::SimTime latest = std::max(ingress_->clock.Now(), ingress_->pipeline->fabric_busy());
  for (const auto& backend : backends_) {
    const sim::Counters& counters = backend->endpoint->counters();
    result.backend_served += counters.Get("rpc_async_served");
    result.backend_shed +=
        counters.Get("rpc_shed_queue") + counters.Get("rpc_shed_deadline");
    latest = std::max(latest, backend->clock.Now());
  }
  result.messages = engine_->stats().messages;
  result.ingress_clock_ns = ingress_->clock.Now();
  result.makespan_ns = latest > start_base_ ? latest - start_base_ : 0;
  return result;
}

}  // namespace hyperion::load
