#include "src/ebpf/verifier.h"

#include <array>
#include <deque>
#include <sstream>

#include "src/common/check.h"

namespace hyperion::ebpf {

namespace {

enum class RegType : uint8_t {
  kUninit,
  kScalar,
  kPtrStack,     // offset relative to the stack base (0..512)
  kPtrCtx,       // offset into the context buffer
  kPtrMapValue,  // offset into a map value, possibly null
  kMapRef,       // argument for map helpers
};

struct RegState {
  RegType type = RegType::kUninit;
  int64_t off = 0;        // pointer offset within its region
  uint32_t map_id = 0;    // for kPtrMapValue / kMapRef
  bool maybe_null = false;
  bool known = false;     // scalar with known constant value
  uint64_t value = 0;

  friend bool operator==(const RegState&, const RegState&) = default;
};

struct MachineState {
  std::array<RegState, kNumRegisters> regs;
  size_t pc = 0;
  uint32_t depth = 0;
};

Status Err(size_t pc, const Insn& insn, const std::string& what) {
  std::ostringstream os;
  os << "insn " << pc << " (" << Disassemble(insn) << "): " << what;
  return PermissionDenied(os.str());
}

bool IsPointer(RegType t) {
  return t == RegType::kPtrStack || t == RegType::kPtrCtx || t == RegType::kPtrMapValue;
}

}  // namespace

Result<VerifyStats> Verify(const Program& prog, const MapRegistry& maps, VerifyOptions options) {
  const auto& insns = prog.insns;
  if (insns.empty()) {
    return PermissionDenied("empty program");
  }
  if (insns.size() > 65536) {
    return PermissionDenied("program too large");
  }

  VerifyStats stats;
  MachineState init;
  init.regs[1] = RegState{RegType::kPtrCtx, 0, 0, false, false, 0};
  init.regs[2] = RegState{RegType::kScalar, 0, 0, false, true, prog.ctx_size};
  init.regs[10] = RegState{RegType::kPtrStack, kStackSize, 0, false, false, 0};

  std::deque<MachineState> worklist;
  worklist.push_back(init);

  auto check_mem_access = [&](size_t pc, const Insn& insn, const RegState& base, int64_t off,
                              uint32_t size) -> Status {
    const int64_t lo = base.off + off;
    const int64_t hi = lo + size;
    switch (base.type) {
      case RegType::kPtrStack:
        if (lo < 0 || hi > kStackSize) {
          return Err(pc, insn, "stack access out of [0,512)");
        }
        return Status::Ok();
      case RegType::kPtrCtx:
        if (lo < 0 || hi > static_cast<int64_t>(prog.ctx_size)) {
          return Err(pc, insn, "context access out of bounds");
        }
        return Status::Ok();
      case RegType::kPtrMapValue: {
        if (base.maybe_null) {
          return Err(pc, insn, "map value pointer may be null (missing null check)");
        }
        const Map* map = maps.Get(base.map_id);
        if (map == nullptr) {
          return Err(pc, insn, "reference to unknown map");
        }
        if (lo < 0 || hi > static_cast<int64_t>(map->spec().value_size)) {
          return Err(pc, insn, "map value access out of bounds");
        }
        return Status::Ok();
      }
      default:
        return Err(pc, insn, "memory access through non-pointer register");
    }
  };

  while (!worklist.empty()) {
    MachineState st = std::move(worklist.front());
    worklist.pop_front();
    ++stats.paths_explored;

    while (true) {
      if (++stats.states_visited > options.max_states) {
        return PermissionDenied("verifier state budget exhausted");
      }
      if (st.pc >= insns.size()) {
        return PermissionDenied("control flow falls off the end of the program");
      }
      stats.max_depth = std::max(stats.max_depth, st.depth);
      const size_t pc = st.pc;
      const Insn& insn = insns[pc];
      const uint8_t cls = insn.Class();

      if (cls == kClassAlu64 || cls == kClassAlu) {
        const uint8_t op = insn.AluOp();
        RegState& dst = st.regs[insn.dst];
        if (insn.dst >= kNumRegisters || (insn.IsSrcReg() && insn.src >= kNumRegisters)) {
          return Err(pc, insn, "bad register number");
        }
        if (insn.dst == 10) {
          return Err(pc, insn, "r10 (frame pointer) is read-only");
        }
        if (op == kAluEnd) {
          if (cls != kClassAlu) {
            return Err(pc, insn, "endian op must use the 32-bit ALU class");
          }
          if (insn.imm != 16 && insn.imm != 32 && insn.imm != 64) {
            return Err(pc, insn, "endian width must be 16/32/64");
          }
          if (dst.type != RegType::kScalar) {
            return Err(pc, insn, "endian swap of a non-scalar");
          }
          dst.known = false;  // conservatively forget the constant
          st.pc = pc + 1;
          continue;
        }
        const RegState* src = insn.IsSrcReg() ? &st.regs[insn.src] : nullptr;
        if (src != nullptr && src->type == RegType::kUninit) {
          return Err(pc, insn, "read of uninitialized register");
        }
        if (op == kAluMov) {
          if (src != nullptr) {
            if (cls == kClassAlu && IsPointer(src->type)) {
              return Err(pc, insn, "32-bit move would truncate a pointer");
            }
            dst = *src;
          } else {
            dst = RegState{RegType::kScalar, 0, 0, false, true,
                           static_cast<uint64_t>(static_cast<int64_t>(insn.imm))};
          }
          st.pc = pc + 1;
          continue;
        }
        if (op == kAluNeg) {
          if (dst.type != RegType::kScalar) {
            return Err(pc, insn, "arithmetic on non-scalar");
          }
          if (dst.known) {
            dst.value = ~dst.value + 1;
          }
          st.pc = pc + 1;
          continue;
        }
        if (dst.type == RegType::kUninit) {
          return Err(pc, insn, "arithmetic on uninitialized register");
        }
        // Pointer arithmetic: only ADD/SUB with a verifier-known amount.
        if (IsPointer(dst.type)) {
          if (cls != kClassAlu64 || (op != kAluAdd && op != kAluSub)) {
            return Err(pc, insn, "unsupported operation on pointer");
          }
          if (dst.type == RegType::kPtrMapValue && dst.maybe_null) {
            return Err(pc, insn, "arithmetic on maybe-null pointer");
          }
          int64_t amount;
          if (src == nullptr) {
            amount = insn.imm;
          } else if (src->type == RegType::kScalar && src->known) {
            amount = static_cast<int64_t>(src->value);
          } else {
            return Err(pc, insn, "pointer arithmetic with unbounded scalar");
          }
          dst.off += op == kAluAdd ? amount : -amount;
          st.pc = pc + 1;
          continue;
        }
        if (dst.type == RegType::kMapRef) {
          return Err(pc, insn, "arithmetic on map reference");
        }
        if (src != nullptr && IsPointer(src->type)) {
          // scalar op pointer: allow only scalar += nothing; reject to keep
          // pointers from leaking into scalars.
          return Err(pc, insn, "pointer used as scalar operand");
        }
        // Scalar ALU: fold constants where both sides are known.
        const bool src_known = src == nullptr || (src->type == RegType::kScalar && src->known);
        uint64_t b = 0;
        if (src == nullptr) {
          b = static_cast<uint64_t>(static_cast<int64_t>(insn.imm));
        } else if (src_known) {
          b = src->value;
        }
        if (dst.known && src_known) {
          uint64_t a = dst.value;
          if (cls == kClassAlu) {
            a &= 0xffffffffull;
            b &= 0xffffffffull;
          }
          uint64_t out = 0;
          bool folded = true;
          switch (op) {
            case kAluAdd:
              out = a + b;
              break;
            case kAluSub:
              out = a - b;
              break;
            case kAluMul:
              out = a * b;
              break;
            case kAluDiv:
              out = b == 0 ? 0 : a / b;
              break;
            case kAluMod:
              out = b == 0 ? a : a % b;
              break;
            case kAluOr:
              out = a | b;
              break;
            case kAluAnd:
              out = a & b;
              break;
            case kAluXor:
              out = a ^ b;
              break;
            case kAluLsh:
              out = a << (b & 63);
              break;
            case kAluRsh:
              out = a >> (b & 63);
              break;
            case kAluArsh:
              out = static_cast<uint64_t>(static_cast<int64_t>(a) >> (b & 63));
              break;
            default:
              folded = false;
              break;
          }
          if (cls == kClassAlu) {
            out &= 0xffffffffull;
          }
          dst = RegState{RegType::kScalar, 0, 0, false, folded, out};
        } else {
          dst = RegState{RegType::kScalar, 0, 0, false, false, 0};
        }
        st.pc = pc + 1;
        continue;
      }

      if (cls == kClassLd) {
        if (!insn.IsLdImm64() || pc + 1 >= insns.size()) {
          return Err(pc, insn, "malformed wide load");
        }
        if (insn.dst == 10) {
          return Err(pc, insn, "r10 is read-only");
        }
        if (insn.src == kPseudoMapFd) {
          const auto map_id = static_cast<uint32_t>(insn.imm);
          if (maps.Get(map_id) == nullptr) {
            return Err(pc, insn, "reference to unknown map");
          }
          st.regs[insn.dst] = RegState{RegType::kMapRef, 0, map_id, false, false, 0};
        } else {
          const uint64_t value =
              (static_cast<uint64_t>(static_cast<uint32_t>(insns[pc + 1].imm)) << 32) |
              static_cast<uint32_t>(insn.imm);
          st.regs[insn.dst] = RegState{RegType::kScalar, 0, 0, false, true, value};
        }
        st.pc = pc + 2;
        continue;
      }

      if (cls == kClassLdx) {
        if (insn.dst == 10) {
          return Err(pc, insn, "r10 is read-only");
        }
        const RegState& base = st.regs[insn.src];
        const uint32_t size = 1u << ((insn.Size() >> 3) == 0   ? 2
                                     : (insn.Size() == kSizeH) ? 1
                                     : (insn.Size() == kSizeB) ? 0
                                                               : 3);
        RETURN_IF_ERROR(check_mem_access(pc, insn, base, insn.off, size));
        // Loaded data is an unknown scalar.
        st.regs[insn.dst] = RegState{RegType::kScalar, 0, 0, false, false, 0};
        st.pc = pc + 1;
        continue;
      }

      if (cls == kClassStx || cls == kClassSt) {
        if (cls == kClassStx && insn.Mode() == kModeAtomic) {
          if (insn.imm != kAtomicAdd) {
            return Err(pc, insn, "unsupported atomic operation");
          }
          if (insn.Size() != kSizeW && insn.Size() != kSizeDw) {
            return Err(pc, insn, "atomic ops are 32/64-bit only");
          }
          if (st.regs[insn.src].type != RegType::kScalar) {
            return Err(pc, insn, "atomic add of a non-scalar");
          }
        }
        const RegState& base = st.regs[insn.dst];
        const uint32_t size = 1u << ((insn.Size() >> 3) == 0   ? 2
                                     : (insn.Size() == kSizeH) ? 1
                                     : (insn.Size() == kSizeB) ? 0
                                                               : 3);
        RETURN_IF_ERROR(check_mem_access(pc, insn, base, insn.off, size));
        if (cls == kClassStx) {
          const RegState& src = st.regs[insn.src];
          if (src.type == RegType::kUninit) {
            return Err(pc, insn, "store of uninitialized register");
          }
          if (IsPointer(src.type) && base.type != RegType::kPtrStack) {
            return Err(pc, insn, "pointer may only be spilled to the stack");
          }
        }
        st.pc = pc + 1;
        continue;
      }

      if (cls == kClassJmp || cls == kClassJmp32) {
        const uint8_t op = insn.AluOp();
        if (op == kJmpExit) {
          const RegState& r0 = st.regs[0];
          if (r0.type != RegType::kScalar) {
            return Err(pc, insn, "r0 must hold a scalar return value at exit");
          }
          break;  // this path is done
        }
        if (op == kJmpCall) {
          const auto helper = static_cast<HelperId>(insn.imm);
          auto require_map_ref = [&](int r) -> Status {
            if (st.regs[r].type != RegType::kMapRef) {
              return Err(pc, insn, "helper argument r1 must be a map reference");
            }
            return Status::Ok();
          };
          auto require_mem_arg = [&](int r, uint32_t len) -> Status {
            const RegState& arg = st.regs[r];
            if (!IsPointer(arg.type)) {
              return Err(pc, insn, "helper pointer argument is not a pointer");
            }
            return check_mem_access(pc, insn, arg, 0, len);
          };
          switch (helper) {
            case HelperId::kMapLookup: {
              RETURN_IF_ERROR(require_map_ref(1));
              const Map* map = maps.Get(st.regs[1].map_id);
              RETURN_IF_ERROR(require_mem_arg(2, map->spec().key_size));
              RegState r0{RegType::kPtrMapValue, 0, st.regs[1].map_id, true, false, 0};
              st.regs[0] = r0;
              break;
            }
            case HelperId::kMapUpdate: {
              RETURN_IF_ERROR(require_map_ref(1));
              const Map* map = maps.Get(st.regs[1].map_id);
              RETURN_IF_ERROR(require_mem_arg(2, map->spec().key_size));
              RETURN_IF_ERROR(require_mem_arg(3, map->spec().value_size));
              st.regs[0] = RegState{RegType::kScalar, 0, 0, false, false, 0};
              break;
            }
            case HelperId::kMapDelete: {
              RETURN_IF_ERROR(require_map_ref(1));
              const Map* map = maps.Get(st.regs[1].map_id);
              RETURN_IF_ERROR(require_mem_arg(2, map->spec().key_size));
              st.regs[0] = RegState{RegType::kScalar, 0, 0, false, false, 0};
              break;
            }
            case HelperId::kKtimeGetNs:
            case HelperId::kGetPrandomU32:
              st.regs[0] = RegState{RegType::kScalar, 0, 0, false, false, 0};
              break;
            default:
              return Err(pc, insn, "unknown helper id");
          }
          for (int r = 1; r <= 5; ++r) {
            st.regs[r] = RegState{};  // caller-saved, now uninit
          }
          st.pc = pc + 1;
          continue;
        }
        // Branches.
        const int64_t target = static_cast<int64_t>(pc) + 1 + insn.off;
        if (target < 0 || static_cast<size_t>(target) >= insns.size()) {
          return Err(pc, insn, "jump out of program");
        }
        if (target <= static_cast<int64_t>(pc)) {
          return Err(pc, insn, "back edge (loops are not supported)");
        }
        if (op == kJmpJa) {
          st.pc = static_cast<size_t>(target);
          continue;
        }
        const RegState& dst = st.regs[insn.dst];
        if (dst.type == RegType::kUninit) {
          return Err(pc, insn, "branch on uninitialized register");
        }
        if (insn.IsSrcReg() && st.regs[insn.src].type == RegType::kUninit) {
          return Err(pc, insn, "branch on uninitialized register");
        }
        // Null-check refinement: `if rX ==/!= 0` on a maybe-null map value.
        MachineState taken = st;
        taken.pc = static_cast<size_t>(target);
        taken.depth = st.depth + 1;
        MachineState fallthrough = st;
        fallthrough.pc = pc + 1;
        fallthrough.depth = st.depth + 1;
        if (dst.type == RegType::kPtrMapValue && dst.maybe_null && !insn.IsSrcReg() &&
            insn.imm == 0) {
          if (op == kJmpJeq) {
            // taken: pointer is null -> becomes scalar 0; fallthrough: non-null.
            taken.regs[insn.dst] = RegState{RegType::kScalar, 0, 0, false, true, 0};
            fallthrough.regs[insn.dst].maybe_null = false;
          } else if (op == kJmpJne) {
            taken.regs[insn.dst].maybe_null = false;
            fallthrough.regs[insn.dst] = RegState{RegType::kScalar, 0, 0, false, true, 0};
          }
        }
        worklist.push_back(std::move(taken));
        st = std::move(fallthrough);
        continue;
      }

      return Err(pc, insn, "unknown instruction class");
    }
  }
  return stats;
}

}  // namespace hyperion::ebpf
