#include "src/ebpf/maps.h"

#include <algorithm>

#include "src/common/check.h"

namespace hyperion::ebpf {

Map::Map(MapSpec spec) : spec_(std::move(spec)) {
  CHECK_GT(spec_.key_size, 0u);
  CHECK_GT(spec_.value_size, 0u);
  CHECK_GT(spec_.max_entries, 0u);
  if (spec_.type == MapType::kArray) {
    CHECK_EQ(spec_.key_size, 4u) << "array map keys are u32 indexes";
    // Array maps are fully pre-allocated and every index always exists.
    values_.resize(static_cast<size_t>(spec_.max_entries) * spec_.value_size, 0);
    next_slot_ = spec_.max_entries;
  }
}

uint32_t Map::EntryCount() const {
  if (spec_.type == MapType::kArray) {
    return spec_.max_entries;
  }
  return static_cast<uint32_t>(index_.size());
}

Result<uint32_t> Map::LookupHandle(ByteSpan key) const {
  if (key.size() != spec_.key_size) {
    return InvalidArgument("key size mismatch");
  }
  if (spec_.type == MapType::kArray) {
    const uint32_t idx = GetU32(key, 0);
    if (idx >= spec_.max_entries) {
      return NotFound("array index out of range");
    }
    return idx;
  }
  auto it = index_.find(std::string(reinterpret_cast<const char*>(key.data()), key.size()));
  if (it == index_.end()) {
    return NotFound("no such key");
  }
  return it->second;
}

Result<uint32_t> Map::Update(ByteSpan key, ByteSpan value) {
  if (key.size() != spec_.key_size) {
    return InvalidArgument("key size mismatch");
  }
  if (value.size() != spec_.value_size) {
    return InvalidArgument("value size mismatch");
  }
  if (spec_.type == MapType::kArray) {
    const uint32_t idx = GetU32(key, 0);
    if (idx >= spec_.max_entries) {
      return OutOfRange("array index out of range");
    }
    std::copy(value.begin(), value.end(),
              values_.begin() + static_cast<ptrdiff_t>(idx) * spec_.value_size);
    return idx;
  }
  std::string key_str(reinterpret_cast<const char*>(key.data()), key.size());
  auto it = index_.find(key_str);
  uint32_t slot;
  if (it != index_.end()) {
    slot = it->second;
  } else {
    if (index_.size() >= spec_.max_entries) {
      return ResourceExhausted("map full");
    }
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = next_slot_++;
      values_.resize(static_cast<size_t>(next_slot_) * spec_.value_size, 0);
    }
    index_.emplace(std::move(key_str), slot);
  }
  std::copy(value.begin(), value.end(),
            values_.begin() + static_cast<ptrdiff_t>(slot) * spec_.value_size);
  return slot;
}

Status Map::Delete(ByteSpan key) {
  if (key.size() != spec_.key_size) {
    return InvalidArgument("key size mismatch");
  }
  if (spec_.type == MapType::kArray) {
    return InvalidArgument("array map entries cannot be deleted");
  }
  auto it = index_.find(std::string(reinterpret_cast<const char*>(key.data()), key.size()));
  if (it == index_.end()) {
    return NotFound("no such key");
  }
  free_slots_.push_back(it->second);
  index_.erase(it);
  return Status::Ok();
}

Result<Bytes> Map::ValueByHandle(uint32_t handle) const {
  if (static_cast<size_t>(handle + 1) * spec_.value_size > values_.size()) {
    return OutOfRange("bad map handle");
  }
  const auto* begin = values_.data() + static_cast<size_t>(handle) * spec_.value_size;
  return Bytes(begin, begin + spec_.value_size);
}

MutableByteSpan Map::MutableValue(uint32_t handle) {
  CHECK_LE(static_cast<size_t>(handle + 1) * spec_.value_size, values_.size());
  return MutableByteSpan(values_.data() + static_cast<size_t>(handle) * spec_.value_size,
                         spec_.value_size);
}

Result<Bytes> Map::Lookup(ByteSpan key) const {
  ASSIGN_OR_RETURN(uint32_t handle, LookupHandle(key));
  return ValueByHandle(handle);
}

std::vector<std::pair<Bytes, Bytes>> Map::Entries() const {
  std::vector<std::pair<Bytes, Bytes>> out;
  if (spec_.type == MapType::kArray) {
    for (uint32_t i = 0; i < spec_.max_entries; ++i) {
      Bytes key;
      PutU32(key, i);
      out.emplace_back(std::move(key), *ValueByHandle(i));
    }
    return out;
  }
  out.reserve(index_.size());
  for (const auto& [key, slot] : index_) {
    out.emplace_back(Bytes(key.begin(), key.end()), *ValueByHandle(slot));
  }
  return out;
}

uint32_t MapRegistry::Create(MapSpec spec) {
  maps_.push_back(std::make_unique<Map>(std::move(spec)));
  return static_cast<uint32_t>(maps_.size() - 1);
}

Map* MapRegistry::Get(uint32_t id) {
  return id < maps_.size() ? maps_[id].get() : nullptr;
}

const Map* MapRegistry::Get(uint32_t id) const {
  return id < maps_.size() ? maps_[id].get() : nullptr;
}

}  // namespace hyperion::ebpf
