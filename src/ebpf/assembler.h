// Minimal eBPF text assembler.
//
// Hyperion accepts any eBPF-producing frontend (§2.2: clang/LLVM from C,
// P4-to-eBPF, ...); for tests, examples and benches this repository ships a
// small assembler so programs are written in readable mnemonics instead of
// handcoded instruction structs. Syntax, one instruction per line:
//
//   ; fail2ban-style SYN counter
//   ldxb r3, [r1+47]          ; load TCP flags
//   and r3, 0x02
//   jeq r3, 0, pass
//   ld_map_fd r1, 0
//   mov r2, r10
//   add r2, -4
//   call map_lookup
//   jne r0, 0, found
//   mov r0, 1
//   exit
// pass:
//   mov r0, 0
//   exit
// found:
//   ldxdw r4, [r0+0]
//   add r4, 1
//   stxdw [r0+0], r4
//   mov r0, 2
//   exit
//
// Labels end with ':'; jump targets are labels; `call` accepts helper names
// (map_lookup, map_update, map_delete, ktime, prandom) or numeric ids.
// Immediates accept decimal and 0x-hex. `32`-suffixed ALU mnemonics (e.g.
// add32) operate on the low word.

#ifndef HYPERION_SRC_EBPF_ASSEMBLER_H_
#define HYPERION_SRC_EBPF_ASSEMBLER_H_

#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/ebpf/insn.h"

namespace hyperion::ebpf {

// Assembles `source` into a Program named `name`. Returns kInvalidArgument
// with line diagnostics on syntax errors.
Result<Program> Assemble(std::string_view source, std::string name = "prog",
                         uint32_t ctx_size = 1514);

}  // namespace hyperion::ebpf

#endif  // HYPERION_SRC_EBPF_ASSEMBLER_H_
