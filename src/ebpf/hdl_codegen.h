// eBPF -> spatial pipeline compiler (paper §2.2).
//
// The paper's programming model lowers verified eBPF to HDL, extracting
// parallelism on the way (the hXDP / eHDL "program warping" line of work
// the authors cite). This module performs that compilation against a
// parameterized fabric model:
//
//   1. split the program into basic blocks;
//   2. list-schedule each block onto `lanes` parallel functional units,
//      honouring register RAW/WAW hazards and a single memory port;
//   3. helper calls map to dedicated hardware engines with fixed latency;
//   4. the resulting plan gives cycles-per-block at a configured Fmax.
//
// Because the verifier rejects back edges, every program is a DAG of
// blocks and the whole plan is a feed-forward pipeline: one packet can be
// in flight per stage, which is where the throughput of experiment E6
// comes from. EstimateCycles() combines the plan with an instruction-level
// execution profile (Vm::set_exec_counts) to price a concrete workload.

#ifndef HYPERION_SRC_EBPF_HDL_CODEGEN_H_
#define HYPERION_SRC_EBPF_HDL_CODEGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/ebpf/insn.h"
#include "src/sim/time.h"

namespace hyperion::ebpf {

struct CodegenOptions {
  uint32_t lanes = 4;          // parallel ALU lanes per stage
  uint32_t mem_ports = 1;      // loads/stores per stage
  uint32_t helper_cycles = 8;  // latency of a helper engine (CAM lookup etc.)
  double fmax_mhz = 250.0;     // achieved fabric clock
};

struct PipelineStage {
  std::vector<size_t> insns;  // instruction indices co-issued this cycle
};

struct BlockPlan {
  size_t first = 0;  // first instruction index of the block
  size_t last = 0;   // one past the last
  std::vector<PipelineStage> stages;
  uint32_t cycles = 0;  // stages plus helper stalls
};

struct PipelinePlan {
  std::string program_name;
  CodegenOptions options;
  std::vector<BlockPlan> blocks;
  std::vector<size_t> block_of_insn;  // insn index -> block index
  uint32_t total_insns = 0;

  // Instruction-level parallelism achieved: insns / issue slots used.
  double MeanIlp() const;
  // Worst-case cycles through the longest block chain (pipeline depth).
  uint32_t CriticalPathCycles() const;

  // Structural-hazard bound on pipelining: a feed-forward pipeline accepts
  // a new packet every II cycles, where II is limited by the shared memory
  // ports and the (single) helper engine. Throughput = fmax / II — this,
  // not per-packet latency, is where spatial execution beats a fast core.
  uint32_t total_mem_ops = 0;
  uint32_t total_helper_calls = 0;
  uint32_t InitiationInterval() const;
};

Result<PipelinePlan> CompileToPipeline(const Program& prog,
                                       CodegenOptions options = CodegenOptions());

// Cycles consumed by a run whose per-instruction execution counts are
// `exec_counts` (from Vm::set_exec_counts): each block charges its cycle
// count once per entry.
uint64_t EstimateCycles(const PipelinePlan& plan, const std::vector<uint64_t>& exec_counts);

// Same, as virtual time at the plan's Fmax.
sim::Duration EstimateTime(const PipelinePlan& plan, const std::vector<uint64_t>& exec_counts);

// A human-readable pseudo-Verilog sketch of the pipeline (for docs/examples;
// this repository models hardware, it does not synthesize it).
std::string EmitVerilogSketch(const Program& prog, const PipelinePlan& plan);

}  // namespace hyperion::ebpf

#endif  // HYPERION_SRC_EBPF_HDL_CODEGEN_H_
