#include "src/ebpf/frontend.h"

#include "src/common/check.h"

namespace hyperion::ebpf {

namespace {

uint8_t SizeFieldFor(uint8_t width) {
  switch (width) {
    case 1:
      return kSizeB;
    case 2:
      return kSizeH;
    case 4:
      return kSizeW;
    case 8:
      return kSizeDw;
  }
  return 0xff;
}

uint64_t WidthMask(uint8_t width) {
  return width == 8 ? ~0ull : (1ull << (width * 8)) - 1;
}

}  // namespace

Result<Program> CompileMatchAction(const MatchActionTable& table) {
  Program prog;
  prog.name = table.name;
  prog.ctx_size = table.ctx_size;

  for (size_t r = 0; r < table.rules.size(); ++r) {
    const MatchActionRule& rule = table.rules[r];
    std::vector<Insn> body;
    // Positions (within `body`) of jne instructions that must jump to the
    // next rule (i.e. past the end of this rule's body).
    std::vector<size_t> fixups;

    for (const FieldMatch& match : rule.matches) {
      const uint8_t size_field = SizeFieldFor(match.width);
      if (size_field == 0xff) {
        return InvalidArgument("field width must be 1/2/4/8");
      }
      if (static_cast<uint32_t>(match.offset) + match.width > table.ctx_size) {
        return InvalidArgument("field match reads past ctx_size");
      }
      if (match.big_endian && match.width == 1) {
        return InvalidArgument("big_endian is meaningless for 1-byte fields");
      }
      // r3 = packet field.
      body.push_back(LoadMem(size_field, 3, 1, static_cast<int16_t>(match.offset)));
      if (match.big_endian) {
        body.push_back(EndianSwap(3, true, match.width * 8));
      }
      const uint64_t effective_mask = match.mask & WidthMask(match.width);
      if (effective_mask != WidthMask(match.width)) {
        LoadImm64(body, 4, effective_mask);
        body.push_back(Alu64Reg(kAluAnd, 3, 4));
      }
      // r4 = expected; mismatch -> next rule.
      LoadImm64(body, 4, match.value & effective_mask);
      fixups.push_back(body.size());
      body.push_back(JumpReg(kJmpJne, 3, 4, /*off=*/0));
    }

    // Matched: optional counter bump, then verdict.
    if (rule.count_index.has_value()) {
      if (!table.counter_map.has_value()) {
        return InvalidArgument("counting rule without a counter map");
      }
      body.push_back(StoreImm(kSizeW, 10, -4, static_cast<int32_t>(*rule.count_index)));
      LoadMapFd(body, 1, *table.counter_map);
      body.push_back(Mov64Reg(2, 10));
      body.push_back(Alu64Imm(kAluAdd, 2, -4));
      body.push_back(Call(HelperId::kMapLookup));
      // Null check (the verifier insists, and rightly so).
      body.push_back(JumpImm(kJmpJeq, 0, 0, /*off=*/2));
      body.push_back(Mov64Imm(4, 1));
      body.push_back(AtomicAdd(kSizeDw, 0, 0, 4));
    }
    LoadImm64(body, 0, rule.verdict);
    body.push_back(Exit());

    // Patch the next-rule jumps to land one past this rule's body.
    for (size_t pos : fixups) {
      const int64_t off = static_cast<int64_t>(body.size()) - static_cast<int64_t>(pos) - 1;
      if (off > 32767) {
        return InvalidArgument("rule body too large");
      }
      body[pos].off = static_cast<int16_t>(off);
    }
    prog.insns.insert(prog.insns.end(), body.begin(), body.end());
  }

  // Default action.
  LoadImm64(prog.insns, 0, table.default_verdict);
  prog.insns.push_back(Exit());
  return prog;
}

}  // namespace hyperion::ebpf
