// eBPF static verifier (paper §2.2, §2.5).
//
// In a CPU-free system there is no privileged kernel to referee at runtime:
// the paper's position is that the *compiler/verifier* delivers the
// translation, multiplexing and isolation properties an OS normally would.
// This verifier performs the same style of symbolic path exploration as the
// Linux one, restricted to what a spatial backend can guarantee:
//
//   - every register has a tracked type: scalar (with constant tracking),
//     stack/context/map-value pointer with static offset, or map reference;
//   - loads/stores must target a pointer whose full [off, off+size) range
//     provably fits its region (stack 512 B, ctx_size, map value_size);
//   - map_lookup results are maybe-null until a null check dominates use;
//   - helper calls are checked against typed signatures;
//   - r10 is read-only; r0 must be an initialized scalar at exit;
//   - back edges are rejected (bounded execution, as in classic eBPF) —
//     a backend can therefore fully unroll the program into a pipeline;
//   - pointer arithmetic with verifier-unknown quantities is rejected.
//
// Programs that pass can be run by the interpreter with bounds checks
// disabled, or compiled to hardware with no runtime safety net at all —
// which is exactly the property Hyperion needs.

#ifndef HYPERION_SRC_EBPF_VERIFIER_H_
#define HYPERION_SRC_EBPF_VERIFIER_H_

#include <cstdint>
#include <string>

#include "src/common/result.h"
#include "src/ebpf/insn.h"
#include "src/ebpf/maps.h"

namespace hyperion::ebpf {

struct VerifyStats {
  uint64_t paths_explored = 0;
  uint64_t states_visited = 0;
  uint32_t max_depth = 0;
};

struct VerifyOptions {
  uint64_t max_states = 1u << 20;  // exploration budget
};

// Verifies `prog` against the maps it references. Returns kPermissionDenied
// with a precise diagnostic on the first provable violation.
Result<VerifyStats> Verify(const Program& prog, const MapRegistry& maps,
                           VerifyOptions options = VerifyOptions());

}  // namespace hyperion::ebpf

#endif  // HYPERION_SRC_EBPF_VERIFIER_H_
