#include "src/ebpf/insn.h"

#include <sstream>

namespace hyperion::ebpf {

Insn Mov64Imm(uint8_t dst, int32_t imm) {
  return Insn{static_cast<uint8_t>(kClassAlu64 | kAluMov | kSrcK), dst, 0, 0, imm};
}

Insn Mov64Reg(uint8_t dst, uint8_t src) {
  return Insn{static_cast<uint8_t>(kClassAlu64 | kAluMov | kSrcX), dst, src, 0, 0};
}

Insn Alu64Imm(uint8_t op, uint8_t dst, int32_t imm) {
  return Insn{static_cast<uint8_t>(kClassAlu64 | op | kSrcK), dst, 0, 0, imm};
}

Insn Alu64Reg(uint8_t op, uint8_t dst, uint8_t src) {
  return Insn{static_cast<uint8_t>(kClassAlu64 | op | kSrcX), dst, src, 0, 0};
}

Insn Alu32Imm(uint8_t op, uint8_t dst, int32_t imm) {
  return Insn{static_cast<uint8_t>(kClassAlu | op | kSrcK), dst, 0, 0, imm};
}

Insn Alu32Reg(uint8_t op, uint8_t dst, uint8_t src) {
  return Insn{static_cast<uint8_t>(kClassAlu | op | kSrcX), dst, src, 0, 0};
}

Insn LoadMem(uint8_t size, uint8_t dst, uint8_t src, int16_t off) {
  return Insn{static_cast<uint8_t>(kClassLdx | size | kModeMem), dst, src, off, 0};
}

Insn StoreReg(uint8_t size, uint8_t dst, int16_t off, uint8_t src) {
  return Insn{static_cast<uint8_t>(kClassStx | size | kModeMem), dst, src, off, 0};
}

Insn StoreImm(uint8_t size, uint8_t dst, int16_t off, int32_t imm) {
  return Insn{static_cast<uint8_t>(kClassSt | size | kModeMem), dst, 0, off, imm};
}

Insn JumpAlways(int16_t off) {
  return Insn{static_cast<uint8_t>(kClassJmp | kJmpJa), 0, 0, off, 0};
}

Insn JumpImm(uint8_t op, uint8_t dst, int32_t imm, int16_t off) {
  return Insn{static_cast<uint8_t>(kClassJmp | op | kSrcK), dst, 0, off, imm};
}

Insn JumpReg(uint8_t op, uint8_t dst, uint8_t src, int16_t off) {
  return Insn{static_cast<uint8_t>(kClassJmp | op | kSrcX), dst, src, off, 0};
}

Insn Call(HelperId helper) {
  return Insn{static_cast<uint8_t>(kClassJmp | kJmpCall), 0, 0, 0,
              static_cast<int32_t>(helper)};
}

Insn Exit() { return Insn{static_cast<uint8_t>(kClassJmp | kJmpExit), 0, 0, 0, 0}; }

void LoadImm64(std::vector<Insn>& out, uint8_t dst, uint64_t imm) {
  out.push_back(Insn{static_cast<uint8_t>(kClassLd | kSizeDw | kModeImm), dst, 0, 0,
                     static_cast<int32_t>(imm & 0xffffffffu)});
  out.push_back(Insn{0, 0, 0, 0, static_cast<int32_t>(imm >> 32)});
}

Insn AtomicAdd(uint8_t size, uint8_t dst, int16_t off, uint8_t src) {
  return Insn{static_cast<uint8_t>(kClassStx | size | kModeAtomic), dst, src, off, kAtomicAdd};
}

Insn EndianSwap(uint8_t dst, bool to_be, int32_t bits) {
  return Insn{static_cast<uint8_t>(kClassAlu | kAluEnd | (to_be ? kSrcX : kSrcK)), dst, 0, 0,
              bits};
}

void LoadMapFd(std::vector<Insn>& out, uint8_t dst, uint32_t map_id) {
  out.push_back(Insn{static_cast<uint8_t>(kClassLd | kSizeDw | kModeImm), dst, kPseudoMapFd, 0,
                     static_cast<int32_t>(map_id)});
  out.push_back(Insn{0, 0, 0, 0, 0});
}

namespace {

const char* AluOpName(uint8_t op) {
  switch (op) {
    case kAluAdd:
      return "add";
    case kAluSub:
      return "sub";
    case kAluMul:
      return "mul";
    case kAluDiv:
      return "div";
    case kAluOr:
      return "or";
    case kAluAnd:
      return "and";
    case kAluLsh:
      return "lsh";
    case kAluRsh:
      return "rsh";
    case kAluNeg:
      return "neg";
    case kAluMod:
      return "mod";
    case kAluXor:
      return "xor";
    case kAluMov:
      return "mov";
    case kAluArsh:
      return "arsh";
    default:
      return "alu?";
  }
}

const char* JmpOpName(uint8_t op) {
  switch (op) {
    case kJmpJa:
      return "ja";
    case kJmpJeq:
      return "jeq";
    case kJmpJgt:
      return "jgt";
    case kJmpJge:
      return "jge";
    case kJmpJset:
      return "jset";
    case kJmpJne:
      return "jne";
    case kJmpJsgt:
      return "jsgt";
    case kJmpJsge:
      return "jsge";
    case kJmpJlt:
      return "jlt";
    case kJmpJle:
      return "jle";
    case kJmpJslt:
      return "jslt";
    case kJmpJsle:
      return "jsle";
    default:
      return "jmp?";
  }
}

const char* SizeSuffix(uint8_t size) {
  switch (size) {
    case kSizeB:
      return "b";
    case kSizeH:
      return "h";
    case kSizeW:
      return "w";
    case kSizeDw:
      return "dw";
    default:
      return "?";
  }
}

}  // namespace

std::string Disassemble(const Insn& insn) {
  std::ostringstream os;
  const uint8_t cls = insn.Class();
  switch (cls) {
    case kClassAlu64:
    case kClassAlu: {
      if (insn.AluOp() == kAluEnd) {
        os << (insn.IsSrcReg() ? "be" : "le") << insn.imm << " r" << static_cast<int>(insn.dst);
        break;
      }
      os << AluOpName(insn.AluOp()) << (cls == kClassAlu ? "32" : "") << " r"
         << static_cast<int>(insn.dst);
      if (insn.AluOp() != kAluNeg) {
        if (insn.IsSrcReg()) {
          os << ", r" << static_cast<int>(insn.src);
        } else {
          os << ", " << insn.imm;
        }
      }
      break;
    }
    case kClassLdx:
      os << "ldx" << SizeSuffix(insn.Size()) << " r" << static_cast<int>(insn.dst) << ", [r"
         << static_cast<int>(insn.src) << (insn.off >= 0 ? "+" : "") << insn.off << "]";
      break;
    case kClassStx:
      if (insn.Mode() == kModeAtomic) {
        os << "xadd" << SizeSuffix(insn.Size()) << " [r" << static_cast<int>(insn.dst)
           << (insn.off >= 0 ? "+" : "") << insn.off << "], r" << static_cast<int>(insn.src);
      } else {
        os << "stx" << SizeSuffix(insn.Size()) << " [r" << static_cast<int>(insn.dst)
           << (insn.off >= 0 ? "+" : "") << insn.off << "], r" << static_cast<int>(insn.src);
      }
      break;
    case kClassSt:
      os << "st" << SizeSuffix(insn.Size()) << " [r" << static_cast<int>(insn.dst)
         << (insn.off >= 0 ? "+" : "") << insn.off << "], " << insn.imm;
      break;
    case kClassLd:
      if (insn.IsLdImm64()) {
        if (insn.src == kPseudoMapFd) {
          os << "ld_map_fd r" << static_cast<int>(insn.dst) << ", map" << insn.imm;
        } else {
          os << "ld_imm64 r" << static_cast<int>(insn.dst) << ", lo32=" << insn.imm;
        }
      } else {
        os << "ld?";
      }
      break;
    case kClassJmp:
    case kClassJmp32: {
      const uint8_t op = insn.AluOp();
      if (op == kJmpExit) {
        os << "exit";
      } else if (op == kJmpCall) {
        os << "call " << insn.imm;
      } else if (op == kJmpJa) {
        os << "ja " << (insn.off >= 0 ? "+" : "") << insn.off;
      } else {
        os << JmpOpName(op) << " r" << static_cast<int>(insn.dst) << ", ";
        if (insn.IsSrcReg()) {
          os << "r" << static_cast<int>(insn.src);
        } else {
          os << insn.imm;
        }
        os << ", " << (insn.off >= 0 ? "+" : "") << insn.off;
      }
      break;
    }
    default:
      os << "unknown(0x" << std::hex << static_cast<int>(insn.opcode) << ")";
  }
  return os.str();
}

Bytes SerializeProgram(const Program& prog) {
  Bytes out;
  PutString(out, prog.name);
  PutU32(out, prog.ctx_size);
  PutU32(out, static_cast<uint32_t>(prog.insns.size()));
  for (const Insn& insn : prog.insns) {
    out.push_back(insn.opcode);
    out.push_back(static_cast<uint8_t>((insn.src << 4) | insn.dst));
    PutU16(out, static_cast<uint16_t>(insn.off));
    PutU32(out, static_cast<uint32_t>(insn.imm));
  }
  return out;
}

Result<Program> ParseProgram(ByteSpan data) {
  ByteReader reader(data);
  Program prog;
  prog.name = reader.ReadString();
  prog.ctx_size = reader.ReadU32();
  const uint32_t count = reader.ReadU32();
  if (count > 65536) {
    return DataLoss("implausible instruction count");
  }
  prog.insns.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Insn insn;
    insn.opcode = reader.ReadU8();
    const uint8_t regs = reader.ReadU8();
    insn.dst = regs & 0x0f;
    insn.src = regs >> 4;
    insn.off = static_cast<int16_t>(reader.ReadU16());
    insn.imm = static_cast<int32_t>(reader.ReadU32());
    prog.insns.push_back(insn);
  }
  if (!reader.Ok()) {
    return DataLoss("truncated program");
  }
  return prog;
}

}  // namespace hyperion::ebpf
