#include "src/ebpf/assembler.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace hyperion::ebpf {

namespace {

struct Token {
  std::string text;
};

// Splits a line into tokens, treating ',' '[' ']' as separators and
// stripping ';' comments.
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == ';') {
      break;
    }
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',' || c == '[' || c == ']') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
      continue;
    }
    current.push_back(c);
  }
  if (!current.empty()) {
    tokens.push_back(std::move(current));
  }
  return tokens;
}

Status LineError(size_t line_no, const std::string& what) {
  std::ostringstream os;
  os << "line " << line_no << ": " << what;
  return InvalidArgument(os.str());
}

std::optional<uint8_t> ParseReg(const std::string& t) {
  if (t.size() < 2 || (t[0] != 'r' && t[0] != 'R')) {
    return std::nullopt;
  }
  int n = 0;
  for (size_t i = 1; i < t.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(t[i]))) {
      return std::nullopt;
    }
    n = n * 10 + (t[i] - '0');
  }
  if (n < 0 || n >= kNumRegisters) {
    return std::nullopt;
  }
  return static_cast<uint8_t>(n);
}

std::optional<int64_t> ParseImm(const std::string& t) {
  if (t.empty()) {
    return std::nullopt;
  }
  size_t i = 0;
  bool negative = false;
  if (t[0] == '-' || t[0] == '+') {
    negative = t[0] == '-';
    i = 1;
  }
  if (i >= t.size()) {
    return std::nullopt;
  }
  int base = 10;
  if (t.size() > i + 2 && t[i] == '0' && (t[i + 1] == 'x' || t[i + 1] == 'X')) {
    base = 16;
    i += 2;
  }
  int64_t v = 0;
  for (; i < t.size(); ++i) {
    const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(t[i])));
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return std::nullopt;
    }
    v = v * base + digit;
  }
  return negative ? -v : v;
}

// "rN+off" or "rN-off" or "rN" -> (reg, off).
std::optional<std::pair<uint8_t, int16_t>> ParseMemOperand(const std::string& t) {
  size_t split = t.find_first_of("+-", 1);
  std::string reg_part = split == std::string::npos ? t : t.substr(0, split);
  auto reg = ParseReg(reg_part);
  if (!reg.has_value()) {
    return std::nullopt;
  }
  int16_t off = 0;
  if (split != std::string::npos) {
    auto imm = ParseImm(t.substr(split));
    if (!imm.has_value() || *imm < -32768 || *imm > 32767) {
      return std::nullopt;
    }
    off = static_cast<int16_t>(*imm);
  }
  return std::make_pair(*reg, off);
}

const std::map<std::string, uint8_t>& AluOps() {
  static const std::map<std::string, uint8_t> kOps = {
      {"add", kAluAdd}, {"sub", kAluSub},   {"mul", kAluMul}, {"div", kAluDiv},
      {"or", kAluOr},   {"and", kAluAnd},   {"lsh", kAluLsh}, {"rsh", kAluRsh},
      {"mod", kAluMod}, {"xor", kAluXor},   {"mov", kAluMov}, {"arsh", kAluArsh},
      {"neg", kAluNeg},
  };
  return kOps;
}

const std::map<std::string, uint8_t>& JmpOps() {
  static const std::map<std::string, uint8_t> kOps = {
      {"jeq", kJmpJeq},   {"jne", kJmpJne},   {"jgt", kJmpJgt},   {"jge", kJmpJge},
      {"jlt", kJmpJlt},   {"jle", kJmpJle},   {"jset", kJmpJset}, {"jsgt", kJmpJsgt},
      {"jsge", kJmpJsge}, {"jslt", kJmpJslt}, {"jsle", kJmpJsle},
  };
  return kOps;
}

std::optional<uint8_t> SizeFromSuffix(const std::string& mnemonic, const std::string& prefix) {
  const std::string suffix = mnemonic.substr(prefix.size());
  if (suffix == "b") {
    return kSizeB;
  }
  if (suffix == "h") {
    return kSizeH;
  }
  if (suffix == "w") {
    return kSizeW;
  }
  if (suffix == "dw") {
    return kSizeDw;
  }
  return std::nullopt;
}

std::optional<HelperId> HelperByName(const std::string& name) {
  if (name == "map_lookup") {
    return HelperId::kMapLookup;
  }
  if (name == "map_update") {
    return HelperId::kMapUpdate;
  }
  if (name == "map_delete") {
    return HelperId::kMapDelete;
  }
  if (name == "ktime") {
    return HelperId::kKtimeGetNs;
  }
  if (name == "prandom") {
    return HelperId::kGetPrandomU32;
  }
  return std::nullopt;
}

struct PendingJump {
  size_t insn_index;  // index of the jump in the emitted stream
  std::string label;
  size_t line_no;
};

}  // namespace

Result<Program> Assemble(std::string_view source, std::string name, uint32_t ctx_size) {
  Program prog;
  prog.name = std::move(name);
  prog.ctx_size = ctx_size;

  std::map<std::string, size_t> labels;  // label -> insn index
  std::vector<PendingJump> pending;

  std::istringstream stream{std::string(source)};
  std::string line;
  size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    // Label definitions.
    if (tokens[0].back() == ':') {
      std::string label = tokens[0].substr(0, tokens[0].size() - 1);
      if (label.empty()) {
        return LineError(line_no, "empty label");
      }
      if (!labels.emplace(label, prog.insns.size()).second) {
        return LineError(line_no, "duplicate label '" + label + "'");
      }
      tokens.erase(tokens.begin());
      if (tokens.empty()) {
        continue;
      }
    }
    std::string m = tokens[0];
    std::transform(m.begin(), m.end(), m.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });

    if (m == "exit") {
      prog.insns.push_back(Exit());
      continue;
    }
    if (m == "call") {
      if (tokens.size() != 2) {
        return LineError(line_no, "call takes one operand");
      }
      auto helper = HelperByName(tokens[1]);
      if (!helper.has_value()) {
        auto imm = ParseImm(tokens[1]);
        if (!imm.has_value()) {
          return LineError(line_no, "unknown helper '" + tokens[1] + "'");
        }
        helper = static_cast<HelperId>(*imm);
      }
      prog.insns.push_back(Call(*helper));
      continue;
    }
    if (m == "ja") {
      if (tokens.size() != 2) {
        return LineError(line_no, "ja takes a label");
      }
      pending.push_back({prog.insns.size(), tokens[1], line_no});
      prog.insns.push_back(JumpAlways(0));
      continue;
    }
    if (m == "ld_imm64" || m == "ld_map_fd") {
      if (tokens.size() != 3) {
        return LineError(line_no, m + " takes reg, imm");
      }
      auto reg = ParseReg(tokens[1]);
      auto imm = ParseImm(tokens[2]);
      if (!reg.has_value() || !imm.has_value()) {
        return LineError(line_no, "bad operands for " + m);
      }
      if (m == "ld_map_fd") {
        LoadMapFd(prog.insns, *reg, static_cast<uint32_t>(*imm));
      } else {
        LoadImm64(prog.insns, *reg, static_cast<uint64_t>(*imm));
      }
      continue;
    }
    // Endian swaps: be16/be32/be64/le16/le32/le64 rN
    if ((m.rfind("be", 0) == 0 || m.rfind("le", 0) == 0) && m.size() > 2 &&
        std::isdigit(static_cast<unsigned char>(m[2]))) {
      auto bits = ParseImm(m.substr(2));
      if (bits.has_value() && (*bits == 16 || *bits == 32 || *bits == 64)) {
        if (tokens.size() != 2) {
          return LineError(line_no, m + " takes one register");
        }
        auto reg = ParseReg(tokens[1]);
        if (!reg.has_value()) {
          return LineError(line_no, "bad register");
        }
        prog.insns.push_back(EndianSwap(*reg, m[0] == 'b', static_cast<int32_t>(*bits)));
        continue;
      }
    }
    // Atomic add: xaddw/xadddw [rN+off], src
    if (m == "xaddw" || m == "xadddw") {
      if (tokens.size() != 3) {
        return LineError(line_no, "xadd takes [rN+off], src");
      }
      auto mem = ParseMemOperand(tokens[1]);
      auto src = ParseReg(tokens[2]);
      if (!mem.has_value() || !src.has_value()) {
        return LineError(line_no, "bad xadd operands");
      }
      prog.insns.push_back(
          AtomicAdd(m == "xaddw" ? kSizeW : kSizeDw, mem->first, mem->second, *src));
      continue;
    }
    // Loads: ldx{b,h,w,dw} dst, [rN+off]
    if (m.rfind("ldx", 0) == 0) {
      auto size = SizeFromSuffix(m, "ldx");
      if (!size.has_value() || tokens.size() != 3) {
        return LineError(line_no, "bad load");
      }
      auto dst = ParseReg(tokens[1]);
      auto mem = ParseMemOperand(tokens[2]);
      if (!dst.has_value() || !mem.has_value()) {
        return LineError(line_no, "bad load operands");
      }
      prog.insns.push_back(LoadMem(*size, *dst, mem->first, mem->second));
      continue;
    }
    // Stores: stx{sz} [rN+off], src   |   st{sz} [rN+off], imm
    if (m.rfind("stx", 0) == 0) {
      auto size = SizeFromSuffix(m, "stx");
      if (!size.has_value() || tokens.size() != 3) {
        return LineError(line_no, "bad store");
      }
      auto mem = ParseMemOperand(tokens[1]);
      auto src = ParseReg(tokens[2]);
      if (!mem.has_value() || !src.has_value()) {
        return LineError(line_no, "bad store operands");
      }
      prog.insns.push_back(StoreReg(*size, mem->first, mem->second, *src));
      continue;
    }
    if (m.rfind("st", 0) == 0 && m != "stx") {
      auto size = SizeFromSuffix(m, "st");
      if (size.has_value()) {
        if (tokens.size() != 3) {
          return LineError(line_no, "bad store");
        }
        auto mem = ParseMemOperand(tokens[1]);
        auto imm = ParseImm(tokens[2]);
        if (!mem.has_value() || !imm.has_value()) {
          return LineError(line_no, "bad store operands");
        }
        prog.insns.push_back(
            StoreImm(*size, mem->first, mem->second, static_cast<int32_t>(*imm)));
        continue;
      }
    }
    // Conditional jumps: jcc dst, (reg|imm), label
    {
      std::string base = m;
      bool is32 = false;
      if (base.size() > 2 && base.substr(base.size() - 2) == "32") {
        base = base.substr(0, base.size() - 2);
        is32 = true;
      }
      auto jmp_it = JmpOps().find(base);
      if (jmp_it != JmpOps().end()) {
        if (tokens.size() != 4) {
          return LineError(line_no, "jump takes dst, src, label");
        }
        auto dst = ParseReg(tokens[1]);
        if (!dst.has_value()) {
          return LineError(line_no, "bad jump dst");
        }
        pending.push_back({prog.insns.size(), tokens[3], line_no});
        const uint8_t cls = is32 ? kClassJmp32 : kClassJmp;
        auto src_reg = ParseReg(tokens[2]);
        if (src_reg.has_value()) {
          prog.insns.push_back(Insn{static_cast<uint8_t>(cls | jmp_it->second | kSrcX), *dst,
                                    *src_reg, 0, 0});
        } else {
          auto imm = ParseImm(tokens[2]);
          if (!imm.has_value()) {
            return LineError(line_no, "bad jump comparand");
          }
          prog.insns.push_back(Insn{static_cast<uint8_t>(cls | jmp_it->second | kSrcK), *dst, 0,
                                    0, static_cast<int32_t>(*imm)});
        }
        continue;
      }
      // ALU: op[32] dst, (reg|imm)  — also neg with single operand.
      auto alu_it = AluOps().find(base);
      if (alu_it != AluOps().end()) {
        const uint8_t cls = is32 ? kClassAlu : kClassAlu64;
        auto dst = tokens.size() >= 2 ? ParseReg(tokens[1]) : std::nullopt;
        if (!dst.has_value()) {
          return LineError(line_no, "bad ALU dst");
        }
        if (alu_it->second == kAluNeg) {
          if (tokens.size() != 2) {
            return LineError(line_no, "neg takes one register");
          }
          prog.insns.push_back(Insn{static_cast<uint8_t>(cls | kAluNeg | kSrcK), *dst, 0, 0, 0});
          continue;
        }
        if (tokens.size() != 3) {
          return LineError(line_no, "ALU op takes dst, src");
        }
        auto src_reg = ParseReg(tokens[2]);
        if (src_reg.has_value()) {
          prog.insns.push_back(
              Insn{static_cast<uint8_t>(cls | alu_it->second | kSrcX), *dst, *src_reg, 0, 0});
        } else {
          auto imm = ParseImm(tokens[2]);
          if (!imm.has_value()) {
            return LineError(line_no, "bad ALU operand '" + tokens[2] + "'");
          }
          prog.insns.push_back(Insn{static_cast<uint8_t>(cls | alu_it->second | kSrcK), *dst, 0,
                                    0, static_cast<int32_t>(*imm)});
        }
        continue;
      }
    }
    return LineError(line_no, "unknown mnemonic '" + tokens[0] + "'");
  }

  // Resolve labels.
  for (const PendingJump& jump : pending) {
    auto it = labels.find(jump.label);
    if (it == labels.end()) {
      return LineError(jump.line_no, "undefined label '" + jump.label + "'");
    }
    const int64_t off = static_cast<int64_t>(it->second) -
                        (static_cast<int64_t>(jump.insn_index) + 1);
    if (off < -32768 || off > 32767) {
      return LineError(jump.line_no, "jump offset out of range");
    }
    prog.insns[jump.insn_index].off = static_cast<int16_t>(off);
  }
  return prog;
}

}  // namespace hyperion::ebpf
