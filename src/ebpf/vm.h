// eBPF interpreter VM.
//
// Registers are 64-bit; pointers are *tagged virtual addresses*, never raw
// host pointers, so a buggy (or adversarial) program cannot escape its
// sandbox even if it slips past the verifier. Address layout:
//
//   tag (top byte)   region
//   0x01             stack   (512 bytes below r10)
//   0x02             context (the packet/record handed in r1)
//   0x03             map value (map id + slot handle + offset packed below)
//   0x04             map reference (r1 argument to map helpers)
//
// Every load/store is bounds-checked against its region at runtime; the
// verifier proves the same statically, and tests cross-check the two.

#ifndef HYPERION_SRC_EBPF_VM_H_
#define HYPERION_SRC_EBPF_VM_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/ebpf/insn.h"
#include "src/ebpf/maps.h"
#include "src/sim/engine.h"

namespace hyperion::ebpf {

// Tagged-address construction/inspection (shared with the verifier tests).
constexpr uint64_t kTagShift = 56;
constexpr uint64_t kTagStack = 0x01;
constexpr uint64_t kTagCtx = 0x02;
constexpr uint64_t kTagMapValue = 0x03;
constexpr uint64_t kTagMapRef = 0x04;

constexpr uint64_t MakeTagged(uint64_t tag, uint64_t payload) {
  return (tag << kTagShift) | payload;
}
constexpr uint64_t TagOf(uint64_t addr) { return addr >> kTagShift; }
constexpr uint64_t PayloadOf(uint64_t addr) { return addr & ((1ull << kTagShift) - 1); }

// Map-value payload packing: [map_id:16][handle:24][offset:16].
constexpr uint64_t PackMapValue(uint32_t map_id, uint32_t handle, uint32_t offset) {
  return (static_cast<uint64_t>(map_id) << 40) | (static_cast<uint64_t>(handle) << 16) | offset;
}

struct ExecResult {
  uint64_t return_value = 0;
  uint64_t insns_executed = 0;
};

class Vm {
 public:
  explicit Vm(MapRegistry* maps, sim::Engine* engine = nullptr, uint64_t rng_seed = 42)
      : maps_(maps), engine_(engine), rng_(rng_seed) {}

  // Executes `prog` with r1 = tagged pointer to `ctx` and r2 = ctx.size().
  // Fails with kPermissionDenied on a sandbox violation, kDeadlineExceeded
  // when the instruction budget is exhausted.
  Result<ExecResult> Run(const Program& prog, MutableByteSpan ctx,
                         uint64_t insn_budget = 1u << 20);

  // When set, Run() increments (*counts)[pc] per executed instruction —
  // the profile the HDL cycle model consumes. Must outlive Run().
  void set_exec_counts(std::vector<uint64_t>* counts) { exec_counts_ = counts; }

 private:
  struct MemRef {
    uint8_t* ptr = nullptr;
    // For map-value writebacks nothing extra is needed: ptr aliases the
    // map's value arena directly.
  };

  Result<uint64_t> LoadFrom(uint64_t addr, uint32_t size, MutableByteSpan ctx);
  Status StoreTo(uint64_t addr, uint32_t size, uint64_t value, MutableByteSpan ctx);
  // Copies `len` bytes out of VM address space (for helper key/value args).
  Result<Bytes> CopyIn(uint64_t addr, uint32_t len, MutableByteSpan ctx);

  Result<uint64_t> CallHelper(HelperId helper, uint64_t r1, uint64_t r2, uint64_t r3, uint64_t r4,
                              MutableByteSpan ctx);

  MapRegistry* maps_;
  sim::Engine* engine_;
  Rng rng_;
  uint8_t stack_[kStackSize] = {};
  std::vector<uint64_t>* exec_counts_ = nullptr;
};

}  // namespace hyperion::ebpf

#endif  // HYPERION_SRC_EBPF_VM_H_
