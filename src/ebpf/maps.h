// eBPF maps: the state abstraction shared between programs and the host
// (or, on Hyperion, between pipeline stages and the DPU runtime).
//
// Two kinds cover the workloads in the paper: HashMap (fail2ban counters,
// load-balancer flow tables) and ArrayMap (configuration, histograms).
// Keys and values are fixed-size byte strings, as in the kernel ABI.

#ifndef HYPERION_SRC_EBPF_MAPS_H_
#define HYPERION_SRC_EBPF_MAPS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"

namespace hyperion::ebpf {

enum class MapType : uint8_t { kHash, kArray };

struct MapSpec {
  MapType type = MapType::kHash;
  uint32_t key_size = 4;
  uint32_t value_size = 8;
  uint32_t max_entries = 1024;
  std::string name;
  // Owning tenant; kSharedMap means any program may reference it. The DPU
  // control path enforces that a tenant's programs only reference maps it
  // owns (or shared ones) *before* anything reaches the fabric.
  uint32_t tenant = 0xffffffffu;
};

constexpr uint32_t kSharedMap = 0xffffffffu;

class Map {
 public:
  explicit Map(MapSpec spec);

  const MapSpec& spec() const { return spec_; }
  uint32_t EntryCount() const;

  // Returns a stable internal handle (index into the value arena) for the
  // entry, or kNotFound. The VM exposes values to programs as tagged
  // pointers built from this handle.
  Result<uint32_t> LookupHandle(ByteSpan key) const;

  // Inserts or overwrites. kResourceExhausted when at max_entries.
  Result<uint32_t> Update(ByteSpan key, ByteSpan value);

  Status Delete(ByteSpan key);

  // Direct value access by handle (bounds-checked).
  Result<Bytes> ValueByHandle(uint32_t handle) const;
  MutableByteSpan MutableValue(uint32_t handle);

  // Convenience typed access for C++ callers.
  Result<Bytes> Lookup(ByteSpan key) const;

  // Iterates entries in unspecified order.
  std::vector<std::pair<Bytes, Bytes>> Entries() const;

 private:
  MapSpec spec_;
  // Value arena: slot i holds value_size bytes; free list recycles slots.
  std::vector<uint8_t> values_;
  std::vector<uint32_t> free_slots_;
  uint32_t next_slot_ = 0;
  std::unordered_map<std::string, uint32_t> index_;  // key bytes -> slot
};

// Registry with dense u32 ids, what LD_IMM64/map-fd instructions reference.
class MapRegistry {
 public:
  uint32_t Create(MapSpec spec);
  Map* Get(uint32_t id);
  const Map* Get(uint32_t id) const;
  size_t Count() const { return maps_.size(); }

 private:
  std::vector<std::unique_ptr<Map>> maps_;
};

}  // namespace hyperion::ebpf

#endif  // HYPERION_SRC_EBPF_MAPS_H_
