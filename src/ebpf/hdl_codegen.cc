#include "src/ebpf/hdl_codegen.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/common/check.h"

namespace hyperion::ebpf {

namespace {

bool IsJump(const Insn& insn) {
  const uint8_t cls = insn.Class();
  if (cls != kClassJmp && cls != kClassJmp32) {
    return false;
  }
  const uint8_t op = insn.AluOp();
  return op != kJmpCall;  // calls are in-block units; exits/branches end blocks
}

bool IsCall(const Insn& insn) {
  return insn.Class() == kClassJmp && insn.AluOp() == kJmpCall;
}

bool IsMemOp(const Insn& insn) {
  const uint8_t cls = insn.Class();
  return cls == kClassLdx || cls == kClassStx || cls == kClassSt;
}

// Registers read by an instruction.
std::vector<uint8_t> ReadsOf(const Insn& insn) {
  std::vector<uint8_t> reads;
  const uint8_t cls = insn.Class();
  switch (cls) {
    case kClassAlu:
    case kClassAlu64:
      if (insn.AluOp() != kAluMov) {
        reads.push_back(insn.dst);
      }
      if (insn.IsSrcReg()) {
        reads.push_back(insn.src);
      }
      break;
    case kClassLdx:
      reads.push_back(insn.src);
      break;
    case kClassStx:
      reads.push_back(insn.dst);
      reads.push_back(insn.src);
      break;
    case kClassSt:
      reads.push_back(insn.dst);
      break;
    case kClassJmp:
    case kClassJmp32: {
      const uint8_t op = insn.AluOp();
      if (op == kJmpCall) {
        for (uint8_t r = 1; r <= 5; ++r) {
          reads.push_back(r);
        }
      } else if (op == kJmpExit) {
        reads.push_back(0);
      } else if (op != kJmpJa) {
        reads.push_back(insn.dst);
        if (insn.IsSrcReg()) {
          reads.push_back(insn.src);
        }
      }
      break;
    }
    default:
      break;
  }
  return reads;
}

// Register written by an instruction (-1 if none).
int WriteOf(const Insn& insn) {
  const uint8_t cls = insn.Class();
  switch (cls) {
    case kClassAlu:
    case kClassAlu64:
    case kClassLdx:
      return insn.dst;
    case kClassLd:
      return insn.dst;  // ld_imm64 first slot
    case kClassJmp:
      return IsCall(insn) ? 0 : -1;
    default:
      return -1;
  }
}

}  // namespace

double PipelinePlan::MeanIlp() const {
  uint64_t insns = 0;
  uint64_t stage_count = 0;
  for (const BlockPlan& block : blocks) {
    for (const PipelineStage& stage : block.stages) {
      insns += stage.insns.size();
    }
    stage_count += block.stages.size();
  }
  return stage_count == 0 ? 0.0 : static_cast<double>(insns) / static_cast<double>(stage_count);
}

uint32_t PipelinePlan::CriticalPathCycles() const {
  uint32_t total = 0;
  for (const BlockPlan& block : blocks) {
    total += block.cycles;
  }
  return total;
}

uint32_t PipelinePlan::InitiationInterval() const {
  const uint32_t mem_bound =
      (total_mem_ops + options.mem_ports - 1) / options.mem_ports;
  const uint32_t helper_bound = total_helper_calls * options.helper_cycles;
  return std::max<uint32_t>({1, mem_bound, helper_bound});
}

Result<PipelinePlan> CompileToPipeline(const Program& prog, CodegenOptions options) {
  if (prog.insns.empty()) {
    return InvalidArgument("cannot compile an empty program");
  }
  CHECK_GT(options.lanes, 0u);
  CHECK_GT(options.mem_ports, 0u);

  const auto& insns = prog.insns;
  // Leaders: entry, jump targets, instructions after jumps.
  std::set<size_t> leaders;
  leaders.insert(0);
  for (size_t i = 0; i < insns.size(); ++i) {
    const Insn& insn = insns[i];
    if (insn.IsLdImm64()) {
      ++i;  // skip the second slot
      continue;
    }
    if (IsJump(insn)) {
      if (insn.AluOp() != kJmpExit) {
        const int64_t target = static_cast<int64_t>(i) + 1 + insn.off;
        if (target < 0 || static_cast<size_t>(target) >= insns.size()) {
          return InvalidArgument("jump target out of program");
        }
        leaders.insert(static_cast<size_t>(target));
      }
      if (i + 1 < insns.size()) {
        leaders.insert(i + 1);
      }
    }
  }

  PipelinePlan plan;
  plan.program_name = prog.name;
  plan.options = options;
  plan.total_insns = static_cast<uint32_t>(insns.size());
  plan.block_of_insn.assign(insns.size(), 0);

  std::vector<size_t> sorted_leaders(leaders.begin(), leaders.end());
  for (size_t b = 0; b < sorted_leaders.size(); ++b) {
    const size_t first = sorted_leaders[b];
    const size_t last = b + 1 < sorted_leaders.size() ? sorted_leaders[b + 1] : insns.size();
    BlockPlan block;
    block.first = first;
    block.last = last;

    // List-schedule the block: earliest stage respecting RAW/WAW hazards,
    // lane capacity, and the memory-port limit. Helper calls serialize the
    // block for `helper_cycles`.
    std::vector<int> write_stage(kNumRegisters, -1);  // stage that produced reg
    std::vector<uint32_t> lane_used;                  // per stage
    std::vector<uint32_t> mem_used;                   // per stage
    uint32_t helper_stall_cycles = 0;
    int floor_stage = 0;  // calls create a barrier

    auto ensure_stage = [&](size_t s) {
      while (block.stages.size() <= s) {
        block.stages.emplace_back();
        lane_used.push_back(0);
        mem_used.push_back(0);
      }
    };

    for (size_t i = first; i < last; ++i) {
      const Insn& insn = insns[i];
      plan.block_of_insn[i] = plan.blocks.size();
      if (insn.IsLdImm64()) {
        // Occupies one slot; the second word is metadata.
        plan.block_of_insn[i + 1] = plan.blocks.size();
      }
      int earliest = floor_stage;
      for (uint8_t r : ReadsOf(insn)) {
        earliest = std::max(earliest, write_stage[r] + 1);  // RAW
      }
      const int w = WriteOf(insn);
      if (w >= 0) {
        earliest = std::max(earliest, write_stage[w] + 1);  // WAW
      }
      // Find a stage with lane (and mem-port) capacity.
      size_t s = static_cast<size_t>(earliest);
      while (true) {
        ensure_stage(s);
        const bool lane_ok = lane_used[s] < options.lanes;
        const bool mem_ok = !IsMemOp(insn) || mem_used[s] < options.mem_ports;
        if (lane_ok && mem_ok) {
          break;
        }
        ++s;
      }
      block.stages[s].insns.push_back(i);
      ++lane_used[s];
      if (IsMemOp(insn)) {
        ++mem_used[s];
        ++plan.total_mem_ops;
      }
      if (IsCall(insn)) {
        ++plan.total_helper_calls;
      }
      if (w >= 0) {
        write_stage[static_cast<size_t>(w)] = static_cast<int>(s);
      }
      if (IsCall(insn)) {
        // The helper engine runs for helper_cycles; later insns wait.
        helper_stall_cycles += options.helper_cycles - 1;
        floor_stage = static_cast<int>(s) + 1;
      }
      if (insn.IsLdImm64()) {
        ++i;
      }
    }
    block.cycles = static_cast<uint32_t>(block.stages.size()) + helper_stall_cycles;
    plan.blocks.push_back(std::move(block));
  }
  return plan;
}

uint64_t EstimateCycles(const PipelinePlan& plan, const std::vector<uint64_t>& exec_counts) {
  uint64_t cycles = 0;
  for (const BlockPlan& block : plan.blocks) {
    const uint64_t entries =
        block.first < exec_counts.size() ? exec_counts[block.first] : 0;
    cycles += entries * block.cycles;
  }
  return cycles;
}

sim::Duration EstimateTime(const PipelinePlan& plan, const std::vector<uint64_t>& exec_counts) {
  return sim::CyclesToTime(EstimateCycles(plan, exec_counts), plan.options.fmax_mhz);
}

std::string EmitVerilogSketch(const Program& prog, const PipelinePlan& plan) {
  std::ostringstream os;
  os << "// Auto-generated pipeline sketch for eBPF program '" << prog.name << "'\n";
  os << "// lanes=" << plan.options.lanes << " fmax=" << plan.options.fmax_mhz << "MHz"
     << " blocks=" << plan.blocks.size() << " critical_path=" << plan.CriticalPathCycles()
     << " cycles\n";
  os << "module " << (prog.name.empty() ? "ebpf_accel" : prog.name) << " (\n"
     << "  input  wire        clk,\n"
     << "  input  wire        rst_n,\n"
     << "  input  wire [511:0] ctx_in,\n"
     << "  input  wire        valid_in,\n"
     << "  output reg  [63:0] r0_out,\n"
     << "  output reg         valid_out\n"
     << ");\n";
  for (size_t b = 0; b < plan.blocks.size(); ++b) {
    const BlockPlan& block = plan.blocks[b];
    os << "  // block" << b << ": insns [" << block.first << ", " << block.last << "), "
       << block.stages.size() << " stages, " << block.cycles << " cycles\n";
    for (size_t s = 0; s < block.stages.size(); ++s) {
      os << "  //   stage " << s << ":";
      for (size_t idx : block.stages[s].insns) {
        os << "  {" << Disassemble(prog.insns[idx]) << "}";
      }
      os << "\n";
    }
  }
  os << "  // ... stage registers and functional units elided in the sketch\n";
  os << "endmodule\n";
  return os.str();
}

}  // namespace hyperion::ebpf
