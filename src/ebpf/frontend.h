// Match-action frontend: a tiny P4-flavoured packet-classification language
// that compiles to eBPF (paper §2.2: "Hyperion can use any eBPF-supporting
// programming language as a frontend ... there are P4 to eBPF compilers
// available" for filtering and forwarding).
//
// A program is an ordered rule list. Each rule matches header fields
// (byte-offset + width + expected value, optionally masked) and yields an
// action (a verdict, optionally counting the hit in a map). The first
// matching rule wins; a default action closes the table. The generated
// eBPF passes the verifier by construction, and because it is branchy,
// shallow, and loop-free it compiles to an efficient spatial pipeline.

#ifndef HYPERION_SRC_EBPF_FRONTEND_H_
#define HYPERION_SRC_EBPF_FRONTEND_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/ebpf/insn.h"

namespace hyperion::ebpf {

struct FieldMatch {
  uint16_t offset = 0;   // byte offset into the packet
  uint8_t width = 1;     // 1, 2, 4, or 8 bytes
  uint64_t value = 0;    // expected value (after masking)
  uint64_t mask = ~0ull; // applied before comparison
  bool big_endian = false;  // convert the loaded field from network order
};

struct MatchActionRule {
  std::vector<FieldMatch> matches;  // all must hold (AND)
  uint64_t verdict = 0;             // program return value on match
  // When set, increments the 8-byte counter at this index of an array map
  // (map id supplied at compile time).
  std::optional<uint32_t> count_index;
};

struct MatchActionTable {
  std::string name = "match_action";
  std::vector<MatchActionRule> rules;
  uint64_t default_verdict = 0;
  // Array map for counters (required if any rule counts).
  std::optional<uint32_t> counter_map;
  uint32_t ctx_size = 1514;
};

// Lowers the table to eBPF. The result still goes through Verify() on the
// DPU — the frontend is untrusted like any other.
Result<Program> CompileMatchAction(const MatchActionTable& table);

}  // namespace hyperion::ebpf

#endif  // HYPERION_SRC_EBPF_FRONTEND_H_
