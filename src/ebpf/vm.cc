#include "src/ebpf/vm.h"

#include <cstring>

#include "src/common/check.h"

namespace hyperion::ebpf {

namespace {

uint32_t SizeBytes(uint8_t size_field) {
  switch (size_field) {
    case kSizeB:
      return 1;
    case kSizeH:
      return 2;
    case kSizeW:
      return 4;
    case kSizeDw:
      return 8;
  }
  return 0;
}

uint64_t ReadLe(const uint8_t* p, uint32_t size) {
  uint64_t v = 0;
  for (uint32_t i = 0; i < size; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

void WriteLe(uint8_t* p, uint32_t size, uint64_t v) {
  for (uint32_t i = 0; i < size; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

}  // namespace

Result<uint64_t> Vm::LoadFrom(uint64_t addr, uint32_t size, MutableByteSpan ctx) {
  const uint64_t tag = TagOf(addr);
  const uint64_t payload = PayloadOf(addr);
  switch (tag) {
    case kTagStack:
      if (payload + size > kStackSize) {
        return PermissionDenied("stack load out of bounds");
      }
      return ReadLe(&stack_[payload], size);
    case kTagCtx:
      if (payload + size > ctx.size()) {
        return PermissionDenied("ctx load out of bounds");
      }
      return ReadLe(ctx.data() + payload, size);
    case kTagMapValue: {
      const auto map_id = static_cast<uint32_t>(payload >> 40);
      const auto handle = static_cast<uint32_t>((payload >> 16) & 0xffffff);
      const auto offset = static_cast<uint32_t>(payload & 0xffff);
      Map* map = maps_->Get(map_id);
      if (map == nullptr) {
        return PermissionDenied("load through bad map pointer");
      }
      if (offset + size > map->spec().value_size) {
        return PermissionDenied("map value load out of bounds");
      }
      MutableByteSpan value = map->MutableValue(handle);
      return ReadLe(value.data() + offset, size);
    }
    default:
      return PermissionDenied("load through non-pointer value");
  }
}

Status Vm::StoreTo(uint64_t addr, uint32_t size, uint64_t value, MutableByteSpan ctx) {
  const uint64_t tag = TagOf(addr);
  const uint64_t payload = PayloadOf(addr);
  switch (tag) {
    case kTagStack:
      if (payload + size > kStackSize) {
        return PermissionDenied("stack store out of bounds");
      }
      WriteLe(&stack_[payload], size, value);
      return Status::Ok();
    case kTagCtx:
      if (payload + size > ctx.size()) {
        return PermissionDenied("ctx store out of bounds");
      }
      WriteLe(ctx.data() + payload, size, value);
      return Status::Ok();
    case kTagMapValue: {
      const auto map_id = static_cast<uint32_t>(payload >> 40);
      const auto handle = static_cast<uint32_t>((payload >> 16) & 0xffffff);
      const auto offset = static_cast<uint32_t>(payload & 0xffff);
      Map* map = maps_->Get(map_id);
      if (map == nullptr) {
        return PermissionDenied("store through bad map pointer");
      }
      if (offset + size > map->spec().value_size) {
        return PermissionDenied("map value store out of bounds");
      }
      MutableByteSpan slot = map->MutableValue(handle);
      WriteLe(slot.data() + offset, size, value);
      return Status::Ok();
    }
    default:
      return PermissionDenied("store through non-pointer value");
  }
}

Result<Bytes> Vm::CopyIn(uint64_t addr, uint32_t len, MutableByteSpan ctx) {
  Bytes out(len);
  for (uint32_t i = 0; i < len; ++i) {
    ASSIGN_OR_RETURN(uint64_t byte, LoadFrom(addr + i, 1, ctx));
    out[i] = static_cast<uint8_t>(byte);
  }
  return out;
}

Result<uint64_t> Vm::CallHelper(HelperId helper, uint64_t r1, uint64_t r2, uint64_t r3,
                                uint64_t r4, MutableByteSpan ctx) {
  switch (helper) {
    case HelperId::kMapLookup: {
      if (TagOf(r1) != kTagMapRef) {
        return PermissionDenied("map_lookup: r1 is not a map");
      }
      const auto map_id = static_cast<uint32_t>(PayloadOf(r1));
      Map* map = maps_->Get(map_id);
      if (map == nullptr) {
        return PermissionDenied("map_lookup: unknown map");
      }
      ASSIGN_OR_RETURN(Bytes key, CopyIn(r2, map->spec().key_size, ctx));
      Result<uint32_t> handle = map->LookupHandle(ByteSpan(key.data(), key.size()));
      if (!handle.ok()) {
        return uint64_t{0};  // NULL: program must branch on it
      }
      return MakeTagged(kTagMapValue, PackMapValue(map_id, *handle, 0));
    }
    case HelperId::kMapUpdate: {
      if (TagOf(r1) != kTagMapRef) {
        return PermissionDenied("map_update: r1 is not a map");
      }
      const auto map_id = static_cast<uint32_t>(PayloadOf(r1));
      Map* map = maps_->Get(map_id);
      if (map == nullptr) {
        return PermissionDenied("map_update: unknown map");
      }
      ASSIGN_OR_RETURN(Bytes key, CopyIn(r2, map->spec().key_size, ctx));
      ASSIGN_OR_RETURN(Bytes value, CopyIn(r3, map->spec().value_size, ctx));
      (void)r4;  // flags: only BPF_ANY semantics modelled
      Result<uint32_t> slot =
          map->Update(ByteSpan(key.data(), key.size()), ByteSpan(value.data(), value.size()));
      if (!slot.ok()) {
        return static_cast<uint64_t>(-1);
      }
      return uint64_t{0};
    }
    case HelperId::kMapDelete: {
      if (TagOf(r1) != kTagMapRef) {
        return PermissionDenied("map_delete: r1 is not a map");
      }
      const auto map_id = static_cast<uint32_t>(PayloadOf(r1));
      Map* map = maps_->Get(map_id);
      if (map == nullptr) {
        return PermissionDenied("map_delete: unknown map");
      }
      ASSIGN_OR_RETURN(Bytes key, CopyIn(r2, map->spec().key_size, ctx));
      Status st = map->Delete(ByteSpan(key.data(), key.size()));
      return st.ok() ? uint64_t{0} : static_cast<uint64_t>(-1);
    }
    case HelperId::kKtimeGetNs:
      return engine_ != nullptr ? engine_->Now() : uint64_t{0};
    case HelperId::kGetPrandomU32:
      return rng_.Next() & 0xffffffffull;
  }
  return PermissionDenied("unknown helper id");
}

Result<ExecResult> Vm::Run(const Program& prog, MutableByteSpan ctx, uint64_t insn_budget) {
  uint64_t reg[kNumRegisters] = {};
  std::memset(stack_, 0, sizeof(stack_));
  reg[1] = MakeTagged(kTagCtx, 0);
  reg[2] = ctx.size();
  reg[10] = MakeTagged(kTagStack, kStackSize);

  const auto& insns = prog.insns;
  ExecResult result;
  size_t pc = 0;
  while (true) {
    if (pc >= insns.size()) {
      return PermissionDenied("program counter ran off the end");
    }
    if (result.insns_executed >= insn_budget) {
      return DeadlineExceeded("instruction budget exhausted");
    }
    ++result.insns_executed;
    if (exec_counts_ != nullptr && pc < exec_counts_->size()) {
      ++(*exec_counts_)[pc];
    }
    const Insn& insn = insns[pc];
    const uint8_t cls = insn.Class();
    switch (cls) {
      case kClassAlu64:
      case kClassAlu: {
        const bool is64 = cls == kClassAlu64;
        if (insn.AluOp() == kAluEnd) {
          // Byte-swap (to-BE when src bit set) / truncate (to-LE) over the
          // low imm bits, zero-extended — kernel semantics on an LE host.
          uint64_t v = reg[insn.dst];
          const int bits = insn.imm;
          if (bits != 16 && bits != 32 && bits != 64) {
            return PermissionDenied("bad endian width");
          }
          if (insn.IsSrcReg()) {  // to big-endian: swap
            uint64_t swapped = 0;
            for (int b = 0; b < bits / 8; ++b) {
              swapped = (swapped << 8) | ((v >> (8 * b)) & 0xff);
            }
            v = swapped;
          }
          if (bits < 64) {
            v &= (1ull << bits) - 1;
          }
          reg[insn.dst] = v;
          ++pc;
          break;
        }
        const uint64_t src_val = insn.IsSrcReg()
                                     ? reg[insn.src]
                                     : static_cast<uint64_t>(static_cast<int64_t>(insn.imm));
        uint64_t a = reg[insn.dst];
        uint64_t b = src_val;
        if (!is64) {
          a &= 0xffffffffull;
          b &= 0xffffffffull;
        }
        uint64_t out = 0;
        switch (insn.AluOp()) {
          case kAluAdd:
            out = a + b;
            break;
          case kAluSub:
            out = a - b;
            break;
          case kAluMul:
            out = a * b;
            break;
          case kAluDiv:
            out = b == 0 ? 0 : a / b;
            break;
          case kAluMod:
            out = b == 0 ? a : a % b;
            break;
          case kAluOr:
            out = a | b;
            break;
          case kAluAnd:
            out = a & b;
            break;
          case kAluXor:
            out = a ^ b;
            break;
          case kAluLsh:
            out = a << (b & (is64 ? 63 : 31));
            break;
          case kAluRsh:
            out = a >> (b & (is64 ? 63 : 31));
            break;
          case kAluArsh:
            if (is64) {
              out = static_cast<uint64_t>(static_cast<int64_t>(a) >> (b & 63));
            } else {
              out = static_cast<uint64_t>(
                  static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31)));
            }
            break;
          case kAluNeg:
            out = ~a + 1;
            break;
          case kAluMov:
            out = b;
            break;
          default:
            return PermissionDenied("unknown ALU op");
        }
        if (!is64) {
          out &= 0xffffffffull;
        }
        reg[insn.dst] = out;
        ++pc;
        break;
      }
      case kClassLd: {
        if (!insn.IsLdImm64() || pc + 1 >= insns.size()) {
          return PermissionDenied("malformed LD instruction");
        }
        const Insn& hi = insns[pc + 1];
        if (insn.src == kPseudoMapFd) {
          reg[insn.dst] =
              MakeTagged(kTagMapRef, static_cast<uint32_t>(insn.imm));
        } else {
          reg[insn.dst] = (static_cast<uint64_t>(static_cast<uint32_t>(hi.imm)) << 32) |
                          static_cast<uint32_t>(insn.imm);
        }
        pc += 2;
        break;
      }
      case kClassLdx: {
        const uint32_t size = SizeBytes(insn.Size());
        if (size == 0) {
          return PermissionDenied("bad load size");
        }
        const uint64_t addr = reg[insn.src] + static_cast<uint64_t>(
                                                  static_cast<int64_t>(insn.off));
        ASSIGN_OR_RETURN(reg[insn.dst], LoadFrom(addr, size, ctx));
        ++pc;
        break;
      }
      case kClassStx:
      case kClassSt: {
        const uint32_t size = SizeBytes(insn.Size());
        if (size == 0) {
          return PermissionDenied("bad store size");
        }
        const uint64_t addr = reg[insn.dst] + static_cast<uint64_t>(
                                                  static_cast<int64_t>(insn.off));
        if (cls == kClassStx && insn.Mode() == kModeAtomic) {
          if (insn.imm != kAtomicAdd || (size != 4 && size != 8)) {
            return PermissionDenied("unsupported atomic operation");
          }
          ASSIGN_OR_RETURN(uint64_t old, LoadFrom(addr, size, ctx));
          RETURN_IF_ERROR(StoreTo(addr, size, old + reg[insn.src], ctx));
          ++pc;
          break;
        }
        const uint64_t value = cls == kClassStx
                                   ? reg[insn.src]
                                   : static_cast<uint64_t>(static_cast<int64_t>(insn.imm));
        RETURN_IF_ERROR(StoreTo(addr, size, value, ctx));
        ++pc;
        break;
      }
      case kClassJmp:
      case kClassJmp32: {
        const uint8_t op = insn.AluOp();
        if (op == kJmpExit) {
          result.return_value = reg[0];
          return result;
        }
        if (op == kJmpCall) {
          ASSIGN_OR_RETURN(reg[0],
                           CallHelper(static_cast<HelperId>(insn.imm), reg[1], reg[2], reg[3],
                                      reg[4], ctx));
          // r1-r5 are clobbered by calls per the ABI.
          reg[1] = reg[2] = reg[3] = reg[4] = reg[5] = 0;
          ++pc;
          break;
        }
        bool taken;
        if (op == kJmpJa) {
          taken = true;
        } else {
          uint64_t a = reg[insn.dst];
          uint64_t b = insn.IsSrcReg() ? reg[insn.src]
                                       : static_cast<uint64_t>(static_cast<int64_t>(insn.imm));
          if (cls == kClassJmp32) {
            a &= 0xffffffffull;
            b &= 0xffffffffull;
          }
          const auto sa = static_cast<int64_t>(a);
          const auto sb = static_cast<int64_t>(b);
          switch (op) {
            case kJmpJeq:
              taken = a == b;
              break;
            case kJmpJne:
              taken = a != b;
              break;
            case kJmpJgt:
              taken = a > b;
              break;
            case kJmpJge:
              taken = a >= b;
              break;
            case kJmpJlt:
              taken = a < b;
              break;
            case kJmpJle:
              taken = a <= b;
              break;
            case kJmpJset:
              taken = (a & b) != 0;
              break;
            case kJmpJsgt:
              taken = sa > sb;
              break;
            case kJmpJsge:
              taken = sa >= sb;
              break;
            case kJmpJslt:
              taken = sa < sb;
              break;
            case kJmpJsle:
              taken = sa <= sb;
              break;
            default:
              return PermissionDenied("unknown jump op");
          }
        }
        if (taken) {
          const int64_t target = static_cast<int64_t>(pc) + 1 + insn.off;
          if (target < 0 || static_cast<size_t>(target) > insns.size()) {
            return PermissionDenied("jump out of program");
          }
          pc = static_cast<size_t>(target);
        } else {
          ++pc;
        }
        break;
      }
      default:
        return PermissionDenied("unknown instruction class");
    }
  }
}

}  // namespace hyperion::ebpf
