// eBPF instruction set (paper §2.2).
//
// The paper positions eBPF as Hyperion's accelerator-independent
// intermediate representation: frontends lower to eBPF, the verifier proves
// safety, and backends either interpret (vm.h) or compile to spatial
// hardware pipelines (hdl_codegen.h). Encoding follows the Linux uapi: a
// 64-bit instruction word with class/size/mode packed into the opcode,
// 4-bit dst/src registers, a 16-bit signed offset, and a 32-bit immediate.
// LD_IMM64 occupies two slots, and with src=1 references a map by id.

#ifndef HYPERION_SRC_EBPF_INSN_H_
#define HYPERION_SRC_EBPF_INSN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"

namespace hyperion::ebpf {

// -- Opcode fields ----------------------------------------------------------

// Instruction class (low 3 bits).
constexpr uint8_t kClassLd = 0x00;
constexpr uint8_t kClassLdx = 0x01;
constexpr uint8_t kClassSt = 0x02;
constexpr uint8_t kClassStx = 0x03;
constexpr uint8_t kClassAlu = 0x04;
constexpr uint8_t kClassJmp = 0x05;
constexpr uint8_t kClassJmp32 = 0x06;
constexpr uint8_t kClassAlu64 = 0x07;

// Size field for memory ops.
constexpr uint8_t kSizeW = 0x00;   // 4 bytes
constexpr uint8_t kSizeH = 0x08;   // 2 bytes
constexpr uint8_t kSizeB = 0x10;   // 1 byte
constexpr uint8_t kSizeDw = 0x18;  // 8 bytes

// Mode field for memory ops.
constexpr uint8_t kModeImm = 0x00;
constexpr uint8_t kModeMem = 0x60;
constexpr uint8_t kModeAtomic = 0xc0;  // STX only; imm selects the op (kAtomicAdd)

// Atomic operation selector (imm field of an atomic STX).
constexpr int32_t kAtomicAdd = 0x00;

// Source operand: immediate (K) or register (X).
constexpr uint8_t kSrcK = 0x00;
constexpr uint8_t kSrcX = 0x08;

// ALU operations (high 4 bits).
constexpr uint8_t kAluAdd = 0x00;
constexpr uint8_t kAluSub = 0x10;
constexpr uint8_t kAluMul = 0x20;
constexpr uint8_t kAluDiv = 0x30;
constexpr uint8_t kAluOr = 0x40;
constexpr uint8_t kAluAnd = 0x50;
constexpr uint8_t kAluLsh = 0x60;
constexpr uint8_t kAluRsh = 0x70;
constexpr uint8_t kAluNeg = 0x80;
constexpr uint8_t kAluMod = 0x90;
constexpr uint8_t kAluXor = 0xa0;
constexpr uint8_t kAluMov = 0xb0;
constexpr uint8_t kAluArsh = 0xc0;
constexpr uint8_t kAluEnd = 0xd0;  // byte-swap: kSrcK = to-LE, kSrcX = to-BE; imm = 16/32/64

// Jump operations (high 4 bits).
constexpr uint8_t kJmpJa = 0x00;
constexpr uint8_t kJmpJeq = 0x10;
constexpr uint8_t kJmpJgt = 0x20;
constexpr uint8_t kJmpJge = 0x30;
constexpr uint8_t kJmpJset = 0x40;
constexpr uint8_t kJmpJne = 0x50;
constexpr uint8_t kJmpJsgt = 0x60;
constexpr uint8_t kJmpJsge = 0x70;
constexpr uint8_t kJmpCall = 0x80;
constexpr uint8_t kJmpExit = 0x90;
constexpr uint8_t kJmpJlt = 0xa0;
constexpr uint8_t kJmpJle = 0xb0;
constexpr uint8_t kJmpJslt = 0xc0;
constexpr uint8_t kJmpJsle = 0xd0;

// Pseudo src_reg value in LD_IMM64 marking a map reference.
constexpr uint8_t kPseudoMapFd = 1;

// Well-known helper function ids (subset of the kernel's).
enum class HelperId : int32_t {
  kMapLookup = 1,   // r1=map, r2=key ptr -> r0 = value ptr or NULL
  kMapUpdate = 2,   // r1=map, r2=key ptr, r3=value ptr, r4=flags -> 0
  kMapDelete = 3,   // r1=map, r2=key ptr -> 0 or -ENOENT
  kKtimeGetNs = 5,  // -> r0 = virtual time, ns
  kGetPrandomU32 = 7,
};

constexpr int kNumRegisters = 11;  // r0..r9 + r10 (frame pointer)
constexpr int kStackSize = 512;    // bytes below r10

struct Insn {
  uint8_t opcode = 0;
  uint8_t dst = 0;  // 4-bit register
  uint8_t src = 0;  // 4-bit register
  int16_t off = 0;
  int32_t imm = 0;

  uint8_t Class() const { return opcode & 0x07; }
  uint8_t AluOp() const { return opcode & 0xf0; }
  uint8_t Size() const { return opcode & 0x18; }
  uint8_t Mode() const { return opcode & 0xe0; }
  bool IsSrcReg() const { return (opcode & 0x08) != 0; }
  bool IsLdImm64() const { return opcode == (kClassLd | kSizeDw | kModeImm); }

  friend bool operator==(const Insn&, const Insn&) = default;
};

// A verified-or-not eBPF program: instructions + the context size contract.
struct Program {
  std::string name;
  std::vector<Insn> insns;
  // Upper bound of the r1 context (packet/record) buffer the program may
  // touch; the verifier enforces accesses within [0, ctx_size).
  uint32_t ctx_size = 1514;
};

// -- Instruction factories (builder-style construction) ----------------------

Insn Mov64Imm(uint8_t dst, int32_t imm);
Insn Mov64Reg(uint8_t dst, uint8_t src);
Insn Alu64Imm(uint8_t op, uint8_t dst, int32_t imm);
Insn Alu64Reg(uint8_t op, uint8_t dst, uint8_t src);
Insn Alu32Imm(uint8_t op, uint8_t dst, int32_t imm);
Insn Alu32Reg(uint8_t op, uint8_t dst, uint8_t src);
// LDX: dst = *(size*)(src + off)
Insn LoadMem(uint8_t size, uint8_t dst, uint8_t src, int16_t off);
// STX: *(size*)(dst + off) = src
Insn StoreReg(uint8_t size, uint8_t dst, int16_t off, uint8_t src);
// ST: *(size*)(dst + off) = imm
Insn StoreImm(uint8_t size, uint8_t dst, int16_t off, int32_t imm);
Insn JumpAlways(int16_t off);
Insn JumpImm(uint8_t op, uint8_t dst, int32_t imm, int16_t off);
Insn JumpReg(uint8_t op, uint8_t dst, uint8_t src, int16_t off);
Insn Call(HelperId helper);
Insn Exit();
// Emits the two-slot LD_IMM64; appends both slots to `out`.
void LoadImm64(std::vector<Insn>& out, uint8_t dst, uint64_t imm);
// LD_IMM64 referencing map `map_id`.
void LoadMapFd(std::vector<Insn>& out, uint8_t dst, uint32_t map_id);
// Atomic *(size*)(dst + off) += src (BPF_ATOMIC | BPF_ADD). size: kSizeW/kSizeDw.
Insn AtomicAdd(uint8_t size, uint8_t dst, int16_t off, uint8_t src);
// Byte-swap dst to big-endian (`to_be`=true) or little-endian, over the low
// `bits` (16/32/64) with zero-extension.
Insn EndianSwap(uint8_t dst, bool to_be, int32_t bits);

// Disassembles one instruction (best effort, for diagnostics).
std::string Disassemble(const Insn& insn);

// Wire serialization of a whole program (for the control-path RPC that
// ships verified logic to a DPU).
Bytes SerializeProgram(const Program& prog);
Result<Program> ParseProgram(ByteSpan data);

}  // namespace hyperion::ebpf

#endif  // HYPERION_SRC_EBPF_INSN_H_
