#include "src/sim/fault.h"

#include <string>

#include "src/common/check.h"

namespace hyperion::sim {

std::string_view FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kNvmeReadError:
      return "nvme_read_error";
    case FaultSite::kNvmeCmdTimeout:
      return "nvme_cmd_timeout";
    case FaultSite::kPcieLinkDrop:
      return "pcie_link_drop";
    case FaultSite::kFpgaReconfigFail:
      return "fpga_reconfig_fail";
    case FaultSite::kNetLoss:
      return "net_loss";
    case FaultSite::kNetCorrupt:
      return "net_corrupt";
    case FaultSite::kRpcResponseDrop:
      return "rpc_response_drop";
    case FaultSite::kStoragePowerCut:
      return "storage_power_cut";
    case FaultSite::kNodeKill:
      return "node_kill";
  }
  return "?";
}

FaultInjector::FaultInjector(Engine* engine, FaultPlan plan, uint64_t seed) : engine_(engine) {
  CHECK(engine != nullptr);
  rules_.reserve(plan.rules().size());
  for (const FaultRule& rule : plan.rules()) {
    DCHECK_GE(rule.probability, 0.0);
    DCHECK_LE(rule.probability, 1.0);
    const auto index = static_cast<uint32_t>(rules_.size());
    // Distinct splitmix-spread stream per rule: decisions at one site can
    // never perturb the sequence another site (or the workload) observes.
    rules_.push_back(RuleState{rule, Rng(seed + 0xd1b54a32d192ed03ull * (index + 1)), 0});
    by_site_[static_cast<size_t>(rule.site)].push_back(index);
  }
}

bool FaultInjector::ShouldInject(FaultSite site) {
  const std::vector<uint32_t>& candidates = by_site_[static_cast<size_t>(site)];
  if (candidates.empty()) {
    return false;  // idle fast path: no draw, no counter, no allocation
  }
  const SimTime now = engine_->Now();
  for (uint32_t index : candidates) {
    RuleState& state = rules_[index];
    if (now < state.rule.active_from || now >= state.rule.active_until) {
      continue;
    }
    if (state.injected >= state.rule.max_faults) {
      continue;
    }
    if (state.skipped < state.rule.skip_first) {
      ++state.skipped;  // pass-through; no draw, streams stay undisturbed
      continue;
    }
    if (!state.rng.Bernoulli(state.rule.probability)) {
      continue;
    }
    ++state.injected;
    ++injected_by_site_[static_cast<size_t>(site)];
    counters_.Add("fault_" + std::string(FaultSiteName(site)), 1);
    return true;
  }
  return false;
}

uint64_t FaultInjector::TotalInjected() const {
  uint64_t total = 0;
  for (uint64_t n : injected_by_site_) {
    total += n;
  }
  return total;
}

}  // namespace hyperion::sim
