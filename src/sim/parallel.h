// Parallel discrete-event simulation across sharded engines (PR 3).
//
// The cluster experiments (multi-DPU KV, replicated logs, partitioned graph
// analytics) used to serialize every simulated node through one sim::Engine
// on one core. This layer shards the simulation: each shard owns a private
// Engine and runs on its own worker thread, and shards interact only
// through timestamped cross-shard messages.
//
// Synchronization is conservative epoch-barrier PDES ("null-message-free"
// windowing): the minimum cross-shard link latency is a *lookahead* — a
// message sent at local time t can never take effect before t + lookahead.
// Each round the coordinator computes the global next event time E, all
// shards run independently inside the window [E, E + lookahead), and at the
// barrier the outboxes are exchanged. Every message produced inside the
// window carries a delivery time >= E + lookahead, so no shard can ever
// receive a message for its past — the classic conservative-safety
// invariant, enforced with a CHECK at Post().
//
// Determinism: inbound messages are merged into the destination engine in
// (delivery time, source id, per-source sequence) order before the next
// window runs. Source ids are logical (registration order), not thread or
// shard ids, and per-source sequences are assigned in the source's own
// deterministic execution order — so the merged order, and therefore the
// full event trace, is bit-identical whether the same logical sources are
// spread over 1 shard or N, with threads or without. The PR-1 determinism
// regression style applies unchanged; tests/cluster_test.cc pins it for
// num_shards in {1, 2, 4}.
//
// Thread-safety contract: shard s's Engine (and everything scheduled on it)
// is touched only by shard s's worker during a window, and only by the
// coordinator at a barrier while all workers are quiescent; the barrier's
// mutex provides the happens-before edges. Post(source, ...) must be called
// from the source's shard (its worker thread during windows, or the
// coordinator before Run()). Anything a message closure captures crosses
// threads through the barrier, which synchronizes; payloads should still be
// immutable or uniquely owned (Buffer slices qualify — see common/buffer.h).

#ifndef HYPERION_SRC_SIM_PARALLEL_H_
#define HYPERION_SRC_SIM_PARALLEL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace hyperion::sim {

struct ParallelEngineOptions {
  uint32_t num_shards = 1;
  // Lower bound asserted on every cross-shard message's latency, and the
  // minimum epoch window width. Raising it widens windows (fewer barriers)
  // but Post() CHECK-fails if any message is actually posted sooner — the
  // knob can only claim lookahead the communication layer really has.
  // DeclareLinkLatency() raises the effective lookahead above the floor
  // when every link is slower.
  Duration lookahead_floor = 100;  // ns
  // Run shards on worker threads. With false (or num_shards == 1) windows
  // execute round-robin on the caller's thread — bit-identical results,
  // useful for debugging and for measuring barrier overhead alone.
  bool use_threads = true;
  // Per-shard engine knobs (timing wheel, event pool).
  EngineOptions engine_options;
};

struct ParallelEngineStats {
  uint64_t epochs = 0;            // barrier rounds executed
  uint64_t events_run = 0;        // events executed across all shards
  uint64_t messages = 0;          // channel messages delivered
  uint64_t cross_shard_messages = 0;  // subset whose src/dst shards differ
  uint64_t max_outbox = 0;        // largest per-barrier exchange
};

// Sharded conservative-lookahead event engine. See file comment.
class ParallelEngine {
 public:
  explicit ParallelEngine(const ParallelEngineOptions& options);
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;
  ~ParallelEngine();

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  Engine& shard(uint32_t s);
  const ParallelEngineOptions& options() const { return options_; }

  // Registers a logical message source homed on `shard` and returns its id.
  // Registration order is the deterministic tie-break between sources, so
  // register in a layout-independent order (e.g. node id order).
  uint32_t AddSource(uint32_t shard);
  uint32_t source_shard(uint32_t source) const;

  // Declares that some channel can deliver a message `min_latency` after it
  // is sent; the effective lookahead becomes the minimum declared latency
  // (never below lookahead_floor — CHECK). Call before Run().
  void DeclareLinkLatency(Duration min_latency);
  Duration lookahead() const { return lookahead_; }

  // Posts a message from `source`: `fn` runs on the destination shard's
  // engine at virtual time `when`. Must be called from the source's shard
  // (see thread-safety contract above); CHECKs the lookahead invariant
  // `when >= source-shard Now() + lookahead()`.
  void Post(uint32_t source, uint32_t dst_shard, SimTime when, EventFn fn);

  // Runs epochs until global quiescence (no pending events, no undelivered
  // messages). Returns the total number of events executed.
  uint64_t Run();

  const ParallelEngineStats& stats() const { return stats_; }

 private:
  struct Message {
    SimTime when = 0;
    uint32_t source = 0;
    uint64_t seq = 0;
    uint32_t dst_shard = 0;
    EventFn fn;
  };

  // One shard: a private engine plus the outbox its worker fills during a
  // window. Padded so neighbouring shards' hot state never shares a line.
  struct alignas(64) Shard {
    std::unique_ptr<Engine> engine;
    std::vector<Message> outbox;
    uint64_t executed = 0;
  };

  struct Source {
    uint32_t shard = 0;
    uint64_t next_seq = 0;
  };

  void StartWorkers();
  void WorkerLoop(uint32_t shard_index);
  // Runs every shard over [previous horizon, `horizon`) — on workers or
  // inline — then returns with all workers quiescent.
  void RunWindow(SimTime horizon);
  // Coordinator, workers quiescent: routes every outbox message into its
  // destination engine in (when, source, seq) order.
  void DeliverOutboxes();
  // Global earliest pending event time across shards (kNever if none).
  SimTime NextEventTime();

  ParallelEngineOptions options_;
  Duration lookahead_;
  bool link_declared_ = false;
  std::vector<Shard> shards_;
  std::vector<Source> sources_;
  ParallelEngineStats stats_;

  // Barrier state (guarded by mu_). Workers wait for epoch_gen_ to advance,
  // run their window to window_end_, then report via pending_workers_.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_gen_ = 0;
  uint32_t pending_workers_ = 0;
  SimTime window_end_ = 0;
  bool shutdown_ = false;

  // Scratch for DeliverOutboxes (coordinator-only).
  std::vector<Message> staging_;
};

// Typed cross-shard channel: a fixed (source, destination shard) edge that
// delivers `T` values to a receiver callback on the destination shard. The
// channel (and its receiver) must outlive every in-flight message.
template <typename T>
class Channel {
 public:
  // Receiver runs on the destination shard's engine at delivery time.
  using Receiver = std::function<void(T, SimTime when)>;

  Channel(ParallelEngine* engine, uint32_t source, uint32_t dst_shard, Receiver receiver)
      : engine_(engine),
        source_(source),
        dst_shard_(dst_shard),
        receiver_(std::make_unique<Receiver>(std::move(receiver))) {}

  uint32_t source() const { return source_; }
  uint32_t dst_shard() const { return dst_shard_; }

  // Posts `value` for delivery at `when` (subject to the lookahead CHECK).
  void Send(SimTime when, T value) {
    Receiver* receiver = receiver_.get();
    engine_->Post(source_, dst_shard_, when,
                  [receiver, when, v = std::move(value)]() mutable {
                    (*receiver)(std::move(v), when);
                  });
  }

 private:
  ParallelEngine* engine_;
  uint32_t source_;
  uint32_t dst_shard_;
  std::unique_ptr<Receiver> receiver_;  // stable address for in-flight sends
};

}  // namespace hyperion::sim

#endif  // HYPERION_SRC_SIM_PARALLEL_H_
