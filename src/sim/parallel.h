// Parallel discrete-event simulation across sharded engines (PR 3, rebuilt
// in PR 7 for per-channel lookahead and allocation-free exchange).
//
// The cluster experiments (multi-DPU KV, replicated logs, partitioned graph
// analytics) used to serialize every simulated node through one sim::Engine
// on one core. This layer shards the simulation: each shard owns a private
// Engine and runs on its own worker thread, and shards interact only
// through timestamped cross-shard messages.
//
// Synchronization is conservative PDES with a *lookahead matrix*: L[s][d]
// is a lower bound on how far in the future a message from shard s to
// shard d must land (per-channel declared latencies, falling back to the
// global declared minimum, falling back to lookahead_floor). From L the
// coordinator derives the all-pairs shortest influence distance dist(s, d)
// — the minimum latency over any multi-hop path s -> ... -> d, including
// cycles back to d itself — and gives every shard its own horizon each
// epoch:
//
//     horizon(d) = min over shards s of (next(s) + dist(s, d))
//
// where next(s) is s's earliest pending event or undelivered inbound
// message. Any message that could still reach d was either already pending
// somewhere at time next(s) or will be emitted by an event at t >= next(s),
// and each hop adds at least its edge latency, so nothing can arrive at d
// before horizon(d): running d's events strictly below horizon(d) is safe.
// With one shard (or no path back), dist is infinite and the whole
// simulation drains in a single epoch. Wider per-shard horizons mean fewer
// barriers than the classic single-window [E, E + min L) scheme, and idle
// shards (next(d) >= horizon(d)) are not woken at all.
//
// Determinism no longer depends on *when* a message is merged: every
// message carries an explicit (delivery time, source id, per-source seq)
// key into the destination engine (Engine::ScheduleMessage), and at equal
// timestamps messages sort before locally scheduled events. Source ids are
// logical (registration order) and per-source sequences are assigned in the
// source's own deterministic execution order, so the execution order — and
// therefore the full event trace — is bit-identical whether the same
// logical sources are spread over 1 shard or N, with threads or without,
// and regardless of which epoch window delivered each message. This is also
// what lets same-shard messages skip the exchange entirely and be scheduled
// directly into the home engine.
//
// The exchange itself is allocation-free in steady state: each shard keeps
// one outbox vector per destination, the barrier swaps it with the
// destination's inbox vector (capacities ping-pong), and the destination
// worker schedules its own inbox at window start. No global sort: the
// explicit keys order messages inside the engines.
//
// Thread-safety contract: shard s's Engine, outboxes and sources (and
// everything scheduled on it) are touched only by shard s's worker during a
// window, and only by the coordinator at a barrier while all workers are
// quiescent; the per-shard mutex provides the happens-before edges.
// Post(source, ...) must be called from the source's shard (its worker
// thread during windows, or the coordinator before Run()). Anything a
// message closure captures crosses threads through the barrier, which
// synchronizes; payloads should still be immutable or uniquely owned
// (Buffer slices qualify — see common/buffer.h).

#ifndef HYPERION_SRC_SIM_PARALLEL_H_
#define HYPERION_SRC_SIM_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace hyperion::sim {

struct ParallelEngineOptions {
  uint32_t num_shards = 1;
  // Lower bound asserted on every cross-shard message's latency, and the
  // fallback lookahead for links with no declared latency. Raising it
  // widens windows (fewer barriers) but Post() CHECK-fails if any message
  // is actually posted sooner — the knob can only claim lookahead the
  // communication layer really has. DeclareLinkLatency() raises the
  // effective lookahead above the floor, globally or per directed shard
  // pair.
  Duration lookahead_floor = 100;  // ns
  // Run shards on worker threads. With false (or num_shards == 1) windows
  // execute round-robin on the caller's thread — bit-identical results,
  // useful for debugging and for measuring barrier overhead alone.
  bool use_threads = true;
  // Per-shard engine knobs (timing wheel, event pool).
  EngineOptions engine_options;
};

struct ParallelEngineStats {
  uint64_t epochs = 0;      // barrier rounds executed
  uint64_t events_run = 0;  // events executed across all shards
  uint64_t messages = 0;    // channel messages delivered
  uint64_t cross_shard_messages = 0;  // subset whose src/dst shards differ
  uint64_t max_outbox = 0;        // largest per-barrier exchange
  uint64_t self_delivered = 0;    // same-shard messages that skipped the exchange
  uint64_t windows_run = 0;       // per-shard windows actually executed
  uint64_t windows_skipped = 0;   // idle shards not woken at a barrier
};

// Sharded conservative-lookahead event engine. See file comment.
class ParallelEngine {
 public:
  explicit ParallelEngine(const ParallelEngineOptions& options);
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;
  ~ParallelEngine();

  uint32_t num_shards() const { return num_shards_; }
  Engine& shard(uint32_t s);
  const ParallelEngineOptions& options() const { return options_; }

  // Registers a logical message source homed on `shard` and returns its id.
  // Registration order is the deterministic tie-break between sources, so
  // register in a layout-independent order (e.g. node id order).
  uint32_t AddSource(uint32_t shard);
  uint32_t source_shard(uint32_t source) const;

  // Declares that some channel can deliver a message `min_latency` after it
  // is sent (>= lookahead_floor — CHECK; call before Run()). The global
  // form bounds every directed shard pair; the pair form bounds one edge,
  // letting slow links buy wider windows for everyone else.
  void DeclareLinkLatency(Duration min_latency);
  void DeclareLinkLatency(uint32_t src_shard, uint32_t dst_shard, Duration min_latency);
  // Minimum effective lookahead over all directed pairs (the classic single
  // window width; benches use it to place safely-deliverable sends).
  Duration lookahead() const;
  // Effective lookahead of one directed shard pair.
  Duration lookahead(uint32_t src_shard, uint32_t dst_shard) const;

  // Registers a fixed (source, destination shard) messaging edge and
  // returns its id. A nonzero `min_latency` declares the pair's link
  // latency. Channel<T> uses this so repeated sends carry no per-message
  // routing state.
  uint32_t RegisterChannel(uint32_t source, uint32_t dst_shard, Duration min_latency = 0);

  // Posts a message from `source`: `fn` runs on the destination shard's
  // engine at virtual time `when`. Must be called from the source's shard
  // (see thread-safety contract above); CHECKs the lookahead invariant
  // `when >= source-shard Now() + lookahead(src_shard, dst_shard)`.
  void Post(uint32_t source, uint32_t dst_shard, SimTime when, EventFn fn);

  // Posts on a registered channel edge (same invariants as Post).
  void PostChannel(uint32_t channel_id, SimTime when, EventFn fn) {
    const ChannelEdge& edge = channels_[channel_id];
    Post(edge.source, edge.dst_shard, when, std::move(fn));
  }

  // Runs epochs until global quiescence (no pending events, no undelivered
  // messages). Returns the total number of events executed.
  uint64_t Run();

  const ParallelEngineStats& stats() const { return stats_; }

 private:
  struct Message {
    SimTime when = 0;
    uint64_t seq = 0;
    uint32_t source = 0;
    EventFn fn;
  };

  struct ChannelEdge {
    uint32_t source = 0;
    uint32_t dst_shard = 0;
  };

  // One shard: a private engine, per-destination outboxes its worker fills
  // during a window, and per-source inboxes the barrier swaps full outboxes
  // into. Padded so neighbouring shards' hot state never shares a line.
  struct alignas(64) Shard {
    std::unique_ptr<Engine> engine;
    std::vector<std::vector<Message>> outbox;  // [dst_shard]
    std::vector<SimTime> outbox_min;           // earliest `when` per outbox
    std::vector<std::vector<Message>> inbox;   // [src_shard], undelivered
    SimTime inbox_min = Engine::kNever;        // earliest undelivered `when`
    uint64_t executed = 0;
    uint64_t self_delivered = 0;

    // Worker wake state (guarded by mu). gen advances when a new window is
    // assigned; horizon is its exclusive end.
    std::mutex mu;
    std::condition_variable cv;
    uint64_t gen = 0;
    SimTime horizon = 0;
    bool shutdown = false;
  };

  struct Source {
    uint32_t shard = 0;
    uint64_t next_seq = 0;
  };

  static SimTime SatAdd(SimTime a, SimTime b) {
    return a >= Engine::kNever - b ? Engine::kNever : a + b;
  }

  void StartWorkers();
  void WorkerLoop(uint32_t shard_index);
  // Builds the effective-lookahead and influence-distance matrices from the
  // declared latencies (idempotent; cheap flag check when clean).
  void EnsureMatrices();
  // Coordinator, workers quiescent: swaps every non-empty outbox into its
  // destination's inbox (O(1) per pair) and tallies exchange stats.
  void ExchangeOutboxes();
  // Fills next_[d] = earliest pending event or undelivered message per
  // shard; returns the global minimum.
  SimTime ComputeNextTimes();
  void ComputeHorizons();
  // Runs every shard with next_[d] < horizon_[d] over its window — on
  // workers or inline — then returns with all workers quiescent.
  void RunWindows();
  // Schedules a shard's undelivered inbox into its engine (worker-side).
  void DeliverInbox(Shard& sh);
  uint64_t TotalExecuted() const;

  ParallelEngineOptions options_;
  uint32_t num_shards_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Source> sources_;
  std::vector<ChannelEdge> channels_;
  ParallelEngineStats stats_;
  bool running_ = false;

  // Declared link latencies (kNever = undeclared) and the derived matrices.
  Duration global_declared_ = Engine::kNever;
  std::vector<Duration> pair_declared_;  // [s * num_shards_ + d]
  std::vector<Duration> l_eff_;          // effective lookahead per pair
  std::vector<SimTime> dist_;            // min influence distance per pair
  bool matrices_ready_ = false;

  // Coordinator scratch (barrier-only).
  std::vector<SimTime> next_;
  std::vector<SimTime> horizon_;
  std::vector<uint8_t> active_;

  // Epoch completion: count of active workers still running their window.
  std::vector<std::thread> workers_;
  std::atomic<uint32_t> pending_{0};
  std::mutex done_mu_;
  std::condition_variable done_cv_;
};

// Typed cross-shard channel: a fixed (source, destination shard) edge that
// delivers `T` values to a receiver callback on the destination shard. The
// channel (and its receiver) must outlive every in-flight message; sends
// capture `this`, so the channel is neither copyable nor movable.
template <typename T>
class Channel {
 public:
  // Receiver runs on the destination shard's engine at delivery time.
  using Receiver = std::function<void(T, SimTime when)>;

  // A nonzero `min_latency` declares this edge's link latency, feeding the
  // per-pair lookahead matrix (see ParallelEngine::DeclareLinkLatency).
  Channel(ParallelEngine* engine, uint32_t source, uint32_t dst_shard, Receiver receiver,
          Duration min_latency = 0)
      : engine_(engine),
        source_(source),
        dst_shard_(dst_shard),
        id_(engine->RegisterChannel(source, dst_shard, min_latency)),
        receiver_(std::move(receiver)) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  uint32_t id() const { return id_; }
  uint32_t source() const { return source_; }
  uint32_t dst_shard() const { return dst_shard_; }

  // Posts `value` for delivery at `when` (subject to the lookahead CHECK).
  // Non-allocating for payloads up to ~100 bytes: the closure is built in
  // EventFn inline storage and relocated into the destination engine's
  // pooled event node — no boxed receiver, no per-message heap traffic.
  void Send(SimTime when, T value) {
    engine_->PostChannel(id_, when, EventFn([this, when, v = std::move(value)]() mutable {
                           receiver_(std::move(v), when);
                         }));
  }

 private:
  ParallelEngine* engine_;
  uint32_t source_;
  uint32_t dst_shard_;
  uint32_t id_;
  Receiver receiver_;  // stable address: channel is pinned for in-flight sends
};

}  // namespace hyperion::sim

#endif  // HYPERION_SRC_SIM_PARALLEL_H_
