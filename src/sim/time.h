// Virtual time for the Hyperion simulation.
//
// All device and software cost models account time in integer nanoseconds of
// *simulated* time, fully decoupled from the wall clock, so every run is
// deterministic and platform-independent.

#ifndef HYPERION_SRC_SIM_TIME_H_
#define HYPERION_SRC_SIM_TIME_H_

#include <cstdint>

namespace hyperion::sim {

// Nanoseconds of virtual time since simulation start.
using SimTime = uint64_t;
// A span of virtual time, also in nanoseconds.
using Duration = uint64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000;
constexpr Duration kMillisecond = 1000 * 1000;
constexpr Duration kSecond = 1000ull * 1000 * 1000;

constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / 1e9; }
constexpr double ToMicros(Duration d) { return static_cast<double>(d) / 1e3; }
constexpr double ToMillis(Duration d) { return static_cast<double>(d) / 1e6; }

// Time to move `bytes` across a link/bus of `gbps` gigabits per second.
constexpr Duration TransferTime(uint64_t bytes, double gbps) {
  // ns = bytes * 8 / (gbps * 1e9) * 1e9 = bytes * 8 / gbps.
  return static_cast<Duration>(static_cast<double>(bytes) * 8.0 / gbps);
}

// Cycles at `mhz` expressed as a Duration.
constexpr Duration CyclesToTime(uint64_t cycles, double mhz) {
  return static_cast<Duration>(static_cast<double>(cycles) * 1000.0 / mhz);
}

}  // namespace hyperion::sim

#endif  // HYPERION_SRC_SIM_TIME_H_
