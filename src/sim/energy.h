// Energy accounting for experiment E3 (the paper's "4-8x more energy
// efficient, approx. 230 W vs 1,600 W" claim).
//
// The model is the standard static+dynamic split: each component draws an
// idle (static) power continuously over virtual time, plus a per-operation
// dynamic energy charge. Component parameters default to the TDP envelopes
// the paper quotes: an Alveo U280-class DPU (~230 W max) vs a SuperMicro
// X12-class 1U server (~1,600 W max).

#ifndef HYPERION_SRC_SIM_ENERGY_H_
#define HYPERION_SRC_SIM_ENERGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace hyperion::sim {

struct ComponentPower {
  std::string name;
  double idle_watts = 0.0;    // drawn whenever the system is powered
  double active_watts = 0.0;  // additional draw while the component is busy
};

class EnergyModel {
 public:
  // Registers a component; returns its id for Busy() charges.
  size_t AddComponent(ComponentPower power);

  // Marks component `id` busy for `busy` of virtual time (adds
  // active_watts * busy on top of the always-on idle draw).
  void Busy(size_t id, Duration busy);

  // Total energy in joules if the system ran for `elapsed` of virtual time:
  // sum(idle_watts)*elapsed + sum(active_watts * busy_time per component).
  double TotalJoules(Duration elapsed) const;

  // Sum of idle watts across components (the "wall draw" floor).
  double IdleWatts() const;
  // Sum of idle+active watts (the TDP envelope).
  double PeakWatts() const;

  const std::vector<ComponentPower>& components() const { return components_; }

 private:
  std::vector<ComponentPower> components_;
  std::vector<Duration> busy_time_;
};

// The Hyperion DPU power budget (paper §2: approx. 230 W max TDP).
EnergyModel MakeDpuEnergyModel();

// A conventional 1U server power budget (paper §2: approx. 1,600 W max TDP).
EnergyModel MakeServerEnergyModel();

// Component ids inside the models above, for Busy() accounting.
struct DpuPowerIds {
  static constexpr size_t kFabric = 0;
  static constexpr size_t kHbm = 1;
  static constexpr size_t kNetwork = 2;
  static constexpr size_t kNvme = 3;
};
struct ServerPowerIds {
  static constexpr size_t kCpu = 0;
  static constexpr size_t kDram = 1;
  static constexpr size_t kNic = 2;
  static constexpr size_t kNvme = 3;
  static constexpr size_t kChassis = 4;  // fans, PSU loss, BMC
};

}  // namespace hyperion::sim

#endif  // HYPERION_SRC_SIM_ENERGY_H_
