#include "src/sim/parallel.h"

#include <algorithm>

#include "src/common/check.h"

namespace hyperion::sim {

ParallelEngine::ParallelEngine(const ParallelEngineOptions& options)
    : options_(options), num_shards_(options.num_shards) {
  CHECK_GT(options_.num_shards, 0u);
  CHECK_GT(options_.lookahead_floor, 0u) << "a zero lookahead admits no safe window";
  shards_.reserve(num_shards_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->engine = std::make_unique<Engine>(options_.engine_options);
    shard->outbox.resize(num_shards_);
    shard->outbox_min.assign(num_shards_, Engine::kNever);
    shard->inbox.resize(num_shards_);
    shards_.push_back(std::move(shard));
  }
  pair_declared_.assign(static_cast<size_t>(num_shards_) * num_shards_, Engine::kNever);
  next_.assign(num_shards_, Engine::kNever);
  horizon_.assign(num_shards_, Engine::kNever);
  active_.assign(num_shards_, 0);
  StartWorkers();
}

ParallelEngine::~ParallelEngine() {
  if (!workers_.empty()) {
    for (auto& shard : shards_) {
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->shutdown = true;
      }
      shard->cv.notify_one();
    }
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }
}

Engine& ParallelEngine::shard(uint32_t s) {
  CHECK_LT(s, shards_.size());
  return *shards_[s]->engine;
}

uint32_t ParallelEngine::AddSource(uint32_t shard) {
  CHECK_LT(shard, shards_.size());
  CHECK(!running_) << "register sources before Run()";
  sources_.push_back(Source{shard, 0});
  return static_cast<uint32_t>(sources_.size() - 1);
}

uint32_t ParallelEngine::source_shard(uint32_t source) const {
  CHECK_LT(source, sources_.size());
  return sources_[source].shard;
}

void ParallelEngine::DeclareLinkLatency(Duration min_latency) {
  CHECK_GE(min_latency, options_.lookahead_floor)
      << "link latency below lookahead_floor: lower the floor";
  CHECK(!running_) << "declare link latencies before Run()";
  global_declared_ = std::min(global_declared_, min_latency);
  matrices_ready_ = false;
}

void ParallelEngine::DeclareLinkLatency(uint32_t src_shard, uint32_t dst_shard,
                                        Duration min_latency) {
  CHECK_LT(src_shard, shards_.size());
  CHECK_LT(dst_shard, shards_.size());
  CHECK_GE(min_latency, options_.lookahead_floor)
      << "link latency below lookahead_floor: lower the floor";
  CHECK(!running_) << "declare link latencies before Run()";
  Duration& cell = pair_declared_[static_cast<size_t>(src_shard) * num_shards_ + dst_shard];
  cell = std::min(cell, min_latency);
  matrices_ready_ = false;
}

Duration ParallelEngine::lookahead() const {
  Duration l = global_declared_;
  for (Duration p : pair_declared_) {
    l = std::min(l, p);
  }
  return l == Engine::kNever ? options_.lookahead_floor : l;
}

Duration ParallelEngine::lookahead(uint32_t src_shard, uint32_t dst_shard) const {
  CHECK_LT(src_shard, shards_.size());
  CHECK_LT(dst_shard, shards_.size());
  const Duration l = std::min(
      global_declared_, pair_declared_[static_cast<size_t>(src_shard) * num_shards_ + dst_shard]);
  return l == Engine::kNever ? options_.lookahead_floor : l;
}

uint32_t ParallelEngine::RegisterChannel(uint32_t source, uint32_t dst_shard,
                                         Duration min_latency) {
  CHECK_LT(source, sources_.size());
  CHECK_LT(dst_shard, shards_.size());
  CHECK(!running_) << "register channels before Run()";
  if (min_latency > 0) {
    DeclareLinkLatency(sources_[source].shard, dst_shard, min_latency);
  }
  channels_.push_back(ChannelEdge{source, dst_shard});
  return static_cast<uint32_t>(channels_.size() - 1);
}

void ParallelEngine::EnsureMatrices() {
  if (matrices_ready_) {
    return;
  }
  const size_t n = num_shards_;
  l_eff_.assign(n * n, 0);
  for (size_t s = 0; s < n; ++s) {
    for (size_t d = 0; d < n; ++d) {
      Duration l = std::min(pair_declared_[s * n + d], global_declared_);
      l_eff_[s * n + d] = l == Engine::kNever ? options_.lookahead_floor : l;
    }
  }
  // All-pairs minimum influence distance over the directed lookahead edges
  // (Floyd-Warshall over non-empty walks: the diagonal starts infinite, so
  // dist[d][d] becomes the cheapest cycle through other shards — the only
  // way shard d's own past output can come back to haunt it).
  dist_.assign(n * n, Engine::kNever);
  for (size_t s = 0; s < n; ++s) {
    for (size_t d = 0; d < n; ++d) {
      if (s != d) {
        dist_[s * n + d] = l_eff_[s * n + d];
      }
    }
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      const SimTime ik = dist_[i * n + k];
      if (ik == Engine::kNever) {
        continue;
      }
      for (size_t j = 0; j < n; ++j) {
        const SimTime kj = dist_[k * n + j];
        if (kj == Engine::kNever) {
          continue;
        }
        dist_[i * n + j] = std::min(dist_[i * n + j], SatAdd(ik, kj));
      }
    }
  }
  matrices_ready_ = true;
}

void ParallelEngine::Post(uint32_t source, uint32_t dst_shard, SimTime when, EventFn fn) {
  CHECK_LT(source, sources_.size());
  CHECK_LT(dst_shard, shards_.size());
  EnsureMatrices();
  Source& src = sources_[source];
  const uint32_t s = src.shard;
  Shard& home = *shards_[s];
  // Conservative-safety invariant: nothing posted during the current window
  // may take effect before this edge's lookahead.
  CHECK_GE(when, home.engine->Now() + l_eff_[static_cast<size_t>(s) * num_shards_ + dst_shard])
      << "cross-shard message inside the lookahead window";
  const uint64_t seq = src.next_seq++;
  if (dst_shard == s) {
    // Same-shard messages skip the exchange: the explicit (when, source,
    // seq) key puts them in exactly the position a barrier delivery would.
    home.engine->ScheduleMessage(when, source, seq, std::move(fn));
    ++home.self_delivered;
    return;
  }
  home.outbox_min[dst_shard] = std::min(home.outbox_min[dst_shard], when);
  home.outbox[dst_shard].push_back(Message{when, seq, source, std::move(fn)});
}

void ParallelEngine::StartWorkers() {
  if (!options_.use_threads || shards_.size() < 2) {
    return;
  }
  workers_.reserve(shards_.size());
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    workers_.emplace_back([this, s] { WorkerLoop(s); });
  }
}

void ParallelEngine::DeliverInbox(Shard& sh) {
  if (sh.inbox_min == Engine::kNever) {
    return;
  }
  for (auto& in : sh.inbox) {
    for (Message& m : in) {
      sh.engine->ScheduleMessage(m.when, m.source, m.seq, std::move(m.fn));
    }
    in.clear();  // keeps capacity for the next swap
  }
  sh.inbox_min = Engine::kNever;
}

void ParallelEngine::WorkerLoop(uint32_t shard_index) {
  Shard& sh = *shards_[shard_index];
  uint64_t seen_gen = 0;
  for (;;) {
    SimTime horizon;
    {
      std::unique_lock<std::mutex> lock(sh.mu);
      sh.cv.wait(lock, [&] { return sh.shutdown || sh.gen != seen_gen; });
      if (sh.shutdown) {
        return;
      }
      seen_gen = sh.gen;
      horizon = sh.horizon;
    }
    DeliverInbox(sh);
    // Half-open window: events strictly below the horizon. The clock is not
    // advanced to the horizon — later epochs may deliver messages below it.
    sh.executed += sh.engine->RunEvents(horizon - 1);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_one();
    }
  }
}

void ParallelEngine::ExchangeOutboxes() {
  uint64_t moved = 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    Shard& src = *shards_[s];
    for (uint32_t d = 0; d < num_shards_; ++d) {
      if (src.outbox_min[d] == Engine::kNever) {
        continue;
      }
      Shard& dst = *shards_[d];
      auto& box = src.outbox[d];
      auto& in = dst.inbox[s];
      moved += box.size();
      dst.inbox_min = std::min(dst.inbox_min, src.outbox_min[d]);
      if (in.empty()) {
        std::swap(in, box);  // capacities ping-pong: no steady-state alloc
      } else {
        for (Message& m : box) {
          in.push_back(std::move(m));
        }
        box.clear();
      }
      src.outbox_min[d] = Engine::kNever;
    }
  }
  if (moved > 0) {
    stats_.cross_shard_messages += moved;
    stats_.max_outbox = std::max(stats_.max_outbox, moved);
  }
}

SimTime ParallelEngine::ComputeNextTimes() {
  SimTime global = Engine::kNever;
  for (uint32_t d = 0; d < num_shards_; ++d) {
    const Shard& sh = *shards_[d];
    next_[d] = std::min(sh.engine->PeekNextTime(), sh.inbox_min);
    global = std::min(global, next_[d]);
  }
  return global;
}

void ParallelEngine::ComputeHorizons() {
  for (uint32_t d = 0; d < num_shards_; ++d) {
    SimTime h = Engine::kNever;
    for (uint32_t s = 0; s < num_shards_; ++s) {
      const SimTime dsd = dist_[static_cast<size_t>(s) * num_shards_ + d];
      if (dsd == Engine::kNever || next_[s] == Engine::kNever) {
        continue;
      }
      h = std::min(h, SatAdd(next_[s], dsd));
    }
    horizon_[d] = h;
  }
}

void ParallelEngine::RunWindows() {
  uint32_t num_active = 0;
  for (uint32_t d = 0; d < num_shards_; ++d) {
    active_[d] = next_[d] < horizon_[d] ? 1 : 0;
    num_active += active_[d];
  }
  stats_.windows_run += num_active;
  stats_.windows_skipped += num_shards_ - num_active;
  if (workers_.empty()) {
    for (uint32_t d = 0; d < num_shards_; ++d) {
      if (!active_[d]) {
        continue;
      }
      Shard& sh = *shards_[d];
      DeliverInbox(sh);
      sh.executed += sh.engine->RunEvents(horizon_[d] - 1);
    }
    return;
  }
  if (num_active == 0) {
    return;
  }
  pending_.store(num_active, std::memory_order_relaxed);
  for (uint32_t d = 0; d < num_shards_; ++d) {
    if (!active_[d]) {
      continue;
    }
    Shard& sh = *shards_[d];
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.horizon = horizon_[d];
      ++sh.gen;
    }
    sh.cv.notify_one();
  }
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [&] { return pending_.load(std::memory_order_acquire) == 0; });
}

uint64_t ParallelEngine::TotalExecuted() const {
  uint64_t total = 0;
  for (const auto& sh : shards_) {
    total += sh->executed;
  }
  return total;
}

uint64_t ParallelEngine::Run() {
  EnsureMatrices();
  running_ = true;
  const uint64_t before = TotalExecuted();
  for (;;) {
    ExchangeOutboxes();
    if (ComputeNextTimes() == Engine::kNever) {
      break;
    }
    ComputeHorizons();
    ++stats_.epochs;
    RunWindows();
  }
  const uint64_t after = TotalExecuted();
  stats_.events_run = after;
  uint64_t self = 0;
  for (const auto& sh : shards_) {
    self += sh->self_delivered;
  }
  stats_.self_delivered = self;
  stats_.messages = stats_.cross_shard_messages + self;
  return after - before;
}

}  // namespace hyperion::sim
