#include "src/sim/parallel.h"

#include <algorithm>

#include "src/common/check.h"

namespace hyperion::sim {

ParallelEngine::ParallelEngine(const ParallelEngineOptions& options)
    : options_(options), lookahead_(options.lookahead_floor) {
  CHECK_GT(options_.num_shards, 0u);
  CHECK_GT(options_.lookahead_floor, 0u) << "a zero lookahead admits no safe window";
  shards_.resize(options_.num_shards);
  for (Shard& shard : shards_) {
    shard.engine = std::make_unique<Engine>(options_.engine_options);
  }
  StartWorkers();
}

ParallelEngine::~ParallelEngine() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }
}

Engine& ParallelEngine::shard(uint32_t s) {
  CHECK_LT(s, shards_.size());
  return *shards_[s].engine;
}

uint32_t ParallelEngine::AddSource(uint32_t shard) {
  CHECK_LT(shard, shards_.size());
  sources_.push_back(Source{shard, 0});
  return static_cast<uint32_t>(sources_.size() - 1);
}

uint32_t ParallelEngine::source_shard(uint32_t source) const {
  CHECK_LT(source, sources_.size());
  return sources_[source].shard;
}

void ParallelEngine::DeclareLinkLatency(Duration min_latency) {
  CHECK_GE(min_latency, options_.lookahead_floor)
      << "link latency below lookahead_floor: lower the floor";
  lookahead_ = link_declared_ ? std::min(lookahead_, min_latency) : min_latency;
  link_declared_ = true;
}

void ParallelEngine::Post(uint32_t source, uint32_t dst_shard, SimTime when, EventFn fn) {
  CHECK_LT(source, sources_.size());
  CHECK_LT(dst_shard, shards_.size());
  Source& src = sources_[source];
  // Conservative-safety invariant: nothing posted during the current window
  // may take effect before the window's horizon.
  CHECK_GE(when, shards_[src.shard].engine->Now() + lookahead_)
      << "cross-shard message inside the lookahead window";
  Message message;
  message.when = when;
  message.source = source;
  message.seq = src.next_seq++;
  message.dst_shard = dst_shard;
  message.fn = std::move(fn);
  shards_[src.shard].outbox.push_back(std::move(message));
}

void ParallelEngine::StartWorkers() {
  if (!options_.use_threads || shards_.size() < 2) {
    return;
  }
  workers_.reserve(shards_.size());
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    workers_.emplace_back([this, s] { WorkerLoop(s); });
  }
}

void ParallelEngine::WorkerLoop(uint32_t shard_index) {
  Shard& shard = shards_[shard_index];
  uint64_t seen_gen = 0;
  for (;;) {
    SimTime end;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || epoch_gen_ != seen_gen; });
      if (shutdown_) {
        return;
      }
      seen_gen = epoch_gen_;
      end = window_end_;
    }
    // Half-open window [previous horizon, end): integer times make this
    // RunUntil(end - 1). Events at exactly `end` belong to the next window,
    // after the barrier merges messages that may share their timestamp.
    shard.executed += shard.engine->RunUntil(end - 1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_workers_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

void ParallelEngine::RunWindow(SimTime horizon) {
  if (workers_.empty()) {
    for (Shard& shard : shards_) {
      shard.executed += shard.engine->RunUntil(horizon - 1);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    window_end_ = horizon;
    pending_workers_ = static_cast<uint32_t>(shards_.size());
    ++epoch_gen_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_workers_ == 0; });
  }
}

void ParallelEngine::DeliverOutboxes() {
  staging_.clear();
  for (Shard& shard : shards_) {
    for (Message& message : shard.outbox) {
      staging_.push_back(std::move(message));
    }
    shard.outbox.clear();
  }
  if (staging_.empty()) {
    return;
  }
  // Deterministic merge: (delivery time, source, per-source seq) is a total
  // order — (source, seq) pairs are unique — so the destination engines'
  // insertion order (their tie-break) is independent of shard layout and
  // thread interleaving.
  std::sort(staging_.begin(), staging_.end(), [](const Message& a, const Message& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    if (a.source != b.source) {
      return a.source < b.source;
    }
    return a.seq < b.seq;
  });
  stats_.messages += staging_.size();
  stats_.max_outbox = std::max(stats_.max_outbox, static_cast<uint64_t>(staging_.size()));
  for (Message& message : staging_) {
    if (sources_[message.source].shard != message.dst_shard) {
      ++stats_.cross_shard_messages;
    }
    shards_[message.dst_shard].engine->ScheduleAt(message.when, std::move(message.fn));
  }
  staging_.clear();
}

SimTime ParallelEngine::NextEventTime() {
  SimTime next = Engine::kNever;
  for (Shard& shard : shards_) {
    next = std::min(next, shard.engine->PeekNextTime());
  }
  return next;
}

uint64_t ParallelEngine::Run() {
  uint64_t executed_before = 0;
  for (const Shard& shard : shards_) {
    executed_before += shard.executed;
  }
  // Messages posted during setup (before any window ran) enter the engines
  // first so they count toward the initial epoch computation.
  DeliverOutboxes();
  for (;;) {
    const SimTime next = NextEventTime();
    if (next == Engine::kNever) {
      break;
    }
    CHECK_LT(next, Engine::kNever - lookahead_) << "virtual time overflow";
    RunWindow(next + lookahead_);
    ++stats_.epochs;
    DeliverOutboxes();
  }
  uint64_t executed_after = 0;
  for (const Shard& shard : shards_) {
    executed_after += shard.executed;
  }
  stats_.events_run = executed_after;
  return executed_after - executed_before;
}

}  // namespace hyperion::sim
