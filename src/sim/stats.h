// Measurement plumbing: log-bucketed latency histograms and counters.
//
// Histogram is HdrHistogram-flavoured: values are bucketed with bounded
// relative error (~3%), so p50/p99/p999 queries are cheap and the memory
// footprint is constant regardless of sample count.

#ifndef HYPERION_SRC_SIM_STATS_H_
#define HYPERION_SRC_SIM_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hyperion::sim {

class Histogram {
 public:
  Histogram() = default;

  void Record(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  // Quantile in [0, 1]; returns an upper bound of the bucket containing it.
  uint64_t Percentile(double q) const;
  uint64_t P50() const { return Percentile(0.50); }
  uint64_t P90() const { return Percentile(0.90); }
  uint64_t P99() const { return Percentile(0.99); }
  uint64_t P999() const { return Percentile(0.999); }

  // One-line human-readable summary (values interpreted as nanoseconds).
  std::string SummaryNs() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets => ~3% error
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketUpperBound(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
};

// Named monotonic counters, used for hop/byte/op accounting in experiments.
class Counters {
 public:
  // Interned counter slot: resolve the name once at setup, then bump by
  // index with no per-event string compares (the by-name Add below scans
  // the linear map on every call, which showed up in the per-request RPC
  // and NVMe paths). Handles are invalidated by Reset().
  using Handle = uint32_t;
  Handle Intern(const std::string& name);

  void Add(Handle handle, uint64_t delta) { entries_[handle].second += delta; }
  void Increment(Handle handle) { Add(handle, 1); }

  void Add(const std::string& name, uint64_t delta);
  void Increment(const std::string& name) { Add(name, 1); }
  uint64_t Get(const std::string& name) const;
  void Reset();

  // Stable (sorted) name/value listing for reports.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const;

 private:
  std::vector<std::pair<std::string, uint64_t>> entries_;  // small-N linear map
};

}  // namespace hyperion::sim

#endif  // HYPERION_SRC_SIM_STATS_H_
