// Deterministic fault injection for the Hyperion simulation.
//
// A CPU-free DPU is self-hosting: there is no OS underneath to catch a
// misbehaving device, so failures must be absorbed by the data path itself
// (the same accept-then-trap argument the verifier property tests encode).
// This module gives every substrate a single, seeded source of failures so
// that recovery logic — NVMe command reissue, PCIe link retrain/replay,
// RPC retry with backoff, FPGA slot migration — can be exercised and
// regression-tested bit-stably.
//
// A FaultPlan is a declarative list of rules: at injection site S, fail
// with probability p, within a virtual-time window, at most N times. A
// FaultInjector evaluates the plan against the Engine clock. Determinism
// properties:
//
//   * Each rule owns its own Rng stream (derived from the plan seed and the
//     rule's position), so fault decisions at one site never perturb the
//     random sequence observed at another, and never perturb workload RNGs.
//   * Decisions depend only on the query order at a site, which is itself
//     deterministic in the single-threaded simulation.
//   * A site with no rule returns false after one array load: no RNG draw,
//     no counter update. A run with an empty (or never-matching) plan is
//     therefore byte-identical to a run with no injector at all.

#ifndef HYPERION_SRC_SIM_FAULT_H_
#define HYPERION_SRC_SIM_FAULT_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/engine.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace hyperion::sim {

// Well-defined injection points, one per failure mode a subsystem models.
enum class FaultSite : uint8_t {
  kNvmeReadError = 0,   // media paid the access but ECC could not recover
  kNvmeCmdTimeout,      // command hangs at the device; watchdog aborts it
  kPcieLinkDrop,        // link drops to Recovery; TLPs replay after retrain
  kFpgaReconfigFail,    // partial reconfiguration aborts; the slot is bad
  kNetLoss,             // one-way message lost on the wire
  kNetCorrupt,          // delivered, but fails its checksum at the receiver
  kRpcResponseDrop,     // server executed, response evaporated
  kStoragePowerCut,     // power lost mid-append: torn tail, device dark
  kNodeKill,            // whole node fails permanently at a protocol boundary
};
inline constexpr size_t kFaultSiteCount = 9;

// Stable lower_snake name ("nvme_read_error", ...), used for counter keys.
std::string_view FaultSiteName(FaultSite site);

struct FaultRule {
  static constexpr SimTime kNoEnd = ~0ull;
  static constexpr uint64_t kUnlimited = ~0ull;

  FaultSite site = FaultSite::kNetLoss;
  double probability = 0.0;        // per query at the site
  SimTime active_from = 0;         // window on the virtual clock,
  SimTime active_until = kNoEnd;   // [active_from, active_until)
  uint64_t max_faults = kUnlimited;  // injection budget for this rule
  // In-window queries this rule lets pass before it starts evaluating.
  // With probability 1.0 this aims the rule at exactly the Nth query — how
  // the crash-recovery matrix lands a power cut on a chosen flush/
  // compaction/manifest boundary. Skipped queries draw no randomness.
  uint64_t skip_first = 0;
};

// Declarative fault schedule. Value type; build one, hand it to an injector.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& Add(const FaultRule& rule) {
    rules_.push_back(rule);
    return *this;
  }

  // The next `count` queries at `site` inject (a deterministic burst).
  FaultPlan& Always(FaultSite site, uint64_t count = FaultRule::kUnlimited) {
    return Add(FaultRule{site, 1.0, 0, FaultRule::kNoEnd, count});
  }

  // Every query at `site` injects independently with probability `p`.
  FaultPlan& WithProbability(FaultSite site, double p) {
    return Add(FaultRule{site, p, 0, FaultRule::kNoEnd, FaultRule::kUnlimited});
  }

  // Deterministically injects on queries [skip, skip + count) at `site`:
  // the crash-matrix primitive ("power-cut exactly at the Nth append").
  FaultPlan& AtQuery(FaultSite site, uint64_t skip, uint64_t count = 1) {
    return Add(FaultRule{site, 1.0, 0, FaultRule::kNoEnd, count, skip});
  }

  bool empty() const { return rules_.empty(); }
  const std::vector<FaultRule>& rules() const { return rules_; }

 private:
  std::vector<FaultRule> rules_;
};

// Evaluates a FaultPlan on the shared virtual clock. Subsystems hold a
// (possibly null) pointer to one injector and query it at their injection
// points; every injected fault increments `counters()` under the key
// "fault_<site>", so experiments can report fault accounting alongside
// latency.
class FaultInjector {
 public:
  FaultInjector(Engine* engine, FaultPlan plan, uint64_t seed = 0x5eed);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Hot-path query: true when some active rule fires. Consumes one draw
  // from each matching in-window rule until one fires; sites without rules
  // cost one array load and touch no state.
  bool ShouldInject(FaultSite site);

  // Total faults injected at `site` so far.
  uint64_t InjectedCount(FaultSite site) const {
    return injected_by_site_[static_cast<size_t>(site)];
  }
  uint64_t TotalInjected() const;

  const Counters& counters() const { return counters_; }

 private:
  struct RuleState {
    FaultRule rule;
    Rng rng;
    uint64_t injected = 0;
    uint64_t skipped = 0;  // in-window queries passed through so far
  };

  Engine* engine_;
  std::vector<RuleState> rules_;
  // Per-site rule indices; an empty list is the idle fast path.
  std::array<std::vector<uint32_t>, kFaultSiteCount> by_site_;
  std::array<uint64_t, kFaultSiteCount> injected_by_site_{};
  Counters counters_;
};

}  // namespace hyperion::sim

#endif  // HYPERION_SRC_SIM_FAULT_H_
