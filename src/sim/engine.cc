#include "src/sim/engine.h"

#include <algorithm>

#include "src/common/check.h"

namespace hyperion::sim {

Engine::Engine(const EngineOptions& options) : options_(options) {
  CHECK_GT(options_.slot_count, 0u);
  CHECK_EQ(options_.slot_count & (options_.slot_count - 1), 0u)
      << "slot_count must be a power of two";
  CHECK_LT(options_.slot_shift, 64u);
  if (options_.use_timing_wheel) {
    slots_.resize(options_.slot_count);
  }
}

Engine::~Engine() {
  // Destroy any still-pending events. Pooled nodes live in the slabs and are
  // freed with them; unpooled nodes must be deleted individually.
  for (auto& slot : slots_) {
    for (Event* event : slot) {
      ReleaseEvent(event);
    }
    slot.clear();
  }
  while (!heap_.empty()) {
    Event* event = heap_.top();
    heap_.pop();
    ReleaseEvent(event);
  }
}

Engine::Event* Engine::AllocEvent() {
  if (!options_.pool_events) {
    return new Event;
  }
  if (free_list_ == nullptr) {
    auto slab = std::make_unique<Event[]>(kSlabEvents);
    for (size_t i = 0; i < kSlabEvents; ++i) {
      slab[i].next_free = free_list_;
      free_list_ = &slab[i];
    }
    slabs_.push_back(std::move(slab));
    ++stats_.pool_slabs;
  }
  Event* event = free_list_;
  free_list_ = event->next_free;
  return event;
}

void Engine::ReleaseEvent(Event* event) {
  event->fn.Reset();
  if (!options_.pool_events) {
    delete event;
    return;
  }
  event->next_free = free_list_;
  free_list_ = event;
}

void Engine::InsertWheel(Event* event) {
  const uint64_t abs_slot = event->when >> options_.slot_shift;
  if (wheel_count_ == 0 || abs_slot < hint_slot_) {
    hint_slot_ = abs_slot;
  }
  slots_[abs_slot & (options_.slot_count - 1)].push_back(event);
  ++wheel_count_;
}

void Engine::ScheduleAt(SimTime when, Callback fn) {
  CHECK_GE(when, now_) << "cannot schedule into the past";
  Event* event = AllocEvent();
  event->when = when;
  event->seq = next_seq_++;
  event->fn = std::move(fn);
  ++stats_.scheduled;
  if (event->fn.is_inline()) {
    ++stats_.inline_callbacks;
  } else {
    ++stats_.boxed_callbacks;
  }
  ++event_count_;
  if (options_.use_timing_wheel &&
      (when >> options_.slot_shift) - (now_ >> options_.slot_shift) < options_.slot_count) {
    InsertWheel(event);
    ++stats_.wheel_scheduled;
  } else {
    heap_.push(event);
    ++stats_.heap_scheduled;
  }
}

void Engine::MigrateHeap() {
  if (!options_.use_timing_wheel) {
    return;
  }
  const uint64_t cur_slot = now_ >> options_.slot_shift;
  while (!heap_.empty() &&
         (heap_.top()->when >> options_.slot_shift) - cur_slot < options_.slot_count) {
    Event* event = heap_.top();
    heap_.pop();
    InsertWheel(event);
    ++stats_.heap_migrated;
  }
}

Engine::Event* Engine::ExtractMin(SimTime limit) {
  if (event_count_ == 0) {
    return nullptr;
  }
  MigrateHeap();

  // Earliest wheel event: scan slots forward from the hint. Every pending
  // wheel event has an absolute slot in [now_slot, now_slot + slot_count),
  // so the modulo mapping is injective over the scan window and the first
  // non-empty slot holds the wheel minimum (ties broken by seq within it).
  Event* best = nullptr;
  size_t best_slot = 0;
  size_t best_idx = 0;
  if (wheel_count_ > 0) {
    uint64_t s = std::max(hint_slot_, now_ >> options_.slot_shift);
    for (;; ++s) {
      const size_t idx = s & (options_.slot_count - 1);
      const auto& slot = slots_[idx];
      if (slot.empty()) {
        continue;
      }
      hint_slot_ = s;
      for (size_t i = 0; i < slot.size(); ++i) {
        if (best == nullptr || Earlier(slot[i], best)) {
          best = slot[i];
          best_idx = i;
        }
      }
      best_slot = idx;
      break;
    }
  }

  if (!heap_.empty() && (best == nullptr || Earlier(heap_.top(), best))) {
    Event* event = heap_.top();
    if (event->when > limit) {
      return nullptr;
    }
    heap_.pop();
    --event_count_;
    return event;
  }
  if (best == nullptr || best->when > limit) {
    return nullptr;
  }
  auto& slot = slots_[best_slot];
  slot[best_idx] = slot.back();
  slot.pop_back();
  --wheel_count_;
  --event_count_;
  return best;
}

SimTime Engine::PeekTime() {
  if (event_count_ == 0) {
    return kNever;
  }
  MigrateHeap();
  SimTime best = kNever;
  if (wheel_count_ > 0) {
    uint64_t s = std::max(hint_slot_, now_ >> options_.slot_shift);
    for (;; ++s) {
      const auto& slot = slots_[s & (options_.slot_count - 1)];
      if (slot.empty()) {
        continue;
      }
      hint_slot_ = s;
      for (const Event* event : slot) {
        best = std::min(best, event->when);
      }
      break;
    }
  }
  if (!heap_.empty()) {
    best = std::min(best, heap_.top()->when);
  }
  return best;
}

uint64_t Engine::Run() {
  uint64_t executed = 0;
  while (Event* event = ExtractMin(kNever)) {
    now_ = event->when;
    event->fn();
    ReleaseEvent(event);
    ++executed;
  }
  return executed;
}

uint64_t Engine::RunUntil(SimTime deadline) {
  uint64_t executed = 0;
  while (Event* event = ExtractMin(deadline)) {
    now_ = event->when;
    event->fn();
    ReleaseEvent(event);
    ++executed;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return executed;
}

void Engine::AdvanceTo(SimTime t) {
  CHECK_GE(t, now_) << "virtual time cannot go backwards";
  CHECK(event_count_ == 0 || PeekTime() >= t)
      << "AdvanceTo would skip over a pending event; use RunUntil";
  now_ = t;
}

}  // namespace hyperion::sim
