#include "src/sim/engine.h"

#include "src/common/check.h"

namespace hyperion::sim {

void Engine::ScheduleAt(SimTime when, Callback fn) {
  CHECK_GE(when, now_) << "cannot schedule into the past";
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

uint64_t Engine::Run() {
  uint64_t executed = 0;
  while (!queue_.empty()) {
    // Moving out of a priority_queue top requires the const_cast dance; the
    // element is popped immediately after, so this is safe.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    ev.fn();
    ++executed;
  }
  return executed;
}

uint64_t Engine::RunUntil(SimTime deadline) {
  uint64_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    ev.fn();
    ++executed;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return executed;
}

void Engine::AdvanceTo(SimTime t) {
  CHECK_GE(t, now_) << "virtual time cannot go backwards";
  CHECK(queue_.empty() || queue_.top().when >= t)
      << "AdvanceTo would skip over a pending event; use RunUntil";
  now_ = t;
}

}  // namespace hyperion::sim
