#include "src/sim/engine.h"

#include <algorithm>

namespace hyperion::sim {

Engine::Engine(const EngineOptions& options) : options_(options) {
  CHECK_GT(options_.slot_count, 0u);
  CHECK_EQ(options_.slot_count & (options_.slot_count - 1), 0u)
      << "slot_count must be a power of two";
  CHECK_LT(options_.slot_shift, 64u);
  wheel_enabled_ = options_.use_timing_wheel;
  pooled_ = options_.pool_events;
  slot_shift_ = options_.slot_shift;
  slot_count_ = options_.slot_count;
  slot_mask_ = slot_count_ - 1;
  if (wheel_enabled_) {
    slot_data_ = std::make_unique_for_overwrite<Entry[]>(slot_count_ * kSlotCap);
    slot_len_.assign(slot_count_, 0);
    spill_.resize(slot_count_);
    occ_.assign((slot_count_ + 63) / 64, 0);
  }
}

Engine::~Engine() {
  // Destroy any still-pending callables. Pooled nodes return to the free
  // list and are freed with their slabs; unpooled nodes delete themselves
  // through ReleaseEvent. Drained entries live only in drain_buf_/aux (the
  // slot region is cleared when pulled), so there is no overlap with the
  // region sweep.
  for (size_t i = drain_pos_; i < drain_cnt_; ++i) {
    drain_base_[i].ops->destroy(this, drain_base_[i].storage);
  }
  for (size_t p = 0; p < slot_len_.size(); ++p) {
    for (size_t i = 0; i < slot_len_[p]; ++i) {
      Entry& entry = slot_data_[p * kSlotCap + i];
      entry.ops->destroy(this, entry.storage);
    }
  }
  for (auto& spill : spill_) {
    for (Entry& entry : spill) {
      entry.ops->destroy(this, entry.storage);
    }
  }
  for (Entry& entry : heap_) {
    entry.ops->destroy(this, entry.storage);
  }
}

void Engine::NodeInvokeDestroy(Engine* engine, void* s) {
  Event* node;
  std::memcpy(&node, s, sizeof(node));
  node->ops->invoke_destroy(node->storage);
  engine->ReleaseEvent(node);
}

void Engine::NodeDestroy(Engine* engine, void* s) {
  Event* node;
  std::memcpy(&node, s, sizeof(node));
  node->ops->destroy(node->storage);
  engine->ReleaseEvent(node);
}

void Engine::ErasedInvokeDestroy(Engine* /*engine*/, void* s) {
  const EventFn::Ops* inner;
  std::memcpy(&inner, s, sizeof(inner));
  // Copy the trivially copyable payload to the stack before invoking: the
  // callback may schedule into the express lane and recycle this entry.
  alignas(std::max_align_t) unsigned char local[EventFn::kTrivialBytes];
  std::memcpy(local, static_cast<unsigned char*>(s) + sizeof(inner), EventFn::kTrivialBytes);
  inner->invoke_destroy(local);
}

void Engine::ErasedDestroy(Engine* /*engine*/, void* s) {
  const EventFn::Ops* inner;
  std::memcpy(&inner, s, sizeof(inner));
  inner->destroy(static_cast<unsigned char*>(s) + sizeof(inner));
}

Engine::Event* Engine::AllocEventSlow() {
  if (!pooled_) {
    return new Event;
  }
  auto slab = std::make_unique<Event[]>(kSlabEvents);
  Event* events = slab.get();
  slabs_.push_back(std::move(slab));
  ++stats_.pool_slabs;
  for (size_t i = 1; i < kSlabEvents; ++i) {
    NextFree(&events[i]) = free_list_;
    free_list_ = &events[i];
  }
  return &events[0];
}

void Engine::ScheduleErased(SimTime when, uint64_t band, uint64_t seq, Callback fn) {
  CHECK(fn.ops() != nullptr) << "scheduling an empty callback";
  Entry& entry = PlaceEntry(when, band, seq);
  const EventFn::Ops* inner = fn.ops();
  if (inner->trivial_small) [[likely]] {
    // Byte-relocate the small trivially copyable callable (plus its ops
    // pointer for dispatch) straight into the entry: no node, no free-list.
    std::memcpy(entry.storage, &inner, sizeof(inner));
    std::memcpy(entry.storage + sizeof(inner), fn.storage(), EventFn::kTrivialBytes);
    fn.DisarmTrivial();
    entry.ops = &kErasedEntryOps;
    ++stats_.inline_callbacks;
  } else {
    Event* node = AllocEvent();
    node->ops = fn.RelocateTo(node->storage);
    std::memcpy(entry.storage, &node, sizeof(node));
    entry.ops = &kNodeEntryOps;
    if (node->ops->inline_stored) {
      ++stats_.inline_callbacks;
    } else {
      ++stats_.boxed_callbacks;
    }
  }
  CommitEntry(entry);
}

// Hole-based sifts: move each displaced entry once into the hole instead of
// std::swap chains — with 64-byte entries a swap is three full-line copies.
void Engine::HeapPush(const Entry& entry) {
  size_t i = heap_.size();
  heap_.push_back(entry);
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Earlier(entry, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
  heap_min_when_ = heap_.front().when;
}

void Engine::HeapPop() {
  const Entry last = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (n == 0) {
    heap_min_when_ = kNever;
    return;
  }
  size_t i = 0;
  while (true) {
    const size_t l = 2 * i + 1;
    if (l >= n) {
      break;
    }
    size_t c = l;
    const size_t r = l + 1;
    if (r < n && Earlier(heap_[r], heap_[l])) {
      c = r;
    }
    if (!Earlier(heap_[c], last)) {
      break;
    }
    heap_[i] = heap_[c];
    i = c;
  }
  heap_[i] = last;
  heap_min_when_ = heap_.front().when;
}

uint64_t Engine::FirstOccupiedAbs() const {
  const uint64_t base = now_ >> slot_shift_;
  const size_t p0 = static_cast<size_t>(base & slot_mask_);
  const size_t nwords = occ_.size();
  size_t word = p0 >> 6;
  // Mask off slots before p0 in the first word; the circular distance math
  // below maps wrapped positions back to absolute slot numbers.
  uint64_t bits = occ_[word] & (~0ull << (p0 & 63));
  for (size_t scanned = 0; scanned <= nwords; ++scanned) {
    if (bits != 0) {
      const size_t p = ((word << 6) | static_cast<size_t>(std::countr_zero(bits))) &
                       static_cast<size_t>(slot_mask_);
      return base + ((p - p0) & slot_mask_);
    }
    word = word + 1 == nwords ? 0 : word + 1;
    bits = occ_[word];
  }
  return kNever;
}

// Insertion sort over small random keys takes ~n^2/4 data-dependent
// branches — a mispredict storm that dominates slot drains. Both sort
// paths therefore first scatter entries by the four sub-slot time bits
// (a branchless, stable counting sort) and then run insertion sort over
// the nearly-sorted result: the cleanup still enforces the exact
// (when, band, seq) order — the radix pass only has to be a good
// approximation — but its compare branches are now almost always
// not-taken and predict perfectly.

void Engine::SortInto(const Entry* src, size_t n, Entry* dst) const {
  if (n <= 2) [[unlikely]] {
    // Chained-timer workloads pull one event per slot; skip the bucket
    // machinery entirely.
    if (n == 0) {
      return;
    }
    if (n == 2 && Earlier(src[1], src[0])) {
      dst[0] = src[1];
      dst[1] = src[0];
      return;
    }
    std::memcpy(dst, src, n * sizeof(Entry));
    return;
  }
  const uint32_t sh = slot_shift_ >= 4 ? slot_shift_ - 4 : 0;
  uint32_t cnt[17] = {0};
  for (size_t i = 0; i < n; ++i) {
    ++cnt[((src[i].when >> sh) & 15) + 1];
  }
  for (size_t b = 1; b < 16; ++b) {
    cnt[b] += cnt[b - 1];
  }
  for (size_t i = 0; i < n; ++i) {
    dst[cnt[(src[i].when >> sh) & 15]++] = src[i];
  }
  for (size_t i = 1; i < n; ++i) {
    Entry tmp = dst[i];
    size_t j = i;
    while (j > 0 && Earlier(tmp, dst[j - 1])) {
      dst[j] = dst[j - 1];
      --j;
    }
    dst[j] = tmp;
  }
}

void Engine::SortRange(Entry* a, size_t n) const {
  if (n <= 1) {
    return;
  }
  constexpr size_t kRadixMax = 32;
  if (n <= kRadixMax) {
    Entry tmp[kRadixMax];
    std::memcpy(tmp, a, n * sizeof(Entry));
    SortInto(tmp, n, a);
    return;
  }
  std::sort(a, a + n, [](const Entry& x, const Entry& y) { return Earlier(x, y); });
}

void Engine::AbandonDrain() {
  // Return pending entries to their slot (region while it has room, spill
  // beyond); order within a slot does not matter.
  const size_t p = static_cast<size_t>(drain_slot_ & slot_mask_);
  Entry* region = slot_data_.get() + p * kSlotCap;
  for (size_t i = drain_pos_; i < drain_cnt_; ++i) {
    const uint32_t len = slot_len_[p];
    if (len < kSlotCap) {
      region[len] = drain_base_[i];
      slot_len_[p] = len + 1;
    } else {
      spill_[p].push_back(drain_base_[i]);
      ++spill_count_;
    }
  }
  if (drain_aux_active_) {
    drain_aux_.clear();
    drain_aux_active_ = false;
  }
  occ_[p >> 6] |= 1ull << (p & 63);
  drain_pos_ = 0;
  drain_cnt_ = 0;
}

bool Engine::EnsureWheelFront() {
  if (drain_pos_ != drain_cnt_ && !wheel_dirty_) [[likely]] {
    return true;
  }
  if (wheel_count_ == 0) [[unlikely]] {
    if (drain_aux_active_) {
      drain_aux_.clear();
      drain_aux_active_ = false;
    }
    drain_pos_ = 0;
    drain_cnt_ = 0;
    wheel_dirty_ = false;
    return false;
  }
  return ResolveWheelFront();
}

bool Engine::ResolveWheelFront() {
  wheel_dirty_ = false;
  const size_t in_drain = drain_cnt_ - drain_pos_;
  if (wheel_count_ == in_drain) {
    // Nothing pending in the slots themselves; the sorted drain is
    // authoritative (in_drain > 0 here since wheel_count_ > 0).
    return true;
  }
  const uint64_t first = FirstOccupiedAbs();
  if (in_drain > 0) {
    if (drain_slot_ < first) {
      return true;
    }
    const size_t p = static_cast<size_t>(first & slot_mask_);
    if (drain_slot_ == first) {
      // New arrivals landed in the slot being drained: gather pending +
      // arrivals (+ any spill) and re-sort.
      Entry* region = slot_data_.get() + p * kSlotCap;
      const size_t len = slot_len_[p];
      const bool spilled = spill_count_ != 0 && !spill_[p].empty();
      const size_t total = in_drain + len + (spilled ? spill_[p].size() : 0);
      if (!drain_aux_active_ && total <= kSlotCap) {
        Entry tmp[2 * kSlotCap];
        std::memcpy(tmp, drain_base_ + drain_pos_, in_drain * sizeof(Entry));
        std::memcpy(tmp + in_drain, region, len * sizeof(Entry));
        SortInto(tmp, total, drain_buf_);
        drain_base_ = drain_buf_;
        drain_pos_ = 0;
        drain_cnt_ = total;
      } else if (!drain_aux_active_) {
        drain_aux_.assign(drain_base_ + drain_pos_, drain_base_ + drain_cnt_);
        drain_aux_.insert(drain_aux_.end(), region, region + len);
        if (spilled) {
          drain_aux_.insert(drain_aux_.end(), spill_[p].begin(), spill_[p].end());
          spill_count_ -= spill_[p].size();
          spill_[p].clear();
        }
        drain_aux_active_ = true;
        drain_base_ = drain_aux_.data();
        drain_pos_ = 0;
        drain_cnt_ = drain_aux_.size();
        SortRange(drain_base_, drain_cnt_);
      } else {
        drain_aux_.insert(drain_aux_.end(), region, region + len);
        if (spilled) {
          drain_aux_.insert(drain_aux_.end(), spill_[p].begin(), spill_[p].end());
          spill_count_ -= spill_[p].size();
          spill_[p].clear();
        }
        drain_base_ = drain_aux_.data();
        drain_cnt_ = drain_aux_.size();
        SortRange(drain_base_ + drain_pos_, drain_cnt_ - drain_pos_);
      }
      slot_len_[p] = 0;
      occ_[p >> 6] &= ~(1ull << (p & 63));
      return true;
    }
    // An earlier slot became occupied (an over-horizon heap event ran and
    // scheduled below the drain): return the drain and re-pull.
    AbandonDrain();
  } else if (drain_aux_active_) {
    drain_aux_.clear();
    drain_aux_active_ = false;
  }
  // Pull slot `first`: radix-scatter the region into the hot drain buffer
  // and clear the slot (aux only when it spilled past the region).
  const size_t p = static_cast<size_t>(first & slot_mask_);
  Entry* region = slot_data_.get() + p * kSlotCap;
  const size_t len = slot_len_[p];
  if (spill_count_ != 0 && !spill_[p].empty()) [[unlikely]] {
    drain_aux_.assign(region, region + len);
    drain_aux_.insert(drain_aux_.end(), spill_[p].begin(), spill_[p].end());
    spill_count_ -= spill_[p].size();
    spill_[p].clear();
    drain_aux_active_ = true;
    drain_base_ = drain_aux_.data();
    drain_cnt_ = drain_aux_.size();
    SortRange(drain_base_, drain_cnt_);
  } else {
    drain_aux_active_ = false;
    SortInto(region, len, drain_buf_);
    drain_base_ = drain_buf_;
    drain_cnt_ = len;
  }
  slot_len_[p] = 0;
  drain_pos_ = 0;
  drain_slot_ = first;
  occ_[p >> 6] &= ~(1ull << (p & 63));
  return true;
}

Engine::Entry* Engine::ExtractMin(SimTime limit) {
  if (EnsureWheelFront()) [[likely]] {
    Entry* front = drain_base_ + drain_pos_;
    // heap_min_when_ is kNever when the heap is empty, so the fast `<`
    // filter usually settles the arbitration without touching the heap;
    // only a time tie needs the full (when, band, seq) compare.
    if (front->when < heap_min_when_ ||
        (front->when == heap_min_when_ &&
         (heap_.empty() || Earlier(*front, heap_.front())))) [[likely]] {
      if (front->when > limit) {
        return nullptr;
      }
      ++drain_pos_;
      --wheel_count_;
      --event_count_;
      return front;  // valid until the next ExtractMin or wheel resolve
    }
  }
  if (heap_.empty() || heap_.front().when > limit) {
    return nullptr;
  }
  pop_tmp_ = heap_.front();
  HeapPop();
  --event_count_;
  return &pop_tmp_;
}

SimTime Engine::PeekTime() const {
  SimTime best = heap_.empty() ? kNever : heap_.front().when;
  const size_t in_drain = drain_cnt_ - drain_pos_;
  if (in_drain > 0 && drain_base_[drain_pos_].when < best) {
    best = drain_base_[drain_pos_].when;
  }
  if (wheel_count_ > in_drain) {
    // Entries sit in the slots; every entry in the first occupied slot
    // precedes every entry in later slots, so scanning just that slot
    // yields the wheel minimum.
    const uint64_t first = FirstOccupiedAbs();
    if (first != kNever) {
      const size_t p = static_cast<size_t>(first & slot_mask_);
      const Entry* region = slot_data_.get() + p * kSlotCap;
      for (size_t i = 0; i < slot_len_[p]; ++i) {
        if (region[i].when < best) {
          best = region[i].when;
        }
      }
      for (const Entry& entry : spill_[p]) {
        if (entry.when < best) {
          best = entry.when;
        }
      }
    }
  }
  return best;
}

uint64_t Engine::RunLoop(SimTime limit) {
  uint64_t executed = 0;
  while (Entry* entry = ExtractMin(limit)) {
    now_ = entry->when;
    entry->ops->invoke_destroy(this, entry->storage);
    ++executed;
  }
  return executed;
}

uint64_t Engine::Run() { return RunLoop(kNever); }

uint64_t Engine::RunEvents(SimTime limit) { return RunLoop(limit); }

uint64_t Engine::RunUntil(SimTime deadline) {
  const uint64_t executed = RunLoop(deadline);
  if (deadline > now_) {
    now_ = deadline;
  }
  return executed;
}

void Engine::AdvanceTo(SimTime t) {
  if (t > now_) {
    now_ = t;
  }
}

}  // namespace hyperion::sim
