#include "src/sim/energy.h"

#include "src/common/check.h"

namespace hyperion::sim {

size_t EnergyModel::AddComponent(ComponentPower power) {
  components_.push_back(std::move(power));
  busy_time_.push_back(0);
  return components_.size() - 1;
}

void EnergyModel::Busy(size_t id, Duration busy) {
  CHECK_LT(id, busy_time_.size());
  busy_time_[id] += busy;
}

double EnergyModel::TotalJoules(Duration elapsed) const {
  double joules = IdleWatts() * ToSeconds(elapsed);
  for (size_t i = 0; i < components_.size(); ++i) {
    joules += components_[i].active_watts * ToSeconds(busy_time_[i]);
  }
  return joules;
}

double EnergyModel::IdleWatts() const {
  double w = 0.0;
  for (const auto& c : components_) {
    w += c.idle_watts;
  }
  return w;
}

double EnergyModel::PeakWatts() const {
  double w = 0.0;
  for (const auto& c : components_) {
    w += c.idle_watts + c.active_watts;
  }
  return w;
}

EnergyModel MakeDpuEnergyModel() {
  // Budget sums to ~230 W peak, the U280-board + 4x NVMe envelope quoted in
  // the paper. Idle figures follow public Alveo board measurements (~35 W
  // static bitstream draw) and M.2 NVMe idle (~1.5 W each).
  EnergyModel m;
  m.AddComponent({"fpga_fabric", 35.0, 105.0});  // kFabric
  m.AddComponent({"hbm", 8.0, 22.0});            // kHbm
  m.AddComponent({"qsfp_network", 9.0, 11.0});   // kNetwork
  m.AddComponent({"nvme_x4", 6.0, 34.0});        // kNvme
  return m;
}

EnergyModel MakeServerEnergyModel() {
  // Budget sums to ~1,600 W peak for a dual-socket 1U with redundant PSUs,
  // matching the paper's SuperMicro X12 comparison point.
  EnergyModel m;
  m.AddComponent({"cpu_sockets", 140.0, 540.0});  // kCpu
  m.AddComponent({"dram", 40.0, 80.0});           // kDram
  m.AddComponent({"nic", 15.0, 25.0});            // kNic
  m.AddComponent({"nvme_x4", 6.0, 34.0});         // kNvme
  m.AddComponent({"chassis", 120.0, 600.0});      // kChassis (fans+PSU scale with load)
  return m;
}

}  // namespace hyperion::sim
