// Flow-control primitives for the overload-safe datapath (PR 5).
//
// The paper's Hyperion keeps its unified datapath fast *because* no CPU
// mediates between NIC, fabric, and flash — which also means no host kernel
// is around to shed load when an open-loop burst arrives. These three
// building blocks give every layer of the stack a CPU-free way to bound its
// queues, all deterministic under the discrete-event engine:
//
//   CreditGate           fixed pool of credits, the backwards-propagating
//                        "may I occupy downstream capacity" token (NVMe SQ
//                        slots -> FPGA pipeline slots -> RPC pending slots).
//   AdmissionController  bounded pending-request queue with deadline-aware
//                        early rejection for a FIFO pipeline whose state is
//                        a busy-until clock (the node-clock idiom used by
//                        ShardedRpcNode and load::OverloadPipeline).
//   Batcher<T>           K-or-max-delay coalescer: trades a bounded added
//                        latency for amortized per-item costs (NVMe doorbell
//                        rings, NIC RX frame batches).
//
// None of these draw randomness or read wall-clock time; decisions depend
// only on virtual time and call order, so sharded runs stay bit-identical.

#ifndef HYPERION_SRC_SIM_FLOW_H_
#define HYPERION_SRC_SIM_FLOW_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/sim/engine.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace hyperion::sim {

// A fixed pool of credits. Acquire before occupying downstream capacity,
// release on completion; exhaustion is the backpressure signal the caller
// turns into a shed, a stall, or a fast-reject.
class CreditGate {
 public:
  explicit CreditGate(uint32_t capacity) : capacity_(capacity) {}

  // Takes one credit; false (and counted) when the pool is exhausted.
  bool TryAcquire() {
    if (in_use_ >= capacity_) {
      counters_.Increment("credit_exhausted");
      return false;
    }
    ++in_use_;
    if (in_use_ > max_in_use_) {
      max_in_use_ = in_use_;
    }
    counters_.Increment("credit_acquired");
    return true;
  }

  void Release() {
    CHECK_GT(in_use_, 0u) << "credit released but none in use";
    --in_use_;
    counters_.Increment("credit_released");
  }

  uint32_t capacity() const { return capacity_; }
  uint32_t in_use() const { return in_use_; }
  uint32_t available() const { return capacity_ - in_use_; }
  uint32_t max_in_use() const { return max_in_use_; }

  // credit_acquired / credit_released / credit_exhausted.
  const Counters& counters() const { return counters_; }

 private:
  uint32_t capacity_;
  uint32_t in_use_ = 0;
  uint32_t max_in_use_ = 0;
  Counters counters_;
};

enum class AdmissionDecision : uint8_t {
  kAdmit = 0,
  kShedQueueFull,  // bounded pending queue is at max_pending entries
  kShedBacklog,    // pipeline backlog exceeds max_backlog of virtual time
  kShedDeadline,   // backlog + estimated service cannot meet the deadline
};

struct AdmissionParams {
  // Bounded pending-request queue, in entries. Requests admitted but not
  // yet finished occupy a slot; arrivals beyond the bound are shed.
  uint32_t max_pending = 64;
  // Bound on the pipeline backlog, in virtual time: an arrival that would
  // wait longer than this behind in-flight work is shed.
  Duration max_backlog = 2 * kMillisecond;
  // EWMA weight for the service-time estimate driving deadline shedding
  // (the classic SRTT gain).
  double ewma_alpha = 0.125;
};

// Deadline-aware bounded-queue admission for a FIFO pipeline modelled as a
// busy-until clock. The controller never touches the pipeline itself; it
// only observes (arrival, busy_until) pairs, so the fast-reject path costs
// whatever the caller charges — by construction no flash or fabric time.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionParams params = {}) : params_(params) {}

  // Decision for a request arriving at `now`, with the pipeline busy until
  // `busy_until` (<= now means idle), against an absolute virtual-time
  // `deadline` (Engine::kNever = none). Does not reserve a slot; callers
  // report admitted work via OnAdmitted.
  AdmissionDecision Decide(SimTime now, SimTime busy_until, SimTime deadline) {
    const Duration backlog = busy_until > now ? busy_until - now : 0;
    if (PendingAt(now) >= params_.max_pending) {
      counters_.Increment("admission_shed_queue_full");
      return AdmissionDecision::kShedQueueFull;
    }
    if (backlog > params_.max_backlog) {
      counters_.Increment("admission_shed_backlog");
      return AdmissionDecision::kShedBacklog;
    }
    if (deadline != Engine::kNever && now + backlog + EstimatedService() > deadline) {
      counters_.Increment("admission_shed_deadline");
      return AdmissionDecision::kShedDeadline;
    }
    counters_.Increment("admission_admitted");
    return AdmissionDecision::kAdmit;
  }

  // Reports an admitted request: it occupies a pending slot until `finish`
  // and its service time (finish - start of service) feeds the estimate.
  void OnAdmitted(SimTime arrival, SimTime finish) {
    CHECK_GE(finish, arrival);
    pending_.push_back(finish);
    depth_.Record(pending_.size());
    // The service sample excludes queueing: the pipeline worked on this
    // request from max(arrival, previous finish) to finish, and the deque
    // is FIFO, so the previous entry's finish is the service start.
    const SimTime start =
        pending_.size() >= 2 ? std::max(arrival, pending_[pending_.size() - 2]) : arrival;
    const auto sample = static_cast<double>(finish - start);
    estimate_ns_ = estimate_ns_ == 0.0
                       ? sample
                       : estimate_ns_ + params_.ewma_alpha * (sample - estimate_ns_);
  }

  // Pending admitted requests whose finish time is still in the future;
  // drops completed entries as a side effect.
  uint32_t PendingAt(SimTime now) {
    while (!pending_.empty() && pending_.front() <= now) {
      pending_.pop_front();
    }
    return static_cast<uint32_t>(pending_.size());
  }

  Duration EstimatedService() const { return static_cast<Duration>(estimate_ns_); }
  const AdmissionParams& params() const { return params_; }

  // admission_admitted / admission_shed_{queue_full,backlog,deadline}.
  const Counters& counters() const { return counters_; }
  // Pending-queue depth observed at each admission.
  const Histogram& depth() const { return depth_; }

 private:
  AdmissionParams params_;
  std::deque<SimTime> pending_;  // finish times, FIFO
  double estimate_ns_ = 0.0;
  Counters counters_;
  Histogram depth_;
};

// Coalesces items into batches of up to `max_batch`, flushing early after
// `max_delay` so a lone item on an idle system is never stranded. The flush
// callback runs inline (size-triggered) or from a scheduled engine event
// (timer-triggered); the Batcher must outlive the engine's pending events.
template <typename T>
class Batcher {
 public:
  // `timer_flush` tells the callback whether the max-delay timer (true) or
  // the size threshold / an explicit Flush() (false) triggered it.
  using FlushFn = std::function<void(std::vector<T> batch, bool timer_flush)>;

  Batcher(Engine* engine, uint32_t max_batch, Duration max_delay, FlushFn flush)
      : engine_(engine), max_batch_(max_batch), max_delay_(max_delay), flush_(std::move(flush)) {
    CHECK_GT(max_batch, 0u);
  }

  void Add(T item) {
    if (items_.empty() && max_batch_ > 1) {
      ArmTimer();
    }
    items_.push_back(std::move(item));
    counters_.Increment("batch_items");
    if (items_.size() >= max_batch_) {
      FlushNow(/*timer_flush=*/false, "batch_flush_full");
    }
  }

  // Flushes whatever is pending (no-op when empty).
  void Flush() {
    if (!items_.empty()) {
      FlushNow(/*timer_flush=*/false, "batch_flush_manual");
    }
  }

  size_t pending() const { return items_.size(); }

  // batch_items / batch_flush_{full,timer,manual}.
  const Counters& counters() const { return counters_; }
  // Distribution of flushed batch sizes.
  const Histogram& batch_sizes() const { return batch_sizes_; }

 private:
  void ArmTimer() {
    const uint64_t armed_for = generation_;
    engine_->ScheduleAfter(max_delay_, [this, armed_for] {
      // A stale timer (its batch already flushed by size) must not flush
      // the batch that has started accumulating since.
      if (generation_ == armed_for && !items_.empty()) {
        FlushNow(/*timer_flush=*/true, "batch_flush_timer");
      }
    });
  }

  void FlushNow(bool timer_flush, const char* counter) {
    ++generation_;
    std::vector<T> batch;
    batch.swap(items_);
    counters_.Increment(counter);
    batch_sizes_.Record(batch.size());
    flush_(std::move(batch), timer_flush);
  }

  Engine* engine_;
  uint32_t max_batch_;
  Duration max_delay_;
  FlushFn flush_;
  std::vector<T> items_;
  uint64_t generation_ = 0;
  Counters counters_;
  Histogram batch_sizes_;
};

}  // namespace hyperion::sim

#endif  // HYPERION_SRC_SIM_FLOW_H_
