#include "src/sim/stats.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "src/common/check.h"

namespace hyperion::sim {

namespace {
constexpr int kSubBucketBits = 5;
constexpr uint64_t kSubBuckets = 1ull << kSubBucketBits;
}  // namespace

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<size_t>(value);
  }
  // Exponent = position of the highest bit above the sub-bucket field.
  const int msb = 63 - std::countl_zero(value);
  const int exp = msb - kSubBucketBits;
  const uint64_t mantissa = (value >> exp) & (kSubBuckets - 1);
  return static_cast<size_t>((static_cast<uint64_t>(exp) + 1) * kSubBuckets + mantissa);
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index < kSubBuckets) {
    return index;
  }
  const uint64_t exp = index / kSubBuckets - 1;
  const uint64_t mantissa = index % kSubBuckets;
  // Upper edge of the bucket: ((mantissa+1) << exp | top bit) - 1.
  return ((kSubBuckets + mantissa + 1) << exp) - 1;
}

void Histogram::Record(uint64_t value) {
  const size_t idx = BucketIndex(value);
  if (idx >= buckets_.size()) {
    buckets_.resize(idx + 1, 0);
  }
  ++buckets_[idx];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  CHECK_GE(q, 0.0);
  CHECK_LE(q, 1.0);
  // The extremes are tracked exactly; answering them from the buckets would
  // return a bucket upper bound (q=0 of {1000, 2000} used to claim ~1023).
  if (q <= 0.0) {
    return min_;
  }
  if (q >= 1.0) {
    return max_;
  }
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * static_cast<double>(count_) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

std::string Histogram::SummaryNs() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << Mean() / 1000.0 << "us"
     << " p50=" << static_cast<double>(P50()) / 1000.0 << "us"
     << " p99=" << static_cast<double>(P99()) / 1000.0 << "us"
     << " max=" << static_cast<double>(max()) / 1000.0 << "us";
  return os.str();
}

Counters::Handle Counters::Intern(const std::string& name) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].first == name) {
      return static_cast<Handle>(i);
    }
  }
  entries_.emplace_back(name, 0);
  return static_cast<Handle>(entries_.size() - 1);
}

void Counters::Add(const std::string& name, uint64_t delta) {
  for (auto& [k, v] : entries_) {
    if (k == name) {
      v += delta;
      return;
    }
  }
  entries_.emplace_back(name, delta);
}

uint64_t Counters::Get(const std::string& name) const {
  for (const auto& [k, v] : entries_) {
    if (k == name) {
      return v;
    }
  }
  return 0;
}

void Counters::Reset() { entries_.clear(); }

std::vector<std::pair<std::string, uint64_t>> Counters::Snapshot() const {
  auto copy = entries_;
  std::sort(copy.begin(), copy.end());
  return copy;
}

}  // namespace hyperion::sim
