// Deterministic discrete-event simulation engine.
//
// Components schedule closures at absolute or relative virtual times; the
// engine executes them in (time, insertion-order) order. Ties are broken by
// a monotonically increasing sequence number, which makes runs bit-stable
// regardless of container iteration quirks.
//
// Hot-path design (PR 2): the engine is on every modelled request's path,
// so it avoids the classic heap-and-std::function costs three ways:
//
//   * EventFn stores callables with captures <= 48 bytes inline — no heap
//     allocation per scheduled lambda (std::function boxes anything above
//     ~two words).
//   * Event nodes come from a slab-recycled pool; steady-state scheduling
//     allocates nothing.
//   * A timing wheel (power-of-two slots x slot width) absorbs near-future
//     events with O(1) insertion; only events beyond the wheel horizon fall
//     back to the binary heap, and they migrate into the wheel as virtual
//     time approaches them.
//
// All three are behaviour-preserving: execution order is exactly the
// (time, seq) order of the original heap engine, which the PR-1 determinism
// regression test pins bit-identically. EngineOptions exposes the wheel and
// pool as knobs so bench_engine can measure each against the baseline.

#ifndef HYPERION_SRC_SIM_ENGINE_H_
#define HYPERION_SRC_SIM_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace hyperion::sim {

// Type-erased move-only callable with inline storage for small captures.
// Drop-in for the engine's former std::function<void()> callback type, but
// captures up to kInlineBytes live inside the event node itself.
class EventFn {
 public:
  static constexpr size_t kInlineBytes = 48;

  EventFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_v<std::remove_cvref_t<F>&>)
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      *reinterpret_cast<Fn**>(static_cast<void*>(storage_)) = new Fn(std::forward<F>(f));
      ops_ = &BoxedOps<Fn>::kOps;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(std::move(other)); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  void operator()() { ops_->invoke(storage_); }
  explicit operator bool() const { return ops_ != nullptr; }
  // True when the callable lives in the inline storage (no heap box).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_stored; }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void* storage);
    bool inline_stored;
  };

  template <typename Fn>
  struct InlineOps {
    static Fn* At(void* s) { return std::launder(reinterpret_cast<Fn*>(s)); }
    static void Invoke(void* s) { (*At(s))(); }
    static void Relocate(void* dst, void* src) {
      ::new (dst) Fn(std::move(*At(src)));
      At(src)->~Fn();
    }
    static void Destroy(void* s) { At(s)->~Fn(); }
    static constexpr Ops kOps = {&Invoke, &Relocate, &Destroy, /*inline_stored=*/true};
  };

  template <typename Fn>
  struct BoxedOps {
    static Fn*& Ptr(void* s) { return *reinterpret_cast<Fn**>(s); }
    static void Invoke(void* s) { (*Ptr(s))(); }
    static void Relocate(void* dst, void* src) { Ptr(dst) = Ptr(src); }
    static void Destroy(void* s) { delete Ptr(s); }
    static constexpr Ops kOps = {&Invoke, &Relocate, &Destroy, /*inline_stored=*/false};
  };

  void MoveFrom(EventFn&& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

// Knobs for bench_engine's A/B comparisons; defaults are the fast path.
struct EngineOptions {
  bool use_timing_wheel = true;
  bool pool_events = true;
  // Wheel geometry: slot width 2^slot_shift ns, slot_count slots (power of
  // two). Defaults cover a ~4.2 ms horizon at 4.096 us per slot — wide
  // enough for transport latencies, RTOs, and RPC backoffs.
  uint32_t slot_shift = 12;
  uint32_t slot_count = 1024;
};

// Scheduling/run telemetry (monotonic; for benches and tests, not models).
struct EngineStats {
  uint64_t scheduled = 0;
  uint64_t wheel_scheduled = 0;   // entered the wheel directly
  uint64_t heap_scheduled = 0;    // beyond the horizon (or wheel disabled)
  uint64_t heap_migrated = 0;     // heap -> wheel as the horizon advanced
  uint64_t inline_callbacks = 0;  // captures that fit EventFn inline storage
  uint64_t boxed_callbacks = 0;   // heap-boxed captures
  uint64_t pool_slabs = 0;        // event slabs allocated
};

class Engine {
 public:
  using Callback = EventFn;

  Engine() : Engine(EngineOptions{}) {}
  explicit Engine(const EngineOptions& options);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  SimTime Now() const { return now_; }

  // Runs `fn` at Now() + delay.
  void ScheduleAfter(Duration delay, Callback fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  // Runs `fn` at absolute virtual time `when` (>= Now()).
  void ScheduleAt(SimTime when, Callback fn);

  // Drains the event queue completely. Returns the number of events run.
  uint64_t Run();

  // Runs events with time <= deadline, then sets Now() to deadline (even if
  // the queue drained earlier). Returns the number of events run.
  uint64_t RunUntil(SimTime deadline);

  // Advances the clock without executing anything (used by sequential cost
  // models that account latency inline rather than via events).
  void AdvanceTo(SimTime t);
  void Advance(Duration d) { AdvanceTo(now_ + d); }

  bool Empty() const { return event_count_ == 0; }
  size_t PendingEvents() const { return event_count_; }

  // Earliest pending event time, or kNever when the queue is empty. Used by
  // the parallel-simulation layer to compute the next global epoch; may
  // migrate heap events into the wheel as a side effect (ordering-neutral).
  SimTime PeekNextTime() { return PeekTime(); }

  // Sentinel for "no pending event"/"no deadline" (max representable time).
  static constexpr SimTime kNever = ~0ull;

  const EngineOptions& options() const { return options_; }
  const EngineStats& stats() const { return stats_; }

 private:
  struct Event {
    SimTime when = 0;
    uint64_t seq = 0;
    EventFn fn;
    Event* next_free = nullptr;
  };
  struct LaterPtr {
    bool operator()(const Event* a, const Event* b) const {
      if (a->when != b->when) {
        return a->when > b->when;
      }
      return a->seq > b->seq;
    }
  };
  static bool Earlier(const Event* a, const Event* b) {
    return a->when < b->when || (a->when == b->when && a->seq < b->seq);
  }

  Event* AllocEvent();
  void ReleaseEvent(Event* event);
  void InsertWheel(Event* event);
  // Pulls heap events that have come inside the wheel horizon into the wheel.
  void MigrateHeap();
  // Removes and returns the earliest (when, seq) event with when <= limit,
  // or nullptr if none. The single ordering authority for Run/RunUntil.
  Event* ExtractMin(SimTime limit);
  // Earliest pending time (kNever when empty); used by AdvanceTo's guard.
  SimTime PeekTime();

  static constexpr size_t kSlabEvents = 256;

  EngineOptions options_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  size_t event_count_ = 0;

  // Timing wheel.
  std::vector<std::vector<Event*>> slots_;
  size_t wheel_count_ = 0;
  uint64_t hint_slot_ = 0;  // absolute slot to start min-scans from

  // Overflow heap for events beyond the wheel horizon.
  std::priority_queue<Event*, std::vector<Event*>, LaterPtr> heap_;

  // Slab pool.
  std::vector<std::unique_ptr<Event[]>> slabs_;
  Event* free_list_ = nullptr;

  EngineStats stats_;
};

}  // namespace hyperion::sim

#endif  // HYPERION_SRC_SIM_ENGINE_H_
