// Deterministic discrete-event simulation engine.
//
// Components schedule closures at absolute or relative virtual times; the
// engine executes them in explicit key order. Every pending event carries a
// 24-byte ordering key (when, band, seq):
//
//   * locally scheduled events sort in (time, insertion-order) order, which
//     makes runs bit-stable regardless of container iteration quirks;
//   * cross-shard messages (ScheduleMessage) carry a caller-provided
//     (source, per-source seq) key in a band that sorts *before* local
//     events at the same timestamp. The key is a property of the message,
//     not of when a barrier happened to deliver it, so execution order is
//     invariant under shard layout and epoch-window boundaries — the
//     parallel layer leans on this (see parallel.h).
//
// Hot-path design (PR 2, rebuilt in PR 7): the engine is on every modelled
// request's path, so the ready queue is a cache-line-per-event SoA layout:
//
//   * A pending event is one 64-byte Entry: the full ordering key, an ops
//     pointer, and 32 bytes of payload storage. Trivially copyable
//     callables up to 32 bytes — the common capture profile of model
//     timers and completions — live *inside the entry*: scheduling writes
//     one line at the slot tail, execution reads it back, and no node,
//     freelist, or heap allocation is ever touched.
//   * Larger or non-trivial callables go to a slab-pooled 128-byte node
//     (ops + 112 bytes inline storage in the leading line); only captures
//     beyond 112 bytes fall back to a heap box.
//   * A timing wheel (power-of-two slots x slot width) absorbs near-future
//     events into a flat calendar arena: one contiguous Entry region of
//     kSlotCap lines per slot (vector spill beyond that), an L1-resident
//     length array, and an occupancy bitmap scanned by word. Pulling the
//     front slot radix-scatters its region by sub-slot time bits into a
//     small L1 drain buffer (an insertion-sort cleanup pass enforces exact
//     key order, so the scatter only has to be approximate — its job is
//     killing the compare-branch mispredicts), then clears the slot, so
//     steady-state extraction is pop-from-sorted-array guarded by a single
//     dirty flag. Arrivals that target the slot being drained append to
//     the live buffer directly when they sort last (the chained-timer
//     express lane). Events beyond the wheel horizon sit in a binary heap
//     of entries and are merged by key at extraction via a cached heap-min
//     timestamp.
//
// All of it is behaviour-preserving for sequential users: execution order
// is exactly the (time, seq) order of the original heap engine, which the
// PR-1 determinism regression pins bit-identically. EngineOptions exposes
// the wheel and pool as knobs so bench_engine can measure each against the
// baseline.

#ifndef HYPERION_SRC_SIM_ENGINE_H_
#define HYPERION_SRC_SIM_ENGINE_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/sim/time.h"

namespace hyperion::sim {

// Type-erased move-only callable with inline storage for small captures.
// Drop-in for the engine's former std::function<void()> callback type.
// Sized so a sharded-RPC send closure (BufferChain + completion
// std::function + two pointers) stays inline in an event node.
class EventFn {
 public:
  static constexpr size_t kInlineBytes = 112;
  // Callables at most this big, trivially copyable and sufficiently
  // aligned, can be byte-relocated straight into a ready-queue entry.
  static constexpr size_t kTrivialBytes = 24;

  struct Ops {
    void (*invoke)(void* storage);
    void (*invoke_destroy)(void* storage);  // fused run-once path
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void* storage);
    bool inline_stored;
    // True when the callable can be relocated with memcpy and needs no
    // destructor: sizeof <= kTrivialBytes, trivially copyable, align <= 8.
    bool trivial_small;
  };

  // Constructs a callable of type F directly into `storage` (which must
  // provide kInlineBytes of max-aligned space) and returns its ops table.
  template <typename F>
  static const Ops* ConstructAt(void* storage, F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (Inlinable<Fn>()) {
      ::new (storage) Fn(std::forward<F>(f));
      return &InlineOps<Fn>::kOps;
    } else {
      *static_cast<Fn**>(storage) = new Fn(std::forward<F>(f));
      return &BoxedOps<Fn>::kOps;
    }
  }

  EventFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_v<std::remove_cvref_t<F>&>)
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    ops_ = ConstructAt(storage_, std::forward<F>(f));
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(std::move(other)); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  void operator()() { ops_->invoke(storage_); }
  explicit operator bool() const { return ops_ != nullptr; }
  // True when the callable lives in the inline storage (no heap box).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_stored; }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  // Relocates the callable into `storage` (kInlineBytes, max-aligned) and
  // empties this EventFn. Returns the ops table now owning `storage`.
  const Ops* RelocateTo(void* storage) {
    const Ops* ops = ops_;
    ops->relocate(storage, storage_);
    ops_ = nullptr;
    return ops;
  }

  const Ops* ops() const { return ops_; }
  const void* storage() const { return storage_; }
  void DisarmTrivial() { ops_ = nullptr; }  // after a memcpy relocation

 private:
  template <typename Fn>
  static constexpr bool Inlinable() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }
  template <typename Fn>
  static constexpr bool TrivialSmall() {
    return sizeof(Fn) <= kTrivialBytes && std::is_trivially_copyable_v<Fn> && alignof(Fn) <= 8;
  }

  template <typename Fn>
  struct InlineOps {
    static Fn* At(void* s) { return std::launder(reinterpret_cast<Fn*>(s)); }
    static void Invoke(void* s) { (*At(s))(); }
    static void InvokeDestroy(void* s) {
      (*At(s))();
      At(s)->~Fn();
    }
    static void Relocate(void* dst, void* src) {
      ::new (dst) Fn(std::move(*At(src)));
      At(src)->~Fn();
    }
    static void Destroy(void* s) { At(s)->~Fn(); }
    static constexpr Ops kOps = {&Invoke,  &InvokeDestroy,
                                 &Relocate, &Destroy,
                                 /*inline_stored=*/true, TrivialSmall<Fn>()};
  };

  template <typename Fn>
  struct BoxedOps {
    static Fn*& Ptr(void* s) { return *static_cast<Fn**>(s); }
    static void Invoke(void* s) { (*Ptr(s))(); }
    static void InvokeDestroy(void* s) {
      Fn* fn = Ptr(s);
      (*fn)();
      delete fn;
    }
    static void Relocate(void* dst, void* src) { Ptr(dst) = Ptr(src); }
    static void Destroy(void* s) { delete Ptr(s); }
    static constexpr Ops kOps = {&Invoke,  &InvokeDestroy,
                                 &Relocate, &Destroy,
                                 /*inline_stored=*/false, /*trivial_small=*/false};
  };

  void MoveFrom(EventFn&& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

// Knobs for bench_engine's A/B comparisons; defaults are the fast path.
struct EngineOptions {
  bool use_timing_wheel = true;
  bool pool_events = true;
  // Wheel geometry: slot width 2^slot_shift ns, slot_count slots (power of
  // two). Defaults cover a ~4.2 ms horizon at 8.192 us per slot — wide
  // enough for transport latencies, RTOs, and RPC backoffs, with slots
  // dense enough that the sort-once drain amortizes over several events.
  uint32_t slot_shift = 13;
  uint32_t slot_count = 512;
};

// Scheduling/run telemetry (monotonic; for benches and tests, not models).
struct EngineStats {
  uint64_t scheduled = 0;
  uint64_t wheel_scheduled = 0;   // entered the wheel directly
  uint64_t heap_scheduled = 0;    // beyond the horizon (or wheel disabled)
  uint64_t inline_callbacks = 0;  // captures held inline (entry or node)
  uint64_t boxed_callbacks = 0;   // heap-boxed captures
  uint64_t pool_slabs = 0;        // event-node slabs allocated
  uint64_t messages_scheduled = 0;  // ScheduleMessage (cross-shard band)
};

class Engine {
 public:
  using Callback = EventFn;

  // Sentinel for "no pending event"/"no deadline" (max representable time).
  static constexpr SimTime kNever = ~0ull;

  // Tie band for locally scheduled events. Messages carry their 32-bit
  // source id as the band, so at equal timestamps every message sorts
  // before every local event — in every shard layout.
  static constexpr uint64_t kLocalBand = 1ull << 32;

  // Callables at most this big that are trivially copyable live directly
  // in the 64-byte ready-queue entry (no node, no allocation).
  static constexpr size_t kEntryInlineBytes = 32;

  Engine() : Engine(EngineOptions{}) {}
  explicit Engine(const EngineOptions& options);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  SimTime Now() const { return now_; }

  // Runs `fn` at Now() + delay.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_v<std::remove_cvref_t<F>&>)
  void ScheduleAfter(Duration delay, F&& fn) {
    ScheduleAt(now_ + delay, std::forward<F>(fn));
  }
  void ScheduleAfter(Duration delay, Callback fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  // Runs `fn` at absolute virtual time `when` (>= Now()). The template
  // overload constructs the callable directly inside the ready queue.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_v<std::remove_cvref_t<F>&>)
  void ScheduleAt(SimTime when, F&& fn) {
    using Fn = std::remove_cvref_t<F>;
    CHECK_GE(when, now_) << "cannot schedule into the past";
    Entry& entry = PlaceEntry(when, kLocalBand, next_seq_++);
    if constexpr (sizeof(Fn) <= kEntryInlineBytes && std::is_trivially_copyable_v<Fn> &&
                  alignof(Fn) <= 16) {
      ::new (static_cast<void*>(entry.storage)) Fn(std::forward<F>(fn));
      entry.ops = &EntryInlineOps<Fn>::kOps;
      ++stats_.inline_callbacks;
    } else {
      Event* node = AllocEvent();
      node->ops = EventFn::ConstructAt(node->storage, std::forward<F>(fn));
      std::memcpy(entry.storage, &node, sizeof(node));
      entry.ops = &kNodeEntryOps;
      if (node->ops->inline_stored) {
        ++stats_.inline_callbacks;
      } else {
        ++stats_.boxed_callbacks;
      }
    }
    CommitEntry(entry);
  }
  void ScheduleAt(SimTime when, Callback fn) {
    CHECK_GE(when, now_) << "cannot schedule into the past";
    ScheduleErased(when, kLocalBand, next_seq_++, std::move(fn));
  }

  // Schedules a cross-shard message with an explicit layout-invariant key:
  // at equal `when` messages order by (source, seq) and run before local
  // events. Callers (the parallel layer) guarantee (source, seq) pairs are
  // unique and assigned in the source's deterministic execution order.
  void ScheduleMessage(SimTime when, uint32_t source, uint64_t seq, Callback fn) {
    CHECK_GE(when, now_) << "cannot schedule into the past";
    ++stats_.messages_scheduled;
    ScheduleErased(when, source, seq, std::move(fn));
  }

  // Drains the event queue completely. Returns the number of events run.
  uint64_t Run();

  // Runs events with time <= deadline, then sets Now() to deadline (even if
  // the queue drained earlier). Returns the number of events run.
  uint64_t RunUntil(SimTime deadline);

  // Runs events with time <= limit but leaves Now() at the last executed
  // event (the clock does not jump to `limit`). The parallel layer's window
  // primitive: per-shard horizons may lie far past the last local event,
  // and later-delivered messages must still be schedulable.
  uint64_t RunEvents(SimTime limit);

  // Advances the clock without executing anything (used by sequential cost
  // models that account latency inline rather than via events).
  void AdvanceTo(SimTime t);
  void Advance(Duration d) { AdvanceTo(now_ + d); }

  bool Empty() const { return event_count_ == 0; }
  size_t PendingEvents() const { return event_count_; }

  // Earliest pending event time, or kNever when the queue is empty. Used by
  // the parallel-simulation layer to compute epoch horizons. Read-only.
  SimTime PeekNextTime() const { return PeekTime(); }

  const EngineOptions& options() const { return options_; }
  const EngineStats& stats() const { return stats_; }

 private:
  // Overflow node for callables that do not fit a ready-queue entry. Ops
  // and the leading capture bytes share the first cache line; free-list
  // linkage reuses the storage bytes.
  struct alignas(64) Event {
    const EventFn::Ops* ops;
    alignas(16) unsigned char storage[EventFn::kInlineBytes];
  };
  static_assert(sizeof(Event) == 128);

  struct EntryOps {
    void (*invoke_destroy)(Engine* engine, void* storage);
    void (*destroy)(Engine* engine, void* storage);
  };

  // One cache line per pending event: full ordering key, dispatch table,
  // and payload storage (small trivially copyable callable, a node
  // pointer, or a relocated type-erased ops+callable pair). Trivially
  // copyable by construction so slots, sorts, and heap sifts move raw
  // bytes.
  struct alignas(64) Entry {
    Entry() {}  // NOLINT: intentionally leaves members uninitialized so
                // emplace_back() on the hot path skips a 64-byte zero-fill
    SimTime when;
    uint64_t band;  // message source id, or kLocalBand for local events
    uint64_t seq;
    const EntryOps* ops;
    unsigned char storage[kEntryInlineBytes];
  };
  static_assert(sizeof(Entry) == 64);
  static_assert(std::is_trivially_copyable_v<Entry>);

  template <typename Fn>
  struct EntryInlineOps {
    static void InvokeDestroy(Engine* /*engine*/, void* s) {
      // Copy to the stack before invoking: the callback may schedule into
      // the express lane and recycle this very entry's storage (Fn is
      // trivially copyable by construction, so this is a register move).
      Fn fn = *std::launder(reinterpret_cast<Fn*>(s));
      fn();
      // Trivial destructor by construction: nothing to tear down.
    }
    static void Destroy(Engine* /*engine*/, void* /*s*/) {}
    static constexpr EntryOps kOps = {&InvokeDestroy, &Destroy};
  };

  // Payload is a node pointer; the callable (and its own ops) live in the
  // node, which returns to the pool after running.
  static void NodeInvokeDestroy(Engine* engine, void* s);
  static void NodeDestroy(Engine* engine, void* s);
  static constexpr EntryOps kNodeEntryOps = {&NodeInvokeDestroy, &NodeDestroy};

  // Payload is a relocated EventFn: its Ops* followed by the trivially
  // relocatable small callable (ScheduleMessage/erased ScheduleAt path).
  static void ErasedInvokeDestroy(Engine* engine, void* s);
  static void ErasedDestroy(Engine* engine, void* s);
  static constexpr EntryOps kErasedEntryOps = {&ErasedInvokeDestroy, &ErasedDestroy};

  static bool Earlier(const Entry& a, const Entry& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    if (a.band != b.band) {
      return a.band < b.band;
    }
    return a.seq < b.seq;
  }
  static bool EarlierKey(SimTime when, uint64_t band, uint64_t seq, const Entry& b) {
    if (when != b.when) {
      return when < b.when;
    }
    if (band != b.band) {
      return band < b.band;
    }
    return seq < b.seq;
  }

  static Event*& NextFree(Event* e) { return *reinterpret_cast<Event**>(e->storage); }

  Event* AllocEvent() {
    Event* event = free_list_;
    if (event != nullptr) [[likely]] {
      free_list_ = NextFree(event);
      return event;
    }
    return AllocEventSlow();
  }
  Event* AllocEventSlow();
  void ReleaseEvent(Event* event) {
    if (pooled_) [[likely]] {
      NextFree(event) = free_list_;
      free_list_ = event;
    } else {
      delete event;
    }
  }

  // Reserves an uninitialized Entry in the wheel calendar or heap staging
  // area and stamps its key; the caller fills the payload, then
  // CommitEntry()s. The wheel fast path costs one line write into the flat
  // calendar arena plus L1-resident bookkeeping (slot_len_, occ_, stats).
  Entry& PlaceEntry(SimTime when, uint64_t band, uint64_t seq) {
    ++stats_.scheduled;
    ++event_count_;
    if (wheel_enabled_ && (when >> slot_shift_) - (now_ >> slot_shift_) < slot_count_)
        [[likely]] {
      const uint64_t abs_slot = when >> slot_shift_;
      // Express lane: an arrival for the slot currently being drained can
      // join the live drain buffer directly when it sorts after the last
      // pending entry — chained timers hit this on nearly every event and
      // skip the region write, the occupancy scan, and the re-sort.
      if (abs_slot == drain_slot_ && !wheel_dirty_ && !drain_aux_active_ &&
          drain_cnt_ < kSlotCap &&
          (drain_pos_ == drain_cnt_ ||
           (drain_base_ == drain_buf_ &&
            !EarlierKey(when, band, seq, drain_buf_[drain_cnt_ - 1])))) {
        ++wheel_count_;
        ++stats_.wheel_scheduled;
        if (drain_pos_ == drain_cnt_) {
          drain_base_ = drain_buf_;
          drain_pos_ = 0;
          drain_cnt_ = 0;
        }
        Entry* entry = &drain_buf_[drain_cnt_++];
        entry->when = when;
        entry->band = band;
        entry->seq = seq;
        return *entry;
      }
      const size_t p = static_cast<size_t>(abs_slot & slot_mask_);
      occ_[p >> 6] |= 1ull << (p & 63);
      // Inserting at or below the drained slot invalidates the cached
      // front; the next extraction re-resolves it.
      wheel_dirty_ |= abs_slot <= drain_slot_;
      ++wheel_count_;
      ++stats_.wheel_scheduled;
      const uint32_t len = slot_len_[p];
      Entry* entry;
      if (len < kSlotCap) [[likely]] {
        slot_len_[p] = len + 1;
        entry = slot_data_.get() + p * kSlotCap + len;
      } else {
        ++spill_count_;
        entry = &spill_[p].emplace_back();
      }
      entry->when = when;
      entry->band = band;
      entry->seq = seq;
      return *entry;
    }
    ++stats_.heap_scheduled;
    staged_.when = when;
    staged_.band = band;
    staged_.seq = seq;
    return staged_;
  }
  void CommitEntry(Entry& entry) {
    if (&entry == &staged_) [[unlikely]] {
      HeapPush(staged_);
    }
  }

  void ScheduleErased(SimTime when, uint64_t band, uint64_t seq, Callback fn);

  // Binary min-heap over Entry keys (std::priority_queue without the
  // adaptor overhead, and with direct access for the destructor).
  void HeapPush(const Entry& entry);
  void HeapPop();

  // Ensures drain_base_[drain_pos_] is the earliest wheel entry (merging
  // new arrivals and advancing to the next occupied slot as needed).
  // Returns false when the wheel is empty. Reorganization only —
  // ordering-neutral.
  bool EnsureWheelFront();
  bool ResolveWheelFront();  // slow path behind the dirty flag
  // Returns unconsumed drain entries to their slot (an over-horizon heap
  // event ran and scheduled below the drain, so the slot must be re-pulled
  // in full).
  void AbandonDrain();
  // First occupied absolute slot at/after Now()'s slot, or kNever if none.
  uint64_t FirstOccupiedAbs() const;
  // Radix-assisted exact sort into `dst` (branchless approximate counting
  // scatter + cleanup insertion sort); src and dst must not overlap.
  void SortInto(const Entry* src, size_t n, Entry* dst) const;
  void SortRange(Entry* a, size_t n) const;

  // Pops the earliest entry with when <= limit; the returned pointer stays
  // valid until the next ExtractMin (callbacks scheduling new events never
  // touch the drain). Returns nullptr when nothing is due. The single
  // ordering authority for Run/RunUntil/RunEvents.
  Entry* ExtractMin(SimTime limit);
  // Earliest pending time (kNever when empty).
  SimTime PeekTime() const;
  uint64_t RunLoop(SimTime limit);

  static constexpr size_t kSlabEvents = 256;

  EngineOptions options_;
  bool wheel_enabled_ = false;
  bool pooled_ = false;
  uint32_t slot_shift_ = 0;
  uint64_t slot_count_ = 0;
  uint64_t slot_mask_ = 0;

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  size_t event_count_ = 0;

  // Timing wheel: a flat calendar arena of kSlotCap entries per slot with
  // L1-resident per-slot lengths and an occupancy bitmap. The rare slot
  // that overflows kSlotCap spills into its per-slot vector (only examined
  // when slot_len_ has hit the cap).
  static constexpr size_t kSlotCap = 16;
  std::unique_ptr<Entry[]> slot_data_;  // slot_count_ * kSlotCap
  std::vector<uint32_t> slot_len_;
  std::vector<std::vector<Entry>> spill_;
  size_t spill_count_ = 0;  // total spilled entries; gates all spill checks
  std::vector<uint64_t> occ_;
  size_t wheel_count_ = 0;

  // Drain state for the slot currently being consumed (absolute number
  // drain_slot_). Pulling a slot radix-scatters its region into the
  // L1-resident drain_buf_ and clears the slot, so the serial pop path
  // reads hot lines while the region loads overlap each other. Slots that
  // spilled past kSlotCap are gathered into drain_aux_ instead. Entries at
  // [drain_pos_, drain_cnt_) of drain_base_ are pending; wheel_dirty_
  // marks that an insert may have invalidated the cached front.
  Entry drain_buf_[kSlotCap];
  Entry* drain_base_ = nullptr;
  size_t drain_pos_ = 0;
  size_t drain_cnt_ = 0;
  uint64_t drain_slot_ = 0;
  bool drain_aux_active_ = false;
  bool wheel_dirty_ = false;
  std::vector<Entry> drain_aux_;

  // Overflow heap for events beyond the wheel horizon, the staging entry
  // PlaceEntry hands out before the payload exists, and the holding entry
  // a heap pop is returned through.
  std::vector<Entry> heap_;
  // Cached copy of heap_.front().when (kNever when empty): the per-pop
  // wheel-vs-heap arbitration reads this hot scalar instead of pulling the
  // heap's first cache line.
  SimTime heap_min_when_ = kNever;
  Entry staged_{};
  Entry pop_tmp_{};

  // Slab pool for overflow nodes.
  std::vector<std::unique_ptr<Event[]>> slabs_;
  Event* free_list_ = nullptr;

  EngineStats stats_;
};

}  // namespace hyperion::sim

#endif  // HYPERION_SRC_SIM_ENGINE_H_
