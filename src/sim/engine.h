// Deterministic discrete-event simulation engine.
//
// Components schedule closures at absolute or relative virtual times; the
// engine executes them in (time, insertion-order) order. Ties are broken by
// a monotonically increasing sequence number, which makes runs bit-stable
// regardless of container iteration quirks.

#ifndef HYPERION_SRC_SIM_ENGINE_H_
#define HYPERION_SRC_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace hyperion::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime Now() const { return now_; }

  // Runs `fn` at Now() + delay.
  void ScheduleAfter(Duration delay, Callback fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  // Runs `fn` at absolute virtual time `when` (>= Now()).
  void ScheduleAt(SimTime when, Callback fn);

  // Drains the event queue completely. Returns the number of events run.
  uint64_t Run();

  // Runs events with time <= deadline, then sets Now() to deadline (even if
  // the queue drained earlier). Returns the number of events run.
  uint64_t RunUntil(SimTime deadline);

  // Advances the clock without executing anything (used by sequential cost
  // models that account latency inline rather than via events).
  void AdvanceTo(SimTime t);
  void Advance(Duration d) { AdvanceTo(now_ + d); }

  bool Empty() const { return queue_.empty(); }
  size_t PendingEvents() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace hyperion::sim

#endif  // HYPERION_SRC_SIM_ENGINE_H_
