// Stateful L4 load balancer with flash spill (paper §2.4, citing Tiara
// [169]: FPGA load balancers have flow-proportional state that outgrows
// on-chip memory; Tiara spills it to x86 servers — Hyperion spills to its
// own attached SSDs).
//
// New flows are placed by consistent hashing over the backend ring (so
// backend changes only remap a 1/N slice); established flows are pinned by
// a flow table. The table's hot part lives in the DPU DRAM tier with a
// bounded capacity; on overflow the LRU entry spills to a durable hash
// index on flash, from which it is promoted back on access. This keeps
// *every* established flow sticky across backend reconfiguration, at flash
// (not remote-server) cost for the cold tail.

#ifndef HYPERION_SRC_APPS_LOAD_BALANCER_H_
#define HYPERION_SRC_APPS_LOAD_BALANCER_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/apps/packet.h"
#include "src/common/result.h"
#include "src/dpu/hyperion.h"
#include "src/storage/hash_index.h"

namespace hyperion::apps {

struct Backend {
  uint32_t ip = 0;
  uint16_t port = 0;

  friend bool operator==(const Backend&, const Backend&) = default;
};

struct LoadBalancerStats {
  uint64_t packets = 0;
  uint64_t new_flows = 0;
  uint64_t resident_hits = 0;
  uint64_t spills = 0;
  uint64_t spill_hits = 0;   // served from the flash tier
  uint64_t promotions = 0;
};

class LoadBalancer {
 public:
  // `resident_capacity` bounds the DRAM-tier flow table. `spill_buckets`
  // sizes the flash tier's fixed hash directory: leave the default for
  // middleware-scale tests, raise it when the spill tier must absorb
  // millions of flows without deep overflow chains (the PR 8 ingress
  // pipeline passes ~2 * expected_flows / 100).
  static Result<std::unique_ptr<LoadBalancer>> Create(dpu::Hyperion* dpu,
                                                      std::vector<Backend> backends,
                                                      uint32_t resident_capacity,
                                                      uint32_t spill_buckets = 256);

  // Routes one packet; FIN/RST tear the flow state down.
  Result<Backend> Route(const Packet& packet);

  Status AddBackend(Backend backend);
  Status RemoveBackend(Backend backend);

  const LoadBalancerStats& stats() const { return stats_; }
  size_t ResidentFlows() const { return resident_.size(); }
  // Flash-tier directory health (chain depth, occupancy).
  const storage::HashIndex& spill() const { return *spill_; }

 private:
  LoadBalancer(dpu::Hyperion* dpu, std::vector<Backend> backends, uint32_t resident_capacity)
      : dpu_(dpu), backends_(std::move(backends)), resident_capacity_(resident_capacity) {}

  void RebuildRing();
  Backend PickByConsistentHash(const FlowKey& key) const;
  Status InsertResident(const FlowKey& key, const Backend& backend);
  Status SpillOne();

  dpu::Hyperion* dpu_;
  std::vector<Backend> backends_;
  uint32_t resident_capacity_;

  // Consistent-hash ring: point -> backend index (kVirtualNodes per backend).
  static constexpr uint32_t kVirtualNodes = 256;
  std::map<uint64_t, size_t> ring_;

  // Resident flow table with LRU order.
  struct ResidentEntry {
    Backend backend;
    std::list<FlowKey>::iterator lru_pos;
  };
  std::unordered_map<FlowKey, ResidentEntry> resident_;
  std::list<FlowKey> lru_;  // front = most recent

  std::unique_ptr<storage::HashIndex> spill_;  // durable flash tier
  LoadBalancerStats stats_;
};

}  // namespace hyperion::apps

#endif  // HYPERION_SRC_APPS_LOAD_BALANCER_H_
