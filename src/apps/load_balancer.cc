#include "src/apps/load_balancer.h"

#include <algorithm>

#include "src/common/check.h"

namespace hyperion::apps {

namespace {
constexpr uint64_t kSpillIndexId = 0x1B;

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t RingHash(uint32_t ip, uint16_t port, uint32_t replica) {
  Bytes bytes;
  PutU32(bytes, ip);
  PutU16(bytes, port);
  PutU32(bytes, replica);
  return Mix64(Fnv1a64(ByteSpan(bytes.data(), bytes.size())));
}

Bytes BackendBytes(const Backend& backend) {
  Bytes out;
  PutU32(out, backend.ip);
  PutU16(out, backend.port);
  return out;
}

Backend BackendFromBytes(ByteSpan data) {
  Backend backend;
  backend.ip = GetU32(data, 0);
  backend.port = GetU16(data, 4);
  return backend;
}
}  // namespace

Result<std::unique_ptr<LoadBalancer>> LoadBalancer::Create(dpu::Hyperion* dpu,
                                                           std::vector<Backend> backends,
                                                           uint32_t resident_capacity,
                                                           uint32_t spill_buckets) {
  if (!dpu->booted()) {
    return Unavailable("boot the DPU first");
  }
  if (backends.empty()) {
    return InvalidArgument("need at least one backend");
  }
  if (resident_capacity == 0) {
    return InvalidArgument("resident capacity must be positive");
  }
  if (spill_buckets == 0) {
    return InvalidArgument("spill tier needs at least one bucket");
  }
  auto lb = std::unique_ptr<LoadBalancer>(
      new LoadBalancer(dpu, std::move(backends), resident_capacity));
  lb->RebuildRing();
  // Spill tier: value = 6-byte backend; fixed 13-byte FlowKey keys.
  ASSIGN_OR_RETURN(storage::HashIndex spill,
                   storage::HashIndex::Create(&dpu->store(), kSpillIndexId, spill_buckets));
  lb->spill_ = std::make_unique<storage::HashIndex>(std::move(spill));
  return lb;
}

void LoadBalancer::RebuildRing() {
  ring_.clear();
  for (size_t b = 0; b < backends_.size(); ++b) {
    for (uint32_t v = 0; v < kVirtualNodes; ++v) {
      ring_[RingHash(backends_[b].ip, backends_[b].port, v)] = b;
    }
  }
}

Backend LoadBalancer::PickByConsistentHash(const FlowKey& key) const {
  CHECK(!ring_.empty());
  auto it = ring_.lower_bound(Mix64(key.Hash()));
  if (it == ring_.end()) {
    it = ring_.begin();  // wrap
  }
  return backends_[it->second];
}

Status LoadBalancer::SpillOne() {
  CHECK(!lru_.empty());
  const FlowKey victim = lru_.back();
  auto it = resident_.find(victim);
  CHECK(it != resident_.end());
  Bytes key_bytes = victim.Serialize();
  Bytes value = BackendBytes(it->second.backend);
  RETURN_IF_ERROR(spill_->Put(ByteSpan(key_bytes.data(), key_bytes.size()),
                              ByteSpan(value.data(), value.size())));
  lru_.pop_back();
  resident_.erase(it);
  ++stats_.spills;
  return Status::Ok();
}

Status LoadBalancer::InsertResident(const FlowKey& key, const Backend& backend) {
  while (resident_.size() >= resident_capacity_) {
    RETURN_IF_ERROR(SpillOne());
  }
  lru_.push_front(key);
  resident_[key] = ResidentEntry{backend, lru_.begin()};
  return Status::Ok();
}

Result<Backend> LoadBalancer::Route(const Packet& packet) {
  ++stats_.packets;
  const FlowKey& key = packet.flow;
  const bool teardown = (packet.tcp_flags & (kTcpFin | kTcpRst)) != 0;

  auto it = resident_.find(key);
  if (it != resident_.end()) {
    ++stats_.resident_hits;
    const Backend backend = it->second.backend;
    // LRU touch.
    lru_.erase(it->second.lru_pos);
    if (teardown) {
      resident_.erase(it);
    } else {
      lru_.push_front(key);
      it->second.lru_pos = lru_.begin();
    }
    return backend;
  }

  // Flash tier probe. A pure SYN is a brand-new connection: it cannot have
  // been spilled, so skip the flash read and go straight to placement.
  const bool fresh_syn = (packet.tcp_flags & kTcpSyn) != 0 && !teardown;
  Bytes key_bytes = key.Serialize();
  Result<Bytes> spilled = fresh_syn ? Result<Bytes>(NotFound("fresh SYN"))
                                    : spill_->Get(ByteSpan(key_bytes.data(), key_bytes.size()));
  if (spilled.ok()) {
    ++stats_.spill_hits;
    const Backend backend = BackendFromBytes(ByteSpan(spilled->data(), spilled->size()));
    if (teardown) {
      RETURN_IF_ERROR(spill_->Delete(ByteSpan(key_bytes.data(), key_bytes.size())));
    } else {
      // Promote back to DRAM.
      RETURN_IF_ERROR(spill_->Delete(ByteSpan(key_bytes.data(), key_bytes.size())));
      RETURN_IF_ERROR(InsertResident(key, backend));
      ++stats_.promotions;
    }
    return backend;
  }
  if (spilled.status().code() != StatusCode::kNotFound) {
    return spilled.status();
  }

  // New flow: consistent hash placement; SYN-less packets of unknown flows
  // still get a deterministic backend (ring), they just are not pinned.
  const Backend backend = PickByConsistentHash(key);
  if (!teardown) {
    ++stats_.new_flows;
    RETURN_IF_ERROR(InsertResident(key, backend));
  }
  return backend;
}

Status LoadBalancer::AddBackend(Backend backend) {
  for (const Backend& b : backends_) {
    if (b == backend) {
      return AlreadyExists("backend already registered");
    }
  }
  backends_.push_back(backend);
  RebuildRing();
  return Status::Ok();
}

Status LoadBalancer::RemoveBackend(Backend backend) {
  auto it = std::find(backends_.begin(), backends_.end(), backend);
  if (it == backends_.end()) {
    return NotFound("no such backend");
  }
  backends_.erase(it);
  if (backends_.empty()) {
    backends_.push_back(backend);  // restore: cannot run with zero backends
    return InvalidArgument("cannot remove the last backend");
  }
  RebuildRing();
  return Status::Ok();
}

}  // namespace hyperion::apps
