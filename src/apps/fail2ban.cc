#include "src/apps/fail2ban.h"

#include "src/common/check.h"

namespace hyperion::apps {

namespace {
constexpr uint64_t kAuditLogId = 0xF2B;
// Durable segment holding the ban list snapshot.
const mem::SegmentId kBanListSegment(0xF2B0000000000000ull, 1);
constexpr uint64_t kBanListBytes = 64 * 1024;
}  // namespace

Result<std::unique_ptr<Fail2Ban>> Fail2Ban::Create(dpu::Hyperion* dpu, Fail2BanConfig config) {
  if (!dpu->booted()) {
    return Unavailable("boot the DPU first");
  }
  if (config.max_failures == 0) {
    return InvalidArgument("max_failures must be positive");
  }
  auto app = std::unique_ptr<Fail2Ban>(new Fail2Ban(dpu, config));
  app->audit_log_ = std::make_unique<storage::CorfuLog>(&dpu->store(), kAuditLogId);
  return app;
}

Result<Fail2Ban::Verdict> Fail2Ban::OnAuthAttempt(uint32_t src_ip, bool auth_failed) {
  const sim::SimTime now = dpu_->engine()->Now();
  SourceState& state = sources_[src_ip];
  if (state.banned_until > now) {
    return Verdict::kBanned;
  }
  if (!auth_failed) {
    return Verdict::kPass;
  }
  // Durable audit record: [timestamp][src_ip][failure#].
  if (now > state.window_start + config_.window) {
    state.window_start = now;
    state.failures = 0;
  }
  ++state.failures;
  Bytes record;
  PutU64(record, now);
  PutU32(record, src_ip);
  PutU32(record, state.failures);
  RETURN_IF_ERROR(audit_log_->Append(ByteSpan(record.data(), record.size())).status());
  ++events_logged_;
  if (state.failures >= config_.max_failures) {
    state.banned_until = now + config_.ban_duration;
    ++bans_issued_;
    return Verdict::kBanned;
  }
  return Verdict::kFailedAttempt;
}

bool Fail2Ban::IsBanned(uint32_t src_ip) const {
  auto it = sources_.find(src_ip);
  return it != sources_.end() && it->second.banned_until > dpu_->engine()->Now();
}

Status Fail2Ban::PersistBanList() {
  Bytes snapshot;
  uint32_t banned = 0;
  const sim::SimTime now = dpu_->engine()->Now();
  for (const auto& [ip, state] : sources_) {
    if (state.banned_until > now) {
      ++banned;
    }
  }
  PutU32(snapshot, banned);
  for (const auto& [ip, state] : sources_) {
    if (state.banned_until > now) {
      PutU32(snapshot, ip);
      PutU64(snapshot, state.banned_until);
    }
  }
  PutU32(snapshot, Crc32c(ByteSpan(snapshot.data(), snapshot.size())));
  if (snapshot.size() > kBanListBytes) {
    return ResourceExhausted("ban list snapshot exceeds its segment");
  }
  if (!dpu_->store().Describe(kBanListSegment).ok()) {
    RETURN_IF_ERROR(dpu_->store().CreateWithId(kBanListSegment, kBanListBytes,
                                               {.durable = true}));
  }
  RETURN_IF_ERROR(dpu_->store().Write(kBanListSegment, 0,
                                      ByteSpan(snapshot.data(), snapshot.size())));
  return dpu_->store().Checkpoint();
}

Result<uint64_t> Fail2Ban::RestoreBanList() {
  ASSIGN_OR_RETURN(Bytes header, dpu_->store().Read(kBanListSegment, 0, 4));
  const uint32_t banned = GetU32(header, 0);
  const uint64_t body = 4 + static_cast<uint64_t>(banned) * 12;
  ASSIGN_OR_RETURN(Bytes snapshot, dpu_->store().Read(kBanListSegment, 0, body + 4));
  if (Crc32c(ByteSpan(snapshot.data(), body)) != GetU32(snapshot, body)) {
    return DataLoss("ban list snapshot corrupt");
  }
  ByteReader reader(ByteSpan(snapshot.data(), body));
  reader.Skip(4);
  uint64_t restored = 0;
  for (uint32_t i = 0; i < banned; ++i) {
    const uint32_t ip = reader.ReadU32();
    const uint64_t until = reader.ReadU64();
    sources_[ip].banned_until = until;
    ++restored;
  }
  if (!reader.Ok()) {
    return DataLoss("ban list snapshot truncated");
  }
  return restored;
}

}  // namespace hyperion::apps
