// fail2ban-style intrusion banner running standalone on Hyperion (paper
// §2.4's first workload class: "high data volume network middleware
// applications such as fail2Ban ... that need to log network traffic data
// persistently").
//
// State is flow-proportional and *durable*: every failed authentication
// attempt is appended to a Corfu-style audit log on the DPU's flash, and
// the ban list survives power cycles through the single-level store. On a
// Tiara-style FPGA-only design this state would have to be shipped to an
// x86 server; on Hyperion it just lands on the attached SSDs.

#ifndef HYPERION_SRC_APPS_FAIL2BAN_H_
#define HYPERION_SRC_APPS_FAIL2BAN_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/apps/packet.h"
#include "src/common/result.h"
#include "src/dpu/hyperion.h"
#include "src/storage/corfu.h"

namespace hyperion::apps {

struct Fail2BanConfig {
  uint32_t max_failures = 5;                      // within the window
  sim::Duration window = 60 * sim::kSecond;
  sim::Duration ban_duration = 600 * sim::kSecond;
};

class Fail2Ban {
 public:
  static Result<std::unique_ptr<Fail2Ban>> Create(dpu::Hyperion* dpu,
                                                  Fail2BanConfig config = Fail2BanConfig());

  enum class Verdict { kPass, kFailedAttempt, kBanned };

  // Processes one authentication outcome from `src_ip`. Failed attempts
  // are durably logged; crossing the threshold bans the source.
  Result<Verdict> OnAuthAttempt(uint32_t src_ip, bool auth_failed);

  bool IsBanned(uint32_t src_ip) const;

  // Persists the ban list to a durable segment (+ checkpoint) and restores
  // it after a power cycle.
  Status PersistBanList();
  Result<uint64_t> RestoreBanList();

  uint64_t events_logged() const { return events_logged_; }
  uint64_t bans_issued() const { return bans_issued_; }
  const storage::CorfuLog& audit_log() const { return *audit_log_; }

 private:
  Fail2Ban(dpu::Hyperion* dpu, Fail2BanConfig config)
      : dpu_(dpu), config_(config) {}

  struct SourceState {
    uint32_t failures = 0;
    sim::SimTime window_start = 0;
    sim::SimTime banned_until = 0;
  };

  dpu::Hyperion* dpu_;
  Fail2BanConfig config_;
  std::unique_ptr<storage::CorfuLog> audit_log_;
  std::unordered_map<uint32_t, SourceState> sources_;
  uint64_t events_logged_ = 0;
  uint64_t bans_issued_ = 0;
};

}  // namespace hyperion::apps

#endif  // HYPERION_SRC_APPS_FAIL2BAN_H_
