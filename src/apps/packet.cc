#include "src/apps/packet.h"

#include <sstream>

namespace hyperion::apps {

uint64_t FlowKey::Hash() const {
  Bytes bytes = Serialize();
  return Fnv1a64(ByteSpan(bytes.data(), bytes.size()));
}

Bytes FlowKey::Serialize() const {
  Bytes out;
  PutU32(out, src_ip);
  PutU32(out, dst_ip);
  PutU16(out, src_port);
  PutU16(out, dst_port);
  out.push_back(protocol);
  return out;
}

namespace {
std::string IpToString(uint32_t ip) {
  std::ostringstream os;
  os << ((ip >> 24) & 0xff) << '.' << ((ip >> 16) & 0xff) << '.' << ((ip >> 8) & 0xff) << '.'
     << (ip & 0xff);
  return os.str();
}
}  // namespace

std::string FlowKey::ToString() const {
  std::ostringstream os;
  os << IpToString(src_ip) << ':' << src_port << " -> " << IpToString(dst_ip) << ':' << dst_port
     << '/' << static_cast<int>(protocol);
  return os.str();
}

}  // namespace hyperion::apps
