// Flow/packet representation shared by the network middleware apps.

#ifndef HYPERION_SRC_APPS_PACKET_H_
#define HYPERION_SRC_APPS_PACKET_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/bytes.h"

namespace hyperion::apps {

struct FlowKey {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t protocol = 6;  // TCP

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  uint64_t Hash() const;
  Bytes Serialize() const;            // 13 bytes, the spill-table key
  std::string ToString() const;       // "a.b.c.d:p -> a.b.c.d:p/proto"
};

// TCP flag bits used by the middleware.
constexpr uint8_t kTcpSyn = 0x02;
constexpr uint8_t kTcpAck = 0x10;
constexpr uint8_t kTcpFin = 0x01;
constexpr uint8_t kTcpRst = 0x04;

struct Packet {
  FlowKey flow;
  uint8_t tcp_flags = 0;
  uint32_t payload_bytes = 0;
};

}  // namespace hyperion::apps

template <>
struct std::hash<hyperion::apps::FlowKey> {
  size_t operator()(const hyperion::apps::FlowKey& key) const noexcept {
    return static_cast<size_t>(key.Hash());
  }
};

#endif  // HYPERION_SRC_APPS_PACKET_H_
