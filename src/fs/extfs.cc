#include "src/fs/extfs.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"

namespace hyperion::fs {

namespace {

// On-disk inode layout within its 256-byte slot:
//   [0]      kind
//   [8..16)  size
//   [16]     extent count
//   [24+12i) extent i: start_block u64, block_count u32
Bytes SerializeInode(const Inode& inode) {
  Bytes out(kInodeDiskSize, 0);
  out[0] = static_cast<uint8_t>(inode.kind);
  for (int i = 0; i < 8; ++i) {
    out[8 + static_cast<size_t>(i)] = static_cast<uint8_t>(inode.size >> (8 * i));
  }
  CHECK_LE(inode.extents.size(), kMaxExtentsPerInode);
  out[16] = static_cast<uint8_t>(inode.extents.size());
  for (size_t e = 0; e < inode.extents.size(); ++e) {
    const size_t base = 24 + e * 12;
    for (int i = 0; i < 8; ++i) {
      out[base + static_cast<size_t>(i)] =
          static_cast<uint8_t>(inode.extents[e].start_block >> (8 * i));
    }
    for (int i = 0; i < 4; ++i) {
      out[base + 8 + static_cast<size_t>(i)] =
          static_cast<uint8_t>(inode.extents[e].block_count >> (8 * i));
    }
  }
  return out;
}

Inode DeserializeInode(ByteSpan slot) {
  Inode inode;
  inode.kind = static_cast<InodeKind>(slot[0]);
  inode.size = GetU64(slot, 8);
  const uint8_t count = slot[16];
  for (uint8_t e = 0; e < count && e < kMaxExtentsPerInode; ++e) {
    const size_t base = 24 + static_cast<size_t>(e) * 12;
    Extent ext;
    ext.start_block = GetU64(slot, base);
    ext.block_count = GetU32(slot, base + 8);
    inode.extents.push_back(ext);
  }
  return inode;
}

Bytes SerializeSuper(const SuperBlock& sb) {
  Bytes out;
  PutU32(out, sb.magic);
  PutU64(out, sb.total_blocks);
  PutU64(out, sb.bitmap_start);
  PutU64(out, sb.bitmap_blocks);
  PutU64(out, sb.inode_table_start);
  PutU64(out, sb.inode_count);
  PutU64(out, sb.data_start);
  PutU32(out, Crc32c(ByteSpan(out.data(), out.size())));
  out.resize(kBlockSize, 0);
  return out;
}

Result<SuperBlock> DeserializeSuper(ByteSpan block) {
  SuperBlock sb;
  sb.magic = GetU32(block, 0);
  if (sb.magic != SuperBlock{}.magic) {
    return DataLoss("bad superblock magic (not an ExtFs volume?)");
  }
  sb.total_blocks = GetU64(block, 4);
  sb.bitmap_start = GetU64(block, 12);
  sb.bitmap_blocks = GetU64(block, 20);
  sb.inode_table_start = GetU64(block, 28);
  sb.inode_count = GetU64(block, 36);
  sb.data_start = GetU64(block, 44);
  const uint32_t stored = GetU32(block, 52);
  if (Crc32c(block.subspan(0, 52)) != stored) {
    return DataLoss("superblock checksum mismatch");
  }
  return sb;
}

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : path) {
    if (c == '/') {
      if (!current.empty()) {
        parts.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    parts.push_back(std::move(current));
  }
  return parts;
}

}  // namespace

Result<Bytes> ExtFs::ReadBlock(uint64_t block, bool metadata) {
  (metadata ? metadata_ios_ : data_ios_)++;
  return nvme_->Read(nsid_, block, 1);
}

Status ExtFs::WriteBlock(uint64_t block, ByteSpan data, bool metadata) {
  (metadata ? metadata_ios_ : data_ios_)++;
  DCHECK_EQ(data.size(), kBlockSize);
  return nvme_->Write(nsid_, block, data);
}

Result<ExtFs> ExtFs::Format(nvme::Controller* nvme, uint32_t nsid, uint64_t inode_count) {
  ASSIGN_OR_RETURN(uint64_t total_blocks, nvme->NamespaceCapacity(nsid));
  ExtFs fs(nvme, nsid);
  SuperBlock sb;
  sb.total_blocks = total_blocks;
  sb.bitmap_start = 1;
  sb.bitmap_blocks = (total_blocks + kBlockSize * 8 - 1) / (kBlockSize * 8);
  sb.inode_table_start = sb.bitmap_start + sb.bitmap_blocks;
  sb.inode_count = inode_count;
  const uint64_t inode_blocks = (inode_count + kInodesPerBlock - 1) / kInodesPerBlock;
  sb.data_start = sb.inode_table_start + inode_blocks;
  if (sb.data_start + 16 > total_blocks) {
    return InvalidArgument("namespace too small for this geometry");
  }
  fs.super_ = sb;
  RETURN_IF_ERROR(fs.WriteSuper());
  // Zero the bitmap and mark the metadata region allocated.
  Bytes zero(kBlockSize, 0);
  for (uint64_t b = 0; b < sb.bitmap_blocks; ++b) {
    RETURN_IF_ERROR(fs.WriteBlock(sb.bitmap_start + b, ByteSpan(zero.data(), zero.size()),
                                  /*metadata=*/true));
  }
  // Zero the inode table.
  for (uint64_t b = 0; b < inode_blocks; ++b) {
    RETURN_IF_ERROR(fs.WriteBlock(sb.inode_table_start + b, ByteSpan(zero.data(), zero.size()),
                                  /*metadata=*/true));
  }
  // Root directory: inode 1, initially empty.
  Inode root;
  root.kind = InodeKind::kDirectory;
  RETURN_IF_ERROR(fs.WriteInode(kRootInode, root));
  return fs;
}

Result<ExtFs> ExtFs::Mount(nvme::Controller* nvme, uint32_t nsid) {
  ExtFs fs(nvme, nsid);
  ASSIGN_OR_RETURN(Bytes block, fs.ReadBlock(0, /*metadata=*/true));
  ASSIGN_OR_RETURN(fs.super_, DeserializeSuper(ByteSpan(block.data(), block.size())));
  return fs;
}

Status ExtFs::WriteSuper() {
  Bytes block = SerializeSuper(super_);
  return WriteBlock(0, ByteSpan(block.data(), block.size()), /*metadata=*/true);
}

Result<Inode> ExtFs::ReadInode(uint32_t inode_num) {
  if (inode_num == 0 || inode_num > super_.inode_count) {
    return InvalidArgument("bad inode number");
  }
  const uint64_t block = super_.inode_table_start + (inode_num - 1) / kInodesPerBlock;
  const size_t slot = ((inode_num - 1) % kInodesPerBlock) * kInodeDiskSize;
  ASSIGN_OR_RETURN(Bytes raw, ReadBlock(block, /*metadata=*/true));
  return DeserializeInode(ByteSpan(raw.data() + slot, kInodeDiskSize));
}

Status ExtFs::WriteInode(uint32_t inode_num, const Inode& inode) {
  if (inode_num == 0 || inode_num > super_.inode_count) {
    return InvalidArgument("bad inode number");
  }
  const uint64_t block = super_.inode_table_start + (inode_num - 1) / kInodesPerBlock;
  const size_t slot = ((inode_num - 1) % kInodesPerBlock) * kInodeDiskSize;
  ASSIGN_OR_RETURN(Bytes raw, ReadBlock(block, /*metadata=*/true));
  Bytes serialized = SerializeInode(inode);
  std::copy(serialized.begin(), serialized.end(), raw.begin() + static_cast<ptrdiff_t>(slot));
  return WriteBlock(block, ByteSpan(raw.data(), raw.size()), /*metadata=*/true);
}

Result<uint32_t> ExtFs::AllocateInode() {
  // Scan the inode table for a free slot (inode 1 is root).
  const uint64_t inode_blocks = (super_.inode_count + kInodesPerBlock - 1) / kInodesPerBlock;
  for (uint64_t b = 0; b < inode_blocks; ++b) {
    ASSIGN_OR_RETURN(Bytes raw, ReadBlock(super_.inode_table_start + b, /*metadata=*/true));
    for (uint32_t s = 0; s < kInodesPerBlock; ++s) {
      const uint32_t inode_num = static_cast<uint32_t>(b * kInodesPerBlock + s + 1);
      if (inode_num > super_.inode_count) {
        break;
      }
      if (inode_num == kRootInode) {
        continue;
      }
      if (raw[s * kInodeDiskSize] == static_cast<uint8_t>(InodeKind::kFree)) {
        return inode_num;
      }
    }
  }
  return ResourceExhausted("out of inodes");
}

Result<uint64_t> ExtFs::AllocateBlocks(uint32_t count) {
  if (count == 0) {
    return InvalidArgument("zero-block allocation");
  }
  // First-fit contiguous scan over the bitmap.
  uint64_t run_start = 0;
  uint32_t run_len = 0;
  for (uint64_t bb = 0; bb < super_.bitmap_blocks; ++bb) {
    ASSIGN_OR_RETURN(Bytes bitmap, ReadBlock(super_.bitmap_start + bb, /*metadata=*/true));
    for (uint64_t bit = 0; bit < kBlockSize * 8; ++bit) {
      const uint64_t block = bb * kBlockSize * 8 + bit;
      if (block < super_.data_start) {
        run_len = 0;
        continue;
      }
      if (block >= super_.total_blocks) {
        return ResourceExhausted("no contiguous run of requested size");
      }
      const bool used = (bitmap[bit / 8] >> (bit % 8)) & 1;
      if (used) {
        run_len = 0;
        continue;
      }
      if (run_len == 0) {
        run_start = block;
      }
      if (++run_len == count) {
        // Mark the run allocated (may span bitmap blocks).
        for (uint64_t b = run_start; b < run_start + count; ++b) {
          const uint64_t owner = super_.bitmap_start + b / (kBlockSize * 8);
          ASSIGN_OR_RETURN(Bytes bm, ReadBlock(owner, /*metadata=*/true));
          const uint64_t obit = b % (kBlockSize * 8);
          bm[obit / 8] = static_cast<uint8_t>(bm[obit / 8] | (1u << (obit % 8)));
          RETURN_IF_ERROR(WriteBlock(owner, ByteSpan(bm.data(), bm.size()),
                                     /*metadata=*/true));
        }
        // Zero the run: freshly allocated blocks must not leak a deleted
        // file's data (ext4 guarantees this via unwritten extents; we pay
        // the explicit scrub).
        Bytes zero(kBlockSize, 0);
        for (uint64_t b = run_start; b < run_start + count; ++b) {
          RETURN_IF_ERROR(WriteBlock(b, ByteSpan(zero.data(), zero.size()),
                                     /*metadata=*/false));
        }
        return run_start;
      }
    }
  }
  return ResourceExhausted("no contiguous run of requested size");
}

Status ExtFs::FreeBlocks(uint64_t start, uint32_t count) {
  for (uint64_t b = start; b < start + count; ++b) {
    const uint64_t owner = super_.bitmap_start + b / (kBlockSize * 8);
    ASSIGN_OR_RETURN(Bytes bm, ReadBlock(owner, /*metadata=*/true));
    const uint64_t obit = b % (kBlockSize * 8);
    bm[obit / 8] = static_cast<uint8_t>(bm[obit / 8] & ~(1u << (obit % 8)));
    RETURN_IF_ERROR(WriteBlock(owner, ByteSpan(bm.data(), bm.size()), /*metadata=*/true));
  }
  return Status::Ok();
}

// -- Directories ------------------------------------------------------------
// Directory file content: sequence of [inode u32][name_len u16][name bytes].

Result<uint32_t> ExtFs::DirLookup(uint32_t dir_inode, const std::string& name) {
  ASSIGN_OR_RETURN(Inode dir, ReadInode(dir_inode));
  if (dir.kind != InodeKind::kDirectory) {
    return InvalidArgument("not a directory");
  }
  ASSIGN_OR_RETURN(Bytes content, ReadFile(dir_inode, 0, dir.size));
  ByteReader reader(ByteSpan(content.data(), content.size()));
  while (reader.remaining() >= 6) {
    const uint32_t child = reader.ReadU32();
    const uint16_t len = reader.ReadU16();
    Bytes name_bytes = reader.ReadBytes(len);
    if (!reader.Ok()) {
      return DataLoss("corrupt directory");
    }
    if (name_bytes.size() == name.size() &&
        std::equal(name_bytes.begin(), name_bytes.end(), name.begin())) {
      return child;
    }
  }
  return NotFound("no such directory entry");
}

Status ExtFs::DirAddEntry(uint32_t dir_inode, const std::string& name, uint32_t child) {
  if (name.empty() || name.size() > kMaxNameLen) {
    return InvalidArgument("bad name");
  }
  if (DirLookup(dir_inode, name).ok()) {
    return AlreadyExists("directory entry exists");
  }
  ASSIGN_OR_RETURN(Inode dir, ReadInode(dir_inode));
  Bytes entry;
  PutU32(entry, child);
  PutU16(entry, static_cast<uint16_t>(name.size()));
  entry.insert(entry.end(), name.begin(), name.end());
  return WriteFile(dir_inode, dir.size, ByteSpan(entry.data(), entry.size()));
}

Status ExtFs::DirRemoveEntry(uint32_t dir_inode, const std::string& name) {
  ASSIGN_OR_RETURN(Inode dir, ReadInode(dir_inode));
  ASSIGN_OR_RETURN(Bytes content, ReadFile(dir_inode, 0, dir.size));
  Bytes rebuilt;
  ByteReader reader(ByteSpan(content.data(), content.size()));
  bool found = false;
  while (reader.remaining() >= 6) {
    const uint32_t child = reader.ReadU32();
    const uint16_t len = reader.ReadU16();
    Bytes name_bytes = reader.ReadBytes(len);
    if (!reader.Ok()) {
      return DataLoss("corrupt directory");
    }
    if (!found && name_bytes.size() == name.size() &&
        std::equal(name_bytes.begin(), name_bytes.end(), name.begin())) {
      found = true;
      continue;
    }
    PutU32(rebuilt, child);
    PutU16(rebuilt, len);
    PutBytes(rebuilt, ByteSpan(name_bytes.data(), name_bytes.size()));
  }
  if (!found) {
    return NotFound("no such directory entry");
  }
  // Rewrite the directory: shrink size, then overwrite content.
  ASSIGN_OR_RETURN(Inode updated, ReadInode(dir_inode));
  updated.size = rebuilt.size();
  RETURN_IF_ERROR(WriteInode(dir_inode, updated));
  if (!rebuilt.empty()) {
    RETURN_IF_ERROR(WriteFile(dir_inode, 0, ByteSpan(rebuilt.data(), rebuilt.size())));
    // WriteFile may have re-grown size to rebuilt.size(); it is exact.
  }
  return Status::Ok();
}

Result<std::pair<uint32_t, std::string>> ExtFs::ResolveParent(const std::string& path) {
  std::vector<std::string> parts = SplitPath(path);
  if (parts.empty()) {
    return InvalidArgument("path names the root");
  }
  uint32_t dir = kRootInode;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    ASSIGN_OR_RETURN(dir, DirLookup(dir, parts[i]));
  }
  return std::make_pair(dir, parts.back());
}

Result<uint32_t> ExtFs::LookupPath(const std::string& path) {
  std::vector<std::string> parts = SplitPath(path);
  uint32_t inode = kRootInode;
  for (const std::string& part : parts) {
    ASSIGN_OR_RETURN(inode, DirLookup(inode, part));
  }
  return inode;
}

Result<uint32_t> ExtFs::CreateFile(const std::string& path) {
  ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  ASSIGN_OR_RETURN(uint32_t inode_num, AllocateInode());
  Inode inode;
  inode.kind = InodeKind::kFile;
  RETURN_IF_ERROR(WriteInode(inode_num, inode));
  RETURN_IF_ERROR(DirAddEntry(parent.first, parent.second, inode_num));
  return inode_num;
}

Result<uint32_t> ExtFs::Mkdir(const std::string& path) {
  ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  ASSIGN_OR_RETURN(uint32_t inode_num, AllocateInode());
  Inode inode;
  inode.kind = InodeKind::kDirectory;
  RETURN_IF_ERROR(WriteInode(inode_num, inode));
  RETURN_IF_ERROR(DirAddEntry(parent.first, parent.second, inode_num));
  return inode_num;
}

Status ExtFs::WriteFile(uint32_t inode_num, uint64_t offset, ByteSpan data) {
  ASSIGN_OR_RETURN(Inode inode, ReadInode(inode_num));
  if (inode.kind == InodeKind::kFree) {
    return NotFound("no such inode");
  }
  const uint64_t end = offset + data.size();
  uint64_t have_blocks = 0;
  for (const Extent& e : inode.extents) {
    have_blocks += e.block_count;
  }
  const uint64_t need_blocks = (end + kBlockSize - 1) / kBlockSize;
  if (need_blocks > have_blocks) {
    const auto missing = static_cast<uint32_t>(need_blocks - have_blocks);
    ASSIGN_OR_RETURN(uint64_t start, AllocateBlocks(missing));
    // Try to merge with the previous extent when physically contiguous.
    if (!inode.extents.empty() &&
        inode.extents.back().start_block + inode.extents.back().block_count == start) {
      inode.extents.back().block_count += missing;
    } else {
      if (inode.extents.size() >= kMaxExtentsPerInode) {
        RETURN_IF_ERROR(FreeBlocks(start, missing));
        return ResourceExhausted("file too fragmented (extent limit)");
      }
      inode.extents.push_back(Extent{start, missing});
    }
  }
  inode.size = std::max(inode.size, end);
  RETURN_IF_ERROR(WriteInode(inode_num, inode));

  // Write the data block by block through the extent map.
  uint64_t cursor = offset;
  size_t data_pos = 0;
  while (data_pos < data.size()) {
    const uint64_t file_block = cursor / kBlockSize;
    const uint64_t in_block = cursor % kBlockSize;
    // Map file_block -> physical block.
    uint64_t remaining_blocks = file_block;
    uint64_t phys = 0;
    for (const Extent& e : inode.extents) {
      if (remaining_blocks < e.block_count) {
        phys = e.start_block + remaining_blocks;
        break;
      }
      remaining_blocks -= e.block_count;
    }
    const size_t chunk = std::min<size_t>(kBlockSize - in_block, data.size() - data_pos);
    if (in_block == 0 && chunk == kBlockSize) {
      RETURN_IF_ERROR(WriteBlock(phys, data.subspan(data_pos, kBlockSize), /*metadata=*/false));
    } else {
      ASSIGN_OR_RETURN(Bytes block, ReadBlock(phys, /*metadata=*/false));
      std::copy(data.begin() + static_cast<ptrdiff_t>(data_pos),
                data.begin() + static_cast<ptrdiff_t>(data_pos + chunk),
                block.begin() + static_cast<ptrdiff_t>(in_block));
      RETURN_IF_ERROR(WriteBlock(phys, ByteSpan(block.data(), block.size()),
                                 /*metadata=*/false));
    }
    cursor += chunk;
    data_pos += chunk;
  }
  return Status::Ok();
}

Result<Bytes> ExtFs::ReadFile(uint32_t inode_num, uint64_t offset, uint64_t length) {
  ASSIGN_OR_RETURN(Inode inode, ReadInode(inode_num));
  if (inode.kind == InodeKind::kFree) {
    return NotFound("no such inode");
  }
  if (offset + length > inode.size) {
    if (offset >= inode.size) {
      return OutOfRange("read past end of file");
    }
    length = inode.size - offset;  // short read at EOF
  }
  Bytes out;
  out.reserve(length);
  uint64_t cursor = offset;
  while (out.size() < length) {
    const uint64_t file_block = cursor / kBlockSize;
    const uint64_t in_block = cursor % kBlockSize;
    uint64_t remaining_blocks = file_block;
    uint64_t phys = 0;
    bool mapped = false;
    for (const Extent& e : inode.extents) {
      if (remaining_blocks < e.block_count) {
        phys = e.start_block + remaining_blocks;
        mapped = true;
        break;
      }
      remaining_blocks -= e.block_count;
    }
    if (!mapped) {
      return DataLoss("file size exceeds mapped extents");
    }
    ASSIGN_OR_RETURN(Bytes block, ReadBlock(phys, /*metadata=*/false));
    const size_t chunk =
        std::min<size_t>(kBlockSize - in_block, length - out.size());
    out.insert(out.end(), block.begin() + static_cast<ptrdiff_t>(in_block),
               block.begin() + static_cast<ptrdiff_t>(in_block + chunk));
    cursor += chunk;
  }
  return out;
}

Result<std::vector<std::pair<std::string, uint32_t>>> ExtFs::ListDir(const std::string& path) {
  ASSIGN_OR_RETURN(uint32_t dir_inode, LookupPath(path));
  ASSIGN_OR_RETURN(Inode dir, ReadInode(dir_inode));
  if (dir.kind != InodeKind::kDirectory) {
    return InvalidArgument("not a directory");
  }
  std::vector<std::pair<std::string, uint32_t>> out;
  if (dir.size == 0) {
    return out;
  }
  ASSIGN_OR_RETURN(Bytes content, ReadFile(dir_inode, 0, dir.size));
  ByteReader reader(ByteSpan(content.data(), content.size()));
  while (reader.remaining() >= 6) {
    const uint32_t child = reader.ReadU32();
    const uint16_t len = reader.ReadU16();
    Bytes name = reader.ReadBytes(len);
    if (!reader.Ok()) {
      return DataLoss("corrupt directory");
    }
    out.emplace_back(std::string(name.begin(), name.end()), child);
  }
  return out;
}

Status ExtFs::Remove(const std::string& path) {
  ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  ASSIGN_OR_RETURN(uint32_t inode_num, DirLookup(parent.first, parent.second));
  ASSIGN_OR_RETURN(Inode inode, ReadInode(inode_num));
  if (inode.kind == InodeKind::kDirectory && inode.size != 0) {
    return InvalidArgument("directory not empty");
  }
  for (const Extent& e : inode.extents) {
    RETURN_IF_ERROR(FreeBlocks(e.start_block, e.block_count));
  }
  Inode freed;  // kind = kFree
  RETURN_IF_ERROR(WriteInode(inode_num, freed));
  return DirRemoveEntry(parent.first, parent.second);
}

}  // namespace hyperion::fs
