// ExtFs: an ext4-flavoured extent-based file system on an NVMe namespace.
//
// The substrate for §2.3: Hyperion wants to serve *files* (not just blocks)
// without a host CPU, which requires a real on-disk format that a layout
// annotation can describe. ExtFs keeps the structures that matter for that
// story — superblock, block bitmap, fixed inode table, extent-mapped files,
// directories as files — and drops what doesn't (journaling is provided by
// the storage layer's WAL; permissions/time stamps are out of scope).
//
// Disk layout (4 KiB blocks):
//   block 0                superblock
//   blocks 1..B            block allocation bitmap
//   blocks B+1..B+I        inode table (64 inodes/block)
//   remaining              data blocks
//
// Every structure is serialized with explicit little-endian layout — the
// property that makes the Spiffy-style annotation of annotation.h possible.

#ifndef HYPERION_SRC_FS_EXTFS_H_
#define HYPERION_SRC_FS_EXTFS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/nvme/controller.h"

namespace hyperion::fs {

constexpr uint32_t kBlockSize = nvme::kLbaSize;
constexpr uint32_t kMaxExtentsPerInode = 12;
constexpr uint32_t kMaxNameLen = 255;
constexpr uint32_t kInodeDiskSize = 256;  // ext4's common inode size
constexpr uint32_t kInodesPerBlock = kBlockSize / kInodeDiskSize;
constexpr uint32_t kRootInode = 1;

enum class InodeKind : uint8_t { kFree = 0, kFile = 1, kDirectory = 2 };

struct Extent {
  uint64_t start_block = 0;
  uint32_t block_count = 0;
};

struct Inode {
  InodeKind kind = InodeKind::kFree;
  uint64_t size = 0;  // bytes
  std::vector<Extent> extents;
};

struct SuperBlock {
  uint32_t magic = 0x45585446;  // "EXTF"
  uint64_t total_blocks = 0;
  uint64_t bitmap_start = 1;
  uint64_t bitmap_blocks = 0;
  uint64_t inode_table_start = 0;
  uint64_t inode_count = 0;
  uint64_t data_start = 0;
};

class ExtFs {
 public:
  // Writes a fresh file system across the namespace and mounts it.
  static Result<ExtFs> Format(nvme::Controller* nvme, uint32_t nsid, uint64_t inode_count = 1024);
  // Mounts an existing file system (reads + validates the superblock).
  static Result<ExtFs> Mount(nvme::Controller* nvme, uint32_t nsid);

  // -- POSIX-flavoured API (paths are absolute, '/'-separated) --------------

  Result<uint32_t> CreateFile(const std::string& path);
  Result<uint32_t> Mkdir(const std::string& path);
  Result<uint32_t> LookupPath(const std::string& path);  // -> inode number

  Status WriteFile(uint32_t inode_num, uint64_t offset, ByteSpan data);
  Result<Bytes> ReadFile(uint32_t inode_num, uint64_t offset, uint64_t length);

  Result<std::vector<std::pair<std::string, uint32_t>>> ListDir(const std::string& path);
  Status Remove(const std::string& path);  // files and empty directories

  Result<Inode> ReadInode(uint32_t inode_num);
  const SuperBlock& super() const { return super_; }

  // Blocks read/written since construction (the host-stack cost proxy).
  uint64_t MetadataBlockIos() const { return metadata_ios_; }
  uint64_t DataBlockIos() const { return data_ios_; }

 private:
  ExtFs(nvme::Controller* nvme, uint32_t nsid) : nvme_(nvme), nsid_(nsid) {}

  Result<Bytes> ReadBlock(uint64_t block, bool metadata);
  Status WriteBlock(uint64_t block, ByteSpan data, bool metadata);

  Status WriteSuper();
  Status WriteInode(uint32_t inode_num, const Inode& inode);
  Result<uint64_t> AllocateBlocks(uint32_t count);  // contiguous run
  Status FreeBlocks(uint64_t start, uint32_t count);
  Result<uint32_t> AllocateInode();

  // Splits "/a/b/c" -> parent dir inode + leaf name.
  Result<std::pair<uint32_t, std::string>> ResolveParent(const std::string& path);
  Result<uint32_t> DirLookup(uint32_t dir_inode, const std::string& name);
  Status DirAddEntry(uint32_t dir_inode, const std::string& name, uint32_t child);
  Status DirRemoveEntry(uint32_t dir_inode, const std::string& name);

  nvme::Controller* nvme_;
  uint32_t nsid_;
  SuperBlock super_;
  uint64_t metadata_ios_ = 0;
  uint64_t data_ios_ = 0;
};

}  // namespace hyperion::fs

#endif  // HYPERION_SRC_FS_EXTFS_H_
