#include "src/fs/annotation.h"

#include <algorithm>
#include <vector>

#include "src/common/check.h"

namespace hyperion::fs {

namespace {
constexpr uint32_t kAnnotationMagic = 0x414E4E4F;  // "ANNO"

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : path) {
    if (c == '/') {
      if (!current.empty()) {
        parts.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    parts.push_back(std::move(current));
  }
  return parts;
}
}  // namespace

Bytes LayoutAnnotation::Serialize() const {
  Bytes out;
  PutU32(out, kAnnotationMagic);
  PutU64(out, block_size);
  PutU64(out, inode_table_start);
  PutU64(out, inode_count);
  PutU32(out, inode_record_size);
  PutU32(out, root_inode);
  PutU32(out, field_kind);
  PutU32(out, field_size);
  PutU32(out, field_extent_count);
  PutU32(out, field_extent_array);
  PutU32(out, extent_stride);
  PutU32(out, extent_start_off);
  PutU32(out, extent_count_off);
  PutU32(out, dirent_inode_bytes);
  PutU32(out, dirent_namelen_bytes);
  out.push_back(kind_file);
  out.push_back(kind_directory);
  PutU32(out, Crc32c(ByteSpan(out.data(), out.size())));
  return out;
}

Result<LayoutAnnotation> LayoutAnnotation::Parse(ByteSpan data) {
  if (data.size() < 4 + 24 + 11 * 4 + 2 + 4) {
    return DataLoss("annotation truncated");
  }
  const size_t body = data.size() - 4;
  if (Crc32c(data.subspan(0, body)) != GetU32(data, body)) {
    return DataLoss("annotation checksum mismatch");
  }
  ByteReader reader(data.subspan(0, body));
  if (reader.ReadU32() != kAnnotationMagic) {
    return DataLoss("bad annotation magic");
  }
  LayoutAnnotation ann;
  ann.block_size = reader.ReadU64();
  ann.inode_table_start = reader.ReadU64();
  ann.inode_count = reader.ReadU64();
  ann.inode_record_size = reader.ReadU32();
  ann.root_inode = reader.ReadU32();
  ann.field_kind = reader.ReadU32();
  ann.field_size = reader.ReadU32();
  ann.field_extent_count = reader.ReadU32();
  ann.field_extent_array = reader.ReadU32();
  ann.extent_stride = reader.ReadU32();
  ann.extent_start_off = reader.ReadU32();
  ann.extent_count_off = reader.ReadU32();
  ann.dirent_inode_bytes = reader.ReadU32();
  ann.dirent_namelen_bytes = reader.ReadU32();
  ann.kind_file = reader.ReadU8();
  ann.kind_directory = reader.ReadU8();
  if (!reader.Ok()) {
    return DataLoss("annotation truncated");
  }
  return ann;
}

LayoutAnnotation GenerateAnnotation(const ExtFs& fs) {
  const SuperBlock& sb = fs.super();
  LayoutAnnotation ann;
  ann.block_size = kBlockSize;
  ann.inode_table_start = sb.inode_table_start;
  ann.inode_count = sb.inode_count;
  ann.inode_record_size = kInodeDiskSize;
  ann.root_inode = kRootInode;
  // These constants mirror SerializeInode() in extfs.cc — the annotation is
  // the machine-readable contract for that layout.
  ann.field_kind = 0;
  ann.field_size = 8;
  ann.field_extent_count = 16;
  ann.field_extent_array = 24;
  ann.extent_stride = 12;
  ann.extent_start_off = 0;
  ann.extent_count_off = 8;
  ann.kind_file = static_cast<uint8_t>(InodeKind::kFile);
  ann.kind_directory = static_cast<uint8_t>(InodeKind::kDirectory);
  return ann;
}

Result<Bytes> AnnotatedReader::ReadBlock(uint64_t block) {
  ++block_reads_;
  return nvme_->Read(nsid_, block, 1);
}

Result<AnnotatedReader::RawInode> AnnotatedReader::ReadRawInode(uint32_t inode_num) {
  if (inode_num == 0 || inode_num > ann_.inode_count) {
    return InvalidArgument("bad inode number");
  }
  const uint32_t per_block = static_cast<uint32_t>(ann_.block_size / ann_.inode_record_size);
  const uint64_t block = ann_.inode_table_start + (inode_num - 1) / per_block;
  const size_t slot = ((inode_num - 1) % per_block) * ann_.inode_record_size;
  ASSIGN_OR_RETURN(Bytes raw, ReadBlock(block));
  ByteSpan record(raw.data() + slot, ann_.inode_record_size);
  RawInode inode;
  inode.kind = record[ann_.field_kind];
  inode.size = GetU64(record, ann_.field_size);
  const uint8_t extent_count = record[ann_.field_extent_count];
  for (uint8_t e = 0; e < extent_count; ++e) {
    const size_t base = ann_.field_extent_array + static_cast<size_t>(e) * ann_.extent_stride;
    inode.extents.emplace_back(GetU64(record, base + ann_.extent_start_off),
                               GetU32(record, base + ann_.extent_count_off));
  }
  return inode;
}

Result<Bytes> AnnotatedReader::ReadByInode(uint32_t inode_num, uint64_t offset,
                                           uint64_t length) {
  ASSIGN_OR_RETURN(RawInode inode, ReadRawInode(inode_num));
  if (offset >= inode.size) {
    return OutOfRange("read past end of file");
  }
  length = std::min(length, inode.size - offset);
  Bytes out;
  out.reserve(length);
  uint64_t cursor = offset;
  while (out.size() < length) {
    const uint64_t file_block = cursor / ann_.block_size;
    const uint64_t in_block = cursor % ann_.block_size;
    uint64_t remaining = file_block;
    uint64_t phys = 0;
    bool mapped = false;
    for (const auto& [start, count] : inode.extents) {
      if (remaining < count) {
        phys = start + remaining;
        mapped = true;
        break;
      }
      remaining -= count;
    }
    if (!mapped) {
      return DataLoss("annotated extent map does not cover file size");
    }
    ASSIGN_OR_RETURN(Bytes block, ReadBlock(phys));
    const size_t chunk = std::min<size_t>(ann_.block_size - in_block, length - out.size());
    out.insert(out.end(), block.begin() + static_cast<ptrdiff_t>(in_block),
               block.begin() + static_cast<ptrdiff_t>(in_block + chunk));
    cursor += chunk;
  }
  return out;
}

Result<uint32_t> AnnotatedReader::ResolvePath(const std::string& path) {
  uint32_t inode_num = ann_.root_inode;
  for (const std::string& part : SplitPath(path)) {
    ASSIGN_OR_RETURN(RawInode dir, ReadRawInode(inode_num));
    if (dir.kind != ann_.kind_directory) {
      return InvalidArgument("path component is not a directory");
    }
    if (dir.size == 0) {
      return NotFound("no such path component: " + part);
    }
    // Read the directory file through the same annotated machinery.
    ASSIGN_OR_RETURN(Bytes content, ReadByInode(inode_num, 0, dir.size));
    ByteReader reader(ByteSpan(content.data(), content.size()));
    bool found = false;
    while (reader.remaining() >= ann_.dirent_inode_bytes + ann_.dirent_namelen_bytes) {
      const uint32_t child = reader.ReadU32();
      const uint16_t len = reader.ReadU16();
      Bytes name = reader.ReadBytes(len);
      if (!reader.Ok()) {
        return DataLoss("corrupt directory under annotation");
      }
      if (name.size() == part.size() && std::equal(name.begin(), name.end(), part.begin())) {
        inode_num = child;
        found = true;
        break;
      }
    }
    if (!found) {
      return NotFound("no such path component: " + part);
    }
  }
  return inode_num;
}

Result<Bytes> AnnotatedReader::ReadPath(const std::string& path, uint64_t offset,
                                        uint64_t length) {
  ASSIGN_OR_RETURN(uint32_t inode_num, ResolvePath(path));
  return ReadByInode(inode_num, offset, length);
}

}  // namespace hyperion::fs
