// Spiffy-style file-system layout annotation (paper §2.3, citing Sun et
// al. [155]).
//
// The idea: instead of porting a file-system *implementation* into the
// device, describe the on-disk *layout* declaratively; from the annotation
// one can generate storage-aware access code (for Hyperion: HDL) that
// resolves paths and reads file bytes directly from raw blocks. This module
// is that story executable:
//
//   - LayoutAnnotation is a serializable, self-contained description of an
//     ExtFs volume: where the inode table lives, the byte offsets of every
//     inode field, the extent record stride, the dirent wire format.
//   - AnnotatedReader *interprets the annotation* against raw NVMe block
//     reads. It deliberately shares no code with ExtFs — it cannot call it
//     — which is the property that makes it a stand-in for generated
//     hardware. If the annotation is wrong, reads fail; tests cross-check
//     it against the real implementation.
//
// Experiment E8 prices this path (device-side, no host) against the host
// FS stack (per-syscall + copy costs) for Parquet scans.

#ifndef HYPERION_SRC_FS_ANNOTATION_H_
#define HYPERION_SRC_FS_ANNOTATION_H_

#include <cstdint>
#include <string>

#include "src/common/result.h"
#include "src/fs/extfs.h"
#include "src/nvme/controller.h"

namespace hyperion::fs {

struct LayoutAnnotation {
  // Volume geometry.
  uint64_t block_size = 0;
  uint64_t inode_table_start = 0;  // block number
  uint64_t inode_count = 0;
  uint32_t inode_record_size = 0;
  uint32_t root_inode = 0;

  // Inode field map (byte offsets within the inode record).
  uint32_t field_kind = 0;
  uint32_t field_size = 0;
  uint32_t field_extent_count = 0;
  uint32_t field_extent_array = 0;
  uint32_t extent_stride = 0;
  uint32_t extent_start_off = 0;   // within one extent record
  uint32_t extent_count_off = 0;

  // Dirent wire format: [inode u32][name_len u16][name].
  uint32_t dirent_inode_bytes = 4;
  uint32_t dirent_namelen_bytes = 2;

  // Inode kind encodings.
  uint8_t kind_file = 0;
  uint8_t kind_directory = 0;

  Bytes Serialize() const;
  static Result<LayoutAnnotation> Parse(ByteSpan data);
};

// Derives the annotation for a mounted ExtFs volume from its superblock —
// the "annotation can be generated efficiently" step of [155].
LayoutAnnotation GenerateAnnotation(const ExtFs& fs);

// Annotation interpreter over raw blocks. Counts its block reads so E8 can
// compare I/O efficiency as well as CPU involvement.
class AnnotatedReader {
 public:
  AnnotatedReader(nvme::Controller* nvme, uint32_t nsid, LayoutAnnotation annotation)
      : nvme_(nvme), nsid_(nsid), ann_(annotation) {}

  // Path -> inode number, walking directories from the annotated root.
  Result<uint32_t> ResolvePath(const std::string& path);

  // Reads file bytes via the annotated extent map.
  Result<Bytes> ReadByInode(uint32_t inode_num, uint64_t offset, uint64_t length);

  Result<Bytes> ReadPath(const std::string& path, uint64_t offset, uint64_t length);

  uint64_t BlockReads() const { return block_reads_; }

 private:
  struct RawInode {
    uint8_t kind = 0;
    uint64_t size = 0;
    // Flattened (start, count) pairs.
    std::vector<std::pair<uint64_t, uint32_t>> extents;
  };

  Result<Bytes> ReadBlock(uint64_t block);
  Result<RawInode> ReadRawInode(uint32_t inode_num);

  nvme::Controller* nvme_;
  uint32_t nsid_;
  LayoutAnnotation ann_;
  uint64_t block_reads_ = 0;
};

}  // namespace hyperion::fs

#endif  // HYPERION_SRC_FS_ANNOTATION_H_
