// Per-subsystem metrics registry (PR 4).
//
// MetricsRegistry holds named counters, gauges, and histograms, each tagged
// with the obs::Subsystem it belongs to. It is the pull side of the
// observability layer: instrumented components either write through handles
// (counter/gauge/histogram lookups are interned once, then O(1) on the hot
// path) or are harvested at snapshot time by importer helpers
// (ImportEngineStats, ImportCounters) that copy the stack's existing
// counters — sim::EngineStats, ParallelEngineStats, sim::Counters — into
// the registry without those layers ever depending on obs.
//
// Snapshots are deterministic: entries are kept in sorted (subsystem, name)
// order, and ToJson() emits them in that order, so two registries built by
// bit-identical runs serialize to byte-identical JSON. Merge() adds
// counters, takes the latest gauge write, and delegates histogram merging
// to sim::Histogram::Merge (exact bucket-wise addition) — merging per-shard
// registries equals the single-registry ground truth, which obs_test pins
// as a property test.

#ifndef HYPERION_SRC_OBS_METRICS_H_
#define HYPERION_SRC_OBS_METRICS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/trace.h"
#include "src/sim/stats.h"

namespace hyperion::obs {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Interned handles: stable for the registry's lifetime. Re-registering
  // the same (subsystem, name) returns the existing instrument.
  class Counter {
   public:
    void Add(uint64_t delta) { value_ += delta; }
    void Increment() { ++value_; }
    uint64_t value() const { return value_; }

   private:
    friend class MetricsRegistry;
    uint64_t value_ = 0;
  };

  class Gauge {
   public:
    void Set(int64_t value) { value_ = value; }
    void Add(int64_t delta) { value_ += delta; }
    int64_t value() const { return value_; }

   private:
    friend class MetricsRegistry;
    int64_t value_ = 0;
  };

  Counter* RegisterCounter(Subsystem subsystem, std::string_view name);
  Gauge* RegisterGauge(Subsystem subsystem, std::string_view name);
  sim::Histogram* RegisterHistogram(Subsystem subsystem, std::string_view name);

  // Convenience for sites that touch a counter rarely enough that interning
  // a handle isn't worth the wiring.
  void Add(Subsystem subsystem, std::string_view name, uint64_t delta) {
    RegisterCounter(subsystem, name)->Add(delta);
  }
  void SetGauge(Subsystem subsystem, std::string_view name, int64_t value) {
    RegisterGauge(subsystem, name)->Set(value);
  }
  void Record(Subsystem subsystem, std::string_view name, uint64_t value) {
    RegisterHistogram(subsystem, name)->Record(value);
  }

  uint64_t CounterValue(Subsystem subsystem, std::string_view name) const;
  int64_t GaugeValue(Subsystem subsystem, std::string_view name) const;
  const sim::Histogram* FindHistogram(Subsystem subsystem, std::string_view name) const;

  // Bulk import of a sim::Counters bag (RPC endpoints, transports keep one)
  // under the given subsystem. Adds into existing counters of the same name.
  void ImportCounters(Subsystem subsystem, const sim::Counters& counters);

  // Merges `other` into this registry: counters add, gauges take the other
  // registry's value (latest-writer wins, matching what a single registry
  // would hold), histograms bucket-merge.
  void Merge(const MetricsRegistry& other);

  // Deterministic JSON document:
  //   {"counters": {"nvme/retries": 3, ...},
  //    "gauges":   {"fpga/slots_free": 2, ...},
  //    "histograms": {"rpc/latency_ns": {"count":..,"min":..,"max":..,
  //                                      "mean":..,"p50":..,"p99":..}, ...}}
  // Keys are "<subsystem>/<name>", emitted in sorted order.
  std::string ToJson() const;

  size_t size() const { return counters_.size() + gauges_.size() + histograms_.size(); }

 private:
  template <typename T>
  struct Entry {
    Subsystem subsystem;
    std::string name;
    // unique_ptr keeps handle pointers stable across vector growth.
    std::unique_ptr<T> value;
  };

  template <typename T>
  static T* Intern(std::vector<Entry<T>>& entries, Subsystem subsystem, std::string_view name);
  template <typename T>
  static const T* Lookup(const std::vector<Entry<T>>& entries, Subsystem subsystem,
                         std::string_view name);

  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<sim::Histogram>> histograms_;
};

}  // namespace hyperion::obs

#endif  // HYPERION_SRC_OBS_METRICS_H_
