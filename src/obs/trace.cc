#include "src/obs/trace.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/sim/engine.h"

namespace hyperion::obs {

std::string_view SubsystemName(Subsystem subsystem) {
  switch (subsystem) {
    case Subsystem::kEngine:
      return "engine";
    case Subsystem::kNet:
      return "net";
    case Subsystem::kRpc:
      return "rpc";
    case Subsystem::kNvme:
      return "nvme";
    case Subsystem::kPcie:
      return "pcie";
    case Subsystem::kFpga:
      return "fpga";
    case Subsystem::kStore:
      return "store";
    case Subsystem::kApp:
      return "app";
  }
  return "unknown";
}

SpanId Tracer::Open(Subsystem subsystem, std::string_view name, sim::SimTime now,
                    TraceContext parent) {
  SpanRecord span;
  span.id = Compose(origin_, ++next_span_);
  span.subsystem = subsystem;
  span.origin = origin_;
  span.begin = now;
  span.name = std::string(name);
  if (parent) {
    span.trace_id = parent.trace_id;
    span.parent = parent.parent_span;
  } else if (!stack_.empty()) {
    const SpanRecord* top = Find(stack_.back());
    span.trace_id = top->trace_id;
    span.parent = top->id;
  } else {
    span.trace_id = Compose(origin_, ++next_trace_);
    span.parent = 0;
  }
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

SpanId Tracer::Begin(Subsystem subsystem, std::string_view name, sim::SimTime now,
                     TraceContext parent) {
  if (!enabled_) {
    return 0;
  }
  const SpanId id = Open(subsystem, name, now, parent);
  stack_.push_back(id);
  return id;
}

SpanId Tracer::BeginAsync(Subsystem subsystem, std::string_view name, sim::SimTime now,
                          TraceContext parent) {
  if (!enabled_) {
    return 0;
  }
  return Open(subsystem, name, now, parent);
}

void Tracer::End(SpanId id, sim::SimTime now) {
  if (id == 0) {
    return;
  }
  SpanRecord* span = Find(id);
  CHECK(span != nullptr);
  CHECK(span->end == SpanRecord::kOpen);
  CHECK_GE(now, span->begin);
  span->end = now;
  if (!stack_.empty() && stack_.back() == id) {
    stack_.pop_back();
  }
}

TraceContext Tracer::ContextOf(SpanId span) const {
  if (span == 0) {
    return {};
  }
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->id == span) {
      return TraceContext{it->trace_id, it->id};
    }
  }
  return {};
}

SpanRecord* Tracer::Find(SpanId id) {
  // Recent spans end first in every workload we trace; scan from the back.
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->id == id) {
      return &*it;
    }
  }
  return nullptr;
}

void Tracer::Clear() {
  spans_.clear();
  stack_.clear();
}

std::vector<SpanRecord> Tracer::Merged(const std::vector<const Tracer*>& tracers) {
  std::vector<SpanRecord> merged;
  size_t total = 0;
  for (const Tracer* tracer : tracers) {
    total += tracer->spans().size();
  }
  merged.reserve(total);
  for (const Tracer* tracer : tracers) {
    merged.insert(merged.end(), tracer->spans().begin(), tracer->spans().end());
  }
  std::sort(merged.begin(), merged.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.begin != b.begin) {
      return a.begin < b.begin;
    }
    if (a.origin != b.origin) {
      return a.origin < b.origin;
    }
    return a.id < b.id;
  });
  return merged;
}

ScopedSpan::ScopedSpan(Tracer* tracer, sim::Engine* clock, Subsystem subsystem,
                       std::string_view name, TraceContext parent) {
  if (kCompiledIn && tracer != nullptr && clock != nullptr) {
    tracer_ = tracer;
    clock_ = clock;
    id_ = tracer_->Begin(subsystem, name, clock_->Now(), parent);
  }
}

void ScopedSpan::End() {
  if (id_ != 0) {
    tracer_->End(id_, clock_->Now());
    id_ = 0;
  }
}

}  // namespace hyperion::obs
