// Trace export + critical-path analysis (PR 4).
//
// Two consumers of a merged span vector:
//
//   * ToChromeTraceJson — the Chrome `trace_event` array-of-objects format
//     (load in chrome://tracing or Perfetto). Spans become "X" (complete)
//     events with pid = origin, tid = 0, ts/dur in microseconds (the format
//     is µs-based; we emit fractional µs so nanosecond precision survives),
//     cat = subsystem, and the trace/span/parent ids in args.
//   * CriticalPathReport — per-request layer breakdown: for every root span
//     (the per-request "rpc.call" or workload span), walk its tree and
//     attribute each instant of the root's interval to the deepest span
//     covering it, bucketed by subsystem. This answers the Fig. 2 question
//     directly: of a request's latency, how much was net wire time vs. NVMe
//     service vs. PCIe DMA vs. FPGA scheduling vs. RPC framing.
//
// Engine import helpers live here too: ImportEngineStats/
// ImportParallelStats copy sim::EngineStats / ParallelEngineStats into a
// MetricsRegistry, which is how the engine is "instrumented" without the
// sim layer depending on obs (and without adding a single branch to the
// per-event hot path).

#ifndef HYPERION_SRC_OBS_EXPORT_H_
#define HYPERION_SRC_OBS_EXPORT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/engine.h"
#include "src/sim/parallel.h"

namespace hyperion::obs {

// Chrome trace_event JSON: {"traceEvents":[...],"displayTimeUnit":"ns"}.
// Spans must be closed (end != kOpen); open spans are skipped.
std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans);

// Self-time per subsystem within one request tree, ns.
struct CriticalPathRow {
  TraceId trace_id = 0;
  std::string root_name;
  sim::Duration total_ns = 0;  // root span duration
  // Self-time attributed to each subsystem (deepest-covering-span wins);
  // indexed by Subsystem. Sums to total_ns.
  std::array<sim::Duration, kSubsystemCount> by_subsystem{};

  bool operator==(const CriticalPathRow&) const = default;
};

struct CriticalPathReport {
  std::vector<CriticalPathRow> rows;       // one per root span, merged order
  std::array<sim::Duration, kSubsystemCount> totals{};  // column sums

  // Human-readable table: one line per subsystem with total ns and share,
  // plus the aggregate request count. For bench printouts and EXPERIMENTS.
  std::string Summary() const;
};

// Builds the per-request breakdown from a merged, closed span vector.
CriticalPathReport BuildCriticalPathReport(const std::vector<SpanRecord>& spans);

// Engine instrumentation: copy the engine's internal tallies into the
// registry under Subsystem::kEngine. Call at snapshot points (end of run).
void ImportEngineStats(MetricsRegistry* registry, const sim::EngineStats& stats);
void ImportParallelStats(MetricsRegistry* registry, const sim::ParallelEngineStats& stats);

}  // namespace hyperion::obs

#endif  // HYPERION_SRC_OBS_EXPORT_H_
