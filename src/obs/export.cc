#include "src/obs/export.h"

#include <algorithm>
#include <unordered_map>

namespace hyperion::obs {

namespace {

// Microseconds with nanosecond remainder as three decimal digits — the
// trace_event format uses µs and fractional values keep ns precision.
void AppendMicros(std::string& out, uint64_t ns) {
  out += std::to_string(ns / 1000);
  const uint64_t frac = ns % 1000;
  if (frac != 0) {
    out += '.';
    out += static_cast<char>('0' + frac / 100);
    out += static_cast<char>('0' + frac / 10 % 10);
    out += static_cast<char>('0' + frac % 10);
  }
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (span.end == SpanRecord::kOpen) {
      continue;
    }
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"";
    out += span.name;  // span names are [a-z.]: no escaping needed
    out += "\",\"cat\":\"";
    out += SubsystemName(span.subsystem);
    out += "\",\"ph\":\"X\",\"pid\":";
    out += std::to_string(span.origin);
    out += ",\"tid\":0,\"ts\":";
    AppendMicros(out, span.begin);
    out += ",\"dur\":";
    AppendMicros(out, span.duration());
    out += ",\"args\":{\"trace\":";
    out += std::to_string(span.trace_id);
    out += ",\"span\":";
    out += std::to_string(span.id);
    out += ",\"parent\":";
    out += std::to_string(span.parent);
    out += "}}";
  }
  out += "]}";
  return out;
}

CriticalPathReport BuildCriticalPathReport(const std::vector<SpanRecord>& spans) {
  CriticalPathReport report;
  // parent id -> child indices; id -> index.
  std::unordered_map<SpanId, std::vector<size_t>> children;
  children.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].end == SpanRecord::kOpen) {
      continue;
    }
    if (spans[i].parent != 0) {
      children[spans[i].parent].push_back(i);
    }
  }

  // Self-time of span i = duration minus the union of its children's
  // intervals clipped to it: time the request spent *in this layer* and not
  // in a deeper one. Iterative DFS keeps deep rpc chains off the C stack.
  struct Interval {
    sim::SimTime begin;
    sim::SimTime end;
  };
  std::vector<Interval> clips;
  auto self_time = [&](const SpanRecord& span) -> sim::Duration {
    clips.clear();
    auto it = children.find(span.id);
    if (it != children.end()) {
      for (size_t child : it->second) {
        const SpanRecord& c = spans[child];
        const sim::SimTime b = std::max(c.begin, span.begin);
        const sim::SimTime e = std::min(c.end, span.end);
        if (e > b) {
          clips.push_back({b, e});
        }
      }
    }
    if (clips.empty()) {
      return span.duration();
    }
    std::sort(clips.begin(), clips.end(),
              [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
    sim::Duration covered = 0;
    sim::SimTime cursor = span.begin;
    for (const Interval& clip : clips) {
      const sim::SimTime b = std::max(clip.begin, cursor);
      if (clip.end > b) {
        covered += clip.end - b;
        cursor = clip.end;
      }
    }
    return span.duration() - covered;
  };

  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& root = spans[i];
    if (root.parent != 0 || root.end == SpanRecord::kOpen) {
      continue;
    }
    CriticalPathRow row;
    row.trace_id = root.trace_id;
    row.root_name = root.name;
    row.total_ns = root.duration();
    std::vector<size_t> stack = {i};
    while (!stack.empty()) {
      const size_t index = stack.back();
      stack.pop_back();
      const SpanRecord& span = spans[index];
      row.by_subsystem[static_cast<size_t>(span.subsystem)] += self_time(span);
      auto it = children.find(span.id);
      if (it != children.end()) {
        stack.insert(stack.end(), it->second.begin(), it->second.end());
      }
    }
    for (size_t s = 0; s < kSubsystemCount; ++s) {
      report.totals[s] += row.by_subsystem[s];
    }
    report.rows.push_back(std::move(row));
  }
  return report;
}

std::string CriticalPathReport::Summary() const {
  sim::Duration grand = 0;
  for (sim::Duration t : totals) {
    grand += t;
  }
  std::string out = "critical path over " + std::to_string(rows.size()) + " request(s), " +
                    std::to_string(grand) + " ns total\n";
  for (size_t s = 0; s < kSubsystemCount; ++s) {
    if (totals[s] == 0) {
      continue;
    }
    const uint64_t permille = grand == 0 ? 0 : totals[s] * 1000 / grand;
    out += "  ";
    out += SubsystemName(static_cast<Subsystem>(s));
    out += ": " + std::to_string(totals[s]) + " ns (" + std::to_string(permille / 10) + "." +
           std::to_string(permille % 10) + "%)\n";
  }
  return out;
}

void ImportEngineStats(MetricsRegistry* registry, const sim::EngineStats& stats) {
  registry->Add(Subsystem::kEngine, "scheduled", stats.scheduled);
  registry->Add(Subsystem::kEngine, "wheel_scheduled", stats.wheel_scheduled);
  registry->Add(Subsystem::kEngine, "heap_scheduled", stats.heap_scheduled);
  registry->Add(Subsystem::kEngine, "inline_callbacks", stats.inline_callbacks);
  registry->Add(Subsystem::kEngine, "boxed_callbacks", stats.boxed_callbacks);
  registry->Add(Subsystem::kEngine, "pool_slabs", stats.pool_slabs);
  registry->Add(Subsystem::kEngine, "messages_scheduled", stats.messages_scheduled);
}

void ImportParallelStats(MetricsRegistry* registry, const sim::ParallelEngineStats& stats) {
  registry->Add(Subsystem::kEngine, "epochs", stats.epochs);
  registry->Add(Subsystem::kEngine, "events_run", stats.events_run);
  registry->Add(Subsystem::kEngine, "messages", stats.messages);
  registry->Add(Subsystem::kEngine, "cross_shard_messages", stats.cross_shard_messages);
  registry->Add(Subsystem::kEngine, "max_outbox", stats.max_outbox);
  registry->Add(Subsystem::kEngine, "self_delivered", stats.self_delivered);
  registry->Add(Subsystem::kEngine, "windows_run", stats.windows_run);
  registry->Add(Subsystem::kEngine, "windows_skipped", stats.windows_skipped);
}

}  // namespace hyperion::obs
