// Sim-time distributed tracing (PR 4).
//
// The paper's central claim is that a CPU-free datapath is *inspectable and
// predictable*: hop counts, queueing, and reconfiguration latency are
// first-class quantities (§1, Fig. 2). This module makes them observable as
// spans — named intervals of virtual time with parent links and subsystem
// tags — without perturbing the simulation at all: tracing never advances
// the clock, never draws from a workload RNG, and never changes a modelled
// byte count, so a run with tracing on is time-identical to a run with it
// off.
//
// Determinism contract (the property the golden-trace regression pins):
//
//   * Span and trace ids are derived from (origin, seq): `origin` is a
//     logical id the creator assigns (a cluster node id, a ParallelEngine
//     source id — never a thread id or shard index, which change with the
//     layout), and `seq` is the tracer's own call counter, which advances
//     in the origin's deterministic execution order. No wall clock, no
//     addresses, no randomness.
//   * Timestamps are virtual (sim::SimTime), so begin/end are bit-stable.
//   * Merged(...) orders spans across tracers by (begin, origin, id) — the
//     same merge discipline sim::ParallelEngine uses for messages — so the
//     merged trace of a sharded run is bit-identical for any shard layout,
//     threads on or off.
//
// Cross-shard stitching: a caller opens a span, packs {trace_id, span_id}
// into a TraceContext, and the RPC layer carries it inside the request
// frame (as wire metadata that is excluded from the modelled latency — see
// dpu/rpc.cc). The callee's tracer opens its serve span with that context
// as the explicit parent, so one request's spans form a single tree even
// when its hops execute on different ParallelEngine shards.
//
// Cost model: every instrumentation site is guarded by a null/enabled
// check, so an untraced run pays one predictable branch per site (none of
// which sit in the engine's per-event hot path — bench_engine is the
// regression gate). Building with -DHYPERION_OBS_DISABLED turns kCompiledIn
// into a constant false and the optimizer deletes the sites entirely.

#ifndef HYPERION_SRC_OBS_TRACE_H_
#define HYPERION_SRC_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/time.h"

namespace hyperion::sim {
class Engine;
}  // namespace hyperion::sim

namespace hyperion::obs {

#ifdef HYPERION_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

// Layer tags for spans and the per-request critical-path report. One value
// per instrumented substrate of the Fig. 2 datapath.
enum class Subsystem : uint8_t {
  kEngine = 0,  // simulation engine / harness-level run windows
  kNet,         // transports + cross-shard wire hops
  kRpc,         // RPC client/server/sharded-node layer
  kNvme,        // NVMe controller + media
  kPcie,        // PCIe DMA + link recovery
  kFpga,        // fabric reconfiguration + slot scheduling
  kStore,       // single-level store / KV backends
  kApp,         // everything workload-level
};
inline constexpr size_t kSubsystemCount = 8;

// Stable lower_snake name ("engine", "net", ...), used as the Chrome trace
// category and in report rows.
std::string_view SubsystemName(Subsystem subsystem);

// 0 is "invalid"/"untraced" for both.
using SpanId = uint64_t;
using TraceId = uint64_t;

// What crosses an RPC boundary: enough to attach a remote child span to
// its parent. 16 bytes on the wire (see dpu/rpc.cc trailer codec).
struct TraceContext {
  TraceId trace_id = 0;
  SpanId parent_span = 0;

  explicit operator bool() const { return trace_id != 0; }
  bool operator==(const TraceContext&) const = default;
};

// One closed (or still-open, end == kOpen) span. Plain value: the golden
// trace regression compares vectors of these for bit-identity.
struct SpanRecord {
  static constexpr sim::SimTime kOpen = ~0ull;

  SpanId id = 0;
  TraceId trace_id = 0;
  SpanId parent = 0;  // 0 = root
  uint32_t origin = 0;
  Subsystem subsystem = Subsystem::kApp;
  sim::SimTime begin = 0;
  sim::SimTime end = kOpen;
  std::string name;

  sim::Duration duration() const { return end == kOpen ? 0 : end - begin; }
  bool operator==(const SpanRecord&) const = default;
};

// Per-origin span recorder. Not thread-safe by design: under the parallel
// engine each tracer is owned by one logical node and therefore touched by
// exactly one shard worker during a window (the same contract as the node's
// private engine); merge across tracers only at quiescence.
class Tracer {
 public:
  explicit Tracer(uint32_t origin = 0) : origin_(origin) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  uint32_t origin() const { return origin_; }

  // Runtime kill switch: a disabled tracer records nothing and hands out
  // id 0 (which every End/annotation site treats as a no-op).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Fresh trace id, derived from (origin, seq).
  TraceId NewTraceId() {
    if (!enabled_) {
      return 0;
    }
    return Compose(origin_, ++next_trace_);
  }

  // Opens a synchronous (stack-scoped) span at virtual time `now`. With an
  // explicit `parent` context the span attaches there (cross-boundary
  // stitch); otherwise it nests under the tracer's innermost open
  // synchronous span, or roots a fresh trace if none is open. The span
  // joins the nesting stack: spans opened before its End() become its
  // children. Returns 0 when disabled.
  SpanId Begin(Subsystem subsystem, std::string_view name, sim::SimTime now,
               TraceContext parent = {});

  // Opens a detached span: same parent resolution, but the span never
  // joins the nesting stack — use for intervals that outlive the current
  // call frame (an async RPC in flight). Returns 0 when disabled.
  SpanId BeginAsync(Subsystem subsystem, std::string_view name, sim::SimTime now,
                    TraceContext parent = {});

  // Closes `id` at `now`. id 0 is a no-op, so call sites need no guards.
  void End(SpanId id, sim::SimTime now);

  // Zero-duration marker span (begin == end): fault injections, migrations.
  void Instant(Subsystem subsystem, std::string_view name, sim::SimTime now,
               TraceContext parent = {}) {
    End(BeginAsync(subsystem, name, now, parent), now);
  }

  // Context that makes `span` the parent of remote children.
  TraceContext ContextOf(SpanId span) const;

  const std::vector<SpanRecord>& spans() const { return spans_; }
  size_t open_depth() const { return stack_.size(); }
  void Clear();

  // Deterministic cross-tracer merge: (begin, origin, id) order. Origins
  // must be unique across the merged tracers for the order to be total.
  static std::vector<SpanRecord> Merged(const std::vector<const Tracer*>& tracers);

 private:
  static SpanId Compose(uint32_t origin, uint64_t seq) {
    // (origin, seq) packed so ids are unique across tracers with distinct
    // origins and increase in creation order within one tracer.
    return (static_cast<uint64_t>(origin) + 1) << 40 | seq;
  }

  SpanId Open(Subsystem subsystem, std::string_view name, sim::SimTime now,
              TraceContext parent);
  SpanRecord* Find(SpanId id);

  uint32_t origin_;
  bool enabled_ = true;
  uint64_t next_span_ = 0;
  uint64_t next_trace_ = 0;
  std::vector<SpanRecord> spans_;
  std::vector<SpanId> stack_;  // open synchronous spans, innermost last
};

// RAII span over a scope whose virtual duration is whatever the given
// engine's clock advanced by. The destructor closes the span at
// clock->Now(), so early returns (error paths, RETURN_IF_ERROR) still end
// their spans and never wedge the tracer's nesting stack. A null tracer
// (or HYPERION_OBS_DISABLED) makes construction and destruction free.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, sim::Engine* clock, Subsystem subsystem, std::string_view name,
             TraceContext parent = {});
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { End(); }

  // Closes the span at the clock's current time; later End calls are no-ops.
  void End();

  SpanId id() const { return id_; }
  // Context parenting remote/child work under this span.
  TraceContext context() const {
    return tracer_ != nullptr ? tracer_->ContextOf(id_) : TraceContext{};
  }

 private:
  Tracer* tracer_ = nullptr;
  sim::Engine* clock_ = nullptr;
  SpanId id_ = 0;
};

}  // namespace hyperion::obs

#endif  // HYPERION_SRC_OBS_TRACE_H_
