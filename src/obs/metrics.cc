#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace hyperion::obs {

namespace {

// Sorted-insert comparison key; keeps every entry vector in (subsystem,
// name) order so snapshots are deterministic without a sort at export time.
bool KeyLess(Subsystem a_sub, std::string_view a_name, Subsystem b_sub, std::string_view b_name) {
  if (a_sub != b_sub) {
    return static_cast<uint8_t>(a_sub) < static_cast<uint8_t>(b_sub);
  }
  return a_name < b_name;
}

void AppendJsonKey(std::string& out, Subsystem subsystem, const std::string& name) {
  out += '"';
  out += SubsystemName(subsystem);
  out += '/';
  out += name;  // instrument names are [a-z0-9_.]: no escaping needed
  out += '"';
}

}  // namespace

template <typename T>
T* MetricsRegistry::Intern(std::vector<Entry<T>>& entries, Subsystem subsystem,
                           std::string_view name) {
  auto it = std::lower_bound(entries.begin(), entries.end(), name,
                             [subsystem](const Entry<T>& e, std::string_view key) {
                               return KeyLess(e.subsystem, e.name, subsystem, key);
                             });
  if (it != entries.end() && it->subsystem == subsystem && it->name == name) {
    return it->value.get();
  }
  it = entries.insert(it, Entry<T>{subsystem, std::string(name), std::make_unique<T>()});
  return it->value.get();
}

template <typename T>
const T* MetricsRegistry::Lookup(const std::vector<Entry<T>>& entries, Subsystem subsystem,
                                 std::string_view name) {
  auto it = std::lower_bound(entries.begin(), entries.end(), name,
                             [subsystem](const Entry<T>& e, std::string_view key) {
                               return KeyLess(e.subsystem, e.name, subsystem, key);
                             });
  if (it != entries.end() && it->subsystem == subsystem && it->name == name) {
    return it->value.get();
  }
  return nullptr;
}

MetricsRegistry::Counter* MetricsRegistry::RegisterCounter(Subsystem subsystem,
                                                           std::string_view name) {
  return Intern(counters_, subsystem, name);
}

MetricsRegistry::Gauge* MetricsRegistry::RegisterGauge(Subsystem subsystem,
                                                       std::string_view name) {
  return Intern(gauges_, subsystem, name);
}

sim::Histogram* MetricsRegistry::RegisterHistogram(Subsystem subsystem, std::string_view name) {
  return Intern(histograms_, subsystem, name);
}

uint64_t MetricsRegistry::CounterValue(Subsystem subsystem, std::string_view name) const {
  const Counter* counter = Lookup(counters_, subsystem, name);
  return counter == nullptr ? 0 : counter->value();
}

int64_t MetricsRegistry::GaugeValue(Subsystem subsystem, std::string_view name) const {
  const Gauge* gauge = Lookup(gauges_, subsystem, name);
  return gauge == nullptr ? 0 : gauge->value();
}

const sim::Histogram* MetricsRegistry::FindHistogram(Subsystem subsystem,
                                                     std::string_view name) const {
  return Lookup(histograms_, subsystem, name);
}

void MetricsRegistry::ImportCounters(Subsystem subsystem, const sim::Counters& counters) {
  for (const auto& [name, value] : counters.Snapshot()) {
    RegisterCounter(subsystem, name)->Add(value);
  }
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& entry : other.counters_) {
    RegisterCounter(entry.subsystem, entry.name)->Add(entry.value->value());
  }
  for (const auto& entry : other.gauges_) {
    RegisterGauge(entry.subsystem, entry.name)->Set(entry.value->value());
  }
  for (const auto& entry : other.histograms_) {
    RegisterHistogram(entry.subsystem, entry.name)->Merge(*entry.value);
  }
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& entry : counters_) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonKey(out, entry.subsystem, entry.name);
    out += ':';
    out += std::to_string(entry.value->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& entry : gauges_) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonKey(out, entry.subsystem, entry.name);
    out += ':';
    out += std::to_string(entry.value->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& entry : histograms_) {
    if (!first) {
      out += ',';
    }
    first = false;
    const sim::Histogram& h = *entry.value;
    AppendJsonKey(out, entry.subsystem, entry.name);
    out += ":{\"count\":" + std::to_string(h.count());
    out += ",\"min\":" + std::to_string(h.min());
    out += ",\"max\":" + std::to_string(h.max());
    // llround keeps the mean integral so the document stays byte-stable
    // across libc float-formatting differences.
    out += ",\"mean\":" + std::to_string(h.count() == 0 ? 0 : std::llround(h.Mean()));
    out += ",\"p50\":" + std::to_string(h.P50());
    out += ",\"p99\":" + std::to_string(h.P99());
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace hyperion::obs
