// Spatial slot scheduler: coarse-grained multiplexing of fabric regions.
//
// This is the "slot-style spatial slicing of FPGA resources" of §2.2
// (AmorphOS/Coyote-style): tenants ask for their accelerator to be resident;
// the scheduler reuses a region already holding the same bitstream, takes a
// free region, or evicts the least-recently-used idle region and pays a
// partial reconfiguration. Regions pinned by in-flight work are never
// evicted — spatial sharing means a resident tenant's performance is
// untouched by neighbours (contrast with the time-shared CPU baseline of
// experiment E7).

#ifndef HYPERION_SRC_FPGA_SCHEDULER_H_
#define HYPERION_SRC_FPGA_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/fpga/fabric.h"

namespace hyperion::fpga {

class SlotScheduler {
 public:
  SlotScheduler(sim::Engine* engine, Fabric* fabric);

  struct Placement {
    RegionId region = 0;
    bool reconfigured = false;
    sim::Duration reconfig_latency = 0;
  };

  // Makes `bitstream` resident somewhere and pins the region. A candidate
  // region whose reconfiguration fails (an injected slot fault) is skipped
  // and the request migrates to the next healthy region — graceful
  // degradation instead of a hard error. kResourceExhausted when every
  // region is pinned by other work or failed.
  Result<Placement> Acquire(const Bitstream& bitstream);

  // Unpins a region previously returned by Acquire.
  Status Release(RegionId region);

  // Attaches a tracer (null detaches): Acquire emits an fpga.acquire span
  // and an fpga.migrate marker for every failed-slot migration.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  // Times an Acquire moved on after a candidate slot failed under it.
  uint64_t migrations() const { return migrations_; }

  // Regions currently unpinned — the scheduler-level credit pool a caller
  // can consult before Acquire instead of eating the rejection.
  uint32_t free_regions() const {
    uint32_t free = 0;
    for (const auto& region : state_) {
      free += region.pins == 0 ? 1 : 0;
    }
    return free;
  }

  const sim::Counters& counters() const { return counters_; }

 private:
  struct RegionState {
    uint32_t pins = 0;
    sim::SimTime last_used = 0;
  };

  sim::Engine* engine_;
  Fabric* fabric_;
  obs::Tracer* tracer_ = nullptr;
  std::vector<RegionState> state_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t migrations_ = 0;
  sim::Counters counters_;
};

}  // namespace hyperion::fpga

#endif  // HYPERION_SRC_FPGA_SCHEDULER_H_
