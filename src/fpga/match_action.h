// FPGA-resident match/action pipeline: verified eBPF stages as chained
// fabric designs (PR 8).
//
// The XDP ingress path of §2.4 is a chain of match/action stages — ban
// filter, flow accounting, load-balancer match — each a verified eBPF
// program lowered by hdl_codegen into its own reconfigurable region and
// stitched to its neighbours over the AXI interconnect. Two properties of
// that arrangement carry the performance argument:
//
//   * Spatial pipelining: every stage is a feed-forward pipeline (the
//     verifier rejects back edges), so a region accepts a new packet every
//     II cycles (structural-hazard bound from hdl_codegen). Stages overlap:
//     a batch of N packets occupies the chain for
//     fill + (N - 1) * II_bottleneck, not N * latency. Throughput is set by
//     the *worst stage's II*, not the sum of stage latencies.
//   * Deterministic timing: each region runs at its own post-route Fmax
//     regardless of neighbours (fpga::Fabric contract), so batch service
//     time is pure arithmetic — no interference terms.
//
// Functional behaviour comes from the instrumented interpreter (the same
// contract as Hyperion::ProcessPacket); time is charged at batch
// granularity from the pipelined model. Programs that fail verification
// are rejected here, before any plan is built or any bitstream touches the
// fabric.

#ifndef HYPERION_SRC_FPGA_MATCH_ACTION_H_
#define HYPERION_SRC_FPGA_MATCH_ACTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/ebpf/hdl_codegen.h"
#include "src/ebpf/insn.h"
#include "src/ebpf/maps.h"
#include "src/ebpf/vm.h"
#include "src/fpga/axi.h"
#include "src/fpga/fabric.h"
#include "src/sim/time.h"

namespace hyperion::fpga {

// XDP verdict conventions (program r0).
inline constexpr uint64_t kXdpAborted = 0;
inline constexpr uint64_t kXdpDrop = 1;
inline constexpr uint64_t kXdpPass = 2;
inline constexpr uint64_t kXdpTx = 3;
inline constexpr uint64_t kXdpRedirect = 4;

struct MatchActionStageSpec {
  ebpf::Program program;
  ebpf::CodegenOptions codegen;
};

struct MatchActionStageInfo {
  std::string name;
  RegionId region = 0;
  uint32_t initiation_interval = 0;  // cycles between packet admissions
  uint32_t critical_path_cycles = 0;
  double mean_ilp = 0.0;
  double fmax_mhz = 0.0;
  uint64_t packets = 0;
  uint64_t serial_cycles = 0;  // profile-weighted cycles, unpipelined
};

class MatchActionPipeline {
 public:
  // Verifies, compiles and places one region per stage. Rejected programs
  // never reach hdl_codegen (the Verify error is returned as-is); plans
  // that compile but do not fit a region fail at Reconfigure time.
  static Result<std::unique_ptr<MatchActionPipeline>> Create(
      Fabric* fabric, AxiInterconnect* axi, ebpf::MapRegistry* maps,
      std::vector<MatchActionStageSpec> stages, TenantId tenant = kNoTenant);

  size_t StageCount() const { return stages_.size(); }
  const MatchActionStageInfo& stage(size_t i) const { return stages_[i].info; }

  // Functional execution of stage `i` on `ctx` (the frame bytes): returns
  // the program's r0 verdict and accrues the stage's execution profile.
  Result<uint64_t> RunStage(size_t i, MutableByteSpan ctx);

  // Pipelined service time for a batch of `packets` frames through the
  // whole chain: per-stage fill (critical path at the stage's Fmax) plus an
  // AXI descriptor hop between stages, then one bottleneck-II admission
  // slot per remaining packet.
  sim::Duration BatchTime(uint64_t packets) const;

  // Steady-state admission period of the chain (the bottleneck stage's II
  // at its Fmax); capacity in packets/s is 1e9 / this.
  sim::Duration AdmissionPeriod() const;

  // Region + cycle count to charge for a batch (the bottleneck stage does
  // the most cycles of work; the others overlap under it).
  RegionId BottleneckRegion() const { return stages_[bottleneck_].info.region; }
  uint64_t BatchCycles(uint64_t packets) const;

 private:
  struct Stage {
    ebpf::Program program;
    ebpf::PipelinePlan plan;
    MatchActionStageInfo info;
    std::vector<uint64_t> exec_counts;
  };

  MatchActionPipeline(Fabric* fabric, AxiInterconnect* axi, ebpf::MapRegistry* maps)
      : fabric_(fabric), axi_(axi), vm_(maps) {}

  Fabric* fabric_;
  AxiInterconnect* axi_;
  ebpf::Vm vm_;
  std::vector<Stage> stages_;
  size_t bottleneck_ = 0;
};

}  // namespace hyperion::fpga

#endif  // HYPERION_SRC_FPGA_MATCH_ACTION_H_
