#include "src/fpga/match_action.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/ebpf/verifier.h"

namespace hyperion::fpga {

namespace {

// Match/action stages exchange a packet descriptor (not the payload) over
// the interconnect between regions.
constexpr uint64_t kDescriptorBytes = 64;

// Per-stage scratch/table window in the bus address map, granted at
// configuration time (§2.5: loader-enforced isolation instead of an MMU).
constexpr uint64_t kStageWindowBase = 0x4000'0000ull;
constexpr uint64_t kStageWindowBytes = 1ull << 20;

Bitstream StageBitstream(const ebpf::Program& program, const ebpf::CodegenOptions& options,
                         TenantId tenant) {
  Bitstream bitstream;
  bitstream.name = "ma/" + program.name;
  // Partial bitstream scale: a fixed shell interface plus per-instruction
  // logic — keeps reconfiguration in the paper's 10-100 ms band without
  // multi-MB loads for a 20-instruction filter.
  bitstream.size_bytes = 512 * 1024 + 4096ull * program.insns.size();
  bitstream.slices = 1 + static_cast<uint32_t>(program.insns.size() / 64);
  bitstream.fmax_mhz = options.fmax_mhz;
  bitstream.tenant = tenant;
  return bitstream;
}

}  // namespace

Result<std::unique_ptr<MatchActionPipeline>> MatchActionPipeline::Create(
    Fabric* fabric, AxiInterconnect* axi, ebpf::MapRegistry* maps,
    std::vector<MatchActionStageSpec> stages, TenantId tenant) {
  if (stages.empty()) {
    return InvalidArgument("match/action pipeline needs at least one stage");
  }
  auto pipeline =
      std::unique_ptr<MatchActionPipeline>(new MatchActionPipeline(fabric, axi, maps));
  RegionId next_region = 0;
  for (MatchActionStageSpec& spec : stages) {
    // Gate: unverifiable programs are rejected before any plan is built.
    RETURN_IF_ERROR(ebpf::Verify(spec.program, *maps).status());
    ASSIGN_OR_RETURN(ebpf::PipelinePlan plan,
                     ebpf::CompileToPipeline(spec.program, spec.codegen));
    // Claim the next unloaded, healthy region.
    RegionId region = next_region;
    while (region < fabric->RegionCount() && (fabric->IsLoaded(region) || fabric->IsFailed(region))) {
      ++region;
    }
    if (region >= fabric->RegionCount()) {
      return ResourceExhausted("no free fabric region for stage " + spec.program.name);
    }
    RETURN_IF_ERROR(
        fabric->Reconfigure(region, StageBitstream(spec.program, spec.codegen, tenant)).status());
    const uint64_t window_base = kStageWindowBase + uint64_t{region} * kStageWindowBytes;
    RETURN_IF_ERROR(axi->GrantWindow(region, window_base, window_base + kStageWindowBytes));
    next_region = region + 1;

    Stage stage;
    stage.info.name = spec.program.name;
    stage.info.region = region;
    stage.info.initiation_interval = plan.InitiationInterval();
    stage.info.critical_path_cycles = plan.CriticalPathCycles();
    stage.info.mean_ilp = plan.MeanIlp();
    stage.info.fmax_mhz = spec.codegen.fmax_mhz;
    stage.exec_counts.assign(spec.program.insns.size(), 0);
    stage.program = std::move(spec.program);
    stage.plan = std::move(plan);
    pipeline->stages_.push_back(std::move(stage));
  }
  // Bottleneck: the stage with the longest admission period in wall time.
  for (size_t i = 1; i < pipeline->stages_.size(); ++i) {
    const auto period = [&](size_t s) {
      return sim::CyclesToTime(pipeline->stages_[s].info.initiation_interval,
                               pipeline->stages_[s].info.fmax_mhz);
    };
    if (period(i) > period(pipeline->bottleneck_)) {
      pipeline->bottleneck_ = i;
    }
  }
  return pipeline;
}

Result<uint64_t> MatchActionPipeline::RunStage(size_t i, MutableByteSpan ctx) {
  CHECK_LT(i, stages_.size());
  Stage& stage = stages_[i];
  std::fill(stage.exec_counts.begin(), stage.exec_counts.end(), 0);
  vm_.set_exec_counts(&stage.exec_counts);
  Result<ebpf::ExecResult> result = vm_.Run(stage.program, ctx);
  vm_.set_exec_counts(nullptr);
  RETURN_IF_ERROR(result.status());
  ++stage.info.packets;
  stage.info.serial_cycles += ebpf::EstimateCycles(stage.plan, stage.exec_counts);
  return result->return_value;
}

sim::Duration MatchActionPipeline::AdmissionPeriod() const {
  const Stage& stage = stages_[bottleneck_];
  return sim::CyclesToTime(stage.info.initiation_interval, stage.info.fmax_mhz);
}

sim::Duration MatchActionPipeline::BatchTime(uint64_t packets) const {
  if (packets == 0) {
    return 0;
  }
  sim::Duration fill = 0;
  for (const Stage& stage : stages_) {
    fill += sim::CyclesToTime(stage.info.critical_path_cycles, stage.info.fmax_mhz);
  }
  fill += static_cast<sim::Duration>(stages_.size() - 1) *
          axi_->TransactionTime(kDescriptorBytes);
  return fill + (packets - 1) * AdmissionPeriod();
}

uint64_t MatchActionPipeline::BatchCycles(uint64_t packets) const {
  if (packets == 0) {
    return 0;
  }
  const Stage& stage = stages_[bottleneck_];
  return stage.info.critical_path_cycles +
         (packets - 1) * uint64_t{stage.info.initiation_interval};
}

}  // namespace hyperion::fpga
