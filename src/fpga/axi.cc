#include "src/fpga/axi.h"

#include <algorithm>

namespace hyperion::fpga {

std::string_view PortName(Port port) {
  switch (port) {
    case Port::kDram:
      return "dram";
    case Port::kHbm:
      return "hbm";
    case Port::kNvme0:
      return "nvme0";
    case Port::kNvme1:
      return "nvme1";
    case Port::kNvme2:
      return "nvme2";
    case Port::kNvme3:
      return "nvme3";
    case Port::kNet0:
      return "net0";
    case Port::kNet1:
      return "net1";
  }
  return "?";
}

Status AxiInterconnect::AddRoute(uint64_t base, uint64_t limit, Port port) {
  if (base >= limit) {
    return InvalidArgument("empty route range");
  }
  for (const Range& r : routes_) {
    if (base < r.limit && r.base < limit) {
      return AlreadyExists("route overlaps an existing range");
    }
  }
  routes_.push_back(Range{base, limit, port});
  std::sort(routes_.begin(), routes_.end(),
            [](const Range& a, const Range& b) { return a.base < b.base; });
  return Status::Ok();
}

Result<Port> AxiInterconnect::Route(uint64_t addr) const {
  // Binary search over sorted, non-overlapping ranges.
  auto it = std::upper_bound(routes_.begin(), routes_.end(), addr,
                             [](uint64_t a, const Range& r) { return a < r.base; });
  if (it == routes_.begin()) {
    return NotFound("address not mapped by the interconnect");
  }
  --it;
  if (addr >= it->limit) {
    return NotFound("address not mapped by the interconnect");
  }
  return it->port;
}

Status AxiInterconnect::GrantWindow(RegionId region, uint64_t base, uint64_t limit) {
  if (base >= limit) {
    return InvalidArgument("empty window");
  }
  windows_.push_back(Window{region, base, limit});
  return Status::Ok();
}

void AxiInterconnect::RevokeAll(RegionId region) {
  windows_.erase(std::remove_if(windows_.begin(), windows_.end(),
                                [region](const Window& w) { return w.region == region; }),
                 windows_.end());
}

Result<Port> AxiInterconnect::CheckedAccess(RegionId region, uint64_t addr, uint64_t len) {
  if (len == 0) {
    return InvalidArgument("zero-length access");
  }
  const uint64_t end = addr + len;
  bool allowed = false;
  for (const Window& w : windows_) {
    if (w.region == region && addr >= w.base && end <= w.limit) {
      allowed = true;
      break;
    }
  }
  if (!allowed) {
    counters_.Increment("isolation_violations");
    return PermissionDenied("access outside granted windows");
  }
  counters_.Increment("transactions");
  counters_.Add("bytes", len);
  return Route(addr);
}

}  // namespace hyperion::fpga
