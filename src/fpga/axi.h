// AXI-stream interconnect with address-range routing and per-region
// isolation windows.
//
// Figure 2's datapath runs every access through MUX/DEMUX/arbiter blocks
// that route by bus address: some ranges map to FPGA DRAM/HBM, others to
// the NVMe PCIe BARs (this is how §2.1's static segment-location split is
// realized in hardware). In a multi-tenant deployment (§2.5) the same
// interconnect is also the isolation mechanism: each region is granted
// address windows at configuration time, checked on every transaction —
// compiler/loader-enforced isolation instead of an MMU.

#ifndef HYPERION_SRC_FPGA_AXI_H_
#define HYPERION_SRC_FPGA_AXI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/fpga/fabric.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace hyperion::fpga {

enum class Port : uint8_t {
  kDram = 0,
  kHbm = 1,
  kNvme0 = 2,
  kNvme1 = 3,
  kNvme2 = 4,
  kNvme3 = 5,
  kNet0 = 6,
  kNet1 = 7,
};

std::string_view PortName(Port port);

struct AxiParams {
  sim::Duration arbiter_latency = 12;  // ns per transaction through the mux tree
  double bus_gbps = 512.0;             // 512-bit bus at ~1 GHz
};

class AxiInterconnect {
 public:
  explicit AxiInterconnect(AxiParams params = AxiParams()) : params_(params) {}

  // Routing: [base, limit) -> port. Ranges must not overlap.
  Status AddRoute(uint64_t base, uint64_t limit, Port port);
  Result<Port> Route(uint64_t addr) const;

  // Isolation windows: region may touch [base, limit). Multiple grants per
  // region are allowed.
  Status GrantWindow(RegionId region, uint64_t base, uint64_t limit);
  void RevokeAll(RegionId region);

  // Checks an access by `region` to [addr, addr+len) and returns the target
  // port. kPermissionDenied if outside every granted window.
  Result<Port> CheckedAccess(RegionId region, uint64_t addr, uint64_t len);

  // Transaction latency for `bytes` over the bus.
  sim::Duration TransactionTime(uint64_t bytes) const {
    return params_.arbiter_latency + sim::TransferTime(bytes, params_.bus_gbps);
  }

  const sim::Counters& counters() const { return counters_; }

 private:
  struct Range {
    uint64_t base;
    uint64_t limit;
    Port port;
  };
  struct Window {
    RegionId region;
    uint64_t base;
    uint64_t limit;
  };

  AxiParams params_;
  std::vector<Range> routes_;    // sorted by base
  std::vector<Window> windows_;
  sim::Counters counters_;
};

}  // namespace hyperion::fpga

#endif  // HYPERION_SRC_FPGA_AXI_H_
