#include "src/fpga/fabric.h"

#include "src/common/check.h"

namespace hyperion::fpga {

Fabric::Fabric(sim::Engine* engine, FabricConfig config)
    : engine_(engine), config_(config), regions_(config.regions), failed_(config.regions, 0) {
  CHECK_GT(config_.regions, 0u);
  CHECK_GT(config_.icap_mbps, 0.0);
}

sim::Duration Fabric::ReconfigLatency(uint64_t bitstream_bytes) const {
  const double seconds = static_cast<double>(bitstream_bytes) / (config_.icap_mbps * 1e6);
  return config_.reconfig_fixed_overhead + static_cast<sim::Duration>(seconds * 1e9);
}

Result<sim::Duration> Fabric::Reconfigure(RegionId region, Bitstream bitstream) {
  if (region >= regions_.size()) {
    return InvalidArgument("no such region");
  }
  if (bitstream.slices > config_.slices_per_region) {
    return ResourceExhausted("bitstream exceeds region capacity");
  }
  if (bitstream.fmax_mhz <= 0.0) {
    return InvalidArgument("bitstream must declare a positive Fmax");
  }
  if (failed_[region]) {
    return Unavailable("region marked failed; repair it first");
  }
  const sim::Duration latency = ReconfigLatency(bitstream.size_bytes);
  obs::ScopedSpan span(tracer_, engine_, obs::Subsystem::kFpga, "fpga.reconfig");
  if (injector_ != nullptr && injector_->ShouldInject(sim::FaultSite::kFpgaReconfigFail)) {
    // The ICAP stream aborts partway: some frames of the previous design
    // are already overwritten, so the slot holds neither design and must be
    // scrubbed before it can be used again.
    engine_->Advance(latency / 2);
    regions_[region].reset();
    failed_[region] = 1;
    counters_.Increment("reconfig_failures");
    return Unavailable("partial reconfiguration aborted");
  }
  engine_->Advance(latency);
  regions_[region] = std::move(bitstream);
  reconfig_hist_.Record(latency);
  counters_.Increment("reconfigurations");
  return latency;
}

bool Fabric::IsFailed(RegionId region) const {
  return region < failed_.size() && failed_[region] != 0;
}

Status Fabric::Repair(RegionId region) {
  if (region >= failed_.size()) {
    return InvalidArgument("no such region");
  }
  if (!failed_[region]) {
    return InvalidArgument("region is not failed");
  }
  failed_[region] = 0;
  counters_.Increment("region_repairs");
  return Status::Ok();
}

Status Fabric::Clear(RegionId region) {
  if (region >= regions_.size()) {
    return InvalidArgument("no such region");
  }
  regions_[region].reset();
  return Status::Ok();
}

bool Fabric::IsLoaded(RegionId region) const {
  return region < regions_.size() && regions_[region].has_value();
}

Result<Bitstream> Fabric::LoadedBitstream(RegionId region) const {
  if (region >= regions_.size()) {
    return InvalidArgument("no such region");
  }
  if (!regions_[region].has_value()) {
    return NotFound("region is empty");
  }
  return *regions_[region];
}

Result<sim::Duration> Fabric::Execute(RegionId region, uint64_t cycles) {
  ASSIGN_OR_RETURN(Bitstream bs, LoadedBitstream(region));
  const sim::Duration t = sim::CyclesToTime(cycles, bs.fmax_mhz);
  engine_->Advance(t);
  counters_.Add("cycles_executed", cycles);
  return t;
}

}  // namespace hyperion::fpga
