// FPGA fabric model: reconfigurable regions + ICAP partial reconfiguration.
//
// The paper leans on three FPGA properties (§2): application-specific
// reconfigurability, coarse-grained *spatial* multiplexing at 10-100 ms
// partial-reconfiguration timescales, and deterministic post-configuration
// performance ("once a bitstream has been sent, the circuit runs a certain
// clock frequency without any outside interference"). The model exposes all
// three: regions (slots) hold bitstreams; loading one streams its bytes
// through the ICAP at its real-world bandwidth (so latency lands in the
// paper's 10-100 ms band for multi-MB partial bitstreams); and a loaded
// region executes work at its own Fmax regardless of its neighbours.

#ifndef HYPERION_SRC_FPGA_FABRIC_H_
#define HYPERION_SRC_FPGA_FABRIC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/obs/trace.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/sim/stats.h"

namespace hyperion::fpga {

using RegionId = uint32_t;
using TenantId = uint32_t;
constexpr TenantId kNoTenant = ~0u;

// A (partial) bitstream: the unit of deployment onto a region.
struct Bitstream {
  std::string name;
  uint64_t size_bytes = 4 * 1024 * 1024;  // typical partial bitstream, ~4 MiB
  uint32_t slices = 1;                    // region-capacity units consumed
  double fmax_mhz = 250.0;                // post-route clock of this design
  TenantId tenant = kNoTenant;
};

struct FabricConfig {
  uint32_t regions = 5;            // eHDL accelerator slots of Figure 2
  uint32_t slices_per_region = 4;  // abstract capacity units
  double icap_mbps = 400.0;        // ICAP throughput (bytes/s * 1e-6)
  sim::Duration reconfig_fixed_overhead = 2 * sim::kMillisecond;  // shutdown/handshake
};

class Fabric {
 public:
  Fabric(sim::Engine* engine, FabricConfig config = FabricConfig());

  uint32_t RegionCount() const { return config_.regions; }
  const FabricConfig& config() const { return config_; }

  // Loads `bitstream` into `region` via partial dynamic reconfiguration
  // through the ICAP; advances virtual time by the reconfiguration latency
  // and returns it. Fails if the bitstream needs more slices than a region
  // has. Any previously loaded design is evicted.
  Result<sim::Duration> Reconfigure(RegionId region, Bitstream bitstream);

  // Clears a region (e.g. on tenant teardown).
  Status Clear(RegionId region);

  bool IsLoaded(RegionId region) const;
  Result<Bitstream> LoadedBitstream(RegionId region) const;

  // Deterministic execution: `cycles` of work on the design in `region`
  // completes in exactly cycles/fmax — neighbours cannot perturb it.
  Result<sim::Duration> Execute(RegionId region, uint64_t cycles);

  // Pure model of the reconfiguration latency for a bitstream size.
  sim::Duration ReconfigLatency(uint64_t bitstream_bytes) const;

  // -- Fault injection & recovery -------------------------------------------

  // Hooks this fabric to a fault injector (null detaches). Injected fault:
  // a partial reconfiguration that aborts mid-bitstream, leaving the region
  // failed (unusable) until Repair() — the scheduler migrates around it.
  void SetFaultInjector(sim::FaultInjector* injector) { injector_ = injector; }

  // Attaches a tracer (null detaches): Reconfigure emits an fpga.reconfig
  // span (also covering the half-paid latency of an aborted load).
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // True when the region took a reconfiguration fault and was not repaired.
  bool IsFailed(RegionId region) const;

  // Returns a failed region to service (models a shell-level slot scrub).
  Status Repair(RegionId region);

  const sim::Histogram& reconfig_latencies() const { return reconfig_hist_; }
  const sim::Counters& counters() const { return counters_; }

 private:
  sim::Engine* engine_;
  FabricConfig config_;
  std::vector<std::optional<Bitstream>> regions_;
  std::vector<uint8_t> failed_;
  sim::FaultInjector* injector_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  sim::Histogram reconfig_hist_;
  sim::Counters counters_;
};

}  // namespace hyperion::fpga

#endif  // HYPERION_SRC_FPGA_FABRIC_H_
