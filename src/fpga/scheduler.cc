#include "src/fpga/scheduler.h"

#include "src/common/check.h"

namespace hyperion::fpga {

SlotScheduler::SlotScheduler(sim::Engine* engine, Fabric* fabric)
    : engine_(engine), fabric_(fabric), state_(fabric->RegionCount()) {}

Result<SlotScheduler::Placement> SlotScheduler::Acquire(const Bitstream& bitstream) {
  obs::ScopedSpan acquire(tracer_, engine_, obs::Subsystem::kFpga, "fpga.acquire");
  // 1. Already resident?
  for (RegionId r = 0; r < state_.size(); ++r) {
    auto loaded = fabric_->LoadedBitstream(r);
    if (loaded.ok() && loaded->name == bitstream.name && loaded->tenant == bitstream.tenant) {
      ++hits_;
      ++state_[r].pins;
      state_[r].last_used = engine_->Now();
      return Placement{r, false, 0};
    }
  }
  ++misses_;
  // 2./3. Candidate loop: free regions first, then LRU eviction order. A
  // reconfiguration that fails marks the slot bad in the fabric; the
  // request migrates to the next candidate instead of surfacing the fault.
  std::vector<uint8_t> tried(state_.size(), 0);
  for (;;) {
    RegionId candidate = kNoTenant;
    bool evicting = false;
    // A free (never-configured, healthy) region?
    for (RegionId r = 0; r < state_.size(); ++r) {
      if (!tried[r] && !fabric_->IsLoaded(r) && !fabric_->IsFailed(r) && state_[r].pins == 0) {
        candidate = r;
        break;
      }
    }
    // Otherwise the LRU unpinned healthy region.
    if (candidate == kNoTenant) {
      for (RegionId r = 0; r < state_.size(); ++r) {
        if (tried[r] || state_[r].pins != 0 || fabric_->IsFailed(r)) {
          continue;
        }
        if (candidate == kNoTenant || state_[r].last_used < state_[candidate].last_used) {
          candidate = r;
        }
      }
      evicting = candidate != kNoTenant && fabric_->IsLoaded(candidate);
    }
    if (candidate == kNoTenant) {
      counters_.Increment("fpga_acquire_rejected");
      return ResourceExhausted("all regions pinned or failed");
    }
    tried[candidate] = 1;
    Result<sim::Duration> latency = fabric_->Reconfigure(candidate, bitstream);
    if (!latency.ok()) {
      if (latency.status().code() == StatusCode::kUnavailable) {
        // The slot failed under us; reschedule onto another region.
        ++migrations_;
        counters_.Increment("slot_migrations");
        if (obs::kCompiledIn && tracer_ != nullptr) {
          tracer_->Instant(obs::Subsystem::kFpga, "fpga.migrate", engine_->Now());
        }
        continue;
      }
      return latency.status();
    }
    if (evicting) {
      ++evictions_;
    }
    ++state_[candidate].pins;
    state_[candidate].last_used = engine_->Now();
    return Placement{candidate, true, *latency};
  }
}

Status SlotScheduler::Release(RegionId region) {
  if (region >= state_.size()) {
    return InvalidArgument("no such region");
  }
  if (state_[region].pins == 0) {
    return InvalidArgument("region not pinned");
  }
  --state_[region].pins;
  state_[region].last_used = engine_->Now();
  return Status::Ok();
}

}  // namespace hyperion::fpga
