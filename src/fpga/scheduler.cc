#include "src/fpga/scheduler.h"

#include "src/common/check.h"

namespace hyperion::fpga {

SlotScheduler::SlotScheduler(sim::Engine* engine, Fabric* fabric)
    : engine_(engine), fabric_(fabric), state_(fabric->RegionCount()) {}

Result<SlotScheduler::Placement> SlotScheduler::Acquire(const Bitstream& bitstream) {
  // 1. Already resident?
  for (RegionId r = 0; r < state_.size(); ++r) {
    auto loaded = fabric_->LoadedBitstream(r);
    if (loaded.ok() && loaded->name == bitstream.name && loaded->tenant == bitstream.tenant) {
      ++hits_;
      ++state_[r].pins;
      state_[r].last_used = engine_->Now();
      return Placement{r, false, 0};
    }
  }
  ++misses_;
  // 2. A free (never-configured) region?
  for (RegionId r = 0; r < state_.size(); ++r) {
    if (!fabric_->IsLoaded(r) && state_[r].pins == 0) {
      ASSIGN_OR_RETURN(sim::Duration latency, fabric_->Reconfigure(r, bitstream));
      ++state_[r].pins;
      state_[r].last_used = engine_->Now();
      return Placement{r, true, latency};
    }
  }
  // 3. Evict the LRU unpinned region.
  RegionId victim = kNoTenant;
  for (RegionId r = 0; r < state_.size(); ++r) {
    if (state_[r].pins != 0) {
      continue;
    }
    if (victim == kNoTenant || state_[r].last_used < state_[victim].last_used) {
      victim = r;
    }
  }
  if (victim == kNoTenant) {
    return ResourceExhausted("all regions pinned");
  }
  ++evictions_;
  ASSIGN_OR_RETURN(sim::Duration latency, fabric_->Reconfigure(victim, bitstream));
  ++state_[victim].pins;
  state_[victim].last_used = engine_->Now();
  return Placement{victim, true, latency};
}

Status SlotScheduler::Release(RegionId region) {
  if (region >= state_.size()) {
    return InvalidArgument("no such region");
  }
  if (state_[region].pins == 0) {
    return InvalidArgument("region not pinned");
  }
  --state_[region].pins;
  state_[region].last_used = engine_->Now();
  return Status::Ok();
}

}  // namespace hyperion::fpga
