// Replicated, failover-safe KV on the Corfu shared log (paper §2.4: the
// blueprint's network-attached storage units "support Corfu consensus", and
// §3's fault-tolerance argument needs a node death to cost no acknowledged
// data without any host CPU in the loop).
//
// The design follows the client-driven "passive disaggregation" doctrine of
// src/dpu/distributed.h: the DPUs serve a dumb fast path (write-once log
// positions, last-writer-wins KV apply, epoch checks) and every smart step
// — chain placement, failure detection, seal, tail recovery, repair — runs
// in the client library. Per shard group of R replicas:
//
//   * Sequencing: the head (first live replica) hands out positions from
//     its durable CorfuLog sequencer (CorfuLog::Reserve).
//   * Writes: the client chains the entry through the live replicas in
//     index order (head first) and acknowledges only after every live
//     replica applied it — write-all.
//   * Reads: served by the tail (last live replica). The chain order makes
//     each replica's log a superset of its successors', so the tail only
//     ever exposes writes present on every live replica; no failover can
//     retract a value a read observed (the chain-replication read rule).
//   * Apply: each replica is a state machine over its log — the entry also
//     applies to the replica's KvStore as last-writer-wins by position, so
//     replay order never matters and repair copies are idempotent.
//
// Failover (node kill → epoch seal → tail recovery → new sequencer), all
// client-driven: a client that sees kUnavailable accuses the replica, bumps
// the epoch, seals every live replica (a sealed replica rejects all older
// epochs, so in-flight stale writes die), collects the maximum log tail,
// repairs [trim, tail) by copying entries across replicas (junk-filling
// positions no survivor holds), hands the recovered tail to the new head,
// and retries under the new view. Seal and repair are idempotent, so any
// number of clients may race through recovery concurrently. A replica
// rejecting a stale epoch returns its current {epoch, dead set} in the
// response payload, so lagging clients resync from the rejection itself.
//
// Determinism: replicas share no mutable state; every cross-node
// interaction is a ShardedRpcNode frame; node kill is decided on the
// victim's own shard (its FaultInjector, queried at each protocol boundary
// in its serve order) — so results are bit-identical across shard layouts
// and threading modes, kills included.

#ifndef HYPERION_SRC_DPU_REPLICATION_H_
#define HYPERION_SRC_DPU_REPLICATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/dpu/cluster.h"
#include "src/dpu/hyperion.h"
#include "src/dpu/rpc.h"
#include "src/sim/fault.h"
#include "src/sim/parallel.h"
#include "src/sim/stats.h"
#include "src/storage/corfu.h"
#include "src/storage/kv.h"

namespace hyperion::dpu {

// RPC opcodes for ServiceId::kRepKv. All requests lead with the caller's
// epoch; a mismatch answers kAborted with [epoch u32][dead u64] so the
// caller can resync.
struct RepOp {
  static constexpr uint16_t kReserve = 1;    // [epoch u32] -> [position u64]
  static constexpr uint16_t kWrite = 2;      // [epoch u32][position u64][entry] -> []
  static constexpr uint16_t kRead = 3;       // [epoch u32][key u64] -> [present u8][stamp u64][len u32][value]
  static constexpr uint16_t kSeal = 4;       // [epoch u32][dead u64] -> [tail u64]
  static constexpr uint16_t kAdoptTail = 5;  // [epoch u32][tail u64] -> []
  static constexpr uint16_t kReadAt = 6;     // [epoch u32][position u64] -> [entry]
  static constexpr uint16_t kFill = 7;       // [epoch u32][position u64] -> []
};

// Log entry payload: [kind u8][key u64][len u32][value].
struct RepEntryKind {
  static constexpr uint8_t kPut = 1;
  static constexpr uint8_t kDelete = 2;
};

// One replica: a CorfuLog (the replicated history) plus a KvStore (the
// state machine materialized from it), served under ServiceId::kRepKv on
// the DPU's RPC server. KV values are framed [stamp u64][present u8][value]
// where stamp = log position + 1 (0 = preload), so apply is last-writer-
// wins by position and replay/repair order never matters.
class ReplicatedKvService {
 public:
  static Result<std::unique_ptr<ReplicatedKvService>> Install(
      Hyperion* dpu, storage::KvBackend backend = storage::KvBackend::kBTree);

  // Hooks the node kill fault site (null detaches). Queried at every
  // protocol boundary in this replica's serve order: request entry
  // (reserve / chain write / read / seal arrival) and post-apply pre-ack
  // (the write applied but the acknowledgement evaporates with the node).
  void SetFaultInjector(sim::FaultInjector* injector) { injector_ = injector; }

  // Kills the node now (scheduled-kill harness path): every subsequent
  // request answers kUnavailable for a fixed NIC-level refusal cost.
  void Kill() { dead_ = true; }
  bool dead() const { return dead_; }

  uint32_t epoch() const { return epoch_; }
  uint64_t dead_mask() const { return dead_mask_; }

  storage::CorfuLog& log() { return *log_; }
  storage::KvStore& kv() { return *kv_; }

  // Preload path (no wire, no log entry): installs `value` under stamp 0 so
  // a warm dataset exists before the measured phase.
  Status PreloadPut(uint64_t key, ByteSpan value);

  // Reads a key's applied state directly (audit path, post-run).
  // Returns {stamp, present, value}.
  struct Applied {
    uint64_t stamp = 0;
    bool present = false;
    Bytes value;
  };
  Result<Applied> ReadApplied(uint64_t key);

  // Deterministic digest of the full applied state (audit path): folds
  // every (key, stamp, present, value) in key order. Two replicas that
  // converged are bit-identical iff their digests match.
  uint64_t StateDigest();

  const sim::Counters& counters() const { return counters_; }

 private:
  explicit ReplicatedKvService(Hyperion* dpu) : dpu_(dpu) {}

  RpcResponse Handle(uint16_t opcode, const Buffer& payload);
  RpcResponse HandleSeal(ByteReader& reader);
  // True once this call decided the node dies here (injector fired or the
  // node was already dead).
  bool KillBoundary();
  RpcResponse StaleEpoch() const;
  // Applies a log entry to the KV state machine (last-writer-wins by
  // stamp); `stamp` = position + 1.
  Status Apply(uint64_t stamp, ByteSpan entry);

  Hyperion* dpu_;
  std::unique_ptr<storage::CorfuLog> log_;
  std::unique_ptr<storage::KvStore> kv_;
  sim::FaultInjector* injector_ = nullptr;
  bool dead_ = false;
  uint32_t epoch_ = 0;
  uint64_t dead_mask_ = 0;
  // Sealed into epoch_ but the recovered tail has not been adopted yet:
  // refuse to sequence, or fresh positions could collide with the prefix
  // still under repair. Cleared by kAdoptTail.
  bool awaiting_tail_ = false;
  sim::Counters counters_;
};

// Client-side retry/failover policy. Per-op absolute deadlines ride the
// request frames (the PR 5 deadline trailer), so deadline-aware admission
// on the serving nodes sheds doomed work before it costs pipeline time.
struct RepClientOptions {
  sim::Duration op_deadline = 50 * sim::kMillisecond;  // per-op budget
  sim::Duration initial_backoff = 20 * sim::kMicrosecond;
  double backoff_multiplier = 2.0;
  sim::Duration max_backoff = 2 * sim::kMillisecond;
  uint32_t max_attempts = 16;  // full protocol attempts per op
};

// The smart client: key → group placement, chain writes, tail reads, and
// the whole failover path. One instance per client node; holds a private
// {epoch, dead set} view per group and shares no state with other clients
// (views resync through kAborted rejections), which is what keeps the
// sharded simulation deterministic.
class ReplicatedKvClient {
 public:
  using PutDone = std::function<void(Status, uint64_t position)>;
  using GetDone = std::function<void(Status, bool present, uint64_t stamp, Bytes value)>;

  // `replicas` lists every replica endpoint, grouped: replica r of group g
  // is replicas[g * replicas_per_group + r]. Chain order inside a group is
  // index order. Must be driven from `self`'s shard.
  ReplicatedKvClient(sim::ParallelEngine* engine, ShardedRpcNode* self,
                     std::vector<ShardedRpcNode*> replicas, uint32_t groups,
                     uint32_t replicas_per_group, RepClientOptions options = {});

  void PutAsync(uint64_t key, Bytes value, PutDone done);
  void DeleteAsync(uint64_t key, PutDone done);
  void GetAsync(uint64_t key, GetDone done);

  uint32_t GroupOf(uint64_t key) const;
  uint32_t epoch(uint32_t group) const { return views_[group].epoch; }
  uint64_t dead_mask(uint32_t group) const { return views_[group].dead; }

  // rep_failovers / rep_seals / rep_repair_copies / rep_repair_fills /
  // rep_stale_epoch / rep_retries / rep_reserve_conflicts /
  // rep_partial_abandons (ops failed between chain start and ack — the
  // write may exist on a prefix of the chain; linearizability treats these
  // as ambiguous).
  const sim::Counters& counters() const { return counters_; }

 private:
  struct View {
    uint32_t epoch = 0;
    uint64_t dead = 0;
  };
  struct Op;
  struct Recovery;

  sim::Engine& shard_engine();
  sim::SimTime Now();
  ShardedRpcNode* Replica(uint32_t group, uint32_t index) const;
  // First / last live replica index per the group view; returns
  // replicas_per_group_ when every replica is accused.
  uint32_t HeadOf(uint32_t group) const;
  uint32_t TailOf(uint32_t group) const;

  void Start(std::shared_ptr<Op> op);
  void Attempt(std::shared_ptr<Op> op);
  void SendReserve(std::shared_ptr<Op> op);
  void SendNextWrite(std::shared_ptr<Op> op);
  void SendRead(std::shared_ptr<Op> op);
  // Shared failure routing for an RPC answered by replica `index` of the
  // op's group. `mid_chain` marks a failure after at least one chain write
  // landed (an abandoned op may exist on a chain prefix).
  void OnFailure(std::shared_ptr<Op> op, uint32_t index, const RpcResponse& response,
                 bool mid_chain);
  void Backoff(std::shared_ptr<Op> op);
  void Finish(std::shared_ptr<Op> op, Status status);
  // Adopts a config carried by a kAborted rejection; returns true when the
  // payload parsed and moved the view forward.
  bool AdoptConfig(uint32_t group, const Buffer& payload);

  // Failover: seal → collect tails → repair → adopt tail → retry op.
  void StartRecovery(std::shared_ptr<Op> op, uint64_t accused, uint32_t target_epoch);
  void SealNext(std::shared_ptr<Recovery> rec);
  void RepairNext(std::shared_ptr<Recovery> rec);
  void RepairRead(std::shared_ptr<Recovery> rec, uint32_t from);
  void RepairWrite(std::shared_ptr<Recovery> rec, uint32_t to, bool fill);
  void AdoptRecoveredTail(std::shared_ptr<Recovery> rec);
  void FinishRecovery(std::shared_ptr<Recovery> rec);
  // A competing recovery reached a higher epoch: adopt it and fall back to
  // the op retry path.
  void AbandonRecovery(std::shared_ptr<Recovery> rec, const Buffer& config);

  RpcRequest MakeRequest(uint16_t opcode, sim::SimTime deadline) const;

  sim::ParallelEngine* engine_;
  ShardedRpcNode* self_;
  std::vector<ShardedRpcNode*> replicas_;
  uint32_t groups_;
  uint32_t replicas_per_group_;
  RepClientOptions options_;
  std::vector<View> views_;
  sim::Counters counters_;
};

// -- Replicated cluster harness ----------------------------------------------

// One linearizability-history record. Tags are caller-chosen u64 values
// carried in the first 8 bytes of every put value, unique per put, so a
// read's observed tag identifies exactly which write it saw.
struct RepHistOp {
  static constexpr uint8_t kPut = 0;
  static constexpr uint8_t kGet = 1;
  uint8_t kind = kPut;
  uint32_t client = 0;  // global client id
  uint64_t key = 0;
  uint64_t tag = 0;  // put: tag written; get: tag observed (0 = absent)
  sim::SimTime invoke_ns = 0;
  sim::SimTime return_ns = 0;
  bool ok = false;  // acked; a failed put is ambiguous (may have applied)
};

// Everything observable a replicated run produces, in deterministic form:
// equality across shard layouts / threading modes is the determinism
// oracle, kills included.
struct RepClusterResult {
  uint64_t ok_puts = 0;
  uint64_t ok_gets = 0;
  uint64_t failed_ops = 0;
  uint64_t failovers = 0;
  uint64_t seals = 0;
  uint64_t repair_copies = 0;
  uint64_t repair_fills = 0;
  uint64_t stale_epoch = 0;
  uint64_t retries = 0;
  uint64_t partial_abandons = 0;
  uint64_t killed_nodes = 0;
  uint64_t events_run = 0;
  uint64_t messages = 0;
  sim::SimTime start_ns = 0;
  sim::SimTime makespan_ns = 0;
  uint64_t latency_count = 0;
  uint64_t latency_p50_ns = 0;
  uint64_t latency_p99_ns = 0;
  uint64_t latency_max_ns = 0;
  std::vector<uint32_t> group_epochs;
  // Folds every live replica's StateDigest in node order: divergence
  // between group members (or across layouts) shows here.
  uint64_t state_digest = 0;
  uint64_t history_digest = 0;

  bool operator==(const RepClusterResult&) const = default;
};

// Post-run audit: every acknowledged write re-read from every live replica.
struct RepAudit {
  uint64_t acked = 0;         // put records audited
  uint64_t lost = 0;          // replica's stamp below the acked position
  uint64_t mismatched = 0;    // stamp matches but the value tag does not
  uint64_t divergent = 0;     // groups whose live replicas' digests differ
  bool ok() const { return lost == 0 && mismatched == 0 && divergent == 0; }
};

struct RepClusterOptions {
  uint32_t groups = 2;
  uint32_t replicas_per_group = 3;
  uint32_t num_shards = 0;  // 0 → one shard per node
  bool use_threads = true;
  sim::Duration lookahead_floor = 100;
  storage::KvBackend backend = storage::KvBackend::kBTree;
  net::FabricParams fabric;
  ClusterWorkload workload;  // value_bytes must be >= 8 (the tag)
  RepClientOptions client;
  // Serving-side PR 5 admission (deadline-aware fast rejects) on every
  // replica endpoint.
  RpcOverloadPolicy overload;
  // Kill schedule, two deterministic forms:
  //   * kill_at_boundary: FaultPlan::AtQuery(kNodeKill, skip) on the victim
  //     — the fault-matrix primitive, landing the kill at exactly the Nth
  //     protocol boundary the victim serves.
  //   * kill_after_ns: the victim dies at start + kill_after_ns virtual
  //     time (the kill-mid-bench experiment).
  static constexpr uint64_t kNoKill = ~0ull;
  uint32_t kill_node = 0;
  uint64_t kill_at_boundary = kNoKill;
  sim::SimTime kill_after_ns = 0;  // 0 = disabled
  // Trimmed per-node DPU (64-node runs would otherwise pay construction
  // for memory the workload never touches).
  uint32_t nvme_devices = 1;
  uint64_t lbas_per_device = 32768;
  uint64_t dram_bytes = 24ull << 20;
  uint64_t hbm_bytes = 8ull << 20;
};

// groups × replicas_per_group full Hyperion nodes, each also hosting a
// closed-loop client population driving puts/gets through its
// ReplicatedKvClient. Mirrors KvCluster's determinism discipline.
class ReplicatedKvCluster {
 public:
  explicit ReplicatedKvCluster(const RepClusterOptions& options);
  ReplicatedKvCluster(const ReplicatedKvCluster&) = delete;
  ReplicatedKvCluster& operator=(const ReplicatedKvCluster&) = delete;
  ~ReplicatedKvCluster();

  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }
  uint32_t ShardOf(uint32_t node) const;
  sim::ParallelEngine& engine() { return *engine_; }
  ReplicatedKvService& service(uint32_t node) { return *nodes_[node]->service; }

  // Runs the workload to quiescence and snapshots the result. One-shot.
  RepClusterResult Run();

  // Valid after Run(): the merged history (sorted by invoke time, then
  // client, then record order) and the acked-write audit.
  std::vector<RepHistOp> History() const;
  RepAudit AuditAckedWrites();

  // Kills the victim's protocol boundaries observed in a fault-free run:
  // the fault-matrix sweep uses this to size its boundary range.
  uint64_t VictimBoundaries(uint32_t node) const;

  // The tag preloaded under every key before the measured phase (the
  // linearizability checker's initial register value).
  static uint64_t PreloadTag(uint64_t key) { return (0x7Full << 56) | key; }

 private:
  struct ClientState {
    uint32_t remaining = 0;
    uint64_t next_seq = 0;
  };
  struct AckedPut {
    uint32_t group = 0;
    uint64_t key = 0;
    uint64_t position = 0;
    uint64_t tag = 0;
  };
  struct Node {
    Node(ReplicatedKvCluster* cluster, uint32_t id, uint32_t shard);

    uint32_t id;
    uint32_t shard;
    sim::Engine clock;  // private cost engine (never holds events)
    net::Fabric fabric;
    Hyperion dpu;
    std::unique_ptr<ReplicatedKvService> service;
    std::unique_ptr<ShardedRpcNode> endpoint;
    std::unique_ptr<ReplicatedKvClient> client;
    std::unique_ptr<sim::FaultInjector> injector;  // victim only
    Rng rng;
    sim::Histogram latency;
    std::vector<ClientState> clients;
    std::vector<RepHistOp> history;
    std::vector<AckedPut> acked;
    uint64_t ok_puts = 0;
    uint64_t ok_gets = 0;
    uint64_t failed_ops = 0;
    sim::SimTime last_completion = 0;
  };

  uint32_t GroupOfNode(uint32_t node) const { return node / options_.replicas_per_group; }
  bool LiveAtEnd(uint32_t node) const;
  void Preload();
  void IssueOp(Node& node, uint32_t client);
  Bytes TaggedValue(uint64_t tag) const;

  RepClusterOptions options_;
  std::unique_ptr<sim::ParallelEngine> engine_;
  std::vector<std::unique_ptr<Node>> nodes_;
  sim::Histogram merged_latency_;
  bool ran_ = false;

  friend struct Node;
};

}  // namespace hyperion::dpu

#endif  // HYPERION_SRC_DPU_REPLICATION_H_
