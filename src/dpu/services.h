// Hyperion's network-attached data services (paper §2.4): KV-SSD, B+ tree
// with offloaded *and* client-driven access, and the Corfu-style shared
// log — all served from the DPU's single-level store through the
// Willow-style RPC layer, with zero host CPU anywhere.

#ifndef HYPERION_SRC_DPU_SERVICES_H_
#define HYPERION_SRC_DPU_SERVICES_H_

#include <memory>

#include "src/dpu/hyperion.h"
#include "src/dpu/rpc.h"
#include "src/storage/bptree.h"
#include "src/storage/corfu.h"
#include "src/fs/annotation.h"
#include "src/storage/kv.h"

namespace hyperion::dpu {

// RPC opcodes per service.
struct KvOp {
  static constexpr uint16_t kPut = 1;     // [key u64][len u32][value]
  static constexpr uint16_t kGet = 2;     // [key u64] -> [value]
  static constexpr uint16_t kDelete = 3;  // [key u64]
  static constexpr uint16_t kScan = 4;    // [lo u64][hi u64] -> [n u32]{[key][len][value]}*
};
struct TreeOp {
  static constexpr uint16_t kGet = 1;       // offloaded walk: [key u64] -> [value]
  static constexpr uint16_t kReadNode = 2;  // client-driven: [node_id u64] -> raw node bytes
  static constexpr uint16_t kInfo = 3;      // -> [tree_id u64][root u64][height u32]
};
struct LogOp {
  static constexpr uint16_t kAppend = 1;   // [data] -> [position u64]
  static constexpr uint16_t kRead = 2;     // [position u64] -> [data]
  static constexpr uint16_t kTail = 3;     // -> [tail u64]
  static constexpr uint16_t kFill = 4;     // [position u64]
  static constexpr uint16_t kTrim = 5;     // [prefix u64]
  // Split protocol for client-driven replication (CORFU's fast path):
  static constexpr uint16_t kReserve = 6;  // -> [position u64] (sequencer only)
  static constexpr uint16_t kWriteAt = 7;  // [position u64][data] (write-once)
};
struct BlockOp {
  // NVMe-oF-style block access (§2.3 "block-level offloaded accesses").
  static constexpr uint16_t kRead = 1;      // [nsid u32][slba u64][blocks u32] -> data
  static constexpr uint16_t kWrite = 2;     // [nsid u32][slba u64][data]
  static constexpr uint16_t kFlush = 3;     // [nsid u32]
  static constexpr uint16_t kIdentify = 4;  // -> [count u32]{[capacity u64]}*
};
struct FileOp {
  // Remote file access (§2.4 "remote file system access acceleration with
  // DPUs using virtio-fs", served CPU-free via the layout annotation).
  static constexpr uint16_t kResolve = 1;  // [path str] -> [inode u32]
  static constexpr uint16_t kRead = 2;     // [path str][off u64][len u64] -> data
};
struct ScanOp {
  // Analytics scan pushdown (PR 10): Parquet queries executed by FPGA scan
  // kernels reading directly from NVMe (format/scan_kernel.h wire codecs).
  static constexpr uint16_t kQuery = 1;      // SerializeScanQuery -> SerializeScanResult
  static constexpr uint16_t kTableInfo = 2;  // -> [rows u64][file_size u64][groups u32]
};
// The kApp service needs no opcode table: the opcode *is* the accelerator
// id returned by ControlOp::kDeploy, the payload is the program's context
// buffer, and the response is [r0 u64][mutated ctx] — Willow's
// user-programmable-SSD RPC realized with verified eBPF.
struct ControlOp {
  static constexpr uint16_t kDeploy = 1;    // [token str][tenant u32][program] -> [accel u32]
  static constexpr uint16_t kBoot = 2;      // -> [boot_ns u64]
  static constexpr uint16_t kUndeploy = 3;  // [token str][accel u32]
  // [token str][tenant u32][type u8][key u32][value u32][entries u32][name str] -> [map u32]
  static constexpr uint16_t kCreateMap = 4;
  // Raw (pre-synthesized) bitstream load over the control network port:
  // [token str][tenant u32][name str][size u64][slices u32][fmax_mhz_x10 u32] -> [region u32]
  static constexpr uint16_t kLoadBitstream = 5;
};

// Instantiates the service state on a booted DPU and registers the RPC
// handlers. Owns the KV store, tree, and log.
class HyperionServices {
 public:
  // `kv_backend` picks the index layout for the KV service.
  static Result<std::unique_ptr<HyperionServices>> Install(
      Hyperion* dpu, storage::KvBackend kv_backend = storage::KvBackend::kBTree);

  storage::KvStore& kv() { return *kv_; }
  storage::BPlusTree& tree() { return *tree_; }
  storage::CorfuLog& log() { return *log_; }

  // Exports an ExtFs volume living on namespace `nsid` through the file
  // service; access goes through the Spiffy-style annotation, not the FS
  // implementation. The volume must already be formatted.
  Status ServeVolume(uint32_t nsid);

 private:
  explicit HyperionServices(Hyperion* dpu) : dpu_(dpu) {}

  void Register();
  // Handlers take the request payload as a shared Buffer: value bytes are
  // sliced out of it (put/append/write paths) or adopted from the store
  // (get/read paths) — the shell never copies a payload it can reference.
  RpcResponse HandleKv(uint16_t opcode, const Buffer& payload);
  RpcResponse HandleTree(uint16_t opcode, const Buffer& payload);
  RpcResponse HandleLog(uint16_t opcode, const Buffer& payload);
  RpcResponse HandleBlock(uint16_t opcode, const Buffer& payload);
  RpcResponse HandleFile(uint16_t opcode, const Buffer& payload);
  RpcResponse HandleApp(uint16_t opcode, const Buffer& payload);
  RpcResponse HandleControl(uint16_t opcode, const Buffer& payload);

  // Fixed fabric cost of request parse/dispatch in the shell pipeline.
  void ChargeShell();

  Hyperion* dpu_;
  std::unique_ptr<fs::AnnotatedReader> volume_;
  std::unique_ptr<storage::KvStore> kv_;
  std::unique_ptr<storage::BPlusTree> tree_;
  std::unique_ptr<storage::CorfuLog> log_;
};

}  // namespace hyperion::dpu

#endif  // HYPERION_SRC_DPU_SERVICES_H_
