#include "src/dpu/distributed.h"

#include "src/common/check.h"
#include "src/dpu/services.h"

namespace hyperion::dpu {

namespace {
uint64_t MixKey(uint64_t key) {
  key ^= key >> 33;
  key *= 0xff51afd7ed558ccdULL;
  key ^= key >> 33;
  return key;
}
}  // namespace

size_t KvPartitionOf(uint64_t key, size_t partitions) {
  CHECK_GT(partitions, 0u);
  return static_cast<size_t>(MixKey(key) % partitions);
}

size_t DistributedKvClient::PartitionOf(uint64_t key) const {
  return KvPartitionOf(key, partitions_.size());
}

Result<RpcResponse> DistributedKvClient::CallOwner(uint64_t key, uint16_t opcode,
                                                   Bytes payload) {
  RpcRequest request{ServiceId::kKv, opcode, std::move(payload)};
  ASSIGN_OR_RETURN(RpcResponse response, partitions_[PartitionOf(key)]->Call(request));
  RETURN_IF_ERROR(response.status);
  return response;
}

Status DistributedKvClient::Put(uint64_t key, ByteSpan value) {
  Bytes payload;
  PutU64(payload, key);
  PutU32(payload, static_cast<uint32_t>(value.size()));
  PutBytes(payload, value);
  return CallOwner(key, KvOp::kPut, std::move(payload)).status();
}

Result<Buffer> DistributedKvClient::Get(uint64_t key) {
  Bytes payload;
  PutU64(payload, key);
  ASSIGN_OR_RETURN(RpcResponse response, CallOwner(key, KvOp::kGet, std::move(payload)));
  return std::move(response.payload);
}

Status DistributedKvClient::Delete(uint64_t key) {
  Bytes payload;
  PutU64(payload, key);
  return CallOwner(key, KvOp::kDelete, std::move(payload)).status();
}

void ShardedKvClient::CallOwnerAsync(uint64_t key, uint16_t opcode, Bytes payload,
                                     std::function<void(Result<RpcResponse>)> done) {
  CHECK(!partitions_.empty());
  RpcRequest request{ServiceId::kKv, opcode, std::move(payload)};
  self_->CallAsync(partitions_[PartitionOf(key)], request, std::move(done));
}

void ShardedKvClient::PutAsync(uint64_t key, ByteSpan value, std::function<void(Status)> done) {
  Bytes payload;
  PutU64(payload, key);
  PutU32(payload, static_cast<uint32_t>(value.size()));
  PutBytes(payload, value);
  CallOwnerAsync(key, KvOp::kPut, std::move(payload),
                 [done = std::move(done)](Result<RpcResponse> response) {
                   done(response.ok() ? response->status : response.status());
                 });
}

void ShardedKvClient::GetAsync(uint64_t key, std::function<void(Result<Buffer>)> done) {
  Bytes payload;
  PutU64(payload, key);
  CallOwnerAsync(key, KvOp::kGet, std::move(payload),
                 [done = std::move(done)](Result<RpcResponse> response) {
                   if (!response.ok()) {
                     done(response.status());
                     return;
                   }
                   if (!response->status.ok()) {
                     done(response->status);
                     return;
                   }
                   done(std::move(response->payload));
                 });
}

void ShardedKvClient::DeleteAsync(uint64_t key, std::function<void(Status)> done) {
  Bytes payload;
  PutU64(payload, key);
  CallOwnerAsync(key, KvOp::kDelete, std::move(payload),
                 [done = std::move(done)](Result<RpcResponse> response) {
                   done(response.ok() ? response->status : response.status());
                 });
}

Result<RpcResponse> ReplicatedLogClient::CallLog(size_t replica, uint16_t opcode,
                                                 Bytes payload) {
  RpcRequest request{ServiceId::kLog, opcode, std::move(payload)};
  ASSIGN_OR_RETURN(RpcResponse response, replicas_[replica]->Call(request));
  RETURN_IF_ERROR(response.status);
  return response;
}

Result<uint64_t> ReplicatedLogClient::Append(ByteSpan data) {
  if (replicas_.empty()) {
    return InvalidArgument("no replicas configured");
  }
  // 1. Position from the sequencer (replica 0).
  ASSIGN_OR_RETURN(RpcResponse reserved, CallLog(0, LogOp::kReserve, {}));
  const uint64_t position = GetU64(reserved.payload, 0);
  // Non-sequencer replicas track the tail by reserving the same position
  // locally (their sequencers run in lockstep under a single writer; a
  // multi-writer deployment would route every Reserve to replica 0).
  for (size_t r = 1; r < replicas_.size(); ++r) {
    RETURN_IF_ERROR(CallLog(r, LogOp::kReserve, {}).status());
  }
  // 2. Write-all.
  for (size_t r = 0; r < replicas_.size(); ++r) {
    Bytes payload;
    PutU64(payload, position);
    PutBytes(payload, data);
    RETURN_IF_ERROR(CallLog(r, LogOp::kWriteAt, std::move(payload)).status());
  }
  return position;
}

Result<Buffer> ReplicatedLogClient::Read(uint64_t position) {
  if (replicas_.empty()) {
    return InvalidArgument("no replicas configured");
  }
  Status last = NotFound("position unwritten on every replica");
  for (size_t r = 0; r < replicas_.size(); ++r) {
    Bytes payload;
    PutU64(payload, position);
    RpcRequest request{ServiceId::kLog, LogOp::kRead, std::move(payload)};
    ASSIGN_OR_RETURN(RpcResponse response, replicas_[r]->Call(request));
    if (response.status.ok()) {
      // Repair any replica we skipped over on the way here.
      for (size_t damaged = 0; damaged < r; ++damaged) {
        Bytes repair;
        PutU64(repair, position);
        PutBytes(repair, ByteSpan(response.payload.data(), response.payload.size()));
        // Best effort: write-once may legitimately refuse (already filled).
        if (CallLog(damaged, LogOp::kWriteAt, std::move(repair)).ok()) {
          ++repairs_;
        }
      }
      return std::move(response.payload);
    }
    last = response.status;
  }
  return last;
}

}  // namespace hyperion::dpu
