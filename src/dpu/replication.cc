#include "src/dpu/replication.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/dpu/distributed.h"

namespace hyperion::dpu {

namespace {

// Shell datapath cost per replicated request (same pipeline as the plain
// services), and the cheaper NIC-level refusal a dead node charges.
constexpr sim::Duration kShellCost = 1200;
constexpr sim::Duration kDeadRefuseCost = 300;

// Segment-id spaces private to the replicated service, distinct from the
// plain HyperionServices stores on the same DPU.
constexpr uint64_t kRepKvStoreId = 0x700;
constexpr uint64_t kRepLogId = 0x800;

uint64_t Fold(uint64_t digest, uint64_t x) { return (digest ^ x) * 0x100000001b3ULL; }

uint64_t FoldBytes(uint64_t digest, ByteSpan bytes) {
  digest = Fold(digest, bytes.size());
  for (uint8_t b : bytes) {
    digest = Fold(digest, b);
  }
  return digest;
}

// KV value framing on a replica: [stamp u64][present u8][value].
Bytes FrameApplied(uint64_t stamp, bool present, ByteSpan value) {
  Bytes framed;
  PutU64(framed, stamp);
  framed.push_back(present ? 1 : 0);
  PutBytes(framed, value);
  return framed;
}

}  // namespace

// -- ReplicatedKvService ------------------------------------------------------

Result<std::unique_ptr<ReplicatedKvService>> ReplicatedKvService::Install(
    Hyperion* dpu, storage::KvBackend backend) {
  if (!dpu->booted()) {
    return Unavailable("install the replicated service after Boot()");
  }
  auto service = std::unique_ptr<ReplicatedKvService>(new ReplicatedKvService(dpu));
  ASSIGN_OR_RETURN(storage::KvStore kv,
                   storage::KvStore::Create(&dpu->store(), kRepKvStoreId, backend));
  service->kv_ = std::make_unique<storage::KvStore>(std::move(kv));
  service->log_ = std::make_unique<storage::CorfuLog>(&dpu->store(), kRepLogId);
  ReplicatedKvService* raw = service.get();
  dpu->rpc().RegisterService(ServiceId::kRepKv,
                             [raw](uint16_t opcode, const Buffer& payload) {
                               return raw->Handle(opcode, payload);
                             });
  return service;
}

bool ReplicatedKvService::KillBoundary() {
  if (dead_) {
    return true;
  }
  // Counted even without an injector: the fault-matrix sweep sizes its
  // boundary range from a fault-free run's count.
  counters_.Add("rep_boundaries", 1);
  if (injector_ != nullptr && injector_->ShouldInject(sim::FaultSite::kNodeKill)) {
    dead_ = true;
  }
  return dead_;
}

RpcResponse ReplicatedKvService::StaleEpoch() const {
  ByteWriter config;
  config.PutU32(epoch_);
  config.PutU64(dead_mask_);
  return RpcResponse{Aborted("stale epoch"), Buffer(config.Take())};
}

Status ReplicatedKvService::Apply(uint64_t stamp, ByteSpan entry) {
  ByteReader reader(entry);
  const uint8_t kind = reader.ReadU8();
  const uint64_t key = reader.ReadU64();
  const uint32_t len = reader.ReadU32();
  if (!reader.Ok() || reader.remaining() < len ||
      (kind != RepEntryKind::kPut && kind != RepEntryKind::kDelete)) {
    return InvalidArgument("malformed replicated entry");
  }
  const Bytes value = reader.ReadBytes(len);
  // Last-writer-wins by stamp: replay and repair copies in any order
  // converge to the same state.
  auto existing = kv_->Get(key);
  if (existing.ok()) {
    ByteReader current(ByteSpan(existing->data(), existing->size()));
    const uint64_t current_stamp = current.ReadU64();
    if (current.Ok() && stamp <= current_stamp) {
      return Status::Ok();
    }
  } else if (existing.status().code() != StatusCode::kNotFound) {
    return existing.status();
  }
  const Bytes framed =
      FrameApplied(stamp, kind == RepEntryKind::kPut, ByteSpan(value.data(), value.size()));
  return kv_->Put(key, ByteSpan(framed.data(), framed.size()));
}

Status ReplicatedKvService::PreloadPut(uint64_t key, ByteSpan value) {
  const Bytes framed = FrameApplied(0, true, value);
  return kv_->Put(key, ByteSpan(framed.data(), framed.size()));
}

Result<ReplicatedKvService::Applied> ReplicatedKvService::ReadApplied(uint64_t key) {
  auto stored = kv_->Get(key);
  if (!stored.ok()) {
    if (stored.status().code() == StatusCode::kNotFound) {
      return Applied{};
    }
    return stored.status();
  }
  ByteReader reader(ByteSpan(stored->data(), stored->size()));
  Applied applied;
  applied.stamp = reader.ReadU64();
  applied.present = reader.ReadU8() != 0;
  applied.value = reader.ReadBytes(static_cast<uint32_t>(reader.remaining()));
  if (!reader.Ok()) {
    return DataLoss("malformed applied value");
  }
  return applied;
}

uint64_t ReplicatedKvService::StateDigest() {
  auto rows = kv_->Scan(0, ~0ull);
  CHECK(rows.ok());
  uint64_t digest = 0xcbf29ce484222325ull;
  for (const auto& [key, framed] : *rows) {
    digest = Fold(digest, key);
    digest = FoldBytes(digest, ByteSpan(framed.data(), framed.size()));
  }
  return digest;
}

RpcResponse ReplicatedKvService::Handle(uint16_t opcode, const Buffer& payload) {
  // Every arrival is a kill boundary: reserve, chain write, read, seal —
  // the victim decides its own death, on its own shard, in serve order.
  if (KillBoundary()) {
    dpu_->engine()->Advance(kDeadRefuseCost);
    return RpcResponse::Fail(Unavailable("node killed"));
  }
  dpu_->engine()->Advance(kShellCost);
  ByteReader reader(payload);
  if (opcode == RepOp::kSeal) {
    return HandleSeal(reader);
  }
  const uint32_t epoch = reader.ReadU32();
  if (!reader.Ok()) {
    return RpcResponse::Fail(InvalidArgument("missing epoch"));
  }
  if (epoch != epoch_) {
    return StaleEpoch();
  }
  switch (opcode) {
    case RepOp::kReserve: {
      if (awaiting_tail_) {
        // Sealed into this epoch but the recovered tail has not been
        // adopted yet: refusing to sequence (rather than handing out
        // positions below the recovered tail) keeps fresh positions
        // disjoint from the repaired prefix. The caller re-drives
        // recovery; kAborted carries the config like any stale reject.
        return StaleEpoch();
      }
      ByteWriter out;
      out.PutU64(log_->Reserve());
      return RpcResponse::Ok(Buffer(out.Take()));
    }
    case RepOp::kWrite: {
      const uint64_t position = reader.ReadU64();
      if (!reader.Ok() || reader.remaining() == 0) {
        return RpcResponse::Fail(InvalidArgument("malformed replicated write"));
      }
      const Bytes entry = reader.ReadBytes(static_cast<uint32_t>(reader.remaining()));
      const ByteSpan entry_span(entry.data(), entry.size());
      Status wrote = log_->WriteAt(position, entry_span);
      if (wrote.code() == StatusCode::kAlreadyExists) {
        // Repair copies race benignly (identical bytes, applied when the
        // original landed); a junked position tells the writer to
        // re-reserve. Either way the position is settled.
        return RpcResponse::Fail(wrote);
      }
      if (!wrote.ok()) {
        return RpcResponse::Fail(wrote);
      }
      Status applied = Apply(position + 1, entry_span);
      if (!applied.ok()) {
        return RpcResponse::Fail(applied);
      }
      // Post-apply pre-ack boundary: the write is durable and applied on
      // this replica, but the acknowledgement dies with the node — the
      // at-least-once hazard the audit must absorb.
      if (KillBoundary()) {
        return RpcResponse::Fail(Unavailable("killed before ack"));
      }
      return RpcResponse::Ok();
    }
    case RepOp::kRead: {
      const uint64_t key = reader.ReadU64();
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed replicated read"));
      }
      auto applied = ReadApplied(key);
      if (!applied.ok()) {
        return RpcResponse::Fail(applied.status());
      }
      ByteWriter out;
      out.PutU8(applied->present ? 1 : 0);
      out.PutU64(applied->stamp);
      out.PutU32(static_cast<uint32_t>(applied->value.size()));
      out.PutBytes(ByteSpan(applied->value.data(), applied->value.size()));
      return RpcResponse::Ok(Buffer(out.Take()));
    }
    case RepOp::kAdoptTail: {
      const uint64_t tail = reader.ReadU64();
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed tail adoption"));
      }
      log_->AdvanceTail(tail);
      awaiting_tail_ = false;
      counters_.Add("rep_tail_adoptions", 1);
      return RpcResponse::Ok();
    }
    case RepOp::kReadAt: {
      const uint64_t position = reader.ReadU64();
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed position read"));
      }
      auto entry = log_->Read(position);
      if (!entry.ok()) {
        // Past this replica's tail means it simply never saw the position:
        // a hole from the repairer's point of view.
        if (entry.status().code() == StatusCode::kOutOfRange) {
          return RpcResponse::Fail(NotFound("position not on this replica"));
        }
        return RpcResponse::Fail(entry.status());
      }
      return RpcResponse::Ok(Buffer(std::move(entry).value()));
    }
    case RepOp::kFill: {
      const uint64_t position = reader.ReadU64();
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed fill"));
      }
      Status filled = log_->Fill(position);
      if (!filled.ok()) {
        return RpcResponse::Fail(filled);
      }
      return RpcResponse::Ok();
    }
    default:
      return RpcResponse::Fail(Unimplemented("unknown replicated KV opcode"));
  }
}

RpcResponse ReplicatedKvService::HandleSeal(ByteReader& reader) {
  const uint32_t epoch = reader.ReadU32();
  const uint64_t dead = reader.ReadU64();
  if (!reader.Ok()) {
    return RpcResponse::Fail(InvalidArgument("malformed seal"));
  }
  if (epoch < epoch_) {
    return StaleEpoch();
  }
  // Idempotent: re-seals at the current epoch union the accusation set
  // (racing recoverers converge); a higher epoch supersedes and re-arms
  // the tail-adoption gate.
  if (epoch > epoch_) {
    epoch_ = epoch;
    awaiting_tail_ = true;
  }
  dead_mask_ |= dead;
  counters_.Add("rep_seals_served", 1);
  ByteWriter out;
  out.PutU64(log_->Tail());
  return RpcResponse::Ok(Buffer(out.Take()));
}

// -- ReplicatedKvClient -------------------------------------------------------

struct ReplicatedKvClient::Op {
  static constexpr uint8_t kGetOp = 0;
  uint8_t kind = kGetOp;  // RepEntryKind::{kPut,kDelete} or kGetOp
  uint64_t key = 0;
  Bytes value;
  uint32_t group = 0;
  sim::SimTime deadline = 0;
  uint32_t attempts = 0;
  sim::Duration backoff = 0;
  uint64_t position = 0;
  uint32_t chain_next = 0;
  bool wrote_any = false;  // some chain write landed (ambiguous on failure)
  bool finished = false;
  PutDone put_done;
  GetDone get_done;
};

struct ReplicatedKvClient::Recovery {
  std::shared_ptr<Op> op;
  uint32_t group = 0;
  uint32_t target_epoch = 0;
  uint64_t dead = 0;
  uint64_t recovered_tail = 0;
  uint32_t seal_next = 0;
  uint64_t repair_pos = 0;
  Bytes entry;      // entry found for repair_pos (copy mode)
  bool fill = false;  // no survivor holds repair_pos: junk-fill it
  uint32_t write_next = 0;
  bool done = false;
};

ReplicatedKvClient::ReplicatedKvClient(sim::ParallelEngine* engine, ShardedRpcNode* self,
                                       std::vector<ShardedRpcNode*> replicas,
                                       uint32_t groups, uint32_t replicas_per_group,
                                       RepClientOptions options)
    : engine_(engine),
      self_(self),
      replicas_(std::move(replicas)),
      groups_(groups),
      replicas_per_group_(replicas_per_group),
      options_(options),
      views_(groups) {
  CHECK_EQ(replicas_.size(), size_t{groups_} * replicas_per_group_);
  CHECK_LE(replicas_per_group_, 64u);  // accusation set is a u64 mask
}

sim::Engine& ReplicatedKvClient::shard_engine() { return engine_->shard(self_->shard()); }

sim::SimTime ReplicatedKvClient::Now() { return shard_engine().Now(); }

uint32_t ReplicatedKvClient::GroupOf(uint64_t key) const {
  return static_cast<uint32_t>(KvPartitionOf(key, groups_));
}

ShardedRpcNode* ReplicatedKvClient::Replica(uint32_t group, uint32_t index) const {
  return replicas_[size_t{group} * replicas_per_group_ + index];
}

uint32_t ReplicatedKvClient::HeadOf(uint32_t group) const {
  const uint64_t dead = views_[group].dead;
  for (uint32_t r = 0; r < replicas_per_group_; ++r) {
    if ((dead & (1ull << r)) == 0) {
      return r;
    }
  }
  return replicas_per_group_;
}

uint32_t ReplicatedKvClient::TailOf(uint32_t group) const {
  const uint64_t dead = views_[group].dead;
  for (uint32_t r = replicas_per_group_; r > 0; --r) {
    if ((dead & (1ull << (r - 1))) == 0) {
      return r - 1;
    }
  }
  return replicas_per_group_;
}

RpcRequest ReplicatedKvClient::MakeRequest(uint16_t opcode, sim::SimTime deadline) const {
  RpcRequest request;
  request.service = ServiceId::kRepKv;
  request.opcode = opcode;
  request.deadline = deadline;
  return request;
}

void ReplicatedKvClient::PutAsync(uint64_t key, Bytes value, PutDone done) {
  auto op = std::make_shared<Op>();
  op->kind = RepEntryKind::kPut;
  op->key = key;
  op->value = std::move(value);
  op->put_done = std::move(done);
  Start(std::move(op));
}

void ReplicatedKvClient::DeleteAsync(uint64_t key, PutDone done) {
  auto op = std::make_shared<Op>();
  op->kind = RepEntryKind::kDelete;
  op->key = key;
  op->put_done = std::move(done);
  Start(std::move(op));
}

void ReplicatedKvClient::GetAsync(uint64_t key, GetDone done) {
  auto op = std::make_shared<Op>();
  op->kind = Op::kGetOp;
  op->key = key;
  op->get_done = std::move(done);
  Start(std::move(op));
}

void ReplicatedKvClient::Start(std::shared_ptr<Op> op) {
  op->group = GroupOf(op->key);
  op->deadline = Now() + options_.op_deadline;
  Attempt(std::move(op));
}

void ReplicatedKvClient::Finish(std::shared_ptr<Op> op, Status status) {
  if (op->finished) {
    return;
  }
  op->finished = true;
  if (!status.ok() && op->wrote_any) {
    counters_.Add("rep_partial_abandons", 1);
  }
  if (op->kind == Op::kGetOp) {
    op->get_done(std::move(status), false, 0, {});
  } else {
    op->put_done(std::move(status), op->position);
  }
}

void ReplicatedKvClient::Attempt(std::shared_ptr<Op> op) {
  if (op->finished) {
    return;
  }
  if (Now() >= op->deadline) {
    Finish(std::move(op), DeadlineExceeded("rep op deadline"));
    return;
  }
  if (++op->attempts > options_.max_attempts) {
    Finish(std::move(op), Unavailable("rep attempts exhausted"));
    return;
  }
  if (op->kind == Op::kGetOp) {
    SendRead(std::move(op));
  } else {
    SendReserve(std::move(op));
  }
}

void ReplicatedKvClient::Backoff(std::shared_ptr<Op> op) {
  if (op->finished) {
    return;
  }
  counters_.Add("rep_retries", 1);
  const sim::Duration delay =
      op->backoff == 0 ? options_.initial_backoff : op->backoff;
  op->backoff = std::min<sim::Duration>(
      static_cast<sim::Duration>(delay * options_.backoff_multiplier),
      options_.max_backoff);
  if (Now() + delay >= op->deadline) {
    Finish(std::move(op), DeadlineExceeded("rep op deadline (backoff)"));
    return;
  }
  shard_engine().ScheduleAfter(delay, [this, op] { Attempt(op); });
}

bool ReplicatedKvClient::AdoptConfig(uint32_t group, const Buffer& payload) {
  ByteReader reader(payload);
  const uint32_t epoch = reader.ReadU32();
  const uint64_t dead = reader.ReadU64();
  if (!reader.Ok()) {
    return false;
  }
  View& view = views_[group];
  if (epoch > view.epoch || (epoch == view.epoch && (dead | view.dead) != view.dead)) {
    view.epoch = std::max(view.epoch, epoch);
    view.dead |= dead;
    return true;
  }
  return false;
}

void ReplicatedKvClient::OnFailure(std::shared_ptr<Op> op, uint32_t index,
                                   const RpcResponse& response, bool mid_chain) {
  if (mid_chain) {
    op->wrote_any = true;
  }
  const uint32_t group = op->group;
  switch (response.status.code()) {
    case StatusCode::kAborted:
      // Stale epoch (or a sealed group awaiting its tail). The rejection
      // carries the replica's config: adopt it if it moves us forward;
      // otherwise the group is mid-recovery (or the replica lags) and we
      // drive recovery ourselves.
      counters_.Add("rep_stale_epoch", 1);
      if (AdoptConfig(group, response.payload)) {
        Backoff(std::move(op));
      } else {
        StartRecovery(std::move(op), views_[group].dead, views_[group].epoch + 1);
      }
      return;
    case StatusCode::kUnavailable:
      // Failure detection: accuse the silent replica and fail over.
      StartRecovery(std::move(op), views_[group].dead | (1ull << index),
                    views_[group].epoch + 1);
      return;
    case StatusCode::kAlreadyExists:
      // The position was claimed or junked under us: abandon it and
      // re-reserve a fresh one.
      counters_.Add("rep_reserve_conflicts", 1);
      Backoff(std::move(op));
      return;
    case StatusCode::kResourceExhausted:
      // Admission shed the request (PR 5): retry within the deadline.
      Backoff(std::move(op));
      return;
    default:
      Finish(std::move(op), response.status);
      return;
  }
}

void ReplicatedKvClient::SendReserve(std::shared_ptr<Op> op) {
  const uint32_t head = HeadOf(op->group);
  if (head >= replicas_per_group_) {
    Finish(std::move(op), Unavailable("all replicas accused"));
    return;
  }
  RpcRequest request = MakeRequest(RepOp::kReserve, op->deadline);
  ByteWriter payload;
  payload.PutU32(views_[op->group].epoch);
  request.payload = Buffer(payload.Take());
  self_->CallAsync(Replica(op->group, head), request,
                   [this, op, head](Result<RpcResponse> result) {
                     if (op->finished) {
                       return;
                     }
                     RpcResponse response = result.ok()
                                                ? std::move(result).value()
                                                : RpcResponse::Fail(result.status());
                     if (!response.status.ok()) {
                       OnFailure(std::move(op), head, response, false);
                       return;
                     }
                     ByteReader reader(response.payload);
                     op->position = reader.ReadU64();
                     if (!reader.Ok()) {
                       Finish(std::move(op), DataLoss("malformed reserve response"));
                       return;
                     }
                     op->chain_next = 0;
                     SendNextWrite(std::move(op));
                   });
}

void ReplicatedKvClient::SendNextWrite(std::shared_ptr<Op> op) {
  const uint64_t dead = views_[op->group].dead;
  while (op->chain_next < replicas_per_group_ &&
         (dead & (1ull << op->chain_next)) != 0) {
    ++op->chain_next;
  }
  if (op->chain_next >= replicas_per_group_) {
    // Write-all reached the end of the live chain: acknowledged.
    Finish(std::move(op), Status::Ok());
    return;
  }
  const uint32_t target = op->chain_next;
  RpcRequest request = MakeRequest(RepOp::kWrite, op->deadline);
  ByteWriter payload;
  payload.PutU32(views_[op->group].epoch);
  payload.PutU64(op->position);
  payload.PutU8(op->kind);
  payload.PutU64(op->key);
  payload.PutU32(static_cast<uint32_t>(op->value.size()));
  payload.PutBytes(ByteSpan(op->value.data(), op->value.size()));
  request.payload = Buffer(payload.Take());
  self_->CallAsync(Replica(op->group, target), request,
                   [this, op, target](Result<RpcResponse> result) {
                     if (op->finished) {
                       return;
                     }
                     RpcResponse response = result.ok()
                                                ? std::move(result).value()
                                                : RpcResponse::Fail(result.status());
                     if (!response.status.ok()) {
                       OnFailure(std::move(op), target, response, target > 0);
                       return;
                     }
                     op->wrote_any = true;
                     ++op->chain_next;
                     SendNextWrite(std::move(op));
                   });
}

void ReplicatedKvClient::SendRead(std::shared_ptr<Op> op) {
  // Reads go to the chain tail: the only replica whose state is guaranteed
  // to be a subset of every live replica's, so no failover can retract an
  // observed value.
  const uint32_t tail = TailOf(op->group);
  if (tail >= replicas_per_group_) {
    Finish(std::move(op), Unavailable("all replicas accused"));
    return;
  }
  RpcRequest request = MakeRequest(RepOp::kRead, op->deadline);
  ByteWriter payload;
  payload.PutU32(views_[op->group].epoch);
  payload.PutU64(op->key);
  request.payload = Buffer(payload.Take());
  self_->CallAsync(Replica(op->group, tail), request,
                   [this, op, tail](Result<RpcResponse> result) {
                     if (op->finished) {
                       return;
                     }
                     RpcResponse response = result.ok()
                                                ? std::move(result).value()
                                                : RpcResponse::Fail(result.status());
                     if (!response.status.ok()) {
                       OnFailure(std::move(op), tail, response, false);
                       return;
                     }
                     ByteReader reader(response.payload);
                     const bool present = reader.ReadU8() != 0;
                     const uint64_t stamp = reader.ReadU64();
                     const uint32_t len = reader.ReadU32();
                     Bytes value = reader.ReadBytes(len);
                     if (!reader.Ok()) {
                       Finish(std::move(op), DataLoss("malformed read response"));
                       return;
                     }
                     op->finished = true;
                     op->get_done(Status::Ok(), present, stamp, std::move(value));
                   });
}

// -- Failover -----------------------------------------------------------------

void ReplicatedKvClient::StartRecovery(std::shared_ptr<Op> op, uint64_t accused,
                                       uint32_t target_epoch) {
  if (op->finished) {
    return;
  }
  if (Now() >= op->deadline) {
    // A partially recovered group is safe to leave behind: seal and repair
    // are idempotent, so the next op's recovery resumes the work.
    Finish(std::move(op), DeadlineExceeded("rep op deadline (recovery)"));
    return;
  }
  counters_.Add("rep_failovers", 1);
  auto rec = std::make_shared<Recovery>();
  rec->group = op->group;
  rec->op = std::move(op);
  rec->target_epoch = target_epoch;
  rec->dead = accused;
  SealNext(std::move(rec));
}

void ReplicatedKvClient::AbandonRecovery(std::shared_ptr<Recovery> rec,
                                         const Buffer& config) {
  // A competing recovery reached a higher epoch: its seal/repair covers
  // ours, so adopt whatever config the rejection carried and retry the op.
  rec->done = true;
  AdoptConfig(rec->group, config);
  Backoff(rec->op);
}

void ReplicatedKvClient::SealNext(std::shared_ptr<Recovery> rec) {
  if (rec->done || rec->op->finished) {
    return;
  }
  while (rec->seal_next < replicas_per_group_ &&
         (rec->dead & (1ull << rec->seal_next)) != 0) {
    ++rec->seal_next;
  }
  if (rec->dead == (replicas_per_group_ == 64
                        ? ~0ull
                        : (1ull << replicas_per_group_) - 1)) {
    rec->done = true;
    Finish(rec->op, Unavailable("all replicas accused"));
    return;
  }
  if (rec->seal_next >= replicas_per_group_) {
    rec->repair_pos = 0;
    RepairNext(std::move(rec));
    return;
  }
  const uint32_t target = rec->seal_next;
  RpcRequest request = MakeRequest(RepOp::kSeal, rec->op->deadline);
  ByteWriter payload;
  payload.PutU32(rec->target_epoch);
  payload.PutU64(rec->dead);
  request.payload = Buffer(payload.Take());
  self_->CallAsync(Replica(rec->group, target), request,
                   [this, rec, target](Result<RpcResponse> result) {
                     if (rec->done || rec->op->finished) {
                       return;
                     }
                     RpcResponse response = result.ok()
                                                ? std::move(result).value()
                                                : RpcResponse::Fail(result.status());
                     if (response.status.ok()) {
                       ByteReader reader(response.payload);
                       const uint64_t tail = reader.ReadU64();
                       if (!reader.Ok()) {
                         rec->done = true;
                         Finish(rec->op, DataLoss("malformed seal response"));
                         return;
                       }
                       counters_.Add("rep_seals", 1);
                       rec->recovered_tail = std::max(rec->recovered_tail, tail);
                       ++rec->seal_next;
                       SealNext(std::move(rec));
                       return;
                     }
                     if (response.status.code() == StatusCode::kUnavailable) {
                       // Another death mid-seal: accuse it and restart the
                       // round (re-seals at the same epoch are idempotent).
                       rec->dead |= 1ull << target;
                       rec->seal_next = 0;
                       rec->recovered_tail = 0;
                       SealNext(std::move(rec));
                       return;
                     }
                     if (response.status.code() == StatusCode::kAborted) {
                       AbandonRecovery(std::move(rec), response.payload);
                       return;
                     }
                     rec->done = true;
                     Finish(rec->op, response.status);
                   });
}

void ReplicatedKvClient::RepairNext(std::shared_ptr<Recovery> rec) {
  if (rec->done || rec->op->finished) {
    return;
  }
  if (Now() >= rec->op->deadline) {
    rec->done = true;
    Finish(rec->op, DeadlineExceeded("rep op deadline (repair)"));
    return;
  }
  if (rec->repair_pos >= rec->recovered_tail) {
    AdoptRecoveredTail(std::move(rec));
    return;
  }
  rec->entry.clear();
  rec->fill = false;
  RepairRead(std::move(rec), 0);
}

void ReplicatedKvClient::RepairRead(std::shared_ptr<Recovery> rec, uint32_t from) {
  if (rec->done || rec->op->finished) {
    return;
  }
  while (from < replicas_per_group_ && (rec->dead & (1ull << from)) != 0) {
    ++from;
  }
  if (from >= replicas_per_group_) {
    // No survivor holds the position: junk-fill it everywhere so the log
    // stays prefix-readable and every replica converges to the same hole.
    rec->fill = true;
    counters_.Add("rep_repair_fills", 1);
    rec->write_next = 0;
    RepairWrite(std::move(rec), 0, true);
    return;
  }
  RpcRequest request = MakeRequest(RepOp::kReadAt, rec->op->deadline);
  ByteWriter payload;
  payload.PutU32(rec->target_epoch);
  payload.PutU64(rec->repair_pos);
  request.payload = Buffer(payload.Take());
  self_->CallAsync(
      Replica(rec->group, from), request,
      [this, rec, from](Result<RpcResponse> result) {
        if (rec->done || rec->op->finished) {
          return;
        }
        RpcResponse response = result.ok() ? std::move(result).value()
                                           : RpcResponse::Fail(result.status());
        if (response.status.ok()) {
          const ByteSpan found = response.payload.span();
          rec->entry.assign(found.begin(), found.end());
          counters_.Add("rep_repair_copies", 1);
          RepairWrite(std::move(rec), 0, false);
          return;
        }
        switch (response.status.code()) {
          case StatusCode::kNotFound:
            RepairRead(std::move(rec), from + 1);
            return;
          case StatusCode::kDataLoss:
            // Already junked at this replica (an earlier recovery): the
            // junk is authoritative, propagate it.
            rec->fill = true;
            counters_.Add("rep_repair_fills", 1);
            RepairWrite(std::move(rec), 0, true);
            return;
          case StatusCode::kUnavailable:
            rec->done = true;
            StartRecovery(rec->op, rec->dead | (1ull << from), rec->target_epoch + 1);
            return;
          case StatusCode::kAborted:
            AbandonRecovery(std::move(rec), response.payload);
            return;
          default:
            rec->done = true;
            Finish(rec->op, response.status);
            return;
        }
      });
}

void ReplicatedKvClient::RepairWrite(std::shared_ptr<Recovery> rec, uint32_t to,
                                     bool fill) {
  if (rec->done || rec->op->finished) {
    return;
  }
  while (to < replicas_per_group_ && (rec->dead & (1ull << to)) != 0) {
    ++to;
  }
  if (to >= replicas_per_group_) {
    ++rec->repair_pos;
    RepairNext(std::move(rec));
    return;
  }
  RpcRequest request =
      MakeRequest(fill ? RepOp::kFill : RepOp::kWrite, rec->op->deadline);
  ByteWriter payload;
  payload.PutU32(rec->target_epoch);
  payload.PutU64(rec->repair_pos);
  if (!fill) {
    payload.PutBytes(ByteSpan(rec->entry.data(), rec->entry.size()));
  }
  request.payload = Buffer(payload.Take());
  self_->CallAsync(
      Replica(rec->group, to), request,
      [this, rec, to, fill](Result<RpcResponse> result) {
        if (rec->done || rec->op->finished) {
          return;
        }
        RpcResponse response = result.ok() ? std::move(result).value()
                                           : RpcResponse::Fail(result.status());
        // kAlreadyExists is success here: the position is settled (another
        // recoverer or the original writer beat us to it).
        if (response.status.ok() ||
            response.status.code() == StatusCode::kAlreadyExists) {
          RepairWrite(std::move(rec), to + 1, fill);
          return;
        }
        switch (response.status.code()) {
          case StatusCode::kUnavailable:
            rec->done = true;
            StartRecovery(rec->op, rec->dead | (1ull << to), rec->target_epoch + 1);
            return;
          case StatusCode::kAborted:
            AbandonRecovery(std::move(rec), response.payload);
            return;
          default:
            rec->done = true;
            Finish(rec->op, response.status);
            return;
        }
      });
}

void ReplicatedKvClient::AdoptRecoveredTail(std::shared_ptr<Recovery> rec) {
  // New sequencer: the head resumes from the recovered tail, past every
  // position any survivor ever saw.
  uint32_t head = 0;
  while (head < replicas_per_group_ && (rec->dead & (1ull << head)) != 0) {
    ++head;
  }
  CHECK_LT(head, replicas_per_group_);
  RpcRequest request = MakeRequest(RepOp::kAdoptTail, rec->op->deadline);
  ByteWriter payload;
  payload.PutU32(rec->target_epoch);
  payload.PutU64(rec->recovered_tail);
  request.payload = Buffer(payload.Take());
  self_->CallAsync(
      Replica(rec->group, head), request,
      [this, rec, head](Result<RpcResponse> result) {
        if (rec->done || rec->op->finished) {
          return;
        }
        RpcResponse response = result.ok() ? std::move(result).value()
                                           : RpcResponse::Fail(result.status());
        if (response.status.ok()) {
          FinishRecovery(std::move(rec));
          return;
        }
        switch (response.status.code()) {
          case StatusCode::kUnavailable:
            rec->done = true;
            StartRecovery(rec->op, rec->dead | (1ull << head), rec->target_epoch + 1);
            return;
          case StatusCode::kAborted:
            AbandonRecovery(std::move(rec), response.payload);
            return;
          default:
            rec->done = true;
            Finish(rec->op, response.status);
            return;
        }
      });
}

void ReplicatedKvClient::FinishRecovery(std::shared_ptr<Recovery> rec) {
  rec->done = true;
  View& view = views_[rec->group];
  view.epoch = std::max(view.epoch, rec->target_epoch);
  view.dead |= rec->dead;
  Backoff(rec->op);
}

// -- ReplicatedKvCluster ------------------------------------------------------

namespace {

HyperionConfig RepNodeConfig(const RepClusterOptions& options) {
  HyperionConfig config;
  config.nvme_devices = options.nvme_devices;
  config.lbas_per_device = options.lbas_per_device;
  config.dram_bytes = options.dram_bytes;
  config.hbm_bytes = options.hbm_bytes;
  config.link_gbps = options.fabric.default_link_gbps;
  return config;
}

}  // namespace

ReplicatedKvCluster::Node::Node(ReplicatedKvCluster* cluster, uint32_t id, uint32_t shard)
    : id(id),
      shard(shard),
      fabric(&clock, cluster->options_.fabric),
      dpu(&clock, &fabric, RepNodeConfig(cluster->options_)),
      rng(cluster->options_.workload.seed ^ (0x9e3779b97f4a7c15ULL * (id + 1))) {
  CHECK(dpu.Boot().ok());
  auto installed = ReplicatedKvService::Install(&dpu, cluster->options_.backend);
  CHECK(installed.ok());
  service = std::move(*installed);
  // Registering the endpoint inside id-ordered node construction pins the
  // logical source order that breaks cross-shard timestamp ties,
  // independent of the shard layout (same discipline as KvCluster).
  endpoint = std::make_unique<ShardedRpcNode>(&cluster->engine(), shard, &dpu.rpc(), &clock,
                                              cluster->options_.fabric,
                                              cluster->options_.fabric.default_link_gbps);
  if (cluster->options_.overload.enabled) {
    endpoint->SetOverloadPolicy(cluster->options_.overload);
  }
  if (cluster->options_.kill_at_boundary != RepClusterOptions::kNoKill &&
      cluster->options_.kill_node == id) {
    sim::FaultPlan plan;
    plan.AtQuery(sim::FaultSite::kNodeKill, cluster->options_.kill_at_boundary);
    injector = std::make_unique<sim::FaultInjector>(&clock, plan);
    service->SetFaultInjector(injector.get());
  }
  clients.resize(cluster->options_.workload.clients_per_node,
                 ClientState{cluster->options_.workload.ops_per_client, 0});
}

ReplicatedKvCluster::ReplicatedKvCluster(const RepClusterOptions& options)
    : options_(options) {
  CHECK_GT(options_.groups, 0u);
  CHECK_GT(options_.replicas_per_group, 0u);
  CHECK_GE(options_.workload.value_bytes, 8u);  // tag prefix
  CHECK_GT(options_.workload.key_space, 0u);
  const uint32_t num_nodes = options_.groups * options_.replicas_per_group;
  if (options_.num_shards == 0 || options_.num_shards > num_nodes) {
    options_.num_shards = num_nodes;
  }

  sim::ParallelEngineOptions popts;
  popts.num_shards = options_.num_shards;
  popts.lookahead_floor = options_.lookahead_floor;
  popts.use_threads = options_.use_threads;
  engine_ = std::make_unique<sim::ParallelEngine>(popts);

  nodes_.reserve(num_nodes);
  for (uint32_t id = 0; id < num_nodes; ++id) {
    nodes_.push_back(std::make_unique<Node>(this, id, ShardOf(id)));
  }
  std::vector<ShardedRpcNode*> replicas;
  replicas.reserve(nodes_.size());
  for (auto& node : nodes_) {
    replicas.push_back(node->endpoint.get());
  }
  for (auto& node : nodes_) {
    node->client = std::make_unique<ReplicatedKvClient>(
        engine_.get(), node->endpoint.get(), replicas, options_.groups,
        options_.replicas_per_group, options_.client);
  }
}

ReplicatedKvCluster::~ReplicatedKvCluster() = default;

uint32_t ReplicatedKvCluster::ShardOf(uint32_t node) const {
  const uint32_t num_nodes = options_.groups * options_.replicas_per_group;
  return static_cast<uint32_t>(uint64_t{node} * options_.num_shards / num_nodes);
}

Bytes ReplicatedKvCluster::TaggedValue(uint64_t tag) const {
  Bytes value(options_.workload.value_bytes);
  for (size_t i = 8; i < value.size(); ++i) {
    value[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  Bytes prefix;
  PutU64(prefix, tag);
  std::copy(prefix.begin(), prefix.end(), value.begin());
  return value;
}

void ReplicatedKvCluster::Preload() {
  // Every key lands on every replica of its group with stamp 0 (below any
  // log position), directly — no virtual wire — so the measured phase runs
  // against a warm, already-replicated dataset.
  for (uint64_t key = 0; key < options_.workload.key_space; ++key) {
    const uint32_t group =
        static_cast<uint32_t>(KvPartitionOf(key, options_.groups));
    const Bytes value = TaggedValue(PreloadTag(key));
    for (uint32_t r = 0; r < options_.replicas_per_group; ++r) {
      Node& replica = *nodes_[group * options_.replicas_per_group + r];
      CHECK(replica.service->PreloadPut(key, ByteSpan(value.data(), value.size())).ok());
    }
  }
}

void ReplicatedKvCluster::IssueOp(Node& node, uint32_t client) {
  ClientState& state = node.clients[client];
  CHECK_GT(state.remaining, 0u);
  --state.remaining;
  const ClusterWorkload& workload = options_.workload;
  const uint64_t key = node.rng.Uniform(workload.key_space);
  const bool write = node.rng.Uniform(100) < workload.write_pct;
  const uint32_t global_client = node.id * workload.clients_per_node + client;
  const sim::SimTime invoke = engine_->shard(node.shard).Now();
  auto finish = [this, &node, client, invoke](bool ok, bool put) {
    const sim::SimTime now = engine_->shard(node.shard).Now();
    node.latency.Record(now - invoke);
    if (!ok) {
      ++node.failed_ops;
    } else if (put) {
      ++node.ok_puts;
    } else {
      ++node.ok_gets;
    }
    node.last_completion = std::max(node.last_completion, now);
    if (node.clients[client].remaining > 0) {
      IssueOp(node, client);
    }
  };
  if (write) {
    const uint64_t seq = state.next_seq++;
    const uint64_t tag = (uint64_t{global_client + 1} << 32) | seq;
    Bytes value = TaggedValue(tag);
    node.client->PutAsync(
        key, std::move(value),
        [this, &node, finish, key, tag, global_client, invoke](Status status,
                                                               uint64_t position) {
          const bool ok = status.ok();
          node.history.push_back(RepHistOp{RepHistOp::kPut, global_client, key, tag,
                                           invoke, engine_->shard(node.shard).Now(), ok});
          if (ok) {
            node.acked.push_back(AckedPut{
                static_cast<uint32_t>(KvPartitionOf(key, options_.groups)), key,
                position, tag});
          }
          finish(ok, true);
        });
  } else {
    node.client->GetAsync(
        key, [this, &node, finish, key, global_client, invoke](
                 Status status, bool present, uint64_t stamp, Bytes value) {
          (void)stamp;
          const bool ok = status.ok();
          uint64_t tag = 0;
          if (ok && present && value.size() >= 8) {
            ByteReader reader(ByteSpan(value.data(), value.size()));
            tag = reader.ReadU64();
          }
          node.history.push_back(RepHistOp{RepHistOp::kGet, global_client, key, tag,
                                           invoke, engine_->shard(node.shard).Now(), ok});
          finish(ok, false);
        });
  }
}

RepClusterResult ReplicatedKvCluster::Run() {
  CHECK(!ran_);
  ran_ = true;
  Preload();
  sim::SimTime start_base = 0;
  for (const auto& node : nodes_) {
    start_base = std::max(start_base, node->clock.Now());
  }
  start_base += 1000;
  if (options_.kill_after_ns > 0) {
    Node& victim = *nodes_[options_.kill_node];
    ReplicatedKvService* svc = victim.service.get();
    engine_->shard(victim.shard)
        .ScheduleAt(start_base + options_.kill_after_ns, [svc] { svc->Kill(); });
  }
  const ClusterWorkload& workload = options_.workload;
  for (uint32_t id = 0; id < nodes_.size(); ++id) {
    Node& node = *nodes_[id];
    for (uint32_t client = 0; client < workload.clients_per_node; ++client) {
      if (node.clients[client].remaining == 0) {
        continue;
      }
      const sim::SimTime start =
          start_base + (uint64_t{id} * workload.clients_per_node + client) * 7;
      engine_->shard(node.shard).ScheduleAt(
          start, [this, &node, client] { IssueOp(node, client); });
    }
  }
  engine_->Run();

  RepClusterResult result;
  result.events_run = engine_->stats().events_run;
  result.messages = engine_->stats().messages;
  result.start_ns = start_base;
  for (auto& node : nodes_) {
    result.ok_puts += node->ok_puts;
    result.ok_gets += node->ok_gets;
    result.failed_ops += node->failed_ops;
    if (node->last_completion > start_base) {
      result.makespan_ns = std::max(result.makespan_ns, node->last_completion - start_base);
    }
    merged_latency_.Merge(node->latency);
    const sim::Counters& counters = node->client->counters();
    result.failovers += counters.Get("rep_failovers");
    result.seals += counters.Get("rep_seals");
    result.repair_copies += counters.Get("rep_repair_copies");
    result.repair_fills += counters.Get("rep_repair_fills");
    result.stale_epoch += counters.Get("rep_stale_epoch");
    result.retries += counters.Get("rep_retries");
    result.partial_abandons += counters.Get("rep_partial_abandons");
    if (node->service->dead()) {
      ++result.killed_nodes;
    }
  }
  result.latency_count = merged_latency_.count();
  result.latency_p50_ns = merged_latency_.P50();
  result.latency_p99_ns = merged_latency_.P99();
  result.latency_max_ns = merged_latency_.max();
  // Final group configs and state digests (replica state is a pure function
  // of the message history, so all of this is layout-invariant too).
  result.group_epochs.resize(options_.groups, 0);
  uint64_t digest = 0xcbf29ce484222325ull;
  for (uint32_t g = 0; g < options_.groups; ++g) {
    uint32_t max_epoch = 0;
    uint64_t final_dead = 0;
    for (uint32_t r = 0; r < options_.replicas_per_group; ++r) {
      const Node& node = *nodes_[g * options_.replicas_per_group + r];
      if (node.service->dead()) {
        continue;
      }
      if (node.service->epoch() >= max_epoch) {
        max_epoch = node.service->epoch();
        final_dead = node.service->dead_mask();
      }
    }
    result.group_epochs[g] = max_epoch;
    for (uint32_t r = 0; r < options_.replicas_per_group; ++r) {
      Node& node = *nodes_[g * options_.replicas_per_group + r];
      if (node.service->dead() || (final_dead & (1ull << r)) != 0) {
        digest = Fold(digest, 0xdeadull);
        continue;
      }
      digest = Fold(digest, node.service->StateDigest());
    }
  }
  result.state_digest = digest;
  uint64_t hist_digest = 0xcbf29ce484222325ull;
  for (const RepHistOp& op : History()) {
    hist_digest = Fold(hist_digest, op.kind);
    hist_digest = Fold(hist_digest, op.client);
    hist_digest = Fold(hist_digest, op.key);
    hist_digest = Fold(hist_digest, op.tag);
    hist_digest = Fold(hist_digest, op.invoke_ns);
    hist_digest = Fold(hist_digest, op.return_ns);
    hist_digest = Fold(hist_digest, op.ok ? 1 : 0);
  }
  result.history_digest = hist_digest;
  return result;
}

std::vector<RepHistOp> ReplicatedKvCluster::History() const {
  std::vector<RepHistOp> merged;
  for (const auto& node : nodes_) {
    merged.insert(merged.end(), node->history.begin(), node->history.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const RepHistOp& a, const RepHistOp& b) {
                     if (a.invoke_ns != b.invoke_ns) return a.invoke_ns < b.invoke_ns;
                     return a.client < b.client;
                   });
  return merged;
}

bool ReplicatedKvCluster::LiveAtEnd(uint32_t node) const {
  return !nodes_[node]->service->dead();
}

RepAudit ReplicatedKvCluster::AuditAckedWrites() {
  CHECK(ran_);
  RepAudit audit;
  // Per group: the authoritative final config comes from the max-epoch
  // surviving replica; accused-but-alive replicas stopped receiving
  // repairs, so only un-accused survivors must agree.
  std::vector<uint64_t> final_dead(options_.groups, 0);
  for (uint32_t g = 0; g < options_.groups; ++g) {
    uint32_t max_epoch = 0;
    for (uint32_t r = 0; r < options_.replicas_per_group; ++r) {
      Node& node = *nodes_[g * options_.replicas_per_group + r];
      if (node.service->dead()) {
        final_dead[g] |= 1ull << r;
        continue;
      }
      if (node.service->epoch() >= max_epoch) {
        max_epoch = node.service->epoch();
        final_dead[g] |= node.service->dead_mask();
      }
    }
    uint64_t first_digest = 0;
    bool have_digest = false;
    bool diverged = false;
    for (uint32_t r = 0; r < options_.replicas_per_group; ++r) {
      if ((final_dead[g] & (1ull << r)) != 0) {
        continue;
      }
      Node& node = *nodes_[g * options_.replicas_per_group + r];
      const uint64_t d = node.service->StateDigest();
      if (!have_digest) {
        first_digest = d;
        have_digest = true;
      } else if (d != first_digest) {
        diverged = true;
      }
    }
    if (diverged) {
      ++audit.divergent;
    }
  }
  for (const auto& node : nodes_) {
    for (const AckedPut& acked : node->acked) {
      ++audit.acked;
      for (uint32_t r = 0; r < options_.replicas_per_group; ++r) {
        if ((final_dead[acked.group] & (1ull << r)) != 0) {
          continue;
        }
        Node& replica = *nodes_[acked.group * options_.replicas_per_group + r];
        auto applied = replica.service->ReadApplied(acked.key);
        if (!applied.ok() || applied->stamp < acked.position + 1) {
          ++audit.lost;
          continue;
        }
        if (applied->stamp == acked.position + 1) {
          bool match = applied->present && applied->value.size() >= 8;
          if (match) {
            ByteReader reader(ByteSpan(applied->value.data(), applied->value.size()));
            match = reader.ReadU64() == acked.tag;
          }
          if (!match) {
            ++audit.mismatched;
          }
        }
      }
    }
  }
  return audit;
}

uint64_t ReplicatedKvCluster::VictimBoundaries(uint32_t node) const {
  return nodes_[node]->service->counters().Get("rep_boundaries");
}

}  // namespace hyperion::dpu
