#include "src/dpu/services.h"

#include "src/common/check.h"

namespace hyperion::dpu {

namespace {
// Shell datapath cost per request: header parse, dispatch, response build
// in the always-resident shell pipeline (~300 cycles at 250 MHz).
constexpr sim::Duration kShellCost = 1200;

constexpr uint64_t kKvStoreId = 0x100;
constexpr uint64_t kTreeId = 0x200;
constexpr uint64_t kLogId = 0x300;
}  // namespace

Result<std::unique_ptr<HyperionServices>> HyperionServices::Install(
    Hyperion* dpu, storage::KvBackend kv_backend) {
  if (!dpu->booted()) {
    return Unavailable("install services after Boot()");
  }
  auto services = std::unique_ptr<HyperionServices>(new HyperionServices(dpu));
  ASSIGN_OR_RETURN(storage::KvStore kv,
                   storage::KvStore::Create(&dpu->store(), kKvStoreId, kv_backend));
  services->kv_ = std::make_unique<storage::KvStore>(std::move(kv));
  // The tree service backs §2.4's latency-sensitive pointer chasing: its
  // nodes are placement-hinted to the fast tier (HBM/DRAM), so lookups are
  // network-bound — the regime where offloading the walk pays.
  ASSIGN_OR_RETURN(storage::BPlusTree tree,
                   storage::BPlusTree::Create(&dpu->store(), kTreeId,
                                              {.performance_critical = true}));
  services->tree_ = std::make_unique<storage::BPlusTree>(std::move(tree));
  services->log_ = std::make_unique<storage::CorfuLog>(&dpu->store(), kLogId);
  services->Register();
  return services;
}

void HyperionServices::Register() {
  dpu_->rpc().RegisterService(ServiceId::kKv, [this](uint16_t opcode, const Buffer& payload) {
    return HandleKv(opcode, payload);
  });
  dpu_->rpc().RegisterService(ServiceId::kTree, [this](uint16_t opcode, const Buffer& payload) {
    return HandleTree(opcode, payload);
  });
  dpu_->rpc().RegisterService(ServiceId::kLog, [this](uint16_t opcode, const Buffer& payload) {
    return HandleLog(opcode, payload);
  });
  dpu_->rpc().RegisterService(ServiceId::kControl, [this](uint16_t opcode, const Buffer& payload) {
    return HandleControl(opcode, payload);
  });
  dpu_->rpc().RegisterService(ServiceId::kBlock, [this](uint16_t opcode, const Buffer& payload) {
    return HandleBlock(opcode, payload);
  });
  dpu_->rpc().RegisterService(ServiceId::kApp, [this](uint16_t opcode, const Buffer& payload) {
    return HandleApp(opcode, payload);
  });
}

void HyperionServices::ChargeShell() { dpu_->engine()->Advance(kShellCost); }

RpcResponse HyperionServices::HandleKv(uint16_t opcode, const Buffer& payload) {
  ChargeShell();
  ByteReader reader(payload);
  switch (opcode) {
    case KvOp::kPut: {
      const uint64_t key = reader.ReadU64();
      const uint32_t len = reader.ReadU32();
      if (!reader.Ok() || reader.remaining() < len) {
        return RpcResponse::Fail(InvalidArgument("malformed put"));
      }
      // The value is referenced straight out of the request payload; the
      // copy happens inside Put at the store boundary.
      Buffer value = payload.Slice(reader.offset(), len);
      Status st = kv_->Put(key, value);
      return st.ok() ? RpcResponse::Ok() : RpcResponse::Fail(st);
    }
    case KvOp::kGet: {
      const uint64_t key = reader.ReadU64();
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed get"));
      }
      Result<Buffer> value = kv_->GetBuffer(key);
      if (!value.ok()) {
        return RpcResponse::Fail(value.status());
      }
      return RpcResponse::Ok(std::move(value).value());
    }
    case KvOp::kDelete: {
      const uint64_t key = reader.ReadU64();
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed delete"));
      }
      Status st = kv_->Delete(key);
      return st.ok() ? RpcResponse::Ok() : RpcResponse::Fail(st);
    }
    case KvOp::kScan: {
      const uint64_t lo = reader.ReadU64();
      const uint64_t hi = reader.ReadU64();
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed scan"));
      }
      Result<std::vector<std::pair<uint64_t, Bytes>>> rows = kv_->Scan(lo, hi);
      if (!rows.ok()) {
        return RpcResponse::Fail(rows.status());
      }
      // A scan response is an inherent gather: rows from many blocks merge
      // into one payload.
      ByteWriter out;
      out.PutU32(static_cast<uint32_t>(rows->size()));
      for (const auto& [key, value] : *rows) {
        out.PutU64(key);
        out.PutU32(static_cast<uint32_t>(value.size()));
        out.PutBytes(ByteSpan(value.data(), value.size()));
      }
      return RpcResponse::Ok(out.Take());
    }
    default:
      return RpcResponse::Fail(Unimplemented("unknown KV opcode"));
  }
}

RpcResponse HyperionServices::HandleTree(uint16_t opcode, const Buffer& payload) {
  ChargeShell();
  ByteReader reader(payload);
  switch (opcode) {
    case TreeOp::kGet: {
      const uint64_t key = reader.ReadU64();
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed tree get"));
      }
      Result<Bytes> value = tree_->Get(key);
      if (!value.ok()) {
        return RpcResponse::Fail(value.status());
      }
      return RpcResponse::Ok(std::move(value).value());
    }
    case TreeOp::kReadNode: {
      const uint64_t node_id = reader.ReadU64();
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed node read"));
      }
      Result<Bytes> raw = dpu_->store().Read(
          storage::BPlusNodeSegment(tree_->tree_id(), node_id), 0, storage::BPlusTree::kNodeBytes);
      if (!raw.ok()) {
        return RpcResponse::Fail(raw.status());
      }
      return RpcResponse::Ok(std::move(raw).value());
    }
    case TreeOp::kInfo: {
      ByteWriter out(20);
      out.PutU64(tree_->tree_id());
      out.PutU64(tree_->root_node_id());
      out.PutU32(tree_->Height());
      return RpcResponse::Ok(out.Take());
    }
    default:
      return RpcResponse::Fail(Unimplemented("unknown tree opcode"));
  }
}

RpcResponse HyperionServices::HandleLog(uint16_t opcode, const Buffer& payload) {
  ChargeShell();
  ByteReader reader(payload);
  switch (opcode) {
    case LogOp::kAppend: {
      // The entry bytes go straight from the request payload into the log's
      // framed write — no intermediate staging copy.
      Result<uint64_t> position = log_->Append(payload);
      if (!position.ok()) {
        return RpcResponse::Fail(position.status());
      }
      Bytes out;
      PutU64(out, *position);
      return RpcResponse::Ok(std::move(out));
    }
    case LogOp::kRead: {
      const uint64_t position = reader.ReadU64();
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed log read"));
      }
      Result<Bytes> data = log_->Read(position);
      if (!data.ok()) {
        return RpcResponse::Fail(data.status());
      }
      return RpcResponse::Ok(std::move(data).value());
    }
    case LogOp::kTail: {
      Bytes out;
      PutU64(out, log_->Tail());
      return RpcResponse::Ok(std::move(out));
    }
    case LogOp::kFill: {
      const uint64_t position = reader.ReadU64();
      Status st = log_->Fill(position);
      return st.ok() ? RpcResponse::Ok() : RpcResponse::Fail(st);
    }
    case LogOp::kTrim: {
      const uint64_t prefix = reader.ReadU64();
      Status st = log_->Trim(prefix);
      return st.ok() ? RpcResponse::Ok() : RpcResponse::Fail(st);
    }
    case LogOp::kReserve: {
      Bytes out;
      PutU64(out, log_->Reserve());
      return RpcResponse::Ok(std::move(out));
    }
    case LogOp::kWriteAt: {
      const uint64_t position = reader.ReadU64();
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed write-at"));
      }
      Status st = log_->WriteAt(position, payload.Slice(reader.offset()));
      return st.ok() ? RpcResponse::Ok() : RpcResponse::Fail(st);
    }
    default:
      return RpcResponse::Fail(Unimplemented("unknown log opcode"));
  }
}

RpcResponse HyperionServices::HandleBlock(uint16_t opcode, const Buffer& payload) {
  ChargeShell();
  ByteReader reader(payload);
  switch (opcode) {
    case BlockOp::kRead: {
      const uint32_t nsid = reader.ReadU32();
      const uint64_t slba = reader.ReadU64();
      const uint32_t blocks = reader.ReadU32();
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed block read"));
      }
      Result<Bytes> data = dpu_->nvme().Read(nsid, slba, blocks);
      if (!data.ok()) {
        return RpcResponse::Fail(data.status());
      }
      return RpcResponse::Ok(std::move(data).value());
    }
    case BlockOp::kWrite: {
      const uint32_t nsid = reader.ReadU32();
      const uint64_t slba = reader.ReadU64();
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed block write"));
      }
      // SG write straight out of the request payload: the NVMe command's
      // descriptor references this slice of the wire buffer.
      Status st = dpu_->nvme().WriteChain(nsid, slba,
                                          BufferChain(payload.Slice(reader.offset())));
      return st.ok() ? RpcResponse::Ok() : RpcResponse::Fail(st);
    }
    case BlockOp::kFlush: {
      const uint32_t nsid = reader.ReadU32();
      Status st = dpu_->nvme().Flush(nsid);
      return st.ok() ? RpcResponse::Ok() : RpcResponse::Fail(st);
    }
    case BlockOp::kIdentify: {
      const uint32_t count = dpu_->nvme().NamespaceCount();
      ByteWriter out(4 + 8 * static_cast<size_t>(count));
      out.PutU32(count);
      for (uint32_t ns = 1; ns <= count; ++ns) {
        out.PutU64(*dpu_->nvme().NamespaceCapacity(ns));
      }
      return RpcResponse::Ok(out.Take());
    }
    default:
      return RpcResponse::Fail(Unimplemented("unknown block opcode"));
  }
}

RpcResponse HyperionServices::HandleApp(uint16_t opcode, const Buffer& payload) {
  ChargeShell();
  // opcode = accelerator id from a prior kDeploy; payload = the program's
  // context buffer. The eBPF program mutates the context in place, so this
  // is a genuine copy-on-write boundary — the one honest copy on this path.
  Bytes ctx = payload.ToBytes();
  Result<uint64_t> r0 = dpu_->ProcessPacket(static_cast<AcceleratorId>(opcode),
                                            MutableByteSpan(ctx));
  if (!r0.ok()) {
    return RpcResponse::Fail(r0.status());
  }
  ByteWriter out(8 + ctx.size());
  out.PutU64(*r0);
  out.PutBytes(ByteSpan(ctx.data(), ctx.size()));
  return RpcResponse::Ok(out.Take());
}

Status HyperionServices::ServeVolume(uint32_t nsid) {
  ASSIGN_OR_RETURN(fs::ExtFs volume, fs::ExtFs::Mount(&dpu_->nvme(), nsid));
  volume_ = std::make_unique<fs::AnnotatedReader>(&dpu_->nvme(), nsid,
                                                  fs::GenerateAnnotation(volume));
  dpu_->rpc().RegisterService(ServiceId::kFile, [this](uint16_t opcode, const Buffer& payload) {
    return HandleFile(opcode, payload);
  });
  return Status::Ok();
}

RpcResponse HyperionServices::HandleFile(uint16_t opcode, const Buffer& payload) {
  ChargeShell();
  if (volume_ == nullptr) {
    return RpcResponse::Fail(Unavailable("no volume served"));
  }
  ByteReader reader(payload);
  switch (opcode) {
    case FileOp::kResolve: {
      const std::string path = reader.ReadString();
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed resolve"));
      }
      Result<uint32_t> inode = volume_->ResolvePath(path);
      if (!inode.ok()) {
        return RpcResponse::Fail(inode.status());
      }
      Bytes out;
      PutU32(out, *inode);
      return RpcResponse::Ok(std::move(out));
    }
    case FileOp::kRead: {
      const std::string path = reader.ReadString();
      const uint64_t offset = reader.ReadU64();
      const uint64_t length = reader.ReadU64();
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed file read"));
      }
      Result<Bytes> data = volume_->ReadPath(path, offset, length);
      if (!data.ok()) {
        return RpcResponse::Fail(data.status());
      }
      return RpcResponse::Ok(std::move(data).value());
    }
    default:
      return RpcResponse::Fail(Unimplemented("unknown file opcode"));
  }
}

RpcResponse HyperionServices::HandleControl(uint16_t opcode, const Buffer& payload) {
  ChargeShell();
  ByteReader reader(payload);
  switch (opcode) {
    case ControlOp::kDeploy: {
      const std::string token = reader.ReadString();
      const uint32_t tenant = reader.ReadU32();
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed deploy"));
      }
      Result<ebpf::Program> program =
          ebpf::ParseProgram(payload.span().subspan(reader.offset()));
      if (!program.ok()) {
        return RpcResponse::Fail(program.status());
      }
      Result<AcceleratorId> accel =
          dpu_->DeployAccelerator(token, std::move(program).value(), tenant);
      if (!accel.ok()) {
        return RpcResponse::Fail(accel.status());
      }
      Bytes out;
      PutU32(out, *accel);
      return RpcResponse::Ok(std::move(out));
    }
    case ControlOp::kUndeploy: {
      const std::string token = reader.ReadString();
      const uint32_t accel = reader.ReadU32();
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed undeploy"));
      }
      Status st = dpu_->UndeployAccelerator(token, accel);
      return st.ok() ? RpcResponse::Ok() : RpcResponse::Fail(st);
    }
    case ControlOp::kCreateMap: {
      const std::string token = reader.ReadString();
      const uint32_t tenant = reader.ReadU32();
      ebpf::MapSpec spec;
      spec.type = static_cast<ebpf::MapType>(reader.ReadU8());
      spec.key_size = reader.ReadU32();
      spec.value_size = reader.ReadU32();
      spec.max_entries = reader.ReadU32();
      spec.name = reader.ReadString();
      spec.tenant = tenant;
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed create-map"));
      }
      Result<uint32_t> map_id = dpu_->CreateMap(token, std::move(spec));
      if (!map_id.ok()) {
        return RpcResponse::Fail(map_id.status());
      }
      Bytes out;
      PutU32(out, *map_id);
      return RpcResponse::Ok(std::move(out));
    }
    case ControlOp::kLoadBitstream: {
      const std::string token = reader.ReadString();
      const uint32_t tenant = reader.ReadU32();
      fpga::Bitstream bitstream;
      bitstream.name = reader.ReadString();
      bitstream.size_bytes = reader.ReadU64();
      bitstream.slices = reader.ReadU32();
      bitstream.fmax_mhz = static_cast<double>(reader.ReadU32()) / 10.0;
      bitstream.tenant = tenant;
      if (!reader.Ok()) {
        return RpcResponse::Fail(InvalidArgument("malformed bitstream load"));
      }
      Result<fpga::RegionId> region = dpu_->LoadBitstream(token, std::move(bitstream));
      if (!region.ok()) {
        return RpcResponse::Fail(region.status());
      }
      Bytes out;
      PutU32(out, *region);
      return RpcResponse::Ok(std::move(out));
    }
    case ControlOp::kBoot: {
      Result<sim::Duration> boot = dpu_->Boot();
      if (!boot.ok()) {
        return RpcResponse::Fail(boot.status());
      }
      Bytes out;
      PutU64(out, *boot);
      return RpcResponse::Ok(std::move(out));
    }
    default:
      return RpcResponse::Fail(Unimplemented("unknown control opcode"));
  }
}

}  // namespace hyperion::dpu
