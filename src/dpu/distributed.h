// Distributed CPU-free applications over multiple Hyperion DPUs (paper
// §2.4's C1 class and discussion question 3: "How should one build CPU-free
// distributed applications ... of such standalone, passively disaggregated
// DPUs?").
//
// Both clients follow the passive-disaggregation doctrine: the *client*
// holds the smartness (partitioning, replication, failure fallback) and the
// DPUs serve only fast datapath requests.
//
//   DistributedKvClient  client-driven request routing (MICA [111] style):
//                        keys hash-partition across N DPUs; every op is a
//                        single RPC to the owning partition.
//   ReplicatedLogClient  Boxwood/CORFU-style fault-tolerant shared log:
//                        positions come from the sequencer DPU; data is
//                        written to all R replicas (write-all), reads try
//                        replicas in order (read-one with fallback), and a
//                        damaged replica is repaired from a healthy one.

#ifndef HYPERION_SRC_DPU_DISTRIBUTED_H_
#define HYPERION_SRC_DPU_DISTRIBUTED_H_

#include <cstdint>
#include <vector>

#include "src/dpu/rpc.h"

namespace hyperion::dpu {

class DistributedKvClient {
 public:
  // One RpcClient per DPU partition. Ownership stays with the caller.
  explicit DistributedKvClient(std::vector<RpcClient*> partitions)
      : partitions_(std::move(partitions)) {}

  Status Put(uint64_t key, ByteSpan value);
  // The returned Buffer shares the RPC response's backing bytes.
  Result<Buffer> Get(uint64_t key);
  Status Delete(uint64_t key);

  // The partition that owns `key` (exposed for tests/placement debugging).
  size_t PartitionOf(uint64_t key) const;
  size_t PartitionCount() const { return partitions_.size(); }

 private:
  Result<RpcResponse> CallOwner(uint64_t key, uint16_t opcode, Bytes payload);

  std::vector<RpcClient*> partitions_;
};

class ReplicatedLogClient {
 public:
  // replicas[0] doubles as the sequencer. Requires >= 1 replica.
  explicit ReplicatedLogClient(std::vector<RpcClient*> replicas)
      : replicas_(std::move(replicas)) {}

  // Reserves a position at the sequencer, then writes it to every replica.
  // Fails (and fills the position on the replicas already written) if any
  // replica rejects — write-all gives read-one.
  Result<uint64_t> Append(ByteSpan data);

  // Reads `position`, trying replicas in order; a replica returning
  // data-loss or not-found is skipped. After a successful fallback read the
  // damaged replica is repaired with a write-once put of the good data.
  Result<Buffer> Read(uint64_t position);

  uint64_t repairs() const { return repairs_; }

 private:
  Result<RpcResponse> CallLog(size_t replica, uint16_t opcode, Bytes payload);

  std::vector<RpcClient*> replicas_;
  uint64_t repairs_ = 0;
};

}  // namespace hyperion::dpu

#endif  // HYPERION_SRC_DPU_DISTRIBUTED_H_
