// Distributed CPU-free applications over multiple Hyperion DPUs (paper
// §2.4's C1 class and discussion question 3: "How should one build CPU-free
// distributed applications ... of such standalone, passively disaggregated
// DPUs?").
//
// Both clients follow the passive-disaggregation doctrine: the *client*
// holds the smartness (partitioning, replication, failure fallback) and the
// DPUs serve only fast datapath requests.
//
//   DistributedKvClient  client-driven request routing (MICA [111] style):
//                        keys hash-partition across N DPUs; every op is a
//                        single RPC to the owning partition.
//   ReplicatedLogClient  Boxwood/CORFU-style fault-tolerant shared log:
//                        positions come from the sequencer DPU; data is
//                        written to all R replicas (write-all), reads try
//                        replicas in order (read-one with fallback), and a
//                        damaged replica is repaired from a healthy one.

#ifndef HYPERION_SRC_DPU_DISTRIBUTED_H_
#define HYPERION_SRC_DPU_DISTRIBUTED_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/dpu/rpc.h"

namespace hyperion::dpu {

// Hash-partition placement shared by the synchronous and sharded clients:
// both must route a key to the same owner or the cluster experiments would
// disagree with the single-engine ones.
size_t KvPartitionOf(uint64_t key, size_t partitions);

class DistributedKvClient {
 public:
  // One RpcClient per DPU partition. Ownership stays with the caller.
  explicit DistributedKvClient(std::vector<RpcClient*> partitions)
      : partitions_(std::move(partitions)) {}

  Status Put(uint64_t key, ByteSpan value);
  // The returned Buffer shares the RPC response's backing bytes.
  Result<Buffer> Get(uint64_t key);
  Status Delete(uint64_t key);

  // The partition that owns `key` (exposed for tests/placement debugging).
  size_t PartitionOf(uint64_t key) const;
  size_t PartitionCount() const { return partitions_.size(); }

 private:
  Result<RpcResponse> CallOwner(uint64_t key, uint16_t opcode, Bytes payload);

  std::vector<RpcClient*> partitions_;
};

// Sharded-cluster twin of DistributedKvClient (PR 3): the same client-driven
// MICA-style partitioning, but asynchronous and shard-aware — each op is one
// ShardedRpcNode::CallAsync to the owning partition, so an op whose owner
// lives on another shard becomes a cross-shard frame message and ops to
// different partitions overlap in virtual time. Completions run on the
// calling node's shard.
class ShardedKvClient {
 public:
  // `self` is the calling node's endpoint; `partitions[i]` serves partition
  // i. Ownership stays with the caller; endpoints must outlive the client
  // and every in-flight op.
  ShardedKvClient(ShardedRpcNode* self, std::vector<ShardedRpcNode*> partitions)
      : self_(self), partitions_(std::move(partitions)) {}

  void PutAsync(uint64_t key, ByteSpan value, std::function<void(Status)> done);
  // The Buffer handed to `done` shares the response frame's backing bytes.
  void GetAsync(uint64_t key, std::function<void(Result<Buffer>)> done);
  void DeleteAsync(uint64_t key, std::function<void(Status)> done);

  size_t PartitionOf(uint64_t key) const { return KvPartitionOf(key, partitions_.size()); }
  size_t PartitionCount() const { return partitions_.size(); }

 private:
  void CallOwnerAsync(uint64_t key, uint16_t opcode, Bytes payload,
                      std::function<void(Result<RpcResponse>)> done);

  ShardedRpcNode* self_;
  std::vector<ShardedRpcNode*> partitions_;
};

class ReplicatedLogClient {
 public:
  // replicas[0] doubles as the sequencer. Requires >= 1 replica.
  explicit ReplicatedLogClient(std::vector<RpcClient*> replicas)
      : replicas_(std::move(replicas)) {}

  // Reserves a position at the sequencer, then writes it to every replica.
  // Fails (and fills the position on the replicas already written) if any
  // replica rejects — write-all gives read-one.
  Result<uint64_t> Append(ByteSpan data);

  // Reads `position`, trying replicas in order; a replica returning
  // data-loss or not-found is skipped. After a successful fallback read the
  // damaged replica is repaired with a write-once put of the good data.
  Result<Buffer> Read(uint64_t position);

  uint64_t repairs() const { return repairs_; }

 private:
  Result<RpcResponse> CallLog(size_t replica, uint16_t opcode, Bytes payload);

  std::vector<RpcClient*> replicas_;
  uint64_t repairs_ = 0;
};

}  // namespace hyperion::dpu

#endif  // HYPERION_SRC_DPU_DISTRIBUTED_H_
