// Sharded multi-DPU cluster simulation (PR 3).
//
// KvCluster composes the pieces the parallel-simulation layer introduced
// into the paper's §3 picture — a rack of self-hosting DPUs serving a
// partitioned KV service — and runs it across ParallelEngine shards:
//
//   * Every node is a full Hyperion DPU (its own private cost engine, NVMe,
//     object store, RPC services) plus a population of closed-loop clients
//     colocated on the node's shard.
//   * Keys hash-partition across nodes with the same placement the
//     synchronous DistributedKvClient uses; an op whose owner is another
//     node crosses shards as a serialized RPC frame (ShardedRpcNode).
//   * `num_shards` maps nodes onto shards in contiguous blocks. The result
//     snapshot is bit-identical for any shard count and with threads on or
//     off — tests/cluster_test.cc pins num_shards in {1, 2, 4} — because
//     nodes share no mutable state and cross-node messages merge in
//     (time, source, seq) order.
//
// bench_cluster_scaling uses it for the netkv scaling experiment; the
// determinism regression uses the ClusterResult snapshot.

#ifndef HYPERION_SRC_DPU_CLUSTER_H_
#define HYPERION_SRC_DPU_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/dpu/distributed.h"
#include "src/dpu/hyperion.h"
#include "src/dpu/services.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/parallel.h"
#include "src/sim/stats.h"

namespace hyperion::dpu {

struct ClusterWorkload {
  uint32_t clients_per_node = 8;
  uint32_t ops_per_client = 32;
  uint32_t value_bytes = 256;
  uint64_t key_space = 2048;
  uint32_t write_pct = 50;  // percent of ops that are puts (YCSB-A at 50)
  uint64_t seed = 21;
};

struct ClusterOptions {
  uint32_t num_nodes = 4;
  // 0 defaults to one shard per node (full spatial parallelism). Nodes map
  // to shards in contiguous blocks so the (time, source, seq) merge order
  // is independent of the shard count.
  uint32_t num_shards = 0;
  bool use_threads = true;
  sim::Duration lookahead_floor = 100;
  storage::KvBackend backend = storage::KvBackend::kBTree;
  net::FabricParams fabric;  // wire model for cross-node frames
  ClusterWorkload workload;
  // Distributed tracing: every node gets an obs::Tracer whose origin is the
  // node id (a logical identity — never the shard index), wired into the
  // node's DPU substrates and its shard endpoint. MergedTrace() after Run()
  // is bit-identical across shard layouts and threading modes; virtual time
  // is unaffected either way (trace context rides frames as unmodelled
  // metadata).
  bool trace = false;
  // Trimmed per-node DPU: the cluster experiments care about communication
  // structure, not per-node capacity, and eight full-size nodes would pay
  // construction time for memory the workload never touches.
  uint32_t nvme_devices = 1;
  uint64_t lbas_per_device = 32768;
  uint64_t dram_bytes = 64ull << 20;
  uint64_t hbm_bytes = 16ull << 20;
};

// Everything observable a run produces, in deterministic form: equality
// across two runs (or two shard layouts) means the traces matched.
struct ClusterNodeResult {
  sim::SimTime node_clock_ns = 0;  // the node pipeline's final virtual time
  uint64_t rpcs_served = 0;
  uint64_t ok_ops = 0;  // ops issued by this node's clients
  uint64_t failed_ops = 0;

  bool operator==(const ClusterNodeResult&) const = default;
};

struct ClusterResult {
  uint64_t ok_ops = 0;
  uint64_t failed_ops = 0;
  uint64_t events_run = 0;      // across all shard engines
  uint64_t messages = 0;        // channel messages (layout-invariant)
  // Clients start after the slowest node finishes boot + preload (start_ns),
  // so the measured window excludes the ~2.8 s virtual boot sequence;
  // makespan_ns is last client completion minus start_ns.
  sim::SimTime start_ns = 0;
  sim::SimTime makespan_ns = 0;
  // Client-observed latency merged across nodes (Histogram::Merge).
  uint64_t latency_count = 0;
  uint64_t latency_p50_ns = 0;
  uint64_t latency_p99_ns = 0;
  uint64_t latency_max_ns = 0;
  std::vector<ClusterNodeResult> nodes;

  bool operator==(const ClusterResult&) const = default;
};

class KvCluster {
 public:
  explicit KvCluster(const ClusterOptions& options);
  KvCluster(const KvCluster&) = delete;
  KvCluster& operator=(const KvCluster&) = delete;
  ~KvCluster();

  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }
  uint32_t num_shards() const { return engine_->num_shards(); }
  uint32_t ShardOf(uint32_t node) const;

  sim::ParallelEngine& engine() { return *engine_; }
  ShardedRpcNode& endpoint(uint32_t node) { return *nodes_[node]->endpoint; }

  // Runs the closed-loop workload to quiescence and snapshots the result.
  // One-shot: construct a fresh cluster per run.
  ClusterResult Run();

  // Merged client-observed latency across nodes (valid after Run()).
  const sim::Histogram& merged_latency() const { return merged_latency_; }

  // Per-node tracer (null unless options.trace) and the deterministic
  // cross-node merge — (begin, origin, id) order, the golden-trace oracle.
  const obs::Tracer* tracer(uint32_t node) const { return nodes_[node]->tracer.get(); }
  std::vector<obs::SpanRecord> MergedTrace() const;

  // Cluster-wide metrics: per-node RPC/endpoint counters and the parallel
  // engine's tallies imported into `registry` under stable names.
  void SnapshotMetrics(obs::MetricsRegistry* registry) const;

 private:
  struct Client {
    uint32_t remaining = 0;
  };

  // One simulated DPU node: private clock, full Hyperion, its shard
  // endpoint, and the colocated client population. Nodes interact only
  // through ShardedRpcNode messages — no shared mutable state, which is
  // what makes the shard layout unobservable.
  struct Node {
    Node(KvCluster* cluster, uint32_t id, uint32_t shard);

    uint32_t id;
    uint32_t shard;
    sim::Engine clock;  // private cost engine (never holds events)
    net::Fabric fabric;
    Hyperion dpu;
    std::unique_ptr<obs::Tracer> tracer;  // origin = node id; null untraced
    std::unique_ptr<HyperionServices> services;
    std::unique_ptr<ShardedRpcNode> endpoint;
    std::unique_ptr<ShardedKvClient> kv;
    Rng rng;
    sim::Histogram latency;
    std::vector<Client> clients;
    uint64_t ok_ops = 0;
    uint64_t failed_ops = 0;
    sim::SimTime last_completion = 0;
  };

  void Preload();
  void IssueOp(Node& node, uint32_t client);

  ClusterOptions options_;
  Bytes value_;  // shared value pattern for puts
  std::unique_ptr<sim::ParallelEngine> engine_;
  std::vector<std::unique_ptr<Node>> nodes_;
  sim::Histogram merged_latency_;
  bool ran_ = false;
};

}  // namespace hyperion::dpu

#endif  // HYPERION_SRC_DPU_CLUSTER_H_
