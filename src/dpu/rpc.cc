#include "src/dpu/rpc.h"

#include <algorithm>

namespace hyperion::dpu {

Bytes SerializeRequest(const RpcRequest& request) {
  Bytes out;
  PutU16(out, static_cast<uint16_t>(request.service));
  PutU16(out, request.opcode);
  PutU32(out, static_cast<uint32_t>(request.payload.size()));
  PutBytes(out, ByteSpan(request.payload.data(), request.payload.size()));
  return out;
}

Result<RpcRequest> ParseRequest(ByteSpan data) {
  ByteReader reader(data);
  RpcRequest request;
  request.service = static_cast<ServiceId>(reader.ReadU16());
  request.opcode = reader.ReadU16();
  const uint32_t len = reader.ReadU32();
  request.payload = reader.ReadBytes(len);
  if (!reader.Ok()) {
    return DataLoss("truncated RPC request");
  }
  return request;
}

Bytes SerializeResponse(const RpcResponse& response) {
  Bytes out;
  PutU32(out, static_cast<uint32_t>(response.status.code()));
  PutString(out, std::string(response.status.message()));
  PutU32(out, static_cast<uint32_t>(response.payload.size()));
  PutBytes(out, ByteSpan(response.payload.data(), response.payload.size()));
  return out;
}

Result<RpcResponse> ParseResponse(ByteSpan data) {
  ByteReader reader(data);
  RpcResponse response;
  const auto code = static_cast<StatusCode>(reader.ReadU32());
  const std::string message = reader.ReadString();
  response.status = code == StatusCode::kOk ? Status::Ok() : Status(code, message);
  const uint32_t len = reader.ReadU32();
  response.payload = reader.ReadBytes(len);
  if (!reader.Ok()) {
    return DataLoss("truncated RPC response");
  }
  return response;
}

void RpcServer::RegisterService(ServiceId service, Handler handler) {
  handlers_[service] = std::move(handler);
}

RpcResponse RpcServer::Dispatch(const RpcRequest& request) {
  counters_.Increment("rpcs");
  auto it = handlers_.find(request.service);
  if (it == handlers_.end()) {
    counters_.Increment("rpc_unknown_service");
    return RpcResponse::Fail(NotFound("no such service"));
  }
  return it->second(request.opcode, ByteSpan(request.payload.data(), request.payload.size()));
}

namespace {
// Failure modes a fresh attempt can plausibly fix: a message that fell off
// the wire or failed its checksum. Deterministic rejections (bad service,
// exhausted transport-internal retries) surface immediately.
bool Retryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable || status.code() == StatusCode::kDataLoss;
}
}  // namespace

Result<RpcResponse> RpcClient::Attempt(const RpcRequest& request) {
  const Bytes wire_request = SerializeRequest(request);
  // Request flight.
  RETURN_IF_ERROR(transport_->Send(self_, server_, wire_request.size()).status());
  // Execution at the DPU (advances the shared clock).
  RpcResponse response = peer_->Dispatch(request);
  // Response flight.
  const Bytes wire_response = SerializeResponse(response);
  if (injector_ != nullptr && injector_->ShouldInject(sim::FaultSite::kRpcResponseDrop)) {
    // The server executed but the response evaporated; the client cannot
    // tell this apart from a lost request and must reissue.
    return Unavailable("rpc response lost");
  }
  RETURN_IF_ERROR(transport_->Send(server_, self_, wire_response.size()).status());
  // Model the decode round trip through the serializers for fidelity.
  ASSIGN_OR_RETURN(RpcResponse decoded,
                   ParseResponse(ByteSpan(wire_response.data(), wire_response.size())));
  return decoded;
}

Result<RpcResponse> RpcClient::Call(const RpcRequest& request) {
  return CallWithDeadline(request, kNoDeadline);
}

Result<RpcResponse> RpcClient::CallWithDeadline(const RpcRequest& request,
                                                sim::SimTime deadline) {
  sim::Engine* engine = transport_->engine();
  const uint32_t max_attempts = std::max<uint32_t>(1, policy_.max_attempts);
  sim::Duration backoff = policy_.initial_backoff;
  Status last_error = Unavailable("rpc not attempted");
  for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (engine->Now() >= deadline) {
      counters_.Increment("rpc_deadline_exceeded");
      return DeadlineExceeded("rpc deadline exceeded");
    }
    counters_.Increment("rpc_attempts");
    Result<RpcResponse> result = Attempt(request);
    if (result.ok()) {
      if (attempt > 0) {
        counters_.Increment("rpc_recoveries");
      }
      return result;
    }
    last_error = result.status();
    if (!Retryable(last_error)) {
      return last_error;
    }
    if (attempt + 1 == max_attempts) {
      break;
    }
    // Exponential backoff, truncated at the deadline: sleeping past it
    // would only discover the timeout later.
    sim::Duration sleep = backoff;
    if (deadline != kNoDeadline && engine->Now() < deadline) {
      sleep = std::min<sim::Duration>(sleep, deadline - engine->Now());
    }
    engine->Advance(sleep);
    counters_.Increment("rpc_retries");
    counters_.Add("rpc_backoff_ns", sleep);
    backoff = std::min<sim::Duration>(
        policy_.max_backoff,
        static_cast<sim::Duration>(static_cast<double>(backoff) * policy_.backoff_multiplier));
  }
  counters_.Increment("rpc_retries_exhausted");
  return last_error;
}

}  // namespace hyperion::dpu
