#include "src/dpu/rpc.h"

#include <algorithm>

namespace hyperion::dpu {

namespace {

// Header segment of a request frame: [service u16][opcode u16][len u32].
Bytes RequestHeader(const RpcRequest& request) {
  ByteWriter header(8);
  header.PutU16(static_cast<uint16_t>(request.service));
  header.PutU16(request.opcode);
  header.PutU32(static_cast<uint32_t>(request.payload.size()));
  return header.Take();
}

// Header segment of a response frame: [code u32][msg str][len u32].
Bytes ResponseHeader(const RpcResponse& response) {
  ByteWriter header(12 + response.status.message().size());
  header.PutU32(static_cast<uint32_t>(response.status.code()));
  header.PutString(std::string(response.status.message()));
  header.PutU32(static_cast<uint32_t>(response.payload.size()));
  return header.Take();
}

}  // namespace

Bytes SerializeRequest(const RpcRequest& request) {
  Bytes out = RequestHeader(request);
  PutBytes(out, request.payload);
  return out;
}

Result<RpcRequest> ParseRequest(ByteSpan data) {
  ByteReader reader(data);
  RpcRequest request;
  request.service = static_cast<ServiceId>(reader.ReadU16());
  request.opcode = reader.ReadU16();
  const uint32_t len = reader.ReadU32();
  if (!reader.Ok() || reader.remaining() < len) {
    return DataLoss("truncated RPC request");
  }
  request.payload = Buffer::CopyOf(data.subspan(reader.offset(), len));
  return request;
}

Bytes SerializeResponse(const RpcResponse& response) {
  Bytes out = ResponseHeader(response);
  PutBytes(out, response.payload);
  return out;
}

Result<RpcResponse> ParseResponse(ByteSpan data) {
  ByteReader reader(data);
  RpcResponse response;
  const auto code = static_cast<StatusCode>(reader.ReadU32());
  const std::string message = reader.ReadString();
  response.status = code == StatusCode::kOk ? Status::Ok() : Status(code, message);
  const uint32_t len = reader.ReadU32();
  if (!reader.Ok() || reader.remaining() < len) {
    return DataLoss("truncated RPC response");
  }
  response.payload = Buffer::CopyOf(data.subspan(reader.offset(), len));
  return response;
}

BufferChain SerializeRequestFrame(const RpcRequest& request) {
  BufferChain frame{Buffer(RequestHeader(request))};
  frame.Append(request.payload);
  return frame;
}

Result<RpcRequest> ParseRequestFrame(const BufferChain& frame) {
  if (frame.segment_count() == 0) {
    return DataLoss("truncated RPC request");
  }
  // Frames we build carry the whole header in segment 0; anything else is a
  // foreign layout and takes the contiguous (copying) path.
  ByteReader reader(frame.segment(0));
  RpcRequest request;
  request.service = static_cast<ServiceId>(reader.ReadU16());
  request.opcode = reader.ReadU16();
  const uint32_t len = reader.ReadU32();
  if (!reader.Ok()) {
    return ParseRequest(ByteSpan(frame.Flatten()));
  }
  if (frame.size() < reader.offset() + len) {
    return DataLoss("truncated RPC request");
  }
  request.payload = frame.SubChain(reader.offset(), len).Gather();
  return request;
}

BufferChain SerializeResponseFrame(const RpcResponse& response) {
  BufferChain frame{Buffer(ResponseHeader(response))};
  frame.Append(response.payload);
  return frame;
}

namespace {
// Trailer magics ("TRC1" / "DLN1", little-endian), each leading a
// fixed-size block appended past the request frame's header+payload.
// Parsers never read that far, so trailers are invisible to peers that
// understand neither.
constexpr uint32_t kTraceTrailerMagic = 0x31435254;
constexpr size_t kTraceTrailerBytes = 20;
constexpr uint32_t kDeadlineTrailerMagic = 0x314e4c44;
constexpr size_t kDeadlineTrailerBytes = 12;

struct RequestTrailers {
  obs::TraceContext trace;
  sim::SimTime deadline = kNoDeadline;
};

// Offset just past the request frame's header+payload (where trailers
// start), or SIZE_MAX when the frame is malformed or truncated.
size_t RequestPayloadEnd(const BufferChain& frame) {
  if (frame.segment_count() == 0) {
    return ~size_t{0};
  }
  ByteReader header(frame.segment(0));
  header.ReadU16();  // service
  header.ReadU16();  // opcode
  const uint32_t len = header.ReadU32();
  if (!header.Ok()) {
    return ~size_t{0};
  }
  const size_t end = header.offset() + len;
  return end <= frame.size() ? end : ~size_t{0};
}

// Reads `n` bytes at `pos` without materializing a sub-chain: the common
// case lands inside one segment and borrows its bytes; a straddling read
// assembles into `scratch` (accounted like any buffer-layer copy). The
// trailer scan runs once per served RPC, so the SubChain+Gather it used to
// do here (a segment vector plus a gathered Buffer per field) was pure
// per-request allocator traffic.
ByteSpan ReadBytesAt(const BufferChain& frame, size_t pos, size_t n, MutableByteSpan scratch) {
  DCHECK_LE(pos + n, frame.size());
  DCHECK_LE(n, scratch.size());
  size_t seg = 0;
  size_t off = pos;
  while (off >= frame.segment(seg).size()) {
    off -= frame.segment(seg).size();
    ++seg;
  }
  const Buffer& first = frame.segment(seg);
  if (off + n <= first.size()) {
    return ByteSpan(first.data() + off, n);
  }
  size_t got = 0;
  while (got < n) {
    const Buffer& cur = frame.segment(seg);
    const size_t take = std::min(n - got, cur.size() - off);
    std::memcpy(scratch.data() + got, cur.data() + off, take);
    got += take;
    off = 0;
    ++seg;
  }
  AccountBufferCopy(n);
  return ByteSpan(scratch.data(), n);
}

// Walks the trailer blocks in whatever order they were appended. An
// unrecognized magic (or a short block) ends the walk: whatever parsed up
// to that point stands, matching the pre-PR-5 tolerance for foreign bytes.
RequestTrailers ScanRequestTrailers(const BufferChain& frame) {
  RequestTrailers out;
  size_t pos = RequestPayloadEnd(frame);
  if (pos == ~size_t{0}) {
    return out;
  }
  uint8_t scratch_bytes[kTraceTrailerBytes];
  const MutableByteSpan scratch(scratch_bytes, sizeof(scratch_bytes));
  while (pos + 4 <= frame.size()) {
    ByteReader magic_reader{ReadBytesAt(frame, pos, 4, scratch)};
    const uint32_t magic = magic_reader.ReadU32();
    if (magic == kTraceTrailerMagic && pos + kTraceTrailerBytes <= frame.size()) {
      ByteReader reader{ReadBytesAt(frame, pos + 4, kTraceTrailerBytes - 4, scratch)};
      obs::TraceContext context;
      context.trace_id = reader.ReadU64();
      context.parent_span = reader.ReadU64();
      if (reader.Ok()) {
        out.trace = context;
      }
      pos += kTraceTrailerBytes;
    } else if (magic == kDeadlineTrailerMagic && pos + kDeadlineTrailerBytes <= frame.size()) {
      ByteReader reader{ReadBytesAt(frame, pos + 4, kDeadlineTrailerBytes - 4, scratch)};
      const sim::SimTime deadline = reader.ReadU64();
      if (reader.Ok()) {
        out.deadline = deadline;
      }
      pos += kDeadlineTrailerBytes;
    } else {
      break;
    }
  }
  return out;
}

}  // namespace

void AppendTraceTrailer(BufferChain& frame, obs::TraceContext context) {
  ByteWriter trailer(kTraceTrailerBytes);
  trailer.PutU32(kTraceTrailerMagic);
  trailer.PutU64(context.trace_id);
  trailer.PutU64(context.parent_span);
  frame.Append(Buffer(trailer.Take()));
}

void AppendDeadlineTrailer(BufferChain& frame, sim::SimTime deadline) {
  ByteWriter trailer(kDeadlineTrailerBytes);
  trailer.PutU32(kDeadlineTrailerMagic);
  trailer.PutU64(deadline);
  frame.Append(Buffer(trailer.Take()));
}

obs::TraceContext ExtractRequestTraceContext(const BufferChain& frame) {
  return ScanRequestTrailers(frame).trace;
}

sim::SimTime ExtractRequestDeadline(const BufferChain& frame) {
  return ScanRequestTrailers(frame).deadline;
}

Result<RpcResponse> ParseResponseFrame(const BufferChain& frame) {
  if (frame.segment_count() == 0) {
    return DataLoss("truncated RPC response");
  }
  ByteReader reader(frame.segment(0));
  RpcResponse response;
  const auto code = static_cast<StatusCode>(reader.ReadU32());
  const std::string message = reader.ReadString();
  response.status = code == StatusCode::kOk ? Status::Ok() : Status(code, message);
  const uint32_t len = reader.ReadU32();
  if (!reader.Ok()) {
    return ParseResponse(ByteSpan(frame.Flatten()));
  }
  if (frame.size() < reader.offset() + len) {
    return DataLoss("truncated RPC response");
  }
  response.payload = frame.SubChain(reader.offset(), len).Gather();
  return response;
}

void RpcServer::RegisterService(ServiceId service, Handler handler) {
  handlers_[service] = std::move(handler);
}

RpcResponse RpcServer::Dispatch(const RpcRequest& request, obs::TraceContext context) {
  counters_.Increment("rpcs");
  auto it = handlers_.find(request.service);
  if (it == handlers_.end()) {
    counters_.Increment("rpc_unknown_service");
    return RpcResponse::Fail(NotFound("no such service"));
  }
  if (admission_ != nullptr && admission_clock_ != nullptr) {
    // The synchronous server is never mid-request at dispatch (handlers run
    // inline), so the pipeline is idle: busy_until == now. Queue-bound and
    // deadline sheds still apply.
    const sim::SimTime now = admission_clock_->Now();
    const sim::AdmissionDecision decision = admission_->Decide(now, now, request.deadline);
    if (decision != sim::AdmissionDecision::kAdmit) {
      counters_.Increment(decision == sim::AdmissionDecision::kShedDeadline
                              ? "rpc_shed_deadline"
                              : "rpc_shed_queue");
      // Saying no costs shell time only — no handler, no flash, no fabric.
      admission_clock_->Advance(reject_cost_);
      return RpcResponse::Fail(ResourceExhausted("server overloaded"));
    }
    counters_.Increment("rpc_admitted");
    RpcResponse response;
    {
      obs::ScopedSpan dispatch(tracer_, clock_, obs::Subsystem::kRpc, "rpc.dispatch", context);
      response = it->second(request.opcode, request.payload);
    }
    admission_->OnAdmitted(now, admission_clock_->Now());
    return response;
  }
  // Stack-scoped: substrate spans the handler opens (nvme.*, pcie.*, ...)
  // nest under the dispatch span on the same per-node tracer.
  obs::ScopedSpan dispatch(tracer_, clock_, obs::Subsystem::kRpc, "rpc.dispatch", context);
  return it->second(request.opcode, request.payload);
}

namespace {
// Failure modes a fresh attempt can plausibly fix: a message that fell off
// the wire or failed its checksum. Deterministic rejections (bad service,
// exhausted transport-internal retries) surface immediately.
bool Retryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable || status.code() == StatusCode::kDataLoss;
}
}  // namespace

Result<RpcResponse> RpcClient::Attempt(const RpcRequest& request) {
  const uint64_t copies_before = BufferCopiedBytes();
  obs::ScopedSpan attempt(tracer_, transport_->engine(), obs::Subsystem::kRpc, "rpc.attempt");
  // Request flight: the frame shares the payload's backing bytes.
  const BufferChain wire_request = SerializeRequestFrame(request);
  RETURN_IF_ERROR(transport_->SendFrame(self_, server_, wire_request).status());
  // Execution at the DPU (advances the shared clock).
  RpcResponse response = peer_->Dispatch(request, attempt.context());
  // Response flight.
  const BufferChain wire_response = SerializeResponseFrame(response);
  if (injector_ != nullptr && injector_->ShouldInject(sim::FaultSite::kRpcResponseDrop)) {
    // The server executed but the response evaporated; the client cannot
    // tell this apart from a lost request and must reissue.
    return Unavailable("rpc response lost");
  }
  RETURN_IF_ERROR(transport_->SendFrame(server_, self_, wire_response).status());
  // Model the decode round trip through the frame codec for fidelity; the
  // decoded payload is a slice of the wire frame, not a copy.
  ASSIGN_OR_RETURN(RpcResponse decoded, ParseResponseFrame(wire_response));
  counters_.Add("copy_bytes", BufferCopiedBytes() - copies_before);
  return decoded;
}

Result<RpcResponse> RpcClient::Call(const RpcRequest& request) {
  return CallWithDeadline(request, kNoDeadline);
}

Result<RpcResponse> RpcClient::CallWithDeadline(const RpcRequest& request,
                                                sim::SimTime deadline) {
  obs::ScopedSpan call(tracer_, transport_->engine(), obs::Subsystem::kRpc, "rpc.call");
  // Stamp the deadline into the request so a deadline-aware server (one
  // with admission control) can shed work it cannot finish in time.
  RpcRequest stamped = request;
  stamped.deadline = deadline;
  return CallLoop(stamped, deadline);
}

Result<RpcResponse> RpcClient::CallLoop(const RpcRequest& request, sim::SimTime deadline) {
  sim::Engine* engine = transport_->engine();
  const uint32_t max_attempts = std::max<uint32_t>(1, policy_.max_attempts);
  sim::Duration backoff = policy_.initial_backoff;
  Status last_error = Unavailable("rpc not attempted");
  for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (engine->Now() >= deadline) {
      counters_.Increment("rpc_deadline_exceeded");
      return DeadlineExceeded("rpc deadline exceeded");
    }
    counters_.Increment("rpc_attempts");
    Result<RpcResponse> result = Attempt(request);
    if (result.ok()) {
      if (attempt > 0) {
        counters_.Increment("rpc_recoveries");
      }
      return result;
    }
    last_error = result.status();
    if (!Retryable(last_error)) {
      return last_error;
    }
    if (attempt + 1 == max_attempts) {
      break;
    }
    // Exponential backoff, truncated at the deadline: sleeping past it
    // would only discover the timeout later. When the attempt itself burned
    // the remaining budget the truncated sleep is zero-length, not a full
    // backoff — the old code skipped truncation entirely once Now() reached
    // the deadline and overslept by up to max_backoff.
    if (deadline != kNoDeadline && engine->Now() >= deadline) {
      counters_.Increment("rpc_deadline_exceeded");
      return DeadlineExceeded("rpc deadline exceeded");
    }
    sim::Duration sleep = backoff;
    if (deadline != kNoDeadline) {
      sleep = std::min<sim::Duration>(sleep, deadline - engine->Now());
    }
    {
      obs::ScopedSpan backoff_span(tracer_, engine, obs::Subsystem::kRpc, "rpc.backoff");
      engine->Advance(sleep);
    }
    counters_.Increment("rpc_retries");
    counters_.Add("rpc_backoff_ns", sleep);
    // Grow in floating point and clamp *before* converting back: a large
    // multiplier can push the product past 2^64, and float-to-integer
    // conversion of an out-of-range value is undefined behaviour.
    const double grown = static_cast<double>(backoff) * policy_.backoff_multiplier;
    backoff = grown >= static_cast<double>(policy_.max_backoff)
                  ? policy_.max_backoff
                  : static_cast<sim::Duration>(grown);
  }
  counters_.Increment("rpc_retries_exhausted");
  return last_error;
}

ShardedRpcNode::ShardedRpcNode(sim::ParallelEngine* engine, uint32_t shard, RpcServer* server,
                               sim::Engine* node_clock, const net::FabricParams& wire,
                               double link_gbps)
    : engine_(engine),
      shard_(shard),
      source_(engine->AddSource(shard)),
      server_(server),
      node_clock_(node_clock),
      wire_(wire),
      link_gbps_(link_gbps) {
  // The fixed path cost of a zero-byte message bounds every frame's latency
  // from below: that is this node's contribution to the lookahead.
  engine_->DeclareLinkLatency(net::MinOneWayLatency(wire_));
}

sim::Duration ShardedRpcNode::WireLatency(uint64_t bytes, const ShardedRpcNode& peer) const {
  return net::OneWayLatencyModel(wire_, link_gbps_, peer.link_gbps_, bytes);
}

void ShardedRpcNode::CallAsync(ShardedRpcNode* peer, const RpcRequest& request,
                               Completion done) {
  if (h_async_calls_ == kUnresolved) [[unlikely]] {
    h_async_calls_ = counters_.Intern("rpc_async_calls");
  }
  counters_.Increment(h_async_calls_);
  BufferChain frame = SerializeRequestFrame(request);
  const sim::SimTime now = engine_->shard(shard_).Now();
  // Latency from the pre-trailer size: trailers are metadata, not modelled
  // wire bytes, so traced/deadlined runs are time-identical to plain ones.
  const sim::Duration latency = WireLatency(frame.size(), *peer);
  if (request.deadline != kNoDeadline) {
    AppendDeadlineTrailer(frame, request.deadline);
  }
  if (obs::kCompiledIn && tracer_ != nullptr && tracer_->enabled()) {
    const obs::SpanId call = tracer_->BeginAsync(obs::Subsystem::kRpc, "rpc.call", now);
    AppendTraceTrailer(frame, tracer_->ContextOf(call));
    done = [this, call, inner = std::move(done)](Result<RpcResponse> result) {
      tracer_->End(call, engine_->shard(shard_).Now());
      inner(std::move(result));
    };
  }
  engine_->Post(source_, peer->shard_, now + latency,
                [peer, self = this, frame = std::move(frame), done = std::move(done)]() mutable {
                  peer->ServeFrame(std::move(frame), self, std::move(done));
                });
}

void ShardedRpcNode::ServeFrame(BufferChain frame, ShardedRpcNode* reply_to, Completion done) {
  const sim::SimTime arrival = engine_->shard(shard_).Now();
  // One trailer walk serves both consumers (trace stitching and the
  // admission deadline); this path used to scan the frame twice.
  const bool tracing = obs::kCompiledIn && tracer_ != nullptr && tracer_->enabled();
  RequestTrailers trailers;
  if (tracing || admission_ != nullptr) {
    trailers = ScanRequestTrailers(frame);
  }
  obs::SpanId serve = 0;
  if (tracing) {
    // Stitch under the caller's span carried in the frame trailer (empty
    // context — a fresh root — when the caller was untraced).
    serve = tracer_->BeginAsync(obs::Subsystem::kRpc, "rpc.serve", arrival, trailers.trace);
  }
  RpcResponse response;
  sim::SimTime finish = arrival;
  Result<RpcRequest> request = ParseRequestFrame(frame);
  bool admitted = true;
  if (!request.ok()) {
    response = RpcResponse::Fail(request.status());
  } else if (server_ == nullptr) {
    response = RpcResponse::Fail(InvalidArgument("node has no RPC server"));
  } else {
    if (admission_ != nullptr) {
      request->deadline = trailers.deadline;
      const sim::AdmissionDecision decision =
          admission_->Decide(arrival, node_clock_->Now(), request->deadline);
      admitted = decision == sim::AdmissionDecision::kAdmit;
      if (!admitted) {
        counters_.Increment(decision == sim::AdmissionDecision::kShedDeadline
                                ? "rpc_shed_deadline"
                                : "rpc_shed_queue");
        response = RpcResponse::Fail(ResourceExhausted("server overloaded"));
        // NIC-level bounce: the reject costs event time only — the node
        // pipeline (and everything queued behind it) never sees the request.
        finish = arrival + policy_.reject_cost;
      } else {
        if (h_admitted_ == kUnresolved) [[unlikely]] {
          h_admitted_ = counters_.Intern("rpc_admitted");
        }
        counters_.Increment(h_admitted_);
      }
    }
    if (admitted) {
      // Single-pipeline FIFO service: the node clock is the pipeline's
      // availability horizon. An arrival while the pipeline is busy queues
      // behind the in-flight work; an arrival while idle starts immediately.
      if (node_clock_->Now() < arrival) {
        node_clock_->AdvanceTo(arrival);
      } else {
        if (h_queued_ns_ == kUnresolved) [[unlikely]] {
          h_queued_ns_ = counters_.Intern("rpc_async_queued_ns");
        }
        counters_.Add(h_queued_ns_, node_clock_->Now() - arrival);
      }
      response = server_->Dispatch(*request, tracer_ != nullptr ? tracer_->ContextOf(serve)
                                                                : obs::TraceContext{});
      finish = std::max(node_clock_->Now(), arrival);
      if (admission_ != nullptr) {
        admission_->OnAdmitted(arrival, finish);
      }
    }
  }
  if (h_async_served_ == kUnresolved) [[unlikely]] {
    h_async_served_ = counters_.Intern("rpc_async_served");
  }
  counters_.Increment(h_async_served_);
  if (tracer_ != nullptr) {
    tracer_->End(serve, finish);
  }
  BufferChain wire = SerializeResponseFrame(response);
  const sim::Duration latency = WireLatency(wire.size(), *reply_to);
  engine_->Post(source_, reply_to->shard_, finish + latency,
                [wire = std::move(wire), done = std::move(done)]() mutable {
                  done(ParseResponseFrame(wire));
                });
}

void ShardedRpcNode::SetOverloadPolicy(const RpcOverloadPolicy& policy) {
  policy_ = policy;
  admission_ =
      policy.enabled ? std::make_unique<sim::AdmissionController>(policy.admission) : nullptr;
}

}  // namespace hyperion::dpu
