#include "src/dpu/rpc.h"

namespace hyperion::dpu {

Bytes SerializeRequest(const RpcRequest& request) {
  Bytes out;
  PutU16(out, static_cast<uint16_t>(request.service));
  PutU16(out, request.opcode);
  PutU32(out, static_cast<uint32_t>(request.payload.size()));
  PutBytes(out, ByteSpan(request.payload.data(), request.payload.size()));
  return out;
}

Result<RpcRequest> ParseRequest(ByteSpan data) {
  ByteReader reader(data);
  RpcRequest request;
  request.service = static_cast<ServiceId>(reader.ReadU16());
  request.opcode = reader.ReadU16();
  const uint32_t len = reader.ReadU32();
  request.payload = reader.ReadBytes(len);
  if (!reader.Ok()) {
    return DataLoss("truncated RPC request");
  }
  return request;
}

Bytes SerializeResponse(const RpcResponse& response) {
  Bytes out;
  PutU32(out, static_cast<uint32_t>(response.status.code()));
  PutString(out, std::string(response.status.message()));
  PutU32(out, static_cast<uint32_t>(response.payload.size()));
  PutBytes(out, ByteSpan(response.payload.data(), response.payload.size()));
  return out;
}

Result<RpcResponse> ParseResponse(ByteSpan data) {
  ByteReader reader(data);
  RpcResponse response;
  const auto code = static_cast<StatusCode>(reader.ReadU32());
  const std::string message = reader.ReadString();
  response.status = code == StatusCode::kOk ? Status::Ok() : Status(code, message);
  const uint32_t len = reader.ReadU32();
  response.payload = reader.ReadBytes(len);
  if (!reader.Ok()) {
    return DataLoss("truncated RPC response");
  }
  return response;
}

void RpcServer::RegisterService(ServiceId service, Handler handler) {
  handlers_[service] = std::move(handler);
}

RpcResponse RpcServer::Dispatch(const RpcRequest& request) {
  counters_.Increment("rpcs");
  auto it = handlers_.find(request.service);
  if (it == handlers_.end()) {
    counters_.Increment("rpc_unknown_service");
    return RpcResponse::Fail(NotFound("no such service"));
  }
  return it->second(request.opcode, ByteSpan(request.payload.data(), request.payload.size()));
}

Result<RpcResponse> RpcClient::Call(const RpcRequest& request) {
  const Bytes wire_request = SerializeRequest(request);
  // Request flight.
  RETURN_IF_ERROR(transport_->Send(self_, server_, wire_request.size()).status());
  // Execution at the DPU (advances the shared clock).
  RpcResponse response = peer_->Dispatch(request);
  // Response flight.
  const Bytes wire_response = SerializeResponse(response);
  RETURN_IF_ERROR(transport_->Send(server_, self_, wire_response.size()).status());
  // Model the decode round trip through the serializers for fidelity.
  ASSIGN_OR_RETURN(RpcResponse decoded,
                   ParseResponse(ByteSpan(wire_response.data(), wire_response.size())));
  return decoded;
}

}  // namespace hyperion::dpu
