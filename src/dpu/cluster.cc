#include "src/dpu/cluster.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/obs/export.h"

namespace hyperion::dpu {

namespace {

HyperionConfig NodeConfig(const ClusterOptions& options) {
  HyperionConfig config;
  config.nvme_devices = options.nvme_devices;
  config.lbas_per_device = options.lbas_per_device;
  config.dram_bytes = options.dram_bytes;
  config.hbm_bytes = options.hbm_bytes;
  config.link_gbps = options.fabric.default_link_gbps;
  return config;
}

}  // namespace

KvCluster::Node::Node(KvCluster* cluster, uint32_t id, uint32_t shard)
    : id(id),
      shard(shard),
      fabric(&clock, cluster->options_.fabric),
      dpu(&clock, &fabric, NodeConfig(cluster->options_)),
      rng(cluster->options_.workload.seed ^ (0x9e3779b97f4a7c15ULL * (id + 1))) {
  CHECK(dpu.Boot().ok());
  auto installed = HyperionServices::Install(&dpu, cluster->options_.backend);
  CHECK(installed.ok());
  services = std::move(*installed);
  // Registering the endpoint here — inside id-ordered node construction —
  // pins the logical source order that breaks cross-shard timestamp ties,
  // independent of the shard layout.
  endpoint = std::make_unique<ShardedRpcNode>(&cluster->engine(), shard, &dpu.rpc(), &clock,
                                              cluster->options_.fabric,
                                              cluster->options_.fabric.default_link_gbps);
  if (cluster->options_.trace) {
    // Origin = node id: logical identity, stable across shard layouts.
    tracer = std::make_unique<obs::Tracer>(id);
    dpu.InstallTracer(tracer.get());
    endpoint->SetTracer(tracer.get());
  }
  clients.resize(cluster->options_.workload.clients_per_node,
                 Client{cluster->options_.workload.ops_per_client});
}

KvCluster::KvCluster(const ClusterOptions& options) : options_(options) {
  CHECK_GT(options_.num_nodes, 0u);
  if (options_.num_shards == 0 || options_.num_shards > options_.num_nodes) {
    options_.num_shards = options_.num_nodes;
  }
  CHECK_GT(options_.workload.value_bytes, 0u);
  CHECK_GT(options_.workload.key_space, 0u);

  value_.resize(options_.workload.value_bytes);
  for (size_t i = 0; i < value_.size(); ++i) {
    value_[i] = static_cast<uint8_t>(i * 31 + 7);
  }

  sim::ParallelEngineOptions popts;
  popts.num_shards = options_.num_shards;
  popts.lookahead_floor = options_.lookahead_floor;
  popts.use_threads = options_.use_threads;
  engine_ = std::make_unique<sim::ParallelEngine>(popts);

  nodes_.reserve(options_.num_nodes);
  for (uint32_t id = 0; id < options_.num_nodes; ++id) {
    nodes_.push_back(std::make_unique<Node>(this, id, ShardOf(id)));
  }
  std::vector<ShardedRpcNode*> partitions;
  partitions.reserve(nodes_.size());
  for (auto& node : nodes_) {
    partitions.push_back(node->endpoint.get());
  }
  for (auto& node : nodes_) {
    node->kv = std::make_unique<ShardedKvClient>(node->endpoint.get(), partitions);
  }
}

KvCluster::~KvCluster() = default;

uint32_t KvCluster::ShardOf(uint32_t node) const {
  // Contiguous blocks: halving the shard count merges neighbouring shards
  // without reordering the nodes inside them.
  return static_cast<uint32_t>(uint64_t{node} * options_.num_shards / options_.num_nodes);
}

void KvCluster::Preload() {
  // Load every key directly into its owner's store (no virtual wire): the
  // measured phase then runs read-mostly traffic against a warm cluster.
  const ByteSpan value(value_.data(), value_.size());
  for (uint64_t key = 0; key < options_.workload.key_space; ++key) {
    Node& owner = *nodes_[KvPartitionOf(key, nodes_.size())];
    CHECK(owner.services->kv().Put(key, value).ok());
  }
}

void KvCluster::IssueOp(Node& node, uint32_t client) {
  Client& state = node.clients[client];
  CHECK_GT(state.remaining, 0u);
  --state.remaining;
  const ClusterWorkload& workload = options_.workload;
  const uint64_t key = node.rng.Uniform(workload.key_space);
  const bool write = node.rng.Uniform(100) < workload.write_pct;
  const sim::SimTime issued = engine_->shard(node.shard).Now();
  // Closed loop: the completion records the op and immediately issues the
  // client's next one, so per-client concurrency stays at 1 and offered
  // load scales with clients_per_node.
  auto finish = [this, &node, client, issued](bool ok) {
    const sim::SimTime now = engine_->shard(node.shard).Now();
    node.latency.Record(now - issued);
    if (ok) {
      ++node.ok_ops;
    } else {
      ++node.failed_ops;
    }
    node.last_completion = std::max(node.last_completion, now);
    if (node.clients[client].remaining > 0) {
      IssueOp(node, client);
    }
  };
  if (write) {
    node.kv->PutAsync(key, ByteSpan(value_.data(), value_.size()),
                      [finish](Status status) { finish(status.ok()); });
  } else {
    node.kv->GetAsync(key, [finish](Result<Buffer> result) { finish(result.ok()); });
  }
}

ClusterResult KvCluster::Run() {
  CHECK(!ran_);
  ran_ = true;
  Preload();
  // Clients start once the slowest node has drained boot + preload from its
  // pipeline — latency then measures wire + service, not boot backlog. The
  // base is layout-invariant (boot and preload never touch shard engines).
  sim::SimTime start_base = 0;
  for (const auto& node : nodes_) {
    start_base = std::max(start_base, node->clock.Now());
  }
  start_base += 1000;
  // Kick every client at a distinct virtual time: distinct timestamps need
  // no tie-break, so the startup order is trivially layout-invariant.
  const ClusterWorkload& workload = options_.workload;
  for (uint32_t id = 0; id < nodes_.size(); ++id) {
    Node& node = *nodes_[id];
    for (uint32_t client = 0; client < workload.clients_per_node; ++client) {
      if (node.clients[client].remaining == 0) {
        continue;
      }
      const sim::SimTime start =
          start_base + (uint64_t{id} * workload.clients_per_node + client) * 7;
      engine_->shard(node.shard).ScheduleAt(
          start, [this, &node, client] { IssueOp(node, client); });
    }
  }
  engine_->Run();

  ClusterResult result;
  result.events_run = engine_->stats().events_run;
  result.messages = engine_->stats().messages;
  result.start_ns = start_base;
  result.nodes.reserve(nodes_.size());
  for (auto& node : nodes_) {
    result.ok_ops += node->ok_ops;
    result.failed_ops += node->failed_ops;
    if (node->last_completion > start_base) {
      result.makespan_ns = std::max(result.makespan_ns, node->last_completion - start_base);
    }
    merged_latency_.Merge(node->latency);
    ClusterNodeResult per_node;
    per_node.node_clock_ns = node->clock.Now();
    per_node.rpcs_served = node->endpoint->counters().Get("rpc_async_served");
    per_node.ok_ops = node->ok_ops;
    per_node.failed_ops = node->failed_ops;
    result.nodes.push_back(per_node);
  }
  result.latency_count = merged_latency_.count();
  result.latency_p50_ns = merged_latency_.P50();
  result.latency_p99_ns = merged_latency_.P99();
  result.latency_max_ns = merged_latency_.max();
  return result;
}

std::vector<obs::SpanRecord> KvCluster::MergedTrace() const {
  std::vector<const obs::Tracer*> tracers;
  tracers.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    if (node->tracer != nullptr) {
      tracers.push_back(node->tracer.get());
    }
  }
  return obs::Tracer::Merged(tracers);
}

void KvCluster::SnapshotMetrics(obs::MetricsRegistry* registry) const {
  for (const auto& node : nodes_) {
    registry->ImportCounters(obs::Subsystem::kRpc, node->endpoint->counters());
    registry->ImportCounters(obs::Subsystem::kRpc, node->dpu.rpc().counters());
    registry->ImportCounters(obs::Subsystem::kNvme, node->dpu.nvme().counters());
  }
  obs::ImportParallelStats(registry, engine_->stats());
}

}  // namespace hyperion::dpu
