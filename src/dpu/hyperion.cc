#include "src/dpu/hyperion.h"

#include "src/common/check.h"
#include "src/common/log.h"

namespace hyperion::dpu {

namespace {
// Power-on sequence costs (§2: "boots in a stand-alone mode without any CPU
// when power is applied and FPGA JTAG self-tests are passed").
constexpr sim::Duration kJtagSelfTest = 180 * sim::kMillisecond;
constexpr sim::Duration kShellConfiguration = 2600 * sim::kMillisecond;  // QSPI static image

// Bus-address map (Figure 2 / §2.1: "statically divide FPGA AXI-streaming
// bus address ranges to map to FPGA DRAM addresses, and others to NVMe PCIe
// BAR addresses").
constexpr uint64_t kDramBase = 0x0000'0000'0000ull;
constexpr uint64_t kHbmBase = 0x1000'0000'0000ull;
constexpr uint64_t kNvmeBase = 0x2000'0000'0000ull;
constexpr uint64_t kNvmeStride = 0x0100'0000'0000ull;
}  // namespace

Hyperion::Hyperion(sim::Engine* engine, net::Fabric* net, HyperionConfig config)
    : engine_(engine), net_(net), config_(config), energy_(sim::MakeDpuEnergyModel()) {
  host_id_ = net_->AddHost("hyperion", config_.link_gbps);

  // FPGA-hosted PCIe hierarchy: the root complex *is* the FPGA; the x16
  // lanes bifurcate into 4 x4 links, one per NVMe device.
  const pcie::NodeId root = pcie_.AddRootComplex("fpga_root_complex");
  for (uint32_t d = 0; d < config_.nvme_devices; ++d) {
    pcie_.AddEndpoint("nvme" + std::to_string(d), root, {3, 4});
  }
  dma_ = std::make_unique<pcie::DmaEngine>(engine_, &pcie_);

  nvme_ = std::make_unique<nvme::Controller>(engine_);
  for (uint32_t d = 0; d < config_.nvme_devices; ++d) {
    nvme_->AddNamespace(config_.lbas_per_device);
  }

  mem::ObjectStoreConfig store_config;
  store_config.dram_bytes = config_.dram_bytes;
  store_config.hbm_bytes = config_.hbm_bytes;
  store_config.nvme_nsid = 1;  // namespace 1 carries the boot area
  store_ = std::make_unique<mem::ObjectStore>(engine_, nvme_.get(), store_config);

  fabric_ = std::make_unique<fpga::Fabric>(engine_, config_.fabric);
  scheduler_ = std::make_unique<fpga::SlotScheduler>(engine_, fabric_.get());

  // Static address-range routing.
  CHECK_OK(axi_.AddRoute(kDramBase, kDramBase + config_.dram_bytes, fpga::Port::kDram));
  CHECK_OK(axi_.AddRoute(kHbmBase, kHbmBase + config_.hbm_bytes, fpga::Port::kHbm));
  for (uint32_t d = 0; d < config_.nvme_devices && d < 4; ++d) {
    const uint64_t base = kNvmeBase + d * kNvmeStride;
    CHECK_OK(axi_.AddRoute(base, base + config_.lbas_per_device * nvme::kLbaSize,
                           static_cast<fpga::Port>(static_cast<uint8_t>(fpga::Port::kNvme0) + d)));
  }

  vm_ = std::make_unique<ebpf::Vm>(&maps_, engine_);
}

Result<sim::Duration> Hyperion::Boot() {
  if (booted_) {
    return sim::Duration{0};
  }
  const sim::SimTime start = engine_->Now();
  engine_->Advance(kJtagSelfTest);
  engine_->Advance(kShellConfiguration);
  // Recover the single-level store; a fresh device has no snapshot yet.
  Result<uint64_t> recovered = store_->Recover();
  if (recovered.ok()) {
    LOG_INFO << "hyperion: recovered " << *recovered << " durable segments";
  } else if (recovered.status().code() == StatusCode::kNotFound) {
    LOG_INFO << "hyperion: fresh device, no segment table snapshot";
  } else {
    return recovered.status();
  }
  booted_ = true;
  return engine_->Now() - start;
}

Result<fpga::RegionId> Hyperion::LoadBitstream(std::string_view token,
                                               fpga::Bitstream bitstream) {
  if (token != config_.control_token) {
    return PermissionDenied("control path: bad authorization token");
  }
  if (!booted_) {
    return Unavailable("DPU not booted");
  }
  ASSIGN_OR_RETURN(fpga::SlotScheduler::Placement placement,
                   scheduler_->Acquire(bitstream));
  return placement.region;
}

Result<AcceleratorId> Hyperion::DeployAccelerator(std::string_view token, ebpf::Program program,
                                                  fpga::TenantId tenant) {
  if (token != config_.control_token) {
    return PermissionDenied("control path: bad authorization token");
  }
  if (!booted_) {
    return Unavailable("DPU not booted");
  }
  // Multi-tenant isolation, stage 1: a tenant's program may only reference
  // maps it owns (or explicitly shared ones). Checked statically, before
  // verification — cross-tenant state never becomes reachable.
  for (size_t i = 0; i < program.insns.size(); ++i) {
    const ebpf::Insn& insn = program.insns[i];
    if (insn.IsLdImm64() && insn.src == ebpf::kPseudoMapFd) {
      const auto map_id = static_cast<uint32_t>(insn.imm);
      const ebpf::Map* map = maps_.Get(map_id);
      if (map == nullptr) {
        return NotFound("program references unknown map");
      }
      const uint32_t owner = map->spec().tenant;
      if (owner != ebpf::kSharedMap && owner != tenant) {
        return PermissionDenied("program references another tenant's map");
      }
      ++i;  // skip the second LD_IMM64 slot
    }
  }
  // Compiler-as-OS: no verifier pass, no fabric placement.
  RETURN_IF_ERROR(ebpf::Verify(program, maps_).status());
  ASSIGN_OR_RETURN(ebpf::PipelinePlan plan, ebpf::CompileToPipeline(program));
  fpga::Bitstream bitstream;
  bitstream.name = program.name;
  bitstream.tenant = tenant;
  bitstream.fmax_mhz = plan.options.fmax_mhz;
  // Partial bitstream size scales with design size in this model.
  bitstream.size_bytes = 1 * 1024 * 1024 + static_cast<uint64_t>(plan.total_insns) * 24 * 1024;
  ASSIGN_OR_RETURN(fpga::SlotScheduler::Placement placement, scheduler_->Acquire(bitstream));
  Accelerator accel;
  accel.program = std::move(program);
  accel.plan = std::move(plan);
  accel.region = placement.region;
  accel.tenant = tenant;
  accelerators_.push_back(std::move(accel));
  return static_cast<AcceleratorId>(accelerators_.size() - 1);
}

Result<uint64_t> Hyperion::ProcessPacket(AcceleratorId accel_id, MutableByteSpan packet) {
  if (accel_id >= accelerators_.size()) {
    return InvalidArgument("no such accelerator");
  }
  Accelerator& accel = accelerators_[accel_id];
  if (accel.retired) {
    return InvalidArgument("accelerator was undeployed");
  }
  // Functional execution (instrumented), then hardware-time charging.
  std::vector<uint64_t> counts(accel.program.insns.size(), 0);
  vm_->set_exec_counts(&counts);
  auto run = vm_->Run(accel.program, packet);
  vm_->set_exec_counts(nullptr);
  RETURN_IF_ERROR(run.status());
  const uint64_t cycles = ebpf::EstimateCycles(accel.plan, counts);
  RETURN_IF_ERROR(ChargeFabric(accel.region, cycles));
  ++accel.packets;
  return run->return_value;
}

Status Hyperion::UndeployAccelerator(std::string_view token, AcceleratorId accel_id) {
  if (token != config_.control_token) {
    return PermissionDenied("control path: bad authorization token");
  }
  if (accel_id >= accelerators_.size()) {
    return InvalidArgument("no such accelerator");
  }
  Accelerator& accel = accelerators_[accel_id];
  if (accel.retired) {
    return InvalidArgument("accelerator already undeployed");
  }
  RETURN_IF_ERROR(scheduler_->Release(accel.region));
  accel.retired = true;
  return Status::Ok();
}

Result<uint32_t> Hyperion::CreateMap(std::string_view token, ebpf::MapSpec spec) {
  if (token != config_.control_token) {
    return PermissionDenied("control path: bad authorization token");
  }
  if (!booted_) {
    return Unavailable("DPU not booted");
  }
  return maps_.Create(std::move(spec));
}

Result<Hyperion::AcceleratorInfo> Hyperion::DescribeAccelerator(AcceleratorId accel_id) const {
  if (accel_id >= accelerators_.size()) {
    return InvalidArgument("no such accelerator");
  }
  const Accelerator& accel = accelerators_[accel_id];
  AcceleratorInfo info;
  info.region = accel.region;
  info.pipeline_stages = accel.plan.CriticalPathCycles();
  info.mean_ilp = accel.plan.MeanIlp();
  info.packets_processed = accel.packets;
  return info;
}

Status Hyperion::ChargeFabric(fpga::RegionId region, uint64_t cycles) {
  ASSIGN_OR_RETURN(sim::Duration t, fabric_->Execute(region, cycles));
  energy_.Busy(sim::DpuPowerIds::kFabric, t);
  return Status::Ok();
}

void Hyperion::InstallFaultInjector(sim::FaultInjector* injector) {
  nvme_->SetFaultInjector(injector);
  dma_->SetFaultInjector(injector);
  fabric_->SetFaultInjector(injector);
}

void Hyperion::InstallTracer(obs::Tracer* tracer) {
  nvme_->SetTracer(tracer);
  dma_->SetTracer(tracer);
  fabric_->SetTracer(tracer);
  scheduler_->SetTracer(tracer);
  rpc_.SetTracer(tracer, engine_);
}

}  // namespace hyperion::dpu
